(* Tests for lib/engine: the versioned, memoized evaluation engine.

   Units: database version monotonicity, canonical graph keys across
   isomorphic constructions, version-keyed invalidation after a relation
   replacement, LRU eviction order under a tight byte budget, and
   FJ-tier sharing between a graph and its induced subgraphs.

   Property: evaluating through a caching context is observationally
   identical to evaluating uncached, across randomized
   evaluate/mutate-db/evaluate interleavings on lib/synth instances. *)

open Relational
module Qgraph = Querygraph.Qgraph
module Eval_ctx = Engine.Eval_ctx
module Eval_cache = Engine.Eval_cache
module Graph_key = Engine.Graph_key

let qtest t = QCheck_alcotest.to_alcotest ~long:false t
let tc = Alcotest.test_case
let v_int i = Value.Int i
let mk name cols rows = Relation.create name (Schema.make name cols) rows

(* --- database versioning --- *)

let test_version_monotonic () =
  Alcotest.(check int) "empty is version 0" 0 (Database.version Database.empty);
  let r = mk "R" [ "a" ] [ Tuple.make [ v_int 1 ] ] in
  let s = mk "S" [ "b" ] [ Tuple.make [ v_int 2 ] ] in
  let db1 = Database.add Database.empty r in
  let db2 = Database.add db1 s in
  Alcotest.(check bool) "add bumps" true (Database.version db1 > 0);
  Alcotest.(check bool) "add bumps again" true
    (Database.version db2 > Database.version db1);
  let r' = mk "R" [ "a" ] [ Tuple.make [ v_int 7 ] ] in
  let db3 = Database.replace db2 r' in
  Alcotest.(check bool) "replace bumps" true
    (Database.version db3 > Database.version db2);
  Alcotest.(check bool) "replace swaps contents" true
    (Relation.equal_contents r' (Database.get db3 "R"));
  (* The original is untouched (databases are immutable values). *)
  Alcotest.(check bool) "original unchanged" true
    (Relation.equal_contents r (Database.get db2 "R"))

let test_replace_unknown_rejected () =
  let r = mk "R" [ "a" ] [] in
  Alcotest.check_raises "unknown relation"
    (Invalid_argument "Database.replace: unknown relation R") (fun () ->
      ignore (Database.replace Database.empty r))

(* --- canonical graph keys --- *)

let eq r1 c1 r2 c2 = Predicate.eq_cols (Attr.make r1 c1) (Attr.make r2 c2)

let test_key_insertion_order () =
  let g1 =
    Qgraph.make
      [ ("A", "A"); ("B", "B") ]
      [ ("A", "B", eq "A" "x" "B" "y") ]
  in
  let g2 =
    Qgraph.make
      [ ("B", "B"); ("A", "A") ]
      [ ("A", "B", eq "A" "x" "B" "y") ]
  in
  Alcotest.(check bool) "node order irrelevant" true
    (Graph_key.equal (Graph_key.of_graph g1) (Graph_key.of_graph g2))

let test_key_edge_orientation () =
  let g1 =
    Qgraph.make [ ("A", "A"); ("B", "B") ] [ ("A", "B", eq "A" "x" "B" "y") ]
  in
  let g2 =
    Qgraph.make [ ("A", "A"); ("B", "B") ] [ ("B", "A", eq "A" "x" "B" "y") ]
  in
  Alcotest.(check bool) "edge orientation irrelevant" true
    (Graph_key.equal (Graph_key.of_graph g1) (Graph_key.of_graph g2))

let test_key_conjunct_order () =
  let p = eq "A" "x" "B" "y" and q = eq "A" "u" "B" "v" in
  let g1 =
    Qgraph.make [ ("A", "A"); ("B", "B") ] [ ("A", "B", Predicate.And (p, q)) ]
  in
  let g2 =
    Qgraph.make [ ("A", "A"); ("B", "B") ] [ ("A", "B", Predicate.And (q, p)) ]
  in
  Alcotest.(check bool) "conjunct order irrelevant" true
    (Graph_key.equal (Graph_key.of_graph g1) (Graph_key.of_graph g2))

let test_key_distinguishes () =
  let g1 =
    Qgraph.make [ ("A", "A"); ("B", "B") ] [ ("A", "B", eq "A" "x" "B" "y") ]
  in
  let g2 =
    Qgraph.make [ ("A", "A"); ("B", "B") ] [ ("A", "B", eq "A" "x" "B" "z") ]
  in
  let g3 =
    Qgraph.make
      [ ("A", "A"); ("B2", "B") ]
      [ ("A", "B2", eq "A" "x" "B2" "y") ]
  in
  Alcotest.(check bool) "different predicate" false
    (Graph_key.equal (Graph_key.of_graph g1) (Graph_key.of_graph g2));
  Alcotest.(check bool) "different alias" false
    (Graph_key.equal (Graph_key.of_graph g1) (Graph_key.of_graph g3))

(* --- a small concrete instance for the cache tests --- *)

let chain_instance ?(rows = 60) () =
  Synth.Gen_graph.chain
    (Random.State.make [| 91 |])
    ~n:3 ~rows ~null_prob:0.2 ~orphan_prob:0.2 ()

let identity_mapping (inst : Synth.Gen_graph.instance) =
  let aliases = Qgraph.aliases inst.Synth.Gen_graph.graph in
  Clio.Mapping.make ~graph:inst.Synth.Gen_graph.graph ~target:"T"
    ~target_cols:(List.map (fun a -> "c_" ^ a) aliases)
    ~correspondences:
      (List.map
         (fun a -> Clio.Correspondence.identity ("c_" ^ a) (Attr.make a "id"))
         aliases)
    ()

(* --- version invalidation --- *)

let test_version_invalidation () =
  let inst = chain_instance () in
  let db = inst.Synth.Gen_graph.db in
  let ctx = Eval_ctx.create ~kb:inst.Synth.Gen_graph.kb db in
  let m = identity_mapping inst in
  let before = Clio.Mapping_eval.eval ctx m in
  let cache = Option.get (Eval_ctx.cache ctx) in
  Alcotest.(check bool) "cache populated" true (Eval_cache.entry_count cache > 0);
  (* Hit path returns the same thing. *)
  Alcotest.(check bool) "hit = miss result" true
    (Relation.equal_contents before (Clio.Mapping_eval.eval ctx m));
  (* Mutate R1: drop half its tuples; the context carries the cache over. *)
  let r1 = Database.get db "R1" in
  let r1' =
    Relation.create "R1" (Relation.schema r1)
      (List.filteri (fun i _ -> i mod 2 = 0) (Relation.tuples r1))
  in
  let ctx' = Eval_ctx.with_db ctx (Database.replace db r1') in
  (* Nothing of the new version is cached yet... *)
  Alcotest.(check bool) "new version starts cold" false
    (Eval_cache.mem_dg cache ~version:(Eval_ctx.version ctx')
       ~variant:(Eval_ctx.algorithm_name (Eval_ctx.algorithm ctx'))
       (Graph_key.of_graph m.Clio.Mapping.graph));
  (* ...and evaluation agrees with an uncached context on the new db. *)
  let after = Clio.Mapping_eval.eval ctx' m in
  let reference = Clio.Mapping_eval.eval (Eval_ctx.transient (Eval_ctx.db ctx')) m in
  Alcotest.(check bool) "post-mutation result is fresh" true
    (Relation.equal_contents after reference);
  Alcotest.(check bool) "old version still served" true
    (Relation.equal_contents before (Clio.Mapping_eval.eval ctx m))

(* --- LRU eviction order --- *)

let test_lru_eviction_order () =
  let rel i =
    mk (Printf.sprintf "E%d" i) [ "a"; "b" ]
      (List.init 8 (fun j -> Tuple.make [ v_int i; v_int j ]))
  in
  let key i =
    Graph_key.of_graph
      (Qgraph.singleton ~alias:(Printf.sprintf "E%d" i) ~base:"E")
  in
  (* Measure one entry's footprint, then budget for two and a half. *)
  let probe = Eval_cache.create () in
  Eval_cache.add_fj probe ~version:0 (key 0) (rel 0);
  let per_entry = Eval_cache.bytes_resident probe in
  let cache = Eval_cache.create ~byte_budget:(per_entry * 5 / 2) () in
  Eval_cache.add_fj cache ~version:0 (key 1) (rel 1);
  Eval_cache.add_fj cache ~version:0 (key 2) (rel 2);
  (* Touch 1 so 2 becomes the least recently used... *)
  ignore (Eval_cache.find_fj cache ~version:0 (key 1));
  Eval_cache.add_fj cache ~version:0 (key 3) (rel 3);
  Alcotest.(check bool) "LRU entry evicted" false
    (Eval_cache.mem_fj cache ~version:0 (key 2));
  Alcotest.(check bool) "recently used survives" true
    (Eval_cache.mem_fj cache ~version:0 (key 1));
  Alcotest.(check bool) "new entry resident" true
    (Eval_cache.mem_fj cache ~version:0 (key 3));
  Alcotest.(check bool) "budget respected" true
    (Eval_cache.bytes_resident cache <= Eval_cache.byte_budget cache)

let test_cache_rejects_bad_budget () =
  Alcotest.check_raises "zero budget"
    (Invalid_argument "Eval_cache.create: byte_budget must be > 0")
    (fun () -> ignore (Eval_cache.create ~byte_budget:0 ()))

(* --- FJ sharing between a graph and its induced subgraphs --- *)

let test_subgraph_sharing () =
  let inst = chain_instance () in
  let g = inst.Synth.Gen_graph.graph in
  let ctx = Eval_ctx.create ~kb:inst.Synth.Gen_graph.kb inst.Synth.Gen_graph.db in
  ignore (Eval_ctx.data_associations ctx g);
  let cache = Option.get (Eval_ctx.cache ctx) in
  (* Rebuild the induced R1-R2 subgraph from scratch; D(G) of the full
     chain must already have materialized its F(J) under the same key. *)
  let e = Option.get (Qgraph.find_edge g "R1" "R2") in
  let sub =
    Qgraph.make
      [ ("R1", "R1"); ("R2", "R2") ]
      [ ("R1", "R2", e.Qgraph.pred) ]
  in
  Alcotest.(check bool) "induced subgraph F(J) shared" true
    (Eval_cache.mem_fj cache ~version:(Eval_ctx.version ctx)
       (Graph_key.of_graph sub))

(* --- property: cached = uncached under mutation interleavings --- *)

let interleaving_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 100000 in
    let* n = int_range 2 4 in
    let* rows = int_range 1 15 in
    (* Each step: true = mutate the database, false = evaluate+compare. *)
    let* ops = list_size (int_range 2 6) bool in
    return (seed, n, rows, ops))

let mutate_db step db =
  (* Rotate the tuples of one relation and drop the head: changes both
     contents and cardinality, forcing a visible difference if any stale
     cache entry were served. *)
  let rels = Database.relations db in
  let victim = List.nth rels (step mod List.length rels) in
  let name = Relation.name victim in
  let tuples =
    match Relation.tuples victim with [] -> [] | _ :: rest -> rest
  in
  Database.replace db (Relation.create name (Relation.schema victim) tuples)

let prop_cached_equals_uncached =
  QCheck2.Test.make ~name:"cached = uncached across mutate interleavings"
    ~count:40 interleaving_gen (fun (seed, n, rows, ops) ->
      let st = Random.State.make [| seed |] in
      let inst =
        Synth.Gen_graph.random_tree st ~n ~rows ~null_prob:0.25
          ~orphan_prob:0.25 ()
      in
      let m = identity_mapping inst in
      let step (ctx, i, ok) mutate =
        if not ok then (ctx, i, false)
        else if mutate then (Eval_ctx.with_db ctx (mutate_db i (Eval_ctx.db ctx)), i + 1, ok)
        else
          let cached = Clio.Mapping_eval.eval ctx m in
          let uncached =
            Clio.Mapping_eval.eval (Eval_ctx.transient (Eval_ctx.db ctx)) m
          in
          let exs = Clio.Mapping_eval.examples ctx m in
          let exs' =
            Clio.Mapping_eval.examples (Eval_ctx.transient (Eval_ctx.db ctx)) m
          in
          ( ctx,
            i + 1,
            Relation.equal_contents cached uncached
            && List.length exs = List.length exs' )
      in
      let ctx0 = Eval_ctx.create ~kb:inst.Synth.Gen_graph.kb inst.Synth.Gen_graph.db in
      (* Always end with a comparison so every interleaving is checked. *)
      let _, _, ok = List.fold_left step (ctx0, 0, true) (ops @ [ false ]) in
      ok)

let prop_algorithms_agree_cached =
  QCheck2.Test.make ~name:"cached eval agrees across algorithms" ~count:30
    QCheck2.Gen.(
      let* seed = int_range 0 100000 in
      let* n = int_range 2 4 in
      let* rows = int_range 1 12 in
      return (seed, n, rows))
    (fun (seed, n, rows) ->
      let st = Random.State.make [| seed |] in
      let inst =
        Synth.Gen_graph.random_tree st ~n ~rows ~null_prob:0.25
          ~orphan_prob:0.25 ()
      in
      let m = identity_mapping inst in
      let ctx = Eval_ctx.create ~kb:inst.Synth.Gen_graph.kb inst.Synth.Gen_graph.db in
      (* All variants through ONE shared cache: distinct dg variants must
         not contaminate each other, and the shared FJ tier must not skew
         any of them. *)
      let a = Clio.Mapping_eval.eval ~algorithm:Clio.Mapping_eval.Naive ctx m in
      let b = Clio.Mapping_eval.eval ~algorithm:Clio.Mapping_eval.Indexed ctx m in
      let c =
        Clio.Mapping_eval.eval ~algorithm:Clio.Mapping_eval.Outerjoin_if_tree ctx m
      in
      Relation.equal_contents a b && Relation.equal_contents a c)

let () =
  Alcotest.run "engine"
    [
      ( "version",
        [
          tc "monotonic" `Quick test_version_monotonic;
          tc "replace unknown" `Quick test_replace_unknown_rejected;
          tc "invalidation" `Quick test_version_invalidation;
        ] );
      ( "graph_key",
        [
          tc "insertion order" `Quick test_key_insertion_order;
          tc "edge orientation" `Quick test_key_edge_orientation;
          tc "conjunct order" `Quick test_key_conjunct_order;
          tc "distinguishes" `Quick test_key_distinguishes;
        ] );
      ( "cache",
        [
          tc "lru eviction order" `Quick test_lru_eviction_order;
          tc "bad budget" `Quick test_cache_rejects_bad_budget;
          tc "subgraph sharing" `Quick test_subgraph_sharing;
        ] );
      ( "properties",
        [ qtest prop_cached_equals_uncached; qtest prop_algorithms_agree_cached ] );
    ]
