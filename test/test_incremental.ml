(* Tests for incremental D(G)/F(J) maintenance (the delta-evaluation path).

   Units: free vs repaired promotion through the recorded delta chain
   (counter-visible), rewrite fallback, peek neutrality (a promotion probe
   must not perturb LRU recency), and the fresh recency + bytes accounting
   of promoted entries.

   Properties: after random insert/replace sequences, evaluation through
   an incremental caching context is byte-identical to from-scratch
   evaluation — D(G) association lists under all three algorithms, F(J)
   tuple arrays, and rendered illustrations — at jobs 1 and 4. *)

open Relational
module Qgraph = Querygraph.Qgraph
module Eval_ctx = Engine.Eval_ctx
module Eval_cache = Engine.Eval_cache
module Graph_key = Engine.Graph_key

let qtest t = QCheck_alcotest.to_alcotest ~long:false t
let tc = Alcotest.test_case
let v_int i = Value.Int i
let mk name cols rows = Relation.create name (Schema.make name cols) rows

let chain_instance ?(rows = 40) () =
  Synth.Gen_graph.chain
    (Random.State.make [| 97 |])
    ~n:3 ~rows ~null_prob:0.2 ~orphan_prob:0.2 ()

(* A genuinely fresh R1 tuple: id far beyond the generator's key space,
   the FK landing on an existing R2 id. *)
let fresh_r1_tuple i = [| v_int (1_000_000 + i); Value.String "x"; v_int 0 |]

let counter name = Obs.Metrics.value name

let with_counters f =
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let subgraph g a b =
  let e = Option.get (Qgraph.find_edge g a b) in
  Qgraph.make [ (a, a); (b, b) ] [ (a, b, e.Qgraph.pred) ]

let assocs_equal (x : Fulldisj.Full_disjunction.result)
    (y : Fulldisj.Full_disjunction.result) =
  Schema.attrs x.Fulldisj.Full_disjunction.scheme
  = Schema.attrs y.Fulldisj.Full_disjunction.scheme
  && List.equal Fulldisj.Assoc.equal x.Fulldisj.Full_disjunction.associations
       y.Fulldisj.Full_disjunction.associations

(* --- free promotion: the graph touches none of the changed relations --- *)

let test_promotion_free () =
  with_counters (fun () ->
      let inst = chain_instance () in
      let g23 = subgraph inst.Synth.Gen_graph.graph "R2" "R3" in
      let ctx =
        Eval_ctx.create ~kb:inst.Synth.Gen_graph.kb inst.Synth.Gen_graph.db
      in
      let before = Eval_ctx.data_associations ctx g23 in
      let db' =
        Database.insert_tuples (Eval_ctx.db ctx) "R1" [ fresh_r1_tuple 0 ]
      in
      let ctx' = Eval_ctx.with_db ctx db' in
      let free0 = counter "cache.promote.dg.free" in
      let after = Eval_ctx.data_associations ctx' g23 in
      Alcotest.(check int)
        "one free dg promotion" (free0 + 1)
        (counter "cache.promote.dg.free");
      Alcotest.(check bool) "promoted result unchanged" true
        (assocs_equal before after);
      (* The promoted entry is resident at the new version. *)
      let cache = Option.get (Eval_ctx.cache ctx') in
      Alcotest.(check bool) "entry resident at new version" true
        (Eval_cache.mem_dg cache
           ~version:(Eval_ctx.version ctx')
           ~variant:(Eval_ctx.algorithm_name (Eval_ctx.algorithm ctx'))
           (Graph_key.of_graph g23)))

(* --- repaired promotion: insert-only delta into a touched base --- *)

let test_promotion_repaired () =
  with_counters (fun () ->
      let inst = chain_instance () in
      let g = inst.Synth.Gen_graph.graph in
      let ctx =
        Eval_ctx.create ~kb:inst.Synth.Gen_graph.kb inst.Synth.Gen_graph.db
      in
      ignore (Eval_ctx.data_associations ctx g);
      let db' =
        Database.insert_tuples (Eval_ctx.db ctx) "R1" [ fresh_r1_tuple 1 ]
      in
      let ctx' = Eval_ctx.with_db ctx db' in
      let rep0 = counter "cache.promote.dg.repaired" in
      let repaired = Eval_ctx.data_associations ctx' g in
      Alcotest.(check int)
        "one repaired dg promotion" (rep0 + 1)
        (counter "cache.promote.dg.repaired");
      let scratch = Eval_ctx.data_associations (Eval_ctx.transient db') g in
      Alcotest.(check bool) "repair = from-scratch, byte-identical" true
        (assocs_equal repaired scratch))

let test_promotion_fj_repaired () =
  with_counters (fun () ->
      let inst = chain_instance () in
      let g12 = subgraph inst.Synth.Gen_graph.graph "R1" "R2" in
      let ctx =
        Eval_ctx.create ~kb:inst.Synth.Gen_graph.kb inst.Synth.Gen_graph.db
      in
      ignore (Eval_ctx.full_associations ctx g12);
      let db' =
        Database.insert_tuples (Eval_ctx.db ctx) "R1" [ fresh_r1_tuple 2 ]
      in
      let ctx' = Eval_ctx.with_db ctx db' in
      let rep0 = counter "cache.promote.fj.repaired" in
      let repaired = Eval_ctx.full_associations ctx' g12 in
      Alcotest.(check int)
        "one repaired fj promotion" (rep0 + 1)
        (counter "cache.promote.fj.repaired");
      let scratch = Eval_ctx.full_associations (Eval_ctx.transient db') g12 in
      Alcotest.(check bool) "F(J) repair = from-scratch, same order" true
        (Relation.tuples repaired = Relation.tuples scratch))

(* --- rewrite fallback: removals poison the chain --- *)

let test_rewrite_fallback () =
  with_counters (fun () ->
      let inst = chain_instance () in
      let g = inst.Synth.Gen_graph.graph in
      let ctx =
        Eval_ctx.create ~kb:inst.Synth.Gen_graph.kb inst.Synth.Gen_graph.db
      in
      ignore (Eval_ctx.data_associations ctx g);
      let r2 = Database.get (Eval_ctx.db ctx) "R2" in
      let r2' =
        Relation.create "R2" (Relation.schema r2)
          (match Relation.tuples r2 with [] -> [] | _ :: rest -> rest)
      in
      let ctx' = Eval_ctx.with_db ctx (Database.replace (Eval_ctx.db ctx) r2') in
      let fb0 = counter "delta.fallbacks" in
      let rep0 = counter "cache.promote.dg.repaired" in
      let rep0_fj = counter "cache.promote.fj.repaired" in
      let after = Eval_ctx.data_associations ctx' g in
      (* One fallback at the DG tier plus one per poisoned subgraph the
         recomputation walks at the FJ tier. *)
      Alcotest.(check bool) "fallbacks counted" true
        (counter "delta.fallbacks" > fb0);
      Alcotest.(check int)
        "no dg repair attempted" rep0
        (counter "cache.promote.dg.repaired");
      Alcotest.(check int)
        "no fj repair attempted" rep0_fj
        (counter "cache.promote.fj.repaired");
      let scratch = Eval_ctx.data_associations (Eval_ctx.transient (Eval_ctx.db ctx')) g in
      Alcotest.(check bool) "recomputed result correct" true
        (assocs_equal after scratch))

(* --- peek neutrality and promoted-entry recency --- *)

let lru_rel i =
  mk (Printf.sprintf "E%d" i) [ "a"; "b" ]
    (List.init 8 (fun j -> Tuple.make [ v_int i; v_int j ]))

let lru_key i =
  Graph_key.of_graph
    (Qgraph.singleton ~alias:(Printf.sprintf "E%d" i) ~base:"E")

let test_peek_does_not_touch_recency () =
  let probe = Eval_cache.create () in
  Eval_cache.add_fj probe ~version:0 (lru_key 0) (lru_rel 0);
  let per_entry = Eval_cache.bytes_resident probe in
  let cache = Eval_cache.create ~byte_budget:(per_entry * 5 / 2) () in
  Eval_cache.add_fj cache ~version:0 (lru_key 1) (lru_rel 1);
  Eval_cache.add_fj cache ~version:0 (lru_key 2) (lru_rel 2);
  (* Unlike find_fj (see the engine LRU test), peeking entry 1 must NOT
     refresh its recency: it stays least recently used and is evicted. *)
  Alcotest.(check bool) "peek hits" true
    (Option.is_some (Eval_cache.peek_fj cache ~version:0 (lru_key 1)));
  Eval_cache.add_fj cache ~version:0 (lru_key 3) (lru_rel 3);
  Alcotest.(check bool) "peeked entry still evicted first" false
    (Eval_cache.mem_fj cache ~version:0 (lru_key 1));
  Alcotest.(check bool) "other entry survives" true
    (Eval_cache.mem_fj cache ~version:0 (lru_key 2))

let test_promoted_entry_recency_and_bytes () =
  (* Replay the engine's promotion sequence by hand: peek at the ancestor
     version, re-add at the new one.  The promoted entry must be counted
     in bytes_resident and carry fresh recency (evicted last). *)
  let probe = Eval_cache.create () in
  Eval_cache.add_fj probe ~version:0 (lru_key 0) (lru_rel 0);
  let per_entry = Eval_cache.bytes_resident probe in
  let cache = Eval_cache.create ~byte_budget:(per_entry * 5 / 2) () in
  Eval_cache.add_fj cache ~version:0 (lru_key 1) (lru_rel 1);
  Eval_cache.add_fj cache ~version:0 (lru_key 2) (lru_rel 2);
  let bytes_before = Eval_cache.bytes_resident cache in
  let payload = Option.get (Eval_cache.peek_fj cache ~version:0 (lru_key 1)) in
  Eval_cache.add_fj cache ~version:1 (lru_key 1) payload;
  (* Three entries exceed the 2.5-entry budget: the oldest (key 1 at the
     ancestor version — peek ticked nothing) is evicted, the promoted copy
     is the most recent and survives, and the books balance. *)
  Alcotest.(check bool) "ancestor copy evicted" false
    (Eval_cache.mem_fj cache ~version:0 (lru_key 1));
  Alcotest.(check bool) "promoted copy resident" true
    (Eval_cache.mem_fj cache ~version:1 (lru_key 1));
  Alcotest.(check int) "bytes accounted for promoted entry" bytes_before
    (Eval_cache.bytes_resident cache);
  Alcotest.(check bool) "budget respected" true
    (Eval_cache.bytes_resident cache <= Eval_cache.byte_budget cache)

(* --- property: incremental = from-scratch across mutation sequences --- *)

let identity_mapping (inst : Synth.Gen_graph.instance) =
  let aliases = Qgraph.aliases inst.Synth.Gen_graph.graph in
  Clio.Mapping.make ~graph:inst.Synth.Gen_graph.graph ~target:"T"
    ~target_cols:(List.map (fun a -> "c_" ^ a) aliases)
    ~correspondences:
      (List.map
         (fun a -> Clio.Correspondence.identity ("c_" ^ a) (Attr.make a "id"))
         aliases)
    ()

(* Mutations: mostly insert-only steps (the repairable case), sometimes a
   duplicate insert (must be a version no-op) or a tuple removal (a
   Rewrite, forcing the fallback path).  [salt] keeps generated ids
   genuinely fresh across steps. *)
let apply_op db (op, rel_idx, salt) =
  let rels = Database.relations db in
  let victim = List.nth rels (rel_idx mod List.length rels) in
  let name = Relation.name victim in
  match op mod 6 with
  | 5 ->
      let tuples =
        match Relation.tuples victim with [] -> [] | _ :: rest -> rest
      in
      Database.replace db (Relation.create name (Relation.schema victim) tuples)
  | 4 -> (
      match Relation.tuples victim with
      | [] -> db
      | t :: _ -> Database.insert_tuples db name [ t ])
  | _ ->
      let arity = Schema.arity (Relation.schema victim) in
      let fresh =
        Array.init arity (fun c ->
            if c = 0 then v_int (500_000 + salt) else v_int (salt mod 7))
      in
      Database.insert_tuples db name [ fresh ]

let parity_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 100000 in
    let* n = int_range 2 4 in
    let* rows = int_range 1 12 in
    let* jobs = oneofl [ 1; 4 ] in
    let* ops = list_size (int_range 1 5) (pair (int_range 0 5) (int_range 0 3)) in
    return (seed, n, rows, jobs, ops))

let prop_incremental_equals_scratch =
  QCheck2.Test.make ~name:"incremental = from-scratch after random mutations"
    ~count:30 parity_gen (fun (seed, n, rows, jobs, ops) ->
      let st = Random.State.make [| seed |] in
      let inst =
        Synth.Gen_graph.random_tree st ~n ~rows ~null_prob:0.25
          ~orphan_prob:0.25 ()
      in
      let g = inst.Synth.Gen_graph.graph in
      let m = identity_mapping inst in
      let ctx0 =
        Eval_ctx.create ~incremental:true ~jobs ~kb:inst.Synth.Gen_graph.kb
          inst.Synth.Gen_graph.db
      in
      let check ctx =
        let db = Eval_ctx.db ctx in
        let scratch = Eval_ctx.transient db in
        (* D(G) under every algorithm, through the ONE shared cache. *)
        List.for_all
          (fun alg ->
            assocs_equal
              (Eval_ctx.data_associations ~algorithm:alg ctx g)
              (Eval_ctx.data_associations ~algorithm:alg scratch g))
          [ Eval_ctx.Naive; Eval_ctx.Indexed; Eval_ctx.Outerjoin_if_tree ]
        (* F(J) of the full graph, tuple-for-tuple. *)
        && Relation.tuples (Eval_ctx.full_associations ctx g)
           = Relation.tuples (Eval_ctx.full_associations scratch g)
        (* Illustrations render byte-identically. *)
        &&
        let scheme r = r.Fulldisj.Full_disjunction.scheme in
        Clio.Illustration.render
          ~scheme:(scheme (Eval_ctx.data_associations ctx g))
          (Clio.illustrate ctx m)
        = Clio.Illustration.render
            ~scheme:(scheme (Eval_ctx.data_associations scratch g))
            (Clio.illustrate (Eval_ctx.create ~no_cache:true ~kb:(Eval_ctx.kb ctx) db) m)
      in
      (* Warm, mutate step by step, re-checking parity after every step. *)
      check ctx0
      && snd
           (List.fold_left
              (fun (ctx, ok) (op, rel_idx) ->
                if not ok then (ctx, false)
                else
                  let salt = Database.version (Eval_ctx.db ctx) * 13 in
                  let ctx =
                    Eval_ctx.with_db ctx
                      (apply_op (Eval_ctx.db ctx) (op, rel_idx, salt))
                  in
                  (ctx, check ctx))
              (ctx0, true) ops))

let () =
  Alcotest.run "incremental"
    [
      ( "promotion",
        [
          tc "free" `Quick test_promotion_free;
          tc "repaired" `Quick test_promotion_repaired;
          tc "fj repaired" `Quick test_promotion_fj_repaired;
          tc "rewrite fallback" `Quick test_rewrite_fallback;
        ] );
      ( "cache",
        [
          tc "peek neutrality" `Quick test_peek_does_not_touch_recency;
          tc "promoted recency+bytes" `Quick test_promoted_entry_recency_and_bytes;
        ] );
      ( "properties", [ qtest prop_incremental_equals_scratch ] );
    ]
