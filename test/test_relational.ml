(* Unit tests for the relational substrate: values, schemas, tuples,
   predicates, algebra (joins / outer joins / outer union), constraints,
   database catalog, CSV round-trips and rendering. *)

open Relational

let v_int i = Value.Int i
let v_str s = Value.String s
let attr = Alcotest.testable Attr.pp Attr.equal
let value = Alcotest.testable Value.pp Value.equal
let tuple = Alcotest.testable Tuple.pp Tuple.equal

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- Value --- *)

let test_value_equal () =
  Alcotest.(check bool) "null = null" true (Value.equal Value.Null Value.Null);
  Alcotest.(check bool) "1 = 1" true (Value.equal (v_int 1) (v_int 1));
  Alcotest.(check bool) "1 <> 2" false (Value.equal (v_int 1) (v_int 2));
  Alcotest.(check bool) "1 <> '1'" false (Value.equal (v_int 1) (v_str "1"));
  (* Regression: equal must be the kernel of compare — compare already said
     Int 1 = Float 1.0 and nan = nan while equal disagreed, so sort-based
     dedup and hash-based indexes could identify different tuple pairs. *)
  Alcotest.(check bool) "int = numerically equal float" true
    (Value.equal (v_int 1) (Value.Float 1.0));
  Alcotest.(check bool) "int <> other float" false
    (Value.equal (v_int 1) (Value.Float 1.5));
  Alcotest.(check bool) "nan reflexive (as compare says)" true
    (Value.equal (Value.Float Float.nan) (Value.Float Float.nan));
  Alcotest.(check bool) "signed zeros equal" true
    (Value.equal (Value.Float (-0.)) (Value.Float 0.))

(* The laws the three primitives must satisfy pairwise, on a value domain
   dense in the historical disagreement spots (mixed numerics, nan, signed
   zeros). *)
let value_gen =
  QCheck2.Gen.(
    oneof
      [
        return Value.Null;
        map (fun i -> Value.Int i) (int_range (-4) 4);
        map (fun f -> Value.Float f) (oneofl [ -1.5; -0.; 0.; 1.0; 2.0; 2.5; Float.nan; Float.infinity; Float.neg_infinity ]);
        map (fun i -> Value.Float (float_of_int i)) (int_range (-4) 4);
        map (fun s -> Value.String s) (oneofl [ ""; "a"; "1" ]);
        map (fun b -> Value.Bool b) bool;
      ])

let law_equal_iff_compare =
  QCheck2.Test.make ~name:"equal a b <=> compare a b = 0" ~count:2000
    QCheck2.Gen.(pair value_gen value_gen)
    (fun (a, b) -> Value.equal a b = (Value.compare a b = 0))

let law_equal_implies_hash =
  QCheck2.Test.make ~name:"equal a b ==> hash a = hash b" ~count:2000
    QCheck2.Gen.(pair value_gen value_gen)
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

let law_equal_reflexive =
  QCheck2.Test.make ~name:"equal reflexive (incl. nan)" ~count:500 value_gen
    (fun v -> Value.equal v v)

let test_value_compare_numeric () =
  Alcotest.(check int) "1 < 1.5" (-1) (Value.compare (v_int 1) (Value.Float 1.5));
  Alcotest.(check int) "2.5 > 2" 1 (Value.compare (Value.Float 2.5) (v_int 2));
  Alcotest.(check int) "equal across" 0 (Value.compare (v_int 2) (Value.Float 2.0))

let test_value_sql_eq_null () =
  Alcotest.(check (option bool)) "null = x unknown" None
    (Value.sql_eq Value.Null (v_int 1));
  Alcotest.(check (option bool)) "null = null unknown" None
    (Value.sql_eq Value.Null Value.Null);
  Alcotest.(check (option bool)) "1 = 1" (Some true) (Value.sql_eq (v_int 1) (v_int 1))

let test_value_arith () =
  Alcotest.(check value) "int add" (v_int 5) (Value.add (v_int 2) (v_int 3));
  Alcotest.(check value) "mixed add" (Value.Float 5.5)
    (Value.add (v_int 2) (Value.Float 3.5));
  Alcotest.(check value) "null propagates" Value.Null (Value.add Value.Null (v_int 1));
  Alcotest.(check value) "string add null" Value.Null (Value.add (v_str "x") (v_int 1));
  Alcotest.(check value) "sub" (v_int (-1)) (Value.sub (v_int 2) (v_int 3));
  Alcotest.(check value) "mul" (v_int 6) (Value.mul (v_int 2) (v_int 3))

let test_value_concat () =
  Alcotest.(check value) "concat" (v_str "ab") (Value.concat (v_str "a") (v_str "b"));
  Alcotest.(check value) "concat coerces" (v_str "a1")
    (Value.concat (v_str "a") (v_int 1));
  Alcotest.(check value) "concat null" Value.Null (Value.concat (v_str "a") Value.Null)

let test_value_csv_cell () =
  Alcotest.(check value) "empty is null" Value.Null (Value.of_csv_cell "");
  Alcotest.(check value) "null word" Value.Null (Value.of_csv_cell "NULL");
  Alcotest.(check value) "int" (v_int 42) (Value.of_csv_cell "42");
  Alcotest.(check value) "float" (Value.Float 4.5) (Value.of_csv_cell "4.5");
  Alcotest.(check value) "bool" (Value.Bool true) (Value.of_csv_cell "true");
  Alcotest.(check value) "string" (v_str "abc") (Value.of_csv_cell "abc")

let test_value_to_sql () =
  Alcotest.(check string) "null" "NULL" (Value.to_sql Value.Null);
  Alcotest.(check string) "string quoted" "'a''b'" (Value.to_sql (v_str "a'b"));
  Alcotest.(check string) "int" "7" (Value.to_sql (v_int 7));
  (* Regression: non-finite floats have no SQL literal; emit NULL rather than
     an unparsable "nan"/"inf" token. *)
  Alcotest.(check string) "nan" "NULL" (Value.to_sql (Value.Float Float.nan));
  Alcotest.(check string) "inf" "NULL" (Value.to_sql (Value.Float Float.infinity));
  Alcotest.(check string) "-inf" "NULL"
    (Value.to_sql (Value.Float Float.neg_infinity))

(* --- Attr / Schema --- *)

let test_attr_of_string () =
  Alcotest.(check attr) "parse" (Attr.make "R" "x") (Attr.of_string "R.x");
  Alcotest.check_raises "no dot" (Invalid_argument "Attr.of_string: missing '.' in x")
    (fun () -> ignore (Attr.of_string "x"))

let abc = Schema.make "R" [ "a"; "b"; "c" ]

let test_schema_index () =
  Alcotest.(check int) "b at 1" 1 (Schema.index abc (Attr.make "R" "b"));
  Alcotest.(check (option int)) "missing" None (Schema.index_opt abc (Attr.make "R" "z"));
  Alcotest.(check int) "arity" 3 (Schema.arity abc)

let test_schema_duplicate_rejected () =
  Alcotest.check_raises "dup"
    (Invalid_argument "Schema.of_attrs: duplicate attribute R.a") (fun () ->
      ignore (Schema.of_attrs [ Attr.make "R" "a"; Attr.make "R" "a" ]))

let test_schema_append_and_rels () =
  let s2 = Schema.make "S" [ "x" ] in
  let joined = Schema.append abc s2 in
  Alcotest.(check int) "arity 4" 4 (Schema.arity joined);
  Alcotest.(check (list string)) "rels" [ "R"; "S" ] (Schema.rels joined);
  Alcotest.(check (list int)) "positions of S" [ 3 ] (Schema.positions_of_rel joined "S")

let test_schema_rename () =
  let renamed = Schema.rename_rel abc ~from:"R" ~into:"R2" in
  Alcotest.(check int) "lookup renamed" 0 (Schema.index renamed (Attr.make "R2" "a"));
  Alcotest.(check (option int)) "old gone" None
    (Schema.index_opt renamed (Attr.make "R" "a"))

let test_schema_index_of_name () =
  let joined = Schema.append abc (Schema.make "S" [ "a"; "x" ]) in
  Alcotest.(check (option int)) "ambiguous a" None (Schema.index_of_name joined "a");
  Alcotest.(check (option int)) "unique x" (Some 4) (Schema.index_of_name joined "x")

(* --- Tuple --- *)

let t123 = Tuple.make [ v_int 1; v_int 2; v_int 3 ]

let test_tuple_subsumption () =
  let partial = Tuple.make [ v_int 1; Value.Null; v_int 3 ] in
  Alcotest.(check bool) "subsumes" true (Tuple.subsumes t123 partial);
  Alcotest.(check bool) "strict" true (Tuple.strictly_subsumes t123 partial);
  Alcotest.(check bool) "not reverse" false (Tuple.subsumes partial t123);
  Alcotest.(check bool) "self subsumes" true (Tuple.subsumes t123 t123);
  Alcotest.(check bool) "self not strict" false (Tuple.strictly_subsumes t123 t123);
  let other = Tuple.make [ v_int 9; Value.Null; v_int 3 ] in
  Alcotest.(check bool) "differing value" false (Tuple.subsumes t123 other)

let test_tuple_ops () =
  Alcotest.(check bool) "all null" true (Tuple.all_null (Tuple.nulls 3));
  Alcotest.(check bool) "not all null" false (Tuple.all_null t123);
  Alcotest.(check tuple) "project"
    (Tuple.make [ v_int 3; v_int 1 ])
    (Tuple.project t123 [ 2; 0 ]);
  Alcotest.(check tuple) "concat"
    (Tuple.make [ v_int 1; v_int 2; v_int 3; v_int 7 ])
    (Tuple.concat t123 (Tuple.make [ v_int 7 ]))

(* --- Relation --- *)

let mk_rel name cols rows = Relation.create name (Schema.make name cols) rows

let r_small =
  mk_rel "R" [ "a"; "b" ]
    [ Tuple.make [ v_int 1; v_str "x" ]; Tuple.make [ v_int 2; v_str "y" ] ]

let test_relation_dedup () =
  let r = mk_rel "R" [ "a" ] [ Tuple.make [ v_int 1 ]; Tuple.make [ v_int 1 ] ] in
  Alcotest.(check int) "dedup" 1 (Relation.cardinality r)

let test_relation_all_null_rejected () =
  Alcotest.check_raises "all null" (Invalid_argument "Relation.create R: all-null tuple")
    (fun () -> ignore (mk_rel "R" [ "a"; "b" ] [ Tuple.nulls 2 ]))

let test_relation_arity_mismatch () =
  Alcotest.check_raises "arity"
    (Invalid_argument "Relation.create R: tuple arity 1, schema arity 2") (fun () ->
      ignore (mk_rel "R" [ "a"; "b" ] [ Tuple.make [ v_int 1 ] ]))

let test_relation_column_values () =
  let r =
    mk_rel "R" [ "a"; "b" ]
      [
        Tuple.make [ v_int 1; v_int 0 ];
        Tuple.make [ v_int 2; v_int 0 ];
        Tuple.make [ v_int 2; v_int 1 ];
        Tuple.make [ Value.Null; v_int 0 ];
      ]
  in
  Alcotest.(check int) "non-null distinct" 2
    (List.length (Relation.column_values r (Attr.make "R" "a")))

(* --- Predicate --- *)

let ab_schema = Schema.make "R" [ "a"; "b" ]

let test_predicate_strongness () =
  let join_pred = Predicate.eq_cols (Attr.make "R" "a") (Attr.make "R" "b") in
  Alcotest.(check bool) "equi strong" true (Predicate.is_strong ab_schema join_pred);
  let weak = Predicate.Is_null (Expr.col "R" "a") in
  Alcotest.(check bool) "is_null weak" false (Predicate.is_strong ab_schema weak)

let test_predicate_three_valued () =
  let p = Predicate.Cmp (Predicate.Lt, Expr.col "R" "a", Expr.Const (v_int 5)) in
  let f = Predicate.compile ab_schema p in
  Alcotest.(check bool) "3 < 5" true (f (Tuple.make [ v_int 3; v_int 0 ]));
  Alcotest.(check bool) "7 < 5" false (f (Tuple.make [ v_int 7; v_int 0 ]));
  Alcotest.(check bool) "null < 5 is unknown -> false" false
    (f (Tuple.make [ Value.Null; v_int 0 ]))

let test_predicate_not_unknown () =
  (* NOT (null = 1) is unknown, collapses to false — not true. *)
  let p =
    Predicate.Not (Predicate.Cmp (Predicate.Eq, Expr.col "R" "a", Expr.Const (v_int 1)))
  in
  let f = Predicate.compile ab_schema p in
  Alcotest.(check bool) "not unknown = false" false
    (f (Tuple.make [ Value.Null; v_int 0 ]))

let test_predicate_or_with_unknown () =
  (* (null = 1) OR true = true. *)
  let p =
    Predicate.Or
      ( Predicate.Cmp (Predicate.Eq, Expr.col "R" "a", Expr.Const (v_int 1)),
        Predicate.True )
  in
  let f = Predicate.compile ab_schema p in
  Alcotest.(check bool) "unknown or true" true (f (Tuple.make [ Value.Null; v_int 0 ]))

let test_predicate_equi_atoms () =
  let p =
    Predicate.And
      ( Predicate.eq_cols (Attr.make "R" "a") (Attr.make "S" "x"),
        Predicate.eq_cols (Attr.make "R" "b") (Attr.make "S" "y") )
  in
  Alcotest.(check (option int)) "two atoms" (Some 2)
    (Option.map List.length (Predicate.as_equi_atoms p));
  let q = Predicate.Is_null (Expr.col "R" "a") in
  Alcotest.(check (option int)) "not equi" None
    (Option.map List.length (Predicate.as_equi_atoms q))

let test_predicate_rename () =
  let p = Predicate.eq_cols (Attr.make "R" "a") (Attr.make "S" "x") in
  let renamed = Predicate.rename_rel p ~from:"S" ~into:"S2" in
  Alcotest.(check string) "renamed" "R.a = S2.x" (Predicate.to_sql renamed)

(* --- Expr --- *)

let test_expr_eval () =
  let e = Expr.Add (Expr.col "R" "a", Expr.Const (v_int 10)) in
  Alcotest.(check value) "a+10" (v_int 11)
    (Expr.eval ab_schema e (Tuple.make [ v_int 1; v_int 0 ]));
  let c = Expr.Coalesce (Expr.col "R" "a", Expr.Const (v_int 0)) in
  Alcotest.(check value) "coalesce null" (v_int 0)
    (Expr.eval ab_schema c (Tuple.make [ Value.Null; v_int 5 ]))

let test_expr_columns () =
  let e = Expr.Concat (Expr.col "R" "a", Expr.col "S" "x") in
  Alcotest.(check (list attr)) "columns"
    [ Attr.make "R" "a"; Attr.make "S" "x" ]
    (Expr.columns e)

(* --- Algebra --- *)

let left =
  mk_rel "L" [ "id"; "v" ]
    [
      Tuple.make [ v_int 1; v_str "a" ];
      Tuple.make [ v_int 2; v_str "b" ];
      Tuple.make [ v_int 3; v_str "c" ];
      Tuple.make [ Value.Null; v_str "d" ];
    ]

let right =
  mk_rel "R" [ "id"; "w" ]
    [
      Tuple.make [ v_int 1; v_str "x" ];
      Tuple.make [ v_int 1; v_str "y" ];
      Tuple.make [ v_int 4; v_str "z" ];
      Tuple.make [ Value.Null; v_str "q" ];
    ]

let join_pred = Predicate.eq_cols (Attr.make "L" "id") (Attr.make "R" "id")

let test_join () =
  let j = Algebra.join join_pred left right in
  Alcotest.(check int) "two matches" 2 (Relation.cardinality j)

let test_join_null_keys_never_match () =
  (* Strong predicates: the null ids on both sides must not pair up. *)
  let j = Algebra.join join_pred left right in
  Relation.iter
    (fun t -> Alcotest.(check bool) "no null key" false (Value.is_null t.(0)))
    j

let test_left_outer_join () =
  let j = Algebra.left_outer_join join_pred left right in
  (* 2 matches + 3 dangling left (ids 2, 3, null). *)
  Alcotest.(check int) "loj size" 5 (Relation.cardinality j)

let test_full_outer_join () =
  let j = Algebra.full_outer_join join_pred left right in
  (* 2 matches + 3 dangling left + 2 dangling right (id 4, null). *)
  Alcotest.(check int) "foj size" 7 (Relation.cardinality j)

let test_join_nested_loop_fallback () =
  (* Non-equi predicate exercises the nested-loop path. *)
  let p = Predicate.Cmp (Predicate.Lt, Expr.col "L" "id", Expr.col "R" "id") in
  let j = Algebra.join p left right in
  (* pairs with l.id < r.id among non-null: (1,4) (2,4) (3,4). *)
  Alcotest.(check int) "lt join" 3 (Relation.cardinality j)

let test_select_project () =
  let p = Predicate.Cmp (Predicate.Ge, Expr.col "L" "id", Expr.Const (v_int 2)) in
  Alcotest.(check int) "select" 2 (Relation.cardinality (Algebra.select p left));
  let proj = Algebra.project [ Attr.make "L" "v" ] left in
  Alcotest.(check int) "project arity" 1 (Schema.arity (Relation.schema proj));
  Alcotest.(check int) "project size" 4 (Relation.cardinality proj)

let test_product () =
  let p = Algebra.product left right in
  Alcotest.(check int) "product" 16 (Relation.cardinality p)

let test_union_difference () =
  let a = mk_rel "A" [ "x" ] [ Tuple.make [ v_int 1 ]; Tuple.make [ v_int 2 ] ] in
  let b =
    Relation.create "B" (Schema.make "A" [ "x" ])
      [ Tuple.make [ v_int 2 ]; Tuple.make [ v_int 3 ] ]
  in
  Alcotest.(check int) "union" 3 (Relation.cardinality (Algebra.union a b));
  Alcotest.(check int) "difference" 1 (Relation.cardinality (Algebra.difference a b))

let test_outer_union () =
  let a = mk_rel "A" [ "x" ] [ Tuple.make [ v_int 1 ] ] in
  let b = mk_rel "B" [ "y" ] [ Tuple.make [ v_int 2 ] ] in
  let ou = Algebra.outer_union a b in
  Alcotest.(check int) "arity 2" 2 (Schema.arity (Relation.schema ou));
  Alcotest.(check int) "two rows" 2 (Relation.cardinality ou);
  Relation.iter
    (fun t ->
      Alcotest.(check bool) "one null each" true
        (Value.is_null t.(0) <> Value.is_null t.(1)))
    ou

let test_pad () =
  let a = mk_rel "A" [ "x" ] [ Tuple.make [ v_int 1 ] ] in
  let target = Schema.of_attrs [ Attr.make "B" "y"; Attr.make "A" "x" ] in
  let padded = Algebra.pad a target in
  Alcotest.(check tuple) "pad reorders"
    (Tuple.make [ Value.Null; v_int 1 ])
    (List.hd (Relation.tuples padded))

(* --- Integrity --- *)

let parent = mk_rel "P" [ "id" ] [ Tuple.make [ v_int 1 ]; Tuple.make [ v_int 2 ] ]

let child =
  mk_rel "C" [ "id"; "pid" ]
    [
      Tuple.make [ v_int 10; v_int 1 ];
      Tuple.make [ v_int 11; Value.Null ];
      Tuple.make [ v_int 12; v_int 9 ];
    ]

let db = Database.of_relations [ parent; child ]

let test_fk_violation () =
  let fk =
    Integrity.Foreign_key
      { rel = "C"; cols = [ "pid" ]; ref_rel = "P"; ref_cols = [ "id" ] }
  in
  let violations = Integrity.check ~lookup:(Database.find db) fk in
  (* Null FK passes; 9 dangles. *)
  Alcotest.(check int) "one dangling" 1 (List.length violations)

let test_pk_violation () =
  let dup =
    mk_rel "D" [ "k"; "x" ]
      [ Tuple.make [ v_int 1; v_int 1 ]; Tuple.make [ v_int 1; v_int 2 ] ]
  in
  let db = Database.of_relations [ dup ] in
  let pk = Integrity.Primary_key ("D", [ "k" ]) in
  Alcotest.(check int) "dup key" 1
    (List.length (Integrity.check ~lookup:(Database.find db) pk))

let test_not_null_violation () =
  let nn = Integrity.Not_null ("C", "pid") in
  Alcotest.(check int) "one null" 1
    (List.length (Integrity.check ~lookup:(Database.find db) nn))

let test_unknown_relation_reported () =
  let pk = Integrity.Primary_key ("Z", [ "k" ]) in
  Alcotest.(check int) "unknown rel" 1
    (List.length (Integrity.check ~lookup:(Database.find db) pk))

let test_fk_join_predicate () =
  let fk =
    Integrity.Foreign_key
      { rel = "C"; cols = [ "pid" ]; ref_rel = "P"; ref_cols = [ "id" ] }
  in
  match Integrity.join_predicate fk with
  | Some p -> Alcotest.(check string) "pred" "C.pid = P.id" (Predicate.to_sql p)
  | None -> Alcotest.fail "expected a predicate"

(* --- Database --- *)

let test_database_ops () =
  Alcotest.(check (list string)) "names" [ "P"; "C" ] (Database.relation_names db);
  Alcotest.(check bool) "mem" true (Database.mem db "P");
  Alcotest.(check bool) "not mem" false (Database.mem db "Z");
  Alcotest.(check int) "cells" ((2 * 1) + (3 * 2)) (Database.cell_count db)

let test_database_duplicate_rejected () =
  Alcotest.check_raises "dup" (Invalid_argument "Database.add: duplicate relation P")
    (fun () -> ignore (Database.add db parent))

let test_database_find_value () =
  let occs = Database.find_value db (v_int 1) in
  (* id 1 in P.id and C.pid. *)
  Alcotest.(check int) "two occurrences" 2 (List.length occs)

(* --- the consolidated builder and the columnar twin --- *)

let test_create_builder () =
  let schema = Schema.make "A" [ "x"; "y" ] in
  let dup =
    [
      Tuple.make [ v_int 1; v_int 2 ];
      Tuple.make [ v_int 3; Value.Null ];
      Tuple.make [ v_int 1; v_int 2 ];
    ]
  in
  let r = Relation.create "A" schema dup in
  (* Dedup keeps the first occurrence. *)
  Alcotest.(check int) "deduped" 2 (Relation.cardinality r);
  Alcotest.(check int) "dedup skippable on known sets" 2
    (Relation.cardinality
       (Relation.create ~dedup:false "A" schema (Relation.tuples r)));
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Relation.create A: tuple arity 1, schema arity 2")
    (fun () -> ignore (Relation.create "A" schema [ Tuple.make [ v_int 1 ] ]));
  Alcotest.check_raises "all-null rejected"
    (Invalid_argument "Relation.create A: all-null tuple") (fun () ->
      ignore
        (Relation.create "A" schema [ Tuple.make [ Value.Null; Value.Null ] ]));
  Alcotest.(check int) "all-null allowed when asked" 1
    (Relation.cardinality
       (Relation.create ~allow_all_null:true "A" schema
          [ Tuple.make [ Value.Null; Value.Null ] ]))

let test_of_columns_builder () =
  let schema = Schema.make "A" [ "x"; "y" ] in
  let boxed =
    Relation.create "A" schema
      [
        Tuple.make [ v_int 1; v_int 2 ];
        Tuple.make [ v_int 3; Value.Null ];
      ]
  in
  let r = Relation.of_columns "A" schema (Relation.columns boxed) in
  Alcotest.(check bool) "round-trips through columns" true
    (Relation.equal_contents boxed r);
  Alcotest.check_raises "column count"
    (Invalid_argument "Relation.of_columns A: 1 columns, schema arity 2")
    (fun () -> ignore (Relation.of_columns "A" schema [| [| 0 |] |]));
  Alcotest.check_raises "ragged columns"
    (Invalid_argument "Relation.of_columns A: column 1 length 0, expected 1")
    (fun () -> ignore (Relation.of_columns "A" schema [| [| 0 |]; [||] |]));
  Alcotest.check_raises "all-null rejected"
    (Invalid_argument "Relation.of_columns A: all-null tuple") (fun () ->
      ignore (Relation.of_columns "A" schema [| [| 0 |]; [| 0 |] |]));
  Alcotest.(check int) "all-null allowed when asked" 1
    (Relation.cardinality
       (Relation.of_columns ~allow_all_null:true "A" schema [| [| 0 |]; [| 0 |] |]))

let test_equal_contents_order_insensitive () =
  let schema = Schema.make "A" [ "x" ] in
  let r1 = Relation.create "A" schema [ Tuple.make [ v_int 1 ]; Tuple.make [ v_int 2 ] ] in
  let r2 = Relation.create "A" schema [ Tuple.make [ v_int 2 ]; Tuple.make [ v_int 1 ] ] in
  let r3 = Relation.create "A" schema [ Tuple.make [ v_int 1 ] ] in
  Alcotest.(check bool) "order irrelevant" true (Relation.equal_contents r1 r2);
  Alcotest.(check bool) "cardinality matters" false (Relation.equal_contents r1 r3);
  Alcotest.(check bool) "subset is not equality" false (Relation.equal_contents r3 r1)

(* --- changelog: insert_tuples, diff classification, deltas_from --- *)

let delta_db =
  Database.of_relations
    [
      Relation.create "R"
        (Schema.make "R" [ "a"; "b" ])
        [ Tuple.make [ v_int 1; v_int 10 ]; Tuple.make [ v_int 2; v_int 20 ] ];
    ]

let test_insert_tuples () =
  let t3 = Tuple.make [ v_int 3; v_int 30 ] in
  let db1 = Database.insert_tuples delta_db "R" [ t3 ] in
  Alcotest.(check bool) "version bumped" true
    (Database.version db1 > Database.version delta_db);
  Alcotest.(check int) "tuple appended" 3 (Relation.cardinality (Database.get db1 "R"));
  (* The recorded step carries exactly the fresh tuples. *)
  (match Database.history db1 with
  | { Delta.kind = Delta.Insert { relation = "R"; tuples = [ t ] }; _ } :: _ ->
      Alcotest.(check bool) "recorded the fresh tuple" true (Tuple.equal t t3)
  | _ -> Alcotest.fail "expected an Insert step for R");
  (* Duplicates (vs existing and within the batch) are dropped; an
     all-duplicate batch is a version no-op. *)
  let db2 = Database.insert_tuples db1 "R" [ t3; Tuple.make [ v_int 1; v_int 10 ] ] in
  Alcotest.(check int) "no-op keeps version" (Database.version db1) (Database.version db2);
  let db3 = Database.insert_tuples db1 "R" [ t3; Tuple.make [ v_int 4; v_int 40 ]; Tuple.make [ v_int 4; v_int 40 ] ] in
  Alcotest.(check int) "batch deduped" 4 (Relation.cardinality (Database.get db3 "R"));
  Alcotest.check_raises "unknown relation"
    (Invalid_argument "Database.insert_tuples: unknown relation S") (fun () ->
      ignore (Database.insert_tuples delta_db "S" [ t3 ]))

let test_replace_delta_classification () =
  let r = Database.get delta_db "R" in
  (* Pure superset: an Insert of exactly the added tuples. *)
  let grown =
    Relation.create "R" (Relation.schema r)
      (Relation.tuples r @ [ Tuple.make [ v_int 5; v_int 50 ] ])
  in
  (match Database.history (Database.replace delta_db grown) with
  | { Delta.kind = Delta.Insert { relation = "R"; tuples = [ _ ] }; _ } :: _ -> ()
  | _ -> Alcotest.fail "superset replace should record Insert");
  (* A removal is a Rewrite. *)
  let shrunk =
    Relation.create "R" (Relation.schema r) [ Tuple.make [ v_int 1; v_int 10 ] ]
  in
  (match Database.history (Database.replace delta_db shrunk) with
  | { Delta.kind = Delta.Rewrite { relation = "R" }; _ } :: _ -> ()
  | _ -> Alcotest.fail "shrinking replace should record Rewrite");
  (* A schema change is a Rewrite even with no tuples removed. *)
  let reshaped = Relation.create "R" (Schema.make "R" [ "a"; "c" ]) (Relation.tuples r) in
  (match Database.history (Database.replace delta_db reshaped) with
  | { Delta.kind = Delta.Rewrite { relation = "R" }; _ } :: _ -> ()
  | _ -> Alcotest.fail "schema-changing replace should record Rewrite");
  (* add and add_constraint record their own kinds. *)
  let s = Relation.create "S" (Schema.make "S" [ "x" ]) [] in
  (match Database.history (Database.add delta_db s) with
  | { Delta.kind = Delta.New_relation "S"; _ } :: _ -> ()
  | _ -> Alcotest.fail "add should record New_relation");
  match
    Database.history
      (Database.add_constraint delta_db
         (Integrity.Foreign_key
            { rel = "R"; cols = [ "a" ]; ref_rel = "R"; ref_cols = [ "a" ] }))
  with
  | { Delta.kind = Delta.Constraints_only; _ } :: _ -> ()
  | _ -> Alcotest.fail "add_constraint should record Constraints_only"

let test_deltas_from () =
  let v0 = Database.version delta_db in
  let db1 = Database.insert_tuples delta_db "R" [ Tuple.make [ v_int 3; v_int 30 ] ] in
  let db2 = Database.insert_tuples db1 "R" [ Tuple.make [ v_int 4; v_int 40 ] ] in
  (* Same version: an empty chain. *)
  (match Database.deltas_from db2 (Database.version db2) with
  | Some [] -> ()
  | _ -> Alcotest.fail "same version should give an empty chain");
  (* Two steps back: oldest first. *)
  (match Database.deltas_from db2 v0 with
  | Some [ s1; s2 ] ->
      Alcotest.(check int) "chain starts at the ancestor" v0 s1.Delta.from_version;
      Alcotest.(check int) "chain is contiguous" s1.Delta.to_version s2.Delta.from_version;
      Alcotest.(check int) "chain ends at the current version"
        (Database.version db2) s2.Delta.to_version
  | _ -> Alcotest.fail "expected a two-step chain");
  (* A version from another lineage is not an ancestor. *)
  Alcotest.(check bool) "unknown ancestor rejected" true
    (Database.deltas_from db2 (Database.version db2 + 17) = None)

let test_history_bounded () =
  let db =
    List.fold_left
      (fun db i -> Database.insert_tuples db "R" [ Tuple.make [ v_int (100 + i); v_int i ] ])
      delta_db
      (List.init (Database.history_limit delta_db + 8) Fun.id)
  in
  Alcotest.(check int) "window bounded" (Database.history_limit db)
    (List.length (Database.history db));
  (* Beyond the window the ancestor is unreachable. *)
  Alcotest.(check bool) "pre-window ancestor unreachable" true
    (Database.deltas_from db (Database.version delta_db) = None)

let test_history_limit_setting () =
  let saved = Database.process_history_limit () in
  Fun.protect
    ~finally:(fun () -> Database.set_history_limit saved)
    (fun () ->
      Database.set_history_limit 4;
      let db =
        List.fold_left
          (fun db i ->
            Database.insert_tuples db "R" [ Tuple.make [ v_int (200 + i); v_int i ] ])
          delta_db
          (List.init 10 Fun.id)
      in
      Alcotest.(check int) "narrow window" 4 (List.length (Database.history db));
      Alcotest.check_raises "limit must be positive"
        (Invalid_argument "Database.set_history_limit: limit must be >= 1")
        (fun () -> Database.set_history_limit 0))

(* Two databases with different pinned limits truncate independently:
   neither the process default nor the other database's limit leaks. *)
let test_history_limit_per_database () =
  let grow db n base =
    List.fold_left
      (fun db i ->
        Database.insert_tuples db "R" [ Tuple.make [ v_int (base + i); v_int i ] ])
      db
      (List.init n Fun.id)
  in
  let narrow = grow (Database.with_history_limit delta_db 3) 12 300 in
  let wide = grow (Database.with_history_limit delta_db 9) 12 400 in
  Alcotest.(check int) "narrow db keeps 3" 3 (List.length (Database.history narrow));
  Alcotest.(check int) "wide db keeps 9" 9 (List.length (Database.history wide));
  (* The process default is untouched by pinned databases... *)
  let default = grow delta_db 5 500 in
  Alcotest.(check int) "default db reads the process default"
    (Database.process_history_limit ())
    (Database.history_limit default);
  (* ...and changing it does not move a pinned database's window. *)
  let saved = Database.process_history_limit () in
  Fun.protect
    ~finally:(fun () -> Database.set_history_limit saved)
    (fun () ->
      Database.set_history_limit 2;
      let narrow2 = grow narrow 4 600 in
      Alcotest.(check int) "pinned limit survives the global setter" 3
        (List.length (Database.history narrow2)));
  Alcotest.check_raises "pinned limit must be positive"
    (Invalid_argument "Database.with_history_limit: limit must be >= 1")
    (fun () -> ignore (Database.with_history_limit delta_db 0))

(* Dropping a step off the bounded window must bump the eviction counter
   — the signal that promotion will degrade to from-scratch recompute. *)
let test_history_eviction_counted () =
  let was_enabled = Obs.enabled () in
  Obs.enable ();
  Fun.protect
    ~finally:(fun () -> if not was_enabled then Obs.disable ())
    (fun () ->
      let evicted () = Obs.Counter.value Obs.Names.delta_history_evicted in
      let db = Database.with_history_limit delta_db 3 in
      let db, _ =
        List.fold_left
          (fun (db, i) () ->
            (Database.insert_tuples db "R" [ Tuple.make [ v_int (700 + i); v_int i ] ],
             i + 1))
          (db, 0)
          (List.init 3 (fun _ -> ()))
      in
      let before = evicted () in
      let db' =
        Database.insert_tuples db "R" [ Tuple.make [ v_int 799; v_int 99 ] ]
      in
      Alcotest.(check int) "overflow recorded" (before + 1) (evicted ());
      Alcotest.(check int) "window still bounded" 3
        (List.length (Database.history db')))

(* --- CSV --- *)

let test_csv_roundtrip () =
  let text = "id,name,age\n1,Ann,6\n2,\"Bo,b\",\n" in
  let r = Csv_io.relation_of_string ~name:"Kids" text in
  Alcotest.(check int) "two rows" 2 (Relation.cardinality r);
  let s = Relation.schema r in
  let bob =
    Relation.tuples r
    |> List.find (fun t ->
           Value.equal t.(Schema.index s (Attr.make "Kids" "name")) (v_str "Bo,b"))
  in
  Alcotest.(check bool) "null age" true
    (Value.is_null bob.(Schema.index s (Attr.make "Kids" "age")));
  let again = Csv_io.relation_of_string ~name:"Kids" (Csv_io.relation_to_string r) in
  Alcotest.(check bool) "round trip" true (Relation.equal_contents r again)

let test_csv_quoted_quote () =
  let rows = Csv_io.parse_string "a\n\"he said \"\"hi\"\"\"\n" in
  Alcotest.(check int) "rows" 2 (List.length rows);
  Alcotest.(check string) "unescaped" "he said \"hi\"" (List.hd (List.nth rows 1))

let test_csv_database_of_dir () =
  (* The sample library shipped under examples/. *)
  let dir = "../examples/data/library" in
  if Sys.file_exists dir then begin
    let db = Csv_io.database_of_dir dir in
    Alcotest.(check (list string)) "relations from files" [ "authors"; "books"; "loans" ]
      (Database.relation_names db);
    Alcotest.(check int) "books rows" 4
      (Relation.cardinality (Database.get db "books"))
  end
  else Printf.printf "(skipping: %s not found from test cwd)\n" dir

(* --- Render --- *)

let test_render_contains_values () =
  let s = Render.relation r_small in
  Alcotest.(check bool) "has name" true (contains s "R");
  Alcotest.(check bool) "has x" true (contains s "x");
  Alcotest.(check bool) "has y" true (contains s "y")

let test_render_annotated () =
  let s =
    Render.annotated ~annot_header:"tag"
      [ ("T1", Tuple.make [ v_int 1; v_str "x" ]) ]
      (Relation.schema r_small)
  in
  Alcotest.(check bool) "tag col" true (contains s "tag");
  Alcotest.(check bool) "annot" true (contains s "T1")

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "relational"
    [
      ( "value",
        [
          tc "equal" `Quick test_value_equal;
          tc "numeric compare" `Quick test_value_compare_numeric;
          tc "sql_eq null" `Quick test_value_sql_eq_null;
          tc "arith" `Quick test_value_arith;
          tc "concat" `Quick test_value_concat;
          tc "csv cell" `Quick test_value_csv_cell;
          tc "to_sql" `Quick test_value_to_sql;
          QCheck_alcotest.to_alcotest ~long:false law_equal_iff_compare;
          QCheck_alcotest.to_alcotest ~long:false law_equal_implies_hash;
          QCheck_alcotest.to_alcotest ~long:false law_equal_reflexive;
        ] );
      ( "schema",
        [
          tc "attr parse" `Quick test_attr_of_string;
          tc "index" `Quick test_schema_index;
          tc "duplicate rejected" `Quick test_schema_duplicate_rejected;
          tc "append/rels" `Quick test_schema_append_and_rels;
          tc "rename" `Quick test_schema_rename;
          tc "index_of_name" `Quick test_schema_index_of_name;
        ] );
      ( "tuple",
        [
          tc "subsumption" `Quick test_tuple_subsumption;
          tc "ops" `Quick test_tuple_ops;
        ] );
      ( "relation",
        [
          tc "dedup" `Quick test_relation_dedup;
          tc "all-null rejected" `Quick test_relation_all_null_rejected;
          tc "arity mismatch" `Quick test_relation_arity_mismatch;
          tc "column values" `Quick test_relation_column_values;
        ] );
      ( "predicate",
        [
          tc "strongness" `Quick test_predicate_strongness;
          tc "three-valued" `Quick test_predicate_three_valued;
          tc "not unknown" `Quick test_predicate_not_unknown;
          tc "or unknown" `Quick test_predicate_or_with_unknown;
          tc "equi atoms" `Quick test_predicate_equi_atoms;
          tc "rename" `Quick test_predicate_rename;
        ] );
      ("expr", [ tc "eval" `Quick test_expr_eval; tc "columns" `Quick test_expr_columns ]);
      ( "algebra",
        [
          tc "join" `Quick test_join;
          tc "null keys" `Quick test_join_null_keys_never_match;
          tc "left outer join" `Quick test_left_outer_join;
          tc "full outer join" `Quick test_full_outer_join;
          tc "nested loop" `Quick test_join_nested_loop_fallback;
          tc "select/project" `Quick test_select_project;
          tc "product" `Quick test_product;
          tc "union/difference" `Quick test_union_difference;
          tc "outer union" `Quick test_outer_union;
          tc "pad" `Quick test_pad;
        ] );
      ( "integrity",
        [
          tc "fk violation" `Quick test_fk_violation;
          tc "pk violation" `Quick test_pk_violation;
          tc "not-null violation" `Quick test_not_null_violation;
          tc "unknown relation" `Quick test_unknown_relation_reported;
          tc "fk join predicate" `Quick test_fk_join_predicate;
        ] );
      ( "database",
        [
          tc "ops" `Quick test_database_ops;
          tc "duplicate rejected" `Quick test_database_duplicate_rejected;
          tc "find value" `Quick test_database_find_value;
        ] );
      ( "arrays",
        [
          tc "create builder" `Quick test_create_builder;
          tc "of_columns builder" `Quick test_of_columns_builder;
          tc "equal_contents" `Quick test_equal_contents_order_insensitive;
        ] );
      ( "changelog",
        [
          tc "insert_tuples" `Quick test_insert_tuples;
          tc "replace classification" `Quick test_replace_delta_classification;
          tc "deltas_from" `Quick test_deltas_from;
          tc "history bounded" `Quick test_history_bounded;
          tc "history limit setting" `Quick test_history_limit_setting;
          tc "history limit per database" `Quick test_history_limit_per_database;
          tc "history eviction counted" `Quick test_history_eviction_counted;
        ] );
      ( "csv",
        [
          tc "roundtrip" `Quick test_csv_roundtrip;
          tc "quoted quotes" `Quick test_csv_quoted_quote;
          tc "database of dir" `Quick test_csv_database_of_dir;
        ] );
      ( "render",
        [
          tc "contains values" `Quick test_render_contains_values;
          tc "annotated" `Quick test_render_annotated;
        ] );
    ]
