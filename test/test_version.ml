(* The branching version store: DAG semantics (branch/checkout/merge/
   diff/log), failed-commit atomicity, history-truncation promotion
   safety, the qcheck linearization property (every branch equals a
   linear replay of its own history, byte-for-byte, across jobs and
   cache configurations), and snapshot round-trips. *)

open Relational
module Store = Version.Store
module Op = Version.Op
module Scenario = Version.Scenario

let tc = Alcotest.test_case
let qtest t = QCheck_alcotest.to_alcotest ~long:false t
let spec = Scenario.Chain { n = 3; rows = 60; seed = 11 }

(* The test resolver mirrors the server's: the memoized scenario state
   wrapped in a context that either shares one cache or caches nothing.
   [history_limit] pins the per-database delta window (satellite: the
   truncation test shrinks it far below the commit count). *)
let resolver ?cache ?(jobs = 1) ?history_limit () sc =
  let db, kb, mapping = Scenario.resolve sc in
  let db =
    match history_limit with
    | None -> db
    | Some n -> Database.with_history_limit db n
  in
  let ctx =
    match cache with
    | Some cache -> Clio.Eval_ctx.create ~cache ~jobs ~kb db
    | None -> Clio.Eval_ctx.create ~no_cache:true ~jobs ~kb db
  in
  Clio.Workspace.create ctx mapping

let make_store ?cache ?jobs ?history_limit () =
  Store.create ~resolve:(resolver ?cache ?jobs ?history_limit ()) spec

(* Chain relations: R1 (id, p0, fk_R2), R2 (id, p0, fk_R3), R3 (id, p0).
   Keys start far above the generator's key space so inserts never
   collide with generated rows. *)
let insert_r1 k tag =
  Op.Insert
    {
      relation = "R1";
      rows = [ [| Value.Int (1_000_000 + k); Value.String tag; Value.Int k |] ];
    }

let insert_r3 k tag =
  Op.Insert
    { relation = "R3"; rows = [ [| Value.Int (3_000_000 + k); Value.String tag |] ] }

(* The evaluation the cache economics are about: D(G) of the branch's
   active mapping, rendered and hashed.  Any stale promotion shows up
   here as a digest mismatch. *)
let dg_digest ws =
  let ctx = Clio.Workspace.ctx ws in
  let mapping = (Clio.Workspace.active ws).Clio.Workspace.mapping in
  let rel =
    Fulldisj.Full_disjunction.to_relation
      (Clio.Mapping_eval.data_associations ctx mapping)
  in
  Digest.to_hex (Digest.string (Render.relation rel))

let with_temp_dir f =
  let dir = Filename.temp_file "clio_test_version" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end)
    (fun () -> f dir)

(* --- DAG semantics --- *)

let test_branch_checkout () =
  let t = make_store () in
  Alcotest.(check (list string)) "trunk only" [ Store.main ] (Store.branch_names t);
  ignore (Store.commit t ~branch:Store.main (insert_r1 1 "a"));
  ignore (Store.branch t ~from:Store.main "fork");
  Alcotest.(check (list string)) "creation order, main first"
    [ Store.main; "fork" ] (Store.branch_names t);
  Alcotest.(check bool) "has_branch" true (Store.has_branch t "fork");
  Alcotest.(check bool) "has_branch negative" false (Store.has_branch t "nope");
  (* A fresh fork is the same state: branching shares values. *)
  Alcotest.(check string) "fork digest = trunk digest"
    (Store.state_digest t Store.main)
    (Store.state_digest t "fork");
  let trunk_before = Store.state_digest t Store.main in
  ignore (Store.commit t ~branch:"fork" (insert_r1 2 "b"));
  Alcotest.(check bool) "fork diverges" true
    (Store.state_digest t "fork" <> trunk_before);
  Alcotest.(check string) "trunk unmoved by the fork's commit" trunk_before
    (Store.state_digest t Store.main);
  (* Branch-taking operations reject unknown/duplicate/empty names. *)
  (match Store.checkout t "nope" with
  | _ -> Alcotest.fail "unknown branch should raise"
  | exception Invalid_argument _ -> ());
  (match Store.branch t ~from:Store.main "fork" with
  | _ -> Alcotest.fail "duplicate branch name should raise"
  | exception Invalid_argument _ -> ());
  match Store.branch t ~from:Store.main "" with
  | _ -> Alcotest.fail "empty branch name should raise"
  | exception Invalid_argument _ -> ()

let test_log_oldest_first () =
  let t = make_store () in
  ignore (Store.commit t ~branch:Store.main (insert_r1 1 "a"));
  ignore (Store.commit t ~branch:Store.main (insert_r1 2 "b"));
  let log = Store.log t ~branch:Store.main in
  Alcotest.(check (list int)) "cids ascending from the root" [ 0; 1; 2 ]
    (List.map (fun c -> c.Store.cid) log);
  (match List.map (fun c -> c.Store.kind) log with
  | [ Store.Root; Store.Apply _; Store.Apply _ ] -> ()
  | _ -> Alcotest.fail "trunk log should be Root then Applies");
  ignore (Store.branch t ~from:Store.main "fork");
  ignore (Store.commit t ~branch:"fork" (insert_r1 3 "c"));
  let flog = Store.log t ~branch:"fork" in
  Alcotest.(check bool) "fork log runs back through the trunk" true
    (List.map (fun c -> c.Store.cid) flog = [ 0; 1; 2; 3; 4 ]);
  (match (List.nth flog 3).Store.kind with
  | Store.Branch_from "main" -> ()
  | _ -> Alcotest.fail "fork point recorded as Branch_from main");
  Alcotest.(check int) "linear_ops drops structural commits" 3
    (List.length (Store.linear_ops t ~branch:"fork"))

let test_failed_commit_atomic () =
  let t = make_store () in
  ignore (Store.commit t ~branch:Store.main (insert_r1 1 "a"));
  let head = Store.head t Store.main in
  let digest = Store.state_digest t Store.main in
  let commits = List.length (Store.log t ~branch:Store.main) in
  (match
     Store.commit t ~branch:Store.main
       (Op.Insert { relation = "Nope"; rows = [ [| Value.Int 1 |] ] })
   with
  | _ -> Alcotest.fail "unknown relation should raise"
  | exception Invalid_argument _ -> ());
  (match
     Store.commit t ~branch:Store.main
       (Op.Offer { start = "R3"; goal = "R1"; max_len = 1 })
   with
  | _ -> Alcotest.fail "no walks within 1 step should raise"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "head unchanged" head (Store.head t Store.main);
  Alcotest.(check string) "state unchanged" digest (Store.state_digest t Store.main);
  Alcotest.(check int) "nothing recorded" commits
    (List.length (Store.log t ~branch:Store.main))

let test_merge_and_lca () =
  let t = make_store () in
  ignore (Store.commit t ~branch:Store.main (insert_r1 1 "a"));
  let fork_point = Store.head t Store.main in
  ignore (Store.branch t ~from:Store.main "fork");
  ignore (Store.commit t ~branch:"fork" (insert_r1 2 "b"));
  ignore (Store.commit t ~branch:"fork" (insert_r3 3 "c"));
  Alcotest.(check (option int)) "lca is the fork point" (Some fork_point)
    (Store.lca t ~a:Store.main ~b:"fork");
  let main_head = Store.head t Store.main in
  Alcotest.(check int) "merge folds the fork's two inserts" 2
    (Store.merge t ~into:Store.main ~from:"fork");
  Alcotest.(check bool) "merge recorded" true (Store.head t Store.main > main_head);
  (match (List.nth (Store.log t ~branch:Store.main) 2).Store.kind with
  | Store.Merge { from_branch = "fork"; inserts } ->
      Alcotest.(check int) "both relations materialized" 2 (List.length inserts)
  | _ -> Alcotest.fail "merge commit should materialize the inserts");
  (* Only example tuples cross: the merged trunk now evaluates exactly
     like the fork (mapping state never diverged). *)
  Alcotest.(check string) "merged trunk D(G) = fork D(G)"
    (dg_digest (Store.checkout t "fork"))
    (dg_digest (Store.checkout t Store.main));
  (* Idempotent, and a no-op merge records nothing. *)
  let head = Store.head t Store.main in
  Alcotest.(check int) "second merge is a no-op" 0
    (Store.merge t ~into:Store.main ~from:"fork");
  Alcotest.(check int) "no-op merge records nothing" head (Store.head t Store.main);
  (* Back-merging picks up only the trunk's ancestry-marking merge
     commit: zero new rows (structural dedup), and once recorded the
     next back-merge is a true no-op. *)
  Alcotest.(check int) "back-merge finds nothing new" 0
    (Store.merge t ~into:"fork" ~from:Store.main);
  let fork_head = Store.head t "fork" in
  Alcotest.(check int) "second back-merge records nothing" 0
    (Store.merge t ~into:"fork" ~from:Store.main);
  Alcotest.(check int) "fork head settled" fork_head (Store.head t "fork")

let test_diff () =
  let t = make_store () in
  let fork_point = Store.head t Store.main in
  ignore (Store.branch t ~from:Store.main "fork");
  ignore (Store.commit t ~branch:"fork" (insert_r1 1 "a"));
  ignore (Store.commit t ~branch:"fork" (insert_r1 2 "b"));
  let d = Store.diff t ~a:"fork" ~b:Store.main in
  let get k =
    match List.assoc_opt k d with
    | Some v -> v
    | None -> Alcotest.failf "diff lacks %s" k
  in
  Alcotest.(check (float 0.)) "lca" (float_of_int fork_point) (get "diff.lca_cid");
  Alcotest.(check bool) "a is ahead" true (get "diff.ahead" >= 2.);
  Alcotest.(check (float 0.)) "b is not" 0. (get "diff.behind");
  Alcotest.(check (float 0.)) "row drift on R1" 2. (get "diff.rows.R1");
  Alcotest.(check bool) "zero-drift relations omitted" false
    (List.mem_assoc "diff.rows.R3" d)

(* --- satellite: history truncation never yields a stale promotion --- *)

(* A shared cache warmed on the trunk, then a fork whose insert run
   overflows a tiny delta-history window: [Database.deltas_from] loses
   the ancestry, so promotion must fall back to recomputation — the
   fork's D(G) has to match a cache-less linear replay byte-for-byte,
   and the eviction counter has to show the window actually overflowed. *)
let test_truncated_history_not_stale () =
  Obs.enable ();
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
  @@ fun () ->
  let cache = Engine.Eval_cache.create () in
  let t = make_store ~cache ~history_limit:2 () in
  ignore (dg_digest (Store.checkout t Store.main));
  ignore (Store.branch t ~from:Store.main "fork");
  for k = 1 to 6 do
    ignore (Store.commit t ~branch:"fork" (insert_r1 k (Printf.sprintf "t%d" k)))
  done;
  Alcotest.(check bool) "the history window actually overflowed" true
    (Obs.Counter.value Obs.Names.delta_history_evicted > 0);
  let warm = dg_digest (Store.checkout t "fork") in
  let replay =
    List.fold_left Op.apply
      (resolver ~history_limit:2 () spec)
      (Store.linear_ops t ~branch:"fork")
  in
  Alcotest.(check string) "shared-cache fork = cache-less replay" (dg_digest replay)
    warm

(* --- property: branches linearize, across jobs and cache configs --- *)

(* A random interleaving of branch / commit / merge actions, interpreted
   over one shared-cache store.  Individual ops may be invalid for the
   state they meet (offer with no walks, select of a missing entry,
   delete of the last entry) — those commits raise and, per the store's
   atomicity contract, record nothing, so the interpreter skips them. *)
type action =
  | A_branch of int
  | A_insert of int * int
  | A_offer of int
  | A_rotate of int
  | A_select of int * int
  | A_delete of int * int
  | A_confirm of int
  | A_merge of int * int

let action_gen =
  QCheck2.Gen.(
    let* tag = int_range 0 8 in
    let* a = int_range 0 1000 in
    let* b = int_range 0 1000 in
    return
      (match tag with
      | 0 -> A_branch a
      | 1 | 2 -> A_insert (a, b)
      | 3 -> A_offer a
      | 4 -> A_rotate a
      | 5 -> A_select (a, b)
      | 6 -> A_delete (a, b)
      | 7 -> A_confirm a
      | _ -> A_merge (a, b)))

let script_gen = QCheck2.Gen.(list_size (int_range 3 10) action_gen)

let run_script t script =
  let pick i = List.nth (Store.branch_names t) (i mod List.length (Store.branch_names t)) in
  let try_commit branch op =
    match Store.commit t ~branch op with
    | _ -> ()
    | exception (Invalid_argument _ | Not_found) -> ()
  in
  List.iteri
    (fun step a ->
      match a with
      | A_branch i ->
          let n = List.length (Store.branch_names t) in
          if n < 4 then ignore (Store.branch t ~from:(pick i) (Printf.sprintf "b%d" step))
      | A_insert (i, k) -> try_commit (pick i) (insert_r1 (step * 1000 + k) "q")
      | A_offer i ->
          try_commit (pick i) (Op.Offer { start = "R1"; goal = "R3"; max_len = 2 })
      | A_rotate i -> try_commit (pick i) Op.Rotate
      | A_select (i, e) ->
          let branch = pick i in
          let entries = Clio.Workspace.entries (Store.checkout t branch) in
          let id = (List.nth entries (e mod List.length entries)).Clio.Workspace.id in
          try_commit branch (Op.Select { entry = id })
      | A_delete (i, e) ->
          let branch = pick i in
          let entries = Clio.Workspace.entries (Store.checkout t branch) in
          let id = (List.nth entries (e mod List.length entries)).Clio.Workspace.id in
          try_commit branch (Op.Delete { entry = id })
      | A_confirm i -> try_commit (pick i) Op.Confirm
      | A_merge (i, j) ->
          let into = pick i and from = pick j in
          if into <> from then ignore (Store.merge t ~into ~from))
    script

let prop_branches_linearize =
  QCheck2.Test.make ~name:"every branch = linear replay (jobs x cache)" ~count:12
    script_gen (fun script ->
      let cache = Engine.Eval_cache.create () in
      let t = make_store ~cache () in
      run_script t script;
      let expected =
        List.map
          (fun b -> (b, dg_digest (Store.checkout t b)))
          (Store.branch_names t)
      in
      List.for_all
        (fun (jobs, cached) ->
          let replay_cache = if cached then Some (Engine.Eval_cache.create ()) else None in
          List.for_all
            (fun (b, dg) ->
              let ws =
                List.fold_left Op.apply
                  (resolver ?cache:replay_cache ~jobs () spec)
                  (Store.linear_ops t ~branch:b)
              in
              String.equal dg (dg_digest ws))
            expected)
        [ (1, false); (1, true); (4, false); (4, true) ])

(* --- snapshot round-trips --- *)

let build_sample () =
  let cache = Engine.Eval_cache.create () in
  let t = make_store ~cache () in
  ignore (Store.commit t ~branch:Store.main (insert_r1 1 "a"));
  ignore (Store.commit t ~branch:Store.main (Op.Offer { start = "R1"; goal = "R3"; max_len = 2 }));
  ignore (Store.branch t ~from:Store.main "fork");
  ignore (Store.commit t ~branch:"fork" (insert_r3 2 "b"));
  ignore (Store.commit t ~branch:"fork" Op.Rotate);
  ignore (Store.branch t ~from:"fork" "deep");
  ignore (Store.commit t ~branch:"deep" (insert_r1 3 "c"));
  ignore (Store.merge t ~into:Store.main ~from:"deep");
  t

let test_snapshot_roundtrip () =
  let t = build_sample () in
  with_temp_dir @@ fun dir ->
  Store.save t ~dir;
  Alcotest.(check bool) "snapshot written" true
    (Sys.file_exists (Filename.concat dir "snapshot.json"));
  Alcotest.(check bool) "changelog written" true
    (Sys.file_exists (Filename.concat dir "changelog.jsonl"));
  let t' = Store.load ~resolve:(resolver ()) ~dir () in
  Alcotest.(check bool) "spec survives" true (Store.spec t' = spec);
  Alcotest.(check (list string)) "branches survive, in order"
    (Store.branch_names t) (Store.branch_names t');
  List.iter
    (fun b ->
      Alcotest.(check int) (b ^ ": head survives") (Store.head t b)
        (Store.head t' b);
      Alcotest.(check string) (b ^ ": state digest survives")
        (Store.state_digest t b) (Store.state_digest t' b);
      Alcotest.(check string) (b ^ ": D(G) survives the restart")
        (dg_digest (Store.checkout t b))
        (dg_digest (Store.checkout t' b)))
    (Store.branch_names t);
  (* And the restarted store keeps working: same mutation on both sides
     stays in lockstep. *)
  ignore (Store.commit t ~branch:"fork" (insert_r1 9 "z"));
  ignore (Store.commit t' ~branch:"fork" (insert_r1 9 "z"));
  Alcotest.(check string) "post-restart commits stay in lockstep"
    (Store.state_digest t "fork") (Store.state_digest t' "fork")

let test_snapshot_rejects_tampering () =
  let t = build_sample () in
  with_temp_dir @@ fun dir ->
  Store.save t ~dir;
  let path = Filename.concat dir "changelog.jsonl" in
  let ic = open_in path in
  let lines =
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    let rec go acc =
      match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file -> List.rev acc
    in
    go []
  in
  (* Drop the last commit: replay no longer reaches the recorded heads
     and digests; load must refuse rather than resurrect partial state. *)
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      List.iteri
        (fun i l -> if i < List.length lines - 1 then output_string oc (l ^ "\n"))
        lines);
  match Store.load ~resolve:(resolver ()) ~dir () with
  | _ -> Alcotest.fail "truncated changelog should be rejected"
  | exception Failure _ -> ()

let () =
  Alcotest.run "version"
    [
      ( "store",
        [
          tc "branch and checkout" `Quick test_branch_checkout;
          tc "log is oldest-first through the fork" `Quick test_log_oldest_first;
          tc "failed commits record nothing" `Quick test_failed_commit_atomic;
          tc "merge, idempotency, lca" `Quick test_merge_and_lca;
          tc "diff" `Quick test_diff;
        ] );
      ( "truncation",
        [
          tc "evicted history never yields a stale promotion" `Quick
            test_truncated_history_not_stale;
        ] );
      ("property", [ qtest prop_branches_linearize ]);
      ( "snapshot",
        [
          tc "save/load round-trips every branch" `Quick test_snapshot_roundtrip;
          tc "tampered changelog is rejected" `Quick
            test_snapshot_rejects_tampering;
        ] );
    ]
