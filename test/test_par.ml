(* Tests for lib/par and the parallel evaluation paths.

   Units: Par.map/mapi/init/iter order and exception determinism,
   including nested batches on one pool.

   Properties: parallel evaluation is observationally identical to
   sequential — full disjunction, walk enumeration, and chase occurrence
   scans all return the same values (same order) at jobs ∈ {1, 2, 4},
   on the paper's instance and on random lib/synth instances.

   Stress: one shared Eval_cache hammered from 4 domains — every hit
   returns the exact relation inserted (no torn entries) and the
   hit/miss counters account for every lookup. *)

open Relational
open Clio
module Qgraph = Querygraph.Qgraph
module Eval_ctx = Engine.Eval_ctx
module Eval_cache = Engine.Eval_cache
module Graph_key = Engine.Graph_key

let tc = Alcotest.test_case
let qtest t = QCheck_alcotest.to_alcotest ~long:false t

(* Shared pools: created once, reused across tests (and shut down by
   lib/par's at_exit, like any CLI run). *)
let pool2 = Par.get_pool ~jobs:2
let pool4 = Par.get_pool ~jobs:4

(* --- combinator units --- *)

let test_map_order () =
  let xs = List.init 200 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "map = List.map" (List.map f xs) (Par.map ?pool:pool4 f xs);
  Alcotest.(check (list int)) "jobs=2 too" (List.map f xs) (Par.map ?pool:pool2 f xs);
  Alcotest.(check (list int)) "empty" [] (Par.map ?pool:pool4 f []);
  Alcotest.(check (list int)) "singleton" [ 10 ] (Par.map ?pool:pool4 f [ 3 ])

let test_mapi_order () =
  let xs = List.init 150 (fun i -> i * 7) in
  let f i x = (i, x + 1) in
  Alcotest.(check (list (pair int int)))
    "mapi = List.mapi" (List.mapi f xs)
    (Par.mapi ?pool:pool4 f xs)

let test_init_chunked () =
  let n = 1000 in
  let f i = (i * 3) - 1 in
  Alcotest.(check (array int)) "init = Array.init" (Array.init n f) (Par.init ?pool:pool4 n f);
  Alcotest.(check (array int)) "empty" [||] (Par.init ?pool:pool4 0 f)

let test_iter_runs_all () =
  let n = 300 in
  let hits = Array.make n 0 in
  (* Distinct slots per item: no two domains touch the same cell. *)
  Par.iter ?pool:pool4 (fun i -> hits.(i) <- hits.(i) + 1) (List.init n Fun.id);
  Alcotest.(check bool) "every item ran once" true (Array.for_all (( = ) 1) hits)

let test_exception_lowest_index () =
  let xs = List.init 100 Fun.id in
  let f x = if x mod 7 = 3 then failwith (string_of_int x) else x in
  (* Items 3, 10, 17, … all raise; the reported one must be index 3
     regardless of which domain hit which item first. *)
  for _ = 1 to 10 do
    Alcotest.check_raises "lowest index wins" (Failure "3") (fun () ->
        ignore (Par.map ?pool:pool4 f xs))
  done

let test_nested_map () =
  (* An item that itself fans out on the same pool: the inner batch can
     always be drained by its caller, so this must not deadlock. *)
  let expected = List.init 8 (fun i -> List.init 50 (fun j -> (i * 50) + j)) in
  let got =
    Par.map ?pool:pool4
      (fun i -> Par.map ?pool:pool4 (fun j -> (i * 50) + j) (List.init 50 Fun.id))
      (List.init 8 Fun.id)
  in
  Alcotest.(check (list (list int))) "nested map" expected got

(* --- parallel ≡ sequential on the paper instance --- *)

let fd_equal (a : Fulldisj.Full_disjunction.result) (b : Fulldisj.Full_disjunction.result) =
  Schema.equal a.Fulldisj.Full_disjunction.scheme b.Fulldisj.Full_disjunction.scheme
  && List.equal Fulldisj.Assoc.equal a.Fulldisj.Full_disjunction.associations
       b.Fulldisj.Full_disjunction.associations

let paper_ctx ~jobs =
  Eval_ctx.create ~jobs ~kb:Paperdata.Figure1.kb Paperdata.Figure1.database

let test_paper_walk_parity () =
  let m = Paperdata.Running.mapping_g1 in
  let descs ctx =
    Op_walk.data_walk_any_start ctx m ~goal:"PhoneDir" ~max_len:2 ()
    |> List.map (fun (a : Op_walk.alternative) -> a.Op_walk.description)
  in
  let seq = descs (paper_ctx ~jobs:1) in
  Alcotest.(check bool) "walk finds alternatives" true (seq <> []);
  List.iter
    (fun jobs ->
      Alcotest.(check (list string))
        (Printf.sprintf "jobs=%d walk order" jobs)
        seq
        (descs (paper_ctx ~jobs)))
    [ 2; 4 ]

let test_paper_chase_parity () =
  let m = Paperdata.Running.mapping_g1 in
  let occs ctx = Op_chase.occurrences ctx m (Value.String "002") in
  let seq = occs (paper_ctx ~jobs:1) in
  Alcotest.(check bool) "chase finds occurrences" true (seq <> []);
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d chase occurrences" jobs)
        true
        (seq = occs (paper_ctx ~jobs)))
    [ 2; 4 ]

let test_paper_fd_parity () =
  let g = Paperdata.Running.mapping.Mapping.graph in
  let seq = Eval_ctx.data_associations (paper_ctx ~jobs:1) g in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d full disjunction" jobs)
        true
        (fd_equal seq (Eval_ctx.data_associations (paper_ctx ~jobs) g)))
    [ 2; 4 ]

let test_paper_illustration_parity () =
  let m = Paperdata.Running.mapping in
  let render ctx =
    let ill = Clio.illustrate ctx m in
    let fd = Mapping_eval.data_associations ctx m in
    Illustration.render ~scheme:fd.Fulldisj.Full_disjunction.scheme ill
  in
  let seq = render (paper_ctx ~jobs:1) in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d illustration" jobs)
        seq
        (render (paper_ctx ~jobs)))
    [ 2; 4 ]

(* --- parallel ≡ sequential on random synthetic instances --- *)

let instance_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 100000 in
    let* n = int_range 2 4 in
    let* rows = int_range 1 15 in
    let* jobs = oneofl [ 2; 4 ] in
    return (seed, n, rows, jobs))

let make_instance (seed, n, rows) =
  let st = Random.State.make [| seed |] in
  Synth.Gen_graph.random_tree st ~n ~rows ~null_prob:0.25 ~orphan_prob:0.25 ()

let identity_mapping (inst : Synth.Gen_graph.instance) =
  let aliases = Qgraph.aliases inst.Synth.Gen_graph.graph in
  Mapping.make ~graph:inst.Synth.Gen_graph.graph ~target:"T"
    ~target_cols:(List.map (fun a -> "c_" ^ a) aliases)
    ~correspondences:
      (List.map (fun a -> Correspondence.identity ("c_" ^ a) (Attr.make a "id")) aliases)
    ()

let prop_fd_parallel_eq_sequential =
  QCheck2.Test.make ~name:"full disjunction parallel = sequential" ~count:40 instance_gen
    (fun (seed, n, rows, jobs) ->
      let inst = make_instance (seed, n, rows) in
      let g = inst.Synth.Gen_graph.graph in
      let ctx jobs = Eval_ctx.create ~jobs inst.Synth.Gen_graph.db in
      fd_equal
        (Eval_ctx.data_associations (ctx 1) g)
        (Eval_ctx.data_associations (ctx jobs) g))

let prop_chase_parallel_eq_sequential =
  QCheck2.Test.make ~name:"chase occurrences parallel = sequential" ~count:40 instance_gen
    (fun (seed, n, rows, jobs) ->
      let inst = make_instance (seed, n, rows) in
      let m = identity_mapping inst in
      (* Keep only the first node mapped so other relations are chaseable. *)
      let m =
        match Qgraph.aliases inst.Synth.Gen_graph.graph with
        | first :: _ :: _ ->
            Mapping.make
              ~graph:(Qgraph.singleton ~alias:first ~base:first)
              ~target:"T" ~target_cols:[ "c" ]
              ~correspondences:[ Correspondence.identity "c" (Attr.make first "id") ]
              ()
        | _ -> m
      in
      let occs jobs =
        Op_chase.occurrences (Eval_ctx.create ~jobs inst.Synth.Gen_graph.db) m (Value.Int 0)
      in
      occs 1 = occs jobs)

let prop_illustration_parallel_eq_sequential =
  QCheck2.Test.make ~name:"illustration parallel = sequential" ~count:25 instance_gen
    (fun (seed, n, rows, jobs) ->
      let inst = make_instance (seed, n, rows) in
      let m = identity_mapping inst in
      let ill jobs =
        let ctx = Eval_ctx.create ~jobs inst.Synth.Gen_graph.db in
        let fd = Mapping_eval.data_associations ctx m in
        Illustration.render ~scheme:fd.Fulldisj.Full_disjunction.scheme
          (Clio.illustrate ctx m)
      in
      String.equal (ill 1) (ill jobs))

(* --- shared Eval_cache under 4 domains --- *)

let test_cache_stress () =
  Obs.Counter.reset_all ();
  let cache = Eval_cache.create () in
  let db = Paperdata.Figure1.database in
  let version = Database.version db in
  let keyed =
    List.map
      (fun (alias, rel) ->
        ( Graph_key.of_graph (Qgraph.singleton ~alias ~base:alias),
          Database.get db rel ))
      [
        ("Children", "Children");
        ("Parents", "Parents");
        ("PhoneDir", "PhoneDir");
        ("SBPS", "SBPS");
        ("XmasBar", "XmasBar");
      ]
  in
  let arr = Array.of_list keyed in
  let n_keys = Array.length arr in
  let lookups = 400 in
  (* All four domains look up and (re)insert a small overlapping key set
     against one shared cache.  A hit must return the exact relation that
     was inserted for that key — a torn entry would surface here. *)
  Par.iter ?pool:pool4
    (fun i ->
      let key, rel = arr.(i mod n_keys) in
      match Eval_cache.find_fj cache ~version key with
      | Some r ->
          if not (Relation.equal_contents r rel) then
            failwith "torn cache entry"
      | None -> Eval_cache.add_fj cache ~version key rel)
    (List.init lookups Fun.id);
  let hits = Obs.Counter.value Obs.Names.cache_fj_hits in
  let misses = Obs.Counter.value Obs.Names.cache_fj_misses in
  Alcotest.(check int) "every lookup counted exactly once" lookups (hits + misses);
  Alcotest.(check bool) "some lookups hit" true (hits > 0);
  Alcotest.(check int) "one entry per key, duplicates replaced" n_keys
    (Eval_cache.entry_count cache);
  (* Sequential re-read: every key resolves to its own relation. *)
  Array.iter
    (fun (key, rel) ->
      match Eval_cache.find_fj cache ~version key with
      | Some r ->
          Alcotest.(check bool) "entry intact" true (Relation.equal_contents r rel)
      | None -> Alcotest.fail "entry missing after stress")
    arr;
  Obs.Counter.reset_all ()

let () =
  Alcotest.run "par"
    [
      ( "combinators",
        [
          tc "map order" `Quick test_map_order;
          tc "mapi order" `Quick test_mapi_order;
          tc "init chunked" `Quick test_init_chunked;
          tc "iter runs all" `Quick test_iter_runs_all;
          tc "exception lowest index" `Quick test_exception_lowest_index;
          tc "nested map" `Quick test_nested_map;
        ] );
      ( "parity-paper",
        [
          tc "walk alternatives" `Quick test_paper_walk_parity;
          tc "chase occurrences" `Quick test_paper_chase_parity;
          tc "full disjunction" `Quick test_paper_fd_parity;
          tc "illustration" `Quick test_paper_illustration_parity;
        ] );
      ( "parity-synth",
        [
          qtest prop_fd_parallel_eq_sequential;
          qtest prop_chase_parallel_eq_sequential;
          qtest prop_illustration_parallel_eq_sequential;
        ] );
      ("cache", [ tc "4-domain stress" `Quick test_cache_stress ]);
    ]
