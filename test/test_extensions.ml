(* Tests for the surrounding tooling: column profiling, universal-relation
   style suggestion, session undo/redo, mapping projects, lineage, the
   multi-relation correspondence workflow, and the bench ablation
   variants. *)

open Relational
open Clio
module Qgraph = Querygraph.Qgraph
module Profile = Schemakb.Profile

let db = Paperdata.Figure1.database
let kb = Paperdata.Figure1.kb

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- Profile --- *)

let test_profile_children_id () =
  let stats = Profile.column (Database.get db "Children") (Attr.make "Children" "ID") in
  Alcotest.(check int) "rows" 4 stats.Profile.rows;
  Alcotest.(check int) "distinct" 4 stats.Profile.distinct;
  Alcotest.(check bool) "key candidate" true stats.Profile.is_key_candidate;
  Alcotest.(check string) "min" "001" (Value.to_string stats.Profile.min_value);
  Alcotest.(check string) "max" "009" (Value.to_string stats.Profile.max_value)

let test_profile_null_rate () =
  let stats = Profile.column (Database.get db "Children") (Attr.make "Children" "mid") in
  (* Bob's mid is null: 1 of 4. *)
  Alcotest.(check int) "non-null" 3 stats.Profile.non_null;
  Alcotest.(check bool) "rate" true (abs_float (stats.Profile.null_rate -. 0.25) < 1e-9);
  Alcotest.(check bool) "not key" false stats.Profile.is_key_candidate

let test_profile_key_candidates () =
  let keys = Profile.key_candidates (Database.get db "Parents") in
  Alcotest.(check bool) "ID is key" true (List.mem "ID" keys);
  Alcotest.(check bool) "address not key" false (List.mem "address" keys)

let test_profile_render () =
  let s = Profile.render (Profile.relation (Database.get db "SBPS")) in
  Alcotest.(check bool) "table" true (contains s "SBPS.time");
  Alcotest.(check bool) "key col" true (contains s "key?")

let test_profile_database_covers_all_columns () =
  let stats = Profile.database db in
  let total_cols =
    Database.relations db
    |> List.fold_left (fun acc r -> acc + Schema.arity (Relation.schema r)) 0
  in
  Alcotest.(check int) "one per column" total_cols (List.length stats)

(* --- Suggest --- *)

let test_suggest_two_relations () =
  let suggestions = Suggest.connection_graphs ~kb ~max_len:1 [ "Children"; "Parents" ] in
  (* mid and fid. *)
  Alcotest.(check int) "two graphs" 2 (List.length suggestions);
  List.iter
    (fun (s : Suggest.suggestion) ->
      Alcotest.(check bool) "connected" true (Qgraph.is_connected s.Suggest.graph);
      Alcotest.(check int) "two nodes" 2 (Qgraph.node_count s.Suggest.graph))
    suggestions

let test_suggest_three_relations () =
  let suggestions =
    Suggest.connection_graphs ~kb ~max_len:2 [ "Children"; "Parents"; "PhoneDir" ]
  in
  Alcotest.(check bool) "some graphs" true (List.length suggestions >= 2);
  List.iter
    (fun (s : Suggest.suggestion) ->
      let bases =
        Qgraph.nodes s.Suggest.graph |> List.map (fun n -> n.Qgraph.base)
      in
      List.iter
        (fun r -> Alcotest.(check bool) (r ^ " present") true (List.mem r bases))
        [ "Children"; "Parents"; "PhoneDir" ])
    suggestions

let test_suggest_mappings_for () =
  let corrs =
    [
      Clio.corr_identity "ID" "Children" "ID";
      Clio.corr_identity "affiliation" "Parents" "affiliation";
    ]
  in
  let ms =
    Suggest.mappings_for ~kb ~max_len:1 ~target:"Kids"
      ~target_cols:[ "ID"; "affiliation" ] corrs
  in
  Alcotest.(check bool) "at least two" true (List.length ms >= 2);
  List.iter
    (fun ((m : Mapping.t), _) ->
      Alcotest.(check int) "both correspondences" 2
        (List.length m.Mapping.correspondences))
    ms

(* --- multi-relation correspondence (FamilyIncome, Example 3.2) --- *)

let test_family_income_two_copies () =
  (* Parents.salary + Parents2.salary: needs TWO relations linked at once,
     the second necessarily as a copy. *)
  let m =
    Mapping.make
      ~graph:(Qgraph.singleton ~alias:"Children" ~base:"Children")
      ~target:"Kids"
      ~target_cols:[ "ID"; "FamilyIncome" ]
      ~correspondences:[ Clio.corr_identity "ID" "Children" "ID" ]
      ()
  in
  let corr =
    Correspondence.of_expr "FamilyIncome"
      (Expr.Add (Expr.col "Parents" "salary", Expr.col "Parents2" "salary"))
  in
  match Op_correspondence.add ~kb ~max_len:1 m corr with
  | Op_correspondence.Alternatives alts ->
      Alcotest.(check bool) "alternatives exist" true (alts <> []);
      (* The intended linking — father via fid, mother copy via mid — must
         be among them, and it computes Maya's family income. *)
      let incomes =
        List.filter_map
          (fun (a : Op_correspondence.alternative) ->
            let view = Mapping_eval.target_view (Eval_ctx.transient db) a.Op_correspondence.mapping in
            let s = Relation.schema view in
            Relation.tuples view
            |> List.find_opt (fun t ->
                   Value.equal (Tuple.value s t (Attr.make "Kids" "ID"))
                     (Value.String "002"))
            |> Option.map (fun t -> Tuple.value s t (Attr.make "Kids" "FamilyIncome")))
          alts
      in
      (* Maya: mother 103 (55000) + father 104 (80000) = 135000, in the
         alternative that binds the two copies to different parents. *)
      Alcotest.(check bool) "135000 among alternatives" true
        (List.exists (Value.equal (Value.Int 135000)) incomes)
  | _ -> Alcotest.fail "expected Alternatives"

(* --- Session --- *)

let test_session_undo_redo () =
  let ws0 = Workspace.create (Eval_ctx.create ~kb db) Paperdata.Running.mapping_g1 in
  let s = Session.start ws0 in
  Alcotest.(check bool) "no undo yet" false (Session.can_undo s);
  let s =
    Session.update s (fun ws ->
        Workspace.update_active ws ~label:"with age filter"
          (Mapping.add_source_filter (Workspace.active ws).Workspace.mapping
             Paperdata.Running.age_filter))
  in
  Alcotest.(check string) "label" "with age filter"
    (Workspace.active (Session.current s)).Workspace.label;
  let s = Session.undo s in
  Alcotest.(check string) "back to initial" "initial"
    (Workspace.active (Session.current s)).Workspace.label;
  Alcotest.(check bool) "can redo" true (Session.can_redo s);
  let s = Session.redo s in
  Alcotest.(check string) "forward again" "with age filter"
    (Workspace.active (Session.current s)).Workspace.label

let test_session_apply_truncates_redo () =
  let ws0 = Workspace.create (Eval_ctx.create ~kb db) Paperdata.Running.mapping_g1 in
  let s = Session.start ws0 in
  let s = Session.apply s ws0 in
  let s = Session.apply s ws0 in
  let s = Session.undo (Session.undo s) in
  Alcotest.(check int) "three states" 3 (Session.depth s);
  let s = Session.apply s ws0 in
  Alcotest.(check bool) "redo gone" false (Session.can_redo s);
  Alcotest.(check int) "two states" 2 (Session.depth s)

let test_session_undo_at_start_is_identity () =
  let ws0 = Workspace.create (Eval_ctx.create ~kb db) Paperdata.Running.mapping_g1 in
  let s = Session.start ws0 in
  Alcotest.(check int) "depth" 1 (Session.depth (Session.undo s))

(* --- Project --- *)

let mothers_fathers () =
  let eq r1 c1 r2 c2 = Predicate.eq_cols (Attr.make r1 c1) (Attr.make r2 c2) in
  let mk ~via ~filter =
    Mapping.make
      ~graph:
        (Qgraph.make
           [ ("Children", "Children"); ("Parents", "Parents"); ("PhoneDir", "PhoneDir") ]
           [
             ("Children", "Parents", eq "Children" via "Parents" "ID");
             ("Parents", "PhoneDir", eq "Parents" "ID" "PhoneDir" "ID");
           ])
      ~target:"Kids"
      ~target_cols:[ "ID"; "name"; "contactPh" ]
      ~correspondences:
        [
          Clio.corr_identity "ID" "Children" "ID";
          Clio.corr_identity "name" "Children" "name";
          Clio.corr_identity "contactPh" "PhoneDir" "number";
        ]
      ~source_filters:[ filter ]
      ~target_filters:[ Predicate.Is_not_null (Expr.col "Kids" "ID") ]
      ()
  in
  ( mk ~via:"mid" ~filter:(Predicate.Is_not_null (Expr.col "Children" "mid")),
    mk ~via:"fid" ~filter:(Predicate.Is_null (Expr.col "Children" "mid")) )

let test_project_materialize () =
  let mothers, fathers = mothers_fathers () in
  let p = Project.create ~target:"Kids" ~target_cols:[ "ID"; "name"; "contactPh" ] in
  let p = Project.accept (Project.accept p mothers) fathers in
  let r = Project.materialize (Eval_ctx.transient db) p in
  Alcotest.(check int) "four kids" 4 (Relation.cardinality r)

let test_project_empty_materializes_empty () =
  let p = Project.create ~target:"Kids" ~target_cols:[ "ID" ] in
  Alcotest.(check int) "empty" 0 (Relation.cardinality (Project.materialize (Eval_ctx.transient db) p))

let test_project_completeness () =
  let mothers, fathers = mothers_fathers () in
  let p = Project.create ~target:"Kids" ~target_cols:[ "ID"; "name"; "contactPh" ] in
  let p = Project.accept (Project.accept p mothers) fathers in
  let reports = Project.completeness (Eval_ctx.transient db) p in
  let find col = List.find (fun r -> r.Project.column = col) reports in
  Alcotest.(check int) "ID everywhere" 4 (find "ID").Project.non_null_rows;
  Alcotest.(check int) "contactPh everywhere" 4 (find "contactPh").Project.non_null_rows;
  Alcotest.(check int) "mapped by both" 2 (find "ID").Project.mapped_by;
  Alcotest.(check bool) "render" true
    (contains (Project.render_completeness reports) "contactPh")

let test_project_retract () =
  let mothers, fathers = mothers_fathers () in
  let p = Project.create ~target:"Kids" ~target_cols:[ "ID"; "name"; "contactPh" ] in
  let p = Project.accept (Project.accept p mothers) fathers in
  let p = Project.retract p 0 in
  Alcotest.(check int) "one mapping" 1 (List.length (Project.mappings p));
  (* Only the motherless-kids mapping remains. *)
  Alcotest.(check int) "only Bob" 1 (Relation.cardinality (Project.materialize (Eval_ctx.transient db) p))

let test_project_rejects_mismatch () =
  let p = Project.create ~target:"Kids" ~target_cols:[ "ID" ] in
  let other =
    Mapping.make
      ~graph:(Qgraph.singleton ~alias:"Children" ~base:"Children")
      ~target:"Other" ~target_cols:[ "ID" ] ()
  in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Project.accept: mapping targets a different relation")
    (fun () -> ignore (Project.accept p other))

(* --- Explain --- *)

let test_explain_positive_row () =
  let m = Paperdata.Running.mapping in
  let view = Mapping_eval.target_view (Eval_ctx.transient db) m in
  let s = Relation.schema view in
  let maya =
    Relation.tuples view
    |> List.find (fun t ->
           Value.equal (Tuple.value s t (Attr.make "Kids" "name")) (Value.String "Maya"))
  in
  match Explain.of_target_tuple (Eval_ctx.transient db) m maya with
  | [ prov ] ->
      let contribution alias = List.assoc alias prov.Explain.contributions in
      Alcotest.(check bool) "Children contributed" true
        (Option.is_some (contribution "Children"));
      Alcotest.(check bool) "SBPS contributed" true
        (Option.is_some (contribution "SBPS"));
      let rendered = Explain.render (Explain.scheme (Eval_ctx.transient db) m) prov in
      Alcotest.(check bool) "rendered" true (contains rendered "Children")
  | provs -> Alcotest.failf "expected one derivation, got %d" (List.length provs)

let test_explain_why_null () =
  let m = Paperdata.Running.mapping in
  let view = Mapping_eval.target_view (Eval_ctx.transient db) m in
  let s = Relation.schema view in
  let ann =
    Relation.tuples view
    |> List.find (fun t ->
           Value.equal (Tuple.value s t (Attr.make "Kids" "name")) (Value.String "Ann"))
  in
  (match Explain.why_null (Eval_ctx.transient db) m ann "BusSchedule" with
  | [ (_, Explain.Source_relation_absent [ "SBPS" ]) ] -> ()
  | _ -> Alcotest.fail "expected Source_relation_absent [SBPS]");
  (* An unmapped column reports Not_mapped. *)
  let m2 = Mapping.remove_correspondence m "BusSchedule" in
  let view2 = Mapping_eval.target_view (Eval_ctx.transient db) m2 in
  let ann2 =
    Relation.tuples view2
    |> List.find (fun t ->
           Value.equal
             (Tuple.value (Relation.schema view2) t (Attr.make "Kids" "name"))
             (Value.String "Ann"))
  in
  match Explain.why_null (Eval_ctx.transient db) m2 ann2 "BusSchedule" with
  | (_, Explain.Not_mapped) :: _ -> ()
  | _ -> Alcotest.fail "expected Not_mapped"

(* --- HTML report --- *)

let test_html_report () =
  let html = Report_html.page ~short:Paperdata.Figure1.short (Eval_ctx.transient db) Paperdata.Running.mapping in
  List.iter
    (fun sub -> Alcotest.(check bool) sub true (contains html sub))
    [
      "<!doctype html>";
      "Sufficient illustration";
      "CPPhS";
      "class=\"badge neg\"";
      "left join";
      "Target view";
      "</html>";
    ];
  (* Values are escaped. *)
  let m =
    Mapping.set_correspondence Paperdata.Running.mapping_g1
      (Correspondence.of_expr "name"
         (Expr.Const (Value.String "<script>alert(1)</script>")))
  in
  let html2 = Report_html.page (Eval_ctx.transient db) m in
  Alcotest.(check bool) "escaped" false (contains html2 "<script>alert");
  Alcotest.(check bool) "entity present" true (contains html2 "&lt;script&gt;")

(* Regression: a badge list shorter than the row list used to raise
   [Failure "nth"] from [List.nth] and abort the whole report; trailing rows
   must instead render with an empty badge cell. *)
let test_html_table_short_badges () =
  let rows = [ [| Value.Int 1 |]; [| Value.Int 2 |]; [| Value.Int 3 |] ] in
  let html =
    Report_html.table ~badges:[ ("P", true) ] ~headers:[ "a" ] rows
  in
  Alcotest.(check bool) "first row badged" true (contains html "badge pos");
  Alcotest.(check bool) "all rows rendered" true
    (contains html "<td>3</td>");
  Alcotest.(check bool) "unbadged cell" true (contains html "<td></td>")

let test_html_cyclic_graph_uses_canonical_sql () =
  let eq r1 c1 r2 c2 = Predicate.eq_cols (Attr.make r1 c1) (Attr.make r2 c2) in
  let g =
    Qgraph.make
      [ ("Children", "Children"); ("Parents", "Parents"); ("PhoneDir", "PhoneDir") ]
      [
        ("Children", "Parents", eq "Children" "fid" "Parents" "ID");
        ("Parents", "PhoneDir", eq "Parents" "ID" "PhoneDir" "ID");
        ("Children", "PhoneDir", eq "Children" "ID" "PhoneDir" "ID");
      ]
  in
  let m =
    Mapping.make ~graph:g ~target:"Kids" ~target_cols:[ "ID" ]
      ~correspondences:[ Clio.corr_identity "ID" "Children" "ID" ] ()
  in
  let html = Report_html.page (Eval_ctx.transient db) m in
  Alcotest.(check bool) "canonical form" true (contains html "from D(G)")

(* --- ablation variants agree with their reference implementations --- *)

let test_first_probe_agrees () =
  let st = Random.State.make [| 99 |] in
  let tuples =
    Synth.Gen_db.sparse_tuples st ~rows:300 ~arity:5 ~null_prob:0.4 ~domain:6
    |> List.filter (fun t -> not (Relational.Tuple.all_null t))
    |> List.sort_uniq Tuple.compare
  in
  let a = Fulldisj.Min_union.remove_subsumed tuples |> List.sort Tuple.compare in
  let b =
    Fulldisj.Min_union.remove_subsumed_first_probe tuples |> List.sort Tuple.compare
  in
  Alcotest.(check int) "same size" (List.length a) (List.length b);
  Alcotest.(check bool) "same" true (List.for_all2 Tuple.equal a b)

let test_no_sweep_superset () =
  let st = Random.State.make [| 5 |] in
  let inst = Synth.Gen_graph.random_tree st ~n:4 ~rows:30 () in
  let lookup = Database.find inst.Synth.Gen_graph.db in
  let swept = Fulldisj.Outerjoin_plan.full_disjunction (Fulldisj.Source.of_fn lookup) inst.Synth.Gen_graph.graph in
  let raw =
    Fulldisj.Outerjoin_plan.full_disjunction_no_sweep (Fulldisj.Source.of_fn lookup) inst.Synth.Gen_graph.graph
  in
  (* Every swept association appears in the raw cascade. *)
  Alcotest.(check bool) "subset" true
    (List.for_all
       (fun (a : Fulldisj.Assoc.t) ->
         List.exists
           (fun (b : Fulldisj.Assoc.t) ->
             Tuple.equal a.Fulldisj.Assoc.tuple b.Fulldisj.Assoc.tuple)
           raw.Fulldisj.Full_disjunction.associations)
       swept.Fulldisj.Full_disjunction.associations)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "extensions"
    [
      ( "profile",
        [
          tc "children id" `Quick test_profile_children_id;
          tc "null rate" `Quick test_profile_null_rate;
          tc "key candidates" `Quick test_profile_key_candidates;
          tc "render" `Quick test_profile_render;
          tc "whole database" `Quick test_profile_database_covers_all_columns;
        ] );
      ( "suggest",
        [
          tc "two relations" `Quick test_suggest_two_relations;
          tc "three relations" `Quick test_suggest_three_relations;
          tc "mappings_for" `Quick test_suggest_mappings_for;
          tc "FamilyIncome via two copies" `Quick test_family_income_two_copies;
        ] );
      ( "session",
        [
          tc "undo/redo" `Quick test_session_undo_redo;
          tc "apply truncates redo" `Quick test_session_apply_truncates_redo;
          tc "undo at start" `Quick test_session_undo_at_start_is_identity;
        ] );
      ( "project",
        [
          tc "materialize" `Quick test_project_materialize;
          tc "empty" `Quick test_project_empty_materializes_empty;
          tc "completeness" `Quick test_project_completeness;
          tc "retract" `Quick test_project_retract;
          tc "mismatch rejected" `Quick test_project_rejects_mismatch;
        ] );
      ( "explain",
        [
          tc "positive row" `Quick test_explain_positive_row;
          tc "why null" `Quick test_explain_why_null;
        ] );
      ( "html-report",
        [
          tc "report" `Quick test_html_report;
          tc "short badges" `Quick test_html_table_short_badges;
          tc "cyclic canonical" `Quick test_html_cyclic_graph_uses_canonical_sql;
        ] );
      ( "ablations",
        [
          tc "first probe agrees" `Quick test_first_probe_agrees;
          tc "no-sweep superset" `Quick test_no_sweep_superset;
        ] );
    ]
