(* The columnar data plane's contract, in two halves:

   1. Laws of the substrate — Value_pool interning (structural round-trip,
      class quotient = Value.equal, flat sort keys) and the Col_ops batch
      kernels (bucket indexes, set dedup, canonical sort) against their
      naive boxed oracles.

   2. Parity — every operator that has a columnar kernel renders
      byte-identically with the switch on and off: algebra operators,
      min-union subsumption, full disjunction (direct, via compute,
      incrementally via delta), under jobs 1 and 4, with and without the
      engine cache.  The generators are deliberately adversarial: Int/Float
      collisions (Int 1 vs Float 1.0), NaN, signed zeros, strings, nulls
      and tiny domains that force duplicates and subsumption. *)

open Relational
module Qgraph = Querygraph.Qgraph

let qtest t = QCheck_alcotest.to_alcotest ~long:false t
let render r = Fmt.str "%a" Relation.pp r

(* --- adversarial value generator --- *)

let value_gen =
  QCheck2.Gen.(
    frequency
      [
        (2, return Value.Null);
        (1, map (fun b -> Value.Bool b) bool);
        (4, map (fun i -> Value.Int i) (int_range 0 3));
        (1, return (Value.Int 1073741823));
        (2, map (fun i -> Value.Float (float_of_int i)) (int_range 0 3));
        ( 2,
          oneofl
            [
              Value.Float nan;
              Value.Float 0.;
              Value.Float (-0.);
              Value.Float infinity;
              Value.Float 0.5;
            ] );
        (2, map (fun i -> Value.String (Printf.sprintf "s%d" i)) (int_range 0 2));
      ])

let tuple_gen arity = QCheck2.Gen.(map Array.of_list (list_repeat arity value_gen))
let tuples_gen arity = QCheck2.Gen.(list_size (int_range 0 30) (tuple_gen arity))

(* --- 1a. Value_pool laws --- *)

let prop_intern_roundtrip =
  QCheck2.Test.make ~name:"intern/resolve round-trips bit-exactly" ~count:500
    value_gen (fun v ->
      let id = Value_pool.intern v in
      let v' = Value_pool.resolve id in
      (* Structural identity is stronger than Value.equal: the rendered
         text (what .pp ultimately prints) must be byte-identical, and
         re-interning must return the same id. *)
      String.equal (Value.to_string v) (Value.to_string v')
      && Value_pool.intern v' = id)

let prop_class_is_value_equal =
  QCheck2.Test.make ~name:"class_of quotients exactly by Value.equal" ~count:1000
    QCheck2.Gen.(pair value_gen value_gen)
    (fun (a, b) ->
      let ca = Value_pool.class_of (Value_pool.intern a)
      and cb = Value_pool.class_of (Value_pool.intern b) in
      Value.equal a b = (ca = cb))

let prop_compare_resolved_sign =
  QCheck2.Test.make ~name:"compare_resolved sign = Value.compare sign" ~count:1000
    QCheck2.Gen.(pair value_gen value_gen)
    (fun (a, b) ->
      let c = Value_pool.compare_resolved (Value_pool.intern a) (Value_pool.intern b) in
      Stdlib.compare c 0 = Stdlib.compare (Value.compare a b) 0)

let prop_sort_key_consistent =
  QCheck2.Test.make ~name:"flat sort keys agree with compare_resolved" ~count:1000
    QCheck2.Gen.(pair value_gen value_gen)
    (fun (a, b) ->
      let ia = Value_pool.intern a and ib = Value_pool.intern b in
      let ta, fa = Value_pool.sort_key ia and tb, fb = Value_pool.sort_key ib in
      let key_cmp =
        let c = Char.compare ta tb in
        if c <> 0 then c else Float.compare fa fb
      in
      (* Keys may tie where the exact compare doesn't, never the converse. *)
      key_cmp = 0 || Stdlib.compare key_cmp 0 = Stdlib.compare (Value_pool.compare_resolved ia ib) 0)

let unit_null_is_zero () =
  Alcotest.(check int) "null id" 0 Value_pool.null_id;
  Alcotest.(check int) "interning Null" 0 (Value_pool.intern Value.Null);
  Alcotest.(check int) "null class" 0 (Value_pool.class_of Value_pool.null_id);
  Alcotest.(check bool) "is_null 0" true (Value_pool.is_null 0)

let unit_classes_nontrivial_after_alias () =
  (* The suites above intern Int 1 and Float 1.0; once any such
     cross-constructor pair exists the trivial-classes fast path must be
     off — and it never comes back (monotone). *)
  ignore (Value_pool.intern (Value.Int 1));
  ignore (Value_pool.intern (Value.Float 1.0));
  Alcotest.(check bool) "aliased pool" false (Value_pool.classes_trivial ());
  ignore (Value_pool.intern (Value.Int 999_983));
  Alcotest.(check bool) "stays false" false (Value_pool.classes_trivial ())

(* --- 1b. Col_ops laws --- *)

let column_gen =
  (* Ids from a small interned domain, with nulls; aliased pairs included
     so class columns differ from structural columns. *)
  QCheck2.Gen.(list_size (int_range 0 40) (map Value_pool.intern value_gen))

let prop_buckets_exact =
  QCheck2.Test.make ~name:"Buckets groups = exact value occurrences" ~count:500
    column_gen (fun cells ->
      let col = Array.of_list cells in
      let t = Col_ops.Buckets.make col in
      let rows = Col_ops.Buckets.rows t in
      let distinct = List.sort_uniq compare (List.filter (fun v -> v <> 0) cells) in
      List.for_all
        (fun v ->
          let start, len = Col_ops.Buckets.span t v in
          let expect =
            List.mapi (fun i c -> (i, c)) (Array.to_list col)
            |> List.filter (fun (_, c) -> c = v)
            |> List.map fst
          in
          len = List.length expect
          && len = Col_ops.Buckets.count t v
          && List.init len (fun k -> rows.(start + k)) = expect)
        distinct
      && Col_ops.Buckets.span t 0 = (0, 0)
      && Array.length rows = List.length (List.filter (fun v -> v <> 0) cells))

let unit_buckets_sparse () =
  (* Force the hashtable fallback: a tiny column over ids spread much
     wider than [4n + 1024] apart. *)
  let wide = Array.init 3000 (fun k -> Value_pool.intern (Value.Int (7_000_000 + k))) in
  let col = [| wide.(0); wide.(2999); 0; wide.(0); wide.(1500) |] in
  let t = Col_ops.Buckets.make col in
  Alcotest.(check int) "count first" 2 (Col_ops.Buckets.count t wide.(0));
  Alcotest.(check int) "count last" 1 (Col_ops.Buckets.count t wide.(2999));
  Alcotest.(check int) "count absent" 0 (Col_ops.Buckets.count t wide.(7));
  Alcotest.(check int) "count null" 0 (Col_ops.Buckets.count t 0);
  let start, len = Col_ops.Buckets.span t wide.(0) in
  Alcotest.(check (list int)) "rows of first" [ 0; 3 ]
    (List.init len (fun k -> (Col_ops.Buckets.rows t).(start + k)))

let cols_of_tuples tuples arity =
  Array.init arity (fun c ->
      Array.of_list (List.map (fun t -> Value_pool.intern t.(c)) tuples))

let prop_dedup_matches_boxed =
  QCheck2.Test.make ~name:"dedup_keep_first = boxed first-occurrence dedup"
    ~count:300 (tuples_gen 3) (fun tuples ->
      let cols = cols_of_tuples tuples 3 in
      let kept =
        match Col_ops.dedup_keep_first cols with
        | None -> List.mapi (fun i _ -> i) tuples
        | Some rows -> Array.to_list rows
      in
      let seen = Relation.Tuple_tbl.create 16 in
      let expect =
        List.filter
          (fun t ->
            if Relation.Tuple_tbl.mem seen t then false
            else begin
              Relation.Tuple_tbl.add seen t ();
              true
            end)
          tuples
        |> List.length
      in
      List.length kept = expect)

let prop_sort_matches_boxed =
  QCheck2.Test.make ~name:"sort_rows_canonical = boxed Tuple.compare sort"
    ~count:300
    QCheck2.Gen.(list_size (int_range 0 200) (tuple_gen 3))
    (fun tuples ->
      (* Dedup first: the columnar sort promises determinism only on
         set-semantic input (class-equal rows would tie). *)
      let cols = cols_of_tuples tuples 3 in
      let cols =
        match Col_ops.dedup_keep_first cols with
        | None -> cols
        | Some rows -> Col_ops.gather cols rows
      in
      let sorted = Col_ops.sort_rows_canonical cols in
      let resolve_rows cs =
        List.init (Col_ops.nrows cs) (fun i ->
            Array.init (Array.length cs) (fun c -> Value_pool.resolve cs.(c).(i)))
      in
      let got = resolve_rows sorted in
      let expect = List.sort Tuple.compare (resolve_rows cols) in
      List.length got = List.length expect
      && List.for_all2
           (fun a b -> String.equal (Tuple.to_string a) (Tuple.to_string b))
           got expect)

let prop_masks =
  QCheck2.Test.make ~name:"nonnull_masks bit c iff column c non-null" ~count:300
    (tuples_gen 4) (fun tuples ->
      let cols = cols_of_tuples tuples 4 in
      let masks = Col_ops.nonnull_masks cols in
      List.for_all
        (fun i ->
          let t = List.nth tuples i in
          let expect =
            Array.to_list t
            |> List.mapi (fun c v -> if Value.is_null v then 0 else 1 lsl c)
            |> List.fold_left ( lor ) 0
          in
          masks.(i) = expect)
        (List.init (List.length tuples) Fun.id))

(* --- 2a. algebra operator parity --- *)

let rel_of name cols tuples =
  Relation.create ~allow_all_null:true name (Schema.make name cols) tuples

let both f =
  let on = Columnar.with_enabled true f in
  let off = Columnar.with_enabled false f in
  String.equal (render on) (render off)

let pair_rel_gen =
  QCheck2.Gen.(
    let* l = tuples_gen 2 in
    let* r = tuples_gen 2 in
    return
      ( rel_of "L" [ "a"; "b" ] (List.map Tuple.make (List.map Array.to_list l)),
        rel_of "R" [ "c"; "d" ] (List.map Tuple.make (List.map Array.to_list r)) ))

let join_pred = Predicate.eq_cols (Attr.make "L" "b") (Attr.make "R" "c")

let prop_parity_join =
  QCheck2.Test.make ~name:"join parity" ~count:200 pair_rel_gen (fun (l, r) ->
      both (fun () -> Algebra.join join_pred l r))

let prop_parity_left_outer =
  QCheck2.Test.make ~name:"left_outer_join parity" ~count:200 pair_rel_gen
    (fun (l, r) -> both (fun () -> Algebra.left_outer_join join_pred l r))

let prop_parity_full_outer =
  QCheck2.Test.make ~name:"full_outer_join parity" ~count:200 pair_rel_gen
    (fun (l, r) -> both (fun () -> Algebra.full_outer_join join_pred l r))

let prop_parity_outer_union =
  QCheck2.Test.make ~name:"outer_union parity" ~count:200 pair_rel_gen
    (fun (l, r) -> both (fun () -> Algebra.outer_union l r))

let prop_parity_union_project_pad =
  QCheck2.Test.make ~name:"union/project/pad parity" ~count:200 (tuples_gen 3)
    (fun tuples ->
      let ts = List.map (fun a -> Tuple.make (Array.to_list a)) tuples in
      let r = rel_of "L" [ "a"; "b"; "c" ] ts in
      let r2 = rel_of "L" [ "a"; "b"; "c" ] (List.rev ts) in
      both (fun () -> Algebra.union r r2)
      && both (fun () -> Algebra.project [ Attr.make "L" "a"; Attr.make "L" "c" ] r)
      && both (fun () ->
             Algebra.pad r (Schema.make "L" [ "a"; "b"; "c"; "extra" ])))

(* --- 2b. min-union / subsumption parity --- *)

let sparse_rel_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 1_000_000 in
    let* rows = int_range 0 60 in
    let st = Random.State.make [| seed |] in
    let ts =
      Synth.Gen_db.sparse_tuples st ~rows ~arity:4 ~null_prob:0.5 ~domain:3
      |> List.filter (fun t -> not (Tuple.all_null t))
      |> List.map (fun a -> Tuple.make (Array.to_list a))
    in
    return (rel_of "S" [ "a"; "b"; "c"; "d" ] ts))

let prop_parity_sweep =
  QCheck2.Test.make ~name:"Min_union.sweep parity (and minimal)" ~count:300
    sparse_rel_gen (fun r ->
      both (fun () -> Fulldisj.Min_union.sweep r)
      && Fulldisj.Min_union.is_minimal
           (Relation.tuples (Columnar.with_enabled true (fun () -> Fulldisj.Min_union.sweep r))))

let prop_parity_minimize =
  QCheck2.Test.make ~name:"Min_union.minimize parity" ~count:200 sparse_rel_gen
    (fun r -> both (fun () -> Fulldisj.Min_union.minimize r))

(* --- 2c. full disjunction parity: on/off, compute vs compute_relation,
   jobs, cache, incremental delta --- *)

let instance_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 100_000 in
    let* n = int_range 2 4 in
    let* rows = int_range 1 12 in
    return (seed, n, rows))

let make_instance (seed, n, rows) =
  let st = Random.State.make [| seed |] in
  Synth.Gen_graph.random_tree st ~n ~rows ~null_prob:0.3 ~orphan_prob:0.25 ()

let prop_parity_fulldisj =
  QCheck2.Test.make ~name:"compute_relation on = off = to_relation compute"
    ~count:60 instance_gen (fun params ->
      let inst = make_instance params in
      let src = Fulldisj.Source.of_db inst.Synth.Gen_graph.db in
      let g = inst.Synth.Gen_graph.graph in
      let direct_on =
        Columnar.with_enabled true (fun () ->
            Fulldisj.Full_disjunction.compute_relation src g)
      in
      let direct_off =
        Columnar.with_enabled false (fun () ->
            Fulldisj.Full_disjunction.compute_relation src g)
      in
      let via_compute =
        Fulldisj.Full_disjunction.to_relation (Fulldisj.Full_disjunction.compute src g)
      in
      String.equal (render direct_on) (render direct_off)
      && String.equal (render direct_on) (render via_compute))

let prop_parity_jobs_cache =
  QCheck2.Test.make ~name:"D(G) parity across jobs x cache x columnar"
    ~count:30 instance_gen (fun params ->
      let inst = make_instance params in
      let g = inst.Synth.Gen_graph.graph in
      let db = inst.Synth.Gen_graph.db in
      let eval ~jobs ~cached ~columnar () =
        let ctx = Clio.Eval_ctx.transient db in
        let ctx = Clio.Eval_ctx.with_jobs ctx jobs in
        let ctx = if cached then ctx else Clio.Eval_ctx.without_cache ctx in
        Columnar.with_enabled columnar (fun () ->
            render
              (Fulldisj.Full_disjunction.to_relation
                 (Clio.Eval_ctx.data_associations ctx g)))
      in
      let reference = eval ~jobs:1 ~cached:false ~columnar:true () in
      List.for_all
        (fun (jobs, cached, columnar) ->
          String.equal reference (eval ~jobs ~cached ~columnar ()))
        [
          (1, false, false);
          (1, true, true);
          (4, false, true);
          (4, true, false);
          (4, true, true);
        ])

let prop_parity_delta =
  QCheck2.Test.make ~name:"incremental delta parity with columnar on/off"
    ~count:30 instance_gen (fun params ->
      let inst = make_instance params in
      let g = inst.Synth.Gen_graph.graph in
      let db = inst.Synth.Gen_graph.db in
      (* Insert one fresh tuple into the first base relation, then compare
         delta repair against from-scratch, columnar on and off. *)
      let base = (List.hd (Qgraph.nodes g)).Qgraph.base in
      let r = Database.get db base in
      let arity = Array.length (Schema.attrs (Relation.schema r)) in
      let fresh =
        Tuple.make (List.init arity (fun c -> Value.Int (900_000 + c)))
      in
      let old = Fulldisj.Full_disjunction.compute (Fulldisj.Source.of_db db) g in
      let db' = Database.insert_tuples db base [ fresh ] in
      let src' = Fulldisj.Source.of_db db' in
      let changed = [ (base, [ fresh ]) ] in
      let results =
        List.map
          (fun columnar ->
            Columnar.with_enabled columnar (fun () ->
                render
                  (Fulldisj.Full_disjunction.to_relation
                     (Fulldisj.Full_disjunction.delta src' g ~old ~changed))))
          [ true; false ]
      in
      let scratch =
        render
          (Fulldisj.Full_disjunction.to_relation
             (Fulldisj.Full_disjunction.compute src' g))
      in
      List.for_all (String.equal scratch) results)

let () =
  Alcotest.run "columnar"
    [
      ( "value-pool",
        [
          qtest prop_intern_roundtrip;
          qtest prop_class_is_value_equal;
          qtest prop_compare_resolved_sign;
          qtest prop_sort_key_consistent;
          Alcotest.test_case "null is id 0" `Quick unit_null_is_zero;
          Alcotest.test_case "classes non-trivial after aliasing" `Quick
            unit_classes_nontrivial_after_alias;
        ] );
      ( "col-ops",
        [
          qtest prop_buckets_exact;
          Alcotest.test_case "buckets sparse fallback" `Quick unit_buckets_sparse;
          qtest prop_dedup_matches_boxed;
          qtest prop_sort_matches_boxed;
          qtest prop_masks;
        ] );
      ( "algebra-parity",
        [
          qtest prop_parity_join;
          qtest prop_parity_left_outer;
          qtest prop_parity_full_outer;
          qtest prop_parity_outer_union;
          qtest prop_parity_union_project_pad;
        ] );
      ( "fulldisj-parity",
        [
          qtest prop_parity_sweep;
          qtest prop_parity_minimize;
          qtest prop_parity_fulldisj;
          qtest prop_parity_jobs_cache;
          qtest prop_parity_delta;
        ] );
    ]
