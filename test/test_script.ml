(* Tests for the session scripting language (Clio.Script): the Section 2
   scenario as a script, error reporting, undo, and the pending-alternative
   protocol. *)

open Clio

let db = Paperdata.Figure1.database
let kb = Paperdata.Figure1.kb
let run text = Script.run ~db ~kb text
let run_err text =
  match Script.run_result ~db ~kb text with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e -> e

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let section2_script =
  {|# The Section 2 refinement session as a script.
target Kids(ID, name, affiliation, contactPh, BusSchedule)
source Children
corr ID = Children.ID
corr name = Children.name

# Affiliation: two ways to reach Parents; take the top-ranked one.
corr affiliation = Parents.affiliation
show alternatives
pick 1

# Phones: walk to PhoneDir, keep the best scenario, map the number.
walk Children PhoneDir 2
pick 1
corr contactPh = PhoneDir.number

# Bus schedules discovered by chasing Maya's ID.
chase Children.ID 002
pick 1
corr BusSchedule = SBPS.time

tfilter ID is not null
show target
show sql Children
|}

let test_section2_script_runs () =
  let outcome = run section2_script in
  (match outcome.Script.mapping with
  | None -> Alcotest.fail "expected a settled mapping"
  | Some m ->
      Alcotest.(check int) "five correspondences" 5
        (List.length m.Mapping.correspondences));
  (* The target view lists all four kids. *)
  let target_view =
    List.find (fun s -> contains s "Kids") outcome.Script.log
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true (contains target_view name))
    [ "Joe"; "Maya"; "Ann"; "Bob" ];
  let sql = List.nth outcome.Script.log (List.length outcome.Script.log - 1) in
  Alcotest.(check bool) "left join SQL" true (contains sql "left join")

let test_alternatives_listing () =
  let outcome =
    run
      {|target Kids(ID, affiliation)
source Children
corr ID = Children.ID
corr affiliation = Parents.affiliation
show alternatives|}
  in
  let listing = List.nth outcome.Script.log 0 in
  Alcotest.(check bool) "two options" true
    (contains listing "1." && contains listing "2.")

(* Regression for the pending-alternative indexing: picking the *last*
   alternative must select exactly that one (off-by-one or list/nth drift
   here silently settles the wrong mapping). *)
let test_pick_last_alternative () =
  let outcome =
    run
      {|target Kids(ID, affiliation)
source Children
corr ID = Children.ID
corr affiliation = Parents.affiliation
pick 2|}
  in
  match outcome.Script.mapping with
  | None -> Alcotest.fail "expected a settled mapping"
  | Some m ->
      (* Both alternatives reach Parents; the settled graph must include it. *)
      Alcotest.(check bool) "Parents joined" true
        (List.mem "Parents" (Querygraph.Qgraph.aliases m.Mapping.graph))

let test_pick_out_of_range () =
  let e =
    run_err
      {|target Kids(ID, affiliation)
source Children
corr ID = Children.ID
corr affiliation = Parents.affiliation
pick 9|}
  in
  Alcotest.(check bool) "line 5" true (contains e "line 5");
  Alcotest.(check bool) "range" true (contains e "pick: expected 1..")

let test_pending_blocks_commands () =
  let e =
    run_err
      {|target Kids(ID, affiliation)
source Children
corr affiliation = Parents.affiliation
sfilter Children.age < 7|}
  in
  Alcotest.(check bool) "mentions pending" true (contains e "pick one first")

let test_filters_and_require () =
  let outcome =
    run
      {|target Kids(ID, name, affiliation, contactPh, BusSchedule)
source Children
corr ID = Children.ID
corr name = Children.name
sfilter Children.age < 7
walk Children SBPS 1
pick 1
corr BusSchedule = SBPS.time
require BusSchedule
show target|}
  in
  let view = List.hd outcome.Script.log in
  (* age<7 drops Bob; required BusSchedule drops Ann. *)
  Alcotest.(check bool) "Joe stays" true (contains view "Joe");
  Alcotest.(check bool) "Bob dropped" false (contains view "Bob");
  Alcotest.(check bool) "Ann dropped" false (contains view "Ann")

let test_undo () =
  let outcome =
    run
      {|target Kids(ID, name)
source Children
corr ID = Children.ID
sfilter Children.age < 7
undo
show target|}
  in
  let view = List.hd outcome.Script.log in
  Alcotest.(check bool) "Bob back after undo" true (contains view "009")

let test_unknown_command_line_number () =
  let e = run_err "target Kids(ID)\nsource Children\nfrobnicate" in
  Alcotest.(check bool) "line 3" true (contains e "line 3");
  Alcotest.(check bool) "names command" true (contains e "frobnicate")

let test_source_before_target_rejected () =
  let e = run_err "source Children" in
  Alcotest.(check bool) "ordering" true (contains e "declare the target")

let test_bad_predicate_reported () =
  let e =
    run_err "target Kids(ID)\nsource Children\ncorr ID = Children.ID\nsfilter age <<< 7"
  in
  Alcotest.(check bool) "parse error" true (contains e "cannot parse")

let test_comments_and_blank_lines () =
  let outcome = run "# nothing but comments\n\n   # more\n" in
  Alcotest.(check bool) "no mapping" true (outcome.Script.mapping = None);
  Alcotest.(check (list string)) "no output" [] outcome.Script.log

(* --- node/edge graph surgery and persistence --- *)

let test_node_edge_commands () =
  let outcome =
    run
      {|target Kids(ID, affiliation)
node Children Children
node Parents2 Parents
edge Children Parents2 Children.mid = Parents2.ID
corr ID = Children.ID
corr affiliation = Parents2.affiliation
show target|}
  in
  let view = List.hd outcome.Script.log in
  (* Maya's mother is at Acta. *)
  Alcotest.(check bool) "mother affiliation" true (contains view "Acta")

let test_disconnected_graph_rejected () =
  let e =
    run_err
      {|target Kids(ID)
node Children Children
node Parents Parents
corr ID = Children.ID|}
  in
  Alcotest.(check bool) "connectivity" true (contains e "connected")

let test_mapping_io_roundtrip_running () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "roundtrips" true (Clio.Mapping_io.roundtrips ~db ~kb m))
    [
      Paperdata.Running.mapping_g1;
      Paperdata.Running.section2_mapping;
      (* The Example 3.15 mapping uses an Expr-based concat: serializable. *)
      Paperdata.Running.mapping;
    ]

let test_mapping_io_rejects_custom () =
  let m =
    Mapping.set_correspondence Paperdata.Running.mapping_g1
      (Correspondence.custom "contactPh" "weird"
         [ Relational.Attr.make "Children" "ID" ]
         (fun vs -> List.hd vs))
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Clio.Mapping_io.save m);
       false
     with Clio.Mapping_io.Unserializable _ -> true)

let test_mapping_io_load_reports_errors () =
  match Clio.Mapping_io.load ~db ~kb "nonsense command" with
  | Error e -> Alcotest.(check bool) "reported" true (contains e "nonsense")
  | Ok _ -> Alcotest.fail "expected error"

(* --- interactive (REPL) mode --- *)

let test_interactive_feed () =
  let st = Script.Interactive.start ~db ~kb in
  let feed st line =
    match Script.Interactive.feed st line with
    | Ok (st, out) -> (st, out)
    | Error e -> Alcotest.failf "unexpected error: %s" e
  in
  let st, out = feed st "target Kids(ID, name)" in
  Alcotest.(check (list string)) "silent" [] out;
  let st, _ = feed st "source Children" in
  let st, _ = feed st "corr ID = Children.ID" in
  let st, out = feed st "show target" in
  Alcotest.(check int) "one output block" 1 (List.length out);
  Alcotest.(check bool) "has rows" true (contains (List.hd out) "009");
  Alcotest.(check bool) "mapping settled" true
    (Option.is_some (Script.Interactive.mapping st))

let test_interactive_error_keeps_state () =
  let st = Script.Interactive.start ~db ~kb in
  let st =
    match Script.Interactive.feed st "target Kids(ID)" with
    | Ok (st, _) -> st
    | Error e -> Alcotest.failf "setup: %s" e
  in
  (match Script.Interactive.feed st "frobnicate" with
  | Error e -> Alcotest.(check bool) "reports" true (contains e "frobnicate")
  | Ok _ -> Alcotest.fail "expected error");
  (* The old state still works. *)
  match Script.Interactive.feed st "source Children" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "state corrupted: %s" e

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "script"
    [
      ( "script",
        [
          tc "section 2 end-to-end" `Quick test_section2_script_runs;
          tc "alternatives listing" `Quick test_alternatives_listing;
          tc "pick last" `Quick test_pick_last_alternative;
          tc "pick out of range" `Quick test_pick_out_of_range;
          tc "pending blocks" `Quick test_pending_blocks_commands;
          tc "filters and require" `Quick test_filters_and_require;
          tc "undo" `Quick test_undo;
          tc "unknown command" `Quick test_unknown_command_line_number;
          tc "source before target" `Quick test_source_before_target_rejected;
          tc "bad predicate" `Quick test_bad_predicate_reported;
          tc "comments" `Quick test_comments_and_blank_lines;
        ] );
      ( "graph-and-persistence",
        [
          tc "node/edge" `Quick test_node_edge_commands;
          tc "disconnected rejected" `Quick test_disconnected_graph_rejected;
          tc "mapping_io roundtrip" `Quick test_mapping_io_roundtrip_running;
          tc "custom rejected" `Quick test_mapping_io_rejects_custom;
          tc "load errors" `Quick test_mapping_io_load_reports_errors;
        ] );
      ( "interactive",
        [
          tc "feed" `Quick test_interactive_feed;
          tc "error keeps state" `Quick test_interactive_error_keeps_state;
        ] );
    ]
