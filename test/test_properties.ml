(* Cross-module QCheck properties on random synthetic instances: ordering
   laws of subsumption, full-disjunction/rooted-plan agreement under the
   mapping pipeline, sufficiency of greedy selection, continuity of
   evolution after random walk extensions. *)

open Relational
open Clio
module Qgraph = Querygraph.Qgraph

let qtest t = QCheck_alcotest.to_alcotest ~long:false t

(* --- subsumption is a partial order (on deduped tuples) --- *)

let tuple_gen arity =
  QCheck2.Gen.(
    map Array.of_list
      (list_repeat arity
         (frequency
            [ (1, return Value.Null); (2, map (fun i -> Value.Int i) (int_range 0 2)) ])))

let prop_subsume_reflexive =
  QCheck2.Test.make ~name:"subsumes reflexive" ~count:200 (tuple_gen 4) (fun t ->
      Tuple.subsumes t t)

let prop_subsume_antisymmetric =
  QCheck2.Test.make ~name:"subsumes antisymmetric" ~count:500
    QCheck2.Gen.(pair (tuple_gen 3) (tuple_gen 3))
    (fun (a, b) ->
      if Tuple.subsumes a b && Tuple.subsumes b a then Tuple.equal a b else true)

let prop_subsume_transitive =
  QCheck2.Test.make ~name:"subsumes transitive" ~count:500
    QCheck2.Gen.(triple (tuple_gen 3) (tuple_gen 3) (tuple_gen 3))
    (fun (a, b, c) ->
      if Tuple.subsumes a b && Tuple.subsumes b c then Tuple.subsumes a c else true)

(* --- random chain instance + identity mapping --- *)

let instance_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 100000 in
    let* n = int_range 2 4 in
    let* rows = int_range 1 15 in
    return (seed, n, rows))

let make_instance (seed, n, rows) =
  let st = Random.State.make [| seed |] in
  Synth.Gen_graph.random_tree st ~n ~rows ~null_prob:0.25 ~orphan_prob:0.25 ()

(* Identity mapping over each node's id column. *)
let identity_mapping (inst : Synth.Gen_graph.instance) =
  let aliases = Qgraph.aliases inst.Synth.Gen_graph.graph in
  let cols = List.map (fun a -> "c_" ^ a) aliases in
  Mapping.make ~graph:inst.Synth.Gen_graph.graph ~target:"T" ~target_cols:cols
    ~correspondences:
      (List.map (fun a -> Correspondence.identity ("c_" ^ a) (Attr.make a "id")) aliases)
    ()

let prop_eval_algorithms_agree =
  QCheck2.Test.make ~name:"mapping eval agrees across algorithms" ~count:50 instance_gen
    (fun params ->
      let inst = make_instance params in
      let m = identity_mapping inst in
      let db = inst.Synth.Gen_graph.db in
      let a = Mapping_eval.eval ~algorithm:Mapping_eval.Naive (Eval_ctx.transient db) m in
      let b = Mapping_eval.eval ~algorithm:Mapping_eval.Indexed (Eval_ctx.transient db) m in
      let c = Mapping_eval.eval ~algorithm:Mapping_eval.Outerjoin_if_tree (Eval_ctx.transient db) m in
      Relation.equal_contents a b && Relation.equal_contents a c)

let prop_rooted_sql_equivalence =
  QCheck2.Test.make ~name:"rooted left-join = Q_M when root forced" ~count:50
    instance_gen (fun params ->
      let inst = make_instance params in
      let m = identity_mapping inst in
      let root = List.hd (Qgraph.aliases inst.Synth.Gen_graph.graph) in
      let m =
        Mapping.add_target_filter m (Predicate.Is_not_null (Expr.col "T" ("c_" ^ root)))
      in
      Mapping_sql.rooted_equivalent (Eval_ctx.transient inst.Synth.Gen_graph.db) ~root m)

let prop_selection_sufficient =
  QCheck2.Test.make ~name:"greedy selection is sufficient" ~count:50 instance_gen
    (fun params ->
      let inst = make_instance params in
      let m = identity_mapping inst in
      let universe = Mapping_eval.examples (Eval_ctx.transient inst.Synth.Gen_graph.db) m in
      let ill =
        Sufficiency.select ~universe ~target_cols:m.Mapping.target_cols ()
      in
      Sufficiency.is_sufficient ~universe ~target_cols:m.Mapping.target_cols ill)

let prop_positive_examples_match_eval =
  QCheck2.Test.make ~name:"positive examples = mapping query result" ~count:50
    instance_gen (fun params ->
      let inst = make_instance params in
      let m = identity_mapping inst in
      let m =
        Mapping.add_source_filter m
          (Predicate.Is_not_null
             (Expr.col (List.hd (Qgraph.aliases inst.Synth.Gen_graph.graph)) "id"))
      in
      let db = inst.Synth.Gen_graph.db in
      let from_examples =
        Mapping_eval.examples (Eval_ctx.transient db) m
        |> List.filter Example.is_positive
        |> List.map (fun e -> e.Example.target_tuple)
        |> List.sort_uniq Tuple.compare
      in
      let from_eval = Relation.tuples (Mapping_eval.eval (Eval_ctx.transient db) m) |> List.sort Tuple.compare in
      List.length from_examples = List.length from_eval
      && List.for_all2 Tuple.equal from_examples from_eval)

(* --- walks on random star instances --- *)

let star_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 100000 in
    let* leaves = int_range 2 4 in
    return (seed, leaves))

let prop_walk_alternatives_preserve_g =
  QCheck2.Test.make ~name:"walk alternatives contain G induced" ~count:30 star_gen
    (fun (seed, leaves) ->
      let st = Random.State.make [| seed |] in
      let inst = Synth.Gen_graph.star st ~leaves ~rows:5 () in
      let g0 = Qgraph.singleton ~alias:"Fact" ~base:"Fact" in
      let m = Mapping.make ~graph:g0 ~target:"T" ~target_cols:[ "x" ] () in
      let goal = "D1" in
      let alts =
        Op_walk.walk_alternatives ~kb:inst.Synth.Gen_graph.kb m ~start:"Fact" ~goal
          ~max_len:2 ()
      in
      alts <> []
      && List.for_all
           (fun (a : Op_walk.alternative) ->
             let g = a.Op_walk.mapping.Mapping.graph in
             Qgraph.is_connected g
             && Qgraph.equal (Qgraph.induced g [ "Fact" ]) g0
             && List.exists
                  (fun n -> String.equal n.Qgraph.base goal)
                  (Qgraph.nodes g))
           alts)

(* --- evolution continuity after an extension --- *)

let prop_every_association_has_continuation =
  QCheck2.Test.make ~name:"D(G) embeds into D(G') continuations" ~count:40
    instance_gen (fun params ->
      let inst = make_instance params in
      let g' = inst.Synth.Gen_graph.graph in
      let aliases = Qgraph.aliases g' in
      if List.length aliases < 2 then true
      else
        (* Drop one leaf to get G, then check every example of G has a
           continuation among G''s examples. *)
        let leaf =
          List.find_opt
            (fun a -> List.length (Qgraph.neighbours g' a) <= 1)
            (List.rev aliases)
        in
        match leaf with
        | None -> true
        | Some leaf when List.length aliases = 1 -> ignore leaf; true
        | Some leaf ->
            let keep = List.filter (fun a -> a <> leaf) aliases in
            let g = Qgraph.induced g' keep in
            if not (Qgraph.is_connected g) then true
            else
              let db = inst.Synth.Gen_graph.db in
              let mk graph cols_of =
                Mapping.make ~graph ~target:"T"
                  ~target_cols:(List.map (fun a -> "c_" ^ a) cols_of)
                  ~correspondences:
                    (List.map
                       (fun a -> Correspondence.identity ("c_" ^ a) (Attr.make a "id"))
                       cols_of)
                  ()
              in
              let old_m = mk g keep in
              let new_m = mk g' keep in
              let lookup = Database.find db in
              let old_scheme = Qgraph.scheme ~lookup g in
              let new_scheme = Qgraph.scheme ~lookup g' in
              let old_exs = Mapping_eval.examples (Eval_ctx.transient db) old_m in
              let new_exs = Mapping_eval.examples (Eval_ctx.transient db) new_m in
              List.for_all
                (fun old_e ->
                  Evolution.continuations ~old_scheme ~new_scheme old_e new_exs <> [])
                old_exs)

let prop_evolve_sufficient_and_continuous =
  QCheck2.Test.make ~name:"evolved illustration sufficient + continuous" ~count:30
    star_gen (fun (seed, leaves) ->
      let st = Random.State.make [| seed |] in
      let inst = Synth.Gen_graph.star st ~leaves ~rows:6 ~null_prob:0.3 () in
      let db = inst.Synth.Gen_graph.db in
      let g0 = Qgraph.singleton ~alias:"Fact" ~base:"Fact" in
      let m0 =
        Mapping.make ~graph:g0 ~target:"T" ~target_cols:[ "x" ]
          ~correspondences:[ Correspondence.identity "x" (Attr.make "Fact" "id") ]
          ()
      in
      let old_ill = Clio.illustrate (Eval_ctx.transient db) m0 in
      match
        Op_walk.walk_alternatives ~kb:inst.Synth.Gen_graph.kb m0 ~start:"Fact" ~goal:"D1"
          ~max_len:1 ()
      with
      | [] -> true
      | (alt : Op_walk.alternative) :: _ ->
          let new_m = alt.Op_walk.mapping in
          let evolved =
            Evolution.evolve (Eval_ctx.transient db) ~old_mapping:m0 ~old_illustration:old_ill new_m
          in
          let universe = Mapping_eval.examples (Eval_ctx.transient db) new_m in
          Sufficiency.is_sufficient ~universe ~target_cols:new_m.Mapping.target_cols
            evolved
          && Evolution.is_continuous (Eval_ctx.transient db) ~old_mapping:m0 ~old_illustration:old_ill
               ~new_mapping:new_m evolved)

(* --- chase always yields valid mappings --- *)

let prop_chase_mappings_valid =
  QCheck2.Test.make ~name:"chase alternatives are valid mappings" ~count:30
    instance_gen (fun params ->
      let inst = make_instance params in
      let db = inst.Synth.Gen_graph.db in
      let aliases = Qgraph.aliases inst.Synth.Gen_graph.graph in
      let root = List.hd aliases in
      let g0 = Qgraph.singleton ~alias:root ~base:root in
      let m = Mapping.make ~graph:g0 ~target:"T" ~target_cols:[ "x" ] () in
      let r = Database.get db root in
      match Relation.tuples r with
      | [] -> true
      | t :: _ ->
          let v = t.(0) in
          Op_chase.chase (Eval_ctx.transient db) m ~attr:(Attr.make root "id") ~value:v
          |> List.for_all (fun (a : Op_chase.alternative) ->
                 Qgraph.is_connected a.Op_chase.mapping.Mapping.graph
                 && Qgraph.node_count a.Op_chase.mapping.Mapping.graph = 2))

(* --- sampling soundness over random instances --- *)

let prop_sampling_sound =
  QCheck2.Test.make ~name:"sampled slices are sound" ~count:25
    QCheck2.Gen.(triple (int_range 0 10000) (int_range 2 4) (int_range 10 80))
    (fun (seed, n, rows) ->
      let st = Random.State.make [| seed |] in
      let inst =
        Synth.Gen_graph.random_tree st ~n ~rows ~null_prob:0.25 ~orphan_prob:0.2 ()
      in
      let m = identity_mapping inst in
      let universe, ill =
        Sampling.illustrate_sampled ~seed ~per_relation:5 (Eval_ctx.transient inst.Synth.Gen_graph.db) m
      in
      Sampling.sound (Eval_ctx.transient inst.Synth.Gen_graph.db) m ~slice_universe:universe
      && Sufficiency.is_sufficient ~universe ~target_cols:m.Mapping.target_cols ill)

(* --- mapping persistence round-trips on random instances --- *)

let prop_mapping_io_roundtrips =
  QCheck2.Test.make ~name:"Mapping_io round-trips" ~count:40
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 2 5))
    (fun (seed, n) ->
      let st = Random.State.make [| seed |] in
      let inst = Synth.Gen_graph.random_tree st ~n ~rows:5 () in
      let m = identity_mapping inst in
      let m =
        Mapping.add_target_filter
          (Mapping.add_source_filter m
             (Predicate.Cmp
                ( Predicate.Ge,
                  Expr.col (List.hd (Qgraph.aliases inst.Synth.Gen_graph.graph)) "id",
                  Expr.Const (Relational.Value.Int 0) )))
          (Predicate.Is_not_null
             (Expr.col "T" ("c_" ^ List.hd (Qgraph.aliases inst.Synth.Gen_graph.graph))))
      in
      let kb = inst.Synth.Gen_graph.kb in
      Mapping_io.roundtrips ~db:inst.Synth.Gen_graph.db ~kb m)

let () =
  Alcotest.run "properties"
    [
      ( "subsumption-order",
        [
          qtest prop_subsume_reflexive;
          qtest prop_subsume_antisymmetric;
          qtest prop_subsume_transitive;
        ] );
      ( "mapping-pipeline",
        [
          qtest prop_eval_algorithms_agree;
          qtest prop_rooted_sql_equivalence;
          qtest prop_selection_sufficient;
          qtest prop_positive_examples_match_eval;
        ] );
      ( "operators",
        [
          qtest prop_walk_alternatives_preserve_g;
          qtest prop_every_association_has_continuation;
          qtest prop_evolve_sufficient_and_continuous;
          qtest prop_chase_mappings_valid;
          qtest prop_sampling_sound;
          qtest prop_mapping_io_roundtrips;
        ] );
    ]
