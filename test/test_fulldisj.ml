(* Tests for subsumption, minimum union and full disjunction, including
   QCheck properties checking the indexed algorithms against naive oracles
   and the outer-join plan against the per-subgraph definition. *)

open Relational
open Fulldisj
module Qgraph = Querygraph.Qgraph

let v_int i = Value.Int i

(* --- Coverage --- *)

let test_coverage_basic () =
  let c = Coverage.of_list [ "B"; "A" ] in
  Alcotest.(check (list string)) "sorted" [ "A"; "B" ] (Coverage.to_list c);
  Alcotest.(check bool) "subset" true
    (Coverage.subset (Coverage.singleton "A") c);
  Alcotest.(check bool) "strict superset" true
    (Coverage.strict_superset c (Coverage.singleton "A"));
  Alcotest.(check bool) "not strict of self" false (Coverage.strict_superset c c)

let test_coverage_label () =
  let short = function
    | "Children" -> Some "C"
    | "PhoneDir" -> Some "Ph"
    | _ -> None
  in
  Alcotest.(check string) "abbrev" "CPh"
    (Coverage.label ~short (Coverage.of_list [ "Children"; "PhoneDir" ]));
  (* When any alias lacks an abbreviation, fall back to the comma form,
     keeping the abbreviations that do exist. *)
  Alcotest.(check string) "fallback" "C,Zed"
    (Coverage.label ~short (Coverage.of_list [ "Children"; "Zed" ]))

(* --- Assoc coverage inference --- *)

let test_coverage_of_tuple () =
  let node_positions = [ ("A", [ 0; 1 ]); ("B", [ 2 ]) ] in
  let t = Tuple.make [ Value.Null; v_int 1; Value.Null ] in
  Alcotest.(check (list string)) "A only" [ "A" ]
    (Coverage.to_list (Assoc.coverage_of_tuple node_positions t))

(* --- Min union --- *)

let test_remove_subsumed_simple () =
  let full = Tuple.make [ v_int 1; v_int 2 ] in
  let partial = Tuple.make [ v_int 1; Value.Null ] in
  let other = Tuple.make [ v_int 9; Value.Null ] in
  let kept = Min_union.remove_subsumed [ full; partial; other ] in
  Alcotest.(check int) "two kept" 2 (List.length kept);
  Alcotest.(check bool) "partial removed" false
    (List.exists (Tuple.equal partial) kept);
  Alcotest.(check bool) "other kept" true (List.exists (Tuple.equal other) kept)

let test_remove_subsumed_all_null () =
  let full = Tuple.make [ v_int 1; v_int 2 ] in
  let empty = Tuple.nulls 2 in
  let kept = Min_union.remove_subsumed [ full; empty ] in
  Alcotest.(check int) "all-null removed" 1 (List.length kept);
  (* Alone, the all-null tuple is maximal. *)
  Alcotest.(check int) "alone kept" 1
    (List.length (Min_union.remove_subsumed [ empty ]))

let test_min_union_not_commutative_content () =
  (* ⊕ is commutative on contents (schema order may differ). *)
  let mk name cols rows = Relation.create name (Schema.make name cols) rows in
  let a = mk "A" [ "x" ] [ Tuple.make [ v_int 1 ] ] in
  let b = mk "B" [ "y" ] [ Tuple.make [ v_int 2 ] ] in
  let ab = Min_union.min_union a b in
  let ba = Min_union.min_union b a in
  Alcotest.(check int) "same size" (Relation.cardinality ab) (Relation.cardinality ba)

let test_is_minimal () =
  Alcotest.(check bool) "minimal" true
    (Min_union.is_minimal [ Tuple.make [ v_int 1 ]; Tuple.make [ v_int 2 ] ]);
  Alcotest.(check bool) "not minimal" false
    (Min_union.is_minimal
       [ Tuple.make [ v_int 1; v_int 2 ]; Tuple.make [ v_int 1; Value.Null ] ])

(* QCheck: indexed removal ≡ naive removal, and the result is minimal. *)
let tuple_list_gen =
  QCheck2.Gen.(
    let* rows = int_range 0 40 in
    let* arity = int_range 1 4 in
    let value_gen =
      frequency [ (1, return Value.Null); (3, map (fun i -> Value.Int i) (int_range 0 3)) ]
    in
    list_repeat rows (map Array.of_list (list_repeat arity value_gen)))

let dedup_tuples tuples =
  List.fold_left
    (fun acc t -> if List.exists (Tuple.equal t) acc then acc else t :: acc)
    [] tuples
  |> List.rev

let prop_indexed_equals_naive =
  QCheck2.Test.make ~name:"remove_subsumed indexed = naive" ~count:300 tuple_list_gen
    (fun tuples ->
      let tuples = dedup_tuples tuples in
      let naive =
        Min_union.remove_subsumed_naive tuples |> List.sort Tuple.compare
      in
      let indexed = Min_union.remove_subsumed tuples |> List.sort Tuple.compare in
      List.length naive = List.length indexed
      && List.for_all2 Tuple.equal naive indexed)

let prop_result_minimal =
  QCheck2.Test.make ~name:"remove_subsumed result is minimal" ~count:300 tuple_list_gen
    (fun tuples ->
      Min_union.is_minimal (Min_union.remove_subsumed (dedup_tuples tuples)))

let prop_kept_subset =
  QCheck2.Test.make ~name:"remove_subsumed keeps only inputs" ~count:100 tuple_list_gen
    (fun tuples ->
      let tuples = dedup_tuples tuples in
      Min_union.remove_subsumed tuples
      |> List.for_all (fun t -> List.exists (Tuple.equal t) tuples))

let prop_every_dropped_is_subsumed =
  QCheck2.Test.make ~name:"dropped tuples are subsumed by a kept one" ~count:200
    tuple_list_gen (fun tuples ->
      let tuples = dedup_tuples tuples in
      let kept = Min_union.remove_subsumed tuples in
      tuples
      |> List.for_all (fun t ->
             List.exists (Tuple.equal t) kept
             || List.exists (fun k -> Tuple.strictly_subsumes k t) kept))

(* --- incremental merge: minimum union of a minimal base with a batch --- *)

let test_merge_minimal_unit () =
  let schema = Schema.make "B" [ "x"; "y"; "z" ] in
  let t a b c = Tuple.make [ a; b; c ] in
  let base =
    Relation.create "B" schema
      [
        t (v_int 1) (v_int 2) Value.Null;
        t (v_int 9) Value.Null Value.Null;
      ]
  in
  let merged =
    Min_union.merge_minimal base
      [
        (* Strictly subsumes the first base tuple: replaces it. *)
        t (v_int 1) (v_int 2) (v_int 3);
        (* Strictly subsumed by the tuple above: dropped. *)
        t (v_int 1) Value.Null (v_int 3);
        (* Duplicate of a base tuple: dropped before merging. *)
        t (v_int 9) Value.Null Value.Null;
        (* Incomparable: kept. *)
        t (v_int 7) (v_int 8) Value.Null;
      ]
  in
  let kept = Relation.tuples merged in
  Alcotest.(check int) "kept count" 3 (List.length kept);
  Alcotest.(check bool) "subsumed base tuple gone" false
    (List.exists (Tuple.equal (t (v_int 1) (v_int 2) Value.Null)) kept);
  Alcotest.(check bool) "result minimal" true (Min_union.is_minimal kept);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Min_union.merge_minimal: delta tuple arity mismatch")
    (fun () -> ignore (Min_union.merge_minimal base [ Tuple.make [ v_int 1; v_int 2 ] ]))

let test_merge_minimal_noop () =
  let schema = Schema.make "B" [ "x" ] in
  let base = Relation.create "B" schema [ Tuple.make [ v_int 1 ] ] in
  let same = Min_union.merge_minimal base [ Tuple.make [ v_int 1 ] ] in
  Alcotest.(check bool) "all-duplicate batch returns the base" true (base == same)

let merge_gen =
  (* Base and batch must share one arity (merge_minimal validates it). *)
  QCheck2.Gen.(
    let* arity = int_range 1 4 in
    let value_gen =
      frequency [ (1, return Value.Null); (3, map (fun i -> Value.Int i) (int_range 0 3)) ]
    in
    let tuples_gen =
      let* rows = int_range 0 40 in
      list_repeat rows (map Array.of_list (list_repeat arity value_gen))
    in
    let* base = tuples_gen in
    let* batch = tuples_gen in
    return (arity, base, batch))

let sorted_tuples ts = List.sort Tuple.compare ts

let check_merge_equals_reminimize ?pool (arity, base_raw, batch) =
  let schema = Schema.make "B" (List.init arity (Printf.sprintf "c%d")) in
  let base_minimal = Min_union.remove_subsumed (dedup_tuples base_raw) in
  let rel = Relation.create ~allow_all_null:true "B" schema base_minimal in
  let merged = Min_union.merge_minimal ?pool rel batch in
  let reference =
    Min_union.remove_subsumed (dedup_tuples (base_minimal @ batch))
  in
  let a = sorted_tuples (Relation.tuples merged) in
  let b = sorted_tuples reference in
  List.length a = List.length b && List.for_all2 Tuple.equal a b

let prop_merge_equals_reminimize =
  QCheck2.Test.make
    ~name:"merge_minimal base batch = re-minimize (base ∪ batch)" ~count:300
    merge_gen check_merge_equals_reminimize

let prop_merge_equals_reminimize_pooled =
  QCheck2.Test.make
    ~name:"merge_minimal with a Par pool gives the identical result" ~count:100
    merge_gen
    (check_merge_equals_reminimize ?pool:(Par.get_pool ~jobs:4))

(* --- Full disjunction on a concrete instance --- *)

let eq r1 c1 r2 c2 = Predicate.eq_cols (Attr.make r1 c1) (Attr.make r2 c2)
let mk name cols rows = Relation.create name (Schema.make name cols) rows

(* A(id) -- B(aid, cid) -- C(id): B links A and C. *)
let small_db =
  Database.of_relations
    [
      mk "A" [ "id"; "pa" ]
        [ Tuple.make [ v_int 1; v_int 10 ]; Tuple.make [ v_int 2; v_int 20 ] ];
      mk "B" [ "aid"; "cid" ]
        [
          Tuple.make [ v_int 1; v_int 7 ];
          Tuple.make [ v_int 9; v_int 8 ];
          Tuple.make [ v_int 2; Value.Null ];
        ];
      mk "C" [ "id"; "pc" ]
        [ Tuple.make [ v_int 7; v_int 70 ]; Tuple.make [ v_int 5; v_int 50 ] ];
    ]

let small_graph =
  Qgraph.make
    [ ("A", "A"); ("B", "B"); ("C", "C") ]
    [ ("A", "B", eq "A" "id" "B" "aid"); ("B", "C", eq "B" "cid" "C" "id") ]

let test_full_associations () =
  let f =
    Join_eval.full_associations (Source.of_fn (Database.find small_db)) small_graph
  in
  (* Only A1-B(1,7)-C7 fully joins. *)
  Alcotest.(check int) "one full association" 1 (Relation.cardinality f)

let test_full_disjunction_small () =
  let fd = Full_disjunction.compute (Source.of_db small_db) small_graph in
  let by_label =
    Full_disjunction.categories fd
    |> List.map (fun (c, l) -> (Coverage.to_list c, List.length l))
    |> List.sort compare
  in
  (* ABC: (1,B17,C7).  AB: (2,B2null).  B: (9,8) — its cid 8 matches no C.
     C: (5).  A alone: none (both a's join).  Wait: B(9,8): dangles on both
     sides → category B.  C5 dangles → category C.  C7 is in ABC. *)
  Alcotest.(check (list (pair (list string) int)))
    "categories"
    (List.sort compare
       [
         ([ "A"; "B"; "C" ], 1);
         ([ "A"; "B" ], 1);
         ([ "B" ], 1);
         ([ "C" ], 1);
       ])
    by_label

let test_naive_equals_indexed_small () =
  let a = Full_disjunction.naive (Source.of_db small_db) small_graph in
  let b = Full_disjunction.compute (Source.of_db small_db) small_graph in
  Alcotest.(check bool) "same D(G)" true
    (Relation.equal_contents
       (Full_disjunction.to_relation a)
       (Full_disjunction.to_relation b))

let test_outerjoin_plan_small () =
  let a = Full_disjunction.compute (Source.of_db small_db) small_graph in
  let b =
    Outerjoin_plan.full_disjunction (Source.of_fn (Database.find small_db)) small_graph
  in
  Alcotest.(check bool) "oj = naive" true
    (Relation.equal_contents
       (Full_disjunction.to_relation a)
       (Full_disjunction.to_relation b))

let test_outerjoin_rejects_cycles () =
  let tri =
    Qgraph.make
      [ ("A", "A"); ("B", "B"); ("C", "C") ]
      [
        ("A", "B", eq "A" "id" "B" "aid");
        ("B", "C", eq "B" "cid" "C" "id");
        ("A", "C", eq "A" "id" "C" "id");
      ]
  in
  Alcotest.check_raises "not a tree"
    (Invalid_argument "Outerjoin_plan.full_disjunction: not a tree") (fun () ->
      ignore (Outerjoin_plan.full_disjunction (Source.of_fn (Database.find small_db)) tri))

let test_rooted_is_root_covering_subset () =
  let fd = Full_disjunction.compute (Source.of_db small_db) small_graph in
  let rooted =
    Outerjoin_plan.rooted (Source.of_fn (Database.find small_db)) ~root:"A" small_graph
  in
  let covers_a (a : Assoc.t) = Coverage.mem "A" a.Assoc.coverage in
  let expected =
    List.filter covers_a fd.Full_disjunction.associations
    |> List.map (fun (a : Assoc.t) -> a.Assoc.tuple)
    |> List.sort Tuple.compare
  in
  let got =
    rooted.Full_disjunction.associations
    |> List.map (fun (a : Assoc.t) -> a.Assoc.tuple)
    |> List.sort Tuple.compare
  in
  Alcotest.(check int) "size" (List.length expected) (List.length got);
  Alcotest.(check bool) "same tuples" true (List.for_all2 Tuple.equal expected got)

let test_possible_associations_superset () =
  let poss =
    Full_disjunction.possible_associations (Source.of_fn (Database.find small_db)) small_graph
  in
  let fd = Full_disjunction.compute (Source.of_db small_db) small_graph in
  Alcotest.(check bool) "D(G) ⊆ S(G)" true
    (List.for_all
       (fun (a : Assoc.t) ->
         List.exists
           (fun (p : Assoc.t) -> Tuple.equal a.Assoc.tuple p.Assoc.tuple)
           poss.Full_disjunction.associations)
       fd.Full_disjunction.associations)

(* QCheck: all three algorithms agree on random tree instances. *)
let tree_instance_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 10000 in
    let* n = int_range 1 5 in
    let* rows = int_range 0 12 in
    return (seed, n, rows))

let prop_algorithms_agree =
  QCheck2.Test.make ~name:"naive = indexed = outerjoin on random trees" ~count:60
    tree_instance_gen (fun (seed, n, rows) ->
      let st = Random.State.make [| seed |] in
      let inst =
        Synth.Gen_graph.random_tree st ~n ~rows ~null_prob:0.3 ~orphan_prob:0.2 ()
      in
      let lookup = Database.find inst.Synth.Gen_graph.db in
      let g = inst.Synth.Gen_graph.graph in
      let rel r = Full_disjunction.to_relation r in
      let a = rel (Full_disjunction.naive (Source.of_fn lookup) g) in
      let b = rel (Full_disjunction.compute (Source.of_fn lookup) g) in
      let c = rel (Outerjoin_plan.full_disjunction (Source.of_fn lookup) g) in
      Relation.equal_contents a b && Relation.equal_contents a c)

let prop_fd_is_minimal =
  QCheck2.Test.make ~name:"D(G) has no subsumed tuples" ~count:60 tree_instance_gen
    (fun (seed, n, rows) ->
      let st = Random.State.make [| seed |] in
      let inst =
        Synth.Gen_graph.random_tree st ~n ~rows ~null_prob:0.3 ~orphan_prob:0.2 ()
      in
      let fd =
        Full_disjunction.compute (Source.of_fn (Database.find inst.Synth.Gen_graph.db))
          inst.Synth.Gen_graph.graph
      in
      Min_union.is_minimal
        (List.map (fun (a : Assoc.t) -> a.Assoc.tuple)
           fd.Full_disjunction.associations))

let prop_coverage_matches_nullness =
  QCheck2.Test.make ~name:"coverage tag matches null pattern" ~count:60
    tree_instance_gen (fun (seed, n, rows) ->
      let st = Random.State.make [| seed |] in
      let inst =
        Synth.Gen_graph.random_tree st ~n ~rows ~null_prob:0.3 ~orphan_prob:0.2 ()
      in
      let fd =
        Full_disjunction.compute (Source.of_fn (Database.find inst.Synth.Gen_graph.db))
          inst.Synth.Gen_graph.graph
      in
      fd.Full_disjunction.associations
      |> List.for_all (fun (a : Assoc.t) ->
             Coverage.equal a.Assoc.coverage
               (Assoc.coverage_of_tuple fd.Full_disjunction.node_positions
                  a.Assoc.tuple)))

(* --- Plan / explain --- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_plan_tree_vs_cyclic () =
  let lookup = Database.find small_db in
  let p = Plan.analyze ~lookup small_graph in
  Alcotest.(check bool) "tree -> cascade" true
    (p.Plan.algorithm = Plan.Outerjoin_cascade);
  Alcotest.(check int) "categories" 6 p.Plan.categories;
  let tri =
    Qgraph.make
      [ ("A", "A"); ("B", "B"); ("C", "C") ]
      [
        ("A", "B", eq "A" "id" "B" "aid");
        ("B", "C", eq "B" "cid" "C" "id");
        ("A", "C", eq "A" "id" "C" "id");
      ]
  in
  let p2 = Plan.analyze ~lookup tri in
  Alcotest.(check bool) "cycle -> categories" true
    (p2.Plan.algorithm = Plan.Indexed_categories)

let test_plan_execute_matches_compute () =
  let lookup = Database.find small_db in
  let a = Full_disjunction.to_relation (Plan.execute ~lookup small_graph) in
  let b = Full_disjunction.to_relation (Full_disjunction.compute (Source.of_fn lookup) small_graph) in
  Alcotest.(check bool) "same" true (Relation.equal_contents a b)

let test_plan_render () =
  let lookup = Database.find small_db in
  let s = Plan.render (Plan.analyze ~lookup small_graph) in
  Alcotest.(check bool) "mentions cascade" true (contains s "cascade");
  Alcotest.(check bool) "mentions cardinalities" true (contains s "base cardinalities");
  Alcotest.(check bool) "join order" true (contains s "A -> B -> C")

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "fulldisj"
    [
      ( "coverage",
        [
          tc "basic" `Quick test_coverage_basic;
          tc "label" `Quick test_coverage_label;
          tc "of tuple" `Quick test_coverage_of_tuple;
        ] );
      ( "min_union",
        [
          tc "remove subsumed" `Quick test_remove_subsumed_simple;
          tc "all-null tuple" `Quick test_remove_subsumed_all_null;
          tc "commutative contents" `Quick test_min_union_not_commutative_content;
          tc "is_minimal" `Quick test_is_minimal;
          tc "merge_minimal" `Quick test_merge_minimal_unit;
          tc "merge_minimal no-op" `Quick test_merge_minimal_noop;
        ] );
      ( "full_disjunction",
        [
          tc "full associations" `Quick test_full_associations;
          tc "small instance categories" `Quick test_full_disjunction_small;
          tc "naive = indexed" `Quick test_naive_equals_indexed_small;
          tc "outerjoin plan" `Quick test_outerjoin_plan_small;
          tc "outerjoin rejects cycles" `Quick test_outerjoin_rejects_cycles;
          tc "rooted subset" `Quick test_rooted_is_root_covering_subset;
          tc "possible ⊇ D(G)" `Quick test_possible_associations_superset;
        ] );
      ( "plan",
        [
          tc "tree vs cyclic" `Quick test_plan_tree_vs_cyclic;
          tc "execute = compute" `Quick test_plan_execute_matches_compute;
          tc "render" `Quick test_plan_render;
        ] );
      qsuite "properties:min_union"
        [
          prop_indexed_equals_naive;
          prop_result_minimal;
          prop_kept_subset;
          prop_every_dropped_is_subsumed;
          prop_merge_equals_reminimize;
          prop_merge_equals_reminimize_pooled;
        ];
      qsuite "properties:full_disjunction"
        [ prop_algorithms_agree; prop_fd_is_minimal; prop_coverage_matches_nullness ];
    ]
