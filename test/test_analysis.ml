(* Tests for static category analysis (pruned evaluation) and whole-schema
   projects. *)

open Relational
open Clio
module Qgraph = Querygraph.Qgraph

let db = Paperdata.Figure1.database
let eq r1 c1 r2 c2 = Predicate.eq_cols (Attr.make r1 c1) (Attr.make r2 c2)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- Mapping_analysis --- *)

let m9 = Paperdata.Running.mapping

let test_required_aliases () =
  (* Kids.ID not null, ID ← Children.ID: Children is required. *)
  Alcotest.(check (list string)) "children required" [ "Children" ]
    (Mapping_analysis.required_aliases m9)

let test_category_verdicts () =
  let verdict aliases =
    Mapping_analysis.category_verdict m9 (Fulldisj.Coverage.of_list aliases)
  in
  (match verdict [ "Parents"; "PhoneDir" ] with
  | Mapping_analysis.Always_negative [ "Children" ] -> ()
  | _ -> Alcotest.fail "PPh should be doomed for missing Children");
  match verdict [ "Children"; "Parents" ] with
  | Mapping_analysis.Possibly_positive -> ()
  | Mapping_analysis.Always_negative _ -> Alcotest.fail "CP can be positive"

let test_possibly_positive_categories () =
  let cats = Mapping_analysis.possibly_positive_categories m9 in
  (* Of the 10 connected subgraphs of the 4-node path, exactly those
     containing Children survive: C, CP, CS, CPPh, CPS, CPPhS -> 6. *)
  Alcotest.(check int) "six categories" 6 (List.length cats);
  List.iter
    (fun c -> Alcotest.(check bool) "has Children" true (List.mem "Children" c))
    cats

let test_eval_pruned_equals_eval () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "pruned = full" true
        (Relation.equal_contents (Mapping_eval.eval (Eval_ctx.transient db) m)
           (Mapping_analysis.eval_pruned (Eval_ctx.transient db) m)))
    [ m9; Paperdata.Running.section2_mapping; Paperdata.Running.mapping_g1 ]

let test_eval_pruned_random_instances () =
  for seed = 0 to 15 do
    let st = Random.State.make [| seed |] in
    let inst =
      Synth.Gen_graph.random_tree st ~n:4 ~rows:25 ~null_prob:0.3 ~orphan_prob:0.25 ()
    in
    let aliases = Qgraph.aliases inst.Synth.Gen_graph.graph in
    let m =
      Mapping.make ~graph:inst.Synth.Gen_graph.graph ~target:"T"
        ~target_cols:(List.map (fun a -> "c_" ^ a) aliases)
        ~correspondences:
          (List.map
             (fun a -> Correspondence.identity ("c_" ^ a) (Attr.make a "id"))
             aliases)
        ~target_filters:
          [ Predicate.Is_not_null (Expr.col "T" ("c_" ^ List.hd aliases)) ]
        ()
    in
    Alcotest.(check bool) "pruned = full" true
      (Relation.equal_contents
         (Mapping_eval.eval (Eval_ctx.transient inst.Synth.Gen_graph.db) m)
         (Mapping_analysis.eval_pruned (Eval_ctx.transient inst.Synth.Gen_graph.db) m))
  done

let test_no_filter_means_everything_possible () =
  let bare = Mapping.phi m9 in
  Alcotest.(check (list string)) "no required aliases" []
    (Mapping_analysis.required_aliases bare);
  Alcotest.(check int) "all 10 categories" 10
    (List.length (Mapping_analysis.possibly_positive_categories bare))

(* --- Schema_project --- *)

let kids_mapping =
  Mapping.make
    ~graph:
      (Qgraph.make
         [ ("Children", "Children"); ("Parents", "Parents") ]
         [ ("Children", "Parents", eq "Children" "fid" "Parents" "ID") ])
    ~target:"Kids"
    ~target_cols:[ "ID"; "name"; "father_id" ]
    ~correspondences:
      [
        Clio.corr_identity "ID" "Children" "ID";
        Clio.corr_identity "name" "Children" "name";
        Clio.corr_identity "father_id" "Children" "fid";
      ]
    ~target_filters:[ Predicate.Is_not_null (Expr.col "Kids" "ID") ]
    ()

let guardians_mapping =
  Mapping.make
    ~graph:(Qgraph.singleton ~alias:"Parents" ~base:"Parents")
    ~target:"Guardians"
    ~target_cols:[ "id"; "affiliation" ]
    ~correspondences:
      [
        Clio.corr_identity "id" "Parents" "ID";
        Clio.corr_identity "affiliation" "Parents" "affiliation";
      ]
    ()

let target_fk =
  Integrity.Foreign_key
    { rel = "Kids"; cols = [ "father_id" ]; ref_rel = "Guardians"; ref_cols = [ "id" ] }

let schema_project () =
  let sp = Schema_project.create ~constraints:[ target_fk ] () in
  let sp = Schema_project.add_target sp ~target:"Kids" ~cols:[ "ID"; "name"; "father_id" ] in
  let sp = Schema_project.add_target sp ~target:"Guardians" ~cols:[ "id"; "affiliation" ] in
  sp

let test_schema_project_materialize_and_check () =
  let sp = schema_project () in
  let sp = Schema_project.accept sp kids_mapping in
  let sp = Schema_project.accept sp guardians_mapping in
  let inst = Schema_project.materialize (Eval_ctx.transient db) sp in
  Alcotest.(check (list string)) "two targets" [ "Kids"; "Guardians" ]
    (Database.relation_names inst);
  Alcotest.(check int) "4 kids" 4 (Relation.cardinality (Database.get inst "Kids"));
  (* All fathers are in Parents: the cross-target FK holds. *)
  Alcotest.(check int) "no violations" 0 (List.length (Schema_project.check (Eval_ctx.transient db) sp))

let test_schema_project_detects_fk_violation () =
  (* Kids accepted but Guardians left unmapped: every father_id dangles. *)
  let sp = Schema_project.accept (schema_project ()) kids_mapping in
  Alcotest.(check bool) "violations" true
    (List.length (Schema_project.check (Eval_ctx.transient db) sp) > 0)

let test_schema_project_report () =
  let sp = Schema_project.accept (schema_project ()) kids_mapping in
  let s = Schema_project.report (Eval_ctx.transient db) sp in
  Alcotest.(check bool) "mentions both targets" true
    (contains s "Kids" && contains s "Guardians");
  Alcotest.(check bool) "mentions mappings count" true (contains s "(1 mapping)")

let test_schema_project_duplicate_target () =
  let sp = schema_project () in
  Alcotest.check_raises "dup"
    (Invalid_argument "Schema_project.add_target: duplicate target Kids") (fun () ->
      ignore (Schema_project.add_target sp ~target:"Kids" ~cols:[ "x" ]))

let test_schema_project_unknown_target () =
  let sp = schema_project () in
  let other =
    Mapping.make
      ~graph:(Qgraph.singleton ~alias:"Children" ~base:"Children")
      ~target:"Nowhere" ~target_cols:[ "x" ] ()
  in
  Alcotest.(check bool) "not found" true
    (try
       ignore (Schema_project.accept sp other);
       false
     with Not_found -> true)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "analysis"
    [
      ( "mapping_analysis",
        [
          tc "required aliases" `Quick test_required_aliases;
          tc "category verdicts" `Quick test_category_verdicts;
          tc "possibly positive" `Quick test_possibly_positive_categories;
          tc "pruned = full (paper)" `Quick test_eval_pruned_equals_eval;
          tc "pruned = full (random)" `Quick test_eval_pruned_random_instances;
          tc "no filters" `Quick test_no_filter_means_everything_possible;
        ] );
      ( "schema_project",
        [
          tc "materialize + check" `Quick test_schema_project_materialize_and_check;
          tc "fk violation" `Quick test_schema_project_detects_fk_violation;
          tc "report" `Quick test_schema_project_report;
          tc "duplicate target" `Quick test_schema_project_duplicate_target;
          tc "unknown target" `Quick test_schema_project_unknown_target;
        ] );
    ]
