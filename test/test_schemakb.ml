(* Tests for the schema knowledge base: FK-derived join pairs, inclusion
   dependency mining, and the alternative-mapping ranking heuristics. *)

open Relational
module Kb = Schemakb.Kb
module Mine = Schemakb.Mine
module Rank = Schemakb.Rank
module Qgraph = Querygraph.Qgraph

let mk name cols rows = Relation.create name (Schema.make name cols) rows
let v_int i = Value.Int i

(* --- Kb --- *)

let fk_db =
  Database.of_relations
    ~constraints:
      [
        Integrity.Foreign_key
          { rel = "C"; cols = [ "pid" ]; ref_rel = "P"; ref_cols = [ "id" ] };
      ]
    [
      mk "P" [ "id" ] [ Tuple.make [ v_int 1 ] ];
      mk "C" [ "id"; "pid" ] [ Tuple.make [ v_int 10; v_int 1 ] ];
    ]

let test_kb_of_database () =
  let kb = Kb.of_database fk_db in
  Alcotest.(check int) "one pair" 1 (List.length (Kb.pairs kb));
  Alcotest.(check int) "joinable from C" 1 (List.length (Kb.joinable kb "C"));
  Alcotest.(check int) "joinable from P" 1 (List.length (Kb.joinable kb "P"));
  Alcotest.(check int) "joinable from X" 0 (List.length (Kb.joinable kb "X"))

let test_kb_orientation () =
  let kb = Kb.of_database fk_db in
  let from_p = List.hd (Kb.joinable kb "P") in
  Alcotest.(check string) "oriented" "P" from_p.Kb.r1;
  Alcotest.(check string) "other side" "C" from_p.Kb.r2;
  (* atoms flipped too: P.id = C.pid *)
  Alcotest.(check string) "pred" "P.id = C2.pid"
    (Predicate.to_sql (Kb.predicate from_p ~alias1:"P" ~alias2:"C2"))

let test_kb_dedup () =
  let kb = Kb.of_database fk_db in
  let again =
    Kb.add kb { Kb.r1 = "P"; r2 = "C"; atoms = [ ("id", "pid") ]; origin = Kb.Asserted }
  in
  Alcotest.(check int) "flipped duplicate ignored" 1 (List.length (Kb.pairs again))

let test_kb_matches_edge () =
  let kb = Kb.of_database fk_db in
  let pair = List.hd (Kb.pairs kb) in
  let pred = Predicate.eq_cols (Attr.make "C" "pid") (Attr.make "P" "id") in
  Alcotest.(check bool) "matches" true (Kb.matches_edge pair ~alias1:"C" ~alias2:"P" pred);
  Alcotest.(check bool) "matches flipped" true
    (Kb.matches_edge pair ~alias1:"P" ~alias2:"C" pred);
  let wrong = Predicate.eq_cols (Attr.make "C" "id") (Attr.make "P" "id") in
  Alcotest.(check bool) "no match" false
    (Kb.matches_edge pair ~alias1:"C" ~alias2:"P" wrong)

(* --- Mine --- *)

let mine_db =
  Database.of_relations
    [
      mk "Parent" [ "id" ]
        [ Tuple.make [ v_int 1 ]; Tuple.make [ v_int 2 ]; Tuple.make [ v_int 3 ] ];
      mk "Child" [ "cid"; "pid" ]
        [
          Tuple.make [ v_int 10; v_int 1 ];
          Tuple.make [ v_int 11; v_int 2 ];
          Tuple.make [ v_int 12; v_int 2 ];
        ];
      mk "Noise" [ "x" ] [ Tuple.make [ v_int 99 ] ];
    ]

let test_mine_finds_inclusion () =
  let cands = Mine.inclusion_dependencies mine_db in
  Alcotest.(check bool) "Child.pid ⊆ Parent.id" true
    (List.exists
       (fun c ->
         c.Mine.rel = "Child" && c.Mine.col = "pid" && c.Mine.ref_rel = "Parent"
         && c.Mine.ref_col = "id"
         && c.Mine.confidence = 1.0)
       cands);
  Alcotest.(check bool) "no Noise candidates" true
    (List.for_all (fun c -> c.Mine.rel <> "Noise" || c.Mine.ref_rel <> "Child") cands)

let test_mine_respects_key_requirement () =
  (* Child.pid has duplicates (2 twice): nothing may reference it as a key. *)
  let cands = Mine.inclusion_dependencies mine_db in
  Alcotest.(check bool) "nothing references pid" true
    (List.for_all (fun c -> not (c.Mine.ref_rel = "Child" && c.Mine.ref_col = "pid")) cands)

let test_mine_partial_overlap () =
  let db =
    Database.of_relations
      [
        mk "A" [ "x" ]
          [ Tuple.make [ v_int 1 ]; Tuple.make [ v_int 2 ]; Tuple.make [ v_int 9 ];
            Tuple.make [ v_int 10 ] ];
        mk "B" [ "y" ] [ Tuple.make [ v_int 1 ]; Tuple.make [ v_int 2 ] ];
      ]
  in
  let strict = Mine.inclusion_dependencies db in
  Alcotest.(check bool) "not at 1.0" true
    (List.for_all (fun c -> not (c.Mine.rel = "A" && c.Mine.ref_rel = "B")) strict);
  let loose = Mine.inclusion_dependencies ~min_overlap:0.5 db in
  Alcotest.(check bool) "at 0.5" true
    (List.exists
       (fun c -> c.Mine.rel = "A" && c.Mine.ref_rel = "B" && c.Mine.confidence = 0.5)
       loose)

let test_kb_add_mined () =
  let kb = Kb.add_mined Kb.empty (Mine.inclusion_dependencies mine_db) in
  Alcotest.(check bool) "pair added" true
    (List.exists
       (fun p -> p.Kb.r1 = "Child" && p.Kb.r2 = "Parent")
       (Kb.pairs kb))

(* --- Rank --- *)

let eq r1 c1 r2 c2 = Predicate.eq_cols (Attr.make r1 c1) (Attr.make r2 c2)

let test_rank_prefers_small_extension () =
  let old = Qgraph.singleton ~alias:"C" ~base:"C" in
  let small =
    Qgraph.make [ ("C", "C"); ("P", "P") ] [ ("C", "P", eq "C" "pid" "P" "id") ]
  in
  let big =
    Qgraph.make
      [ ("C", "C"); ("X", "X"); ("P", "P") ]
      [ ("C", "X", eq "C" "xid" "X" "id"); ("X", "P", eq "X" "pid" "P" "id") ]
  in
  let ordered = Rank.order ~kb:Kb.empty ~old [ big; small ] in
  Alcotest.(check bool) "small first" true (Qgraph.equal (List.hd ordered) small)

let test_rank_penalizes_copies () =
  let old =
    Qgraph.make [ ("C", "C"); ("P", "P") ] [ ("C", "P", eq "C" "fid" "P" "id") ]
  in
  let reuse =
    Qgraph.make
      [ ("C", "C"); ("P", "P"); ("D", "D") ]
      [ ("C", "P", eq "C" "fid" "P" "id"); ("P", "D", eq "P" "id" "D" "id") ]
  in
  let copy =
    Qgraph.make
      [ ("C", "C"); ("P", "P"); ("P2", "P"); ("D", "D") ]
      [
        ("C", "P", eq "C" "fid" "P" "id");
        ("C", "P2", eq "C" "mid" "P2" "id");
        ("P2", "D", eq "P2" "id" "D" "id");
      ]
  in
  let s_reuse = Rank.score ~kb:Kb.empty ~old reuse in
  let s_copy = Rank.score ~kb:Kb.empty ~old copy in
  Alcotest.(check int) "copy counted" 1 s_copy.Rank.copies;
  Alcotest.(check bool) "reuse cheaper" true (Rank.total s_reuse < Rank.total s_copy)

let test_rank_rewards_declared_edges () =
  let kb = Kb.of_database fk_db in
  let old = Qgraph.singleton ~alias:"C" ~base:"C" in
  let declared =
    Qgraph.make [ ("C", "C"); ("P", "P") ] [ ("C", "P", eq "C" "pid" "P" "id") ]
  in
  let undeclared =
    Qgraph.make [ ("C", "C"); ("P", "P") ] [ ("C", "P", eq "C" "id" "P" "id") ]
  in
  let ordered = Rank.order ~kb ~old [ undeclared; declared ] in
  Alcotest.(check bool) "declared first" true (Qgraph.equal (List.hd ordered) declared)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "schemakb"
    [
      ( "kb",
        [
          tc "of database" `Quick test_kb_of_database;
          tc "orientation" `Quick test_kb_orientation;
          tc "dedup" `Quick test_kb_dedup;
          tc "matches edge" `Quick test_kb_matches_edge;
          tc "add mined" `Quick test_kb_add_mined;
        ] );
      ( "mine",
        [
          tc "finds inclusion" `Quick test_mine_finds_inclusion;
          tc "key requirement" `Quick test_mine_respects_key_requirement;
          tc "partial overlap" `Quick test_mine_partial_overlap;
        ] );
      ( "rank",
        [
          tc "prefers small" `Quick test_rank_prefers_small_extension;
          tc "penalizes copies" `Quick test_rank_penalizes_copies;
          tc "rewards declared" `Quick test_rank_rewards_declared_edges;
        ] );
    ]
