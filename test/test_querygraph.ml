(* Unit tests for query graphs: structure, connectivity, induced subgraph
   enumeration (the categories of D(G)), path enumeration, DOT export. *)

open Relational
module Qgraph = Querygraph.Qgraph
module Subgraphs = Querygraph.Subgraphs
module Paths = Querygraph.Paths
module Dot = Querygraph.Dot

let eq r1 c1 r2 c2 = Predicate.eq_cols (Attr.make r1 c1) (Attr.make r2 c2)

let path3 =
  Qgraph.make
    [ ("A", "A"); ("B", "B"); ("C", "C") ]
    [ ("A", "B", eq "A" "x" "B" "x"); ("B", "C", eq "B" "y" "C" "y") ]

let triangle =
  Qgraph.make
    [ ("A", "A"); ("B", "B"); ("C", "C") ]
    [
      ("A", "B", eq "A" "x" "B" "x");
      ("B", "C", eq "B" "y" "C" "y");
      ("A", "C", eq "A" "z" "C" "z");
    ]

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- structure --- *)

let test_nodes_edges () =
  Alcotest.(check int) "nodes" 3 (Qgraph.node_count path3);
  Alcotest.(check int) "edges" 2 (Qgraph.edge_count path3);
  Alcotest.(check (list string)) "aliases" [ "A"; "B"; "C" ] (Qgraph.aliases path3)

let test_duplicate_alias_rejected () =
  Alcotest.check_raises "dup" (Invalid_argument "Qgraph.add_node: duplicate alias A")
    (fun () -> ignore (Qgraph.add_node path3 ~alias:"A" ~base:"A"))

let test_edge_is_undirected () =
  match (Qgraph.find_edge path3 "A" "B", Qgraph.find_edge path3 "B" "A") with
  | Some e1, Some e2 ->
      Alcotest.(check bool) "same predicate" true (Predicate.equal e1.pred e2.pred)
  | _ -> Alcotest.fail "edge lookup failed"

let test_self_loop_rejected () =
  Alcotest.check_raises "self" (Invalid_argument "Qgraph.add_edge: self-loop")
    (fun () -> ignore (Qgraph.add_edge path3 "A" "A" Predicate.True))

let test_neighbours () =
  Alcotest.(check (list string)) "B's neighbours" [ "A"; "C" ]
    (Qgraph.neighbours path3 "B");
  Alcotest.(check (list string)) "A's neighbours" [ "B" ] (Qgraph.neighbours path3 "A")

let test_connectivity () =
  Alcotest.(check bool) "path connected" true (Qgraph.is_connected path3);
  let disconnected = Qgraph.make [ ("A", "A"); ("B", "B") ] [] in
  Alcotest.(check bool) "two isolated nodes" false (Qgraph.is_connected disconnected);
  Alcotest.(check bool) "empty connected" true (Qgraph.is_connected Qgraph.empty)

let test_induced () =
  let sub = Qgraph.induced path3 [ "A"; "C" ] in
  Alcotest.(check int) "nodes" 2 (Qgraph.node_count sub);
  Alcotest.(check int) "no edges" 0 (Qgraph.edge_count sub);
  let sub2 = Qgraph.induced path3 [ "A"; "B" ] in
  Alcotest.(check int) "one edge" 1 (Qgraph.edge_count sub2)

let test_union () =
  let ext =
    Qgraph.make [ ("B", "B"); ("D", "D") ] [ ("B", "D", eq "B" "z" "D" "z") ]
  in
  let u = Qgraph.union path3 ext in
  Alcotest.(check int) "nodes" 4 (Qgraph.node_count u);
  Alcotest.(check int) "edges" 3 (Qgraph.edge_count u)

let test_union_relabel_rejected () =
  let ext = Qgraph.make [ ("A", "A"); ("B", "B") ] [ ("A", "B", eq "A" "q" "B" "q") ] in
  Alcotest.check_raises "relabel"
    (Invalid_argument "Qgraph.union: edge (A,B) relabeled") (fun () ->
      ignore (Qgraph.union path3 ext))

let test_fresh_alias () =
  Alcotest.(check string) "A taken" "A2" (Qgraph.fresh_alias path3 "A");
  Alcotest.(check string) "Z free" "Z" (Qgraph.fresh_alias path3 "Z");
  let with_a2 = Qgraph.add_node path3 ~alias:"A2" ~base:"A" in
  Alcotest.(check string) "A and A2 taken" "A3" (Qgraph.fresh_alias with_a2 "A")

let test_scheme_and_node_relation () =
  let r name = Relation.create name (Schema.make name [ "x"; "y"; "z" ]) [] in
  let lookup n = Some (r n) in
  let g =
    Qgraph.make [ ("P", "Parents"); ("P2", "Parents") ] [ ("P", "P2", eq "P" "x" "P2" "x") ]
  in
  let scheme = Qgraph.scheme ~lookup:(fun n -> lookup n) g in
  Alcotest.(check int) "combined arity" 6 (Schema.arity scheme);
  Alcotest.(check bool) "copy attrs renamed" true (Schema.mem scheme (Attr.make "P2" "y"));
  let nr = Qgraph.node_relation ~lookup:(fun n -> lookup n) g "P2" in
  Alcotest.(check bool) "relation renamed" true
    (Schema.mem (Relation.schema nr) (Attr.make "P2" "x"))

(* --- induced connected subgraph enumeration --- *)

let test_subgraphs_path () =
  (* A path of n nodes has n(n+1)/2 contiguous segments. *)
  Alcotest.(check int) "path3" 6 (Subgraphs.count path3)

let test_subgraphs_triangle () =
  (* All 7 non-empty subsets of a triangle are connected. *)
  Alcotest.(check int) "triangle" 7 (Subgraphs.count triangle)

let test_subgraphs_star () =
  (* Star with hub H and 3 leaves: any subset containing H (8) plus the 3
     singleton leaves. *)
  let star =
    Qgraph.make
      [ ("H", "H"); ("L1", "L1"); ("L2", "L2"); ("L3", "L3") ]
      [
        ("H", "L1", eq "H" "a" "L1" "a");
        ("H", "L2", eq "H" "b" "L2" "b");
        ("H", "L3", eq "H" "c" "L3" "c");
      ]
  in
  Alcotest.(check int) "star" 11 (Subgraphs.count star)

let test_subgraphs_no_duplicates () =
  let sets = Subgraphs.connected_node_sets triangle in
  let sorted = List.sort compare sets in
  Alcotest.(check int) "unique" (List.length sorted)
    (List.length (List.sort_uniq compare sorted))

let test_subgraphs_all_connected () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (String.concat "," s)
        true
        (Subgraphs.is_induced_connected triangle s))
    (Subgraphs.connected_node_sets triangle)

let test_subgraphs_singletons_included () =
  let sets = Subgraphs.connected_node_sets path3 in
  List.iter
    (fun a ->
      Alcotest.(check bool) a true (List.mem [ a ] sets))
    [ "A"; "B"; "C" ]

(* brute-force oracle on a 5-node random-ish graph *)
let test_subgraphs_matches_bruteforce () =
  let g =
    Qgraph.make
      [ ("A", "A"); ("B", "B"); ("C", "C"); ("D", "D"); ("E", "E") ]
      [
        ("A", "B", eq "A" "x" "B" "x");
        ("B", "C", eq "B" "y" "C" "y");
        ("C", "D", eq "C" "z" "D" "z");
        ("B", "D", eq "B" "w" "D" "w");
        ("D", "E", eq "D" "v" "E" "v");
      ]
  in
  let all = Qgraph.aliases g in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let s = subsets rest in
        s @ List.map (fun t -> x :: t) s
  in
  let brute =
    subsets all
    |> List.filter (fun s -> s <> [] && Qgraph.is_connected (Qgraph.induced g s))
    |> List.map (List.sort String.compare)
    |> List.sort compare
  in
  let fast = Subgraphs.connected_node_sets g |> List.sort compare in
  Alcotest.(check int) "same count" (List.length brute) (List.length fast);
  Alcotest.(check bool) "same sets" true (brute = fast)

(* --- paths --- *)

let kb_neighbours node =
  (* tiny KB graph: A-B (two labels), B-C, A-C *)
  match node with
  | "A" -> [ ("B", "ab1"); ("B", "ab2"); ("C", "ac") ]
  | "B" -> [ ("A", "ab1"); ("A", "ab2"); ("C", "bc") ]
  | "C" -> [ ("A", "ac"); ("B", "bc") ]
  | _ -> []

let test_simple_paths () =
  let paths = Paths.simple_paths ~neighbours:kb_neighbours ~max_len:2 "A" "C" in
  (* A-C, A-B(ab1)-C, A-B(ab2)-C *)
  Alcotest.(check int) "three paths" 3 (List.length paths)

let test_simple_paths_max_len () =
  let paths = Paths.simple_paths ~neighbours:kb_neighbours ~max_len:1 "A" "C" in
  Alcotest.(check int) "direct only" 1 (List.length paths)

let test_paths_from () =
  let paths = Paths.paths_from ~neighbours:kb_neighbours ~max_len:1 "A" in
  (* A->B twice, A->C once *)
  Alcotest.(check int) "three one-step walks" 3 (List.length paths)

let test_paths_are_simple () =
  let paths = Paths.simple_paths ~neighbours:kb_neighbours ~max_len:3 "A" "C" in
  List.iter
    (fun p ->
      let nodes = "A" :: List.map snd p in
      Alcotest.(check int) "no repeats" (List.length nodes)
        (List.length (List.sort_uniq compare nodes)))
    paths

(* --- dot --- *)

let test_dot_output () =
  let dot = Dot.to_dot ~highlight:[ "A" ] path3 in
  Alcotest.(check bool) "graph kw" true (contains dot "graph query_graph");
  Alcotest.(check bool) "edge" true (contains dot "\"A\" -- \"B\"");
  Alcotest.(check bool) "highlight" true (contains dot "filled")

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "querygraph"
    [
      ( "structure",
        [
          tc "nodes/edges" `Quick test_nodes_edges;
          tc "duplicate alias" `Quick test_duplicate_alias_rejected;
          tc "undirected" `Quick test_edge_is_undirected;
          tc "self loop" `Quick test_self_loop_rejected;
          tc "neighbours" `Quick test_neighbours;
          tc "connectivity" `Quick test_connectivity;
          tc "induced" `Quick test_induced;
          tc "union" `Quick test_union;
          tc "union relabel" `Quick test_union_relabel_rejected;
          tc "fresh alias" `Quick test_fresh_alias;
          tc "scheme/copies" `Quick test_scheme_and_node_relation;
        ] );
      ( "subgraphs",
        [
          tc "path" `Quick test_subgraphs_path;
          tc "triangle" `Quick test_subgraphs_triangle;
          tc "star" `Quick test_subgraphs_star;
          tc "no duplicates" `Quick test_subgraphs_no_duplicates;
          tc "all connected" `Quick test_subgraphs_all_connected;
          tc "singletons" `Quick test_subgraphs_singletons_included;
          tc "brute force oracle" `Quick test_subgraphs_matches_bruteforce;
        ] );
      ( "paths",
        [
          tc "simple paths" `Quick test_simple_paths;
          tc "max len" `Quick test_simple_paths_max_len;
          tc "paths from" `Quick test_paths_from;
          tc "simple" `Quick test_paths_are_simple;
        ] );
      ("dot", [ tc "output" `Quick test_dot_output ]);
    ]
