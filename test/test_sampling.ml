(* Tests for slice-based illustration over large data volumes: soundness
   (slice associations are real), determinism, size reduction, dangling
   witnesses, and end-to-end sampled illustration. *)

open Relational
open Clio
module Qgraph = Querygraph.Qgraph

let big_instance seed =
  let st = Random.State.make [| seed |] in
  Synth.Gen_graph.chain st ~n:3 ~rows:2000 ~null_prob:0.2 ~orphan_prob:0.15 ()

let identity_mapping (inst : Synth.Gen_graph.instance) =
  let aliases = Qgraph.aliases inst.Synth.Gen_graph.graph in
  Mapping.make ~graph:inst.Synth.Gen_graph.graph ~target:"T"
    ~target_cols:(List.map (fun a -> "c_" ^ a) aliases)
    ~correspondences:
      (List.map (fun a -> Correspondence.identity ("c_" ^ a) (Attr.make a "id")) aliases)
    ()

let test_slice_smaller () =
  let inst = big_instance 3 in
  let sliced = Sampling.slice ~seed:5 ~per_relation:15 inst.Synth.Gen_graph.db
      inst.Synth.Gen_graph.graph
  in
  List.iter
    (fun r ->
      let full = Database.get inst.Synth.Gen_graph.db (Relation.name r) in
      Alcotest.(check bool)
        (Relation.name r ^ " reduced")
        true
        (Relation.cardinality r < Relation.cardinality full / 2))
    (Database.relations sliced)

let test_slice_deterministic () =
  let inst = big_instance 4 in
  let s1 = Sampling.slice ~seed:7 inst.Synth.Gen_graph.db inst.Synth.Gen_graph.graph in
  let s2 = Sampling.slice ~seed:7 inst.Synth.Gen_graph.db inst.Synth.Gen_graph.graph in
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "same slice" true (Relation.equal_contents a b))
    (Database.relations s1) (Database.relations s2)

let test_slice_sound () =
  let inst = big_instance 5 in
  let m = identity_mapping inst in
  let universe, _ =
    Sampling.illustrate_sampled ~seed:11 ~per_relation:10 (Eval_ctx.transient inst.Synth.Gen_graph.db) m
  in
  Alcotest.(check bool) "all slice associations are real" true
    (Sampling.sound (Eval_ctx.transient inst.Synth.Gen_graph.db) m ~slice_universe:universe)

let test_sampled_illustration_sufficient_over_slice () =
  let inst = big_instance 6 in
  let m = identity_mapping inst in
  let universe, ill =
    Sampling.illustrate_sampled ~seed:13 ~per_relation:10 (Eval_ctx.transient inst.Synth.Gen_graph.db) m
  in
  Alcotest.(check bool) "sufficient" true
    (Sufficiency.is_sufficient ~universe ~target_cols:m.Mapping.target_cols ill);
  Alcotest.(check bool) "small" true (List.length ill < List.length universe)

let test_dangling_witnesses_surface_categories () =
  (* With 15% orphans and 20% null FKs, partial categories exist in the
     full database; the witnesses make them visible in the slice. *)
  let inst = big_instance 7 in
  let m = identity_mapping inst in
  let universe, _ =
    Sampling.illustrate_sampled ~seed:17 ~per_relation:8 (Eval_ctx.transient inst.Synth.Gen_graph.db) m
  in
  let categories =
    universe
    |> List.map (fun e -> Fulldisj.Coverage.to_list (Example.coverage e))
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "several categories" true (List.length categories >= 2)

let test_paper_db_slice_is_whole () =
  (* The paper database is tiny: the slice is the whole thing, so sampled
     illustration equals the ordinary one. *)
  let db = Paperdata.Figure1.database in
  let m = Paperdata.Running.mapping in
  let universe, _ = Sampling.illustrate_sampled ~per_relation:50 (Eval_ctx.transient db) m in
  Alcotest.(check int) "same universe size"
    (List.length (Mapping_eval.examples (Eval_ctx.transient db) m))
    (List.length universe)

let test_non_graph_relations_pass_through () =
  let db = Paperdata.Figure1.database in
  let sliced = Sampling.slice db Paperdata.Running.graph_g1 in
  Alcotest.(check bool) "XmasBar untouched" true
    (Relation.equal_contents
       (Database.get sliced "XmasBar")
       (Database.get db "XmasBar"))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "sampling"
    [
      ( "sampling",
        [
          tc "slice smaller" `Quick test_slice_smaller;
          tc "deterministic" `Quick test_slice_deterministic;
          tc "sound" `Quick test_slice_sound;
          tc "sufficient over slice" `Quick test_sampled_illustration_sufficient_over_slice;
          tc "witnesses surface categories" `Quick test_dangling_witnesses_surface_categories;
          tc "tiny db: slice = whole" `Quick test_paper_db_slice_is_whole;
          tc "pass-through" `Quick test_non_graph_relations_pass_through;
        ] );
    ]
