(* Tests for the workspace framework (Section 6.1), mapping reuse (Section
   6.2 / Example 6.2), and target assembly from complementary mappings
   (Example 6.1). *)

open Relational
open Clio
module Qgraph = Querygraph.Qgraph

let db = Paperdata.Figure1.database
let kb = Paperdata.Figure1.kb
let m_g1 = Paperdata.Running.mapping_g1
let eq r1 c1 r2 c2 = Predicate.eq_cols (Attr.make r1 c1) (Attr.make r2 c2)

(* --- Workspace lifecycle --- *)

let test_create_has_sufficient_illustration () =
  let ws = Workspace.create (Eval_ctx.create ~kb db) m_g1 in
  let e = Workspace.active ws in
  let universe = Mapping_eval.examples (Eval_ctx.transient db) m_g1 in
  Alcotest.(check bool) "sufficient" true
    (Sufficiency.is_sufficient ~universe ~target_cols:m_g1.Mapping.target_cols
       e.Workspace.illustration)

let test_target_view_wysiwyg () =
  let ws = Workspace.create (Eval_ctx.create ~kb db) m_g1 in
  let view = Workspace.target_view ws in
  Alcotest.(check bool) "same as eval" true
    (Relation.equal_contents view (Mapping_eval.eval (Eval_ctx.transient db) m_g1))

let walk_mappings () =
  Op_walk.walk_alternatives ~kb m_g1 ~start:"Children" ~goal:"PhoneDir" ~max_len:2 ()
  |> List.map (fun (a : Op_walk.alternative) -> a.Op_walk.mapping)

let test_offer_creates_workspaces () =
  let ws = Workspace.create (Eval_ctx.create ~kb db) m_g1 in
  let ws = Workspace.offer ws (walk_mappings ()) in
  Alcotest.(check int) "three workspaces" 3 (List.length (Workspace.entries ws));
  (* First (highest ranked) is active. *)
  let active = Workspace.active ws in
  Alcotest.(check int) "first active" (List.hd (Workspace.entries ws)).Workspace.id
    active.Workspace.id

(* Regression for the label lookup: a labels list shorter than the
   alternatives must fall back to the positional default, and explicit labels
   must land on the alternative with the same index. *)
let test_offer_partial_labels () =
  let ws = Workspace.create (Eval_ctx.create ~kb db) m_g1 in
  let ws = Workspace.offer ws ~labels:[ "first" ] (walk_mappings ()) in
  match Workspace.entries ws with
  | [ e1; e2; e3 ] ->
      Alcotest.(check string) "explicit" "first" e1.Workspace.label;
      Alcotest.(check string) "default 2" "alternative 2" e2.Workspace.label;
      Alcotest.(check string) "default 3" "alternative 3" e3.Workspace.label
  | es -> Alcotest.failf "expected 3 entries, got %d" (List.length es)

let test_offer_evolves_illustrations () =
  let ws = Workspace.create (Eval_ctx.create ~kb db) m_g1 in
  let old = Workspace.active ws in
  let ws = Workspace.offer ws (walk_mappings ()) in
  List.iter
    (fun (e : Workspace.entry) ->
      Alcotest.(check bool) "continuous" true
        (Evolution.is_continuous (Eval_ctx.transient db) ~old_mapping:m_g1
           ~old_illustration:old.Workspace.illustration ~new_mapping:e.Workspace.mapping
           e.Workspace.illustration))
    (Workspace.entries ws)

let test_rotate_cycles () =
  let ws = Workspace.create (Eval_ctx.create ~kb db) m_g1 in
  let ws = Workspace.offer ws (walk_mappings ()) in
  let ids = List.map (fun (e : Workspace.entry) -> e.Workspace.id) (Workspace.entries ws) in
  let ws1 = Workspace.rotate ws in
  Alcotest.(check int) "second" (List.nth ids 1) (Workspace.active ws1).Workspace.id;
  let ws3 = Workspace.rotate (Workspace.rotate ws1) in
  Alcotest.(check int) "wraps" (List.hd ids) (Workspace.active ws3).Workspace.id

let test_select_delete_confirm () =
  let ws = Workspace.create (Eval_ctx.create ~kb db) m_g1 in
  let ws = Workspace.offer ws (walk_mappings ()) in
  let ids = List.map (fun (e : Workspace.entry) -> e.Workspace.id) (Workspace.entries ws) in
  let ws = Workspace.select ws (List.nth ids 2) in
  Alcotest.(check int) "selected" (List.nth ids 2) (Workspace.active ws).Workspace.id;
  let ws = Workspace.delete ws (List.hd ids) in
  Alcotest.(check int) "two left" 2 (List.length (Workspace.entries ws));
  let ws = Workspace.confirm ws in
  Alcotest.(check int) "one left" 1 (List.length (Workspace.entries ws));
  Alcotest.(check int) "active kept" (List.nth ids 2) (Workspace.active ws).Workspace.id

let test_delete_active_moves_activation () =
  let ws = Workspace.create (Eval_ctx.create ~kb db) m_g1 in
  let ws = Workspace.offer ws (walk_mappings ()) in
  let active_id = (Workspace.active ws).Workspace.id in
  let ws = Workspace.delete ws active_id in
  Alcotest.(check bool) "new active exists" true
    (List.exists
       (fun (e : Workspace.entry) -> e.Workspace.id = (Workspace.active ws).Workspace.id)
       (Workspace.entries ws))

let test_delete_last_rejected () =
  let ws = Workspace.create (Eval_ctx.create ~kb db) m_g1 in
  Alcotest.check_raises "last"
    (Invalid_argument "Workspace.delete: cannot delete the last workspace") (fun () ->
      ignore (Workspace.delete ws (Workspace.active ws).Workspace.id))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_compare_entries () =
  (* Without a contactPh correspondence, alternative linkings produce the
     same target — compare_entries must say so; with it mapped, the
     alternatives become distinguishable. *)
  let ws = Workspace.create (Eval_ctx.create ~kb db) m_g1 in
  let bare = Workspace.offer ws (walk_mappings ()) in
  (match Workspace.entries bare with
  | e1 :: e2 :: _ ->
      Alcotest.(check int) "no contrasts without contactPh" 0
        (List.length
           (Workspace.compare_entries bare ~rel:"Children" e1.Workspace.id
              e2.Workspace.id))
  | _ -> Alcotest.fail "expected at least two workspaces");
  let with_phone =
    Op_walk.walk_alternatives ~kb m_g1 ~start:"Children" ~goal:"PhoneDir" ~max_len:2 ()
    |> List.map (fun (a : Op_walk.alternative) ->
           Mapping.set_correspondence a.Op_walk.mapping
             (Clio.corr_identity "contactPh" a.Op_walk.new_alias "number"))
  in
  let ws = Workspace.offer ws with_phone in
  match Workspace.entries ws with
  | e1 :: e2 :: _ ->
      let contrasts =
        Workspace.compare_entries ws ~rel:"Children" e1.Workspace.id e2.Workspace.id
      in
      Alcotest.(check bool) "contrasts found" true (contrasts <> []);
      let self =
        Workspace.compare_entries ws ~rel:"Children" e1.Workspace.id e1.Workspace.id
      in
      Alcotest.(check int) "self empty" 0 (List.length self)
  | _ -> Alcotest.fail "expected at least two workspaces"

let test_render_dashboard () =
  let ws = Workspace.create (Eval_ctx.create ~kb db) m_g1 in
  let ws = Workspace.offer ws ~labels:[ "father"; "mother"; "direct" ] (walk_mappings ()) in
  let s = Workspace.render ~short:Paperdata.Figure1.short ws in
  Alcotest.(check bool) "lists workspaces" true (contains s "Workspaces:");
  Alcotest.(check bool) "labels shown" true (contains s "father");
  Alcotest.(check bool) "active marked" true (contains s "* [");
  Alcotest.(check bool) "target view" true (contains s "WYSIWYG")

let test_update_active () =
  let ws = Workspace.create (Eval_ctx.create ~kb db) m_g1 in
  let m' = Mapping.add_source_filter m_g1 Paperdata.Running.age_filter in
  let ws = Workspace.update_active ws ~label:"age filter" m' in
  Alcotest.(check string) "label" "age filter" (Workspace.active ws).Workspace.label;
  Alcotest.(check int) "still one" 1 (List.length (Workspace.entries ws))

(* --- Reuse (Example 6.2) --- *)

let test_prune_drops_unreferenced_leaf () =
  (* fig9 mapping minus the BusSchedule correspondence: SBPS becomes an
     unreferenced leaf and must be pruned. *)
  let m = Paperdata.Running.mapping in
  let base = Reuse.derive_for m ~target_col:"BusSchedule" in
  Alcotest.(check bool) "SBPS pruned" false
    (Qgraph.mem_node base.Mapping.graph "SBPS");
  Alcotest.(check bool) "PhoneDir kept (contactPh)" true
    (Qgraph.mem_node base.Mapping.graph "PhoneDir");
  Alcotest.(check bool) "still connected" true (Qgraph.is_connected base.Mapping.graph)

let test_prune_keeps_cut_vertices () =
  (* Parents carries the affiliation correspondence AND connects PhoneDir;
     dropping contactPh must keep Parents but drop PhoneDir. *)
  let m = Paperdata.Running.mapping in
  let base = Reuse.derive_for m ~target_col:"contactPh" in
  Alcotest.(check bool) "PhoneDir pruned" false
    (Qgraph.mem_node base.Mapping.graph "PhoneDir");
  Alcotest.(check bool) "Parents kept" true (Qgraph.mem_node base.Mapping.graph "Parents")

let test_prune_keeps_connector_nodes () =
  (* A middle node with no correspondence must survive if it connects two
     referenced nodes: C - P - Ph with correspondences only on C and Ph. *)
  let g =
    Qgraph.make
      [ ("Children", "Children"); ("Parents", "Parents"); ("PhoneDir", "PhoneDir") ]
      [
        ("Children", "Parents", eq "Children" "fid" "Parents" "ID");
        ("Parents", "PhoneDir", eq "Parents" "ID" "PhoneDir" "ID");
      ]
  in
  let m =
    Mapping.make ~graph:g ~target:"Kids" ~target_cols:[ "ID"; "contactPh" ]
      ~correspondences:
        [
          Correspondence.identity "ID" (Attr.make "Children" "ID");
          Correspondence.identity "contactPh" (Attr.make "PhoneDir" "number");
        ]
      ()
  in
  let pruned = Reuse.prune_graph m in
  Alcotest.(check int) "all three kept" 3 (Qgraph.node_count pruned.Mapping.graph)

(* Example 6.2 end-to-end: a second way to compute ArrivalTime spawns a new
   mapping that reuses ID/name and links ClassSched. *)
let test_example_6_2 () =
  let cols = [ "ID"; "name"; "ArrivalTime" ] in
  let graph =
    Qgraph.make
      [ ("Children", "Children"); ("SBPS", "SBPS") ]
      [ ("Children", "SBPS", eq "Children" "ID" "SBPS" "ID") ]
  in
  let bus_mapping =
    Mapping.make ~graph ~target:"Kids" ~target_cols:cols
      ~correspondences:
        [
          Correspondence.identity "ID" (Attr.make "Children" "ID");
          Correspondence.identity "name" (Attr.make "Children" "name");
          Correspondence.identity "ArrivalTime" (Attr.make "SBPS" "time");
        ]
      ()
  in
  let via_class =
    Correspondence.of_expr "ArrivalTime"
      (Expr.Concat (Expr.col "ClassSched" "lastClassEnd", Expr.Const (Value.String "+walk")))
  in
  match Op_correspondence.add ~kb ~max_len:1 bus_mapping via_class with
  | Op_correspondence.New_mapping (Op_correspondence.Alternatives (alt :: _)) ->
      let m = alt.Op_correspondence.mapping in
      (* reused: ID, name; pruned: SBPS; linked: ClassSched *)
      Alcotest.(check bool) "ID reused" true
        (Option.is_some (Mapping.correspondence_for m "ID"));
      Alcotest.(check bool) "SBPS gone" false (Qgraph.mem_node m.Mapping.graph "SBPS");
      Alcotest.(check bool) "ClassSched linked" true
        (Qgraph.mem_node m.Mapping.graph "ClassSched");
      (* Ann (no bus, has a class schedule) appears in the new mapping. *)
      let view = Mapping_eval.target_view (Eval_ctx.transient db) m in
      let names =
        Relation.column_values view (Attr.make "Kids" "name") |> List.map Value.to_string
      in
      Alcotest.(check bool) "Ann arrives" true (List.mem "Ann" names)
  | _ -> Alcotest.fail "expected New_mapping (Alternatives ...)"

(* --- Target assembly (Example 6.1) --- *)

let mothers_phone_mapping =
  let graph =
    Qgraph.make
      [ ("Children", "Children"); ("Parents", "Parents"); ("PhoneDir", "PhoneDir") ]
      [
        ("Children", "Parents", eq "Children" "mid" "Parents" "ID");
        ("Parents", "PhoneDir", eq "Parents" "ID" "PhoneDir" "ID");
      ]
  in
  Mapping.make ~graph ~target:"Kids" ~target_cols:[ "ID"; "name"; "contactPh" ]
    ~correspondences:
      [
        Correspondence.identity "ID" (Attr.make "Children" "ID");
        Correspondence.identity "name" (Attr.make "Children" "name");
        Correspondence.identity "contactPh" (Attr.make "PhoneDir" "number");
      ]
    ~source_filters:[ Predicate.Is_not_null (Expr.col "Children" "mid") ]
    ~target_filters:[ Predicate.Is_not_null (Expr.col "Kids" "ID") ] ()

let fathers_phone_mapping =
  let graph =
    Qgraph.make
      [ ("Children", "Children"); ("Parents", "Parents"); ("PhoneDir", "PhoneDir") ]
      [
        ("Children", "Parents", eq "Children" "fid" "Parents" "ID");
        ("Parents", "PhoneDir", eq "Parents" "ID" "PhoneDir" "ID");
      ]
  in
  Mapping.make ~graph ~target:"Kids" ~target_cols:[ "ID"; "name"; "contactPh" ]
    ~correspondences:
      [
        Correspondence.identity "ID" (Attr.make "Children" "ID");
        Correspondence.identity "name" (Attr.make "Children" "name");
        Correspondence.identity "contactPh" (Attr.make "PhoneDir" "number");
      ]
    ~source_filters:[ Predicate.Is_null (Expr.col "Children" "mid") ]
    ~target_filters:[ Predicate.Is_not_null (Expr.col "Kids" "ID") ] ()

let test_example_6_1_complementary_mappings () =
  (* Mothers' phones where a mother exists; fathers' phones for motherless
     children.  No child disappears. *)
  let combined = Target.assemble (Eval_ctx.transient db) [ mothers_phone_mapping; fathers_phone_mapping ] in
  Alcotest.(check int) "four kids" 4 (Relation.cardinality combined);
  let s = Relation.schema combined in
  let phone_of name =
    Relation.tuples combined
    |> List.find (fun t ->
           Value.equal (Tuple.value s t (Attr.make "Kids" "name")) (Value.String name))
    |> fun t -> Value.to_string (Tuple.value s t (Attr.make "Kids" "contactPh"))
  in
  Alcotest.(check string) "Maya: mother's phone" "555-0103" (phone_of "Maya");
  Alcotest.(check string) "Bob: father's phone" "555-0107" (phone_of "Bob")

let test_mothers_only_loses_bob () =
  let view = Mapping_eval.target_view (Eval_ctx.transient db) mothers_phone_mapping in
  let names =
    Relation.column_values view (Attr.make "Kids" "name") |> List.map Value.to_string
  in
  Alcotest.(check bool) "Bob missing" false (List.mem "Bob" names)

let test_assemble_rejects_mixed_targets () =
  let other =
    Mapping.make
      ~graph:(Qgraph.singleton ~alias:"Children" ~base:"Children")
      ~target:"Other" ~target_cols:[ "ID"; "name"; "contactPh" ] ()
  in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Target.assemble: mappings disagree on the target relation")
    (fun () -> ignore (Target.assemble (Eval_ctx.transient db) [ mothers_phone_mapping; other ]))

let test_assemble_min_removes_subsumed () =
  (* Without the complementary filters, mothers+fathers mappings both emit
     Bob: (id, name, null) from the mothers mapping... actually the mothers
     mapping without its filter emits Bob padded.  assemble_min collapses
     the padded row into the father's-phone row. *)
  let no_filter m = Mapping.remove_source_filter m (List.hd m.Mapping.source_filters) in
  let a = no_filter mothers_phone_mapping in
  let b = no_filter fathers_phone_mapping in
  let plain = Target.assemble (Eval_ctx.transient db) [ a; b ] in
  let minimal = Target.assemble_min (Eval_ctx.transient db) [ a; b ] in
  Alcotest.(check bool) "min smaller" true
    (Relation.cardinality minimal < Relation.cardinality plain);
  Alcotest.(check bool) "minimal" true
    (Fulldisj.Min_union.is_minimal (Relation.tuples minimal))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "workspace"
    [
      ( "workspace",
        [
          tc "sufficient at creation" `Quick test_create_has_sufficient_illustration;
          tc "target view" `Quick test_target_view_wysiwyg;
          tc "offer" `Quick test_offer_creates_workspaces;
          tc "offer partial labels" `Quick test_offer_partial_labels;
          tc "offer evolves" `Quick test_offer_evolves_illustrations;
          tc "rotate" `Quick test_rotate_cycles;
          tc "select/delete/confirm" `Quick test_select_delete_confirm;
          tc "delete active" `Quick test_delete_active_moves_activation;
          tc "delete last" `Quick test_delete_last_rejected;
          tc "update active" `Quick test_update_active;
          tc "render dashboard" `Quick test_render_dashboard;
          tc "compare entries" `Quick test_compare_entries;
        ] );
      ( "reuse",
        [
          tc "prune leaf" `Quick test_prune_drops_unreferenced_leaf;
          tc "prune keeps cut vertex" `Quick test_prune_keeps_cut_vertices;
          tc "prune keeps connector" `Quick test_prune_keeps_connector_nodes;
          tc "E6.2 ArrivalTime" `Quick test_example_6_2;
        ] );
      ( "target",
        [
          tc "E6.1 complementary" `Quick test_example_6_1_complementary_mappings;
          tc "mothers only loses Bob" `Quick test_mothers_only_loses_bob;
          tc "mixed targets rejected" `Quick test_assemble_rejects_mixed_targets;
          tc "assemble_min" `Quick test_assemble_min_removes_subsumed;
        ] );
    ]
