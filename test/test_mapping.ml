(* Tests for correspondences, mapping construction/validation, mapping query
   evaluation (Definition 3.14) and SQL generation (canonical + Section 2
   outer-join form). *)

open Relational
module Qgraph = Querygraph.Qgraph
open Clio

let v_int i = Value.Int i
let v_str s = Value.String s
let mk name cols rows = Relation.create name (Schema.make name cols) rows
let eq r1 c1 r2 c2 = Predicate.eq_cols (Attr.make r1 c1) (Attr.make r2 c2)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* source: Emp(id, name, sal, did) — Dept(id, dname) *)
let db =
  Database.of_relations
    [
      mk "Emp" [ "id"; "name"; "sal"; "did" ]
        [
          Tuple.make [ v_int 1; v_str "ann"; v_int 100; v_int 10 ];
          Tuple.make [ v_int 2; v_str "bob"; v_int 200; v_int 20 ];
          Tuple.make [ v_int 3; v_str "cat"; v_int 300; Value.Null ];
        ];
      mk "Dept" [ "id"; "dname" ]
        [ Tuple.make [ v_int 10; v_str "toys" ]; Tuple.make [ v_int 30; v_str "guns" ] ];
    ]

let graph =
  Qgraph.make
    [ ("Emp", "Emp"); ("Dept", "Dept") ]
    [ ("Emp", "Dept", eq "Emp" "did" "Dept" "id") ]

let base_mapping =
  Mapping.make ~graph ~target:"Out" ~target_cols:[ "eid"; "ename"; "dept"; "pay" ]
    ~correspondences:
      [
        Correspondence.identity "eid" (Attr.make "Emp" "id");
        Correspondence.identity "ename" (Attr.make "Emp" "name");
        Correspondence.identity "dept" (Attr.make "Dept" "dname");
        Correspondence.of_expr "pay"
          (Expr.Mul (Expr.col "Emp" "sal", Expr.Const (v_int 2)));
      ]
    ()

(* --- Correspondence --- *)

let test_correspondence_sources () =
  let c = Correspondence.of_expr "x" (Expr.Add (Expr.col "A" "a", Expr.col "B" "b")) in
  Alcotest.(check (list string)) "rels" [ "A"; "B" ] (Correspondence.source_rels c)

let test_correspondence_custom () =
  let c =
    Correspondence.custom "x" "sum" [ Attr.make "A" "a"; Attr.make "A" "b" ]
      (fun vs -> List.fold_left Value.add (v_int 0) vs)
  in
  let scheme = Schema.make "A" [ "a"; "b" ] in
  Alcotest.(check bool) "eval" true
    (Value.equal (v_int 7)
       (Correspondence.compile scheme c (Tuple.make [ v_int 3; v_int 4 ])));
  Alcotest.(check string) "sql" "sum(A.a, A.b) as x" (Correspondence.to_sql c)

let test_correspondence_rename () =
  let c = Correspondence.identity "x" (Attr.make "P" "a") in
  let c2 = Correspondence.rename_rel c ~from:"P" ~into:"P2" in
  Alcotest.(check (list string)) "renamed" [ "P2" ] (Correspondence.source_rels c2)

(* --- Mapping validation --- *)

let test_mapping_rejects_unknown_target_col () =
  Alcotest.check_raises "unknown col"
    (Invalid_argument "Mapping: correspondence for unknown target column zzz")
    (fun () ->
      ignore
        (Mapping.set_correspondence base_mapping
           (Correspondence.identity "zzz" (Attr.make "Emp" "id"))))

let test_mapping_rejects_unknown_source () =
  Alcotest.check_raises "unknown source"
    (Invalid_argument "Mapping: correspondence source Nope.id not in query graph")
    (fun () ->
      ignore
        (Mapping.set_correspondence base_mapping
           (Correspondence.identity "eid" (Attr.make "Nope" "id"))))

let test_mapping_rejects_disconnected_graph () =
  let g = Qgraph.make [ ("A", "A"); ("B", "B") ] [] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Mapping: query graph must be connected") (fun () ->
      ignore (Mapping.make ~graph:g ~target:"T" ~target_cols:[ "x" ] ()))

let test_mapping_set_correspondence_replaces () =
  let m =
    Mapping.set_correspondence base_mapping
      (Correspondence.identity "eid" (Attr.make "Emp" "sal"))
  in
  match Mapping.correspondence_for m "eid" with
  | Some c -> Alcotest.(check (list string)) "replaced" [ "Emp" ]
                (Correspondence.source_rels c)
  | None -> Alcotest.fail "missing"

let test_phi_strips_filters () =
  let m =
    Mapping.add_target_filter
      (Mapping.add_source_filter base_mapping
         (Predicate.Cmp (Predicate.Gt, Expr.col "Emp" "sal", Expr.Const (v_int 150))))
      (Predicate.Is_not_null (Expr.col "Out" "dept"))
  in
  let stripped = Mapping.phi m in
  Alcotest.(check int) "no source filters" 0
    (List.length stripped.Mapping.source_filters);
  Alcotest.(check int) "no target filters" 0
    (List.length stripped.Mapping.target_filters)

let test_referenced_aliases () =
  Alcotest.(check (list string)) "both" [ "Dept"; "Emp" ]
    (Mapping.referenced_aliases base_mapping)

(* --- Evaluation --- *)

let test_eval_unfiltered () =
  let r = Mapping_eval.eval (Eval_ctx.transient db) base_mapping in
  (* D(G): (1,toys) joined; 2 alone; 3 alone; dept 30 alone. *)
  Alcotest.(check int) "four rows" 4 (Relation.cardinality r)

let test_eval_applies_correspondences () =
  let r = Mapping_eval.eval (Eval_ctx.transient db) base_mapping in
  let s = Relation.schema r in
  let ann =
    Relation.tuples r
    |> List.find (fun t ->
           Value.equal (Tuple.value s t (Attr.make "Out" "ename")) (v_str "ann"))
  in
  Alcotest.(check bool) "pay = sal*2" true
    (Value.equal (v_int 200) (Tuple.value s ann (Attr.make "Out" "pay")));
  Alcotest.(check bool) "dept" true
    (Value.equal (v_str "toys") (Tuple.value s ann (Attr.make "Out" "dept")))

let test_eval_source_filter () =
  let m =
    Mapping.add_source_filter base_mapping
      (Predicate.Cmp (Predicate.Ge, Expr.col "Emp" "sal", Expr.Const (v_int 200)))
  in
  let r = Mapping_eval.eval (Eval_ctx.transient db) m in
  (* bob and cat pass; dept-only association has null sal -> filtered
     (strong-ish semantics: unknown collapses to false). *)
  Alcotest.(check int) "two rows" 2 (Relation.cardinality r)

let test_eval_target_filter () =
  let m =
    Mapping.add_target_filter base_mapping
      (Predicate.Is_not_null (Expr.col "Out" "eid"))
  in
  let r = Mapping_eval.eval (Eval_ctx.transient db) m in
  Alcotest.(check int) "emp-covering rows" 3 (Relation.cardinality r)

let test_examples_polarity () =
  let m =
    Mapping.add_target_filter base_mapping
      (Predicate.Is_not_null (Expr.col "Out" "eid"))
  in
  let exs = Mapping_eval.examples (Eval_ctx.transient db) m in
  Alcotest.(check int) "universe = D(G)" 4 (List.length exs);
  Alcotest.(check int) "positives" 3
    (List.length (List.filter Example.is_positive exs));
  (* The negative example still carries its would-be target tuple. *)
  let neg = List.find Example.is_negative exs in
  Alcotest.(check bool) "neg has dept" true
    (Value.equal (v_str "guns") neg.Example.target_tuple.(2))

let test_apply_one () =
  let m =
    Mapping.add_target_filter base_mapping
      (Predicate.Is_not_null (Expr.col "Out" "eid"))
  in
  let fd = Mapping_eval.data_associations (Eval_ctx.transient db) m in
  let assocs = fd.Fulldisj.Full_disjunction.associations in
  let pos =
    List.filter
      (fun (a : Fulldisj.Assoc.t) ->
        Fulldisj.Coverage.mem "Emp" a.Fulldisj.Assoc.coverage)
      assocs
  in
  Alcotest.(check int) "3 emp assocs" 3 (List.length pos);
  List.iter
    (fun a ->
      match Mapping_eval.apply_one fd m a with
      | Some _ -> ()
      | None -> Alcotest.fail "expected Some")
    pos

let test_algorithms_agree_on_eval () =
  let a = Mapping_eval.eval ~algorithm:Mapping_eval.Naive (Eval_ctx.transient db) base_mapping in
  let b = Mapping_eval.eval ~algorithm:Mapping_eval.Indexed (Eval_ctx.transient db) base_mapping in
  let c = Mapping_eval.eval ~algorithm:Mapping_eval.Outerjoin_if_tree (Eval_ctx.transient db) base_mapping in
  Alcotest.(check bool) "naive=indexed" true (Relation.equal_contents a b);
  Alcotest.(check bool) "naive=outerjoin" true (Relation.equal_contents a c)

let test_unmapped_column_is_null () =
  let m = Mapping.remove_correspondence base_mapping "pay" in
  let r = Mapping_eval.eval (Eval_ctx.transient db) m in
  Relation.iter
    (fun t -> Alcotest.(check bool) "pay null" true (Value.is_null t.(3)))
    r

(* --- SQL generation --- *)

let section2_like =
  Mapping.add_target_filter base_mapping (Predicate.Is_not_null (Expr.col "Out" "eid"))

let test_canonical_sql () =
  let sql = Mapping_sql.canonical section2_like in
  Alcotest.(check bool) "select items" true (contains sql "Emp.id as eid");
  Alcotest.(check bool) "D(G)" true (contains sql "from D(G)");
  Alcotest.(check bool) "where target" true (contains sql "Out.eid is not null");
  Alcotest.(check bool) "min union doc" true (contains sql "F({Dept, Emp})")

let test_outer_join_sql () =
  let sql = Mapping_sql.outer_join ~root:"Emp" section2_like in
  Alcotest.(check bool) "from root" true (contains sql "from Emp");
  Alcotest.(check bool) "left join" true
    (contains sql "left join Dept on Emp.did = Dept.id");
  Alcotest.(check bool) "pulled back filter" true (contains sql "Emp.id is not null")

let test_outer_join_sql_required_promotes_inner () =
  let m =
    Mapping.add_target_filter section2_like
      (Predicate.Is_not_null (Expr.col "Out" "dept"))
  in
  let sql = Mapping_sql.outer_join ~root:"Emp" m in
  Alcotest.(check bool) "inner join" true
    (contains sql "join Dept on Emp.did = Dept.id");
  Alcotest.(check bool) "not left" false
    (contains sql "left join Dept on Emp.did = Dept.id")

let test_pullback () =
  let m =
    Mapping.add_target_filter base_mapping
      (Predicate.Cmp (Predicate.Lt, Expr.col "Out" "pay", Expr.Const (v_int 500)))
  in
  match Mapping_sql.pullback_target_filters m with
  | [ p ] ->
      Alcotest.(check string) "substituted" "(Emp.sal * 2) < 500" (Predicate.to_sql p)
  | _ -> Alcotest.fail "expected one predicate"

let test_rooted_equivalent () =
  Alcotest.(check bool) "rooted = Q_M" true
    (Mapping_sql.rooted_equivalent (Eval_ctx.transient db) ~root:"Emp" section2_like);
  (* Without the root-forcing filter they differ: Q_M keeps the dept-only
     association. *)
  Alcotest.(check bool) "differs without filter" false
    (Mapping_sql.rooted_equivalent (Eval_ctx.transient db) ~root:"Emp" base_mapping)

let test_aliased_copy_sql () =
  let g =
    Qgraph.make
      [ ("Emp", "Emp"); ("Emp2", "Emp") ]
      [ ("Emp", "Emp2", eq "Emp" "did" "Emp2" "id") ]
  in
  let m =
    Mapping.make ~graph:g ~target:"T" ~target_cols:[ "a" ]
      ~correspondences:[ Correspondence.identity "a" (Attr.make "Emp2" "name") ]
      ()
  in
  let sql = Mapping_sql.outer_join ~root:"Emp" m in
  Alcotest.(check bool) "copy aliased" true (contains sql "left join Emp Emp2")

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "mapping"
    [
      ( "correspondence",
        [
          tc "sources" `Quick test_correspondence_sources;
          tc "custom" `Quick test_correspondence_custom;
          tc "rename" `Quick test_correspondence_rename;
        ] );
      ( "validation",
        [
          tc "unknown target col" `Quick test_mapping_rejects_unknown_target_col;
          tc "unknown source" `Quick test_mapping_rejects_unknown_source;
          tc "disconnected graph" `Quick test_mapping_rejects_disconnected_graph;
          tc "set replaces" `Quick test_mapping_set_correspondence_replaces;
          tc "phi" `Quick test_phi_strips_filters;
          tc "referenced aliases" `Quick test_referenced_aliases;
        ] );
      ( "eval",
        [
          tc "unfiltered" `Quick test_eval_unfiltered;
          tc "correspondences" `Quick test_eval_applies_correspondences;
          tc "source filter" `Quick test_eval_source_filter;
          tc "target filter" `Quick test_eval_target_filter;
          tc "examples polarity" `Quick test_examples_polarity;
          tc "apply one" `Quick test_apply_one;
          tc "algorithms agree" `Quick test_algorithms_agree_on_eval;
          tc "unmapped null" `Quick test_unmapped_column_is_null;
        ] );
      ( "sql",
        [
          tc "canonical" `Quick test_canonical_sql;
          tc "outer join" `Quick test_outer_join_sql;
          tc "required promotes inner" `Quick test_outer_join_sql_required_promotes_inner;
          tc "pullback" `Quick test_pullback;
          tc "rooted equivalent" `Quick test_rooted_equivalent;
          tc "aliased copy" `Quick test_aliased_copy_sql;
        ] );
    ]
