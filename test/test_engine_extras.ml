(* Tests for the engine-level extras: the inverted value index (chase
   acceleration), alternative join implementations (sort-merge /
   nested-loop vs hash), the automatic attribute matcher, and
   target-constraint-derived filters.  QCheck properties check the join
   implementations against each other and the parser against the SQL
   printer. *)

open Relational
module Qgraph = Querygraph.Qgraph

let db = Paperdata.Figure1.database
let v_int i = Value.Int i
let mk name cols rows = Relation.create name (Schema.make name cols) rows

(* --- Value_index --- *)

let test_index_matches_scan_paper_db () =
  let idx = Value_index.build db in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        ("scan agreement for " ^ Value.to_string v)
        true
        (Value_index.agrees_with_scan idx db v))
    [
      Value.String "002";
      Value.String "101";
      Value.String "IBM";
      Value.String "absent-value";
      Value.Int 60000;
    ]

let test_index_chase_integration () =
  let idx = Value_index.build db in
  let m = Paperdata.Running.mapping_g1 in
  let with_index =
    Clio.Op_chase.chase ~index:idx (Clio.Eval_ctx.transient db) m ~attr:(Attr.make "Children" "ID")
      ~value:(Value.String "002")
  in
  let without =
    Clio.Op_chase.chase (Clio.Eval_ctx.transient db) m ~attr:(Attr.make "Children" "ID")
      ~value:(Value.String "002")
  in
  Alcotest.(check int) "same alternatives" (List.length without)
    (List.length with_index)

let test_index_distinct_values () =
  let small =
    Database.of_relations
      [ mk "R" [ "a"; "b" ]
          [ Tuple.make [ v_int 1; v_int 1 ]; Tuple.make [ v_int 2; Value.Null ] ] ]
  in
  let idx = Value_index.build small in
  Alcotest.(check int) "nulls not indexed" 2 (Value_index.distinct_values idx);
  Alcotest.(check int) "1 appears in two columns" 2
    (List.length (Value_index.find idx (v_int 1)))

(* QCheck: index always agrees with scanning on random databases. *)
let prop_index_agrees =
  QCheck2.Test.make ~name:"value index = full scan" ~count:40
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 1 30))
    (fun (seed, rows) ->
      let st = Random.State.make [| seed |] in
      let inst = Synth.Gen_graph.chain st ~n:3 ~rows () in
      let idx = Value_index.build inst.Synth.Gen_graph.db in
      List.for_all
        (fun v -> Value_index.agrees_with_scan idx inst.Synth.Gen_graph.db v)
        [ Value.Int 0; Value.Int (rows / 2); Value.Int (rows * 2); Value.Null ])

(* --- join implementations --- *)

let left =
  mk "L" [ "k"; "v" ]
    [
      Tuple.make [ v_int 1; v_int 10 ];
      Tuple.make [ v_int 1; v_int 11 ];
      Tuple.make [ v_int 2; v_int 12 ];
      Tuple.make [ Value.Null; v_int 13 ];
    ]

let right =
  mk "R" [ "k"; "w" ]
    [
      Tuple.make [ v_int 1; v_int 20 ];
      Tuple.make [ v_int 3; v_int 21 ];
      Tuple.make [ Value.Null; v_int 22 ];
    ]

let kpred = Predicate.eq_cols (Attr.make "L" "k") (Attr.make "R" "k")

let test_sort_merge_matches_hash () =
  let h = Algebra.join kpred left right in
  let s = Algebra.join_sort_merge kpred left right in
  let n = Algebra.join_nested_loop kpred left right in
  Alcotest.(check bool) "sm = hash" true (Relation.equal_contents h s);
  Alcotest.(check bool) "nl = hash" true (Relation.equal_contents h n);
  (* two L rows with k=1 × one R row. *)
  Alcotest.(check int) "cardinality" 2 (Relation.cardinality h)

let test_sort_merge_rejects_non_equi () =
  let p = Predicate.Cmp (Predicate.Lt, Expr.col "L" "k", Expr.col "R" "k") in
  Alcotest.check_raises "non equi"
    (Invalid_argument "Algebra.join_sort_merge: predicate is not a cross-side equi-join")
    (fun () -> ignore (Algebra.join_sort_merge p left right))

let prop_join_impls_agree =
  QCheck2.Test.make ~name:"hash = sort-merge = nested-loop" ~count:60
    QCheck2.Gen.(triple (int_range 0 10000) (int_range 0 25) (int_range 0 25))
    (fun (seed, nl, nr) ->
      let st = Random.State.make [| seed |] in
      let tuples n name =
        List.init n (fun i ->
            Tuple.make
              [
                (if Random.State.float st 1.0 < 0.2 then Value.Null
                 else v_int (Random.State.int st 5));
                v_int i;
              ])
        |> fun ts -> mk name [ "k"; "p" ] ts
      in
      let l = tuples nl "L" and r = tuples nr "R" in
      let p = Predicate.eq_cols (Attr.make "L" "k") (Attr.make "R" "k") in
      let h = Algebra.join p l r in
      Relation.equal_contents h (Algebra.join_sort_merge p l r)
      && Relation.equal_contents h (Algebra.join_nested_loop p l r))

(* --- Match --- *)

let test_name_similarity () =
  Alcotest.(check bool) "identical" true (Schemakb.Match.name_similarity "ID" "ID" = 1.0);
  Alcotest.(check bool) "case/underscore" true
    (Schemakb.Match.name_similarity "contact_ph" "contactPh" = 1.0);
  Alcotest.(check bool) "token containment" true
    (Schemakb.Match.name_similarity "contactPhone" "phone" >= 0.75);
  Alcotest.(check bool) "unrelated low" true
    (Schemakb.Match.name_similarity "salary" "location" < 0.55)

let test_suggest_for_kids () =
  let candidates =
    Schemakb.Match.suggest db ~target_cols:[ "ID"; "name"; "BusSchedule" ]
  in
  let best col =
    List.find (fun c -> c.Schemakb.Match.target_col = col) candidates
  in
  (* name only exists in Children. *)
  Alcotest.(check string) "name from Children" "Children"
    (best "name").Schemakb.Match.source.Attr.rel;
  (* ID matches several relations; the matcher proposes, the user picks. *)
  Alcotest.(check bool) "ID has candidates" true
    (List.exists (fun c -> c.Schemakb.Match.target_col = "ID") candidates)

let test_best_per_target_is_single () =
  let candidates = Schemakb.Match.best_per_target db ~target_cols:[ "ID"; "name" ] in
  let per col =
    List.length (List.filter (fun c -> c.Schemakb.Match.target_col = col) candidates)
  in
  Alcotest.(check bool) "at most one each" true (per "ID" <= 1 && per "name" <= 1)

let test_threshold_filters () =
  let none =
    Schemakb.Match.suggest ~threshold:1.1 db ~target_cols:[ "ID"; "name" ]
  in
  Alcotest.(check int) "nothing above 1.1" 0 (List.length none)

(* --- Target_constraints --- *)

let test_filters_of () =
  let constraints =
    [
      Integrity.Not_null ("Kids", "ID");
      Integrity.Primary_key ("Kids", [ "ID" ]);
      Integrity.Not_null ("Other", "x");
    ]
  in
  match Clio.Target_constraints.filters_of constraints ~target:"Kids" with
  | [ p ] -> Alcotest.(check string) "one dedup filter" "Kids.ID is not null"
               (Predicate.to_sql p)
  | ps -> Alcotest.failf "expected one filter, got %d" (List.length ps)

let test_apply_reproduces_paper_behavior () =
  (* The fig9 mapping minus its hand-written C_T, plus a declared target
     not-null, must reproduce the same target view. *)
  let m = Paperdata.Running.mapping in
  let bare = Clio.Mapping.remove_target_filter m Paperdata.Running.id_required in
  let constrained =
    Clio.Target_constraints.apply [ Integrity.Not_null ("Kids", "ID") ] bare
  in
  Alcotest.(check bool) "same view" true
    (Relation.equal_contents
       (Clio.Mapping_eval.target_view (Clio.Eval_ctx.transient db) m)
       (Clio.Mapping_eval.target_view (Clio.Eval_ctx.transient db) constrained));
  (* Idempotent. *)
  let again =
    Clio.Target_constraints.apply [ Integrity.Not_null ("Kids", "ID") ] constrained
  in
  Alcotest.(check int) "no duplicate filters" 1
    (List.length again.Clio.Mapping.target_filters)

(* --- parser ⟷ printer round trip (property) --- *)

let expr_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            map (fun i -> Expr.Const (Value.Int i)) (int_range 0 9);
            return (Expr.Const Value.Null);
            map (fun c -> Expr.col "R" (String.make 1 c)) (char_range 'a' 'c');
          ]
      in
      if n <= 1 then leaf
      else
        oneof
          [
            leaf;
            map2 (fun a b -> Expr.Add (a, b)) (self (n / 2)) (self (n / 2));
            map2 (fun a b -> Expr.Mul (a, b)) (self (n / 2)) (self (n / 2));
            map2 (fun a b -> Expr.Concat (a, b)) (self (n / 2)) (self (n / 2));
            map2 (fun a b -> Expr.Coalesce (a, b)) (self (n / 2)) (self (n / 2));
          ])

let pred_gen =
  let open QCheck2.Gen in
  let cmp =
    oneofl [ Predicate.Eq; Predicate.Neq; Predicate.Lt; Predicate.Le; Predicate.Gt; Predicate.Ge ]
  in
  sized @@ fix (fun self n ->
      let atom =
        oneof
          [
            map3 (fun op a b -> Predicate.Cmp (op, a, b)) cmp (expr_gen |> map Fun.id)
              expr_gen;
            map (fun e -> Predicate.Is_null e) expr_gen;
            map (fun e -> Predicate.Is_not_null e) expr_gen;
          ]
      in
      if n <= 1 then atom
      else
        oneof
          [
            atom;
            map2 (fun a b -> Predicate.And (a, b)) (self (n / 2)) (self (n / 2));
            map2 (fun a b -> Predicate.Or (a, b)) (self (n / 2)) (self (n / 2));
            map (fun a -> Predicate.Not a) (self (n - 1));
          ])

let abc_schema = Schema.make "R" [ "a"; "b"; "c" ]

let random_tuples =
  List.init 16 (fun i ->
      Tuple.make
        [
          (if i mod 4 = 0 then Value.Null else v_int (i mod 3));
          (if i mod 5 = 0 then Value.Null else v_int (i mod 4));
          v_int (i mod 2);
        ])

let prop_pred_roundtrip =
  QCheck2.Test.make ~name:"parse (to_sql p) ≡ p" ~count:300 pred_gen (fun p ->
      match Parse.predicate_opt (Predicate.to_sql p) with
      | None -> false
      | Some p' ->
          let f = Predicate.compile abc_schema p in
          let f' = Predicate.compile abc_schema p' in
          List.for_all (fun t -> f t = f' t) random_tuples)

let prop_expr_roundtrip =
  QCheck2.Test.make ~name:"parse (to_sql e) ≡ e" ~count:300 expr_gen (fun e ->
      match Parse.expr_opt (Expr.to_sql e) with
      | None -> false
      | Some e' ->
          let f = Expr.compile abc_schema e in
          let f' = Expr.compile abc_schema e' in
          List.for_all (fun t -> Value.equal (f t) (f' t)) random_tuples)

let qtest t = QCheck_alcotest.to_alcotest ~long:false t

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "engine_extras"
    [
      ( "value_index",
        [
          tc "matches scan" `Quick test_index_matches_scan_paper_db;
          tc "chase integration" `Quick test_index_chase_integration;
          tc "distinct values" `Quick test_index_distinct_values;
          qtest prop_index_agrees;
        ] );
      ( "joins",
        [
          tc "implementations agree" `Quick test_sort_merge_matches_hash;
          tc "sort-merge rejects non-equi" `Quick test_sort_merge_rejects_non_equi;
          qtest prop_join_impls_agree;
        ] );
      ( "match",
        [
          tc "name similarity" `Quick test_name_similarity;
          tc "suggest for Kids" `Quick test_suggest_for_kids;
          tc "best per target" `Quick test_best_per_target_is_single;
          tc "threshold" `Quick test_threshold_filters;
        ] );
      ( "target_constraints",
        [
          tc "filters_of" `Quick test_filters_of;
          tc "paper behaviour" `Quick test_apply_reproduces_paper_behavior;
        ] );
      ( "parser-printer",
        [ qtest prop_pred_roundtrip; qtest prop_expr_roundtrip ] );
    ]
