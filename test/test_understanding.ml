(* Tests for the mapping-understanding tools: distinguishing examples
   between alternatives (Differentiate), query-graph interpretations
   (Interpretation), example manipulation operators (Op_example), and the
   algebraic facts the paper leans on (outer joins are not associative;
   minimum union is). *)

open Relational
open Clio
module Qgraph = Querygraph.Qgraph

let db = Paperdata.Figure1.database
let eq r1 c1 r2 c2 = Predicate.eq_cols (Attr.make r1 c1) (Attr.make r2 c2)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let phone_mapping ~via =
  Mapping.make
    ~graph:
      (Qgraph.make
         [ ("Children", "Children"); ("Parents", "Parents"); ("PhoneDir", "PhoneDir") ]
         [
           ("Children", "Parents", eq "Children" via "Parents" "ID");
           ("Parents", "PhoneDir", eq "Parents" "ID" "PhoneDir" "ID");
         ])
    ~target:"Kids"
    ~target_cols:[ "ID"; "name"; "contactPh" ]
    ~correspondences:
      [
        Clio.corr_identity "ID" "Children" "ID";
        Clio.corr_identity "name" "Children" "name";
        Clio.corr_identity "contactPh" "PhoneDir" "number";
      ]
    ~target_filters:[ Predicate.Is_not_null (Expr.col "Kids" "ID") ]
    ()

let mothers = phone_mapping ~via:"mid"
let fathers = phone_mapping ~via:"fid"

(* --- Differentiate --- *)

let test_target_diff_mother_vs_father () =
  let diffs = Differentiate.target_diff (Eval_ctx.transient db) mothers fathers in
  (* Every kid's phone differs between the linkings (plus Bob only exists
     under fathers). *)
  Alcotest.(check bool) "differences exist" true (diffs <> []);
  Alcotest.(check bool) "not equivalent" false (Differentiate.equivalent_on (Eval_ctx.transient db) mothers fathers)

let test_self_equivalent () =
  Alcotest.(check bool) "m ≡ m" true (Differentiate.equivalent_on (Eval_ctx.transient db) mothers mothers)

let test_distinguishing_by_child () =
  let contrasts = Differentiate.distinguishing (Eval_ctx.transient db) ~rel:"Children" mothers fathers in
  (* All four children distinguish the two mappings: Joe/Maya/Ann get a
     different phone; Bob appears only under fathers. *)
  Alcotest.(check int) "four contrasts" 4 (List.length contrasts);
  let maya =
    List.find
      (fun (c : Differentiate.contrast) ->
        Value.equal c.Differentiate.focus_tuple.(1) (Value.String "Maya"))
      contrasts
  in
  let phone side =
    match side with
    | [ t ] -> Value.to_string t.(2)
    | _ -> Alcotest.fail "expected one target"
  in
  Alcotest.(check string) "mother's phone" "555-0103"
    (phone maya.Differentiate.left_targets);
  Alcotest.(check string) "father's phone" "555-0104"
    (phone maya.Differentiate.right_targets)

let test_distinguishing_detects_equivalence () =
  Alcotest.(check int) "no contrasts against self" 0
    (List.length (Differentiate.distinguishing (Eval_ctx.transient db) ~rel:"Children" mothers mothers))

let test_distinguishing_render () =
  let contrasts = Differentiate.distinguishing (Eval_ctx.transient db) ~rel:"Children" mothers fathers in
  let s =
    Differentiate.render ~target_schema:(Mapping.target_schema mothers) contrasts
  in
  Alcotest.(check bool) "both phones shown" true
    (contains s "555-0103" && contains s "555-0104")

let test_target_diff_schema_mismatch () =
  let other =
    Mapping.make
      ~graph:(Qgraph.singleton ~alias:"Children" ~base:"Children")
      ~target:"Kids" ~target_cols:[ "ID" ] ()
  in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Differentiate.target_diff: target schemas differ") (fun () ->
      ignore (Differentiate.target_diff (Eval_ctx.transient db) mothers other))

(* --- Interpretation --- *)

let test_inner_vs_full_disjunction () =
  (* Under inner-join interpretation, only children whose mother has a
     phone survive; Bob (no mother) disappears even under fathers'
     mapping... here use mothers: Bob drops. *)
  let inner = Interpretation.eval (Eval_ctx.transient db) mothers Interpretation.Inner_join in
  let fd = Interpretation.eval (Eval_ctx.transient db) mothers Interpretation.Full_disjunction in
  Alcotest.(check int) "inner: 3 kids" 3 (Relation.cardinality inner);
  Alcotest.(check int) "fd keeps Bob? no — target filter drops rootless rows" 4
    (Relation.cardinality fd)

let test_rooted_equals_fd_with_root_filter () =
  (* With the ID-not-null filter, rooted-at-Children and full disjunction
     agree (the paper's 'no effect' case). *)
  Alcotest.(check bool) "no effect" true
    (Interpretation.no_effect (Eval_ctx.transient db) mothers (Interpretation.Rooted "Children")
       Interpretation.Full_disjunction)

let test_inner_vs_rooted_differs () =
  let c =
    Interpretation.compare_under (Eval_ctx.transient db) mothers Interpretation.Inner_join
      (Interpretation.Rooted "Children")
  in
  (* Bob: present when rooted (padded), absent under inner join. *)
  Alcotest.(check int) "only rooted has Bob" 1 (List.length c.Interpretation.only_b);
  Alcotest.(check int) "inner adds nothing" 0 (List.length c.Interpretation.only_a);
  let s =
    Interpretation.render_comparison ~target_schema:(Mapping.target_schema mothers) c
  in
  Alcotest.(check bool) "render mentions Bob" true (contains s "Bob")

let test_covering_interpretation () =
  (* Requiring PhoneDir coverage = promoting its join to inner: kids whose
     mother has no phone would drop.  Here every mother has one, so only
     the motherless Bob distinguishes Covering [Children] from
     Covering [Children; PhoneDir]. *)
  let base = Interpretation.eval (Eval_ctx.transient db) mothers (Interpretation.Covering [ "Children" ]) in
  let strict =
    Interpretation.eval (Eval_ctx.transient db) mothers
      (Interpretation.Covering [ "Children"; "PhoneDir" ])
  in
  Alcotest.(check int) "all kids" 4 (Relation.cardinality base);
  Alcotest.(check int) "Bob dropped" 3 (Relation.cardinality strict);
  (* Covering [root] coincides with Rooted root. *)
  Alcotest.(check bool) "covering = rooted" true
    (Relation.equal_contents base
       (Interpretation.eval (Eval_ctx.transient db) mothers (Interpretation.Rooted "Children")))

let test_no_effect_when_join_lossless () =
  (* Every child has a father: rooting at Children vs inner join over
     Children-Parents(fid) makes no difference — 'the same change may have
     no effect due to constraints that hold on the source schema'. *)
  let m =
    Mapping.make
      ~graph:
        (Qgraph.make
           [ ("Children", "Children"); ("Parents", "Parents") ]
           [ ("Children", "Parents", eq "Children" "fid" "Parents" "ID") ])
      ~target:"Kids" ~target_cols:[ "ID"; "affiliation" ]
      ~correspondences:
        [
          Clio.corr_identity "ID" "Children" "ID";
          Clio.corr_identity "affiliation" "Parents" "affiliation";
        ]
      ~target_filters:[ Predicate.Is_not_null (Expr.col "Kids" "ID") ]
      ()
  in
  Alcotest.(check bool) "no effect" true
    (Interpretation.no_effect (Eval_ctx.transient db) m Interpretation.Inner_join
       (Interpretation.Rooted "Children"))

(* --- Op_example --- *)

let m9 = Paperdata.Running.mapping
let universe9 = Mapping_eval.examples (Eval_ctx.transient db) m9
let cols9 = m9.Mapping.target_cols
let ill9 = Sufficiency.select ~universe:universe9 ~target_cols:cols9 ()

let cpphs_positive exs =
  List.find
    (fun e ->
      Example.is_positive e
      && Fulldisj.Coverage.label ~short:Paperdata.Figure1.short (Example.coverage e)
         = "CPPhS")
    exs

let test_alternatives_for () =
  let joe_or_maya = cpphs_positive ill9 in
  let alts = Op_example.alternatives_for ~universe:universe9 joe_or_maya in
  (* Joe and Maya are interchangeable positives at CPPhS. *)
  Alcotest.(check int) "one alternative" 1 (List.length alts);
  Alcotest.(check bool) "same coverage" true
    (Fulldisj.Coverage.equal
       (Example.coverage (List.hd alts))
       (Example.coverage joe_or_maya))

let test_swap_keeps_sufficiency () =
  let old_example = cpphs_positive ill9 in
  match Op_example.alternatives_for ~universe:universe9 old_example with
  | [ replacement ] ->
      let swapped =
        Op_example.swap ~universe:universe9 ~target_cols:cols9 ill9 ~old_example
          ~replacement
      in
      Alcotest.(check bool) "sufficient" true
        (Sufficiency.is_sufficient ~universe:universe9 ~target_cols:cols9 swapped);
      Alcotest.(check bool) "old gone" false (Illustration.mem old_example swapped);
      Alcotest.(check bool) "replacement in" true (Illustration.mem replacement swapped)
  | _ -> Alcotest.fail "expected exactly one alternative"

let test_remove_refuses_when_needed () =
  (* The PPh example is the only one of its category. *)
  let pph =
    List.find
      (fun e ->
        Fulldisj.Coverage.label ~short:Paperdata.Figure1.short (Example.coverage e)
        = "PPh")
      ill9
  in
  match Op_example.remove ~universe:universe9 ~target_cols:cols9 ill9 pph with
  | Op_example.Would_break_sufficiency missing ->
      Alcotest.(check bool) "reports requirements" true (missing <> [])
  | Op_example.Removed _ -> Alcotest.fail "should refuse"

let test_remove_allows_redundant () =
  (* Add a redundant example, then removing it is fine. *)
  let extra =
    List.find (fun e -> not (Illustration.mem e ill9)) universe9
  in
  let bigger = Op_example.add ill9 extra in
  Alcotest.(check int) "added" (List.length ill9 + 1) (List.length bigger);
  Alcotest.(check int) "idempotent" (List.length bigger)
    (List.length (Op_example.add bigger extra));
  match Op_example.remove ~universe:universe9 ~target_cols:cols9 bigger extra with
  | Op_example.Removed r -> Alcotest.(check int) "back" (List.length ill9) (List.length r)
  | Op_example.Would_break_sufficiency _ -> Alcotest.fail "extra example was redundant"

(* --- algebraic facts the paper cites --- *)

let mk name cols rows = Relation.create name (Schema.make name cols) rows
let v_int i = Value.Int i

let test_full_outer_join_not_associative () =
  (* With a NON-strong B–C predicate (satisfied when B.y is null), the two
     parenthesizations differ — the reason Definition 3.3 requires strong
     join predicates, and an instance of the paper's point that "data
     merging queries require the use of complex, non-associative
     operators". *)
  let a = mk "A" [ "x" ] [ Tuple.make [ v_int 1 ] ] in
  let b = mk "B" [ "y" ] [] in
  let c = mk "C" [ "z" ] [ Tuple.make [ v_int 7 ] ] in
  let p_ab = Predicate.eq_cols (Attr.make "A" "x") (Attr.make "B" "y") in
  let p_bc =
    Predicate.Or
      ( Predicate.Is_null (Expr.col "B" "y"),
        Predicate.eq_cols (Attr.make "B" "y") (Attr.make "C" "z") )
  in
  Alcotest.(check bool) "p_bc is not strong" false
    (Predicate.is_strong
       (Schema.of_attrs [ Attr.make "B" "y"; Attr.make "C" "z" ])
       p_bc);
  (* ((A ⟗ B) ⟗ C): the padded (1, null) row satisfies p_bc → one row
     (1, null, 7). *)
  let left = Algebra.full_outer_join p_bc (Algebra.full_outer_join p_ab a b) c in
  (* A ⟗ (B ⟗ C): B is empty, so B ⟗ C = {(null, 7)}, which cannot match
     A on x = y → two rows (1, null, null) and (null, null, 7). *)
  let right = Algebra.full_outer_join p_ab a (Algebra.full_outer_join p_bc b c) in
  Alcotest.(check int) "left has one row" 1 (Relation.cardinality left);
  Alcotest.(check int) "right has two rows" 2 (Relation.cardinality right)

let test_min_union_associative_property () =
  (* ⊕ in contrast IS associative on a shared schema: both orders equal the
     maximal elements of the union. *)
  let st = Random.State.make [| 123 |] in
  for _ = 1 to 20 do
    let gen () =
      Synth.Gen_db.sparse_tuples st ~rows:15 ~arity:3 ~null_prob:0.4 ~domain:3
      |> List.filter (fun t -> not (Tuple.all_null t))
    in
    let schema = Schema.make "R" [ "a"; "b"; "c" ] in
    let rel name ts = Relation.create ~allow_all_null:true name schema ts in
    let a = rel "A" (gen ()) and b = rel "B" (gen ()) and c = rel "C" (gen ()) in
    let l = Fulldisj.Min_union.min_union (Fulldisj.Min_union.min_union a b) c in
    let r = Fulldisj.Min_union.min_union a (Fulldisj.Min_union.min_union b c) in
    Alcotest.(check bool) "associative" true (Relation.equal_contents l r)
  done

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "understanding"
    [
      ( "differentiate",
        [
          tc "mother vs father" `Quick test_target_diff_mother_vs_father;
          tc "self equivalent" `Quick test_self_equivalent;
          tc "by child" `Quick test_distinguishing_by_child;
          tc "detects equivalence" `Quick test_distinguishing_detects_equivalence;
          tc "render" `Quick test_distinguishing_render;
          tc "schema mismatch" `Quick test_target_diff_schema_mismatch;
        ] );
      ( "interpretation",
        [
          tc "inner vs full disjunction" `Quick test_inner_vs_full_disjunction;
          tc "rooted = fd with filter" `Quick test_rooted_equals_fd_with_root_filter;
          tc "inner vs rooted" `Quick test_inner_vs_rooted_differs;
          tc "covering" `Quick test_covering_interpretation;
          tc "no effect (lossless)" `Quick test_no_effect_when_join_lossless;
        ] );
      ( "op_example",
        [
          tc "alternatives" `Quick test_alternatives_for;
          tc "swap" `Quick test_swap_keeps_sufficiency;
          tc "remove refused" `Quick test_remove_refuses_when_needed;
          tc "remove redundant" `Quick test_remove_allows_redundant;
        ] );
      ( "algebraic-facts",
        [
          tc "FOJ not associative" `Quick test_full_outer_join_not_associative;
          tc "min union associative" `Quick test_min_union_associative_property;
        ] );
    ]
