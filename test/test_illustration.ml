(* Tests for examples, illustrations, sufficiency (Definitions 4.2–4.6) and
   focus (Definition 4.7), on the paper's running mapping (experiments E4.3
   and E4.8). *)

open Relational
open Fulldisj
open Clio
module Qgraph = Querygraph.Qgraph

let db = Paperdata.Figure1.database
let m = Paperdata.Running.mapping
let target_cols = Paperdata.Running.kids_cols
let universe = Mapping_eval.examples (Eval_ctx.transient db) m

let scheme =
  (Mapping_eval.data_associations (Eval_ctx.transient db) m).Full_disjunction.scheme

let label e = Coverage.label ~short:Paperdata.Figure1.short (Example.coverage e)
let select () = Sufficiency.select ~universe ~target_cols ()

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- Example basics --- *)

let test_universe_size () = Alcotest.(check int) "11 examples" 11 (List.length universe)

let test_positive_examples () =
  let pos = List.filter Example.is_positive universe in
  (* Joe, Maya (CPPhS) and Ann (CPPh); Bob fails age<7; the rest fail
     Kids.ID not-null. *)
  Alcotest.(check int) "three positives" 3 (List.length pos);
  List.iter
    (fun e ->
      Alcotest.(check bool) "coverage includes Children" true
        (Coverage.mem "Children" (Example.coverage e)))
    pos

let test_negative_example_bob () =
  let bob =
    List.find
      (fun e ->
        Value.equal e.Example.target_tuple.(1) (Value.String "Bob"))
      universe
  in
  Alcotest.(check bool) "negative" true (Example.is_negative bob);
  Alcotest.(check string) "full coverage" "CPPhS" (label bob);
  Alcotest.(check string) "tag" "CPPhS -" (Example.tag ~short:Paperdata.Figure1.short bob)

let test_example_target_tuple_computed_without_filters () =
  (* Even negative examples show what the target tuple would have been. *)
  let s777 =
    List.find (fun e -> String.equal (label e) "S") universe
  in
  Alcotest.(check bool) "BusSchedule visible" true
    (Value.equal s777.Example.target_tuple.(4) (Value.String "7:30am"));
  Alcotest.(check bool) "ID null" true (Value.is_null s777.Example.target_tuple.(0))

(* --- Sufficiency: Definition 4.2 (query graph) --- *)

let test_sufficient_illustration_is_sufficient () =
  let ill = select () in
  Alcotest.(check bool) "graph" true
    (Sufficiency.is_sufficient_graph ~universe ~target_cols ill);
  Alcotest.(check bool) "filters" true
    (Sufficiency.is_sufficient_filters ~universe ~target_cols ill);
  Alcotest.(check bool) "correspondences" true
    (Sufficiency.is_sufficient_correspondences ~universe ~target_cols ill);
  Alcotest.(check bool) "mapping" true (Sufficiency.is_sufficient ~universe ~target_cols ill)

let test_selection_smaller_than_universe () =
  let ill = select () in
  Alcotest.(check bool) "proper subset" true
    (List.length ill < List.length universe);
  List.iter
    (fun e -> Alcotest.(check bool) "from universe" true (Illustration.mem e universe))
    ill

(* E4.3: dropping one CPPhS example keeps sufficiency; dropping the PPh
   example breaks the graph requirement. *)
let test_e43_drop_one_cpphs_keeps_sufficiency () =
  let ill = select () in
  let cpphs = List.filter (fun e -> String.equal (label e) "CPPhS") ill in
  (* Universe has Joe, Maya (+) and Bob (-) at CPPhS; sufficiency needs one
     (+) and one (-): if selection kept more than two, dropping a spare
     positive is safe. *)
  match List.filter Example.is_positive cpphs with
  | _ :: _ ->
      let one_pos = List.hd (List.filter Example.is_positive cpphs) in
      let smaller =
        List.filter (fun e -> not (Example.equal e one_pos)) (universe)
      in
      (* Re-select from a universe with that example dropped: still
         sufficient w.r.t. the original universe because another CPPhS
         positive exists. *)
      let re = Sufficiency.select ~universe:smaller ~target_cols () in
      Alcotest.(check bool) "still sufficient" true
        (Sufficiency.is_sufficient ~universe ~target_cols re)
  | [] -> Alcotest.fail "expected a positive CPPhS example in the selection"

let test_e43_dropping_pph_breaks_sufficiency () =
  let ill = select () in
  let without_pph = List.filter (fun e -> not (String.equal (label e) "PPh")) ill in
  Alcotest.(check bool) "insufficient" false
    (Sufficiency.is_sufficient_graph ~universe ~target_cols without_pph)

let test_missing_reports_pph () =
  let ill = select () in
  let without_pph = List.filter (fun e -> not (String.equal (label e) "PPh")) ill in
  let missing = Sufficiency.missing ~universe ~target_cols without_pph in
  Alcotest.(check bool) "PPh among missing" true
    (List.exists
       (function
         | Sufficiency.Cover c ->
             String.equal (Coverage.label ~short:Paperdata.Figure1.short c) "PPh"
         | _ -> false)
       missing)

(* Definition 4.4: both polarities at CPPhS must be illustrated. *)
let test_filters_need_both_polarities () =
  let ill = select () in
  let cpphs = List.filter (fun e -> String.equal (label e) "CPPhS") ill in
  Alcotest.(check bool) "has positive" true (List.exists Example.is_positive cpphs);
  Alcotest.(check bool) "has negative (Bob)" true (List.exists Example.is_negative cpphs)

(* Definition 4.5: Ann's null BusSchedule at CPPh must be illustrated. *)
let test_correspondence_null_slot () =
  let ill = select () in
  let ann =
    List.filter
      (fun e ->
        String.equal (label e) "CPPh" && Example.is_positive e
        && Value.is_null e.Example.target_tuple.(4))
      ill
  in
  Alcotest.(check int) "Ann present" 1 (List.length ann)

(* Requirements derive only satisfiable slots. *)
let test_requirements_satisfiable () =
  let reqs = Sufficiency.requirements ~universe ~target_cols in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Format.asprintf "%a" Sufficiency.pp_requirement r)
        true
        (List.exists (fun e -> Sufficiency.satisfies ~target_cols e r) universe))
    reqs

let test_select_exact () =
  let exact = Sufficiency.select_exact ~universe ~target_cols () in
  let greedy = select () in
  Alcotest.(check bool) "exact sufficient" true
    (Sufficiency.is_sufficient ~universe ~target_cols exact);
  Alcotest.(check bool) "exact <= greedy" true
    (List.length exact <= List.length greedy);
  (* Across random instances too. *)
  for seed = 0 to 8 do
    let st = Random.State.make [| seed |] in
    let inst =
      Synth.Gen_graph.random_tree st ~n:3 ~rows:10 ~null_prob:0.3 ~orphan_prob:0.25 ()
    in
    let aliases = Qgraph.aliases inst.Synth.Gen_graph.graph in
    let m =
      Mapping.make ~graph:inst.Synth.Gen_graph.graph ~target:"T"
        ~target_cols:(List.map (fun a -> "c_" ^ a) aliases)
        ~correspondences:
          (List.map
             (fun a -> Correspondence.identity ("c_" ^ a) (Attr.make a "id"))
             aliases)
        ()
    in
    let u = Mapping_eval.examples (Eval_ctx.transient inst.Synth.Gen_graph.db) m in
    let cols = m.Mapping.target_cols in
    let e = Sufficiency.select_exact ~universe:u ~target_cols:cols () in
    let g = Sufficiency.select ~universe:u ~target_cols:cols () in
    Alcotest.(check bool) "sufficient" true
      (Sufficiency.is_sufficient ~universe:u ~target_cols:cols e);
    Alcotest.(check bool) "<= greedy" true (List.length e <= List.length g)
  done

let test_seeded_selection_keeps_seed () =
  let seed = [ List.hd universe ] in
  let ill = Sufficiency.select ~seed ~universe ~target_cols () in
  Alcotest.(check bool) "seed kept" true (Illustration.mem (List.hd universe) ill);
  Alcotest.(check bool) "sufficient" true
    (Sufficiency.is_sufficient ~universe ~target_cols ill)

(* --- by_category / render --- *)

let test_by_category_partition () =
  let cats = Illustration.by_category universe in
  Alcotest.(check int) "six categories" 6 (List.length cats);
  let total = List.fold_left (fun acc (_, es) -> acc + List.length es) 0 cats in
  Alcotest.(check int) "partition" (List.length universe) total

let test_render_shows_tags () =
  let ill = select () in
  let s = Illustration.render ~short:Paperdata.Figure1.short ~scheme ill in
  Alcotest.(check bool) "has CPPhS tag" true (contains s "CPPhS");
  Alcotest.(check bool) "has polarity" true (contains s "+")

let test_render_column_restriction () =
  let ill = select () in
  let s =
    Illustration.render ~short:Paperdata.Figure1.short
      ~columns:[ Attr.make "Children" "name" ] ~scheme ill
  in
  (* A single-node restriction renders unqualified headers. *)
  Alcotest.(check bool) "kept name" true (contains s "name");
  Alcotest.(check bool) "dropped docid" false (contains s "docid")

let test_render_source_tables () =
  let ill = select () in
  let s =
    Illustration.render_source_tables ~lookup:(Database.find db)
      ~graph:m.Mapping.graph ~scheme ill
  in
  (* Each graph node becomes its own table; involved rows are starred. *)
  List.iter
    (fun alias -> Alcotest.(check bool) alias true (contains s alias))
    [ "Children"; "Parents"; "PhoneDir"; "SBPS" ];
  Alcotest.(check bool) "some rows starred" true (contains s "| * |")

let test_render_target () =
  let ill = select () in
  let s =
    Illustration.render_target ~short:Paperdata.Figure1.short
      ~target_schema:(Mapping.target_schema m) ill
  in
  Alcotest.(check bool) "target cols" true (contains s "BusSchedule")

(* --- Focus (Definition 4.7 / E4.8) --- *)

let children_tuples ids =
  let r = Database.get db "Children" in
  Relation.tuples r
  |> List.filter (fun t -> List.exists (fun id -> Value.equal t.(0) (Value.String id)) ids)

let test_focus_on_all_children () =
  let tuples = children_tuples [ "001"; "002"; "004"; "009" ] in
  let fs = Focus.focus_set ~universe ~scheme ~rel:"Children" ~tuples in
  (* every association involving a child: CPPhS ×3 + CPPh ×1 *)
  Alcotest.(check int) "four examples" 4 (List.length fs);
  Alcotest.(check bool) "focussed" true
    (Focus.is_focussed ~universe ~scheme ~rel:"Children" ~tuples fs)

let test_focus_on_maya_only () =
  let tuples = children_tuples [ "002" ] in
  let fs = Focus.focus_set ~universe ~scheme ~rel:"Children" ~tuples in
  Alcotest.(check int) "one example" 1 (List.length fs);
  Alcotest.(check string) "it is Maya" "Maya"
    (Value.to_string (List.hd fs).Example.target_tuple.(1))

(* E4.8: an illustration omitting 205's PPh association is not focussed on
   Parents 205. *)
let test_e48_not_focussed_on_205 () =
  let p205 =
    Relation.tuples (Database.get db "Parents")
    |> List.filter (fun t -> Value.equal t.(0) (Value.String "205"))
  in
  let without_205 =
    List.filter
      (fun e ->
        not
          (Tuple.equal
             (Assoc.project_alias scheme e.Example.assoc "Parents")
             (List.hd p205)
          && Coverage.mem "Parents" (Example.coverage e)))
      universe
  in
  Alcotest.(check bool) "not focussed" false
    (Focus.is_focussed ~universe ~scheme ~rel:"Parents" ~tuples:p205 without_205);
  (* But the full universe is focussed on anything. *)
  Alcotest.(check bool) "universe focussed" true
    (Focus.is_focussed ~universe ~scheme ~rel:"Parents" ~tuples:p205 universe)

let test_focus_unknown_relation_rejected () =
  Alcotest.check_raises "unknown" (Invalid_argument "Focus: unknown relation Zed")
    (fun () ->
      ignore (Focus.focus_set ~universe ~scheme ~rel:"Zed" ~tuples:[]))

let test_tuples_matching () =
  let pred =
    Predicate.Cmp (Predicate.Lt, Expr.col "Children" "age", Expr.Const (Value.Int 6))
  in
  let ts =
    Focus.tuples_matching db ~graph:m.Mapping.graph ~rel:"Children" pred
  in
  Alcotest.(check int) "only Maya is under 6" 1 (List.length ts)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "illustration"
    [
      ( "examples",
        [
          tc "universe size" `Quick test_universe_size;
          tc "positives" `Quick test_positive_examples;
          tc "Bob negative" `Quick test_negative_example_bob;
          tc "unfiltered transform" `Quick
            test_example_target_tuple_computed_without_filters;
        ] );
      ( "sufficiency",
        [
          tc "selection sufficient" `Quick test_sufficient_illustration_is_sufficient;
          tc "selection small" `Quick test_selection_smaller_than_universe;
          tc "E4.3 drop CPPhS ok" `Quick test_e43_drop_one_cpphs_keeps_sufficiency;
          tc "E4.3 drop PPh breaks" `Quick test_e43_dropping_pph_breaks_sufficiency;
          tc "missing reports PPh" `Quick test_missing_reports_pph;
          tc "both polarities" `Quick test_filters_need_both_polarities;
          tc "null slot" `Quick test_correspondence_null_slot;
          tc "requirements satisfiable" `Quick test_requirements_satisfiable;
          tc "seeded selection" `Quick test_seeded_selection_keeps_seed;
          tc "exact selection" `Quick test_select_exact;
        ] );
      ( "rendering",
        [
          tc "by category" `Quick test_by_category_partition;
          tc "tags" `Quick test_render_shows_tags;
          tc "column restriction" `Quick test_render_column_restriction;
          tc "source tables" `Quick test_render_source_tables;
          tc "target side" `Quick test_render_target;
        ] );
      ( "focus",
        [
          tc "all children" `Quick test_focus_on_all_children;
          tc "Maya only" `Quick test_focus_on_maya_only;
          tc "E4.8 not focussed on 205" `Quick test_e48_not_focussed_on_205;
          tc "unknown relation" `Quick test_focus_unknown_relation_rejected;
          tc "tuples matching" `Quick test_tuples_matching;
        ] );
    ]
