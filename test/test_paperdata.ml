(* Checks that the reconstructed Figure 1 database satisfies every claim the
   paper's prose makes about the data, and that the running-example figures
   come out as the paper describes (experiments F1, F7, F8, F9, E3.10,
   E3.12, E4.3). *)

open Relational
open Fulldisj
module Qgraph = Querygraph.Qgraph
module Subgraphs = Querygraph.Subgraphs

let db = Paperdata.Figure1.database
let lookup = Database.find db

let coverage_label (a : Assoc.t) =
  Coverage.label ~short:Paperdata.Figure1.short a.Assoc.coverage

let sorted_counts fd =
  Full_disjunction.categories fd
  |> List.map (fun (cov, assocs) ->
         (Coverage.label ~short:Paperdata.Figure1.short cov, List.length assocs))
  |> List.sort compare

(* --- Figure 1: integrity of the source database --- *)

let test_constraints_hold () =
  match Database.check db with
  | [] -> ()
  | violations ->
      Alcotest.failf "constraint violations: %s"
        (String.concat "; "
           (List.map (fun v -> v.Integrity.detail) violations))

let test_relation_sizes () =
  let size name = Relation.cardinality (Database.get db name) in
  Alcotest.(check int) "Children" 4 (size "Children");
  Alcotest.(check int) "Parents" 9 (size "Parents");
  Alcotest.(check int) "PhoneDir" 9 (size "PhoneDir");
  Alcotest.(check int) "SBPS" 4 (size "SBPS");
  Alcotest.(check int) "XmasBar" 2 (size "XmasBar");
  Alcotest.(check int) "ClassSched" 2 (size "ClassSched")

(* Every parent of a child has a phone entry (the premise behind Example
   3.10 and Example 4.3's empty categories). *)
let test_child_linked_parents_have_phones () =
  let children = Database.get db "Children" in
  let phone_ids =
    Relation.column_values (Database.get db "PhoneDir") (Attr.make "PhoneDir" "ID")
  in
  let cs = Relation.schema children in
  Relation.iter
    (fun t ->
      List.iter
        (fun col ->
          let v = Tuple.value cs t (Attr.make "Children" col) in
          if not (Value.is_null v) then
            Alcotest.(check bool)
              (Printf.sprintf "parent %s has phone" (Value.to_string v))
              true
              (List.exists (Value.equal v) phone_ids))
        [ "mid"; "fid" ])
    children

let test_205_has_phone_no_children () =
  let children = Database.get db "Children" in
  let cs = Relation.schema children in
  let refs_205 t =
    List.exists
      (fun col -> Value.equal (Tuple.value cs t (Attr.make "Children" col))
                    (Value.String "205"))
      [ "mid"; "fid" ]
  in
  Alcotest.(check bool) "205 childless" false (Relation.fold (fun acc t -> acc || refs_205 t) false children);
  let phones =
    Relation.column_values (Database.get db "PhoneDir") (Attr.make "PhoneDir" "ID")
  in
  Alcotest.(check bool) "205 has phone" true
    (List.exists (Value.equal (Value.String "205")) phones)

(* The Section 2 chase: "002 appears in one attribute of SBPS and in two
   attributes of XmasBar" (plus Children.ID itself). *)
let test_chase_002_occurrences () =
  let occs = Database.find_value db (Value.String "002") in
  let in_rel name = List.filter (fun (r, _, _) -> String.equal r name) occs in
  Alcotest.(check int) "SBPS attrs" 1 (List.length (in_rel "SBPS"));
  Alcotest.(check int) "XmasBar attrs" 2 (List.length (in_rel "XmasBar"));
  Alcotest.(check int) "Children attrs" 1 (List.length (in_rel "Children"))

(* --- Figure 6 / Example 3.12: induced connected subgraphs of G --- *)

let test_subgraphs_of_g () =
  let sets = Subgraphs.connected_node_sets Paperdata.Running.graph_g in
  let expected =
    [
      [ "Children" ];
      [ "Parents" ];
      [ "PhoneDir" ];
      [ "Children"; "Parents" ];
      [ "Parents"; "PhoneDir" ];
      [ "Children"; "Parents"; "PhoneDir" ];
    ]
  in
  Alcotest.(check int) "six induced connected subgraphs" 6 (List.length sets);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (String.concat "," e) true
        (List.exists (fun s -> s = List.sort String.compare e) sets))
    expected

(* --- Figure 7 / Example 3.7: t, u, v --- *)

let test_figure7 () =
  let f_g1 = Join_eval.full_associations (Source.of_fn lookup) Paperdata.Running.graph_g1 in
  (* Maya joined with her mother 103 is a full association of G1. *)
  let s = Relation.schema f_g1 in
  let maya =
    Relation.tuples f_g1
    |> List.find_opt (fun t ->
           Value.equal (Tuple.value s t (Attr.make "Children" "name"))
             (Value.String "Maya"))
  in
  (match maya with
  | None -> Alcotest.fail "no full association for Maya in F(G1)"
  | Some t ->
      Alcotest.(check string) "mother id" "103"
        (Value.to_string (Tuple.value s t (Attr.make "Parents" "ID"))));
  (* Padding it to G2's scheme gives a possible association u of G2,
     strictly subsumed by the full association v (mother's phone). *)
  let f_g2 = Join_eval.full_associations (Source.of_fn lookup) Paperdata.Running.graph_g2 in
  let padded = Algebra.pad f_g1 (Relation.schema f_g2) in
  let u =
    Relation.tuples padded
    |> List.find (fun t ->
           Value.equal
             (Tuple.value (Relation.schema padded) t (Attr.make "Children" "name"))
             (Value.String "Maya"))
  in
  let subsumer =
    Relation.tuples f_g2 |> List.filter (fun v -> Tuple.strictly_subsumes v u)
  in
  Alcotest.(check int) "v strictly subsumes u" 1 (List.length subsumer)

(* --- Example 3.10: R1 ⊕ R2 = R2 --- *)

let test_example_3_10 () =
  let r1 = Join_eval.full_associations (Source.of_fn lookup) Paperdata.Running.graph_g1 in
  let r2 = Join_eval.full_associations (Source.of_fn lookup) Paperdata.Running.graph_g2 in
  let mu = Min_union.min_union r1 r2 in
  Alcotest.(check bool) "R1 (+) R2 = R2" true
    (Relation.equal_contents mu (Algebra.pad r2 (Relation.schema mu)))

(* --- Figure 8: D(G) with coverage tags --- *)

let test_figure8_categories () =
  let fd = Full_disjunction.compute (Source.of_fn lookup) Paperdata.Running.graph_g in
  Alcotest.(check (list (pair string int)))
    "coverage histogram"
    (List.sort compare [ ("C", 1); ("P", 1); ("Ph", 1); ("PPh", 5); ("CPPh", 3) ])
    (sorted_counts fd);
  Alcotest.(check int) "11 data associations" 11
    (List.length fd.Full_disjunction.associations)

(* Empty categories: CP is empty because no mother lacks a phone. *)
let test_figure8_empty_categories () =
  let fd = Full_disjunction.compute (Source.of_fn lookup) Paperdata.Running.graph_g in
  let labels = List.map coverage_label fd.Full_disjunction.associations in
  Alcotest.(check bool) "no CP association" false (List.mem "CP" labels)

(* --- Figure 9 / Example 4.3: the running mapping's categories --- *)

let fig9_fd = lazy (Full_disjunction.compute (Source.of_fn lookup) Paperdata.Running.fig9_graph)

let test_figure9_categories () =
  let fd = Lazy.force fig9_fd in
  Alcotest.(check (list (pair string int)))
    "coverage histogram"
    (List.sort compare
       [ ("CPPhS", 3); ("CPPh", 1); ("PPh", 4); ("P", 1); ("Ph", 1); ("S", 1) ])
    (sorted_counts fd)

let test_figure9_no_C_CP_CPS () =
  let fd = Lazy.force fig9_fd in
  let labels = List.map coverage_label fd.Full_disjunction.associations in
  List.iter
    (fun l ->
      Alcotest.(check bool) ("no " ^ l ^ " association") false (List.mem l labels))
    [ "C"; "CP"; "CPS"; "CS" ]

(* --- the running mapping's target view (WYSIWYG) --- *)

let test_running_mapping_target_view () =
  let view = Clio.Mapping_eval.target_view (Clio.Eval_ctx.transient db) Paperdata.Running.mapping in
  let names =
    Relation.column_values view (Attr.make "Kids" "name")
    |> List.map Value.to_string |> List.sort compare
  in
  (* Bob is 8: the C_S filter [age < 7] excludes him. *)
  Alcotest.(check (list string)) "kids under 7" [ "Ann"; "Joe"; "Maya" ] names

let test_running_mapping_ann_has_null_bus () =
  let view = Clio.Mapping_eval.target_view (Clio.Eval_ctx.transient db) Paperdata.Running.mapping in
  let s = Relation.schema view in
  let ann =
    Relation.tuples view
    |> List.find (fun t ->
           Value.equal (Tuple.value s t (Attr.make "Kids" "name")) (Value.String "Ann"))
  in
  Alcotest.(check bool) "Ann's BusSchedule is null" true
    (Value.is_null (Tuple.value s ann (Attr.make "Kids" "BusSchedule")));
  Alcotest.(check string) "Ann's contactPh" "cell:555-0106"
    (Value.to_string (Tuple.value s ann (Attr.make "Kids" "contactPh")))

(* --- Section 2 final mapping: all four kids, outer semantics --- *)

(* Example 3.13: the target predicate [Kids.ID <> null] and the source
   predicate ¬(all Children attributes null) are alternative formulations;
   the paper notes they are "not necessarily equivalent", but on this
   instance (where Children.ID is a non-null key) they select the same
   target tuples. *)
let test_example_3_13_filter_formulations () =
  let m = Paperdata.Running.mapping in
  let via_target = m in
  let source_pred =
    Relational.Predicate.Not
      (Relational.Predicate.conj
         (List.map
            (fun col -> Relational.Predicate.Is_null (Expr.col "Children" col))
            [ "ID"; "name"; "age"; "mid"; "fid"; "docid" ]))
  in
  let via_source =
    Clio.Mapping.add_source_filter
      (Clio.Mapping.remove_target_filter m Paperdata.Running.id_required)
      source_pred
  in
  Alcotest.(check bool) "same target tuples" true
    (Relation.equal_contents
       (Clio.Mapping_eval.eval (Clio.Eval_ctx.transient db) via_target)
       (Clio.Mapping_eval.eval (Clio.Eval_ctx.transient db) via_source))

let test_section2_target_view () =
  let view = Clio.Mapping_eval.target_view (Clio.Eval_ctx.transient db) Paperdata.Running.section2_mapping in
  Alcotest.(check int) "four kids" 4 (Relation.cardinality view);
  let s = Relation.schema view in
  let bob =
    Relation.tuples view
    |> List.find (fun t ->
           Value.equal (Tuple.value s t (Attr.make "Kids" "name")) (Value.String "Bob"))
  in
  (* Bob is motherless: contactPh (mother's phone) is null, but he is
     present thanks to the outer semantics. *)
  Alcotest.(check bool) "Bob's contactPh null" true
    (Value.is_null (Tuple.value s bob (Attr.make "Kids" "contactPh")));
  Alcotest.(check string) "Bob's affiliation (father)" "HP"
    (Value.to_string (Tuple.value s bob (Attr.make "Kids" "affiliation")))

let () =
  Alcotest.run "paperdata"
    [
      ( "figure1",
        [
          Alcotest.test_case "constraints hold" `Quick test_constraints_hold;
          Alcotest.test_case "relation sizes" `Quick test_relation_sizes;
          Alcotest.test_case "child-linked parents have phones" `Quick
            test_child_linked_parents_have_phones;
          Alcotest.test_case "205 childless with phone" `Quick
            test_205_has_phone_no_children;
          Alcotest.test_case "002 occurrences" `Quick test_chase_002_occurrences;
        ] );
      ( "figures",
        [
          Alcotest.test_case "E3.12 subgraphs of G" `Quick test_subgraphs_of_g;
          Alcotest.test_case "F7 t, u, v" `Quick test_figure7;
          Alcotest.test_case "E3.10 min union" `Quick test_example_3_10;
          Alcotest.test_case "F8 categories" `Quick test_figure8_categories;
          Alcotest.test_case "F8 empty categories" `Quick test_figure8_empty_categories;
          Alcotest.test_case "F9 categories" `Quick test_figure9_categories;
          Alcotest.test_case "F9 empty categories" `Quick test_figure9_no_C_CP_CPS;
        ] );
      ( "mappings",
        [
          Alcotest.test_case "running target view" `Quick
            test_running_mapping_target_view;
          Alcotest.test_case "E3.13 filter formulations" `Quick
            test_example_3_13_filter_formulations;
          Alcotest.test_case "Ann null bus" `Quick test_running_mapping_ann_has_null_bus;
          Alcotest.test_case "section 2 target view" `Quick test_section2_target_view;
        ] );
    ]
