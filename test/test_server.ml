(* The server test suite: protocol round-trips for every request and
   response variant, registry/service semantics in process, and a
   socket-level integration test against a spawned clio_serve.

   The integration test starts the real binary with Unix.create_process
   (never fork: the test runner may hold a domain pool under CLIO_JOBS,
   and forking a multi-domain OCaml 5 process is undefined). *)

open Server
module P = Protocol
module V = Relational.Value

(* --- protocol round-trips --- *)

let all_requests : P.envelope list =
  let e ?session id request = { P.id; session; request; trace_id = None } in
  [
    e 0 P.Ping;
    e 1 (P.Open_session P.Paper);
    e 2 (P.Open_session (P.Chain { n = 3; rows = 100; seed = 7 }));
    e 3 (P.Open_session (P.Star { leaves = 4; rows = 50; seed = 0 }));
    e ~session:"s1" 4 P.Close_session;
    e ~session:"s1" 5 (P.Evaluate { what = P.Dg; limit = None });
    e ~session:"s1" 6 (P.Evaluate { what = P.Fj; limit = Some 10 });
    e ~session:"s1" 7 (P.Evaluate { what = P.Target; limit = Some 0 });
    e ~session:"s1" 8 (P.Offer { start = "Children"; goal = "PhoneDir"; max_len = 2 });
    e ~session:"s1" 9 P.Rotate;
    e ~session:"s1" 10 (P.Select { entry = 3 });
    e ~session:"s1" 11 (P.Delete { entry = 2 });
    e ~session:"s1" 12 P.Confirm;
    e ~session:"s1" 13
      (P.Insert
         {
           relation = "Children";
           rows =
             [
               [| V.String "a\"b\\c"; V.Null; V.Int (-3) |];
               [| V.Float 1.5; V.Bool true; V.String "\n\t" |];
             ];
         });
    e ~session:"s1" 14 P.Rank;
    e ~session:"s2" 15 P.Stats;
    e 16 P.Stats;
    e ~session:"s1" 17 (P.Branch { name = "exp-1" });
    e ~session:"s1" 18 (P.Checkout { name = "main" });
    e ~session:"s1" 19 (P.Merge { from_ = "exp-1" });
    e ~session:"s1" 20 (P.Diff { other = "exp-1" });
    e ~session:"s1" 21 P.Branches;
    e 22 (P.Open_branch { of_session = "s1"; branch = "exp-1" });
    e 23 P.Shutdown;
  ]

let all_responses : P.response list =
  [
    P.ok 0 P.Pong;
    P.ok 1
      (P.Opened { session = "s1"; relations = [ "A"; "B" ]; version = 12 });
    P.ok 2 P.Closed;
    P.ok 3
      (P.Evaluated
         {
           what = P.Dg;
           count = 9;
           scheme = [ "C.id"; "P.id" ];
           digest = "d41d8cd98f00b204e9800998ecf8427e";
           rows = None;
         });
    P.ok 4
      (P.Evaluated
         {
           what = P.Target;
           count = 2;
           scheme = [ "name" ];
           digest = "x";
           rows = Some [ [ "Zoe"; "7" ]; [ "Ann"; "" ] ];
         });
    P.ok 5
      (P.Entries
         [
           {
             P.entry = 1;
             label = "walk via Parents2";
             graph = "Children -- Parents2";
             active = true;
             score = Some 3;
           };
           { P.entry = 2; label = ""; graph = "g"; active = false; score = None };
         ]);
    P.ok 6 (P.Inserted { fresh = true; version = 44 });
    P.ok 7 (P.Stats_report [ ("server.requests_total", 12.); ("x.y", 0.5) ]);
    P.ok 8 P.Bye;
    P.ok 9 (P.Branched { branch = "exp-1"; version = 7 });
    P.ok 10 (P.Checked_out { branch = "main"; version = 3 });
    P.ok 11 (P.Merged { branch = "main"; rows = 2; version = 9 });
    P.ok 12
      (P.Branch_list
         { current = "exp-1"; branches = [ ("main", 3); ("exp-1", 7) ] });
    P.error (Some 9) P.Parse_error "bad frame";
    P.error None P.Bad_request "no op";
    P.error (Some 11) P.Unknown_session "no session \"s9\"";
    P.error (Some 12) P.Overloaded "queue full";
    P.error (Some 13) P.Unavailable "draining";
    P.error (Some 14) P.Internal "boom";
  ]

let test_request_roundtrip () =
  List.iter
    (fun env ->
      let line = P.encode_request env in
      match P.parse_request line with
      | Error (_, _, msg) -> Alcotest.failf "%s did not parse: %s" line msg
      | Ok env' ->
          Alcotest.(check string)
            (Printf.sprintf "request %d round-trips" env.P.id)
            line (P.encode_request env'))
    all_requests

let test_response_roundtrip () =
  List.iter
    (fun resp ->
      let line = P.encode_response resp in
      match P.parse_response line with
      | Error msg -> Alcotest.failf "%s did not parse: %s" line msg
      | Ok resp' ->
          Alcotest.(check string) "response round-trips" line
            (P.encode_response resp'))
    all_responses

let test_parse_request_rejects () =
  let cases =
    [
      ("not json", "{oops", P.Parse_error, None);
      ("not an object", "[1,2]", P.Bad_request, None);
      ("missing id", {|{"op":"ping"}|}, P.Bad_request, None);
      ("fractional id", {|{"id":1.5,"op":"ping"}|}, P.Bad_request, None);
      ("negative id", {|{"id":-1,"op":"ping"}|}, P.Bad_request, None);
      ("missing op", {|{"id":3}|}, P.Bad_request, Some 3);
      ("unknown op", {|{"id":4,"op":"frobnicate"}|}, P.Bad_request, Some 4);
      ( "bad scenario",
        {|{"id":5,"op":"open","scenario":{"kind":"cube"}}|},
        P.Bad_request,
        Some 5 );
      ( "bad what",
        {|{"id":6,"op":"evaluate","session":"s1","what":"qq"}|},
        P.Bad_request,
        Some 6 );
      ( "non-finite via huge literal is a number, id recovered",
        {|{"id":7,"op":"evaluate","session":"s1","what":"dg","limit":"x"}|},
        P.Bad_request,
        Some 7 );
    ]
  in
  List.iter
    (fun (label, line, code, id) ->
      match P.parse_request line with
      | Ok _ -> Alcotest.failf "%s unexpectedly parsed" label
      | Error (id', code', _) ->
          Alcotest.(check string) (label ^ ": code") (P.error_code_name code)
            (P.error_code_name code');
          Alcotest.(check (option int)) (label ^ ": id recovered") id id')
    cases

(* Wire compatibility: an envelope or response without a trace id must
   encode to exactly the pre-trace-id bytes — no "trace_id" key at all —
   so old clients and captured transcripts stay byte-identical. *)
let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_trace_id_wire_compat () =
  let bare = { P.id = 1; session = None; request = P.Ping; trace_id = None } in
  Alcotest.(check bool) "absent trace id absent from the wire" false
    (contains ~needle:"trace_id" (P.encode_request bare));
  Alcotest.(check bool) "absent trace id absent from replies" false
    (contains ~needle:"trace_id" (P.encode_response (P.ok 1 P.Pong)));
  let traced = { bare with P.trace_id = Some "t-9" } in
  (match P.parse_request (P.encode_request traced) with
  | Ok env ->
      Alcotest.(check (option string)) "request trace id round-trips"
        (Some "t-9") env.P.trace_id
  | Error (_, _, msg) -> Alcotest.failf "traced request did not parse: %s" msg);
  (match P.parse_response (P.encode_response (P.ok ~trace_id:"t-9" 1 P.Pong)) with
  | Ok resp ->
      Alcotest.(check (option string)) "response trace id round-trips"
        (Some "t-9") resp.P.trace_id
  | Error msg -> Alcotest.failf "traced response did not parse: %s" msg);
  (* A pre-trace-id frame still parses (the field is genuinely optional). *)
  match P.parse_request {|{"id":1,"op":"ping"}|} with
  | Ok env ->
      Alcotest.(check (option string)) "old frames parse with no trace id"
        None env.P.trace_id
  | Error (_, _, msg) -> Alcotest.failf "old frame rejected: %s" msg

(* --- in-process service semantics --- *)

let with_service f =
  let registry = Registry.create ~jobs:1 () in
  f (Service.create registry)

let ok_result label = function
  | { P.result = Ok r; _ } -> r
  | { P.result = Error (code, msg); _ } ->
      Alcotest.failf "%s failed: %s (%s)" label (P.error_code_name code) msg

let test_service_session_flow () =
  with_service @@ fun service ->
  let next = ref 0 in
  let call ?session request =
    incr next;
    Service.handle service { P.id = !next; session; request; trace_id = None }
  in
  let sid =
    match ok_result "open" (call (P.Open_session P.Paper)) with
    | P.Opened { session; relations; _ } ->
        Alcotest.(check bool) "paper relations present" true
          (List.mem "Children" relations);
        session
    | _ -> Alcotest.fail "expected Opened"
  in
  (match
     ok_result "offer"
       (call ~session:sid
          (P.Offer { start = "Children"; goal = "PhoneDir"; max_len = 2 }))
   with
  | P.Entries entries ->
      Alcotest.(check bool) "offer yields alternatives" true
        (List.length entries >= 2)
  | _ -> Alcotest.fail "expected Entries");
  let digest_of what =
    match
      ok_result "evaluate" (call ~session:sid (P.Evaluate { what; limit = Some 5 }))
    with
    | P.Evaluated info -> info
    | _ -> Alcotest.fail "expected Evaluated"
  in
  let dg = digest_of P.Dg in
  Alcotest.(check bool) "D(G) nonempty" true (dg.P.count > 0);
  Alcotest.(check int) "rows honoured" (min 5 dg.P.count)
    (List.length (Option.get dg.P.rows));
  (match ok_result "rank" (call ~session:sid P.Rank) with
  | P.Entries entries ->
      List.iter
        (fun e ->
          Alcotest.(check bool) "rank fills scores" true (e.P.score <> None))
        entries
  | _ -> Alcotest.fail "expected Entries");
  (* Unknown relation in insert → Bad_request, session survives. *)
  (match
     call ~session:sid (P.Insert { relation = "Nope"; rows = [ [| V.Int 1 |] ] })
   with
  | { P.result = Error (P.Bad_request, _); _ } -> ()
  | _ -> Alcotest.fail "bad insert should be Bad_request");
  (match ok_result "stats" (call ~session:sid P.Stats) with
  | P.Stats_report kvs ->
      let get k = List.assoc k kvs in
      Alcotest.(check bool) "session.requests counted" true
        (get "session.requests" >= 4.);
      Alcotest.(check bool) "session.errors counted" true
        (get "session.errors" >= 1.);
      Alcotest.(check bool) "per-verb counter present" true
        (List.mem_assoc "session.ops.evaluate" kvs)
  | _ -> Alcotest.fail "expected Stats_report");
  (match ok_result "server stats" (call P.Stats) with
  | P.Stats_report kvs ->
      Alcotest.(check bool) "server.sessions.open" true
        (List.assoc "server.sessions.open" kvs = 1.)
  | _ -> Alcotest.fail "expected Stats_report");
  (match call ~session:"s999" P.Rotate with
  | { P.result = Error (P.Unknown_session, _); _ } -> ()
  | _ -> Alcotest.fail "unknown session should be rejected");
  (match ok_result "close" (call ~session:sid P.Close_session) with
  | P.Closed -> ()
  | _ -> Alcotest.fail "expected Closed");
  match call ~session:sid P.Rotate with
  | { P.result = Error (P.Unknown_session, _); _ } -> ()
  | _ -> Alcotest.fail "closed session should be gone"

let test_service_isolation_and_sharing () =
  with_service @@ fun service ->
  let next = ref 0 in
  let call ?session request =
    incr next;
    Service.handle service { P.id = !next; session; request; trace_id = None }
  in
  let open_one () =
    match ok_result "open" (call (P.Open_session P.Paper)) with
    | P.Opened { session; version; _ } -> (session, version)
    | _ -> Alcotest.fail "expected Opened"
  in
  let s1, v1 = open_one () in
  let s2, v2 = open_one () in
  Alcotest.(check int) "same resolved database version (shared cache keys)" v1
    v2;
  let digest sid =
    match
      ok_result "evaluate"
        (call ~session:sid (P.Evaluate { what = P.Dg; limit = None }))
    with
    | P.Evaluated info -> info.P.digest
    | _ -> Alcotest.fail "expected Evaluated"
  in
  let d1 = digest s1 in
  (* s2 inserts: it forks to a fresh version; s1's view must not move. *)
  (match
     ok_result "insert"
       (call ~session:s2
          (P.Insert
             {
               relation = "Children";
               rows =
                 [
                   [|
                     V.String "999"; V.String "New"; V.Int 1; V.String "103";
                     V.String "104"; V.String "d31";
                   |];
                 ];
             }))
   with
  | P.Inserted { fresh; version } ->
      Alcotest.(check bool) "insert forks a fresh version" true fresh;
      Alcotest.(check bool) "version advanced" true (version > v2)
  | _ -> Alcotest.fail "expected Inserted");
  Alcotest.(check string) "s1 unaffected by s2's insert" d1 (digest s1);
  Alcotest.(check bool) "s2 sees its own insert" true (digest s2 <> d1)

let chain_row k tag =
  [ [| V.Int (1_000_000 + k); V.String tag; V.Int k |] ]

let test_service_branching_flow () =
  with_service @@ fun service ->
  let next = ref 0 in
  let call ?session request =
    incr next;
    Service.handle service { P.id = !next; session; request; trace_id = None }
  in
  let sid =
    match
      ok_result "open" (call (P.Open_session (P.Chain { n = 3; rows = 50; seed = 3 })))
    with
    | P.Opened { session; _ } -> session
    | _ -> Alcotest.fail "expected Opened"
  in
  let digest () =
    match
      ok_result "evaluate" (call ~session:sid (P.Evaluate { what = P.Dg; limit = None }))
    with
    | P.Evaluated info -> info.P.digest
    | _ -> Alcotest.fail "expected Evaluated"
  in
  (match ok_result "branches" (call ~session:sid P.Branches) with
  | P.Branch_list { current = "main"; branches = [ ("main", _) ] } -> ()
  | _ -> Alcotest.fail "a fresh session lives on main alone");
  let trunk = digest () in
  (match ok_result "branch" (call ~session:sid (P.Branch { name = "exp" })) with
  | P.Branched { branch = "exp"; _ } -> ()
  | _ -> Alcotest.fail "expected Branched");
  (* The branch verb switches the session onto the fork; a commit there
     must not move the trunk. *)
  (match
     ok_result "insert"
       (call ~session:sid (P.Insert { relation = "R1"; rows = chain_row 1 "x" }))
   with
  | P.Inserted { fresh = true; _ } -> ()
  | _ -> Alcotest.fail "expected a fresh Inserted");
  let forked = digest () in
  Alcotest.(check bool) "the fork diverged" true (forked <> trunk);
  (match ok_result "checkout" (call ~session:sid (P.Checkout { name = "main" })) with
  | P.Checked_out { branch = "main"; _ } -> ()
  | _ -> Alcotest.fail "expected Checked_out");
  Alcotest.(check string) "trunk unmoved by the fork's insert" trunk (digest ());
  (match ok_result "diff" (call ~session:sid (P.Diff { other = "exp" })) with
  | P.Stats_report kvs ->
      Alcotest.(check bool) "diff is stats-shaped" true
        (List.mem_assoc "diff.lca_cid" kvs)
  | _ -> Alcotest.fail "expected Stats_report");
  (match ok_result "merge" (call ~session:sid (P.Merge { from_ = "exp" })) with
  | P.Merged { branch = "main"; rows = 1; _ } -> ()
  | _ -> Alcotest.fail "merge should fold the fork's one insert");
  Alcotest.(check string) "merged trunk evaluates like the fork" forked (digest ());
  (* Store-level invariants surface as Bad_request, session intact. *)
  (match call ~session:sid (P.Branch { name = "exp" }) with
  | { P.result = Error (P.Bad_request, _); _ } -> ()
  | _ -> Alcotest.fail "duplicate branch name should be Bad_request");
  (match call ~session:sid (P.Checkout { name = "nope" }) with
  | { P.result = Error (P.Bad_request, _); _ } -> ()
  | _ -> Alcotest.fail "unknown branch should be Bad_request");
  (* Open_branch: a second session on the same store, parked on the fork;
     it sees the fork's state and its commits land in the shared store. *)
  let sid2 =
    match
      ok_result "open_branch"
        (call (P.Open_branch { of_session = sid; branch = "exp" }))
    with
    | P.Opened { session; _ } -> session
    | _ -> Alcotest.fail "expected Opened"
  in
  Alcotest.(check bool) "distinct session ids" true (sid2 <> sid);
  (match
     ok_result "evaluate" (call ~session:sid2 (P.Evaluate { what = P.Dg; limit = None }))
   with
  | P.Evaluated info ->
      Alcotest.(check string) "the new session sees the fork" forked info.P.digest
  | _ -> Alcotest.fail "expected Evaluated");
  (match
     ok_result "insert"
       (call ~session:sid2 (P.Insert { relation = "R1"; rows = chain_row 2 "y" }))
   with
  | P.Inserted _ -> ()
  | _ -> Alcotest.fail "expected Inserted");
  (match ok_result "checkout exp" (call ~session:sid (P.Checkout { name = "exp" })) with
  | P.Checked_out _ -> ()
  | _ -> Alcotest.fail "expected Checked_out");
  (match
     ok_result "evaluate" (call ~session:sid2 (P.Evaluate { what = P.Dg; limit = None }))
   with
  | P.Evaluated info ->
      Alcotest.(check string) "one store: both sessions see the commit"
        (digest ()) info.P.digest
  | _ -> Alcotest.fail "expected Evaluated");
  (match call (P.Open_branch { of_session = "s999"; branch = "main" }) with
  | { P.result = Error (P.Unknown_session, _); _ } -> ()
  | _ -> Alcotest.fail "open_branch of an unknown session");
  match call (P.Open_branch { of_session = sid; branch = "nope" }) with
  | { P.result = Error (P.Bad_request, _); _ } -> ()
  | _ -> Alcotest.fail "open_branch of an unknown branch"

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    try Unix.rmdir path with Unix.Unix_error _ -> ()
  end
  else try Sys.remove path with Sys_error _ -> ()

let test_registry_persist_restore () =
  let dir = Filename.temp_file "clio_test_registry" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
  @@ fun () ->
  let registry = Registry.create ~jobs:1 () in
  let service = Service.create registry in
  let next = ref 0 in
  let call svc ?session request =
    incr next;
    Service.handle svc { P.id = !next; session; request; trace_id = None }
  in
  let sid =
    match
      ok_result "open"
        (call service (P.Open_session (P.Chain { n = 3; rows = 50; seed = 5 })))
    with
    | P.Opened { session; _ } -> session
    | _ -> Alcotest.fail "expected Opened"
  in
  ignore (ok_result "branch" (call service ~session:sid (P.Branch { name = "exp" })));
  ignore
    (ok_result "insert"
       (call service ~session:sid (P.Insert { relation = "R1"; rows = chain_row 7 "z" })));
  let sid2 =
    match
      ok_result "open_branch"
        (call service (P.Open_branch { of_session = sid; branch = "main" }))
    with
    | P.Opened { session; _ } -> session
    | _ -> Alcotest.fail "expected Opened"
  in
  let digest svc sid =
    match
      ok_result "evaluate"
        (call svc ~session:sid (P.Evaluate { what = P.Dg; limit = None }))
    with
    | P.Evaluated info -> info.P.digest
    | _ -> Alcotest.fail "expected Evaluated"
  in
  let d1 = digest service sid and d2 = digest service sid2 in
  Alcotest.(check bool) "the two sessions sit on different branches" true (d1 <> d2);
  Registry.persist registry ~dir;
  (* A cold process: fresh registry, same directory — same sessions, same
     branch positions, same bytes. *)
  let registry' = Registry.create ~jobs:1 () in
  Alcotest.(check int) "both sessions restored" 2 (Registry.restore registry' ~dir);
  let service' = Service.create registry' in
  Alcotest.(check string) "fork session survives the restart" d1
    (digest service' sid);
  Alcotest.(check string) "trunk session survives the restart" d2
    (digest service' sid2);
  (match
     ok_result "branches" (call service' ~session:sid P.Branches)
   with
  | P.Branch_list { current = "exp"; branches } ->
      Alcotest.(check (list string)) "branch list survives" [ "main"; "exp" ]
        (List.map fst branches)
  | _ -> Alcotest.fail "expected Branch_list on exp");
  (* The restored store is shared again: both restored sessions observe a
     post-restart merge. *)
  (match ok_result "merge" (call service' ~session:sid2 (P.Merge { from_ = "exp" })) with
  | P.Merged { rows = 1; _ } -> ()
  | _ -> Alcotest.fail "merge after restart should fold the insert");
  Alcotest.(check string) "post-restart merge visible across sessions" d1
    (digest service' sid2);
  (* And new sessions never collide with restored ids. *)
  match ok_result "open" (call service' (P.Open_session P.Paper)) with
  | P.Opened { session; _ } ->
      Alcotest.(check bool) "fresh sid distinct" true
        (session <> sid && session <> sid2)
  | _ -> Alcotest.fail "expected Opened"

let test_service_draining () =
  with_service @@ fun service ->
  let resp = Service.handle service { P.id = 1; session = None; request = P.Shutdown; trace_id = None } in
  (match resp.P.result with
  | Ok P.Bye -> ()
  | _ -> Alcotest.fail "expected Bye");
  Alcotest.(check bool) "draining flag set" true (Service.draining service);
  match Service.handle service { P.id = 2; session = None; request = P.Ping; trace_id = None } with
  | { P.result = Error (P.Unavailable, _); _ } -> ()
  | _ -> Alcotest.fail "requests while draining should be Unavailable"

(* --- load generator, in process --- *)

let test_loadgen_inprocess_verified () =
  with_service @@ fun service ->
  let spec =
    { Loadgen.scenario = P.Paper; clients = 4; ops = 12; limit = None; keep_open = false }
  in
  let o = Loadgen.run_inprocess ~verify:true service spec in
  Alcotest.(check int) "no protocol errors" 0 o.Loadgen.errors;
  Alcotest.(check (option int)) "byte-identical vs sequential replay" (Some 0)
    o.Loadgen.mismatches;
  Alcotest.(check bool) "every client evaluated" true
    (Array.for_all (fun ds -> List.length ds = 4) o.Loadgen.digests)

(* --- trace echo and telemetry attribution, in process --- *)

let test_service_trace_echo () =
  with_service @@ fun service ->
  let traced =
    Service.handle service
      { P.id = 1; session = None; request = P.Ping; trace_id = Some "cli-7" }
  in
  Alcotest.(check (option string)) "client trace id echoed" (Some "cli-7")
    traced.P.trace_id;
  let bare =
    Service.handle service
      { P.id = 2; session = None; request = P.Ping; trace_id = None }
  in
  Alcotest.(check (option string))
    "no trace id sent, none echoed (old clients unchanged)" None
    bare.P.trace_id;
  Alcotest.(check bool) "echo is byte-invisible to old clients" false
    (let enc = P.encode_response bare in
     contains ~needle:"trace_id" enc)

let with_obs_off f () =
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_service_telemetry_attribution =
  with_obs_off @@ fun () ->
  Obs.enable ();
  Obs.reset ();
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "clio-exemplars-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let log_path = Filename.temp_file "clio_serve_test" ".log" in
  let telemetry =
    Server.Telemetry.create
      ~log:(Obs.Event_log.create ~level:Obs.Event_log.Debug log_path)
      ~slow_ms:0. ~exemplar_dir:dir ()
  in
  Fun.protect
    ~finally:(fun () ->
      Server.Telemetry.close telemetry;
      (try Sys.remove log_path with Sys_error _ -> ());
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end)
  @@ fun () ->
  let registry = Registry.create ~jobs:1 () in
  let service = Service.create registry in
  Service.set_telemetry service telemetry;
  let call ?session ?trace_id id request =
    Service.handle service { P.id; session; request; trace_id }
  in
  let sid =
    match call ~trace_id:"att-1" 1 (P.Open_session P.Paper) with
    | { P.result = Ok (P.Opened { session; _ }); _ } -> session
    | _ -> Alcotest.fail "expected Opened"
  in
  (match
     call ~session:sid ~trace_id:"att-2" 2
       (P.Evaluate { what = P.Fj; limit = None })
   with
  | { P.result = Ok (P.Evaluated _); trace_id = Some "att-2"; _ } -> ()
  | _ -> Alcotest.fail "expected traced Evaluated");
  ignore (call ~session:sid 3 P.Close_session);
  Server.Telemetry.flush telemetry;
  (* The event log carries one request.complete per request, each with the
     client's trace id, a latency, and (for the evaluate) a cache
     breakdown. *)
  let docs = List.map Obs.Json.parse_exn (read_lines log_path) in
  let completes =
    List.filter
      (fun d -> Obs.Json.member "event" d = Some (Obs.Json.Str "request.complete"))
      docs
  in
  Alcotest.(check int) "one completion line per request" 3
    (List.length completes);
  let field k d =
    match Obs.Json.member k d with Some v -> v | None -> Obs.Json.Null
  in
  let eval_line =
    List.find (fun d -> field "trace_id" d = Obs.Json.Str "att-2") completes
  in
  (match field "latency_ms" eval_line with
  | Obs.Json.Num ms -> Alcotest.(check bool) "latency recorded" true (ms >= 0.)
  | _ -> Alcotest.fail "completion line lacks latency_ms");
  Alcotest.(check bool) "client_traced flagged" true
    (field "client_traced" eval_line = Obs.Json.Bool true);
  (match field "cache" eval_line with
  | Obs.Json.Obj kvs ->
      Alcotest.(check bool) "evaluate line attributes cache counters" true
        (kvs <> []
        && List.for_all
             (fun (k, _) -> String.length k > 6 && String.sub k 0 6 = "cache.")
             kvs)
  | _ -> Alcotest.fail "evaluate completion lacks a cache breakdown");
  (* slow-ms 0: every request leaves an exemplar trace named by its id,
     and the log line points at it. *)
  List.iter
    (fun d ->
      match field "exemplar" d with
      | Obs.Json.Str path ->
          Alcotest.(check bool)
            (Printf.sprintf "exemplar %s exists" path)
            true (Sys.file_exists path);
          (match Obs.Json.parse_exn (String.concat "\n" (read_lines path)) with
          | Obs.Json.Arr (_ :: _) -> ()
          | _ -> Alcotest.fail "exemplar is not a chrome trace array")
      | _ -> Alcotest.fail "completion line lacks its exemplar path")
    completes;
  (* Session stats picked up the per-request cache deltas. *)
  (* The captured subtrees were detached: the server's global span list
     must not grow per request. *)
  Alcotest.(check int) "no span roots leak per request" 0
    (List.length (Obs.finished_spans ()))

(* The Prometheus rendering of a live service: served over the protocol,
   self-consistent, and with the counter families stable (golden). *)
let test_service_metrics_prom =
  with_obs_off @@ fun () ->
  Obs.enable ();
  Obs.reset ();
  let registry = Registry.create ~jobs:1 () in
  let service = Service.create registry in
  let spec =
    { Loadgen.scenario = P.Paper; clients = 2; ops = 6; limit = None; keep_open = false }
  in
  let o = Loadgen.run_inprocess ~verify:false service spec in
  Alcotest.(check int) "loadgen clean" 0 o.Loadgen.errors;
  Alcotest.(check int) "every reply echoed its trace id" 0 o.Loadgen.echo_failures;
  (* Loadgen closes its sessions; keep one open so the scrape shows the
     per-session gauge labeling. *)
  (match
     Service.handle service
       { P.id = 98; session = None; request = P.Open_session P.Paper;
         trace_id = None }
   with
  | { P.result = Ok (P.Opened _); _ } -> ()
  | _ -> Alcotest.fail "expected Opened");
  let text =
    match
      Service.handle service
        { P.id = 99; session = None; request = P.Metrics_prom; trace_id = None }
    with
    | { P.result = Ok (P.Prom_text text); _ } -> text
    | _ -> Alcotest.fail "expected Prom_text"
  in
  (match Obs.Prom_export.validate text with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "scrape invalid: %s" msg);
  Alcotest.(check bool) "server gauges exported" true
    (contains ~needle:"clio_server_requests_total" text);
  Alcotest.(check bool) "per-session gauges labeled" true
    (contains ~needle:"{session=\"" text);
  Alcotest.(check bool) "request latency histogram exported" true
    (contains ~needle:"clio_span_server_request_ms_bucket" text);
  (* Golden: the counter families of a loadgen run are exactly the
     registered Obs.Names counters — catches silent renames/losses. *)
  let counter_families =
    String.split_on_char '\n' text
    |> List.filter_map (fun line ->
           if
             String.length line > 7
             && String.sub line 0 7 = "# TYPE "
             && String.length line > 8 + 7
             && String.sub line (String.length line - 8) 8 = " counter"
           then Some (String.sub line 7 (String.length line - 15))
           else None)
    |> List.sort compare
  in
  let golden_path =
    Filename.concat (Filename.dirname Sys.executable_name) "prom_counters.golden"
  in
  let golden =
    List.filter (fun l -> String.trim l <> "") (read_lines golden_path)
  in
  Alcotest.(check (list string))
    "counter families match the golden scrape" golden counter_families

(* --- socket integration against a spawned clio_serve --- *)

(* Relative to the test binary, not the cwd, so both [dune runtest] and a
   by-hand [dune exec test/test_server.exe] find it. *)
let serve_exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "clio_serve.exe"))

type client = { fd : Unix.file_descr; mutable carry : string }

let connect_retry path =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> { fd; carry = "" }
    | exception Unix.Unix_error _ when Unix.gettimeofday () < deadline ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        ignore (Unix.select [] [] [] 0.05);
        go ()
  in
  go ()

let send_raw c s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write c.fd b !written (len - !written)
  done

let recv_line c =
  let rec go () =
    match String.index_opt c.carry '\n' with
    | Some i ->
        let line = String.sub c.carry 0 i in
        c.carry <- String.sub c.carry (i + 1) (String.length c.carry - i - 1);
        line
    | None ->
        let chunk = Bytes.create 65536 in
        let n = Unix.read c.fd chunk 0 (Bytes.length chunk) in
        if n = 0 then failwith "server closed connection";
        c.carry <- c.carry ^ Bytes.sub_string chunk 0 n;
        go ()
  in
  go ()

let rpc c env =
  send_raw c (P.encode_request env ^ "\n");
  match P.parse_response (recv_line c) with
  | Ok r -> r
  | Error msg -> failwith ("bad reply: " ^ msg)

let with_server ?(jobs = 1) ~args f =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "clio-test-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process serve_exe
      (Array.of_list
         ([ "clio_serve"; "serve"; "--socket"; path; "--jobs";
            string_of_int jobs ]
         @ args))
      null null Unix.stderr
  in
  Fun.protect
    ~finally:(fun () ->
      Unix.close null;
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> f path pid)

let test_socket_session () =
  with_server ~args:[] @@ fun path _pid ->
  let c = connect_retry path in
  (match rpc c { P.id = 1; session = None; request = P.Ping; trace_id = None } with
  | { P.result = Ok P.Pong; id = Some 1; _ } -> ()
  | _ -> Alcotest.fail "expected pong");
  let sid =
    match rpc c { P.id = 2; session = None; request = P.Open_session P.Paper; trace_id = None } with
    | { P.result = Ok (P.Opened { session; _ }); _ } -> session
    | _ -> Alcotest.fail "expected Opened"
  in
  let digest =
    match
      rpc c
        {
          P.id = 3;
          session = Some sid;
          request = P.Evaluate { what = P.Dg; limit = None };
          trace_id = None;
        }
    with
    | { P.result = Ok (P.Evaluated info); _ } -> info.P.digest
    | _ -> Alcotest.fail "expected Evaluated"
  in
  Alcotest.(check int) "md5 hex digest" 32 (String.length digest);
  (* A malformed frame draws an error reply and the connection survives. *)
  send_raw c "{oops\n";
  (match P.parse_response (recv_line c) with
  | Ok { P.result = Error (P.Parse_error, _); _ } -> ()
  | _ -> Alcotest.fail "expected parse_error reply");
  (match rpc c { P.id = 4; session = Some sid; request = P.Confirm; trace_id = None } with
  | { P.result = Ok (P.Entries _); _ } -> ()
  | _ -> Alcotest.fail "connection should survive the bad frame");
  (match rpc c { P.id = 5; session = Some sid; request = P.Stats; trace_id = None } with
  | { P.result = Ok (P.Stats_report kvs); _ } ->
      Alcotest.(check bool) "session.requests visible" true
        (List.mem_assoc "session.requests" kvs)
  | _ -> Alcotest.fail "expected Stats_report");
  (match rpc c { P.id = 6; session = None; request = P.Stats; trace_id = None } with
  | { P.result = Ok (P.Stats_report kvs); _ } ->
      Alcotest.(check bool) "queue gauges visible" true
        (List.mem_assoc "server.queue.capacity" kvs)
  | _ -> Alcotest.fail "expected server stats");
  (match rpc c { P.id = 7; session = Some sid; request = P.Close_session; trace_id = None } with
  | { P.result = Ok P.Closed; _ } -> ()
  | _ -> Alcotest.fail "expected Closed");
  Unix.close c.fd

let test_socket_overload_backpressure () =
  with_server ~args:[ "--queue"; "2" ] @@ fun path _pid ->
  let c = connect_retry path in
  (* One write carrying many pings: the loop admits up to the queue bound
     per pass and answers the rest with overloaded — the connection must
     survive and every request must get a correlated reply. *)
  let burst = 64 in
  let frames = Buffer.create 1024 in
  for i = 1 to burst do
    Buffer.add_string frames
      (P.encode_request { P.id = i; session = None; request = P.Ping; trace_id = None } ^ "\n")
  done;
  send_raw c (Buffer.contents frames);
  let pongs = ref 0 and overloads = ref 0 in
  for _ = 1 to burst do
    match P.parse_response (recv_line c) with
    | Ok { P.result = Ok P.Pong; _ } -> incr pongs
    | Ok { P.result = Error (P.Overloaded, _); id = Some _; _ } -> incr overloads
    | Ok r -> Alcotest.failf "unexpected reply %s" (P.encode_response r)
    | Error msg -> Alcotest.failf "bad reply: %s" msg
  done;
  Alcotest.(check int) "every frame answered" burst (!pongs + !overloads);
  Alcotest.(check bool) "backpressure engaged" true (!overloads > 0);
  Alcotest.(check bool) "some requests still served" true (!pongs > 0);
  (* And the connection is still usable afterwards. *)
  (match rpc c { P.id = 9999; session = None; request = P.Ping; trace_id = None } with
  | { P.result = Ok P.Pong; _ } -> ()
  | _ -> Alcotest.fail "connection should survive overload");
  Unix.close c.fd

let test_socket_shutdown_drains () =
  with_server ~args:[] @@ fun path pid ->
  let c = connect_retry path in
  (match rpc c { P.id = 1; session = None; request = P.Shutdown; trace_id = None } with
  | { P.result = Ok P.Bye; _ } -> ()
  | _ -> Alcotest.fail "expected Bye");
  Unix.close c.fd;
  let _, status = Unix.waitpid [] pid in
  match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.failf "server exited %d" n
  | _ -> Alcotest.fail "server did not exit cleanly"

let test_socket_loadgen () =
  with_server ~args:[] @@ fun path _pid ->
  ignore (connect_retry path).fd;
  let spec =
    { Loadgen.scenario = P.Paper; clients = 4; ops = 12; limit = None; keep_open = false }
  in
  let o = Loadgen.run_socket ~verify:true ~address:(Loop.Unix_path path) spec in
  Alcotest.(check int) "no protocol errors" 0 o.Loadgen.errors;
  Alcotest.(check (option int)) "byte-identical vs sequential replay" (Some 0)
    o.Loadgen.mismatches

let test_socket_sigterm_flushes_telemetry () =
  let tmp = Filename.get_temp_dir_name () in
  let stamp = Printf.sprintf "clio-term-%d" (Unix.getpid ()) in
  let log_path = Filename.concat tmp (stamp ^ ".log") in
  let metrics_path = Filename.concat tmp (stamp ^ ".metrics.json") in
  let dir = Filename.concat tmp (stamp ^ "-exemplars") in
  let cleanup () =
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ log_path; log_path ^ ".1"; metrics_path ];
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    end
  in
  cleanup ();
  Fun.protect ~finally:cleanup @@ fun () ->
  with_server
    ~args:
      [
        "--log"; log_path; "--slow-ms"; "0"; "--exemplars"; dir; "--metrics";
        metrics_path;
      ]
  @@ fun path pid ->
  let c = connect_retry path in
  let sid =
    match
      rpc c
        { P.id = 1; session = None; request = P.Open_session P.Paper;
          trace_id = Some "term-1" }
    with
    | { P.result = Ok (P.Opened { session; _ }); trace_id = Some "term-1"; _ }
      ->
        session
    | _ -> Alcotest.fail "expected traced Opened"
  in
  (match
     rpc c
       { P.id = 2; session = Some sid;
         request = P.Evaluate { what = P.Dg; limit = None };
         trace_id = Some "term-2" }
   with
  | { P.result = Ok (P.Evaluated _); trace_id = Some "term-2"; _ } -> ()
  | _ -> Alcotest.fail "expected traced Evaluated");
  Unix.kill pid Sys.sigterm;
  let _, status = Unix.waitpid [] pid in
  (match status with
  | Unix.WEXITED 143 -> ()
  | Unix.WEXITED n -> Alcotest.failf "expected exit 143, got %d" n
  | _ -> Alcotest.fail "server did not exit on SIGTERM");
  Unix.close c.fd;
  (* Telemetry survived the signal: the log ends with the shutdown record,
     every completion has its exemplar on disk, and the metrics file is a
     complete document. *)
  let docs = List.map Obs.Json.parse_exn (read_lines log_path) in
  let events =
    List.filter_map
      (fun d ->
        match Obs.Json.member "event" d with
        | Some (Obs.Json.Str e) -> Some (e, d)
        | _ -> None)
      docs
  in
  Alcotest.(check bool) "drain logged as sigterm" true
    (List.exists
       (fun (e, d) ->
         e = "server.drain"
         && Obs.Json.member "reason" d = Some (Obs.Json.Str "sigterm"))
       events);
  Alcotest.(check bool) "shutdown logged with exit 143" true
    (List.exists
       (fun (e, d) ->
         e = "server.shutdown"
         && Obs.Json.member "exit" d = Some (Obs.Json.Num 143.))
       events);
  let completes = List.filter (fun (e, _) -> e = "request.complete") events in
  Alcotest.(check int) "both requests completed in the log" 2
    (List.length completes);
  List.iter
    (fun (_, d) ->
      match Obs.Json.member "exemplar" d with
      | Some (Obs.Json.Str p) ->
          Alcotest.(check bool) (p ^ " exists") true (Sys.file_exists p)
      | _ -> Alcotest.fail "completion line lacks its exemplar")
    completes;
  match
    Obs.Metrics_export.of_string (String.concat "\n" (read_lines metrics_path))
  with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "metrics file incomplete after SIGTERM: %s" msg

(* Queue fairness: a connection flooding far past the queue bound must
   absorb the overload replies itself; a polite client sending one request
   at a time through the same storm must never see [overloaded] — the
   round-robin admission ring gives its one-deep inbox a turn every
   pass. *)
let test_socket_flood_fairness () =
  with_server ~args:[ "--queue"; "2" ] @@ fun path _pid ->
  let flooder = connect_retry path in
  let victim = connect_retry path in
  let burst = 64 in
  let frames = Buffer.create 1024 in
  for i = 1 to burst do
    Buffer.add_string frames
      (P.encode_request
         { P.id = i; session = None; request = P.Ping; trace_id = None }
      ^ "\n")
  done;
  send_raw flooder (Buffer.contents frames);
  (* While the flood drains, the victim converses normally. *)
  for i = 1 to 16 do
    match
      rpc victim
        { P.id = 1000 + i; session = None; request = P.Ping; trace_id = None }
    with
    | { P.result = Ok P.Pong; _ } -> ()
    | { P.result = Error (P.Overloaded, _); _ } ->
        Alcotest.fail "victim of another connection's flood got overloaded"
    | r -> Alcotest.failf "unexpected victim reply %s" (P.encode_response r)
  done;
  let pongs = ref 0 and overloads = ref 0 in
  for _ = 1 to burst do
    match P.parse_response (recv_line flooder) with
    | Ok { P.result = Ok P.Pong; _ } -> incr pongs
    | Ok { P.result = Error (P.Overloaded, _); _ } -> incr overloads
    | Ok r -> Alcotest.failf "unexpected reply %s" (P.encode_response r)
    | Error msg -> Alcotest.failf "bad reply: %s" msg
  done;
  Alcotest.(check int) "every flooded frame answered" burst
    (!pongs + !overloads);
  Alcotest.(check bool) "overload landed on the flooder" true (!overloads > 0);
  Unix.close flooder.fd;
  Unix.close victim.fd

(* Concurrency parity: the same multi-session load must produce evaluation
   digests byte-identical to the single-threaded sequential replay at
   every (workers, jobs) combination.  The interleaving across sessions is
   whatever the worker scheduling happens to produce — randomized by
   nature, re-rolled every run — while each client's own stream stays
   ordered; the digests (and the zero trace-echo-failure count) prove
   execution is deterministic per session regardless. *)
let test_socket_concurrency_parity () =
  List.iteri
    (fun i (workers, jobs) ->
      with_server ~jobs ~args:[ "--workers"; string_of_int workers ]
      @@ fun path _pid ->
      let probe = connect_retry path in
      Unix.close probe.fd;
      let spec =
        {
          Loadgen.scenario = P.Chain { n = 3; rows = 60; seed = 7 + i };
          clients = 4;
          ops = 12;
          limit = None;
          keep_open = false;
        }
      in
      let o = Loadgen.run_socket ~verify:true ~address:(Loop.Unix_path path) spec in
      let label fmt =
        Printf.sprintf "workers=%d jobs=%d: %s" workers jobs fmt
      in
      Alcotest.(check int) (label "no protocol errors") 0 o.Loadgen.errors;
      Alcotest.(check int) (label "trace ids echoed") 0 o.Loadgen.echo_failures;
      Alcotest.(check (option int))
        (label "digests byte-identical to sequential replay")
        (Some 0) o.Loadgen.mismatches)
    [ (1, 1); (1, 4); (4, 1); (4, 4) ]

(* Reply sequencing: frames pipelined on one connection — across two
   sessions pinned to different shards, plus sessionless pings — must be
   answered in exactly the order they were submitted, even when a
   4-worker server finishes them out of order. *)
let test_socket_pipelined_reply_order () =
  with_server ~args:[ "--workers"; "4" ] @@ fun path _pid ->
  let c = connect_retry path in
  let open_session id =
    match
      rpc c
        { P.id; session = None; request = P.Open_session P.Paper;
          trace_id = None }
    with
    | { P.result = Ok (P.Opened { session; _ }); _ } -> session
    | _ -> Alcotest.fail "expected Opened"
  in
  let sa = open_session 1 and sb = open_session 2 in
  let ids = List.init 12 (fun i -> 10 + i) in
  let frames = Buffer.create 1024 in
  List.iter
    (fun id ->
      let session, request =
        match id mod 3 with
        | 0 -> (None, P.Ping)
        | 1 -> (Some sa, P.Evaluate { what = P.Dg; limit = None })
        | _ -> (Some sb, P.Evaluate { what = P.Target; limit = None })
      in
      Buffer.add_string frames
        (P.encode_request { P.id; session; request; trace_id = None } ^ "\n"))
    ids;
  send_raw c (Buffer.contents frames);
  let got =
    List.map
      (fun _ ->
        match P.parse_response (recv_line c) with
        | Ok { P.id = Some id; P.result = Ok _; _ } -> id
        | Ok r -> Alcotest.failf "error reply %s" (P.encode_response r)
        | Error msg -> Alcotest.failf "bad reply: %s" msg)
      ids
  in
  Alcotest.(check (list int)) "replies in submission order" ids got;
  Unix.close c.fd

(* Drain under load: a burst of work immediately followed by [shutdown]
   must leave no request unanswered — everything parsed before the drain
   gets exactly one reply (executed or [unavailable], depending on when
   the shutdown verb lands on its shard) and the server exits 0. *)
let test_socket_drain_under_load () =
  with_server ~args:[ "--workers"; "4" ] @@ fun path pid ->
  let c = connect_retry path in
  let sid =
    match
      rpc c
        { P.id = 1; session = None; request = P.Open_session P.Paper;
          trace_id = None }
    with
    | { P.result = Ok (P.Opened { session; _ }); _ } -> session
    | _ -> Alcotest.fail "expected Opened"
  in
  let n = 16 in
  let frames = Buffer.create 1024 in
  for i = 1 to n do
    Buffer.add_string frames
      (P.encode_request
         { P.id = 10 + i; session = Some sid;
           request = P.Evaluate { what = P.Dg; limit = None };
           trace_id = None }
      ^ "\n")
  done;
  Buffer.add_string frames
    (P.encode_request
       { P.id = 100; session = None; request = P.Shutdown; trace_id = None }
    ^ "\n");
  send_raw c (Buffer.contents frames);
  let expected = List.init n (fun i -> 10 + 1 + i) @ [ 100 ] in
  List.iter
    (fun want ->
      match P.parse_response (recv_line c) with
      | Ok { P.id = Some id; P.result; _ } -> (
          Alcotest.(check int) "reply order under drain" want id;
          match (want, result) with
          | 100, Ok P.Bye -> ()
          | 100, _ -> Alcotest.fail "expected Bye to shutdown"
          | _, Ok (P.Evaluated _) | _, Error (P.Unavailable, _) -> ()
          | _, r ->
              Alcotest.failf "unexpected drain reply %s"
                (P.encode_response { P.id = Some id; result = r; trace_id = None }))
      | Ok r -> Alcotest.failf "reply without id %s" (P.encode_response r)
      | Error msg -> Alcotest.failf "bad reply: %s" msg)
    expected;
  Unix.close c.fd;
  let _, status = Unix.waitpid [] pid in
  match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED code -> Alcotest.failf "server exited %d" code
  | _ -> Alcotest.fail "server did not exit cleanly"

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "server"
    [
      ( "protocol",
        [
          tc "every request round-trips" `Quick test_request_roundtrip;
          tc "every response round-trips" `Quick test_response_roundtrip;
          tc "malformed requests are rejected with ids recovered" `Quick
            test_parse_request_rejects;
          tc "trace id is optional and wire-compatible" `Quick
            test_trace_id_wire_compat;
        ] );
      ( "service",
        [
          tc "session flow" `Quick test_service_session_flow;
          tc "isolation with a shared substrate" `Quick
            test_service_isolation_and_sharing;
          tc "branch, checkout, merge, diff over the protocol" `Quick
            test_service_branching_flow;
          tc "persist and restore across a cold registry" `Quick
            test_registry_persist_restore;
          tc "draining" `Quick test_service_draining;
          tc "loadgen in process, verified" `Quick
            test_loadgen_inprocess_verified;
        ] );
      ( "telemetry",
        [
          tc "trace ids echo only when sent" `Quick test_service_trace_echo;
          tc "event log + exemplars attribute each request" `Quick
            test_service_telemetry_attribution;
          tc "prometheus scrape over the protocol (golden families)" `Quick
            test_service_metrics_prom;
        ] );
      ( "socket",
        [
          tc "session over a unix socket" `Quick test_socket_session;
          tc "overload backpressure" `Quick test_socket_overload_backpressure;
          tc "shutdown request drains" `Quick test_socket_shutdown_drains;
          tc "socket loadgen verified" `Quick test_socket_loadgen;
          tc "SIGTERM exits 143 with telemetry flushed" `Quick
            test_socket_sigterm_flushes_telemetry;
        ] );
      ( "concurrency",
        [
          tc "flood overloads the flooder, not its neighbour" `Quick
            test_socket_flood_fairness;
          tc "digest parity across workers x jobs" `Quick
            test_socket_concurrency_parity;
          tc "pipelined replies keep submission order (workers=4)" `Quick
            test_socket_pipelined_reply_order;
          tc "drain under load answers everything, exits 0" `Quick
            test_socket_drain_under_load;
        ] );
    ]
