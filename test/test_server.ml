(* The server test suite: protocol round-trips for every request and
   response variant, registry/service semantics in process, and a
   socket-level integration test against a spawned clio_serve.

   The integration test starts the real binary with Unix.create_process
   (never fork: the test runner may hold a domain pool under CLIO_JOBS,
   and forking a multi-domain OCaml 5 process is undefined). *)

open Server
module P = Protocol
module V = Relational.Value

(* --- protocol round-trips --- *)

let all_requests : P.envelope list =
  let e ?session id request = { P.id; session; request } in
  [
    e 0 P.Ping;
    e 1 (P.Open_session P.Paper);
    e 2 (P.Open_session (P.Chain { n = 3; rows = 100; seed = 7 }));
    e 3 (P.Open_session (P.Star { leaves = 4; rows = 50; seed = 0 }));
    e ~session:"s1" 4 P.Close_session;
    e ~session:"s1" 5 (P.Evaluate { what = P.Dg; limit = None });
    e ~session:"s1" 6 (P.Evaluate { what = P.Fj; limit = Some 10 });
    e ~session:"s1" 7 (P.Evaluate { what = P.Target; limit = Some 0 });
    e ~session:"s1" 8 (P.Offer { start = "Children"; goal = "PhoneDir"; max_len = 2 });
    e ~session:"s1" 9 P.Rotate;
    e ~session:"s1" 10 (P.Select { entry = 3 });
    e ~session:"s1" 11 (P.Delete { entry = 2 });
    e ~session:"s1" 12 P.Confirm;
    e ~session:"s1" 13
      (P.Insert
         {
           relation = "Children";
           rows =
             [
               [| V.String "a\"b\\c"; V.Null; V.Int (-3) |];
               [| V.Float 1.5; V.Bool true; V.String "\n\t" |];
             ];
         });
    e ~session:"s1" 14 P.Rank;
    e ~session:"s2" 15 P.Stats;
    e 16 P.Stats;
    e 17 P.Shutdown;
  ]

let all_responses : P.response list =
  [
    P.ok 0 P.Pong;
    P.ok 1
      (P.Opened { session = "s1"; relations = [ "A"; "B" ]; version = 12 });
    P.ok 2 P.Closed;
    P.ok 3
      (P.Evaluated
         {
           what = P.Dg;
           count = 9;
           scheme = [ "C.id"; "P.id" ];
           digest = "d41d8cd98f00b204e9800998ecf8427e";
           rows = None;
         });
    P.ok 4
      (P.Evaluated
         {
           what = P.Target;
           count = 2;
           scheme = [ "name" ];
           digest = "x";
           rows = Some [ [ "Zoe"; "7" ]; [ "Ann"; "" ] ];
         });
    P.ok 5
      (P.Entries
         [
           {
             P.entry = 1;
             label = "walk via Parents2";
             graph = "Children -- Parents2";
             active = true;
             score = Some 3;
           };
           { P.entry = 2; label = ""; graph = "g"; active = false; score = None };
         ]);
    P.ok 6 (P.Inserted { fresh = true; version = 44 });
    P.ok 7 (P.Stats_report [ ("server.requests_total", 12.); ("x.y", 0.5) ]);
    P.ok 8 P.Bye;
    P.error (Some 9) P.Parse_error "bad frame";
    P.error None P.Bad_request "no op";
    P.error (Some 11) P.Unknown_session "no session \"s9\"";
    P.error (Some 12) P.Overloaded "queue full";
    P.error (Some 13) P.Unavailable "draining";
    P.error (Some 14) P.Internal "boom";
  ]

let test_request_roundtrip () =
  List.iter
    (fun env ->
      let line = P.encode_request env in
      match P.parse_request line with
      | Error (_, _, msg) -> Alcotest.failf "%s did not parse: %s" line msg
      | Ok env' ->
          Alcotest.(check string)
            (Printf.sprintf "request %d round-trips" env.P.id)
            line (P.encode_request env'))
    all_requests

let test_response_roundtrip () =
  List.iter
    (fun resp ->
      let line = P.encode_response resp in
      match P.parse_response line with
      | Error msg -> Alcotest.failf "%s did not parse: %s" line msg
      | Ok resp' ->
          Alcotest.(check string) "response round-trips" line
            (P.encode_response resp'))
    all_responses

let test_parse_request_rejects () =
  let cases =
    [
      ("not json", "{oops", P.Parse_error, None);
      ("not an object", "[1,2]", P.Bad_request, None);
      ("missing id", {|{"op":"ping"}|}, P.Bad_request, None);
      ("fractional id", {|{"id":1.5,"op":"ping"}|}, P.Bad_request, None);
      ("negative id", {|{"id":-1,"op":"ping"}|}, P.Bad_request, None);
      ("missing op", {|{"id":3}|}, P.Bad_request, Some 3);
      ("unknown op", {|{"id":4,"op":"frobnicate"}|}, P.Bad_request, Some 4);
      ( "bad scenario",
        {|{"id":5,"op":"open","scenario":{"kind":"cube"}}|},
        P.Bad_request,
        Some 5 );
      ( "bad what",
        {|{"id":6,"op":"evaluate","session":"s1","what":"qq"}|},
        P.Bad_request,
        Some 6 );
      ( "non-finite via huge literal is a number, id recovered",
        {|{"id":7,"op":"evaluate","session":"s1","what":"dg","limit":"x"}|},
        P.Bad_request,
        Some 7 );
    ]
  in
  List.iter
    (fun (label, line, code, id) ->
      match P.parse_request line with
      | Ok _ -> Alcotest.failf "%s unexpectedly parsed" label
      | Error (id', code', _) ->
          Alcotest.(check string) (label ^ ": code") (P.error_code_name code)
            (P.error_code_name code');
          Alcotest.(check (option int)) (label ^ ": id recovered") id id')
    cases

(* --- in-process service semantics --- *)

let with_service f =
  let registry = Registry.create ~jobs:1 () in
  f (Service.create registry)

let ok_result label = function
  | { P.result = Ok r; _ } -> r
  | { P.result = Error (code, msg); _ } ->
      Alcotest.failf "%s failed: %s (%s)" label (P.error_code_name code) msg

let test_service_session_flow () =
  with_service @@ fun service ->
  let next = ref 0 in
  let call ?session request =
    incr next;
    Service.handle service { P.id = !next; session; request }
  in
  let sid =
    match ok_result "open" (call (P.Open_session P.Paper)) with
    | P.Opened { session; relations; _ } ->
        Alcotest.(check bool) "paper relations present" true
          (List.mem "Children" relations);
        session
    | _ -> Alcotest.fail "expected Opened"
  in
  (match
     ok_result "offer"
       (call ~session:sid
          (P.Offer { start = "Children"; goal = "PhoneDir"; max_len = 2 }))
   with
  | P.Entries entries ->
      Alcotest.(check bool) "offer yields alternatives" true
        (List.length entries >= 2)
  | _ -> Alcotest.fail "expected Entries");
  let digest_of what =
    match
      ok_result "evaluate" (call ~session:sid (P.Evaluate { what; limit = Some 5 }))
    with
    | P.Evaluated info -> info
    | _ -> Alcotest.fail "expected Evaluated"
  in
  let dg = digest_of P.Dg in
  Alcotest.(check bool) "D(G) nonempty" true (dg.P.count > 0);
  Alcotest.(check int) "rows honoured" (min 5 dg.P.count)
    (List.length (Option.get dg.P.rows));
  (match ok_result "rank" (call ~session:sid P.Rank) with
  | P.Entries entries ->
      List.iter
        (fun e ->
          Alcotest.(check bool) "rank fills scores" true (e.P.score <> None))
        entries
  | _ -> Alcotest.fail "expected Entries");
  (* Unknown relation in insert → Bad_request, session survives. *)
  (match
     call ~session:sid (P.Insert { relation = "Nope"; rows = [ [| V.Int 1 |] ] })
   with
  | { P.result = Error (P.Bad_request, _); _ } -> ()
  | _ -> Alcotest.fail "bad insert should be Bad_request");
  (match ok_result "stats" (call ~session:sid P.Stats) with
  | P.Stats_report kvs ->
      let get k = List.assoc k kvs in
      Alcotest.(check bool) "session.requests counted" true
        (get "session.requests" >= 4.);
      Alcotest.(check bool) "session.errors counted" true
        (get "session.errors" >= 1.);
      Alcotest.(check bool) "per-verb counter present" true
        (List.mem_assoc "session.ops.evaluate" kvs)
  | _ -> Alcotest.fail "expected Stats_report");
  (match ok_result "server stats" (call P.Stats) with
  | P.Stats_report kvs ->
      Alcotest.(check bool) "server.sessions.open" true
        (List.assoc "server.sessions.open" kvs = 1.)
  | _ -> Alcotest.fail "expected Stats_report");
  (match call ~session:"s999" P.Rotate with
  | { P.result = Error (P.Unknown_session, _); _ } -> ()
  | _ -> Alcotest.fail "unknown session should be rejected");
  (match ok_result "close" (call ~session:sid P.Close_session) with
  | P.Closed -> ()
  | _ -> Alcotest.fail "expected Closed");
  match call ~session:sid P.Rotate with
  | { P.result = Error (P.Unknown_session, _); _ } -> ()
  | _ -> Alcotest.fail "closed session should be gone"

let test_service_isolation_and_sharing () =
  with_service @@ fun service ->
  let next = ref 0 in
  let call ?session request =
    incr next;
    Service.handle service { P.id = !next; session; request }
  in
  let open_one () =
    match ok_result "open" (call (P.Open_session P.Paper)) with
    | P.Opened { session; version; _ } -> (session, version)
    | _ -> Alcotest.fail "expected Opened"
  in
  let s1, v1 = open_one () in
  let s2, v2 = open_one () in
  Alcotest.(check int) "same resolved database version (shared cache keys)" v1
    v2;
  let digest sid =
    match
      ok_result "evaluate"
        (call ~session:sid (P.Evaluate { what = P.Dg; limit = None }))
    with
    | P.Evaluated info -> info.P.digest
    | _ -> Alcotest.fail "expected Evaluated"
  in
  let d1 = digest s1 in
  (* s2 inserts: it forks to a fresh version; s1's view must not move. *)
  (match
     ok_result "insert"
       (call ~session:s2
          (P.Insert
             {
               relation = "Children";
               rows =
                 [
                   [|
                     V.String "999"; V.String "New"; V.Int 1; V.String "103";
                     V.String "104"; V.String "d31";
                   |];
                 ];
             }))
   with
  | P.Inserted { fresh; version } ->
      Alcotest.(check bool) "insert forks a fresh version" true fresh;
      Alcotest.(check bool) "version advanced" true (version > v2)
  | _ -> Alcotest.fail "expected Inserted");
  Alcotest.(check string) "s1 unaffected by s2's insert" d1 (digest s1);
  Alcotest.(check bool) "s2 sees its own insert" true (digest s2 <> d1)

let test_service_draining () =
  with_service @@ fun service ->
  let resp = Service.handle service { P.id = 1; session = None; request = P.Shutdown } in
  (match resp.P.result with
  | Ok P.Bye -> ()
  | _ -> Alcotest.fail "expected Bye");
  Alcotest.(check bool) "draining flag set" true (Service.draining service);
  match Service.handle service { P.id = 2; session = None; request = P.Ping } with
  | { P.result = Error (P.Unavailable, _); _ } -> ()
  | _ -> Alcotest.fail "requests while draining should be Unavailable"

(* --- load generator, in process --- *)

let test_loadgen_inprocess_verified () =
  with_service @@ fun service ->
  let spec =
    { Loadgen.scenario = P.Paper; clients = 4; ops = 12; limit = None }
  in
  let o = Loadgen.run_inprocess ~verify:true service spec in
  Alcotest.(check int) "no protocol errors" 0 o.Loadgen.errors;
  Alcotest.(check (option int)) "byte-identical vs sequential replay" (Some 0)
    o.Loadgen.mismatches;
  Alcotest.(check bool) "every client evaluated" true
    (Array.for_all (fun ds -> List.length ds = 4) o.Loadgen.digests)

(* --- socket integration against a spawned clio_serve --- *)

(* Relative to the test binary, not the cwd, so both [dune runtest] and a
   by-hand [dune exec test/test_server.exe] find it. *)
let serve_exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "clio_serve.exe"))

type client = { fd : Unix.file_descr; mutable carry : string }

let connect_retry path =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> { fd; carry = "" }
    | exception Unix.Unix_error _ when Unix.gettimeofday () < deadline ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        ignore (Unix.select [] [] [] 0.05);
        go ()
  in
  go ()

let send_raw c s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write c.fd b !written (len - !written)
  done

let recv_line c =
  let rec go () =
    match String.index_opt c.carry '\n' with
    | Some i ->
        let line = String.sub c.carry 0 i in
        c.carry <- String.sub c.carry (i + 1) (String.length c.carry - i - 1);
        line
    | None ->
        let chunk = Bytes.create 65536 in
        let n = Unix.read c.fd chunk 0 (Bytes.length chunk) in
        if n = 0 then failwith "server closed connection";
        c.carry <- c.carry ^ Bytes.sub_string chunk 0 n;
        go ()
  in
  go ()

let rpc c env =
  send_raw c (P.encode_request env ^ "\n");
  match P.parse_response (recv_line c) with
  | Ok r -> r
  | Error msg -> failwith ("bad reply: " ^ msg)

let with_server ~args f =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "clio-test-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process serve_exe
      (Array.of_list
         ([ "clio_serve"; "serve"; "--socket"; path; "--jobs"; "1" ] @ args))
      null null Unix.stderr
  in
  Fun.protect
    ~finally:(fun () ->
      Unix.close null;
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> f path pid)

let test_socket_session () =
  with_server ~args:[] @@ fun path _pid ->
  let c = connect_retry path in
  (match rpc c { P.id = 1; session = None; request = P.Ping } with
  | { P.result = Ok P.Pong; id = Some 1 } -> ()
  | _ -> Alcotest.fail "expected pong");
  let sid =
    match rpc c { P.id = 2; session = None; request = P.Open_session P.Paper } with
    | { P.result = Ok (P.Opened { session; _ }); _ } -> session
    | _ -> Alcotest.fail "expected Opened"
  in
  let digest =
    match
      rpc c
        {
          P.id = 3;
          session = Some sid;
          request = P.Evaluate { what = P.Dg; limit = None };
        }
    with
    | { P.result = Ok (P.Evaluated info); _ } -> info.P.digest
    | _ -> Alcotest.fail "expected Evaluated"
  in
  Alcotest.(check int) "md5 hex digest" 32 (String.length digest);
  (* A malformed frame draws an error reply and the connection survives. *)
  send_raw c "{oops\n";
  (match P.parse_response (recv_line c) with
  | Ok { P.result = Error (P.Parse_error, _); _ } -> ()
  | _ -> Alcotest.fail "expected parse_error reply");
  (match rpc c { P.id = 4; session = Some sid; request = P.Confirm } with
  | { P.result = Ok (P.Entries _); _ } -> ()
  | _ -> Alcotest.fail "connection should survive the bad frame");
  (match rpc c { P.id = 5; session = Some sid; request = P.Stats } with
  | { P.result = Ok (P.Stats_report kvs); _ } ->
      Alcotest.(check bool) "session.requests visible" true
        (List.mem_assoc "session.requests" kvs)
  | _ -> Alcotest.fail "expected Stats_report");
  (match rpc c { P.id = 6; session = None; request = P.Stats } with
  | { P.result = Ok (P.Stats_report kvs); _ } ->
      Alcotest.(check bool) "queue gauges visible" true
        (List.mem_assoc "server.queue.capacity" kvs)
  | _ -> Alcotest.fail "expected server stats");
  (match rpc c { P.id = 7; session = Some sid; request = P.Close_session } with
  | { P.result = Ok P.Closed; _ } -> ()
  | _ -> Alcotest.fail "expected Closed");
  Unix.close c.fd

let test_socket_overload_backpressure () =
  with_server ~args:[ "--queue"; "2" ] @@ fun path _pid ->
  let c = connect_retry path in
  (* One write carrying many pings: the loop admits up to the queue bound
     per pass and answers the rest with overloaded — the connection must
     survive and every request must get a correlated reply. *)
  let burst = 64 in
  let frames = Buffer.create 1024 in
  for i = 1 to burst do
    Buffer.add_string frames
      (P.encode_request { P.id = i; session = None; request = P.Ping } ^ "\n")
  done;
  send_raw c (Buffer.contents frames);
  let pongs = ref 0 and overloads = ref 0 in
  for _ = 1 to burst do
    match P.parse_response (recv_line c) with
    | Ok { P.result = Ok P.Pong; _ } -> incr pongs
    | Ok { P.result = Error (P.Overloaded, _); id = Some _ } -> incr overloads
    | Ok r -> Alcotest.failf "unexpected reply %s" (P.encode_response r)
    | Error msg -> Alcotest.failf "bad reply: %s" msg
  done;
  Alcotest.(check int) "every frame answered" burst (!pongs + !overloads);
  Alcotest.(check bool) "backpressure engaged" true (!overloads > 0);
  Alcotest.(check bool) "some requests still served" true (!pongs > 0);
  (* And the connection is still usable afterwards. *)
  (match rpc c { P.id = 9999; session = None; request = P.Ping } with
  | { P.result = Ok P.Pong; _ } -> ()
  | _ -> Alcotest.fail "connection should survive overload");
  Unix.close c.fd

let test_socket_shutdown_drains () =
  with_server ~args:[] @@ fun path pid ->
  let c = connect_retry path in
  (match rpc c { P.id = 1; session = None; request = P.Shutdown } with
  | { P.result = Ok P.Bye; _ } -> ()
  | _ -> Alcotest.fail "expected Bye");
  Unix.close c.fd;
  let _, status = Unix.waitpid [] pid in
  match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.failf "server exited %d" n
  | _ -> Alcotest.fail "server did not exit cleanly"

let test_socket_loadgen () =
  with_server ~args:[] @@ fun path _pid ->
  ignore (connect_retry path).fd;
  let spec =
    { Loadgen.scenario = P.Paper; clients = 4; ops = 12; limit = None }
  in
  let o = Loadgen.run_socket ~verify:true ~address:(Loop.Unix_path path) spec in
  Alcotest.(check int) "no protocol errors" 0 o.Loadgen.errors;
  Alcotest.(check (option int)) "byte-identical vs sequential replay" (Some 0)
    o.Loadgen.mismatches

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "server"
    [
      ( "protocol",
        [
          tc "every request round-trips" `Quick test_request_roundtrip;
          tc "every response round-trips" `Quick test_response_roundtrip;
          tc "malformed requests are rejected with ids recovered" `Quick
            test_parse_request_rejects;
        ] );
      ( "service",
        [
          tc "session flow" `Quick test_service_session_flow;
          tc "isolation with a shared substrate" `Quick
            test_service_isolation_and_sharing;
          tc "draining" `Quick test_service_draining;
          tc "loadgen in process, verified" `Quick
            test_loadgen_inprocess_verified;
        ] );
      ( "socket",
        [
          tc "session over a unix socket" `Quick test_socket_session;
          tc "overload backpressure" `Quick test_socket_overload_backpressure;
          tc "shutdown request drains" `Quick test_socket_shutdown_drains;
          tc "socket loadgen verified" `Quick test_socket_loadgen;
        ] );
    ]
