(* Tests for the mapping operators: data walk (Section 5.1 / Figure 11 /
   E5.1), data chase (Section 5.2 / Figure 12 / E5.2), data trimming, the
   add-correspondence workflow (Figure 3) and continuous evolution
   (Section 5.3). *)

open Relational
open Clio
module Qgraph = Querygraph.Qgraph

let db = Paperdata.Figure1.database
let kb = Paperdata.Figure1.kb
let m_g1 = Paperdata.Running.mapping_g1

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let graph_signature g =
  Qgraph.edges g
  |> List.map (fun e -> Predicate.to_sql e.Qgraph.pred)
  |> List.sort compare

(* --- Data walk: Figure 11 / Example 5.1 --- *)

let walk_alts = lazy (Op_walk.walk_alternatives ~kb m_g1 ~start:"Children" ~goal:"PhoneDir" ~max_len:2 ())

let test_walk_produces_three_alternatives () =
  (* G2: via the existing fid edge (father's phone)
     G3: via a fresh Parents2 copy on mid (mother's phone)
     G4: directly on Children.ID = PhoneDir.ID *)
  Alcotest.(check int) "three alternatives" 3 (List.length (Lazy.force walk_alts))

let test_walk_alternative_shapes () =
  let sigs =
    Lazy.force walk_alts
    |> List.map (fun (a : Op_walk.alternative) ->
           graph_signature a.Op_walk.mapping.Mapping.graph)
  in
  let expect =
    [
      (* G2 *)
      [ "Children.fid = Parents.ID"; "Parents.ID = PhoneDir.ID" ];
      (* G3 *)
      [
        "Children.fid = Parents.ID";
        "Children.mid = Parents2.ID";
        "Parents2.ID = PhoneDir.ID";
      ];
      (* G4 *)
      [ "Children.ID = PhoneDir.ID"; "Children.fid = Parents.ID" ];
    ]
  in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (String.concat " & " e)
        true
        (List.exists (fun s -> List.sort compare e = s) sigs))
    expect

let test_walk_preserves_original_graph () =
  List.iter
    (fun (a : Op_walk.alternative) ->
      let g = a.Op_walk.mapping.Mapping.graph in
      (* G1 is an induced connected subgraph of every alternative. *)
      let induced = Qgraph.induced g [ "Children"; "Parents" ] in
      Alcotest.(check bool) "induced subgraph equals G1" true
        (Qgraph.equal induced m_g1.Mapping.graph))
    (Lazy.force walk_alts)

let test_walk_inherits_correspondences_and_filters () =
  let m =
    Mapping.add_source_filter m_g1
      (Predicate.Cmp (Predicate.Lt, Expr.col "Children" "age", Expr.Const (Value.Int 7)))
  in
  let alts = Op_walk.walk_alternatives ~kb m ~start:"Children" ~goal:"PhoneDir" ~max_len:2 () in
  List.iter
    (fun (a : Op_walk.alternative) ->
      Alcotest.(check int) "correspondences inherited" 3
        (List.length a.Op_walk.mapping.Mapping.correspondences);
      Alcotest.(check int) "filters inherited" 1
        (List.length a.Op_walk.mapping.Mapping.source_filters))
    alts

let test_walk_ranking_prefers_reuse () =
  (* The reuse alternative (G2, no new copy) must rank before the copy
     alternative (G3). *)
  let alts = Lazy.force walk_alts in
  let pos_of sig_ =
    let rec go i = function
      | [] -> -1
      | (a : Op_walk.alternative) :: rest ->
          if graph_signature a.Op_walk.mapping.Mapping.graph = List.sort compare sig_
          then i
          else go (i + 1) rest
    in
    go 0 alts
  in
  let g2 = pos_of [ "Children.fid = Parents.ID"; "Parents.ID = PhoneDir.ID" ] in
  let g3 =
    pos_of
      [
        "Children.fid = Parents.ID";
        "Children.mid = Parents2.ID";
        "Parents2.ID = PhoneDir.ID";
      ]
  in
  Alcotest.(check bool) "G2 before G3" true (g2 >= 0 && g3 >= 0 && g2 < g3)

let test_walk_unknown_start_rejected () =
  Alcotest.check_raises "unknown start"
    (Invalid_argument "Op_walk.walks: start node Zed not in graph") (fun () ->
      ignore (Op_walk.walks ~kb ~graph:m_g1.Mapping.graph ~start:"Zed" ~goal:"PhoneDir" ()))

let test_walk_description_readable () =
  let alts = Lazy.force walk_alts in
  Alcotest.(check bool) "mentions start" true
    (List.for_all
       (fun (a : Op_walk.alternative) -> contains a.Op_walk.description "Children")
       alts)

let test_walk_any_start_dedups () =
  let alts = Op_walk.walk_alternatives_any_start ~kb m_g1 ~goal:"PhoneDir" ~max_len:2 () in
  let sigs =
    List.map
      (fun (a : Op_walk.alternative) -> graph_signature a.Op_walk.mapping.Mapping.graph)
      alts
  in
  Alcotest.(check int) "unique graphs" (List.length sigs)
    (List.length (List.sort_uniq compare sigs))

(* --- Figure 3: two scenarios for affiliation via add-correspondence --- *)

let test_fig3_affiliation_scenarios () =
  let start =
    Mapping.make
      ~graph:(Qgraph.singleton ~alias:"Children" ~base:"Children")
      ~target:"Kids" ~target_cols:Paperdata.Running.kids_cols
      ~correspondences:
        [
          Correspondence.identity "ID" (Attr.make "Children" "ID");
          Correspondence.identity "name" (Attr.make "Children" "name");
        ]
      ()
  in
  let corr = Correspondence.identity "affiliation" (Attr.make "Parents" "affiliation") in
  match Op_correspondence.add ~kb ~max_len:1 start corr with
  | Op_correspondence.Alternatives alts ->
      Alcotest.(check int) "two scenarios (mid, fid)" 2 (List.length alts);
      List.iter
        (fun (a : Op_correspondence.alternative) ->
          match Mapping.correspondence_for a.Op_correspondence.mapping "affiliation" with
          | Some _ -> ()
          | None -> Alcotest.fail "correspondence not installed")
        alts;
      (* The two scenarios: via mid and via fid. *)
      let sigs =
        List.map
          (fun (a : Op_correspondence.alternative) ->
            graph_signature a.Op_correspondence.mapping.Mapping.graph)
          alts
      in
      Alcotest.(check bool) "mid scenario" true
        (List.mem [ "Children.mid = Parents.ID" ] sigs);
      Alcotest.(check bool) "fid scenario" true
        (List.mem [ "Children.fid = Parents.ID" ] sigs)
  | _ -> Alcotest.fail "expected Alternatives"

let test_add_correspondence_in_graph_updates () =
  let corr = Correspondence.identity "BusSchedule" (Attr.make "Parents" "address") in
  match Op_correspondence.add ~kb m_g1 corr with
  | Op_correspondence.Updated m ->
      Alcotest.(check bool) "installed" true
        (Option.is_some (Mapping.correspondence_for m "BusSchedule"))
  | _ -> Alcotest.fail "expected Updated"

let test_add_second_way_triggers_new_mapping () =
  (* affiliation is already mapped from Parents; a second, different way of
     computing it must spawn a new mapping (Example 6.2 behaviour). *)
  let corr = Correspondence.identity "affiliation" (Attr.make "Children" "docid") in
  match Op_correspondence.add ~kb m_g1 corr with
  | Op_correspondence.New_mapping (Op_correspondence.Updated m) ->
      (match Mapping.correspondence_for m "affiliation" with
      | Some c ->
          Alcotest.(check (list string)) "new source" [ "Children" ]
            (Correspondence.source_rels c)
      | None -> Alcotest.fail "missing correspondence");
      (* ID and name copied over. *)
      Alcotest.(check bool) "ID copied" true
        (Option.is_some (Mapping.correspondence_for m "ID"))
  | _ -> Alcotest.fail "expected New_mapping Updated"

(* --- Data chase: Figure 5 / 12 / Example 5.2 --- *)

let test_chase_002 () =
  let alts =
    Op_chase.chase (Eval_ctx.transient db) m_g1 ~attr:(Attr.make "Children" "ID")
      ~value:(Value.String "002")
  in
  (* SBPS.ID, XmasBar.sellerID, XmasBar.buyerID — Children itself excluded,
     and 002 does not occur elsewhere. *)
  Alcotest.(check int) "three scenarios" 3 (List.length alts);
  let rels =
    List.map (fun (a : Op_chase.alternative) -> a.Op_chase.occurrence.Op_chase.rel) alts
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "relations" [ "SBPS"; "XmasBar" ] rels

let test_chase_extends_with_equijoin () =
  let alts =
    Op_chase.chase (Eval_ctx.transient db) m_g1 ~attr:(Attr.make "Children" "ID")
      ~value:(Value.String "002")
  in
  let sbps =
    List.find
      (fun (a : Op_chase.alternative) ->
        String.equal a.Op_chase.occurrence.Op_chase.rel "SBPS")
      alts
  in
  let g = sbps.Op_chase.mapping.Mapping.graph in
  Alcotest.(check int) "one more node" 3 (Qgraph.node_count g);
  match Qgraph.find_edge g "Children" "SBPS" with
  | Some e ->
      Alcotest.(check string) "equijoin" "Children.ID = SBPS.ID"
        (Predicate.to_sql e.Qgraph.pred)
  | None -> Alcotest.fail "no edge to SBPS"

let test_chase_excludes_mapped_relations () =
  let alts =
    Op_chase.chase (Eval_ctx.transient db) m_g1 ~attr:(Attr.make "Children" "ID")
      ~value:(Value.String "001")
  in
  Alcotest.(check bool) "no Parents/Children targets" true
    (List.for_all
       (fun (a : Op_chase.alternative) ->
         let r = a.Op_chase.occurrence.Op_chase.rel in
         r <> "Children" && r <> "Parents")
       alts)

let test_chase_validates_illustration () =
  let exs = Mapping_eval.examples (Eval_ctx.transient db) m_g1 in
  (* 999 is a PhoneDir id, never a Children.ID in the illustration. *)
  Alcotest.(check bool) "rejects invisible value" true
    (try
       ignore
         (Op_chase.chase ~illustration:exs (Eval_ctx.transient db) m_g1 ~attr:(Attr.make "Children" "ID")
            ~value:(Value.String "999"));
       false
     with Invalid_argument _ -> true);
  (* 002 is visible: accepted. *)
  let alts =
    Op_chase.chase ~illustration:exs (Eval_ctx.transient db) m_g1 ~attr:(Attr.make "Children" "ID")
      ~value:(Value.String "002")
  in
  Alcotest.(check bool) "accepted" true (List.length alts > 0)

let test_chase_occurrences_anywhere () =
  let occs = Op_chase.occurrences_anywhere (Eval_ctx.transient db) (Value.String "002") in
  Alcotest.(check int) "four occurrences incl. Children" 4 (List.length occs)

(* --- Data trimming --- *)

let test_trim_add_source_filter_reports_changes () =
  let m = Paperdata.Running.mapping in
  let change =
    Op_trim.add_source_filter (Eval_ctx.transient db) (Mapping.remove_source_filter m Paperdata.Running.age_filter)
      Paperdata.Running.age_filter
  in
  (* Restoring age<7 flips Bob to negative. *)
  Alcotest.(check int) "one became negative" 1 (List.length change.Op_trim.became_negative);
  Alcotest.(check int) "none became positive" 0
    (List.length change.Op_trim.became_positive);
  let bob = List.hd change.Op_trim.became_negative in
  Alcotest.(check string) "it is Bob" "Bob"
    (Value.to_string bob.Example.target_tuple.(1))

let test_trim_remove_filter_restores () =
  let m = Paperdata.Running.mapping in
  let change = Op_trim.remove_source_filter (Eval_ctx.transient db) m Paperdata.Running.age_filter in
  Alcotest.(check int) "Bob back" 1 (List.length change.Op_trim.became_positive)

let test_trim_require_target_column () =
  let m = Paperdata.Running.mapping in
  let change = Op_trim.require_target_column (Eval_ctx.transient db) m "BusSchedule" in
  (* Ann (null BusSchedule) becomes negative. *)
  Alcotest.(check bool) "Ann flipped" true
    (List.exists
       (fun e -> Value.to_string e.Example.target_tuple.(1) = "Ann")
       change.Op_trim.became_negative)

(* --- Evolution (Section 5.3) --- *)

let test_evolution_continuations_exist () =
  let old_m = m_g1 in
  let old_ill = Clio.illustrate (Eval_ctx.transient db) old_m in
  let new_m = (List.hd (Lazy.force walk_alts)).Op_walk.mapping in
  let lookup = Database.find db in
  let old_scheme = Qgraph.scheme ~lookup old_m.Mapping.graph in
  let new_scheme = Qgraph.scheme ~lookup new_m.Mapping.graph in
  let new_universe = Mapping_eval.examples (Eval_ctx.transient db) new_m in
  List.iter
    (fun old_e ->
      Alcotest.(check bool) "has continuation" true
        (Evolution.continuations ~old_scheme ~new_scheme old_e new_universe <> []))
    old_ill

let test_evolve_is_sufficient_and_continuous () =
  let old_m = m_g1 in
  let old_ill = Clio.illustrate (Eval_ctx.transient db) old_m in
  let new_m = (List.hd (Lazy.force walk_alts)).Op_walk.mapping in
  let evolved = Evolution.evolve (Eval_ctx.transient db) ~old_mapping:old_m ~old_illustration:old_ill new_m in
  let universe = Mapping_eval.examples (Eval_ctx.transient db) new_m in
  Alcotest.(check bool) "sufficient" true
    (Sufficiency.is_sufficient ~universe ~target_cols:new_m.Mapping.target_cols evolved);
  Alcotest.(check bool) "continuous" true
    (Evolution.is_continuous (Eval_ctx.transient db) ~old_mapping:old_m ~old_illustration:old_ill
       ~new_mapping:new_m evolved)

let test_fresh_selection_may_break_continuity () =
  (* The continuity checker must actually discriminate: an illustration
     missing all continuations of some old example fails it. *)
  let old_m = m_g1 in
  let old_ill = Clio.illustrate (Eval_ctx.transient db) old_m in
  let new_m = (List.hd (Lazy.force walk_alts)).Op_walk.mapping in
  let empty_ill = [] in
  Alcotest.(check bool) "empty not continuous" false
    (old_ill <> []
    && Evolution.is_continuous (Eval_ctx.transient db) ~old_mapping:old_m ~old_illustration:old_ill
         ~new_mapping:new_m empty_ill)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "operators"
    [
      ( "walk",
        [
          tc "three alternatives (F11)" `Quick test_walk_produces_three_alternatives;
          tc "shapes G2-G4" `Quick test_walk_alternative_shapes;
          tc "G induced subgraph" `Quick test_walk_preserves_original_graph;
          tc "inherits V and C_S" `Quick test_walk_inherits_correspondences_and_filters;
          tc "ranking reuse first" `Quick test_walk_ranking_prefers_reuse;
          tc "unknown start" `Quick test_walk_unknown_start_rejected;
          tc "description" `Quick test_walk_description_readable;
          tc "any start dedup" `Quick test_walk_any_start_dedups;
        ] );
      ( "correspondence",
        [
          tc "F3 affiliation scenarios" `Quick test_fig3_affiliation_scenarios;
          tc "in-graph update" `Quick test_add_correspondence_in_graph_updates;
          tc "second way spawns mapping" `Quick test_add_second_way_triggers_new_mapping;
        ] );
      ( "chase",
        [
          tc "E5.2 chase 002" `Quick test_chase_002;
          tc "equijoin extension" `Quick test_chase_extends_with_equijoin;
          tc "excludes mapped" `Quick test_chase_excludes_mapped_relations;
          tc "validates illustration" `Quick test_chase_validates_illustration;
          tc "occurrences anywhere" `Quick test_chase_occurrences_anywhere;
        ] );
      ( "trim",
        [
          tc "add source filter" `Quick test_trim_add_source_filter_reports_changes;
          tc "remove restores" `Quick test_trim_remove_filter_restores;
          tc "require column" `Quick test_trim_require_target_column;
        ] );
      ( "evolution",
        [
          tc "continuations exist" `Quick test_evolution_continuations_exist;
          tc "evolve sufficient+continuous" `Quick test_evolve_is_sufficient_and_continuous;
          tc "checker discriminates" `Quick test_fresh_selection_may_break_continuity;
        ] );
    ]
