(* Tests for lib/obs: span nesting and ordering, GC-allocation deltas,
   counter behaviour under enable/disable, histogram percentiles, trace
   export (including a real JSON parse of the Chrome trace_event output
   with hostile attribute values), the Metrics_export round-trip, the
   Bench_compare regression decision, and an integration check that the
   instrumented pipeline actually emits counters on the paper database. *)

let setup () =
  Obs.enable ();
  Obs.reset ()

let teardown () =
  Obs.disable ();
  Obs.reset ()

let with_obs f () =
  setup ();
  Fun.protect ~finally:teardown f

(* Exporter output is validated by actually parsing it. *)
open Obs.Json

let parse_json = Obs.Json.parse_exn
let member = Obs.Json.member

(* --- spans --- *)

let test_span_nesting =
  with_obs @@ fun () ->
  let r =
    Obs.with_span "outer" (fun () ->
        Obs.with_span "first" (fun () -> ());
        Obs.with_span "second" (fun () -> 41 + 1))
  in
  Alcotest.(check int) "with_span returns the thunk's value" 42 r;
  match Obs.finished_spans () with
  | [ outer ] ->
      Alcotest.(check string) "root name" "outer" (Obs.Span.name outer);
      Alcotest.(check (list string))
        "children in execution order" [ "first"; "second" ]
        (List.map Obs.Span.name (Obs.Span.children outer));
      List.iter
        (fun child ->
          Alcotest.(check bool) "child within parent interval" true
            (Obs.Span.start_s child >= Obs.Span.start_s outer
            && Obs.Span.stop_s child <= Obs.Span.stop_s outer))
        (Obs.Span.children outer);
      Alcotest.(check bool) "duration non-negative" true
        (Obs.Span.duration_s outer >= 0.)
  | roots ->
      Alcotest.failf "expected exactly one root, got %d" (List.length roots)

let test_span_sequencing =
  with_obs @@ fun () ->
  Obs.with_span "a" (fun () -> ());
  Obs.with_span "b" (fun () -> ());
  Alcotest.(check (list string))
    "roots in completion order" [ "a"; "b" ]
    (List.map Obs.Span.name (Obs.finished_spans ()))

let test_span_exception_safety =
  with_obs @@ fun () ->
  (try Obs.with_span "boom" (fun () -> failwith "inner") with Failure _ -> ());
  Obs.with_span "after" (fun () -> ());
  Alcotest.(check (list string))
    "span closed by the exception, stack not corrupted" [ "boom"; "after" ]
    (List.map Obs.Span.name (Obs.finished_spans ()))

let test_span_attrs =
  with_obs @@ fun () ->
  Obs.with_span ~attrs:[ ("k", "v") ] "s" (fun () -> Obs.set_attr "late" "x");
  match Obs.finished_spans () with
  | [ s ] ->
      Alcotest.(check (list (pair string string)))
        "attrs in attachment order"
        [ ("k", "v"); ("late", "x") ]
        (Obs.Span.attrs s)
  | _ -> Alcotest.fail "expected one root"

let test_span_disabled () =
  Obs.disable ();
  Obs.reset ();
  let r = Obs.with_span "ghost" (fun () -> 7) in
  Alcotest.(check int) "thunk still runs" 7 r;
  Alcotest.(check int) "nothing recorded" 0
    (List.length (Obs.finished_spans ()))

(* --- counters --- *)

let test_counter_enable_disable () =
  Obs.disable ();
  Obs.reset ();
  let c = Obs.Counter.make "test.counter" in
  Obs.count c;
  Obs.add c 10;
  Alcotest.(check int) "disabled increments are dropped" 0 (Obs.Counter.value c);
  Obs.enable ();
  Obs.count c;
  Obs.add c 10;
  Alcotest.(check int) "enabled increments accumulate" 11 (Obs.Counter.value c);
  Obs.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Counter.value c);
  Obs.disable ()

let test_counter_registry () =
  let a = Obs.Counter.make "test.same" in
  let b = Obs.Counter.make "test.same" in
  Alcotest.(check bool) "same name, same handle" true (a == b);
  Alcotest.(check int)
    "Metrics.value reads by name (0 after reset)"
    (Obs.Counter.value a)
    (Obs.Metrics.value "test.same")

let test_histogram =
  with_obs @@ fun () ->
  let h = Obs.Histogram.make "test.hist" in
  List.iter (Obs.observe h) [ 2.0; 4.0; 6.0 ];
  let s = Obs.Histogram.stats h in
  Alcotest.(check int) "n" 3 s.Obs.Histogram.n;
  Alcotest.(check (float 1e-9)) "mean" 4.0 s.Obs.Histogram.mean;
  Alcotest.(check (float 1e-9)) "min" 2.0 s.Obs.Histogram.min;
  Alcotest.(check (float 1e-9)) "max" 6.0 s.Obs.Histogram.max

(* --- trace export --- *)

let sample_trace () =
  Obs.with_span "root" (fun () ->
      Obs.with_span ~attrs:[ ("key", "va\"lue\n") ] "child" (fun () -> ()));
  Obs.with_span "tail" (fun () -> ());
  Obs.finished_spans ()

let test_chrome_trace_valid_json =
  with_obs @@ fun () ->
  let spans = sample_trace () in
  let text = Obs.Trace_export.to_chrome spans in
  match parse_json text with
  | Arr events ->
      Alcotest.(check int) "one X event per span" 3 (List.length events);
      List.iter
        (fun e ->
          (match member "ph" e with
          | Some (Str "X") -> ()
          | _ -> Alcotest.fail "every event is a complete (X) event");
          (match member "dur" e with
          | Some (Num d) ->
              Alcotest.(check bool) "dur >= 0" true (d >= 0.)
          | _ -> Alcotest.fail "event lacks dur");
          match member "ts" e with
          | Some (Num _) -> ()
          | _ -> Alcotest.fail "event lacks ts")
        events;
      let names =
        List.filter_map
          (fun e ->
            match member "name" e with Some (Str s) -> Some s | _ -> None)
          events
      in
      Alcotest.(check (list string))
        "preorder: parent before child" [ "root"; "child"; "tail" ] names;
      (* Nesting is encoded by interval containment for X events. *)
      let find name =
        List.find
          (fun e -> member "name" e = Some (Str name))
          events
      in
      let num k e = match member k e with Some (Num f) -> f | _ -> nan in
      let root = find "root" and child = find "child" in
      Alcotest.(check bool) "child interval inside root interval" true
        (num "ts" child >= num "ts" root
        && num "ts" child +. num "dur" child
           <= num "ts" root +. num "dur" root +. 1.0 (* μs rounding *));
      (* Attribute escaping survives a JSON round-trip.  (args also carries
         the span's GC-allocation fields, so look the key up.) *)
      (match member "args" child with
      | Some args -> (
          match member "key" args with
          | Some (Str v) ->
              Alcotest.(check string) "escaped attr value" "va\"lue\n" v
          | _ -> Alcotest.fail "child args lack the attribute")
      | None -> Alcotest.fail "child lacks args")
  | _ -> Alcotest.fail "chrome trace is not a JSON array"

let test_json_lines_valid =
  with_obs @@ fun () ->
  let spans = sample_trace () in
  let lines =
    Obs.Trace_export.to_json_lines spans
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "one line per span" 3 (List.length lines);
  let depths =
    List.map
      (fun l ->
        match member "depth" (parse_json l) with
        | Some (Num d) -> int_of_float d
        | _ -> Alcotest.fail "line lacks depth")
      lines
  in
  Alcotest.(check (list int)) "depths" [ 0; 1; 0 ] depths

let test_text_export =
  with_obs @@ fun () ->
  let spans = sample_trace () in
  let text = Obs.Trace_export.to_text spans in
  Alcotest.(check bool) "mentions root" true
    (String.length text > 0
    && String.split_on_char '\n' text
       |> List.exists (fun l -> String.length l > 0 && l.[0] <> ' '))

(* Every attribute value a hostile caller could pick must survive the
   emit→parse round-trip byte for byte: quotes, backslashes, the C0
   controls (emitted as \uXXXX), DEL, multi-byte UTF-8, and a lone quote
   at either end. *)
let hostile_values =
  [
    "plain";
    "va\"lue";
    "back\\slash";
    "new\nline and \ttab and \rcr";
    "nul\000byte";
    "bell\007 esc\027 unit\031sep";
    "\127del";
    "utf8: é ≤ λ 🙂";
    "\"";
    "\\u0041 is not an escape in the source";
    "trailing backslash \\";
  ]

let test_chrome_trace_hostile_attrs =
  with_obs @@ fun () ->
  Obs.with_span
    ~attrs:(List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) hostile_values)
    "hostile"
    (fun () -> ());
  let text = Obs.Trace_export.to_chrome (Obs.finished_spans ()) in
  match parse_json text with
  | Arr [ e ] ->
      let args =
        match member "args" e with
        | Some a -> a
        | None -> Alcotest.fail "event lacks args"
      in
      List.iteri
        (fun i v ->
          match member (Printf.sprintf "k%d" i) args with
          | Some (Str v') ->
              Alcotest.(check string)
                (Printf.sprintf "hostile value %d round-trips" i)
                v v'
          | _ -> Alcotest.failf "attribute k%d missing" i)
        hostile_values
  | _ -> Alcotest.fail "expected a one-event trace"

let test_json_escape_controls () =
  Alcotest.(check string)
    "C0 controls use \\uXXXX (DEL needs no escape)"
    "\"a\\u0000b\\u001fc\127d\""
    (Obs.Json.quote "a\000b\031c\127d");
  Alcotest.(check string)
    "named escapes preferred" {|"\n\r\t\\\""|}
    (Obs.Json.quote "\n\r\t\\\"")

(* --- histogram percentiles --- *)

let test_histogram_percentiles =
  with_obs @@ fun () ->
  let h = Obs.Histogram.make "test.percentiles" in
  (* 1..100, shuffled deterministically: nearest-rank pN of 1..100 is
     exactly N. *)
  let values = List.init 100 (fun i -> float_of_int (((i * 37) mod 100) + 1)) in
  List.iter (Obs.observe h) values;
  let s = Obs.Histogram.stats h in
  Alcotest.(check int) "n" 100 s.Obs.Histogram.n;
  Alcotest.(check (float 1e-9)) "p50" 50. s.Obs.Histogram.p50;
  Alcotest.(check (float 1e-9)) "p90" 90. s.Obs.Histogram.p90;
  Alcotest.(check (float 1e-9)) "p99" 99. s.Obs.Histogram.p99;
  Alcotest.(check (float 1e-9)) "max" 100. s.Obs.Histogram.max;
  Alcotest.(check (float 1e-9)) "mean" 50.5 s.Obs.Histogram.mean;
  Alcotest.(check (float 1e-9)) "direct percentile query" 25.
    (Obs.Histogram.percentile h 25.)

let test_histogram_percentiles_small =
  with_obs @@ fun () ->
  let h = Obs.Histogram.make "test.single" in
  Obs.observe h 42.;
  let s = Obs.Histogram.stats h in
  List.iter
    (fun (name, v) -> Alcotest.(check (float 1e-9)) name 42. v)
    [
      ("p50 of singleton", s.Obs.Histogram.p50);
      ("p90 of singleton", s.Obs.Histogram.p90);
      ("p99 of singleton", s.Obs.Histogram.p99);
      ("min of singleton", s.Obs.Histogram.min);
      ("max of singleton", s.Obs.Histogram.max);
    ];
  let h2 = Obs.Histogram.make "test.pair" in
  Obs.observe h2 1.;
  Obs.observe h2 3.;
  (* nearest-rank: rank ceil(0.5*2)=1 -> 1.0; ceil(0.9*2)=2 -> 3.0 *)
  Alcotest.(check (float 1e-9)) "p50 of pair" 1. (Obs.Histogram.percentile h2 50.);
  Alcotest.(check (float 1e-9)) "p90 of pair" 3. (Obs.Histogram.percentile h2 90.)

(* --- histogram reservoir bounds --- *)

let test_histogram_reservoir_bounded =
  with_obs @@ fun () ->
  let cap = Obs.Histogram.reservoir_cap in
  let h = Obs.Histogram.make "test.reservoir" in
  let n = (3 * cap) + 17 in
  (* 1..n shuffled deterministically; a co-prime stride visits each once. *)
  let stride = 104729 in
  for i = 0 to n - 1 do
    Obs.observe h (float_of_int ((i * stride mod n) + 1))
  done;
  let s = Obs.Histogram.stats h in
  Alcotest.(check int) "count stays exact past the cap" n s.Obs.Histogram.n;
  Alcotest.(check (float 1e-6)) "sum stays exact"
    (float_of_int (n * (n + 1) / 2))
    s.Obs.Histogram.sum;
  Alcotest.(check (float 1e-9)) "min stays exact" 1. s.Obs.Histogram.min;
  Alcotest.(check (float 1e-9)) "max stays exact" (float_of_int n)
    s.Obs.Histogram.max;
  Alcotest.(check int) "retention bounded at reservoir_cap" cap
    (Obs.Histogram.sample_count h);
  (* The reservoir is a uniform sample of 1..n: its median estimates n/2.
     With cap=4096 the estimate concentrates well within ±10% — this is a
     determinism-backed bound (the per-name RNG stream is fixed), not a
     probabilistic flake. *)
  let p50 = s.Obs.Histogram.p50 and mid = float_of_int n /. 2. in
  Alcotest.(check bool)
    (Printf.sprintf "reservoir p50 %.0f within 10%% of %.0f" p50 mid)
    true
    (Float.abs (p50 -. mid) <= 0.1 *. mid)

let test_histogram_exact_below_cap =
  with_obs @@ fun () ->
  let h = Obs.Histogram.make "test.exact" in
  let n = Obs.Histogram.reservoir_cap in
  for i = n downto 1 do
    Obs.observe h (float_of_int i)
  done;
  Alcotest.(check int) "all samples retained at the cap" n
    (Obs.Histogram.sample_count h);
  (* Nearest-rank percentiles of 1..n are exact integers. *)
  Alcotest.(check (float 1e-9)) "p50 exact"
    (Float.of_int (int_of_float (ceil (0.50 *. float_of_int n))))
    (Obs.Histogram.percentile h 50.);
  Alcotest.(check (float 1e-9)) "p99 exact"
    (Float.of_int (int_of_float (ceil (0.99 *. float_of_int n))))
    (Obs.Histogram.percentile h 99.)

let test_histogram_bucket_counts =
  with_obs @@ fun () ->
  let h = Obs.Histogram.make "test.buckets" in
  let bounds = Obs.Histogram.bucket_bounds in
  (* One observation exactly on each bound (le is inclusive), plus two
     beyond the last bound (the +Inf overflow slot). *)
  Array.iter (Obs.observe h) bounds;
  Obs.observe h (bounds.(Array.length bounds - 1) *. 10.);
  Obs.observe h infinity;
  let counts = Obs.Histogram.bucket_counts h in
  Alcotest.(check int) "one slot per bound plus overflow"
    (Array.length bounds + 1)
    (Array.length counts);
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "bucket %d" i)
        (if i = Array.length bounds then 2 else 1)
        c)
    counts;
  Alcotest.(check bool) "bounds strictly increasing" true
    (let ok = ref true in
     Array.iteri
       (fun i b -> if i > 0 && b <= bounds.(i - 1) then ok := false)
       bounds;
     !ok)

(* --- Prometheus exposition --- *)

let test_prom_sanitize () =
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) input expected (Obs.Prom_export.sanitize_name input))
    [
      ("fj.hits", "clio_fj_hits");
      ("server.queue-depth", "clio_server_queue_depth");
      ("0day", "clio_0day");
      ("weird näme", "clio_weird_n__me");
      ("already_ok:colons", "clio_already_ok:colons");
    ];
  Alcotest.(check string) "label escaping"
    "a\\\\b\\\"c\\nd"
    (Obs.Prom_export.escape_label_value "a\\b\"c\nd")

let test_prom_render_validates =
  with_obs @@ fun () ->
  Obs.add Obs.Names.index_probes 41;
  let h = Obs.Histogram.make "test.prom" in
  List.iter (Obs.observe h) [ 0.02; 0.3; 7.; 1e6 ];
  let gauges =
    [
      { Obs.Prom_export.gauge_name = "sessions.open"; labels = []; value = 3. };
      {
        Obs.Prom_export.gauge_name = "session.requests";
        labels = [ ("session", "s\"1\n") ];
        value = 12.;
      };
    ]
  in
  let text = Obs.Prom_export.render ~gauges () in
  (match Obs.Prom_export.validate text with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "rendered exposition invalid: %s" msg);
  let has needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter family present" true
    (has "clio_fulldisj_index_probes_total 41");
  Alcotest.(check bool) "histogram TYPE line" true
    (has "# TYPE clio_test_prom_ms histogram");
  Alcotest.(check bool) "+Inf bucket carries total count" true
    (has "clio_test_prom_ms_bucket{le=\"+Inf\"} 4");
  Alcotest.(check bool) "count line" true (has "clio_test_prom_ms_count 4");
  Alcotest.(check bool) "plain gauge" true (has "clio_sessions_open 3");
  Alcotest.(check bool) "labeled gauge with escaping" true
    (has "clio_session_requests{session=\"s\\\"1\\n\"} 12")

let test_prom_validate_rejects () =
  List.iter
    (fun (label, doc) ->
      match Obs.Prom_export.validate doc with
      | Ok () -> Alcotest.failf "%s unexpectedly valid" label
      | Error _ -> ())
    [
      ("bad metric name", "clio_bad-name 1\n");
      ("unparseable value", "clio_x notanumber\n");
      ( "non-monotone buckets",
        "clio_h_ms_bucket{le=\"1\"} 5\nclio_h_ms_bucket{le=\"2\"} 3\n\
         clio_h_ms_bucket{le=\"+Inf\"} 5\nclio_h_ms_count 5\n" );
      ( "bounds out of order",
        "clio_h_ms_bucket{le=\"2\"} 1\nclio_h_ms_bucket{le=\"1\"} 2\n\
         clio_h_ms_bucket{le=\"+Inf\"} 2\nclio_h_ms_count 2\n" );
      ( "missing +Inf",
        "clio_h_ms_bucket{le=\"1\"} 1\nclio_h_ms_count 1\n" );
      ( "+Inf disagrees with count",
        "clio_h_ms_bucket{le=\"1\"} 1\nclio_h_ms_bucket{le=\"+Inf\"} 1\n\
         clio_h_ms_count 2\n" );
    ];
  match Obs.Prom_export.validate "# just a comment\n\n" with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "comments/blank lines must pass: %s" msg

(* --- event log --- *)

let with_temp_log f () =
  let path = Filename.temp_file "clio_test_log" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".1"; path ^ ".2"; path ^ ".3" ])
    (fun () -> f path)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_event_log_schema =
  with_temp_log @@ fun path ->
  let log = Obs.Event_log.create ~level:Obs.Event_log.Debug path in
  Obs.Event_log.log log Obs.Event_log.Info "request.complete"
    [ ("trace_id", Str "t-1"); ("latency_ms", Num 1.5) ];
  Obs.Event_log.log log Obs.Event_log.Warn "request.overload" [];
  Obs.Event_log.close log;
  match List.map parse_json (read_lines path) with
  | [ first; second ] ->
      Alcotest.(check bool) "v is the schema version" true
        (member "v" first
        = Some (Num (float_of_int Obs.Event_log.schema_version)));
      (match member "ts" first with
      | Some (Num ts) ->
          Alcotest.(check bool) "ts is a plausible epoch in ms" true
            (ts > 1e12 && Float.is_integer ts)
      | _ -> Alcotest.fail "first line lacks ts");
      Alcotest.(check bool) "level rendered" true
        (member "level" first = Some (Str "info"));
      Alcotest.(check bool) "event rendered" true
        (member "event" first = Some (Str "request.complete"));
      Alcotest.(check bool) "custom fields follow" true
        (member "trace_id" first = Some (Str "t-1")
        && member "latency_ms" first = Some (Num 1.5));
      Alcotest.(check bool) "second line is the warn" true
        (member "level" second = Some (Str "warn"))
  | lines -> Alcotest.failf "expected 2 lines, got %d" (List.length lines)

let test_event_log_level_filter =
  with_temp_log @@ fun path ->
  let log = Obs.Event_log.create ~level:Obs.Event_log.Warn path in
  Alcotest.(check bool) "debug below threshold" false
    (Obs.Event_log.would_log log Obs.Event_log.Debug);
  Alcotest.(check bool) "error above threshold" true
    (Obs.Event_log.would_log log Obs.Event_log.Error);
  Obs.Event_log.log log Obs.Event_log.Debug "dropped" [];
  Obs.Event_log.log log Obs.Event_log.Info "dropped too" [];
  Obs.Event_log.log log Obs.Event_log.Error "kept" [];
  Obs.Event_log.close log;
  Alcotest.(check int) "only the error line written" 1
    (List.length (read_lines path))

let test_event_log_rotation =
  with_temp_log @@ fun path ->
  (* Tiny threshold: every couple of lines forces a rotation; with keep=2
     only the live file and path.1 may exist afterwards. *)
  let log = Obs.Event_log.create ~max_bytes:256 ~keep:2 path in
  for i = 1 to 50 do
    Obs.Event_log.log log Obs.Event_log.Info "tick"
      [ ("i", Num (float_of_int i)); ("pad", Str (String.make 40 'x')) ]
  done;
  Obs.Event_log.close log;
  Alcotest.(check bool) "live file exists" true (Sys.file_exists path);
  Alcotest.(check bool) "one rotated file kept" true
    (Sys.file_exists (path ^ ".1"));
  Alcotest.(check bool) "older rotations dropped" false
    (Sys.file_exists (path ^ ".2"));
  (* Both surviving files still hold only complete, parseable lines. *)
  List.iter
    (fun p ->
      List.iter (fun l -> ignore (parse_json l)) (read_lines p))
    [ path; path ^ ".1" ]

let test_event_log_empty_path () =
  match Obs.Event_log.create "" with
  | exception Invalid_argument _ -> ()
  | log ->
      Obs.Event_log.close log;
      Alcotest.fail "empty path accepted"

(* Any event name and field set a caller could pick must produce a line
   that parses back to exactly the fields written (the strict Json printer
   is doing the escaping). *)
let fuzz_event_log_roundtrip =
  QCheck2.Test.make ~name:"event-log lines round-trip through strict Json"
    ~count:100
    QCheck2.Gen.(
      pair (string_size (int_bound 20))
        (small_list (pair (string_size (int_bound 10)) (string_size (int_bound 30)))))
    (fun (event, fields) ->
      (* Field keys must not collide with the four standard keys or each
         other — the log writes them verbatim. *)
      let reserved = [ "v"; "ts"; "level"; "event" ] in
      let fields =
        List.filteri
          (fun i (k, _) ->
            (not (List.mem k reserved))
            && not (List.exists (fun (k', _) -> k' = k)
                      (List.filteri (fun j _ -> j < i) fields)))
          fields
      in
      let path = Filename.temp_file "clio_fuzz_log" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let log = Obs.Event_log.create path in
          Obs.Event_log.log log Obs.Event_log.Info event
            (List.map (fun (k, v) -> (k, Obs.Json.Str v)) fields);
          Obs.Event_log.close log;
          match read_lines path with
          | [ line ] ->
              let doc = parse_json line in
              member "event" doc = Some (Str event)
              && List.for_all
                   (fun (k, v) -> member k doc = Some (Str v))
                   fields
          | _ -> false))

(* --- request scopes --- *)

let test_scope_captures =
  with_obs @@ fun () ->
  let c = Obs.Counter.make "test.scope.counter" in
  Alcotest.(check (option string)) "no scope outside run" None
    (Obs.Scope.current ());
  let v, record =
    Obs.Scope.run ~attrs:[ ("op", "ping") ] ~trace_id:"tid-1" "server.request"
      (fun () ->
        Alcotest.(check (option string)) "current inside the scope"
          (Some "tid-1") (Obs.Scope.current ());
        Obs.add c 3;
        Obs.with_span "inner.work" (fun () -> ());
        17)
  in
  Alcotest.(check int) "thunk value" 17 v;
  Alcotest.(check string) "trace id" "tid-1" record.Obs.Scope.trace_id;
  Alcotest.(check bool) "duration measured" true
    (record.Obs.Scope.duration_ms >= 0.);
  Alcotest.(check (option int)) "counter delta captured" (Some 3)
    (List.assoc_opt "test.scope.counter" record.Obs.Scope.deltas);
  (match record.Obs.Scope.root with
  | Some root ->
      Alcotest.(check string) "captured root name" "server.request"
        (Obs.Span.name root);
      Alcotest.(check (option string)) "trace id attr on the root"
        (Some "tid-1")
        (List.assoc_opt "trace_id" (Obs.Span.attrs root));
      Alcotest.(check (list string)) "subtree travels with the root"
        [ "inner.work" ]
        (List.map Obs.Span.name (Obs.Span.children root))
  | None -> Alcotest.fail "enabled scope must capture its root");
  (* The captured subtree is detached: a long-lived server's global trace
     does not grow per request. *)
  Alcotest.(check int) "global trace empty after the scope" 0
    (List.length (Obs.finished_spans ()));
  Alcotest.(check (option string)) "scope popped" None (Obs.Scope.current ())

let test_scope_disabled_is_cheap () =
  Obs.disable ();
  Obs.reset ();
  let v, record = Obs.Scope.run ~trace_id:"t" "req" (fun () -> 5) in
  Alcotest.(check int) "thunk runs" 5 v;
  Alcotest.(check bool) "no captured root when disabled" true
    (record.Obs.Scope.root = None);
  Alcotest.(check int) "no deltas when disabled" 0
    (List.length record.Obs.Scope.deltas)

let test_scope_fresh_ids_unique () =
  let ids = List.init 1000 (fun _ -> Obs.Scope.fresh_id ()) in
  Alcotest.(check int) "1000 fresh ids, 1000 distinct" 1000
    (List.length (List.sort_uniq compare ids))

(* --- allocation-aware spans --- *)

(* Keep the allocation out of the minor heap's noise floor. *)
let churn words =
  let rec go acc i = if i = 0 then acc else go (i :: acc) (i - 1) in
  ignore (Sys.opaque_identity (go [] (words / 3)))

let test_span_alloc_positive =
  with_obs @@ fun () ->
  Obs.with_span "alloc" (fun () -> churn 90_000);
  match Obs.finished_spans () with
  | [ s ] ->
      Alcotest.(check bool) "minor words counted" true
        (Obs.Span.minor_words s >= 30_000.);
      Alcotest.(check bool) "allocated_words positive" true
        (Obs.Span.allocated_words s > 0.)
  | _ -> Alcotest.fail "expected one root"

let test_span_alloc_nesting_monotonic =
  with_obs @@ fun () ->
  (* GC counters are monotonic, so a child's delta can never exceed its
     enclosing parent's — whatever the collector does meanwhile. *)
  Obs.with_span "parent" (fun () ->
      Obs.with_span "child1" (fun () -> churn 60_000);
      churn 30_000;
      Obs.with_span "child2" (fun () -> churn 60_000));
  match Obs.finished_spans () with
  | [ parent ] ->
      let pa = Obs.Span.alloc parent in
      let children = Obs.Span.children parent in
      Alcotest.(check int) "two children" 2 (List.length children);
      let sum =
        List.fold_left
          (fun acc c -> acc +. Obs.Span.minor_words c)
          0. children
      in
      List.iter
        (fun c ->
          let ca = Obs.Span.alloc c in
          Alcotest.(check bool) "child minor <= parent minor" true
            (ca.Obs.Span.minor_words <= pa.Obs.Span.minor_words);
          Alcotest.(check bool) "child major <= parent major" true
            (ca.Obs.Span.major_words <= pa.Obs.Span.major_words);
          Alcotest.(check bool) "child promoted <= parent promoted" true
            (ca.Obs.Span.promoted_words <= pa.Obs.Span.promoted_words);
          Alcotest.(check bool) "deltas non-negative" true
            (ca.Obs.Span.minor_words >= 0.
            && ca.Obs.Span.major_words >= 0.
            && ca.Obs.Span.promoted_words >= 0.))
        children;
      Alcotest.(check bool) "children's minor sum <= parent's" true
        (sum <= pa.Obs.Span.minor_words);
      Alcotest.(check bool) "parent saw its own churn too" true
        (pa.Obs.Span.minor_words >= sum +. 10_000.)
  | _ -> Alcotest.fail "expected one root"

let test_span_agg_alloc =
  with_obs @@ fun () ->
  Obs.with_span "work" (fun () -> churn 30_000);
  Obs.with_span "work" (fun () -> churn 30_000);
  match Obs.Span.aggregate (Obs.finished_spans ()) with
  | [ ("work", agg) ] ->
      Alcotest.(check int) "two spans aggregated" 2 agg.Obs.Span.spans;
      Alcotest.(check bool) "aggregate minor words accumulate" true
        (agg.Obs.Span.agg_minor_words >= 20_000.)
  | aggs -> Alcotest.failf "expected one aggregate, got %d" (List.length aggs)

(* --- Metrics_export round-trip --- *)

let test_metrics_export_roundtrip =
  with_obs @@ fun () ->
  Obs.count Obs.Names.subsumption_checks;
  Obs.add Obs.Names.index_probes 41;
  let h = Obs.Histogram.make "test.rt" in
  List.iter (Obs.observe h) [ 1.; 2.; 3.; 10. ];
  Obs.with_span "rt.outer" (fun () ->
      Obs.with_span "rt.inner" (fun () -> churn 30_000));
  let m = Obs.Metrics_export.current () in
  let text = Obs.Metrics_export.to_string m in
  match Obs.Metrics_export.of_string text with
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg
  | Ok m' ->
      Alcotest.(check (list (pair string int)))
        "counters survive" m.Obs.Metrics_export.counters
        m'.Obs.Metrics_export.counters;
      Alcotest.(check (list string))
        "histogram names survive"
        (List.map fst m.Obs.Metrics_export.histograms)
        (List.map fst m'.Obs.Metrics_export.histograms);
      let s = List.assoc "test.rt" m'.Obs.Metrics_export.histograms in
      Alcotest.(check int) "histogram n survives" 4 s.Obs.Histogram.n;
      Alcotest.(check (float 1e-6)) "histogram p99 survives" 10.
        s.Obs.Histogram.p99;
      Alcotest.(check (list string))
        "span rollups survive"
        (List.map fst m.Obs.Metrics_export.spans)
        (List.map fst m'.Obs.Metrics_export.spans);
      let a = List.assoc "rt.inner" m'.Obs.Metrics_export.spans in
      let a0 = List.assoc "rt.inner" m.Obs.Metrics_export.spans in
      Alcotest.(check int) "span count survives" a0.Obs.Span.spans
        a.Obs.Span.spans;
      Alcotest.(check bool) "span alloc survives (to 9 digits)" true
        (Float.abs
           (a.Obs.Span.agg_minor_words -. a0.Obs.Span.agg_minor_words)
        <= 1e-6 *. Float.max 1. a0.Obs.Span.agg_minor_words);
      Alcotest.(check (list (pair string string)))
        "environment of the writer is preserved verbatim"
        m.Obs.Metrics_export.environment m'.Obs.Metrics_export.environment

let test_metrics_export_rejects_garbage () =
  List.iter
    (fun (label, text) ->
      match Obs.Metrics_export.of_string text with
      | Ok _ -> Alcotest.failf "%s unexpectedly parsed" label
      | Error _ -> ())
    [
      ("not json", "][");
      ("wrong version", {|{"schema_version": 999}|});
      ("counters not an object", {|{"schema_version": 1, "counters": []}|});
    ]

(* --- hostile-input fuzzing of the Json parser ---

   Json frames now arrive over clio_serve's socket from arbitrary peers,
   so the parser must be total: any byte string yields [Ok] or [Error],
   never an exception (Stack_overflow included) and never a hang. *)

let parse_total s =
  match Obs.Json.parse s with Ok _ -> true | Error _ -> true

let test_json_hostile_nesting () =
  (* 100k unclosed '['s: an error, not a stack overflow. *)
  (match Obs.Json.parse (String.make 100_000 '[') with
  | Ok _ -> Alcotest.fail "unterminated arrays accepted"
  | Error _ -> ());
  let deep n = String.make n '[' ^ "1" ^ String.make n ']' in
  (match Obs.Json.parse (deep (Obs.Json.max_depth + 50)) with
  | Ok _ -> Alcotest.fail "nesting beyond max_depth accepted"
  | Error msg ->
      Alcotest.(check bool) "depth error mentions nesting" true
        (String.length msg > 0));
  match Obs.Json.parse (deep 100) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "depth 100 should parse: %s" msg

let test_json_hostile_numbers () =
  (* Overflowing/underflowing literals must not raise; what they decode
     to (infinity is fine for a diagnostics format) is emit's problem. *)
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "total on %s" s) true
        (parse_total s))
    [
      "1e309";
      "-1e309";
      "1e-400";
      String.make 5000 '9';
      "1e999999999";
      "-0.0000000000000000000000000001";
      "9007199254740993";
    ]

let json_gen : Obs.Json.t QCheck2.Gen.t =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              return Obs.Json.Null;
              map (fun b -> Obs.Json.Bool b) bool;
              map (fun f -> Obs.Json.Num f) (float_bound_inclusive 1e6);
              map (fun s -> Obs.Json.Str s) (string_size (int_bound 12));
            ]
        in
        if n <= 0 then leaf
        else
          oneof
            [
              leaf;
              map
                (fun l -> Obs.Json.Arr l)
                (list_size (int_bound 4) (self (n / 2)));
              map
                (fun l -> Obs.Json.Obj l)
                (list_size (int_bound 4)
                   (pair (string_size (int_bound 8)) (self (n / 2))));
            ]))

let fuzz_json_random_bytes =
  QCheck2.Test.make ~name:"parser total on random bytes" ~count:1000
    QCheck2.Gen.(string_size (int_bound 300))
    parse_total

let fuzz_json_truncated_mutated =
  QCheck2.Test.make ~name:"parser total on truncated/corrupted documents"
    ~count:500
    QCheck2.Gen.(triple json_gen (int_bound 10_000) (int_bound 255))
    (fun (doc, cut, byte) ->
      let s = Obs.Json.to_string doc in
      let truncated = String.sub s 0 (min cut (String.length s)) in
      let mutated =
        if s = "" then s
        else begin
          let b = Bytes.of_string s in
          Bytes.set b (cut mod Bytes.length b) (Char.chr byte);
          Bytes.to_string b
        end
      in
      parse_total truncated && parse_total mutated)

(* --- Bench_compare --- *)

let bench_doc ~time_ns ~checks ~minor =
  Obj
    [
      ("schema_version", Num 1.);
      ("kind", Str "bench");
      ("label", Str "test");
      ( "benchmarks",
        Obj
          [
            ("b/one", Obj [ ("time_ns", Num time_ns) ]);
            ("b/only-here", Obj [ ("time_ns", Num 1.) ]);
          ] );
      ( "workloads",
        Obj
          [
            ( "w/one",
              Obj
                [
                  ("counters", Obj [ ("subs.checks", Num checks) ]);
                  ( "alloc",
                    Obj
                      [
                        ("minor_words", Num minor);
                        ("major_words", Num 0.);
                        ("promoted_words", Num 0.);
                      ] );
                  ("histograms", Obj []);
                ] );
          ] );
    ]

let diff_exn ?tolerance ~baseline ~current () =
  match Obs.Bench_compare.diff ?tolerance ~baseline ~current () with
  | Ok o -> o
  | Error msg -> Alcotest.failf "diff failed: %s" msg

let test_compare_no_regression () =
  let baseline = bench_doc ~time_ns:1000. ~checks:500. ~minor:10_000. in
  (* Within every default tolerance: time +20% (<50%), counters equal,
     alloc +10% (<25%). *)
  let current = bench_doc ~time_ns:1200. ~checks:500. ~minor:11_000. in
  let o = diff_exn ~baseline ~current () in
  Alcotest.(check int) "no regressions" 0
    (List.length o.Obs.Bench_compare.regressions);
  Alcotest.(check int) "exit 0" 0
    (Obs.Bench_compare.exit_code ~report_only:false o);
  Alcotest.(check bool) "report says OK" true
    (let r = o.Obs.Bench_compare.report in
     String.length r >= 2
     &&
     let rec contains i =
       i + 2 <= String.length r
       && (String.sub r i 2 = "OK" || contains (i + 1))
     in
     contains 0)

let test_compare_regression () =
  let baseline = bench_doc ~time_ns:1000. ~checks:500. ~minor:10_000. in
  (* Time x2 (>1.5), counter +10% (>1.02), alloc x2 (>1.25): all three
     metrics must be flagged. *)
  let current = bench_doc ~time_ns:2000. ~checks:550. ~minor:20_000. in
  let o = diff_exn ~baseline ~current () in
  Alcotest.(check (list string))
    "all three metrics flagged"
    [ "time"; "ctr:subs.checks"; "alloc" ]
    (List.map (fun r -> r.Obs.Bench_compare.metric)
       o.Obs.Bench_compare.regressions);
  Alcotest.(check int) "exit 1" 1
    (Obs.Bench_compare.exit_code ~report_only:false o);
  Alcotest.(check int) "report-only still exits 0" 0
    (Obs.Bench_compare.exit_code ~report_only:true o);
  (* A looser tolerance waves the same diff through. *)
  let o' =
    diff_exn
      ~tolerance:{ Obs.Bench_compare.time = 3.; counter = 2.; alloc = 3. }
      ~baseline ~current ()
  in
  Alcotest.(check int) "custom tolerance clears it" 0
    (List.length o'.Obs.Bench_compare.regressions)

let test_compare_disjoint_names () =
  let baseline = bench_doc ~time_ns:1000. ~checks:500. ~minor:10_000. in
  let current =
    Obj
      [
        ("schema_version", Num 1.);
        ("kind", Str "bench");
        ("benchmarks", Obj [ ("b/new", Obj [ ("time_ns", Num 5. ) ]) ]);
        ("workloads", Obj []);
      ]
  in
  let o = diff_exn ~baseline ~current () in
  Alcotest.(check int) "nothing compared regresses" 0
    (List.length o.Obs.Bench_compare.regressions);
  Alcotest.(check bool) "baseline-only names reported" true
    (List.mem "b/one" o.Obs.Bench_compare.only_baseline);
  Alcotest.(check bool) "current-only names reported" true
    (List.mem "b/new" o.Obs.Bench_compare.only_current)

let test_compare_rejects_non_bench () =
  match
    Obs.Bench_compare.diff
      ~baseline:(Obj [ ("kind", Str "bench"); ("schema_version", Num 1.) ])
      ~current:(Obj [ ("kind", Str "metrics") ])
      ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-bench input accepted"

(* --- integration with the pipeline --- *)

let test_pipeline_counters =
  with_obs @@ fun () ->
  let db = Paperdata.Figure1.database in
  let m = Paperdata.Running.mapping in
  let exs = Clio.Mapping_eval.examples (Clio.Eval_ctx.transient db) m in
  Alcotest.(check bool) "examples computed" true (List.length exs > 0);
  Alcotest.(check bool) "nonzero fulldisj.subsumption_checks" true
    (Obs.Metrics.value "fulldisj.subsumption_checks" > 0);
  Alcotest.(check int) "examples counter matches result"
    (List.length exs)
    (Obs.Metrics.value "mapping_eval.examples");
  (* Spans of the whole evaluation pipeline are present and nested. *)
  match Obs.finished_spans () with
  | [ root ] ->
      Alcotest.(check string) "root span" "mapping_eval.examples"
        (Obs.Span.name root);
      let rec names s =
        Obs.Span.name s :: List.concat_map names (Obs.Span.children s)
      in
      let all = names root in
      List.iter
        (fun expected ->
          Alcotest.(check bool) (expected ^ " span present") true
            (List.mem expected all))
        [
          "mapping_eval.data_associations";
          "fulldisj.compute";
          "fulldisj.min_union";
        ]
  | roots ->
      Alcotest.failf "expected one root span, got %d" (List.length roots)

let test_pipeline_disabled_is_silent () =
  Obs.disable ();
  Obs.reset ();
  let db = Paperdata.Figure1.database in
  let m = Paperdata.Running.mapping in
  ignore (Clio.Mapping_eval.examples (Clio.Eval_ctx.transient db) m);
  Alcotest.(check int) "no counters when disabled" 0
    (List.length (Obs.Metrics.snapshot ()).Obs.Metrics.counters);
  Alcotest.(check int) "no spans when disabled" 0
    (List.length (Obs.finished_spans ()))

let test_names_are_authoritative () =
  (* Every counter the bench/CLI read by name is registered by Obs.Names. *)
  List.iter
    (fun c ->
      match Obs.Counter.find (Obs.Counter.name c) with
      | Some c' -> Alcotest.(check bool) "registered" true (c == c')
      | None -> Alcotest.failf "%s not registered" (Obs.Counter.name c))
    [
      Obs.Names.subsumption_checks;
      Obs.Names.index_probes;
      Obs.Names.eval_examples;
      Obs.Names.chase_occurrences;
      Obs.Names.illustration_selected;
    ]

let test_explain_counters =
  with_obs @@ fun () ->
  let db = Paperdata.Figure1.database in
  let m = Paperdata.Running.mapping in
  let ex =
    List.find (fun e -> e.Clio.Example.positive)
      (Clio.Mapping_eval.examples (Clio.Eval_ctx.transient db) m)
  in
  Obs.reset ();
  let ds = Clio.Explain.of_target_tuple (Clio.Eval_ctx.transient db) m ex.Clio.Example.target_tuple in
  Alcotest.(check bool) "found a derivation" true (List.length ds > 0);
  Alcotest.(check int) "explain.derivations counts them"
    (List.length ds)
    (Obs.Metrics.value "explain.derivations");
  Alcotest.(check bool) "explain.tuples_matched covers the scan" true
    (Obs.Metrics.value "explain.tuples_matched" >= List.length ds);
  match Obs.finished_spans () with
  | [ s ] ->
      Alcotest.(check string) "explain runs under its span"
        Obs.Names.sp_explain (Obs.Span.name s)
  | roots -> Alcotest.failf "expected one root span, got %d" (List.length roots)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "obs"
    [
      ( "span",
        [
          tc "nesting and ordering" `Quick test_span_nesting;
          tc "sequential roots" `Quick test_span_sequencing;
          tc "exception safety" `Quick test_span_exception_safety;
          tc "attributes" `Quick test_span_attrs;
          tc "disabled records nothing" `Quick test_span_disabled;
        ] );
      ( "alloc",
        [
          tc "span counts its allocation" `Quick test_span_alloc_positive;
          tc "nested deltas are monotonic" `Quick
            test_span_alloc_nesting_monotonic;
          tc "per-name aggregation sums alloc" `Quick test_span_agg_alloc;
        ] );
      ( "counter",
        [
          tc "enable/disable totals" `Quick test_counter_enable_disable;
          tc "registry dedups handles" `Quick test_counter_registry;
          tc "histogram stats" `Quick test_histogram;
          tc "percentiles on a known distribution" `Quick
            test_histogram_percentiles;
          tc "percentiles on tiny samples" `Quick
            test_histogram_percentiles_small;
          tc "names are authoritative" `Quick test_names_are_authoritative;
        ] );
      ( "reservoir",
        [
          tc "memory bounded past the cap, aggregates exact" `Quick
            test_histogram_reservoir_bounded;
          tc "percentiles exact at the cap" `Quick
            test_histogram_exact_below_cap;
          tc "exposition bucket counts exact" `Quick
            test_histogram_bucket_counts;
        ] );
      ( "prometheus",
        [
          tc "name sanitization and label escaping" `Quick test_prom_sanitize;
          tc "render passes its own validator" `Quick
            test_prom_render_validates;
          tc "validator rejects malformed expositions" `Quick
            test_prom_validate_rejects;
        ] );
      ( "event-log",
        [
          tc "line schema v1" `Quick test_event_log_schema;
          tc "level filtering" `Quick test_event_log_level_filter;
          tc "size rotation keeps the newest files" `Quick
            test_event_log_rotation;
          tc "empty path rejected" `Quick test_event_log_empty_path;
          QCheck_alcotest.to_alcotest ~long:false fuzz_event_log_roundtrip;
        ] );
      ( "scope",
        [
          tc "captures deltas and a detached subtree" `Quick
            test_scope_captures;
          tc "disabled scope measures only duration" `Quick
            test_scope_disabled_is_cheap;
          tc "fresh ids are unique" `Quick test_scope_fresh_ids_unique;
        ] );
      ( "export",
        [
          tc "chrome trace is valid JSON of X events" `Quick
            test_chrome_trace_valid_json;
          tc "hostile attr values survive the round-trip" `Quick
            test_chrome_trace_hostile_attrs;
          tc "control characters escape as \\uXXXX" `Quick
            test_json_escape_controls;
          tc "json lines parse with depths" `Quick test_json_lines_valid;
          tc "text export" `Quick test_text_export;
        ] );
      ( "json-fuzz",
        [
          tc "hostile nesting" `Quick test_json_hostile_nesting;
          tc "hostile numbers" `Quick test_json_hostile_numbers;
          QCheck_alcotest.to_alcotest ~long:false fuzz_json_random_bytes;
          QCheck_alcotest.to_alcotest ~long:false fuzz_json_truncated_mutated;
        ] );
      ( "metrics-export",
        [
          tc "full state round-trips through JSON" `Quick
            test_metrics_export_roundtrip;
          tc "garbage is rejected" `Quick test_metrics_export_rejects_garbage;
        ] );
      ( "bench-compare",
        [
          tc "within tolerance passes" `Quick test_compare_no_regression;
          tc "beyond tolerance fails with exit 1" `Quick
            test_compare_regression;
          tc "disjoint names are reported, not flagged" `Quick
            test_compare_disjoint_names;
          tc "non-bench input is an error" `Quick test_compare_rejects_non_bench;
        ] );
      ( "pipeline",
        [
          tc "paper-db examples emit counters and spans" `Quick
            test_pipeline_counters;
          tc "disabled pipeline is silent" `Quick
            test_pipeline_disabled_is_silent;
          tc "explain emits derivation counters" `Quick test_explain_counters;
        ] );
    ]
