(* Tests for lib/obs: span nesting and ordering, counter behaviour under
   enable/disable, trace export (including a real JSON parse of the Chrome
   trace_event output), and an integration check that the instrumented
   pipeline actually emits counters on the paper database. *)

let setup () =
  Obs.enable ();
  Obs.reset ()

let teardown () =
  Obs.disable ();
  Obs.reset ()

let with_obs f () =
  setup ();
  Fun.protect ~finally:teardown f

(* --- a minimal JSON parser, enough to validate exporter output --- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/') ->
              Buffer.add_char buf (Option.get (peek ()));
              advance ();
              go ()
          | Some (('n' | 't' | 'r' | 'b' | 'f') as c) ->
              Buffer.add_char buf
                (match c with
                | 'n' -> '\n'
                | 't' -> '\t'
                | 'r' -> '\r'
                | 'b' -> '\b'
                | _ -> '\012');
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

(* --- spans --- *)

let test_span_nesting =
  with_obs @@ fun () ->
  let r =
    Obs.with_span "outer" (fun () ->
        Obs.with_span "first" (fun () -> ());
        Obs.with_span "second" (fun () -> 41 + 1))
  in
  Alcotest.(check int) "with_span returns the thunk's value" 42 r;
  match Obs.finished_spans () with
  | [ outer ] ->
      Alcotest.(check string) "root name" "outer" (Obs.Span.name outer);
      Alcotest.(check (list string))
        "children in execution order" [ "first"; "second" ]
        (List.map Obs.Span.name (Obs.Span.children outer));
      List.iter
        (fun child ->
          Alcotest.(check bool) "child within parent interval" true
            (Obs.Span.start_s child >= Obs.Span.start_s outer
            && Obs.Span.stop_s child <= Obs.Span.stop_s outer))
        (Obs.Span.children outer);
      Alcotest.(check bool) "duration non-negative" true
        (Obs.Span.duration_s outer >= 0.)
  | roots ->
      Alcotest.failf "expected exactly one root, got %d" (List.length roots)

let test_span_sequencing =
  with_obs @@ fun () ->
  Obs.with_span "a" (fun () -> ());
  Obs.with_span "b" (fun () -> ());
  Alcotest.(check (list string))
    "roots in completion order" [ "a"; "b" ]
    (List.map Obs.Span.name (Obs.finished_spans ()))

let test_span_exception_safety =
  with_obs @@ fun () ->
  (try Obs.with_span "boom" (fun () -> failwith "inner") with Failure _ -> ());
  Obs.with_span "after" (fun () -> ());
  Alcotest.(check (list string))
    "span closed by the exception, stack not corrupted" [ "boom"; "after" ]
    (List.map Obs.Span.name (Obs.finished_spans ()))

let test_span_attrs =
  with_obs @@ fun () ->
  Obs.with_span ~attrs:[ ("k", "v") ] "s" (fun () -> Obs.set_attr "late" "x");
  match Obs.finished_spans () with
  | [ s ] ->
      Alcotest.(check (list (pair string string)))
        "attrs in attachment order"
        [ ("k", "v"); ("late", "x") ]
        (Obs.Span.attrs s)
  | _ -> Alcotest.fail "expected one root"

let test_span_disabled () =
  Obs.disable ();
  Obs.reset ();
  let r = Obs.with_span "ghost" (fun () -> 7) in
  Alcotest.(check int) "thunk still runs" 7 r;
  Alcotest.(check int) "nothing recorded" 0
    (List.length (Obs.finished_spans ()))

(* --- counters --- *)

let test_counter_enable_disable () =
  Obs.disable ();
  Obs.reset ();
  let c = Obs.Counter.make "test.counter" in
  Obs.count c;
  Obs.add c 10;
  Alcotest.(check int) "disabled increments are dropped" 0 (Obs.Counter.value c);
  Obs.enable ();
  Obs.count c;
  Obs.add c 10;
  Alcotest.(check int) "enabled increments accumulate" 11 (Obs.Counter.value c);
  Obs.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Counter.value c);
  Obs.disable ()

let test_counter_registry () =
  let a = Obs.Counter.make "test.same" in
  let b = Obs.Counter.make "test.same" in
  Alcotest.(check bool) "same name, same handle" true (a == b);
  Alcotest.(check int)
    "Metrics.value reads by name (0 after reset)"
    (Obs.Counter.value a)
    (Obs.Metrics.value "test.same")

let test_histogram =
  with_obs @@ fun () ->
  let h = Obs.Histogram.make "test.hist" in
  List.iter (Obs.observe h) [ 2.0; 4.0; 6.0 ];
  let s = Obs.Histogram.stats h in
  Alcotest.(check int) "n" 3 s.Obs.Histogram.n;
  Alcotest.(check (float 1e-9)) "mean" 4.0 s.Obs.Histogram.mean;
  Alcotest.(check (float 1e-9)) "min" 2.0 s.Obs.Histogram.min;
  Alcotest.(check (float 1e-9)) "max" 6.0 s.Obs.Histogram.max

(* --- trace export --- *)

let sample_trace () =
  Obs.with_span "root" (fun () ->
      Obs.with_span ~attrs:[ ("key", "va\"lue\n") ] "child" (fun () -> ()));
  Obs.with_span "tail" (fun () -> ());
  Obs.finished_spans ()

let test_chrome_trace_valid_json =
  with_obs @@ fun () ->
  let spans = sample_trace () in
  let text = Obs.Trace_export.to_chrome spans in
  match parse_json text with
  | Arr events ->
      Alcotest.(check int) "one X event per span" 3 (List.length events);
      List.iter
        (fun e ->
          (match member "ph" e with
          | Some (Str "X") -> ()
          | _ -> Alcotest.fail "every event is a complete (X) event");
          (match member "dur" e with
          | Some (Num d) ->
              Alcotest.(check bool) "dur >= 0" true (d >= 0.)
          | _ -> Alcotest.fail "event lacks dur");
          match member "ts" e with
          | Some (Num _) -> ()
          | _ -> Alcotest.fail "event lacks ts")
        events;
      let names =
        List.filter_map
          (fun e ->
            match member "name" e with Some (Str s) -> Some s | _ -> None)
          events
      in
      Alcotest.(check (list string))
        "preorder: parent before child" [ "root"; "child"; "tail" ] names;
      (* Nesting is encoded by interval containment for X events. *)
      let find name =
        List.find
          (fun e -> member "name" e = Some (Str name))
          events
      in
      let num k e = match member k e with Some (Num f) -> f | _ -> nan in
      let root = find "root" and child = find "child" in
      Alcotest.(check bool) "child interval inside root interval" true
        (num "ts" child >= num "ts" root
        && num "ts" child +. num "dur" child
           <= num "ts" root +. num "dur" root +. 1.0 (* μs rounding *));
      (* Attribute escaping survives a JSON round-trip. *)
      (match member "args" child with
      | Some (Obj [ ("key", Str v) ]) ->
          Alcotest.(check string) "escaped attr value" "va\"lue\n" v
      | _ -> Alcotest.fail "child lacks args")
  | _ -> Alcotest.fail "chrome trace is not a JSON array

"

let test_json_lines_valid =
  with_obs @@ fun () ->
  let spans = sample_trace () in
  let lines =
    Obs.Trace_export.to_json_lines spans
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "one line per span" 3 (List.length lines);
  let depths =
    List.map
      (fun l ->
        match member "depth" (parse_json l) with
        | Some (Num d) -> int_of_float d
        | _ -> Alcotest.fail "line lacks depth")
      lines
  in
  Alcotest.(check (list int)) "depths" [ 0; 1; 0 ] depths

let test_text_export =
  with_obs @@ fun () ->
  let spans = sample_trace () in
  let text = Obs.Trace_export.to_text spans in
  Alcotest.(check bool) "mentions root" true
    (String.length text > 0
    && String.split_on_char '\n' text
       |> List.exists (fun l -> String.length l > 0 && l.[0] <> ' '))

(* --- integration with the pipeline --- *)

let test_pipeline_counters =
  with_obs @@ fun () ->
  let db = Paperdata.Figure1.database in
  let m = Paperdata.Running.mapping in
  let exs = Clio.Mapping_eval.examples db m in
  Alcotest.(check bool) "examples computed" true (List.length exs > 0);
  Alcotest.(check bool) "nonzero fulldisj.subsumption_checks" true
    (Obs.Metrics.value "fulldisj.subsumption_checks" > 0);
  Alcotest.(check int) "examples counter matches result"
    (List.length exs)
    (Obs.Metrics.value "mapping_eval.examples");
  (* Spans of the whole evaluation pipeline are present and nested. *)
  match Obs.finished_spans () with
  | [ root ] ->
      Alcotest.(check string) "root span" "mapping_eval.examples"
        (Obs.Span.name root);
      let rec names s =
        Obs.Span.name s :: List.concat_map names (Obs.Span.children s)
      in
      let all = names root in
      List.iter
        (fun expected ->
          Alcotest.(check bool) (expected ^ " span present") true
            (List.mem expected all))
        [
          "mapping_eval.data_associations";
          "fulldisj.compute";
          "fulldisj.min_union";
        ]
  | roots ->
      Alcotest.failf "expected one root span, got %d" (List.length roots)

let test_pipeline_disabled_is_silent () =
  Obs.disable ();
  Obs.reset ();
  let db = Paperdata.Figure1.database in
  let m = Paperdata.Running.mapping in
  ignore (Clio.Mapping_eval.examples db m);
  Alcotest.(check int) "no counters when disabled" 0
    (List.length (Obs.Metrics.snapshot ()).Obs.Metrics.counters);
  Alcotest.(check int) "no spans when disabled" 0
    (List.length (Obs.finished_spans ()))

let test_names_are_authoritative () =
  (* Every counter the bench/CLI read by name is registered by Obs.Names. *)
  List.iter
    (fun c ->
      match Obs.Counter.find (Obs.Counter.name c) with
      | Some c' -> Alcotest.(check bool) "registered" true (c == c')
      | None -> Alcotest.failf "%s not registered" (Obs.Counter.name c))
    [
      Obs.Names.subsumption_checks;
      Obs.Names.index_probes;
      Obs.Names.eval_examples;
      Obs.Names.chase_occurrences;
      Obs.Names.illustration_selected;
    ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "obs"
    [
      ( "span",
        [
          tc "nesting and ordering" `Quick test_span_nesting;
          tc "sequential roots" `Quick test_span_sequencing;
          tc "exception safety" `Quick test_span_exception_safety;
          tc "attributes" `Quick test_span_attrs;
          tc "disabled records nothing" `Quick test_span_disabled;
        ] );
      ( "counter",
        [
          tc "enable/disable totals" `Quick test_counter_enable_disable;
          tc "registry dedups handles" `Quick test_counter_registry;
          tc "histogram stats" `Quick test_histogram;
          tc "names are authoritative" `Quick test_names_are_authoritative;
        ] );
      ( "export",
        [
          tc "chrome trace is valid JSON of X events" `Quick
            test_chrome_trace_valid_json;
          tc "json lines parse with depths" `Quick test_json_lines_valid;
          tc "text export" `Quick test_text_export;
        ] );
      ( "pipeline",
        [
          tc "paper-db examples emit counters and spans" `Quick
            test_pipeline_counters;
          tc "disabled pipeline is silent" `Quick
            test_pipeline_disabled_is_silent;
        ] );
    ]
