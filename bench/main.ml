(* The full benchmark harness.

   The paper's evaluation is its running example (Figures 1-12 and the
   numbered Examples) — there are no performance tables.  Accordingly this
   harness has two parts:

   1. Regenerate every figure/example (experiments F*/E*/S2 of DESIGN.md),
      exactly as bin/figures.exe does, so `dune exec bench/main.exe`
      reproduces the complete evaluation in one run.

   2. Performance benchmarks (experiments B1-B17) for the algorithms whose
      cost the paper alludes to ("we make use of evaluation and
      optimization techniques for the minimal union operator to
      efficiently compute D(G)"): minimum union naive vs indexed, full
      disjunction naive vs indexed vs outer-join plan, sufficient
      illustration selection, walk enumeration, chase scans, end-to-end
      mapping evaluation, FK mining, illustration evolution, and the
      engine's memo cache (B9 walk-alternative reuse, B10 session replay
      — each cached vs no-cache, the ablation of lib/engine), the B14
      jobs=1 vs jobs=4 ablation of the lib/par domain pool, and the B15
      example-edit replay (incremental delta maintenance vs from-scratch
      re-evaluation after each edit), the B16 server load generator
      (lib/server's multi-session service under scripted client traffic,
      cold vs warm shared-cache substrate), and the B17 columnar data
      plane ablation (million-tuple full disjunction + subsumption,
      columnar kernels vs the boxed tuple path — CI gates a 10x ratio).

   3. Operator-counter and allocation tables (lib/obs): the same workloads
      run once with observability enabled, reporting subsumption checks,
      index probes, rows scanned and GC words allocated per algorithm —
      the algorithmic explanation of the timings in part 2.

   Pass --no-figures, --no-bench or --no-stats to skip a part;
   --no-columnar runs everything on the boxed tuple kernels (the B17
   pair pins its own switch state either way).

   Machine-readable output: --label NAME and/or --out FILE additionally
   write a bench JSON document (BENCH_<label>.json by default) combining
   the part-2 Bechamel timings with the part-3 operator counters,
   histogram percentiles and allocation stats, in the schema consumed by
   bench/compare.exe.  --quick shrinks workload sizes and measurement
   quotas for CI smoke runs (bench/baseline.json is a --quick capture). *)

open Bechamel
open Relational
module Qgraph = Querygraph.Qgraph

let argv = Array.to_list Sys.argv

(* "--name VALUE" or "--name=VALUE". *)
let flag_value name =
  let prefix = name ^ "=" in
  let starts_with p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  let rec go = function
    | [] -> None
    | a :: v :: _ when a = name -> Some v
    | a :: rest ->
        if starts_with prefix a then
          Some (String.sub a (String.length prefix) (String.length a - String.length prefix))
        else go rest
  in
  go argv

let quick = List.mem "--quick" argv
let label = flag_value "--label"
let out_file = flag_value "--out"

(* Force the boxed kernels for the whole run (the B17 arms still pin
   their own switch state, so the ablation pair stays meaningful). *)
let () = if List.mem "--no-columnar" argv then Columnar.set_enabled false

let seeded seed = Random.State.make [| seed |]

(* --- B1: minimum union — naive vs indexed subsumption removal --- *)

let minunion_input size =
  (* Sparse tuples over a tiny domain maximize subsumption pressure. *)
  Synth.Gen_db.sparse_tuples (seeded 42) ~rows:size ~arity:6 ~null_prob:0.45 ~domain:8
  |> List.filteri (fun _ t -> not (Tuple.all_null t))

let minunion_sizes = if quick then [ 100; 400 ] else [ 100; 400; 1600 ]

let minunion_tests =
  let input = minunion_input in
  let sizes = minunion_sizes in
  List.concat_map
    (fun size ->
      let tuples = input size in
      [
        Test.make
          ~name:(Printf.sprintf "minunion/naive/%d" size)
          (Staged.stage (fun () ->
               ignore (Fulldisj.Min_union.remove_subsumed_naive tuples)));
        Test.make
          ~name:(Printf.sprintf "minunion/indexed/%d" size)
          (Staged.stage (fun () ->
               ignore (Fulldisj.Min_union.remove_subsumed tuples)));
        (* Ablation: probe the first non-null column instead of the most
           selective one. *)
        Test.make
          ~name:(Printf.sprintf "minunion/first-probe/%d" size)
          (Staged.stage (fun () ->
               ignore (Fulldisj.Min_union.remove_subsumed_first_probe tuples)));
      ])
    sizes
  @
  (* Skewed values (Zipf): a few huge buckets — where selectivity-aware
     probing should pay off. *)
  let skewed size =
    Synth.Gen_db.skewed_tuples (seeded 43) ~rows:size ~arity:6 ~null_prob:0.45
      ~domain:64 ()
    |> List.filter (fun t -> not (Tuple.all_null t))
  in
  List.concat_map
    (fun size ->
      let tuples = skewed size in
      [
        Test.make
          ~name:(Printf.sprintf "minunion/skew-selective/%d" size)
          (Staged.stage (fun () -> ignore (Fulldisj.Min_union.remove_subsumed tuples)));
        Test.make
          ~name:(Printf.sprintf "minunion/skew-first-probe/%d" size)
          (Staged.stage (fun () ->
               ignore (Fulldisj.Min_union.remove_subsumed_first_probe tuples)));
      ])
    [ 1600 ]

(* --- B2: full disjunction — naive vs indexed vs outer-join plan --- *)

let fulldisj_configs =
  if quick then [ (3, 60); (4, 60) ] else [ (3, 150); (4, 150); (5, 100) ]

let fulldisj_tests =
  let configs = fulldisj_configs in
  List.concat_map
    (fun (n, rows) ->
      let inst =
        Synth.Gen_graph.chain (seeded 7) ~n ~rows ~null_prob:0.25 ~orphan_prob:0.2 ()
      in
      let lookup = Database.find inst.Synth.Gen_graph.db in
      let g = inst.Synth.Gen_graph.graph in
      let tag algo = Printf.sprintf "fulldisj/%s/n%d-r%d" algo n rows in
      [
        Test.make ~name:(tag "naive")
          (Staged.stage (fun () -> ignore (Fulldisj.Full_disjunction.naive (Fulldisj.Source.of_fn lookup) g)));
        Test.make ~name:(tag "indexed")
          (Staged.stage (fun () -> ignore (Fulldisj.Full_disjunction.compute (Fulldisj.Source.of_fn lookup) g)));
        Test.make ~name:(tag "outerjoin")
          (Staged.stage (fun () ->
               ignore (Fulldisj.Outerjoin_plan.full_disjunction (Fulldisj.Source.of_fn lookup) g)));
        (* Ablation: the cascade without the final subsumption sweep,
           isolating the sweep's cost. *)
        Test.make ~name:(tag "oj-no-sweep")
          (Staged.stage (fun () ->
               ignore (Fulldisj.Outerjoin_plan.full_disjunction_no_sweep (Fulldisj.Source.of_fn lookup) g)));
      ])
    configs

(* --- B3: sufficient-illustration selection --- *)

let illustration_tests =
  let inst =
    Synth.Gen_graph.star (seeded 9) ~leaves:4 ~rows:120 ~null_prob:0.3 ~orphan_prob:0.2 ()
  in
  let db = inst.Synth.Gen_graph.db in
  let aliases = Qgraph.aliases inst.Synth.Gen_graph.graph in
  let m =
    Clio.Mapping.make ~graph:inst.Synth.Gen_graph.graph ~target:"T"
      ~target_cols:(List.map (fun a -> "c_" ^ a) aliases)
      ~correspondences:
        (List.map
           (fun a -> Clio.Correspondence.identity ("c_" ^ a) (Attr.make a "id"))
           aliases)
      ()
  in
  let universe = Clio.Mapping_eval.examples (Clio.Eval_ctx.transient db) m in
  [
    Test.make ~name:"illustration/select"
      (Staged.stage (fun () ->
           ignore
             (Clio.Sufficiency.select ~universe ~target_cols:m.Clio.Mapping.target_cols ())));
    Test.make ~name:"illustration/universe"
      (Staged.stage (fun () -> ignore (Clio.Mapping_eval.examples (Clio.Eval_ctx.transient db) m)));
  ]

(* --- B4: walk enumeration --- *)

let walk_tests =
  List.map
    (fun (leaves, max_len) ->
      let inst = Synth.Gen_graph.star (seeded 11) ~leaves ~rows:10 () in
      let m =
        Clio.Mapping.make
          ~graph:(Qgraph.singleton ~alias:"Fact" ~base:"Fact")
          ~target:"T" ~target_cols:[ "x" ] ()
      in
      let goal = Printf.sprintf "D%d" leaves in
      Test.make
        ~name:(Printf.sprintf "walk/leaves%d-len%d" leaves max_len)
        (Staged.stage (fun () ->
             ignore
               (Clio.Op_walk.walk_alternatives ~kb:inst.Synth.Gen_graph.kb m ~start:"Fact"
                  ~goal ~max_len ()))))
    [ (4, 2); (8, 2); (8, 3) ]

(* --- B5: chase scans (full scan vs prebuilt inverted index) --- *)

let chase_sizes = if quick then [ 500; 2000 ] else [ 500; 2000; 8000 ]

let chase_tests =
  List.concat_map
    (fun rows ->
      let inst = Synth.Gen_graph.chain (seeded 13) ~n:4 ~rows () in
      let db = inst.Synth.Gen_graph.db in
      let index = Value_index.build db in
      let m =
        Clio.Mapping.make
          ~graph:(Qgraph.singleton ~alias:"R1" ~base:"R1")
          ~target:"T" ~target_cols:[ "x" ] ()
      in
      [
        Test.make
          ~name:(Printf.sprintf "chase/scan/rows%d" rows)
          (Staged.stage (fun () ->
               ignore
                 (Clio.Op_chase.chase (Clio.Eval_ctx.transient db) m ~attr:(Attr.make "R1" "id")
                    ~value:(Value.Int (rows / 2)))));
        Test.make
          ~name:(Printf.sprintf "chase/indexed/rows%d" rows)
          (Staged.stage (fun () ->
               ignore
                 (Clio.Op_chase.chase ~index (Clio.Eval_ctx.transient db) m ~attr:(Attr.make "R1" "id")
                    ~value:(Value.Int (rows / 2)))));
        Test.make
          ~name:(Printf.sprintf "chase/index-build/rows%d" rows)
          (Staged.stage (fun () -> ignore (Value_index.build db)));
      ])
    chase_sizes

(* --- B6: end-to-end mapping evaluation (paper database) --- *)

let mapping_tests =
  let db = Paperdata.Figure1.database in
  [
    Test.make ~name:"mapping/eval-section2"
      (Staged.stage (fun () ->
           ignore (Clio.Mapping_eval.eval (Clio.Eval_ctx.transient db) Paperdata.Running.section2_mapping)));
    Test.make ~name:"mapping/examples-fig9"
      (Staged.stage (fun () ->
           ignore (Clio.Mapping_eval.examples (Clio.Eval_ctx.transient db) Paperdata.Running.mapping)));
    Test.make ~name:"mapping/sql-outer-join"
      (Staged.stage (fun () ->
           ignore
             (Clio.Mapping_sql.outer_join ~root:"Children"
                Paperdata.Running.section2_mapping)));
  ]

(* --- B7: inclusion-dependency mining --- *)

let mine_sizes = if quick then [ 200 ] else [ 200; 800 ]

let mine_tests =
  List.map
    (fun rows ->
      let inst = Synth.Gen_graph.star (seeded 17) ~leaves:5 ~rows () in
      Test.make
        ~name:(Printf.sprintf "mine/rows%d" rows)
        (Staged.stage (fun () ->
             ignore (Schemakb.Mine.inclusion_dependencies inst.Synth.Gen_graph.db))))
    mine_sizes

(* --- B8: illustration evolution after a walk --- *)

let evolve_tests =
  let db = Paperdata.Figure1.database in
  let kb = Paperdata.Figure1.kb in
  let old_m = Paperdata.Running.mapping_g1 in
  let old_ill = Clio.illustrate (Clio.Eval_ctx.transient db) old_m in
  let new_m =
    (List.hd (Clio.Op_walk.walk_alternatives ~kb old_m ~start:"Children" ~goal:"PhoneDir"
                ~max_len:2 ()))
      .Clio.Op_walk.mapping
  in
  [
    Test.make ~name:"evolve/walk-extension"
      (Staged.stage (fun () ->
           ignore (Clio.Evolution.evolve (Clio.Eval_ctx.transient db) ~old_mapping:old_m ~old_illustration:old_ill new_m)));
  ]

(* --- B9: walk alternatives — shared-subgraph reuse in the engine cache ---

   The interactive loop evaluates many near-identical graphs: a walk's
   alternatives share the base graph's subgraphs (FJ tier), and rotating
   back to an alternative re-runs the exact same D(G) (DG tier).  Each
   run replays that loop inside one fresh context, cached vs no-cache —
   the ablation of lib/engine. *)

let engine_walk_instance =
  Synth.Gen_graph.chain (seeded 37) ~n:3 ~rows:(if quick then 150 else 400)
    ~null_prob:0.25 ~orphan_prob:0.2 ()

let engine_walk_mappings =
  let inst = engine_walk_instance in
  let m0 =
    Clio.Mapping.make
      ~graph:(Qgraph.singleton ~alias:"R1" ~base:"R1")
      ~target:"T" ~target_cols:[ "c" ]
      ~correspondences:[ Clio.Correspondence.identity "c" (Attr.make "R1" "id") ]
      ()
  in
  let alts goal =
    Clio.Op_walk.walk_alternatives ~kb:inst.Synth.Gen_graph.kb m0 ~start:"R1" ~goal
      ~max_len:2 ()
    |> List.map (fun (a : Clio.Op_walk.alternative) -> a.Clio.Op_walk.mapping)
  in
  (* R1, R1-R2, R1-R2-R3: the alternatives overlap pairwise, so the FJ
     tier shares their common induced subgraphs across mappings. *)
  m0 :: (alts "R2" @ alts "R3")

let engine_walk_replay ~no_cache () =
  let inst = engine_walk_instance in
  let ctx =
    Clio.Eval_ctx.create ~no_cache ~kb:inst.Synth.Gen_graph.kb
      inst.Synth.Gen_graph.db
  in
  (* Offer: every alternative's example universe. *)
  List.iter
    (fun m -> ignore (Clio.Mapping_eval.examples ctx m))
    engine_walk_mappings;
  (* Rotate twice through the alternatives, re-rendering each target view. *)
  for _ = 1 to 2 do
    List.iter
      (fun m -> ignore (Clio.Mapping_eval.target_view ctx m))
      engine_walk_mappings
  done

let engine_walk_tests =
  [
    Test.make ~name:"engine/walk-reuse/cached"
      (Staged.stage (engine_walk_replay ~no_cache:false));
    Test.make ~name:"engine/walk-reuse/no-cache"
      (Staged.stage (engine_walk_replay ~no_cache:true));
  ]

(* --- B10: session replay — offer/rotate/confirm through Workspace --- *)

let engine_session_alternatives =
  Clio.Op_walk.walk_alternatives ~kb:Paperdata.Figure1.kb Paperdata.Running.mapping_g1
    ~start:"Children" ~goal:"PhoneDir" ~max_len:2 ()
  |> List.map (fun (a : Clio.Op_walk.alternative) -> a.Clio.Op_walk.mapping)

let engine_session_replay ~no_cache () =
  let ctx =
    Clio.Eval_ctx.create ~no_cache ~kb:Paperdata.Figure1.kb
      Paperdata.Figure1.database
  in
  let ws = Clio.Workspace.create ctx Paperdata.Running.mapping_g1 in
  let ws = ref (Clio.Workspace.offer ws engine_session_alternatives) in
  for _ = 1 to 2 * List.length engine_session_alternatives do
    ws := Clio.Workspace.rotate !ws;
    ignore (Clio.Workspace.target_view !ws)
  done;
  ignore (Clio.Workspace.render (Clio.Workspace.confirm !ws))

let engine_session_tests =
  [
    Test.make ~name:"engine/session-replay/cached"
      (Staged.stage (engine_session_replay ~no_cache:false));
    Test.make ~name:"engine/session-replay/no-cache"
      (Staged.stage (engine_session_replay ~no_cache:true));
  ]

(* --- B15: example-edit replay — incremental maintenance ablation ---

   The other hot mutation of the interactive loop: the user adds an example
   tuple to a base relation (op_example, Workspace.add_tuples) and the
   session refreshes against the updated instance — every alternative's
   D(G) is maintained (Workspace evolves each entry's illustration) and
   the active target view re-renders (WYSIWYG).  Each run warms one
   caching context, then replays a burst of single-tuple inserts with a
   refresh after each.  Both arms keep the memo cache on: every edit bumps
   the database version, so with --no-incremental the whole cache strands
   and each refresh re-evaluates from scratch, while the incremental arm
   repairs the cached F(J)/D(G) entries through the recorded delta chain.
   (Illustration selection, the other per-edit cost of the full Workspace
   path, is version-independent and benchmarked separately — B8/B11.) *)

let engine_edit_instance =
  Synth.Gen_graph.chain (seeded 47) ~n:4 ~rows:(if quick then 150 else 400)
    ~null_prob:0.25 ~orphan_prob:0.2 ()

let engine_edit_mappings =
  (* The session's walk alternatives R1, R1-R2, R1-R2-R3, R1-R2-R3-R4
     overlap pairwise, so the FJ tier shares promoted subgraphs too. *)
  let inst = engine_edit_instance in
  let m0 =
    Clio.Mapping.make
      ~graph:(Qgraph.singleton ~alias:"R1" ~base:"R1")
      ~target:"T" ~target_cols:[ "c" ]
      ~correspondences:[ Clio.Correspondence.identity "c" (Attr.make "R1" "id") ]
      ()
  in
  let alts goal =
    Clio.Op_walk.walk_alternatives ~kb:inst.Synth.Gen_graph.kb m0 ~start:"R1" ~goal
      ~max_len:3 ()
    |> List.map (fun (a : Clio.Op_walk.alternative) -> a.Clio.Op_walk.mapping)
  in
  m0 :: (alts "R2" @ alts "R3" @ alts "R4")

let engine_edit_count = if quick then 6 else 8

let engine_edit_tuples =
  (* Fresh ids far beyond the generator's key space (so every edit really
     inserts); the FK points at an existing R2 id, so each edit extends the
     join result, not just the base relation. *)
  List.init engine_edit_count (fun i ->
      [|
        Value.Int (1_000_000 + i);
        Value.String (Printf.sprintf "edit-%d" i);
        Value.Int i;
      |])

let engine_edit_replay ~incremental () =
  let inst = engine_edit_instance in
  let ctx =
    ref
      (Clio.Eval_ctx.create ~incremental ~kb:inst.Synth.Gen_graph.kb
         inst.Synth.Gen_graph.db)
  in
  let active = List.hd (List.rev engine_edit_mappings) in
  let refresh () =
    List.iter
      (fun m -> ignore (Clio.Mapping_eval.data_associations !ctx m))
      engine_edit_mappings;
    ignore (Clio.Mapping_eval.target_view !ctx active)
  in
  refresh ();
  List.iter
    (fun t ->
      ctx :=
        Clio.Eval_ctx.with_db !ctx
          (Database.insert_tuples (Clio.Eval_ctx.db !ctx) "R1" [ t ]);
      refresh ())
    engine_edit_tuples

let engine_edit_tests =
  [
    Test.make ~name:"engine/example-edit/incremental"
      (Staged.stage (engine_edit_replay ~incremental:true));
    Test.make ~name:"engine/example-edit/no-incremental"
      (Staged.stage (engine_edit_replay ~incremental:false));
  ]

(* --- B16: server loadgen — the multi-session service under scripted
   load ---

   Drives lib/server's Service directly (no socket) with the B16 client
   script: N sessions opened from the paper scenario, each cycling
   offer → evaluate D(G) → rotate → evaluate target → insert → confirm,
   interleaved round-robin.  The ablation is substrate temperature: the
   cold arm builds a fresh registry (empty shared Eval_cache) per run,
   the warm arm reuses one persistent registry across runs, so every
   session's pre-insert evaluations hit entries left by earlier runs at
   the scenario's shared base version — the memo sharing a long-lived
   server exists to provide. *)

let b16_spec =
  {
    Server.Loadgen.scenario = Server.Protocol.Paper;
    clients = 4;
    ops = (if quick then 6 else 12);
    limit = None;
    keep_open = false;
  }

let server_loadgen_cold () =
  let service = Server.Service.create (Server.Registry.create ~jobs:1 ()) in
  ignore (Server.Loadgen.run_inprocess ~verify:false service b16_spec)

let server_warm_service =
  lazy (Server.Service.create (Server.Registry.create ~jobs:1 ()))

let server_loadgen_warm () =
  ignore
    (Server.Loadgen.run_inprocess ~verify:false
       (Lazy.force server_warm_service)
       b16_spec)

(* Telemetry arm: the warm substrate again, but with the request plane
   fully armed — Obs on, every request running inside an Obs.Scope
   (counter snapshot + captured span subtree) and leaving one JSONL line
   in an event log.  Against the plain warm arm this prices the
   observability tax the telemetry-smoke CI job gates at 5% on p50. *)
let server_warm_telemetry_service =
  lazy
    (let service = Server.Service.create (Server.Registry.create ~jobs:1 ()) in
     let log =
       Obs.Event_log.create ~level:Obs.Event_log.Info
         (Filename.temp_file "clio_bench_telemetry" ".log")
     in
     Server.Service.set_telemetry service (Server.Telemetry.create ~log ());
     service)

let server_loadgen_telemetry () =
  (* Leave the switch as found: the timing harness runs with Obs off, the
     counter harness with Obs on and a live workload span. *)
  let was_enabled = Obs.enabled () in
  if not was_enabled then Obs.enable ();
  Fun.protect
    ~finally:(fun () -> if not was_enabled then Obs.disable ())
    (fun () ->
      ignore
        (Server.Loadgen.run_inprocess ~verify:false
           (Lazy.force server_warm_telemetry_service)
           b16_spec))

let server_tests =
  [
    Test.make ~name:"server/loadgen/cold" (Staged.stage server_loadgen_cold);
    Test.make ~name:"server/loadgen/warm" (Staged.stage server_loadgen_warm);
    Test.make ~name:"server/loadgen/telemetry"
      (Staged.stage server_loadgen_telemetry);
  ]

(* --- B11: illustration at scale — full universe vs sampled slice --- *)

let sampling_tests =
  let inst =
    Synth.Gen_graph.chain (seeded 23) ~n:3 ~rows:4000 ~null_prob:0.2 ~orphan_prob:0.15 ()
  in
  let db = inst.Synth.Gen_graph.db in
  let aliases = Qgraph.aliases inst.Synth.Gen_graph.graph in
  let m =
    Clio.Mapping.make ~graph:inst.Synth.Gen_graph.graph ~target:"T"
      ~target_cols:(List.map (fun a -> "c_" ^ a) aliases)
      ~correspondences:
        (List.map
           (fun a -> Clio.Correspondence.identity ("c_" ^ a) (Attr.make a "id"))
           aliases)
      ()
  in
  [
    Test.make ~name:"sampling/full-illustrate"
      (Staged.stage (fun () ->
           let universe = Clio.Mapping_eval.examples (Clio.Eval_ctx.transient db) m in
           ignore
             (Clio.Sufficiency.select ~universe
                ~target_cols:m.Clio.Mapping.target_cols ())));
    Test.make ~name:"sampling/sliced-illustrate"
      (Staged.stage (fun () ->
           ignore (Clio.Sampling.illustrate_sampled ~seed:3 ~per_relation:12 (Clio.Eval_ctx.transient db) m)));
  ]

(* --- B12: join implementations and attribute matching --- *)

let join_impl_tests =
  let st = seeded 29 in
  let mk name rows =
    Relation.create name
      (Schema.make name [ "k"; "p" ])
      (List.init rows (fun i ->
           Tuple.make [ Value.Int (Random.State.int st (rows / 2)); Value.Int i ]))
  in
  let l = mk "L" 3000 and r = mk "R" 3000 in
  let p = Predicate.eq_cols (Attr.make "L" "k") (Attr.make "R" "k") in
  [
    Test.make ~name:"join/hash/3000"
      (Staged.stage (fun () -> ignore (Algebra.join p l r)));
    Test.make ~name:"join/sort-merge/3000"
      (Staged.stage (fun () -> ignore (Algebra.join_sort_merge p l r)));
    Test.make ~name:"join/nested-loop/600"
      (let l = mk "L2" 600 and r = mk "R2" 600 in
       let p = Predicate.eq_cols (Attr.make "L2" "k") (Attr.make "R2" "k") in
       Staged.stage (fun () -> ignore (Algebra.join_nested_loop p l r)));
  ]

let match_tests =
  let db = Paperdata.Figure1.database in
  [
    Test.make ~name:"match/kids-columns"
      (Staged.stage (fun () ->
           ignore
             (Schemakb.Match.suggest db
                ~target_cols:[ "ID"; "name"; "affiliation"; "contactPh"; "BusSchedule" ])));
  ]

(* --- B13: static category pruning (required aliases) --- *)

let pruning_tests =
  let inst =
    Synth.Gen_graph.star (seeded 31) ~leaves:4 ~rows:200 ~null_prob:0.25
      ~orphan_prob:0.2 ()
  in
  let db = inst.Synth.Gen_graph.db in
  let aliases = Qgraph.aliases inst.Synth.Gen_graph.graph in
  let m =
    Clio.Mapping.make ~graph:inst.Synth.Gen_graph.graph ~target:"T"
      ~target_cols:(List.map (fun a -> "c_" ^ a) aliases)
      ~correspondences:
        (List.map
           (fun a -> Clio.Correspondence.identity ("c_" ^ a) (Attr.make a "id"))
           aliases)
      ~target_filters:[ Predicate.Is_not_null (Expr.col "T" "c_Fact") ]
      ()
  in
  [
    Test.make ~name:"pruning/full-eval"
      (Staged.stage (fun () -> ignore (Clio.Mapping_eval.eval (Clio.Eval_ctx.transient db) m)));
    Test.make ~name:"pruning/pruned-eval"
      (Staged.stage (fun () -> ignore (Clio.Mapping_analysis.eval_pruned (Clio.Eval_ctx.transient db) m)));
  ]

(* --- B14: parallel evaluation — domain-pool ablation (jobs=1 vs jobs=4) ---

   The same D(G) computed through a sequential context and through one
   backed by a 4-domain Par pool, on the large synth star: the naive
   algorithm materializes an F(J) per connected subgraph, which is exactly
   the Par.map fan-out inside Full_disjunction.  Fresh no-cache contexts
   so both arms do full work every run.  On a single-core host the two
   arms time alike (parity, not speedup): CI only arms compare.exe's
   `--require-faster par/jobs4 par/jobs1 1.5` gate when the runner
   reports 2+ cores. *)

let par_tests =
  let inst =
    Synth.Gen_graph.star (seeded 41) ~leaves:4 ~rows:(if quick then 100 else 250)
      ~null_prob:0.25 ~orphan_prob:0.2 ()
  in
  let db = inst.Synth.Gen_graph.db in
  let g = inst.Synth.Gen_graph.graph in
  let eval jobs () =
    let ctx =
      Clio.Eval_ctx.create ~algorithm:Clio.Eval_ctx.Naive ~no_cache:true ~jobs db
    in
    ignore (Clio.Eval_ctx.data_associations ctx g)
  in
  [
    Test.make ~name:"par/jobs1" (Staged.stage (eval 1));
    Test.make ~name:"par/jobs4" (Staged.stage (eval 4));
  ]

(* --- B17: columnar data plane — million-tuple full disjunction +
   subsumption, columnar vs boxed ablation ---

   A three-relation FK chain built column-natively (interned int keys
   plus a string payload per relation), evaluated end to end through
   [Full_disjunction.compute_relation]: per-category joins, padded
   union, min-union subsumption sweep, canonical order.  The two arms
   run the identical pipeline and differ only in
   [Relational.Columnar.enabled] — batch int kernels against the boxed
   tuple path (the `--no-columnar` ablation).  CI gates
   colplane/columnar at 10x over colplane/boxed via compare.exe. *)

let b17_rows = if quick then 120_000 else 350_000

let b17_instance =
  lazy
    (let st = seeded 53 in
     let names = [ "A"; "B"; "C" ] in
     let db =
       Synth.Gen_db.columnar_chain_db st ~names ~rows:b17_rows
         ~payload_domain:(b17_rows / 4) ~null_prob:0.2 ()
     in
     let edges = [ ("A", "B"); ("B", "C") ] in
     let graph =
       Qgraph.make
         (List.map (fun n -> (n, n)) names)
         (List.map
            (fun (c, p) ->
              (c, p, Predicate.eq_cols (Attr.make c ("fk_" ^ p)) (Attr.make p "id")))
            edges)
     in
     (db, graph))

let b17_eval ~columnar () =
  let db, g = Lazy.force b17_instance in
  Columnar.with_enabled columnar (fun () ->
      ignore
        (Fulldisj.Full_disjunction.compute_relation (Fulldisj.Source.of_db db) g))

let colplane_tests =
  [
    Test.make ~name:"colplane/columnar" (Staged.stage (b17_eval ~columnar:true));
    Test.make ~name:"colplane/boxed" (Staged.stage (b17_eval ~columnar:false));
  ]

(* --- B18: branching version store — warm-restart vs cold-restart
   ablation ---

   A fork-heavy store persisted once: one chain-scenario session whose
   trunk is forked into K branches, each committing a private example
   insert.  Both arms then simulate a server reboot — fresh registry,
   [Registry.restore] replaying the snapshot + changelog — and evaluate
   D(G) on every branch, trunk first.  The warm arm restores over a
   shared cache: the trunk evaluation fills entries at the fork-root
   version and every sibling branch promotes them across the fork
   ([cache.promote.cross_branch.*]); the cold arm (no cache) recomputes
   each branch from scratch.  The counter table and headline check the
   promotions fire and the per-branch digests match byte-for-byte. *)

let b18_rows = if quick then 400 else 2000
let b18_branches = 6

let b18_store_dir =
  lazy
    (let dir = Filename.temp_file "clio_b18_store" "" in
     Sys.remove dir;
     let registry = Server.Registry.create ~jobs:1 () in
     let session =
       Server.Registry.open_session registry
         (Server.Protocol.Chain { n = 3; rows = b18_rows; seed = 7 })
     in
     let store = session.Server.Registry.store in
     for k = 1 to b18_branches do
       let name = Printf.sprintf "fork-%d" k in
       ignore (Version.Store.branch store ~from:Version.Store.main name);
       ignore
         (Version.Store.commit store ~branch:name
            (Version.Op.Insert
               {
                 relation = "R1";
                 rows =
                   [
                     [|
                       Value.Int (2_000_000 + k);
                       Value.String name;
                       Value.Int k;
                     |];
                   ];
               }))
     done;
     Server.Registry.persist registry ~dir;
     dir)

let b18_digests ~warm () =
  let dir = Lazy.force b18_store_dir in
  let registry = Server.Registry.create ~jobs:1 ~no_cache:(not warm) () in
  ignore (Server.Registry.restore registry ~dir);
  let stores =
    List.fold_left
      (fun acc sid ->
        match Server.Registry.find registry sid with
        | Some s when not (List.memq s.Server.Registry.store acc) ->
            s.Server.Registry.store :: acc
        | _ -> acc)
      []
      (Server.Registry.session_ids registry)
    |> List.rev
  in
  List.concat_map
    (fun store ->
      List.map
        (fun branch ->
          let ws = Version.Store.checkout store branch in
          let ctx = Clio.Workspace.ctx ws in
          let mapping = (Clio.Workspace.active ws).Clio.Workspace.mapping in
          let rel =
            Fulldisj.Full_disjunction.to_relation
              (Clio.Mapping_eval.data_associations ctx mapping)
          in
          (branch, Digest.to_hex (Digest.string (Render.relation rel))))
        (Version.Store.branch_names store))
    stores

let restart_tests =
  [
    Test.make ~name:"version/restart/warm"
      (Staged.stage (fun () -> ignore (b18_digests ~warm:true ())));
    Test.make ~name:"version/restart/cold"
      (Staged.stage (fun () -> ignore (b18_digests ~warm:false ())));
  ]

(* --- B19: concurrent request execution — socket throughput, workers=4
   vs workers=1 ---

   The real server binary over a Unix socket, one long-lived process per
   arm, identical except for --workers.  The measured unit is one
   concurrent Loadgen.run_socket burst: 4 clients driven from one
   multiplexed thread, each with one request in flight, sessions opened
   per burst so each client's post-insert evaluations are private work
   the 4-worker arm can overlap across its shards.  --jobs stays 1 so
   the only parallelism under test is the worker plane.  Digest parity
   against the sequential in-process replay is proved by one verified
   priming burst per arm (and the B19 headline re-checks it); the timed
   bursts then run with verification off.  On a single-core host the two
   arms time alike: CI only arms compare.exe's `--require-faster
   server/socket/workers4 server/socket/workers1 1.5` gate when the
   runner reports 2+ cores. *)

let b19_spec =
  {
    Server.Loadgen.scenario =
      Server.Protocol.Chain { n = 3; rows = (if quick then 150 else 400); seed = 11 };
    clients = 4;
    ops = 12;
    limit = None;
    keep_open = false;
  }

let b19_serve_exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "clio_serve.exe"))

let b19_spawn workers =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "clio-b19-w%d-%d.sock" workers (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process b19_serve_exe
      [|
        "clio_serve"; "serve"; "--socket"; path; "--jobs"; "1"; "--workers";
        string_of_int workers; "--queue"; "64";
      |]
      null null Unix.stderr
  in
  Unix.close null;
  at_exit (fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ());
  (* Wait until the server is accepting, then prove digest parity once:
     the verified burst replays every client sequentially in process and
     compares evaluation digests byte-for-byte. *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ when Unix.gettimeofday () < deadline ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        ignore (Unix.select [] [] [] 0.05);
        wait ()
  in
  wait ();
  let primed =
    Server.Loadgen.run_socket ~verify:true
      ~address:(Server.Loop.Unix_path path) b19_spec
  in
  if primed.Server.Loadgen.mismatches <> Some 0 then
    failwith
      (Printf.sprintf "B19 workers=%d: digest mismatch vs sequential replay"
         workers);
  path

let b19_server_w1 = lazy (b19_spawn 1)
let b19_server_w4 = lazy (b19_spawn 4)

let b19_burst server () =
  ignore
    (Server.Loadgen.run_socket ~verify:false
       ~address:(Server.Loop.Unix_path (Lazy.force server))
       b19_spec)

let socket_workers_tests =
  [
    Test.make ~name:"server/socket/workers1"
      (Staged.stage (b19_burst b19_server_w1));
    Test.make ~name:"server/socket/workers4"
      (Staged.stage (b19_burst b19_server_w4));
  ]

let all_tests =
  minunion_tests @ fulldisj_tests @ illustration_tests @ walk_tests @ chase_tests
  @ mapping_tests @ mine_tests @ evolve_tests @ engine_walk_tests
  @ engine_session_tests @ engine_edit_tests @ server_tests @ sampling_tests
  @ join_impl_tests @ match_tests @ pruning_tests @ par_tests @ colplane_tests
  @ restart_tests @ socket_workers_tests

(* --- running and reporting --- *)

let run_benchmarks () =
  (* Data generation must not be charged to the first timed run of the
     arm that happens to force it (at CI quotas that's the only run). *)
  ignore (Lazy.force b17_instance);
  ignore (Lazy.force b18_store_dir);
  (* Server spawn + verified priming burst must not be charged to the
     first timed B19 run either. *)
  ignore (Lazy.force b19_server_w1);
  ignore (Lazy.force b19_server_w4);
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.1 else 0.5))
      ~stabilize:false ()
  in
  let results = ref [] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let anl = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> e
            | _ -> nan
          in
          results := (name, ns) :: !results)
        anl)
    all_tests;
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) !results in
  let pretty ns =
    if Float.is_nan ns then "n/a"
    else if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
    else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
    else Printf.sprintf "%8.0f ns" ns
  in
  Printf.printf "%-32s %12s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 46 '-');
  List.iter (fun (name, ns) -> Printf.printf "%-32s %12s\n" name (pretty ns)) sorted;
  sorted

(* --- measured workloads (part 3) ---

   Each workload runs exactly once with observability on, under a root
   span, capturing (a) the operator counters — exact operation counts,
   independent of machine noise, (b) the GC allocation delta of the whole
   workload, and (c) the span-duration histograms with percentiles.  The
   printed tables and the bench JSON document both read from this one
   registry, so a workload never runs twice.  Counter keys come from
   Obs.Names, the same authoritative list the pipeline increments. *)

type measurement = {
  counters : (string * int) list;
  hists : (string * Obs.Histogram.stats) list;
  alloc : Obs.Span.alloc;
}

let measured : (string * measurement) list ref = ref []

let measure name f =
  Obs.enable ();
  Obs.reset ();
  Obs.Span.with_span "workload" (fun () -> ignore (f ()));
  let snap = Obs.Metrics.snapshot () in
  let alloc =
    match Obs.finished_spans () with
    | [ root ] -> Obs.Span.alloc root
    | _ ->
        { Obs.Span.minor_words = 0.; major_words = 0.; promoted_words = 0. }
  in
  Obs.disable ();
  Obs.reset ();
  measured :=
    ( name,
      {
        counters = snap.Obs.Metrics.counters;
        hists =
          (* The synthetic root would otherwise pollute the per-span data. *)
          List.filter
            (fun (n, _) -> n <> "span.workload")
            snap.Obs.Metrics.histograms;
        alloc;
      } )
    :: !measured

let measurement_of name =
  match List.assoc_opt name !measured with
  | Some m -> m
  | None ->
      {
        counters = [];
        hists = [];
        alloc = { Obs.Span.minor_words = 0.; major_words = 0.; promoted_words = 0. };
      }

let counter name c =
  match
    List.assoc_opt (Obs.Counter.name c) (measurement_of name).counters
  with
  | Some v -> v
  | None -> 0

(* The instrumented workload list, covering B1–B10 and B15.  Names are
   stable: they
   key the printed tables, the "workloads" section of the bench JSON, and
   therefore the baseline comparisons across commits. *)
let workloads : (string * (unit -> unit)) list =
  (* B1: subsumption removal, per algorithm and size. *)
  List.concat_map
    (fun size ->
      let tuples = minunion_input size in
      List.map
        (fun (name, f) ->
          (Printf.sprintf "minunion/%s/%d" name size, fun () -> ignore (f tuples)))
        [
          ("naive", Fulldisj.Min_union.remove_subsumed_naive);
          ("indexed", fun ts -> Fulldisj.Min_union.remove_subsumed ts);
          ("first-probe", Fulldisj.Min_union.remove_subsumed_first_probe);
        ])
    minunion_sizes
  (* B2: full disjunction, per algorithm and chain shape. *)
  @ List.concat_map
      (fun (n, rows) ->
        let inst =
          Synth.Gen_graph.chain (seeded 7) ~n ~rows ~null_prob:0.25
            ~orphan_prob:0.2 ()
        in
        let lookup = Database.find inst.Synth.Gen_graph.db in
        let g = inst.Synth.Gen_graph.graph in
        List.map
          (fun (name, f) ->
            (Printf.sprintf "fulldisj/%s/n%d-r%d" name n rows, fun () -> f ~lookup g))
          [
            ( "naive",
              fun ~lookup g -> ignore (Fulldisj.Full_disjunction.naive (Fulldisj.Source.of_fn lookup) g) );
            ( "indexed",
              fun ~lookup g -> ignore (Fulldisj.Full_disjunction.compute (Fulldisj.Source.of_fn lookup) g)
            );
            ( "outerjoin",
              fun ~lookup g ->
                ignore (Fulldisj.Outerjoin_plan.full_disjunction (Fulldisj.Source.of_fn lookup) g) );
          ])
      fulldisj_configs
  (* B3/B6: end-to-end illustration on the paper mapping. *)
  @ [
      ( "illustrate/paper",
        fun () ->
          ignore (Clio.illustrate (Clio.Eval_ctx.transient Paperdata.Figure1.database) Paperdata.Running.mapping)
      );
    ]
  (* B4: walk enumeration on the widest star. *)
  @ [
      ( "walk/leaves8-len3",
        let inst = Synth.Gen_graph.star (seeded 11) ~leaves:8 ~rows:10 () in
        let m =
          Clio.Mapping.make
            ~graph:(Qgraph.singleton ~alias:"Fact" ~base:"Fact")
            ~target:"T" ~target_cols:[ "x" ] ()
        in
        fun () ->
          ignore
            (Clio.Op_walk.walk_alternatives ~kb:inst.Synth.Gen_graph.kb m ~start:"Fact"
               ~goal:"D8" ~max_len:3 ()) );
    ]
  (* B5: chase scans, per size. *)
  @ List.map
      (fun rows ->
        let inst = Synth.Gen_graph.chain (seeded 13) ~n:4 ~rows () in
        let db = inst.Synth.Gen_graph.db in
        let m =
          Clio.Mapping.make
            ~graph:(Qgraph.singleton ~alias:"R1" ~base:"R1")
            ~target:"T" ~target_cols:[ "x" ] ()
        in
        ( Printf.sprintf "chase/rows%d" rows,
          fun () ->
            ignore
              (Clio.Op_chase.chase (Clio.Eval_ctx.transient db) m ~attr:(Attr.make "R1" "id")
                 ~value:(Value.Int (rows / 2))) ))
      chase_sizes
  (* B6: end-to-end mapping evaluation on the paper database. *)
  @ [
      ( "mapping/eval-section2",
        fun () ->
          ignore
            (Clio.Mapping_eval.eval (Clio.Eval_ctx.transient Paperdata.Figure1.database)
               Paperdata.Running.section2_mapping) );
    ]
  (* B7: inclusion-dependency mining, per size. *)
  @ List.map
      (fun rows ->
        let inst = Synth.Gen_graph.star (seeded 17) ~leaves:5 ~rows () in
        ( Printf.sprintf "mine/rows%d" rows,
          fun () ->
            ignore (Schemakb.Mine.inclusion_dependencies inst.Synth.Gen_graph.db)
        ))
      mine_sizes
  (* B8: illustration evolution after a walk. *)
  @ [
      ( "evolve/walk-extension",
        let db = Paperdata.Figure1.database in
        let kb = Paperdata.Figure1.kb in
        let old_m = Paperdata.Running.mapping_g1 in
        fun () ->
          let old_ill = Clio.illustrate (Clio.Eval_ctx.transient db) old_m in
          let new_m =
            (List.hd
               (Clio.Op_walk.walk_alternatives ~kb old_m ~start:"Children"
                  ~goal:"PhoneDir" ~max_len:2 ()))
              .Clio.Op_walk.mapping
          in
          ignore
            (Clio.Evolution.evolve (Clio.Eval_ctx.transient db) ~old_mapping:old_m
               ~old_illustration:old_ill new_m) );
    ]
  (* B9/B10: engine cache ablation — the cache.* counters recorded here are
     the hit/miss/eviction story behind the part-2 timing difference. *)
  @ [
      ("engine/walk-reuse/cached", engine_walk_replay ~no_cache:false);
      ("engine/walk-reuse/no-cache", engine_walk_replay ~no_cache:true);
      ("engine/session-replay/cached", engine_session_replay ~no_cache:false);
      ("engine/session-replay/no-cache", engine_session_replay ~no_cache:true);
    ]
  (* B15: incremental maintenance ablation — the cache.promote.* / delta.*
     counters are the promotion-vs-fallback story behind the timings. *)
  @ [
      ("engine/example-edit/incremental", engine_edit_replay ~incremental:true);
      ( "engine/example-edit/no-incremental",
        engine_edit_replay ~incremental:false );
    ]
  (* B16: the multi-session server under scripted load — the cache.*
     counters here show the warm substrate absorbing the cold arm's
     misses. *)
  @ [
      ("server/loadgen/cold", server_loadgen_cold);
      ("server/loadgen/warm", server_loadgen_warm);
      ("server/loadgen/telemetry", server_loadgen_telemetry);
    ]
  (* B17: columnar data plane ablation — both arms run the identical
     full-disjunction pipeline, so the counter deltas (hash probes vs
     index probes, subsumption checks) expose where each representation
     spends its operations; wall-time lives in part 2. *)
  @ [
      ("colplane/columnar", b17_eval ~columnar:true);
      ("colplane/boxed", b17_eval ~columnar:false);
    ]
  (* B18: restart-resume over the branching version store — the
     cross-branch promotion counters are the evidence that branches with
     a common ancestor share warm entries after a reboot. *)
  @ [
      ("version/restart/warm", fun () -> ignore (b18_digests ~warm:true ()));
      ("version/restart/cold", fun () -> ignore (b18_digests ~warm:false ()));
    ]

let run_measurements () =
  (* Prime B16's persistent substrate so the measured warm arm really runs
     against a populated shared cache (counters are reset per workload). *)
  server_loadgen_warm ();
  List.iter (fun (name, f) -> measure name f) workloads

let counter_table ~title ~columns rows =
  print_endline title;
  print_newline ();
  let width =
    List.fold_left (fun w label -> max w (String.length label)) 8 rows
  in
  Printf.printf "%-*s" width "workload";
  List.iter (fun (h, _) -> Printf.printf " %16s" h) columns;
  print_newline ();
  Printf.printf "%s\n" (String.make (width + (17 * List.length columns)) '-');
  List.iter
    (fun label ->
      Printf.printf "%-*s" width label;
      List.iter (fun (_, c) -> Printf.printf " %16d" (counter label c)) columns;
      print_newline ())
    rows;
  print_newline ()

let workload_names prefix =
  List.filter
    (fun (name, _) ->
      String.length name >= String.length prefix
      && String.sub name 0 (String.length prefix) = prefix)
    workloads
  |> List.map fst

let run_counter_tables () =
  counter_table ~title:"B1 — subsumption removal: exact work per algorithm"
    ~columns:
      [
        ("subs.checks", Obs.Names.subsumption_checks);
        ("index.probes", Obs.Names.index_probes);
      ]
    (workload_names "minunion/");
  counter_table
    ~title:
      "B2/B3 — full disjunction D(G): exact work per algorithm (chain graphs)"
    ~columns:
      [
        ("subs.checks", Obs.Names.subsumption_checks);
        ("index.probes", Obs.Names.index_probes);
        ("assoc.considered", Obs.Names.assoc_considered);
        ("join.rows_out", Obs.Names.join_rows_out);
      ]
    (workload_names "fulldisj/");
  counter_table
    ~title:"B5 — chase: occurrences scanned up vs alternatives offered"
    ~columns:
      [
        ("occurrences", Obs.Names.chase_occurrences);
        ("alternatives", Obs.Names.chase_alternatives);
      ]
    (workload_names "chase/");
  counter_table ~title:"B3/B6 — end-to-end illustration on the paper mapping"
    ~columns:
      [
        ("examples", Obs.Names.eval_examples);
        ("ill.candidates", Obs.Names.illustration_candidates);
        ("ill.selected", Obs.Names.illustration_selected);
      ]
    [ "illustrate/paper" ];
  counter_table
    ~title:"B9/B10 — engine cache: memo traffic per tier (cached vs no-cache)"
    ~columns:
      [
        ("fj.hits", Obs.Names.cache_fj_hits);
        ("fj.misses", Obs.Names.cache_fj_misses);
        ("dg.hits", Obs.Names.cache_dg_hits);
        ("dg.misses", Obs.Names.cache_dg_misses);
        ("bytes", Obs.Names.cache_bytes_resident);
      ]
    (workload_names "engine/");
  counter_table
    ~title:
      "B15 — incremental maintenance: promotions vs fallbacks (example edits)"
    ~columns:
      [
        ("delta.records", Obs.Names.delta_records);
        ("promote.fj.free", Obs.Names.cache_promote_fj_free);
        ("promote.fj.rep", Obs.Names.cache_promote_fj_repaired);
        ("promote.dg.free", Obs.Names.cache_promote_dg_free);
        ("promote.dg.rep", Obs.Names.cache_promote_dg_repaired);
        ("delta.fallbacks", Obs.Names.delta_fallbacks);
      ]
    (workload_names "engine/example-edit/");
  counter_table
    ~title:"B16 — server loadgen: memo traffic, cold vs warm substrate"
    ~columns:
      [
        ("fj.hits", Obs.Names.cache_fj_hits);
        ("fj.misses", Obs.Names.cache_fj_misses);
        ("dg.hits", Obs.Names.cache_dg_hits);
        ("dg.misses", Obs.Names.cache_dg_misses);
        ("bytes", Obs.Names.cache_bytes_resident);
      ]
    (workload_names "server/");
  counter_table
    ~title:
      "B17 — columnar data plane: same pipeline, same work, different \
       representation"
    ~columns:
      [
        ("join.probes", Obs.Names.join_hash_probes);
        ("join.rows_out", Obs.Names.join_rows_out);
        ("subs.checks", Obs.Names.subsumption_checks);
        ("index.probes", Obs.Names.index_probes);
      ]
    (workload_names "colplane/");
  counter_table
    ~title:
      "B18 — branching version store: restart replay + cross-branch \
       promotion (warm vs cold)"
    ~columns:
      [
        ("replayed", Obs.Names.version_snapshot_commits_replayed);
        ("cross.fj", Obs.Names.cache_promote_fj_cross_branch);
        ("cross.dg", Obs.Names.cache_promote_dg_cross_branch);
        ("promote.dg.free", Obs.Names.cache_promote_dg_free);
        ("delta.fallbacks", Obs.Names.delta_fallbacks);
      ]
    (workload_names "version/restart/");
  (* B18 headline: both reboot arms must agree byte-for-byte on every
     branch — the warm cache is an optimization, never an answer change. *)
  (let warm = b18_digests ~warm:true () in
   let cold = b18_digests ~warm:false () in
   let agree =
     List.length warm = List.length cold
     && List.for_all2
          (fun (b1, d1) (b2, d2) -> String.equal b1 b2 && String.equal d1 d2)
          warm cold
   in
   Printf.printf
     "B18 — restart-resume headline: %d branches re-evaluated, warm vs cold \
      digests %s\n\n"
     (List.length warm)
     (if agree then "byte-identical" else "MISMATCH"));
  (* B16 headline: one verified run per arm, end-to-end numbers. *)
  let b16_outcome ~arm =
    let service =
      match arm with
      | `Cold -> Server.Service.create (Server.Registry.create ~jobs:1 ())
      | `Warm -> Lazy.force server_warm_service
      | `Telemetry -> Lazy.force server_warm_telemetry_service
    in
    if arm = `Telemetry then Obs.enable ();
    Fun.protect
      ~finally:(fun () -> if arm = `Telemetry then Obs.disable ())
      (fun () -> Server.Loadgen.run_inprocess ~verify:true service b16_spec)
  in
  print_endline
    (Printf.sprintf
       "B16 — server loadgen headline (%d clients x %d ops, paper scenario)"
       b16_spec.Server.Loadgen.clients b16_spec.Server.Loadgen.ops);
  print_newline ();
  Printf.printf "%-6s %10s %10s %10s %8s %10s\n" "arm" "ops/s" "p50(us)"
    "p99(us)" "errors" "verified";
  Printf.printf "%s\n" (String.make 60 '-');
  List.iter
    (fun (label, arm) ->
      let o = b16_outcome ~arm in
      Printf.printf "%-6s %10.0f %10.0f %10.0f %8d %10s\n" label
        o.Server.Loadgen.throughput o.Server.Loadgen.p50_us
        o.Server.Loadgen.p99_us o.Server.Loadgen.errors
        (match o.Server.Loadgen.mismatches with
        | Some 0 -> "yes"
        | Some n -> Printf.sprintf "NO(%d)" n
        | None -> "off"))
    [ ("cold", `Cold); ("warm", `Warm); ("telem", `Telemetry) ];
  print_newline ();
  (* B19 headline: the socket arms, one verified concurrent burst each —
     end-to-end throughput plus the byte-for-byte digest check against
     the sequential in-process replay. *)
  print_endline
    (Printf.sprintf
       "B19 — concurrent request execution headline (%d clients x %d ops, \
        chain scenario, socket)"
       b19_spec.Server.Loadgen.clients b19_spec.Server.Loadgen.ops);
  print_newline ();
  Printf.printf "%-10s %10s %10s %10s %8s %10s\n" "arm" "ops/s" "p50(us)"
    "p99(us)" "errors" "verified";
  Printf.printf "%s\n" (String.make 64 '-');
  List.iter
    (fun (label, server) ->
      let o =
        Server.Loadgen.run_socket ~verify:true
          ~address:(Server.Loop.Unix_path (Lazy.force server))
          b19_spec
      in
      Printf.printf "%-10s %10.0f %10.0f %10.0f %8d %10s\n" label
        o.Server.Loadgen.throughput o.Server.Loadgen.p50_us
        o.Server.Loadgen.p99_us o.Server.Loadgen.errors
        (match o.Server.Loadgen.mismatches with
        | Some 0 -> "yes"
        | Some n -> Printf.sprintf "NO(%d)" n
        | None -> "off"))
    [ ("workers=1", b19_server_w1); ("workers=4", b19_server_w4) ];
  print_newline ();
  (* Allocation per workload: the memory-side counterpart of part 2. *)
  let names = List.map fst workloads in
  let width =
    List.fold_left (fun w n -> max w (String.length n)) 8 names
  in
  print_endline "B1–B16 — GC allocation per workload (words)";
  print_newline ();
  Printf.printf "%-*s %14s %14s %14s\n" width "workload" "minor" "major"
    "promoted";
  Printf.printf "%s\n" (String.make (width + 45) '-');
  List.iter
    (fun name ->
      let a = (measurement_of name).alloc in
      Printf.printf "%-*s %14.0f %14.0f %14.0f\n" width name
        a.Obs.Span.minor_words a.Obs.Span.major_words a.Obs.Span.promoted_words)
    names;
  print_newline ()

(* --- bench JSON (consumed by bench/compare.exe) ---

   {
     "schema_version": 1, "kind": "bench", "label": ...,
     "environment": { ... as Metrics_export ... },
     "benchmarks": { "<bechamel test>": { "time_ns": ... }, ... },
     "workloads":  { "<workload>": { "counters": {...}, "alloc": {...},
                                     "histograms": {...} }, ... }
   } *)

let bench_json ~label ~times =
  let open Obs.Json in
  let workload_json (m : measurement) =
    Obj
      [
        ( "counters",
          Obj (List.map (fun (k, v) -> (k, Num (float_of_int v))) m.counters) );
        ( "alloc",
          Obj
            [
              ("minor_words", Num m.alloc.Obs.Span.minor_words);
              ("major_words", Num m.alloc.Obs.Span.major_words);
              ("promoted_words", Num m.alloc.Obs.Span.promoted_words);
            ] );
        ( "histograms",
          Obj
            (List.map
               (fun (k, s) -> (k, Obs.Metrics_export.histogram_json s))
               m.hists) );
      ]
  in
  Obj
    [
      ("schema_version", Num 1.);
      ("kind", Str "bench");
      ("label", Str label);
      ("quick", Bool quick);
      ( "environment",
        Obj
          (List.map
             (fun (k, v) -> (k, Str v))
             (Obs.Metrics_export.environment ())) );
      ( "benchmarks",
        Obj
          (List.map (fun (name, ns) -> (name, Obj [ ("time_ns", Num ns) ])) times)
      );
      ( "workloads",
        Obj
          (List.rev_map (fun (name, m) -> (name, workload_json m)) !measured) );
    ]

let write_bench_json ~label ~file ~times =
  let oc = open_out file in
  output_string oc (Obs.Json.to_string_pretty (bench_json ~label ~times));
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "bench json written to %s\n" file

let () =
  let figures = not (List.mem "--no-figures" argv) in
  let bench = not (List.mem "--no-bench" argv) in
  let stats = not (List.mem "--no-stats" argv) in
  let json = label <> None || out_file <> None in
  if figures then begin
    print_endline "######################################################";
    print_endline "# Part 1: paper evaluation — figures and examples   #";
    print_endline "######################################################\n";
    List.iter
      (fun (id, descr, render) ->
        Printf.printf "==== %s — %s ====\n%s\n\n" id descr (render ()))
      Paperdata.Report.all
  end;
  let times =
    if bench || json then begin
      print_endline "######################################################";
      print_endline "# Part 2: performance benchmarks (B1-B17)           #";
      print_endline "######################################################\n";
      run_benchmarks ()
    end
    else []
  in
  if stats || json then begin
    run_measurements ();
    if stats then begin
      print_endline "######################################################";
      print_endline "# Part 3: operator counters & allocation (lib/obs)  #";
      print_endline "######################################################\n";
      run_counter_tables ()
    end
  end;
  if json then begin
    let label = Option.value label ~default:"run" in
    let file =
      match out_file with
      | Some f -> f
      | None -> Printf.sprintf "BENCH_%s.json" label
    in
    write_bench_json ~label ~file ~times
  end
