(* Diff two bench JSON documents and fail on regression.

   Usage:  compare BASELINE.json CURRENT.json
             [--time-tol R] [--counter-tol R] [--alloc-tol R]
             [--report-only]

   Prints the per-metric diff tables (time, counters, allocation) and
   exits 0 when no tracked metric regressed beyond tolerance (or with
   --report-only, always), 1 on regression, 2 on unusable input.  The
   diff itself lives in Obs.Bench_compare; this is only the CLI. *)

let usage () =
  prerr_endline
    "usage: compare BASELINE.json CURRENT.json [--time-tol R] [--counter-tol \
     R] [--alloc-tol R] [--report-only]";
  exit 2

let () =
  let argv = Array.to_list Sys.argv |> List.tl in
  let report_only = List.mem "--report-only" argv in
  let tol_value name default =
    let rec go = function
      | a :: v :: _ when a = name -> (
          match float_of_string_opt v with
          | Some f when f > 0. -> f
          | _ ->
              Printf.eprintf "compare: %s needs a positive number, got %S\n"
                name v;
              exit 2)
      | _ :: rest -> go rest
      | [] -> default
    in
    go argv
  in
  let tolerance =
    let d = Obs.Bench_compare.default_tolerance in
    {
      Obs.Bench_compare.time = tol_value "--time-tol" d.Obs.Bench_compare.time;
      counter = tol_value "--counter-tol" d.Obs.Bench_compare.counter;
      alloc = tol_value "--alloc-tol" d.Obs.Bench_compare.alloc;
    }
  in
  let takes_value a =
    List.mem a [ "--time-tol"; "--counter-tol"; "--alloc-tol" ]
  in
  let rec positional = function
    | [] -> []
    | a :: _ :: rest when takes_value a -> positional rest
    | a :: rest when String.length a >= 2 && String.sub a 0 2 = "--" ->
        positional rest
    | a :: rest -> a :: positional rest
  in
  let files = positional argv in
  match files with
  | [ baseline_file; current_file ] ->
      let load file =
        let contents =
          try
            let ic = open_in_bin file in
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            s
          with Sys_error msg ->
            Printf.eprintf "compare: %s\n" msg;
            exit 2
        in
        match Obs.Json.parse contents with
        | Ok j -> j
        | Error msg ->
            Printf.eprintf "compare: %s: %s\n" file msg;
            exit 2
      in
      let baseline = load baseline_file in
      let current = load current_file in
      (match Obs.Bench_compare.diff ~tolerance ~baseline ~current () with
      | Error msg ->
          Printf.eprintf "compare: %s\n" msg;
          exit 2
      | Ok outcome ->
          print_string outcome.Obs.Bench_compare.report;
          exit (Obs.Bench_compare.exit_code ~report_only outcome))
  | _ -> usage ()
