(* Diff two bench JSON documents and fail on regression.

   Usage:  compare BASELINE.json CURRENT.json
             [--time-tol R] [--counter-tol R] [--alloc-tol R]
             [--report-only] [--require-faster A B]...

   Prints the per-metric diff tables (time, counters, allocation) and
   exits 0 when no tracked metric regressed beyond tolerance (or with
   --report-only, always), 1 on regression, 2 on unusable input.  The
   diff itself lives in Obs.Bench_compare; this is only the CLI.

   --require-faster A B [RATIO] (repeatable) additionally asserts that
   in the CURRENT document benchmark A's time_ns is strictly below
   benchmark B's — an absolute ordering gate (e.g. cache-on must beat
   cache-off) that no baseline drift can erode.  An optional trailing
   RATIO (a float, e.g. 1.5) strengthens the gate to "A is at least
   RATIO times faster than B" (time_A * RATIO < time_B) — the B14
   parallel ablation uses this on multi-core runners.  Unlike the
   tolerance diff it is not silenced by --report-only. *)

let usage () =
  prerr_endline
    "usage: compare BASELINE.json CURRENT.json [--time-tol R] [--counter-tol \
     R] [--alloc-tol R] [--report-only] [--require-faster A B [RATIO]]...";
  exit 2

let () =
  let argv = Array.to_list Sys.argv |> List.tl in
  let report_only = List.mem "--report-only" argv in
  let tol_value name default =
    let rec go = function
      | a :: v :: _ when a = name -> (
          match float_of_string_opt v with
          | Some f when f > 0. -> f
          | _ ->
              Printf.eprintf "compare: %s needs a positive number, got %S\n"
                name v;
              exit 2)
      | _ :: rest -> go rest
      | [] -> default
    in
    go argv
  in
  let tolerance =
    let d = Obs.Bench_compare.default_tolerance in
    {
      Obs.Bench_compare.time = tol_value "--time-tol" d.Obs.Bench_compare.time;
      counter = tol_value "--counter-tol" d.Obs.Bench_compare.counter;
      alloc = tol_value "--alloc-tol" d.Obs.Bench_compare.alloc;
    }
  in
  let require_faster =
    let rec go = function
      | "--require-faster" :: a :: b :: rest -> (
          (* A trailing float is an optional speedup ratio; benchmark
             names never parse as one. *)
          match rest with
          | r :: rest' when float_of_string_opt r <> None ->
              let ratio = float_of_string r in
              if ratio <= 0. then begin
                Printf.eprintf
                  "compare: --require-faster ratio must be positive, got %S\n" r;
                exit 2
              end;
              (a, b, ratio) :: go rest'
          | _ -> (a, b, 1.0) :: go rest)
      | "--require-faster" :: _ ->
          prerr_endline "compare: --require-faster needs two benchmark names";
          exit 2
      | _ :: rest -> go rest
      | [] -> []
    in
    go argv
  in
  let takes_value a =
    List.mem a [ "--time-tol"; "--counter-tol"; "--alloc-tol" ]
  in
  let rec positional = function
    | [] -> []
    | "--require-faster" :: _ :: _ :: r :: rest when float_of_string_opt r <> None ->
        positional rest
    | "--require-faster" :: _ :: _ :: rest -> positional rest
    | a :: _ :: rest when takes_value a -> positional rest
    | a :: rest when String.length a >= 2 && String.sub a 0 2 = "--" ->
        positional rest
    | a :: rest -> a :: positional rest
  in
  let files = positional argv in
  match files with
  | [ baseline_file; current_file ] ->
      let load file =
        let contents =
          try
            let ic = open_in_bin file in
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            s
          with Sys_error msg ->
            Printf.eprintf "compare: %s\n" msg;
            exit 2
        in
        match Obs.Json.parse contents with
        | Ok j -> j
        | Error msg ->
            Printf.eprintf "compare: %s: %s\n" file msg;
            exit 2
      in
      let baseline = load baseline_file in
      let current = load current_file in
      let time_of doc name =
        match doc with
        | Obs.Json.Obj fields -> (
            match List.assoc_opt "benchmarks" fields with
            | Some (Obs.Json.Obj bs) -> (
                match List.assoc_opt name bs with
                | Some (Obs.Json.Obj m) -> (
                    match List.assoc_opt "time_ns" m with
                    | Some (Obs.Json.Num ns) -> Some ns
                    | _ -> None)
                | _ -> None)
            | _ -> None)
        | _ -> None
      in
      let ordering_failures =
        List.filter_map
          (fun (a, b, ratio) ->
            match (time_of current a, time_of current b) with
            | Some ta, Some tb when ta *. ratio < tb -> None
            | Some ta, Some tb ->
                Some
                  (if ratio > 1.0 then
                     Printf.sprintf
                       "require-faster: %s (%.0f ns) is not %.2fx faster than \
                        %s (%.0f ns)"
                       a ta ratio b tb
                   else
                     Printf.sprintf
                       "require-faster: %s (%.0f ns) is not faster than %s \
                        (%.0f ns)"
                       a ta b tb)
            | None, _ ->
                Some (Printf.sprintf "require-faster: no benchmark %S in %s" a
                        current_file)
            | _, None ->
                Some (Printf.sprintf "require-faster: no benchmark %S in %s" b
                        current_file))
          require_faster
      in
      (match Obs.Bench_compare.diff ~tolerance ~baseline ~current () with
      | Error msg ->
          Printf.eprintf "compare: %s\n" msg;
          exit 2
      | Ok outcome ->
          print_string outcome.Obs.Bench_compare.report;
          List.iter prerr_endline ordering_failures;
          let code = Obs.Bench_compare.exit_code ~report_only outcome in
          exit (if ordering_failures <> [] then max code 1 else code))
  | _ -> usage ()
