(* Differentiating alternative mappings with examples: the heart of the
   paper's thesis.  Two mappings may look almost identical as queries; the
   right data example makes the difference obvious.

   Build and run with:  dune exec examples/alternatives_tour.exe *)

open Relational
open Clio
module Qgraph = Querygraph.Qgraph
module Rank = Schemakb.Rank

let db = Paperdata.Figure1.database
let kb = Paperdata.Figure1.kb
let short = Paperdata.Figure1.short

let () =
  let m = Paperdata.Running.mapping_g1 in
  print_endline "Current mapping (children with their fathers' affiliations):";
  print_endline (Render.relation (Mapping_eval.target_view (Eval_ctx.transient db) m));

  print_endline "\nThe user wants phone numbers.  DataWalk(G1, Children, PhoneDir):";
  let alts = Op_walk.walk_alternatives ~kb m ~start:"Children" ~goal:"PhoneDir" ~max_len:2 () in

  (* Show each alternative with its rank score and Maya's example — the
     tuple the user knows, so she can tell mother from father. *)
  let maya =
    Relation.tuples (Database.get db "Children")
    |> List.filter (fun t -> Value.equal t.(0) (Value.String "002"))
  in
  List.iteri
    (fun i (a : Op_walk.alternative) ->
      let score = Rank.score ~kb ~old:m.Mapping.graph a.Op_walk.mapping.Mapping.graph in
      Printf.printf "\n--- Alternative %d (%s)\n    rank: %s\n" (i + 1)
        a.Op_walk.description
        (Format.asprintf "%a" Rank.pp score);
      let withcorr =
        Mapping.set_correspondence a.Op_walk.mapping
          (corr_identity "contactPh" a.Op_walk.new_alias "number")
      in
      let fd = Mapping_eval.data_associations (Eval_ctx.transient db) withcorr in
      let universe = Mapping_eval.examples (Eval_ctx.transient db) withcorr in
      let focus =
        Focus.focus_set ~universe ~scheme:fd.Fulldisj.Full_disjunction.scheme
          ~rel:"Children" ~tuples:maya
      in
      print_endline
        (Illustration.render_target ~short
           ~target_schema:(Mapping.target_schema withcorr) focus))
    alts;

  print_endline "\nMaya's mother (103, Acta) has phone 555-0103; her father";
  print_endline "(104, IBM) has 555-0104.  The examples make the semantics of";
  print_endline "each alternative obvious, where the SQL would not.";

  (* The same discrimination via the chase: where else does Maya appear? *)
  print_endline "\nChasing Maya's ID (002) through the database:";
  List.iter
    (fun (a : Op_chase.alternative) ->
      Printf.printf "  %s\n" a.Op_chase.description)
    (Op_chase.chase (Eval_ctx.transient db) m ~attr:(Attr.make "Children" "ID") ~value:(Value.String "002"));

  (* And how a subtle trimming decision shows up in the examples. *)
  let with_bus =
    match
      Op_walk.walk_alternatives ~kb m ~start:"Children" ~goal:"SBPS" ~max_len:1 ()
    with
    | (a : Op_walk.alternative) :: _ ->
        Mapping.set_correspondence a.Op_walk.mapping
          (corr_identity "BusSchedule" a.Op_walk.new_alias "time")
    | [] -> assert false
  in
  print_endline "\nAfter linking SBPS, two trimming choices:";
  let outer = Mapping_eval.target_view (Eval_ctx.transient db) with_bus in
  Printf.printf "  outer semantics: %d kids (Ann has a null BusSchedule)\n"
    (Relation.cardinality
       (Relation.filter (fun t -> not (Value.is_null t.(0))) outer));
  let inner = (Op_trim.require_target_column (Eval_ctx.transient db) with_bus "BusSchedule").Op_trim.mapping in
  let inner_view = Mapping_eval.target_view (Eval_ctx.transient db) inner in
  Printf.printf "  BusSchedule required: %d kids (Ann disappears)\n"
    (Relation.cardinality
       (Relation.filter (fun t -> not (Value.is_null t.(0))) inner_view))
