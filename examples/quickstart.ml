(* Quickstart: map a tiny order database into a report table, data-first.

   Build and run with:  dune exec examples/quickstart.exe

   The tour: load a database, let Clio mine the join knowledge, start from
   one relation, draw correspondences, follow a data walk when a relation
   is missing, look at the examples, trim, and read the generated SQL. *)

open Relational
open Clio

let mk name cols rows =
  Relation.create name (Schema.make name cols)
    (List.map (fun r -> Tuple.make (List.map Value.of_csv_cell r)) rows)

let db =
  Database.of_relations
    [
      mk "Orders"
        [ "id"; "customer_id"; "total" ]
        [
          [ "1"; "10"; "120" ];
          [ "2"; "10"; "80" ];
          [ "3"; "11"; "45" ];
          [ "4"; ""; "999" ] (* an orphan order with no customer *);
        ];
      mk "Customers"
        [ "id"; "name"; "city" ]
        [ [ "10"; "Misha"; "Toronto" ]; [ "11"; "Pat"; "San Jose" ]; [ "12"; "Lee"; "Almaden" ] ];
    ]

let () =
  print_endline "== 1. Source database ==";
  List.iter (fun r -> print_endline (Render.relation r)) (Database.relations db);

  (* Clio gathers join knowledge by mining the data (no declared FKs here):
     Orders.customer_id ⊆ Customers.id is discovered automatically. *)
  let kb = Clio.knowledge_base ~mine:true db in
  print_endline "\n== 2. Mined join knowledge ==";
  List.iter
    (fun p -> Format.printf "  %a@." Schemakb.Kb.pp_pair p)
    (Schemakb.Kb.pairs kb);

  (* Start mapping from Orders alone. *)
  let m =
    initial_mapping ~source:"Orders" ~target:"Report"
      ~target_cols:[ "order_id"; "customer"; "amount" ]
  in
  let m =
    match
      Op_correspondence.add ~kb m (corr_identity "order_id" "Orders" "id")
    with
    | Op_correspondence.Updated m -> m
    | _ -> assert false
  in
  let m =
    match
      Op_correspondence.add ~kb m
        (Correspondence.of_expr "amount"
           (Expr.Mul (Expr.col "Orders" "total", Expr.Const (Value.Int 100))))
    with
    | Op_correspondence.Updated m -> m
    | _ -> assert false
  in

  (* "customer" lives in a relation not yet linked: Clio proposes walks. *)
  let m =
    match Op_correspondence.add ~kb m (corr_identity "customer" "Customers" "name") with
    | Op_correspondence.Alternatives (alt :: _ as alts) ->
        Printf.printf "\n== 3. %d way(s) to link Customers ==\n" (List.length alts);
        List.iter
          (fun (a : Op_correspondence.alternative) ->
            print_endline ("  " ^ a.Op_correspondence.description))
          alts;
        alt.Op_correspondence.mapping
    | _ -> assert false
  in

  (* The mapping's examples: one per data association, with polarity. *)
  print_endline "\n== 4. Sufficient illustration ==";
  let fd = Mapping_eval.data_associations (Eval_ctx.transient db) m in
  let ill = Clio.illustrate (Eval_ctx.transient db) m in
  print_endline (Illustration.render ~scheme:fd.Fulldisj.Full_disjunction.scheme ill);

  (* Keep only report rows that actually have an order (trimming). *)
  let change = Op_trim.require_target_column (Eval_ctx.transient db) m "order_id" in
  let m = change.Op_trim.mapping in
  Printf.printf "\n== 5. Requiring order_id flips %d example(s) negative ==\n"
    (List.length change.Op_trim.became_negative);

  print_endline "\n== 6. Generated SQL ==";
  print_endline (Mapping_sql.outer_join ~root:"Orders" m);

  print_endline "\n== 7. Target view (WYSIWYG) ==";
  print_endline (Render.relation (Mapping_eval.target_view (Eval_ctx.transient db) m))
