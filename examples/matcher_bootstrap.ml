(* Bootstrapping a mapping automatically, then verifying it with data.

   Build and run with:  dune exec examples/matcher_bootstrap.exe

   The pipeline the paper sketches around its manual workflow:
     1. an attribute matcher proposes value correspondences (Section 3.1's
        "automated tool [7]"),
     2. universal-relation-style suggestion proposes query graphs
        connecting the matched relations (Section 7),
     3. the data decides: sufficient illustrations and distinguishing
        examples let a reviewer confirm or reject each proposal,
     4. on large sources, illustrations are computed over a sampled slice
        (Section 6's large-data-volume concern). *)

open Relational
open Clio
module Qgraph = Querygraph.Qgraph

let db = Paperdata.Figure1.database
let kb = Paperdata.Figure1.kb
let target_cols = [ "ID"; "name"; "affiliation" ]

let () =
  print_endline "== 1. Attribute matcher proposals ==";
  let candidates = Schemakb.Match.suggest db ~target_cols in
  List.iter (fun c -> Format.printf "  %a@." Schemakb.Match.pp_candidate c) candidates;

  (* Take the best candidate per target column as draft correspondences. *)
  let drafts =
    Schemakb.Match.best_per_target db ~target_cols
    |> List.map (fun c ->
           Correspondence.identity c.Schemakb.Match.target_col c.Schemakb.Match.source)
  in
  Printf.printf "\n== 2. Query graphs connecting the matched relations ==\n";
  let proposals = Suggest.mappings_for ~kb ~max_len:1 ~target:"Kids" ~target_cols drafts in
  List.iteri
    (fun i (m, descr) ->
      Printf.printf "  %d. %s\n     %s\n" (i + 1) descr
        (Qgraph.to_string m.Mapping.graph))
    proposals;

  (* 3. Let the data differentiate the top two proposals. *)
  (match proposals with
  | (m1, _) :: (m2, _) :: _ ->
      print_endline "\n== 3. What tells proposals 1 and 2 apart? ==";
      let contrasts = Differentiate.distinguishing (Eval_ctx.transient db) ~rel:"Children" m1 m2 in
      if contrasts = [] then print_endline "  (nothing — they agree on this database)"
      else
        print_endline
          (Differentiate.render ~target_schema:(Mapping.target_schema m1) contrasts)
  | _ -> ());

  (* 4. The same workflow against a big synthetic source, sampled. *)
  print_endline "\n== 4. At scale: sampled illustration on a 3x4000-row chain ==";
  let inst =
    Synth.Gen_graph.chain (Random.State.make [| 42 |]) ~n:3 ~rows:4000
      ~null_prob:0.2 ~orphan_prob:0.1 ()
  in
  let aliases = Qgraph.aliases inst.Synth.Gen_graph.graph in
  let big_m =
    Mapping.make ~graph:inst.Synth.Gen_graph.graph ~target:"T"
      ~target_cols:(List.map (fun a -> "c_" ^ a) aliases)
      ~correspondences:
        (List.map (fun a -> Correspondence.identity ("c_" ^ a) (Attr.make a "id")) aliases)
      ()
  in
  let t0 = Unix.gettimeofday () in
  let universe, ill =
    Sampling.illustrate_sampled ~seed:7 ~per_relation:12 (Eval_ctx.transient inst.Synth.Gen_graph.db) big_m
  in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf
    "  slice universe: %d associations; sufficient illustration: %d examples (%.1f ms)\n"
    (List.length universe) (List.length ill) (dt *. 1000.);
  Printf.printf "  sound w.r.t. the full database: %b\n"
    (Sampling.sound (Eval_ctx.transient inst.Synth.Gen_graph.db) big_m ~slice_universe:universe)
