(* The complete Section 2 user scenario, replayed programmatically.

   Build and run with:  dune exec examples/refinement_session.exe

   A user maps the Children/Parents/PhoneDir/SBPS source into Kids:
     1. draw v1, v2 (ID, name)
     2. draw v3 (affiliation) — Clio shows two scenarios (mother / father),
        the user picks the fathers' affiliations
     3. ask for a data walk to PhoneDir — three scenarios; the user picks
        mothers' phones (a Parents2 copy appears)
     4. chase the value 002 to discover where bus schedules live
     5. draw v5 (BusSchedule)
     6. inspect the target, note the nulls, and read the final SQL. *)

open Relational
open Clio
module Qgraph = Querygraph.Qgraph

let db = Paperdata.Figure1.database
let kb = Paperdata.Figure1.kb
let short = Paperdata.Figure1.short

let step n title = Printf.printf "\n===== Step %d: %s =====\n" n title

let show_illustration m =
  let fd = Mapping_eval.data_associations (Eval_ctx.transient db) m in
  let ill = Clio.illustrate (Eval_ctx.transient db) m in
  print_endline
    (Illustration.render ~short ~scheme:fd.Fulldisj.Full_disjunction.scheme ill)

let pick_scenario ~wanted alts describe mapping_of =
  List.iteri
    (fun i a -> Printf.printf "  Scenario %d: %s\n" (i + 1) (describe a))
    alts;
  let chosen = List.nth alts wanted in
  Printf.printf "  -> user picks scenario %d\n" (wanted + 1);
  mapping_of chosen

let () =
  step 1 "correspondences v1, v2 (ID and name)";
  let m =
    Mapping.make
      ~graph:(Qgraph.singleton ~alias:"Children" ~base:"Children")
      ~target:"Kids" ~target_cols:Paperdata.Running.kids_cols
      ~correspondences:
        [ corr_identity "ID" "Children" "ID"; corr_identity "name" "Children" "name" ]
      ()
  in
  print_endline (Render.relation (Mapping_eval.target_view (Eval_ctx.transient db) m));

  step 2 "v3: affiliation — which parent?";
  let m =
    match
      Op_correspondence.add ~kb ~max_len:1 m
        (corr_identity "affiliation" "Parents" "affiliation")
    with
    | Op_correspondence.Alternatives alts ->
        (* Scenario order is rank order; find the fid (father) scenario the
           user recognizes from Maya's example. *)
        let is_fid (a : Op_correspondence.alternative) =
          Qgraph.edges a.Op_correspondence.mapping.Mapping.graph
          |> List.exists (fun e ->
                 String.equal (Predicate.to_sql e.Qgraph.pred)
                   "Children.fid = Parents.ID")
        in
        let idx =
          alts
          |> List.mapi (fun i a -> (i, a))
          |> List.find (fun (_, a) -> is_fid a)
          |> fst
        in
        pick_scenario ~wanted:idx alts
          (fun a -> a.Op_correspondence.description)
          (fun a -> a.Op_correspondence.mapping)
    | _ -> assert false
  in

  step 3 "data walk to PhoneDir — whose phone?";
  let m =
    let alts = Op_walk.walk_alternatives ~kb m ~start:"Children" ~goal:"PhoneDir" ~max_len:2 () in
    (* The user wants the mothers' phones: the alternative whose path goes
       through a Parents copy on mid. *)
    let is_mid (a : Op_walk.alternative) =
      Qgraph.edges a.Op_walk.mapping.Mapping.graph
      |> List.exists (fun e ->
             String.equal (Predicate.to_sql e.Qgraph.pred) "Children.mid = Parents2.ID")
    in
    let idx =
      alts |> List.mapi (fun i a -> (i, a)) |> List.find (fun (_, a) -> is_mid a) |> fst
    in
    let chosen =
      pick_scenario ~wanted:idx alts
        (fun a -> a.Op_walk.description)
        (fun a -> a)
    in
    Mapping.set_correspondence chosen.Op_walk.mapping
      (corr_identity "contactPh" chosen.Op_walk.new_alias "number")
  in
  show_illustration m;

  step 4 "chase 002 — where do bus schedules live?";
  let chase_alts =
    Op_chase.chase (Eval_ctx.transient db) m ~attr:(Attr.make "Children" "ID") ~value:(Value.String "002")
  in
  List.iteri
    (fun i (a : Op_chase.alternative) ->
      Printf.printf "  Scenario %d: %s\n" (i + 1) a.Op_chase.description)
    chase_alts;
  let sbps =
    List.find
      (fun (a : Op_chase.alternative) ->
        String.equal a.Op_chase.occurrence.Op_chase.rel "SBPS")
      chase_alts
  in
  Printf.printf "  -> user recognizes SBPS as the School Bus Pickup Schedule\n";
  let m = sbps.Op_chase.mapping in

  step 5 "v5: BusSchedule from SBPS.time";
  let m = Mapping.set_correspondence m (corr_identity "BusSchedule" "SBPS" "time") in
  let m = Mapping.add_target_filter m Paperdata.Running.id_required in
  print_endline (Render.relation (Mapping_eval.target_view (Eval_ctx.transient db) m));

  step 6 "fine-tuning: what if BusSchedule were required?";
  let change = Op_trim.require_target_column (Eval_ctx.transient db) m "BusSchedule" in
  Printf.printf "  Requiring BusSchedule would drop %d kid(s):\n"
    (List.length change.Op_trim.became_negative);
  List.iter
    (fun e ->
      Printf.printf "    - %s\n" (Value.to_string e.Example.target_tuple.(1)))
    change.Op_trim.became_negative;
  Printf.printf "  -> user keeps the outer semantics (all kids stay)\n";

  step 7 "the final mapping and its SQL";
  Format.printf "%a@." Mapping.pp m;
  print_newline ();
  print_endline (Mapping_sql.outer_join ~root:"Children" m);
  Printf.printf "\nRooted SQL equivalent to the formal mapping query: %b\n"
    (Mapping_sql.rooted_equivalent (Eval_ctx.transient db) ~root:"Children" m)
