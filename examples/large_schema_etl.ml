(* ETL over a larger synthetic schema: a star warehouse with mined join
   knowledge, workspaces over walk alternatives, and target assembly.

   Build and run with:  dune exec examples/large_schema_etl.exe

   This is the "realistic scale" example: 9 relations, a few thousand rows,
   no declared constraints — all join knowledge is mined from the data, as
   Section 5.1 describes ("gathered from ... mining the source data"). *)

open Relational
open Clio
module Qgraph = Querygraph.Qgraph

let () =
  let st = Random.State.make [| 2026 |] in
  let inst =
    Synth.Gen_graph.star st ~leaves:8 ~rows:2000 ~null_prob:0.1 ~orphan_prob:0.05 ()
  in
  let db = inst.Synth.Gen_graph.db in
  Printf.printf "Synthetic warehouse: %d relations, %d cells\n"
    (List.length (Database.relations db))
    (Database.cell_count db);

  (* Mine the join knowledge instead of using the declared FKs. *)
  let mined = Schemakb.Mine.inclusion_dependencies ~min_overlap:0.9 db in
  let kb = Schemakb.Kb.add_mined Schemakb.Kb.empty mined in
  Printf.printf "Mined %d inclusion dependencies, e.g.:\n" (List.length mined);
  List.iteri
    (fun i c -> if i < 5 then Format.printf "  %a@." Schemakb.Mine.pp_candidate c)
    mined;

  (* Map Fact plus two dimensions into a flat report. *)
  let m =
    initial_mapping ~source:"Fact" ~target:"Report"
      ~target_cols:[ "fact"; "d1"; "d2" ]
  in
  let m =
    match Op_correspondence.add ~kb m (corr_identity "fact" "Fact" "id") with
    | Op_correspondence.Updated m -> m
    | _ -> assert false
  in

  let ws = Workspace.create (Eval_ctx.create ~kb db) m in

  (* Link D1: inspect the alternatives in workspaces, confirm the best. *)
  let ws =
    match Op_correspondence.add ~kb ~max_len:2 m (corr_identity "d1" "D1" "p0") with
    | Op_correspondence.Alternatives alts ->
        Printf.printf "\n%d alternative(s) to link D1; offering as workspaces\n"
          (List.length alts);
        let ws =
          Workspace.offer ws
            ~labels:(List.map (fun a -> a.Op_correspondence.description) alts)
            (List.map (fun a -> a.Op_correspondence.mapping) alts)
        in
        Printf.printf "active workspace: %s\n" (Workspace.active ws).Workspace.label;
        Workspace.confirm ws
    | _ -> assert false
  in

  (* Link D2 on top of the confirmed mapping. *)
  let m = (Workspace.active ws).Workspace.mapping in
  let m =
    match Op_correspondence.add ~kb ~max_len:2 m (corr_identity "d2" "D2" "p0") with
    | Op_correspondence.Alternatives (alt :: _) -> alt.Op_correspondence.mapping
    | Op_correspondence.Updated m -> m
    | _ -> assert false
  in

  (* Only facts present in the report. *)
  let m = (Op_trim.require_target_column (Eval_ctx.transient db) m "fact").Op_trim.mapping in

  let view = Mapping_eval.target_view (Eval_ctx.transient db) m in
  Printf.printf "\nReport rows: %d (of %d facts; nulls where dims are missing)\n"
    (Relation.cardinality view)
    (Relation.cardinality (Database.get db "Fact"));

  (* How complete is the mapping?  Count null dims in the target. *)
  let s = Relation.schema view in
  let null_count col =
    Relation.fold
      (fun acc t ->
        if Value.is_null (Tuple.value s t (Attr.make "Report" col)) then acc + 1 else acc)
      0 view
  in
  Printf.printf "  d1 null in %d rows; d2 null in %d rows\n" (null_count "d1")
    (null_count "d2");

  print_endline "\nGenerated SQL:";
  print_endline (Mapping_sql.outer_join ~root:"Fact" m);

  (* The illustration stays small even though the database is large. *)
  let ill = Clio.illustrate (Eval_ctx.transient db) m in
  Printf.printf
    "\nSufficient illustration: %d examples (out of %d data associations)\n"
    (List.length ill)
    (List.length
       (Mapping_eval.data_associations (Eval_ctx.transient db) m).Fulldisj.Full_disjunction.associations)
