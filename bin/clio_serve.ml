(* clio-serve — the long-lived mapping-refinement service and its load
   generator.

     clio_serve serve --socket /tmp/clio.sock     Unix-domain socket
     clio_serve serve --tcp 7411                  loopback TCP
     clio_serve loadgen --socket /tmp/clio.sock --clients 4 --ops 12
     clio_serve loadgen --clients 4 --ops 12      in-process (no server)

   The server holds one shared evaluation substrate (Eval_cache + domain
   pool) and any number of concurrent sessions; the protocol is
   newline-delimited JSON — see docs/server.md. *)

open Cmdliner

let scenario_of ~scenario ~size ~rows ~seed =
  match String.lowercase_ascii scenario with
  | "paper" -> Ok Server.Protocol.Paper
  | "chain" -> Ok (Server.Protocol.Chain { n = size; rows; seed })
  | "star" -> Ok (Server.Protocol.Star { leaves = size; rows; seed })
  | other ->
      Error (Printf.sprintf "unknown scenario %S (paper, chain or star)" other)

(* --- serve ------------------------------------------------------------- *)

let serve_run socket tcp jobs queue history_limit no_cache cache_mb =
  match (socket, tcp) with
  | None, None -> `Error (true, "one of --socket PATH or --tcp PORT is required")
  | Some _, Some _ -> `Error (true, "--socket and --tcp are mutually exclusive")
  | _ ->
      (match history_limit with
      | Some n -> Relational.Database.set_history_limit n
      | None -> ());
      let address =
        match (socket, tcp) with
        | Some path, _ -> Server.Loop.Unix_path path
        | _, Some port -> Server.Loop.Tcp port
        | None, None -> assert false
      in
      let registry =
        Server.Registry.create ?jobs ~no_cache
          ?cache_bytes:(Option.map (fun mb -> mb * 1024 * 1024) cache_mb)
          ()
      in
      let service = Server.Service.create registry in
      let config =
        { (Server.Loop.default_config address) with queue_capacity = queue }
      in
      Printf.printf "clio_serve: listening on %s (jobs %d, queue %d)\n%!"
        (match address with
        | Server.Loop.Unix_path p -> p
        | Server.Loop.Tcp p -> Printf.sprintf "127.0.0.1:%d" p)
        (Server.Registry.jobs registry)
        config.Server.Loop.queue_capacity;
      Server.Loop.run config service;
      Printf.printf "clio_serve: drained, bye\n%!";
      `Ok ()

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on a Unix-domain socket.")

let tcp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT" ~doc:"Listen on loopback TCP port $(docv).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Domains in the shared evaluation pool (default: CLIO_JOBS or 1).")

let queue_arg =
  Arg.(
    value & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Bound on queued requests; beyond it clients get an $(i,overloaded) \
           reply (backpressure) instead of a dropped connection.")

let history_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "history-limit" ] ~docv:"N"
        ~doc:
          "Size of the per-database changelog window the incremental engine \
           promotes across (default 32).")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Disable the shared F(J)/D(G) memo cache (ablation switch).")

let cache_mb_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-mb" ] ~docv:"MB" ~doc:"Byte budget of the shared cache.")

let serve_cmd =
  let info =
    Cmd.info "serve"
      ~doc:"Run the mapping-refinement server until SIGTERM/SIGINT."
  in
  Cmd.v info
    Term.(
      ret
        (const serve_run $ socket_arg $ tcp_arg $ jobs_arg $ queue_arg
       $ history_limit_arg $ no_cache_arg $ cache_mb_arg))

(* --- loadgen ----------------------------------------------------------- *)

let loadgen_run socket tcp clients ops scenario size rows seed limit no_verify
    =
  match scenario_of ~scenario ~size ~rows ~seed with
  | Error msg -> `Error (true, msg)
  | Ok scenario ->
      let spec =
        {
          Server.Loadgen.scenario;
          clients;
          ops;
          limit = (if limit > 0 then Some limit else None);
        }
      in
      let verify = not no_verify in
      let outcome =
        match (socket, tcp) with
        | Some _, Some _ ->
            prerr_endline "--socket and --tcp are mutually exclusive";
            exit 2
        | Some path, None ->
            Server.Loadgen.run_socket ~verify
              ~address:(Server.Loop.Unix_path path) spec
        | None, Some port ->
            Server.Loadgen.run_socket ~verify ~address:(Server.Loop.Tcp port)
              spec
        | None, None ->
            (* No server: drive the service in-process (cold substrate). *)
            let registry = Server.Registry.create () in
            Server.Loadgen.run_inprocess ~verify
              (Server.Service.create registry)
              spec
      in
      Format.printf "%a@." Server.Loadgen.pp_outcome outcome;
      let failed =
        outcome.Server.Loadgen.errors > 0
        || match outcome.Server.Loadgen.mismatches with
           | Some n when n > 0 -> true
           | _ -> false
      in
      if failed then `Error (false, "load generation failed") else `Ok ()

let clients_arg =
  Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc:"Concurrent clients.")

let ops_arg =
  Arg.(value & opt int 12 & info [ "ops" ] ~docv:"N" ~doc:"Operations per client.")

let scenario_arg =
  Arg.(
    value & opt string "paper"
    & info [ "scenario" ] ~docv:"NAME" ~doc:"paper, chain or star.")

let size_arg =
  Arg.(
    value & opt int 3
    & info [ "size" ] ~docv:"N" ~doc:"Chain length / star leaves.")

let rows_arg =
  Arg.(
    value & opt int 500
    & info [ "rows" ] ~docv:"N" ~doc:"Rows per synthetic relation.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")

let limit_arg =
  Arg.(
    value & opt int 0
    & info [ "limit" ] ~docv:"N"
        ~doc:"Rows to return per evaluation (0 = digests only).")

let no_verify_arg =
  Arg.(
    value & flag
    & info [ "no-verify" ]
        ~doc:"Skip the sequential-replay digest verification.")

let loadgen_cmd =
  let info =
    Cmd.info "loadgen"
      ~doc:
        "Drive a server (or an in-process service) with scripted clients and \
         verify results against a sequential replay."
  in
  Cmd.v info
    Term.(
      ret
        (const loadgen_run $ socket_arg $ tcp_arg $ clients_arg $ ops_arg
       $ scenario_arg $ size_arg $ rows_arg $ seed_arg $ limit_arg
       $ no_verify_arg))

let () =
  let info =
    Cmd.info "clio_serve" ~version:"dev"
      ~doc:"Long-lived multi-session mapping-refinement service."
  in
  exit (Cmd.eval (Cmd.group info [ serve_cmd; loadgen_cmd ]))
