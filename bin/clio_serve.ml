(* clio-serve — the long-lived mapping-refinement service, its load
   generator, and its operator clients.

     clio_serve serve --socket /tmp/clio.sock     Unix-domain socket
     clio_serve serve --tcp 7411                  loopback TCP
     clio_serve serve --socket S --log --slow-ms 50   telemetry on
     clio_serve loadgen --socket /tmp/clio.sock --clients 4 --ops 12
     clio_serve loadgen --clients 4 --ops 12      in-process (no server)
     clio_serve scrape --socket /tmp/clio.sock --check
     clio_serve top --socket /tmp/clio.sock

   The server holds one shared evaluation substrate (Eval_cache + domain
   pool) and any number of concurrent sessions; the protocol is
   newline-delimited JSON — see docs/server.md.  Telemetry (docs/
   observability.md): --log writes a leveled JSONL event log with one
   request.complete line per request (trace id, latency, cache deltas);
   requests at or above --slow-ms get their span subtree dumped as a
   Chrome-trace exemplar named by trace id; scrape fetches the Prometheus
   text exposition; top renders live server/session tables. *)

open Cmdliner
module P = Server.Protocol

let scenario_of ~scenario ~size ~rows ~seed =
  match String.lowercase_ascii scenario with
  | "paper" -> Ok P.Paper
  | "chain" -> Ok (P.Chain { n = size; rows; seed })
  | "star" -> Ok (P.Star { leaves = size; rows; seed })
  | other ->
      Error (Printf.sprintf "unknown scenario %S (paper, chain or star)" other)

let address_of socket tcp =
  match (socket, tcp) with
  | None, None -> Error "one of --socket PATH or --tcp PORT is required"
  | Some _, Some _ -> Error "--socket and --tcp are mutually exclusive"
  | Some path, None -> Ok (Server.Loop.Unix_path path)
  | None, Some port -> Ok (Server.Loop.Tcp port)

(* --- shared args ------------------------------------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let tcp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT" ~doc:"Loopback TCP port $(docv).")

(* --- serve ------------------------------------------------------------- *)

let serve_run socket tcp jobs workers queue history_limit no_cache cache_mb
    store_dir metrics log log_level slow_ms exemplars exemplar_keep =
  match address_of socket tcp with
  | Error msg -> `Error (true, msg)
  | Ok address when log = Some "" || metrics = Some "" ->
      ignore address;
      `Error (true, "--log/--metrics need a non-empty filename")
  | Ok address ->
      (match history_limit with
      | Some n -> Relational.Database.set_history_limit n
      | None -> ());
      (* Any telemetry sink needs the Obs switch on: counters, spans and
         histograms are what the log lines, exemplars and scrapes show. *)
      if metrics <> None || log <> None || slow_ms <> None || exemplars <> None
      then Obs.enable ();
      let log_sink =
        Option.map (fun path -> Obs.Event_log.create ~level:log_level path) log
      in
      let exemplar_dir =
        match (exemplars, slow_ms) with
        | Some dir, _ -> Some dir
        | None, Some _ -> Some "clio-exemplars"
        | None, None -> None
      in
      (match exemplar_dir with
      | Some dir -> (
          try Unix.mkdir dir 0o755
          with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
      | None -> ());
      let telemetry =
        if log_sink = None && slow_ms = None && exemplar_dir = None then
          Server.Telemetry.none
        else
          Server.Telemetry.create ?log:log_sink ?slow_ms ?exemplar_dir
            ~exemplar_keep ()
      in
      let registry =
        Server.Registry.create ?jobs ~no_cache
          ?cache_bytes:(Option.map (fun mb -> mb * 1024 * 1024) cache_mb)
          ()
      in
      (* Warm boot: when --store-dir holds a manifest from a previous
         run, replay it — sessions resume on their branches with the
         shared cache re-warmed by the replay itself. *)
      (match store_dir with
      | Some dir when Sys.file_exists (Filename.concat dir "registry.json") -> (
          try
            let n = Server.Registry.restore registry ~dir in
            Printf.printf "clio_serve: restored %d session(s) from %s\n%!" n
              dir
          with Failure msg | Sys_error msg ->
            Printf.eprintf "clio_serve: cannot restore store: %s\n%!" msg;
            exit 1)
      | _ -> ());
      let service = Server.Service.create registry in
      Server.Service.set_telemetry service telemetry;
      (* Worker domains executing requests: --workers, then CLIO_WORKERS,
         then 1 (serial — the pre-worker-plane behavior). *)
      let workers =
        max 1
          (match workers with
          | Some n -> n
          | None -> (
              match Sys.getenv_opt "CLIO_WORKERS" with
              | Some s -> ( try int_of_string (String.trim s) with _ -> 1)
              | None -> 1))
      in
      let config =
        {
          (Server.Loop.default_config address) with
          queue_capacity = queue;
          workers;
        }
      in
      Printf.printf
        "clio_serve: listening on %s (jobs %d, workers %d, queue %d)\n%!"
        (match address with
        | Server.Loop.Unix_path p -> p
        | Server.Loop.Tcp p -> Printf.sprintf "127.0.0.1:%d" p)
        (Server.Registry.jobs registry)
        config.Server.Loop.workers config.Server.Loop.queue_capacity;
      let reason = Server.Loop.run config service in
      (* Epilogue runs on every exit path — a SIGTERM'd server still
         leaves complete --metrics/--log files and a resumable store
         behind. *)
      (match store_dir with
      | Some dir -> (
          try
            Server.Registry.persist registry ~dir;
            Printf.printf "clio_serve: persisted %d session(s) to %s\n%!"
              (Server.Registry.session_count registry)
              dir
          with Sys_error msg | Failure msg ->
            Printf.eprintf "clio_serve: cannot persist store: %s\n%!" msg)
      | None -> ());
      (match metrics with
      | Some file -> (
          try
            Obs.write_metrics file;
            Printf.eprintf "metrics written to %s\n%!" file
          with Sys_error msg ->
            Printf.eprintf "clio_serve: cannot write metrics: %s\n%!" msg)
      | None -> ());
      Server.Telemetry.close telemetry;
      (match reason with
      | Server.Loop.Drained -> Printf.printf "clio_serve: drained, bye\n%!"
      | Server.Loop.Interrupted code ->
          Printf.printf "clio_serve: interrupted, exiting %d\n%!" code;
          exit code);
      `Ok ()

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Domains in the shared evaluation pool (default: CLIO_JOBS or 1).")

let workers_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers" ] ~docv:"K"
        ~doc:
          "Worker domains executing requests (default: CLIO_WORKERS or 1). \
           Requests within a session execute serially in admission order; \
           sessions on distinct stores execute in parallel across the \
           $(docv) workers.  Composes with --jobs: each executing request \
           may additionally fan its evaluation across the shared domain \
           pool.")

let queue_arg =
  Arg.(
    value & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Bound on queued requests; beyond it clients get an $(i,overloaded) \
           reply (backpressure) instead of a dropped connection.")

let history_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "history-limit" ] ~docv:"N"
        ~doc:
          "Size of the per-database changelog window the incremental engine \
           promotes across (default 32).")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Disable the shared F(J)/D(G) memo cache (ablation switch).")

let cache_mb_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-mb" ] ~docv:"MB" ~doc:"Byte budget of the shared cache.")

let store_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store-dir" ] ~docv:"DIR"
        ~doc:
          "Persist every open session's version store (snapshot + \
           changelog) to $(docv) at exit, and resume from it at boot when \
           a manifest is present — a restarted server comes back warm \
           with the same sessions, branches and state.")

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some "metrics.json") (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the full Obs metrics state as JSON at exit (flushed on \
           SIGINT/SIGTERM too; default $(i,metrics.json)).  Enables \
           observability.")

let log_arg =
  Arg.(
    value
    & opt ~vopt:(Some "clio_serve.log") (some string) None
    & info [ "log" ] ~docv:"FILE"
        ~doc:
          "Append a structured JSONL event log (connections, admissions, one \
           $(i,request.complete) line per request with trace id, latency and \
           cache deltas; size-rotated).  Default $(i,clio_serve.log).  \
           Enables observability.")

let log_level_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("debug", Obs.Event_log.Debug);
             ("info", Obs.Event_log.Info);
             ("warn", Obs.Event_log.Warn);
             ("error", Obs.Event_log.Error);
           ])
        Obs.Event_log.Info
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:"Minimum level written to --log: debug, info, warn, error.")

let slow_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "Capture a Chrome-trace exemplar (the request's span subtree, \
           linked by trace id) for every request taking at least $(docv) \
           milliseconds; 0 captures everything.  Enables observability.")

let exemplars_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "exemplars" ] ~docv:"DIR"
        ~doc:
          "Directory for slow-request exemplar traces (created if missing; \
           default $(i,clio-exemplars) when --slow-ms is set).")

let exemplar_keep_arg =
  Arg.(
    value
    & opt int Server.Telemetry.default_exemplar_keep
    & info [ "exemplar-keep" ] ~docv:"N"
        ~doc:"Exemplar files retained; the oldest beyond $(docv) are removed.")

let serve_cmd =
  let info =
    Cmd.info "serve"
      ~doc:
        "Run the mapping-refinement server until SIGTERM/SIGINT (exit \
         143/130, telemetry flushed) or a drained $(i,shutdown) request \
         (exit 0)."
  in
  Cmd.v info
    Term.(
      ret
        (const serve_run $ socket_arg $ tcp_arg $ jobs_arg $ workers_arg
       $ queue_arg $ history_limit_arg $ no_cache_arg $ cache_mb_arg
       $ store_dir_arg $ metrics_arg $ log_arg $ log_level_arg $ slow_ms_arg
       $ exemplars_arg $ exemplar_keep_arg))

(* --- loadgen ----------------------------------------------------------- *)

let loadgen_run socket tcp clients ops scenario size rows seed limit no_verify
    keep_open latencies =
  match scenario_of ~scenario ~size ~rows ~seed with
  | Error msg -> `Error (true, msg)
  | Ok scenario ->
      let spec =
        {
          Server.Loadgen.scenario;
          clients;
          ops;
          limit = (if limit > 0 then Some limit else None);
          keep_open;
        }
      in
      let verify = not no_verify in
      let outcome =
        match (socket, tcp) with
        | Some _, Some _ ->
            prerr_endline "--socket and --tcp are mutually exclusive";
            exit 2
        | Some path, None ->
            Server.Loadgen.run_socket ~verify
              ~address:(Server.Loop.Unix_path path) spec
        | None, Some port ->
            Server.Loadgen.run_socket ~verify ~address:(Server.Loop.Tcp port)
              spec
        | None, None ->
            (* No server: drive the service in-process (cold substrate). *)
            let registry = Server.Registry.create () in
            Server.Loadgen.run_inprocess ~verify
              (Server.Service.create registry)
              spec
      in
      Format.printf "%a@." Server.Loadgen.pp_outcome outcome;
      (* One "<op> <microseconds>" line per request, appended — running
         the generator several times with the same file pools the runs'
         distributions, and the op label lets a consumer slice out one
         mode (the CI overhead gate compares per-op medians: a raw p50
         mixes 15 us rotates with multi-ms offers and lands on a mode
         boundary, where it is too noisy to hold a tight ratio). *)
      (match latencies with
      | None -> ()
      | Some file -> (
          try
            let oc =
              open_out_gen [ Open_append; Open_creat ] 0o644 file
            in
            Array.iter
              (fun (op, us) -> Printf.fprintf oc "%s %.0f\n" op us)
              outcome.Server.Loadgen.latencies_us;
            close_out oc
          with Sys_error msg ->
            Printf.eprintf "latencies not written: %s\n%!" msg));
      let failed =
        outcome.Server.Loadgen.errors > 0
        || outcome.Server.Loadgen.echo_failures > 0
        || match outcome.Server.Loadgen.mismatches with
           | Some n when n > 0 -> true
           | _ -> false
      in
      if failed then `Error (false, "load generation failed") else `Ok ()

let clients_arg =
  Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc:"Concurrent clients.")

let ops_arg =
  Arg.(value & opt int 12 & info [ "ops" ] ~docv:"N" ~doc:"Operations per client.")

let scenario_arg =
  Arg.(
    value & opt string "paper"
    & info [ "scenario" ] ~docv:"NAME" ~doc:"paper, chain or star.")

let size_arg =
  Arg.(
    value & opt int 3
    & info [ "size" ] ~docv:"N" ~doc:"Chain length / star leaves.")

let rows_arg =
  Arg.(
    value & opt int 500
    & info [ "rows" ] ~docv:"N" ~doc:"Rows per synthetic relation.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")

let limit_arg =
  Arg.(
    value & opt int 0
    & info [ "limit" ] ~docv:"N"
        ~doc:"Rows to return per evaluation (0 = digests only).")

let no_verify_arg =
  Arg.(
    value & flag
    & info [ "no-verify" ]
        ~doc:"Skip the sequential-replay digest verification.")

let keep_open_arg =
  Arg.(
    value & flag
    & info [ "keep-open" ]
        ~doc:
          "Leave the sessions open after the run (no final $(i,close)) so a \
           later $(i,digests) call — or a $(b,--store-dir) shutdown — still \
           sees them.")

let latencies_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "latencies" ] ~docv:"FILE"
        ~doc:
          "Append every request's latency (one '<op> <microseconds>' line \
           per request) to $(docv).  Reusing the file across runs pools \
           their distributions.")

let loadgen_cmd =
  let info =
    Cmd.info "loadgen"
      ~doc:
        "Drive a server (or an in-process service) with scripted clients and \
         verify results against a sequential replay.  Every request carries \
         a trace id; a reply that fails to echo it fails the run."
  in
  Cmd.v info
    Term.(
      ret
        (const loadgen_run $ socket_arg $ tcp_arg $ clients_arg $ ops_arg
       $ scenario_arg $ size_arg $ rows_arg $ seed_arg $ limit_arg
       $ no_verify_arg $ keep_open_arg $ latencies_arg))

(* --- scrape ------------------------------------------------------------ *)

let scrape_run socket tcp check out =
  match address_of socket tcp with
  | Error msg -> `Error (true, msg)
  | Ok address -> (
      match
        Server.Loadgen.rpc_once ~address
          [ { P.id = 1; session = None; request = P.Metrics_prom; trace_id = None } ]
      with
      | exception (Failure msg | Sys_error msg) -> `Error (false, msg)
      | exception Unix.Unix_error (e, fn, _) ->
          `Error (false, Printf.sprintf "%s: %s" fn (Unix.error_message e))
      | [ { P.result = Ok (P.Prom_text text); _ } ] -> (
          (match out with
          | Some file ->
              let oc = open_out file in
              output_string oc text;
              close_out oc
          | None -> print_string text);
          if not check then `Ok ()
          else
            match Obs.Prom_export.validate text with
            | Ok () ->
                Printf.eprintf "scrape: format ok\n%!";
                `Ok ()
            | Error msg -> `Error (false, "scrape format check failed: " ^ msg))
      | [ { P.result = Error (_, msg); _ } ] ->
          `Error (false, "server error: " ^ msg)
      | _ -> `Error (false, "unexpected reply"))

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Validate the exposition (name charset, histogram bucket \
           monotonicity, +Inf bucket = count) and fail on any violation.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE" ~doc:"Write the scrape to $(docv) instead of stdout.")

let scrape_cmd =
  let info =
    Cmd.info "scrape"
      ~doc:
        "One-shot Prometheus text-exposition scrape of a running server \
         (every counter, histogram and server/session gauge)."
  in
  Cmd.v info
    Term.(ret (const scrape_run $ socket_arg $ tcp_arg $ check_arg $ out_arg))

(* --- digests ----------------------------------------------------------- *)

(* One "sid dg-digest target-digest" line per open session, sid-sorted —
   the byte-identity witness the restart-smoke harness diffs across a
   SIGTERM + warm reboot. *)
let digests_run socket tcp =
  match address_of socket tcp with
  | Error msg -> `Error (true, msg)
  | Ok address -> (
      try
        let sids =
          match
            Server.Loadgen.rpc_once ~address
              [ { P.id = 1; session = None; request = P.Stats; trace_id = None } ]
          with
          | [ { P.result = Ok (P.Stats_report pairs); _ } ] ->
              List.filter_map
                (fun (k, _) ->
                  if String.starts_with ~prefix:"sessions." k then
                    let rest = String.sub k 9 (String.length k - 9) in
                    Option.map (fun i -> String.sub rest 0 i)
                      (String.index_opt rest '.')
                  else None)
                pairs
              |> List.sort_uniq compare
          | [ { P.result = Error (_, msg); _ } ] ->
              failwith ("server error: " ^ msg)
          | _ -> failwith "unexpected reply"
        in
        List.iter
          (fun sid ->
            match
              Server.Loadgen.rpc_once ~address
                [
                  {
                    P.id = 1;
                    session = Some sid;
                    request = P.Evaluate { what = P.Dg; limit = None };
                    trace_id = None;
                  };
                  {
                    P.id = 2;
                    session = Some sid;
                    request = P.Evaluate { what = P.Target; limit = None };
                    trace_id = None;
                  };
                ]
            with
            | [
                { P.result = Ok (P.Evaluated dg); _ };
                { P.result = Ok (P.Evaluated target); _ };
              ] ->
                Printf.printf "%s %s %s\n" sid dg.P.digest target.P.digest
            | [ { P.result = Error (_, msg); _ }; _ ]
            | [ _; { P.result = Error (_, msg); _ } ] ->
                failwith (Printf.sprintf "session %s: %s" sid msg)
            | _ -> failwith "unexpected reply")
          sids;
        `Ok ()
      with
      | Failure msg | Sys_error msg -> `Error (false, msg)
      | Unix.Unix_error (e, fn, _) ->
          `Error (false, Printf.sprintf "%s: %s" fn (Unix.error_message e)))

let digests_cmd =
  let info =
    Cmd.info "digests"
      ~doc:
        "Print every open session's D(G) and target-view digests (one \
         $(i,sid dg target) line per session, sid-sorted).  Two servers — \
         e.g. one before and one after a $(b,--store-dir) restart — agree \
         iff their outputs are byte-identical."
  in
  Cmd.v info Term.(ret (const digests_run $ socket_arg $ tcp_arg))

(* --- top --------------------------------------------------------------- *)

(* Render one no-session [stats] reply as server + per-session tables.
   Keys arrive flat: server.* from the registry and transport,
   sessions.<sid>.<metric> for each open session. *)
let render_stats pairs =
  let b = Buffer.create 1024 in
  let num v =
    if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.1f" v
  in
  Buffer.add_string b "server\n";
  List.iter
    (fun (k, v) ->
      if String.starts_with ~prefix:"server." k then
        Printf.bprintf b "  %-32s %s\n"
          (String.sub k 7 (String.length k - 7))
          (num v))
    pairs;
  (* group sessions.<sid>.<metric> *)
  let sids = ref [] in
  let by_sid : (string, (string * float) list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (k, v) ->
      if String.starts_with ~prefix:"sessions." k then
        let rest = String.sub k 9 (String.length k - 9) in
        match String.index_opt rest '.' with
        | None -> ()
        | Some i ->
            let sid = String.sub rest 0 i in
            let metric = String.sub rest (i + 1) (String.length rest - i - 1) in
            if not (Hashtbl.mem by_sid sid) then sids := sid :: !sids;
            Hashtbl.replace by_sid sid
              ((metric, v) :: Option.value ~default:[] (Hashtbl.find_opt by_sid sid)))
    pairs;
  let sids = List.rev !sids in
  if sids <> [] then begin
    Printf.bprintf b "\n%-8s %8s %7s %10s %10s %10s %5s %7s\n" "session"
      "requests" "errors" "p50(us)" "p99(us)" "max(us)" "dbv" "entries";
    List.iter
      (fun sid ->
        let m = Option.value ~default:[] (Hashtbl.find_opt by_sid sid) in
        let get name = Option.value ~default:0. (List.assoc_opt name m) in
        Printf.bprintf b "%-8s %8.0f %7.0f %10.0f %10.0f %10.0f %5.0f %7.0f\n"
          sid (get "requests") (get "errors") (get "latency_us.p50")
          (get "latency_us.p99") (get "latency_us.max") (get "db_version")
          (get "entries"))
      sids;
    (* per-op and cache attribution lines, one per session, only when
       present *)
    List.iter
      (fun sid ->
        let m = Option.value ~default:[] (Hashtbl.find_opt by_sid sid) in
        let section prefix label =
          match
            List.filter_map
              (fun (k, v) ->
                if String.starts_with ~prefix k then
                  Some
                    (Printf.sprintf "%s=%s"
                       (String.sub k (String.length prefix)
                          (String.length k - String.length prefix))
                       (num v))
                else None)
              (List.sort compare m)
          with
          | [] -> ()
          | parts ->
              Printf.bprintf b "  %-6s %s: %s\n" sid label
                (String.concat " " parts)
        in
        section "ops." "ops";
        section "cache." "cache")
      sids
  end;
  Buffer.contents b

let top_run socket tcp interval count =
  match address_of socket tcp with
  | Error msg -> `Error (true, msg)
  | Ok address -> (
      try
        for i = 1 to count do
          match
            Server.Loadgen.rpc_once ~address
              [ { P.id = i; session = None; request = P.Stats; trace_id = None } ]
          with
          | [ { P.result = Ok (P.Stats_report pairs); _ } ] ->
              if count > 1 then Printf.printf "--- sample %d/%d\n" i count;
              print_string (render_stats pairs);
              print_string "\n";
              flush stdout;
              if i < count then ignore (Unix.select [] [] [] interval)
          | [ { P.result = Error (_, msg); _ } ] ->
              failwith ("server error: " ^ msg)
          | _ -> failwith "unexpected reply"
        done;
        `Ok ()
      with
      | Failure msg | Sys_error msg -> `Error (false, msg)
      | Unix.Unix_error (e, fn, _) ->
          `Error (false, Printf.sprintf "%s: %s" fn (Unix.error_message e)))

let interval_arg =
  Arg.(
    value & opt float 2.0
    & info [ "interval" ] ~docv:"SECS" ~doc:"Seconds between samples.")

let count_arg =
  Arg.(
    value & opt int 1
    & info [ "count" ] ~docv:"N" ~doc:"Samples to take (default one shot).")

let top_cmd =
  let info =
    Cmd.info "top"
      ~doc:
        "Render a running server's live stats: server totals and a \
         per-session table (requests, latency percentiles, per-op counts, \
         cache attribution) from the $(i,stats) request."
  in
  Cmd.v info
    Term.(
      ret (const top_run $ socket_arg $ tcp_arg $ interval_arg $ count_arg))

let () =
  let info =
    Cmd.info "clio_serve" ~version:"dev"
      ~doc:"Long-lived multi-session mapping-refinement service."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ serve_cmd; loadgen_cmd; scrape_cmd; digests_cmd; top_cmd ]))
