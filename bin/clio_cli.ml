(* clio-cli — explore a source database the Clio way.

   The database is either the built-in paper database (default) or a
   directory of CSV files (one relation per file, header = column names;
   join knowledge is mined from the data).

     clio_cli show [REL]          render relations
     clio_cli profile [REL]       column statistics (nulls, keys, ranges)
     clio_cli mine                mined inclusion dependencies (join knowledge)
     clio_cli select REL PRED     filter a relation with a SQL-ish predicate
     clio_cli occurrences VALUE   where a value occurs (the chase primitive)
     clio_cli walk START GOAL     join paths between two relations
     clio_cli suggest REL...      query graphs connecting a set of relations
     clio_cli illustrate          sufficient illustration of the paper mapping
     clio_cli sql                 SQL for the paper's final Section 2 mapping
     clio_cli stats               operator-counter rollup, per D(G) algorithm
     clio_cli run FILE [--save O] run a mapping-session script
     clio_cli repl                interactive mapping session

   Every subcommand additionally accepts the observability flags
   --trace[=FILE] (record spans, write Chrome trace-event JSON; default
   file trace.json), --stats (print the operator counters and span
   duration histograms afterwards) and --metrics[=FILE] (write the full
   metrics state — counters, histogram percentiles, span durations and
   GC allocation, environment — as JSON; default file metrics.json), and
   --no-cache (disable the engine's F(J)/D(G) memo cache — every context
   built downstream evaluates from scratch; the ablation switch used by
   the benchmarks), --jobs N (evaluate fan-out points on a pool of N
   domains; default 1, also settable via CLIO_JOBS), and
   --history-limit N (changelog window for incremental cache
   maintenance; default 32). *)

open Relational
open Cmdliner

(* --- observability flags -------------------------------------------------

   Extracted by hand before cmdliner parsing so they behave identically on
   every subcommand and in any position: both
   [clio_cli --trace=/tmp/t.json illustrate] and
   [clio_cli illustrate --stats] work. *)

type obs_opts = {
  trace : string option;
  stats : bool;
  metrics : string option;
  no_cache : bool;
  no_incremental : bool;
  jobs : int option;
  history_limit : int option;
}

let extract_obs_flags argv =
  let trace = ref None
  and stats = ref false
  and metrics = ref None
  and no_cache = ref false
  and no_incremental = ref false
  and jobs = ref None
  and history_limit = ref None in
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.equal (String.sub s 0 (String.length prefix)) prefix
  in
  let value_of flag arg =
    (* "--flag=VALUE" -> VALUE; an empty VALUE would silently create a file
       named "" — reject it like cmdliner rejects a missing argument. *)
    let eq = String.index arg '=' in
    let v = String.sub arg (eq + 1) (String.length arg - eq - 1) in
    if String.equal v "" then begin
      Printf.eprintf "clio_cli: option '%s': FILE must not be empty\n" flag;
      exit 124
    end;
    v
  in
  (* "--jobs N" (two tokens) is folded into "--jobs=N" so the filter below
     stays one-pass. *)
  let rec fuse_jobs = function
    | "--jobs" :: v :: rest -> ("--jobs=" ^ v) :: fuse_jobs rest
    | "--history-limit" :: v :: rest ->
        ("--history-limit=" ^ v) :: fuse_jobs rest
    | arg :: rest -> arg :: fuse_jobs rest
    | [] -> []
  in
  let keep =
    fuse_jobs (Array.to_list argv)
    |> List.filter (fun arg ->
           if String.equal arg "--stats" then begin
             stats := true;
             false
           end
           else if String.equal arg "--no-cache" then begin
             no_cache := true;
             false
           end
           else if String.equal arg "--no-incremental" then begin
             no_incremental := true;
             false
           end
           else if String.equal arg "--trace" then begin
             trace := Some "trace.json";
             false
           end
           else if starts_with "--trace=" arg then begin
             trace := Some (value_of "--trace" arg);
             false
           end
           else if String.equal arg "--metrics" then begin
             metrics := Some "metrics.json";
             false
           end
           else if starts_with "--metrics=" arg then begin
             metrics := Some (value_of "--metrics" arg);
             false
           end
           else if starts_with "--jobs=" arg then begin
             (match int_of_string_opt (value_of "--jobs" arg) with
             | Some n when n >= 1 -> jobs := Some n
             | Some _ | None ->
                 Printf.eprintf "clio_cli: option '--jobs': N must be >= 1\n";
                 exit 124);
             false
           end
           else if starts_with "--history-limit=" arg then begin
             (match int_of_string_opt (value_of "--history-limit" arg) with
             | Some n when n >= 1 -> history_limit := Some n
             | Some _ | None ->
                 Printf.eprintf
                   "clio_cli: option '--history-limit': N must be >= 1\n";
                 exit 124);
             false
           end
           else true)
  in
  ( Array.of_list keep,
    {
      trace = !trace;
      stats = !stats;
      metrics = !metrics;
      no_cache = !no_cache;
      no_incremental = !no_incremental;
      jobs = !jobs;
      history_limit = !history_limit;
    } )

let database data_dir =
  match data_dir with
  | None -> Paperdata.Figure1.database
  | Some dir -> Csv_io.database_of_dir dir

let kb_of db data_dir =
  match data_dir with
  | None -> Paperdata.Figure1.kb
  | Some _ ->
      (* CSV directories carry no constraints: mine the data.  Real data is
         dirty (orphan references), so accept candidates with at least 60%
         inclusion. *)
      Schemakb.Kb.add_mined (Schemakb.Kb.of_database db)
        (Schemakb.Mine.inclusion_dependencies ~min_overlap:0.6 db)

let data_arg =
  let doc = "Directory of CSV files to load as the source database." in
  Arg.(value & opt (some dir) None & info [ "d"; "data" ] ~docv:"DIR" ~doc)

let show_cmd =
  let rel_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"REL" ~doc:"Relation name")
  in
  let run data rel =
    let db = database data in
    match rel with
    | None -> List.iter (fun r -> print_endline (Render.relation r)) (Database.relations db)
    | Some name -> (
        match Database.find db name with
        | Some r -> print_endline (Render.relation r)
        | None ->
            Printf.eprintf "unknown relation %s\n" name;
            exit 1)
  in
  Cmd.v (Cmd.info "show" ~doc:"Render relations of the source database")
    Term.(const run $ data_arg $ rel_arg)

let mine_cmd =
  let overlap_arg =
    Arg.(value & opt float 1.0 & info [ "overlap" ] ~docv:"FRACTION"
           ~doc:"Minimum inclusion fraction (1.0 = exact).")
  in
  let run data overlap =
    let db = database data in
    Schemakb.Mine.inclusion_dependencies ~min_overlap:overlap db
    |> List.iter (fun c ->
           Format.printf "%a@." Schemakb.Mine.pp_candidate c)
  in
  Cmd.v (Cmd.info "mine" ~doc:"Mine inclusion dependencies (join knowledge)")
    Term.(const run $ data_arg $ overlap_arg)

let occurrences_cmd =
  let value_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"VALUE" ~doc:"Value to chase")
  in
  let run data value =
    let db = database data in
    let v = Value.of_csv_cell value in
    match Database.find_value db v with
    | [] -> Printf.printf "value %s not found\n" (Value.to_string v)
    | occs ->
        List.iter
          (fun (rel, col, count) -> Printf.printf "%s.%s (%d tuples)\n" rel col count)
          occs
  in
  Cmd.v
    (Cmd.info "occurrences" ~doc:"Locate a value across the database (chase primitive)")
    Term.(const run $ data_arg $ value_arg)

let walk_cmd =
  let start_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"START" ~doc:"Start relation")
  in
  let goal_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"GOAL" ~doc:"Goal relation")
  in
  let len_arg =
    Arg.(value & opt int 3 & info [ "max-len" ] ~docv:"N" ~doc:"Maximum path length")
  in
  let run data start goal max_len =
    let db = database data in
    let kb = kb_of db data in
    if not (Database.mem db start) then begin
      Printf.eprintf "unknown relation %s\n" start;
      exit 1
    end;
    let m =
      Clio.Mapping.make
        ~graph:(Querygraph.Qgraph.singleton ~alias:start ~base:start)
        ~target:"Out" ~target_cols:[] ()
    in
    match Clio.Op_walk.walk_alternatives ~kb m ~start ~goal ~max_len () with
    | [] -> Printf.printf "no walks from %s to %s within %d steps\n" start goal max_len
    | alts ->
        List.iteri
          (fun i (a : Clio.Op_walk.alternative) ->
            Printf.printf "%d. %s\n" (i + 1) a.Clio.Op_walk.description)
          alts
  in
  Cmd.v (Cmd.info "walk" ~doc:"Enumerate join paths between two relations")
    Term.(const run $ data_arg $ start_arg $ goal_arg $ len_arg)

let profile_cmd =
  let rel_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"REL" ~doc:"Relation name")
  in
  let run data rel =
    let db = database data in
    let stats =
      match rel with
      | None -> Schemakb.Profile.database db
      | Some name -> (
          match Database.find db name with
          | Some r -> Schemakb.Profile.relation r
          | None ->
              Printf.eprintf "unknown relation %s\n" name;
              exit 1)
    in
    print_endline (Schemakb.Profile.render stats)
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Column statistics mined from the source data")
    Term.(const run $ data_arg $ rel_arg)

let suggest_cmd =
  let rels_arg =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"REL" ~doc:"Relations to connect")
  in
  let run data rels =
    let db = database data in
    let kb = kb_of db data in
    match Clio.Suggest.connection_graphs ~kb rels with
    | [] -> Printf.printf "no connection graphs found for %s\n" (String.concat ", " rels)
    | suggestions ->
        List.iteri
          (fun i (s : Clio.Suggest.suggestion) ->
            Printf.printf "%d. %s\n" (i + 1)
              (Querygraph.Qgraph.to_string s.Clio.Suggest.graph))
          suggestions
  in
  Cmd.v
    (Cmd.info "suggest"
       ~doc:"Suggest query graphs connecting a set of relations (universal-relation style)")
    Term.(const run $ data_arg $ rels_arg)

let select_cmd =
  let rel_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"REL" ~doc:"Relation name")
  in
  let pred_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"PREDICATE" ~doc:"Filter, e.g. 'age < 7'")
  in
  let run data rel pred =
    let db = database data in
    match Database.find db rel with
    | None ->
        Printf.eprintf "unknown relation %s\n" rel;
        exit 1
    | Some r -> (
        match Parse.predicate_opt ~rel pred with
        | None ->
            Printf.eprintf "cannot parse predicate: %s\n" pred;
            exit 1
        | Some p -> print_endline (Render.relation (Algebra.select p r)))
  in
  Cmd.v (Cmd.info "select" ~doc:"Filter a relation with a SQL-ish predicate")
    Term.(const run $ data_arg $ rel_arg $ pred_arg)

let illustrate_cmd =
  let run () =
    let db = Paperdata.Figure1.database in
    let m = Paperdata.Running.mapping in
    let ctx = Clio.Eval_ctx.create ~kb:Paperdata.Figure1.kb db in
    let ill = Clio.illustrate ctx m in
    let fd = Clio.Mapping_eval.data_associations ctx m in
    print_endline
      (Clio.Illustration.render ~short:Paperdata.Figure1.short
         ~scheme:fd.Fulldisj.Full_disjunction.scheme ill)
  in
  Cmd.v
    (Cmd.info "illustrate"
       ~doc:"Sufficient illustration of the paper's running mapping")
    Term.(const run $ const ())

let sql_cmd =
  let run () = print_endline (Paperdata.Report.sql ()) in
  Cmd.v (Cmd.info "sql" ~doc:"Generated SQL for the Section 2 mapping")
    Term.(const run $ const ())

let stats_cmd =
  let run () =
    let db = Paperdata.Figure1.database in
    let m = Paperdata.Running.mapping in
    Obs.enable ();
    (* Per-algorithm rollup: the same D(G)+examples workload, counted three
       ways.  The counter deltas — not the timings — are the algorithmic
       explanation of why the indexed and outer-join plans win. *)
    let algorithms =
      [
        ("naive", Clio.Mapping_eval.Naive);
        ("indexed", Clio.Mapping_eval.Indexed);
        ("outerjoin", Clio.Mapping_eval.Outerjoin_if_tree);
      ]
    in
    let snaps =
      List.map
        (fun (label, algorithm) ->
          Obs.reset ();
          ignore (Clio.Mapping_eval.examples ~algorithm (Clio.Eval_ctx.transient db) m);
          (label, (Obs.Metrics.snapshot ()).Obs.Metrics.counters))
        algorithms
    in
    let names =
      List.concat_map (fun (_, cs) -> List.map fst cs) snaps
      |> List.fold_left
           (fun acc n -> if List.mem n acc then acc else acc @ [ n ])
           []
    in
    print_endline
      "Mapping_eval.examples (Clio.Eval_ctx.transient on) the paper mapping — operator counters per D(G) algorithm:";
    print_newline ();
    let width = List.fold_left (fun w n -> max w (String.length n)) 7 names in
    Printf.printf "%-*s" width "counter";
    List.iter (fun (label, _) -> Printf.printf " %10s" label) snaps;
    print_newline ();
    Printf.printf "%s\n" (String.make (width + (11 * List.length snaps)) '-');
    List.iter
      (fun n ->
        Printf.printf "%-*s" width n;
        List.iter
          (fun (_, cs) ->
            Printf.printf " %10d"
              (match List.assoc_opt n cs with Some v -> v | None -> 0))
          snaps;
        print_newline ())
      names;
    (* End-to-end rollup of the default workflow, histograms included. *)
    Obs.reset ();
    ignore (Clio.illustrate (Clio.Eval_ctx.transient db) m);
    print_newline ();
    print_endline "End-to-end `illustrate` rollup (indexed algorithm):";
    print_newline ();
    print_endline (Obs.report ());
    (* Lineage rollup: provenance + why-null of a real target row, so the
       explain.* counters (derivations enumerated, tuples matched) are
       visible next to the evaluation counters. *)
    Obs.reset ();
    let exs = Clio.Mapping_eval.examples (Clio.Eval_ctx.transient db) m in
    (match
       List.find_opt (fun e -> e.Clio.Example.positive) exs
     with
    | None -> ()
    | Some e ->
        let t = e.Clio.Example.target_tuple in
        let null_col =
          (* Prefer a column that is actually null in the row. *)
          let cols = m.Clio.Mapping.target_cols in
          let rec pick i = function
            | [] -> List.nth_opt cols 0
            | c :: rest ->
                if Value.is_null (Tuple.get t i) then Some c
                else pick (i + 1) rest
          in
          pick 0 cols
        in
        ignore (Clio.Explain.of_target_tuple (Clio.Eval_ctx.transient db) m t);
        Option.iter (fun col -> ignore (Clio.Explain.why_null (Clio.Eval_ctx.transient db) m t col)) null_col;
        print_newline ();
        Printf.printf "Lineage rollup (`explain` on target row %s):\n"
          (Tuple.to_string t);
        print_newline ();
        print_endline (Obs.Metrics.render_counters ()));
    (* Cache rollup: replay the interactive loop — offer alternatives,
       rotate through them, confirm — inside one caching context, then show
       the engine's cache counters (hits/misses/evictions per tier and
       resident bytes).  This is the memoization the workspace UX rides on. *)
    Obs.reset ();
    let ctx = Clio.Eval_ctx.create ~kb:Paperdata.Figure1.kb db in
    let g1 = Paperdata.Running.mapping_g1 in
    let ws = Clio.Workspace.create ctx g1 in
    let alts =
      match
        Clio.Op_walk.data_walk ctx g1 ~start:"Children" ~goal:"PhoneDir"
          ~max_len:2 ()
      with
      | [] -> [ g1 ]
      | walks -> List.map (fun (a : Clio.Op_walk.alternative) -> a.Clio.Op_walk.mapping) walks
    in
    let ws = Clio.Workspace.offer ws alts in
    let ws = ref ws in
    for _ = 1 to 2 * List.length alts do
      ws := Clio.Workspace.rotate !ws;
      ignore (Clio.Workspace.target_view !ws)
    done;
    (* An example edit mid-session: inserting a Children row bumps the
       database version, and the re-evaluations after it exercise the
       engine's incremental path — the cache.promote.* / delta.* counters
       below come from here. *)
    let ws =
      Clio.Workspace.add_tuples (Clio.Workspace.confirm !ws) "Children"
        [
          [|
            Value.String "012"; Value.String "Zoe"; Value.Int 7;
            Value.String "103"; Value.String "104"; Value.String "d31";
          |];
        ]
    in
    ignore (Clio.Workspace.render ws);
    print_newline ();
    print_endline
      "Cache rollup (workspace offer/rotate/edit/confirm in one caching \
       context):";
    print_newline ();
    let counters = (Obs.Metrics.snapshot ()).Obs.Metrics.counters in
    let prefixed p n =
      String.length n >= String.length p
      && String.equal (String.sub n 0 (String.length p)) p
    in
    let cache_counters =
      List.filter
        (fun (n, _) -> prefixed "cache." n || prefixed "delta." n)
        counters
    in
    if cache_counters = [] then print_endline "  (no cache activity recorded)"
    else
      List.iter (fun (n, v) -> Printf.printf "  %-26s %10d\n" n v) cache_counters;
    Obs.disable ();
    Obs.reset ()
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Operator-counter rollup on the paper mapping, per D(G) algorithm")
    Term.(const run $ const ())

let run_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Script file")
  in
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"OUT"
             ~doc:"Write the resulting mapping as a runnable script to $(docv).")
  in
  let html_arg =
    Arg.(value & opt (some string) None
         & info [ "html" ] ~docv:"OUT"
             ~doc:"Write an HTML report of the resulting mapping to $(docv).")
  in
  let run data file save html =
    let db = database data in
    let kb = kb_of db data in
    let ctx = Clio.Eval_ctx.create ~kb db in
    let ic = open_in_bin file in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Clio.Script.run_result_ctx ctx text with
    | Ok outcome ->
        List.iter print_endline outcome.Clio.Script.log;
        let emit what out render =
          match outcome.Clio.Script.mapping with
          | Some m ->
              let oc = open_out out in
              output_string oc (render m);
              close_out oc;
              Printf.printf "%s written to %s\n" what out
          | None -> Printf.eprintf "warning: no mapping for --%s\n" what
        in
        Option.iter (fun out -> emit "save" out Clio.Mapping_io.save) save;
        Option.iter (fun out -> emit "html" out (Clio.Report_html.page ctx)) html
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 1
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a mapping-session script (see Clio.Script)")
    Term.(const run $ data_arg $ file_arg $ save_arg $ html_arg)

let repl_cmd =
  let run data =
    let db = database data in
    let kb = kb_of db data in
    print_endline "clio repl — type commands (see Clio.Script); ctrl-d to quit";
    let state = ref (Clio.Script.Interactive.start_ctx (Clio.Eval_ctx.create ~kb db)) in
    (try
       while true do
         print_string "clio> ";
         let line = read_line () in
         match Clio.Script.Interactive.feed !state line with
         | Ok (st, output) ->
             state := st;
             List.iter print_endline output
         | Error e -> Printf.printf "error: %s\n" e
       done
     with End_of_file -> print_newline ());
    match Clio.Script.Interactive.mapping !state with
    | Some m -> Format.printf "final mapping:@.%a@." Clio.Mapping.pp m
    | None -> ()
  in
  Cmd.v (Cmd.info "repl" ~doc:"Interactive mapping session") Term.(const run $ data_arg)

(* --- store: the branching version store, offline -----------------------

   Single-shot counterparts of the server's branch/checkout/merge/diff
   verbs: each invocation loads the store from --dir (replaying its
   changelog), performs one operation, and saves it back.  The same
   snapshot format clio_serve --store-dir uses, so a server's persisted
   sessions can be inspected and mutated offline. *)

let store_resolve spec =
  let db, kb, mapping = Version.Scenario.resolve spec in
  let ctx = Clio.Eval_ctx.create ~kb db in
  Clio.Workspace.create ctx mapping

let store_load dir = Version.Store.load ~resolve:store_resolve ~dir ()

let store_dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "dir" ] ~docv:"DIR" ~doc:"Store directory (snapshot + changelog).")

let store_branch_arg =
  Arg.(
    value
    & opt string Version.Store.main
    & info [ "branch" ] ~docv:"NAME" ~doc:"Branch to operate on.")

let store_wrap f =
  match f () with
  | () -> `Ok ()
  | exception (Failure msg | Invalid_argument msg | Sys_error msg) ->
      `Error (false, msg)

let store_init_run dir scenario size rows seed =
  let spec =
    match String.lowercase_ascii scenario with
    | "paper" -> Version.Scenario.Paper
    | "chain" -> Version.Scenario.Chain { n = size; rows; seed }
    | "star" -> Version.Scenario.Star { leaves = size; rows; seed }
    | other ->
        Printf.eprintf "unknown scenario %S (paper, chain or star)\n" other;
        exit 2
  in
  store_wrap (fun () ->
      (match Version.Scenario.validate spec with
      | Ok () -> ()
      | Error msg -> failwith msg);
      let store = Version.Store.create ~resolve:store_resolve spec in
      Version.Store.save store ~dir;
      Printf.printf "initialized %s store in %s\n"
        (Version.Scenario.to_string spec)
        dir)

let store_init_cmd =
  let scenario_arg =
    Arg.(
      value & opt string "paper"
      & info [ "scenario" ] ~docv:"NAME" ~doc:"paper, chain or star.")
  in
  let size_arg =
    Arg.(
      value & opt int 3
      & info [ "size" ] ~docv:"N" ~doc:"Chain length / star leaves.")
  in
  let rows_arg =
    Arg.(
      value & opt int 500
      & info [ "rows" ] ~docv:"N" ~doc:"Rows per synthetic relation.")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")
  in
  Cmd.v
    (Cmd.info "init" ~doc:"Create a fresh store over a scenario")
    Term.(
      ret
        (const store_init_run $ store_dir_arg $ scenario_arg $ size_arg
       $ rows_arg $ seed_arg))

let store_show_run dir =
  store_wrap (fun () ->
      let store = store_load dir in
      Printf.printf "scenario  %s\n"
        (Version.Scenario.to_string (Version.Store.spec store));
      List.iter
        (fun (name, version) ->
          Printf.printf "%-12s head %-4d dbv %-4d %s\n" name
            (Version.Store.head store name)
            version
            (Version.Store.state_digest store name))
        (Version.Store.branches store))

let store_show_cmd =
  Cmd.v
    (Cmd.info "show"
       ~doc:"List branches: head commit, database version, state digest")
    Term.(ret (const store_show_run $ store_dir_arg))

let store_branch_run dir from name =
  store_wrap (fun () ->
      let store = store_load dir in
      ignore (Version.Store.branch store ~from name);
      Version.Store.save store ~dir;
      Printf.printf "branched %s off %s at commit %d\n" name from
        (Version.Store.head store from))

let store_branch_cmd =
  let from_arg =
    Arg.(
      value
      & opt string Version.Store.main
      & info [ "from" ] ~docv:"NAME" ~doc:"Branch to fork off.")
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"New branch name.")
  in
  Cmd.v
    (Cmd.info "branch" ~doc:"Fork a new branch off an existing one")
    Term.(ret (const store_branch_run $ store_dir_arg $ from_arg $ name_arg))

let store_merge_run dir into from =
  store_wrap (fun () ->
      let store = store_load dir in
      let rows = Version.Store.merge store ~into ~from in
      Version.Store.save store ~dir;
      Printf.printf "merged %s into %s: %d new row(s)\n" from into rows)

let store_merge_cmd =
  let into_arg =
    Arg.(
      value
      & opt string Version.Store.main
      & info [ "into" ] ~docv:"NAME" ~doc:"Branch merged into.")
  in
  let from_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "from" ] ~docv:"NAME" ~doc:"Branch whose inserts are folded in.")
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:"Fold one branch's example-tuple inserts into another")
    Term.(ret (const store_merge_run $ store_dir_arg $ into_arg $ from_arg))

let store_diff_run dir a b =
  store_wrap (fun () ->
      let store = store_load dir in
      List.iter
        (fun (k, v) ->
          Printf.printf "%-24s %s\n" k
            (if Float.is_integer v then Printf.sprintf "%.0f" v
             else Printf.sprintf "%g" v))
        (Version.Store.diff store ~a ~b))

let store_diff_cmd =
  let a_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"A" ~doc:"First branch.")
  in
  let b_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"B" ~doc:"Second branch.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two branches: LCA, commits ahead/behind, per-relation row \
          drift")
    Term.(ret (const store_diff_run $ store_dir_arg $ a_arg $ b_arg))

let store_log_run dir branch =
  store_wrap (fun () ->
      let store = store_load dir in
      List.iter
        (fun (c : Version.Store.commit) ->
          let what =
            match c.Version.Store.kind with
            | Version.Store.Root -> "root"
            | Version.Store.Apply op -> Version.Op.name op
            | Version.Store.Branch_from src ->
                Printf.sprintf "branch from %s" src
            | Version.Store.Merge { from_branch; inserts } ->
                Printf.sprintf "merge %s (%d relation(s))" from_branch
                  (List.length inserts)
          in
          Printf.printf "%4d %-10s %s\n" c.Version.Store.cid
            c.Version.Store.branch what)
        (Version.Store.log store ~branch))

let store_log_cmd =
  Cmd.v
    (Cmd.info "log" ~doc:"A branch's commits, oldest first, through its fork")
    Term.(ret (const store_log_run $ store_dir_arg $ store_branch_arg))

(* "null" -> Null, integers -> Int, other numbers -> Float, rest -> String
   (same typing rule as the wire protocol's value decoding). *)
let parse_cell s =
  if String.lowercase_ascii s = "null" then Value.Null
  else
    match int_of_string_opt s with
    | Some i -> Value.Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Value.Float f
        | None -> Value.String s)

let store_insert_run dir branch relation cells =
  store_wrap (fun () ->
      let row = Array.of_list (List.map parse_cell cells) in
      let store = store_load dir in
      ignore
        (Version.Store.commit store ~branch
           (Version.Op.Insert { relation; rows = [ row ] }));
      Version.Store.save store ~dir;
      Printf.printf "inserted into %s on %s (commit %d)\n" relation branch
        (Version.Store.head store branch))

let store_insert_cmd =
  let relation_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REL" ~doc:"Relation inserted into.")
  in
  let cells_arg =
    Arg.(
      non_empty & pos_right 0 string []
      & info [] ~docv:"VALUE"
          ~doc:
            "Cell values, one per column ($(i,null), integers and floats \
             are typed; anything else is a string).")
  in
  Cmd.v
    (Cmd.info "insert"
       ~doc:"Commit an example-tuple insert on a branch")
    Term.(
      ret
        (const store_insert_run $ store_dir_arg $ store_branch_arg
       $ relation_arg $ cells_arg))

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:
         "Offline access to a branching version store (the same on-disk \
          format clio_serve --store-dir persists): init, branch, insert, \
          merge, diff, log, show.")
    [
      store_init_cmd;
      store_show_cmd;
      store_branch_cmd;
      store_merge_cmd;
      store_diff_cmd;
      store_log_cmd;
      store_insert_cmd;
    ]

(* Raised from the signal handlers so that Ctrl-C (or a TERM) during a
   long evaluation unwinds to the epilogue below — the --trace/--metrics
   files still get written — and exits with the conventional 128+signo
   code instead of the process dying mid-write. *)
exception Interrupted of int

let () =
  let argv, obs = extract_obs_flags Sys.argv in
  if obs.no_cache then Clio.Eval_ctx.set_caching_default false;
  if obs.no_incremental then Clio.Eval_ctx.set_incremental_default false;
  (match obs.jobs with Some j -> Clio.Eval_ctx.set_jobs_default j | None -> ());
  (match obs.history_limit with
  | Some n -> Database.set_history_limit n
  | None -> ());
  if obs.trace <> None || obs.stats || obs.metrics <> None then Obs.enable ();
  let man =
    [
      `S Manpage.s_common_options;
      `P
        "$(b,--trace)[$(b,=)$(i,FILE)] records execution spans during any \
         subcommand and writes a Chrome trace-event JSON (default \
         $(i,trace.json)) loadable in chrome://tracing or ui.perfetto.dev.";
      `P
        "$(b,--stats) prints the operator counters and span-duration \
         histograms after any subcommand.";
      `P
        "$(b,--metrics)[$(b,=)$(i,FILE)] writes the full metrics state \
         (counters, histogram percentiles, per-span durations and GC \
         allocation, environment) as JSON (default $(i,metrics.json)) \
         after any subcommand.";
      `P
        "$(b,--no-cache) disables the engine's memoized evaluation cache \
         (F(J) and D(G) tiers): every evaluation context built during the \
         subcommand recomputes from scratch.  Useful for ablation and for \
         reproducing pre-cache timings.";
      `P
        "$(b,--no-incremental) disables incremental cache maintenance: \
         after a database edit, cache entries from earlier versions are \
         recomputed from scratch instead of being promoted or repaired \
         through the recorded delta chain.  The ablation switch behind \
         bench B15.";
      `P
        "$(b,--jobs=)$(i,N) evaluates fan-out points (per-subgraph joins, \
         walk/chase alternatives, subsumption sweeps, illustration \
         scoring) on a pool of $(i,N) domains (default 1 = sequential; \
         the $(b,CLIO_JOBS) environment variable sets the default).  \
         Results are identical to sequential evaluation.";
      `P
        "$(b,--history-limit=)$(i,N) keeps the last $(i,N) database \
         versions of changelog history (default 32).  Edits older than \
         the window force affected cache entries to recompute from \
         scratch instead of replaying deltas; raise it for long replayed \
         sessions, lower it to bound changelog memory.";
    ]
  in
  let info =
    Cmd.info "clio_cli" ~version:"1.0.0"
      ~doc:"Data-driven understanding and refinement of schema mappings"
      ~man
  in
  Sys.set_signal Sys.sigint
    (Sys.Signal_handle (fun _ -> raise (Interrupted 130)));
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> raise (Interrupted 143)));
  let group =
    Cmd.group info
      [
        show_cmd;
        mine_cmd;
        occurrences_cmd;
        walk_cmd;
        illustrate_cmd;
        sql_cmd;
        stats_cmd;
        profile_cmd;
        suggest_cmd;
        select_cmd;
        run_cmd;
        repl_cmd;
        store_cmd;
      ]
  in
  (* [~catch:false] so [Interrupted] reaches us; anything else gets
     cmdliner's usual internal-error treatment, reproduced here. *)
  let code =
    match Cmd.eval ~catch:false ~argv group with
    | code -> code
    | exception Interrupted code ->
        prerr_newline ();
        Printf.eprintf "clio_cli: interrupted\n";
        code
    | exception exn ->
        let bt = Printexc.get_backtrace () in
        Printf.eprintf "clio_cli: internal error, uncaught exception:\n%s\n%s"
          (Printexc.to_string exn) bt;
        Cmd.Exit.internal_error
  in
  let code =
    match obs.trace with
    | Some file -> (
        try
          Obs.write_trace file;
          Printf.eprintf
            "trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n"
            file;
          code
        with Sys_error msg ->
          Printf.eprintf "clio_cli: cannot write trace: %s\n" msg;
          max code 1)
    | None -> code
  in
  let code =
    match obs.metrics with
    | Some file -> (
        try
          Obs.write_metrics file;
          Printf.eprintf "metrics written to %s\n" file;
          code
        with Sys_error msg ->
          Printf.eprintf "clio_cli: cannot write metrics: %s\n" msg;
          max code 1)
    | None -> code
  in
  if obs.stats then begin
    print_newline ();
    print_endline (Obs.report ())
  end;
  exit code
