(* Regenerate the paper's figures and worked examples.

   Usage:  figures            — print everything
           figures fig8 sql   — print selected experiments
           figures --list     — list available experiment ids
           figures --stats    — additionally print the Obs counter/histogram
                                rollup of the run (CI watches this for
                                operator-count drift) *)

let print_one (id, descr, render) =
  Printf.printf "=============================================================\n";
  Printf.printf "%s — %s\n" id descr;
  Printf.printf "=============================================================\n";
  print_endline (render ());
  print_newline ()

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let stats = List.mem "--stats" args in
  let args = List.filter (fun a -> a <> "--stats") args in
  if stats then Obs.enable ();
  (match args with
  | [ "--list" ] ->
      List.iter
        (fun (id, descr, _) -> Printf.printf "%-6s %s\n" id descr)
        Paperdata.Report.all
  | [] -> List.iter print_one Paperdata.Report.all
  | ids ->
      List.iter
        (fun id ->
          match
            List.find_opt (fun (i, _, _) -> String.equal i id) Paperdata.Report.all
          with
          | Some exp -> print_one exp
          | None ->
              Printf.eprintf "unknown experiment %s (try --list)\n" id;
              exit 1)
        ids);
  if stats then begin
    print_endline "=============================================================";
    print_endline "Obs rollup of the figures run (--stats)";
    print_endline "=============================================================";
    print_endline (Obs.report ())
  end
