open Relational

type fk_spec = { target : string; null_prob : float; orphan_prob : float }

let sample_ids st ~rows ~key_space =
  if rows <= key_space then begin
    (* Fisher–Yates prefix over the key space. *)
    let arr = Array.init key_space Fun.id in
    for i = 0 to min (rows - 1) (key_space - 1) do
      let j = i + Random.State.int st (key_space - i) in
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t
    done;
    Array.to_list (Array.sub arr 0 rows)
  end
  else List.init rows (fun i -> i mod key_space)

let relation st ~name ~rows ~payload_cols ~fks ~key_space =
  let cols =
    "id"
    :: (List.init payload_cols (fun i -> Printf.sprintf "p%d" i)
       @ List.map (fun f -> "fk_" ^ f.target) fks)
  in
  let schema = Schema.make name cols in
  let ids = sample_ids st ~rows ~key_space in
  let tuples =
    List.map
      (fun id ->
        let payload =
          List.init payload_cols (fun i ->
              Value.String (Printf.sprintf "%s-%d-%d" name i (Random.State.int st 1000)))
        in
        let fk_vals =
          List.map
            (fun f ->
              let r = Random.State.float st 1.0 in
              if r < f.null_prob then Value.Null
              else if r < f.null_prob +. f.orphan_prob then
                Value.Int (key_space + Random.State.int st key_space)
              else Value.Int (Random.State.int st key_space))
            fks
        in
        Tuple.make ((Value.Int id :: payload) @ fk_vals))
      ids
  in
  Relation.create name schema tuples

let sparse_tuples st ~rows ~arity ~null_prob ~domain =
  List.init rows (fun _ ->
      Array.init arity (fun _ ->
          if Random.State.float st 1.0 < null_prob then Value.Null
          else Value.Int (Random.State.int st domain)))

let skewed_tuples st ~rows ~arity ~null_prob ~domain ?(zipf_s = 1.0) () =
  (* Inverse-CDF sampling over the (finite) Zipf distribution. *)
  let weights =
    Array.init domain (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) zipf_s)
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make domain 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  let sample () =
    let u = Random.State.float st 1.0 in
    let rec bisect lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) < u then bisect (mid + 1) hi else bisect lo mid
    in
    bisect 0 (domain - 1)
  in
  List.init rows (fun _ ->
      Array.init arity (fun _ ->
          if Random.State.float st 1.0 < null_prob then Value.Null
          else Value.Int (sample ())))

(* --- column-native generation (million-tuple scale) ---------------------

   The columnar builders fill [Value_pool] id columns directly — no boxed
   tuple is ever allocated on the generation path, so a million-row
   relation costs array fills plus RNG draws.  Integer domains are
   pre-interned once and indexed thereafter. *)

let interned_int_domain n =
  Array.init n (fun k -> Value_pool.intern (Value.Int k))

let columnar_chain_relation st ~name ~rows ?payload_domain ~fk () =
  if rows <= 0 then invalid_arg "Gen_db.columnar_chain_relation: rows must be > 0";
  let ids = interned_int_domain rows in
  let id_col = Array.init rows (fun i -> ids.(i)) in
  let payload =
    match payload_domain with
    | None -> []
    | Some d ->
        if d <= 0 then
          invalid_arg "Gen_db.columnar_chain_relation: payload_domain must be > 0";
        let pool =
          Array.init d (fun k ->
              Value_pool.intern (Value.String (Printf.sprintf "%s-%06d" name k)))
        in
        [ ("pay", Array.init rows (fun _ -> pool.(Random.State.int st d))) ]
  in
  let cols =
    match fk with
    | None -> ("id", id_col) :: payload
    | Some (target, target_rows, null_prob) ->
        let tids = interned_int_domain target_rows in
        let fk_col =
          Array.init rows (fun _ ->
              if Random.State.float st 1.0 < null_prob then 0
              else tids.(Random.State.int st target_rows))
        in
        ("id", id_col) :: ("fk_" ^ target, fk_col) :: payload
  in
  Relation.of_columns ~dedup:false name
    (Schema.make name (List.map fst cols))
    (Array.of_list (List.map snd cols))

let columnar_chain_db st ~names ~rows ?payload_domain ~null_prob () =
  if names = [] then invalid_arg "Gen_db.columnar_chain_db: no relations";
  let rec build = function
    | [] -> []
    | [ last ] ->
        [ columnar_chain_relation st ~name:last ~rows ?payload_domain ~fk:None () ]
    | name :: (next :: _ as rest) ->
        columnar_chain_relation st ~name ~rows ?payload_domain
          ~fk:(Some (next, rows, null_prob))
          ()
        :: build rest
  in
  Database.of_relations (build names)

let sparse_columns st ~rows ~arity ~null_prob ~domain =
  let ids = interned_int_domain domain in
  Array.init arity (fun _ ->
      Array.init rows (fun _ ->
          if Random.State.float st 1.0 < null_prob then 0
          else ids.(Random.State.int st domain)))
