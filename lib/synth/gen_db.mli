(** Deterministic random data generation for benchmarks and property tests.

    All generators take an explicit [Random.State.t]; the same seed yields
    the same database. *)

open Relational

type fk_spec = {
  target : string;  (** referenced relation *)
  null_prob : float;  (** probability the FK value is null *)
  orphan_prob : float;  (** probability it references a missing key *)
}

(** [relation st ~name ~rows ~payload_cols ~fks ~key_space] — a relation
    with an ["id"] key column (values [0 .. key_space-1], unique, sampled
    without replacement when [rows <= key_space]), [payload_cols] string
    columns, and one column ["fk_<target>"] per FK spec.  Orphan references
    land outside [0 .. key_space-1]. *)
val relation :
  Random.State.t ->
  name:string ->
  rows:int ->
  payload_cols:int ->
  fks:fk_spec list ->
  key_space:int ->
  Relation.t

(** A random tuple list over an arbitrary scheme with a given null rate and
    value domain size — used by property tests for subsumption-heavy
    inputs. *)
val sparse_tuples :
  Random.State.t -> rows:int -> arity:int -> null_prob:float -> domain:int -> Tuple.t list

(** Like {!sparse_tuples} but with Zipf-distributed values (exponent
    [s]≈1): a few very frequent values and a long tail, the regime where
    selectivity-aware index probing pays off (bench B1's skew variant). *)
val skewed_tuples :
  Random.State.t ->
  rows:int ->
  arity:int ->
  null_prob:float ->
  domain:int ->
  ?zipf_s:float ->
  unit ->
  Tuple.t list

(** [columnar_chain_relation st ~name ~rows ~fk] — a relation built
    directly as {!Value_pool} id columns (no boxed tuples on the
    generation path): an ["id"] key column [0 .. rows-1] plus, when
    [fk = Some (target, target_rows, null_prob)], one ["fk_<target>"]
    column drawn uniformly from the target's key space with the given
    null rate, and, with [?payload_domain:d], a ["pay"] column of
    strings drawn from [d] distinct relation-specific payloads (string
    work is what boxed kernels pay per operator and interning pays
    once). *)
val columnar_chain_relation :
  Random.State.t ->
  name:string ->
  rows:int ->
  ?payload_domain:int ->
  fk:(string * int * float) option ->
  unit ->
  Relation.t

(** A database of [names] chained by FK columns ([R1.fk_R2 = R2.id], …),
    [rows] tuples each, all built column-natively — the substrate of the
    million-tuple full-disjunction workload (bench B17). *)
val columnar_chain_db :
  Random.State.t ->
  names:string list ->
  rows:int ->
  ?payload_domain:int ->
  null_prob:float ->
  unit ->
  Database.t

(** Like {!sparse_tuples}, but as interned id columns: subsumption-heavy
    input for the columnar sweep at scales where boxing would dominate. *)
val sparse_columns :
  Random.State.t ->
  rows:int ->
  arity:int ->
  null_prob:float ->
  domain:int ->
  int array array
