(** The mutation vocabulary of a refinement session, reified.

    Every state-changing step a session can take — example-tuple inserts
    and the workspace verbs — is one [t].  The server's session verbs, the
    offline [clio_cli store] commands and the version store's
    changelog-replay all construct the next state through {!apply}, so
    "what happened" has exactly one executable definition and a replayed
    changelog reproduces the live state byte-for-byte.

    Read-only operations (evaluate, rank, stats) are deliberately not ops:
    they never appear in a changelog. *)

open Relational

type t =
  | Insert of { relation : string; rows : Value.t array list }
  | Offer of { start : string; goal : string; max_len : int }
  | Rotate
  | Select of { entry : int }
  | Delete of { entry : int }
  | Confirm

val name : t -> string

(** JSON codec, used for both the wire protocol's rows and the on-disk
    changelog.  [json_of_value] raises [Invalid_argument] on non-finite
    floats (JSON cannot carry them losslessly). *)
val json_of_value : Value.t -> Obs.Json.t

val value_of_json : Obs.Json.t -> (Value.t, string) Stdlib.result
val json_of_rows : Value.t array list -> Obs.Json.t
val rows_of_json : Obs.Json.t -> (Value.t array list, string) Stdlib.result
val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) Stdlib.result

(** Apply one op.  Deterministic given the workspace state.  Raises
    [Invalid_argument] (unknown relation, malformed tuples, no walks, last
    entry) or [Not_found] (unknown entry id) exactly as the underlying
    workspace operations do; on raise the input workspace is unchanged
    (workspaces are immutable values). *)
val apply : Clio.Workspace.t -> t -> Clio.Workspace.t
