(** Scenario specs and their resolution into the state a session starts
    from: a database, its knowledge base, and the initial mapping the
    workspace holds.

    The spec type lives here (rather than in the server's wire protocol)
    so the offline CLI, the version store's snapshots and the server all
    share one definition; [Server.Protocol] re-exports it with a type
    equation.

    Resolution is memoized per spec: every session opened from an equal
    spec receives the {e same} {!Relational.Database.t} value — same
    {!Relational.Database.version} — so their evaluations share entries in
    the server's one {!Engine.Eval_cache} (cache keys are
    [(version, graph)]; distinct versions never share).  A session that
    then edits its database forks off a fresh version and stops sharing,
    which is exactly the isolation the versioned store provides. *)

open Relational

type t =
  | Paper
  | Chain of { n : int; rows : int; seed : int }
  | Star of { leaves : int; rows : int; seed : int }

val to_string : t -> string

(** [validate spec] — [Error msg] when the spec's sizes are outside the
    supported envelope (chain [2 <= n <= 8], star [1 <= leaves <= 8],
    [1 <= rows <= 200_000], any seed). *)
val validate : t -> (unit, string) Stdlib.result

(** JSON image, used by the wire protocol and the on-disk snapshot format
    alike.  [of_json] accepts what [to_json] emits (seed defaults to 0). *)
val to_json : t -> Obs.Json.t

val of_json : Obs.Json.t -> (t, string) Stdlib.result

(** The one-node identity mapping a synthetic session starts from. *)
val rooted_mapping : root:string -> Clio.Mapping.t

(** [resolve spec] — memoized; raises [Invalid_argument] on an invalid
    spec (callers should {!validate} first). *)
val resolve : t -> Database.t * Schemakb.Kb.t * Clio.Mapping.t

(** Like {!resolve} but never memoized: a private database value with a
    fresh version, sharing nothing — what a direct single-session replay
    (the load generator's verification arm) uses. *)
val resolve_fresh : t -> Database.t * Schemakb.Kb.t * Clio.Mapping.t
