(** {1:branching The branching version store}

    A git-like version DAG over refinement-session state.  Each {b branch}
    names one live {!Clio.Workspace.t} — database + workspace + mapping
    state — and every mutation is a {b commit}: the reified {!Op.t} that
    produced the new state, chained to its parent.  Branching shares the
    immutable base state (branching is O(1): workspaces and databases are
    values); merging folds the example tuples recorded on one branch into
    another; the whole DAG persists to disk as a snapshot plus a
    changelog, and a restarted process rebuilds byte-identical state by
    replaying it.

    Cache economics: {!Relational.Database} versions are process-global
    and immutable, so a branch's recorded history runs back {e through}
    its fork point into versions shared with sibling branches.  The
    engine's promotion walk ({!Engine.Eval_ctx}) therefore reuses warm
    F(J)/D(G) entries across branches with a common ancestor without any
    store-specific machinery; the store tags each branch's context with
    its fork version ({!Clio.Workspace.with_branch_root}) so those
    cross-branch promotions are counted ([cache.promote.cross_branch.*]).

    The store is not domain-safe; the server serializes access through its
    single-threaded loop, and the CLI is single-shot. *)

open Relational

type kind =
  | Root  (** the resolved scenario state; always cid 0 on ["main"] *)
  | Apply of Op.t
  | Branch_from of string
  | Merge of {
      from_branch : string;
      inserts : (string * Value.t array list) list;
          (** materialized at merge time, so replay is self-contained *)
    }

type commit = {
  cid : int;  (** store-wide, monotone; replay order *)
  branch : string;
  parent : int option;
  merge_parent : int option;  (** the merged-from head, on [Merge] *)
  kind : kind;
}

type t

(** The trunk branch every store starts with: ["main"]. *)
val main : string

(** [create ~resolve spec] — a store whose root state is [resolve spec].
    The resolver is the caller's workspace factory (the server passes one
    that attaches its shared cache and jobs setting); it is retained for
    {!load}-style replay and must be deterministic for a given spec. *)
val create : resolve:(Scenario.t -> Clio.Workspace.t) -> Scenario.t -> t

val spec : t -> Scenario.t

(** Branch names in creation order, ["main"] first. *)
val branch_names : t -> string list

(** [(name, database version)] per branch, creation order. *)
val branches : t -> (string * int) list

val has_branch : t -> string -> bool

(** The branch's current state.  Raises [Invalid_argument] on an unknown
    branch (as do all branch-taking operations below). *)
val checkout : t -> string -> Clio.Workspace.t

(** The branch's head commit id. *)
val head : t -> string -> int

(** [commit t ~branch op] — apply [op] to the branch's state and record
    it.  When [Op.apply] raises, nothing is recorded and the branch is
    unchanged.  Returns the new state. *)
val commit : t -> branch:string -> Op.t -> Clio.Workspace.t

(** [branch t ~from name] — fork a new branch off [from]'s head.  O(1)
    state sharing; the new branch's context is tagged with the fork
    database version ({!Clio.Workspace.with_branch_root}).  Raises
    [Invalid_argument] when [name] already exists or is empty. *)
val branch : t -> from:string -> string -> Clio.Workspace.t

(** [merge t ~into ~from] — fold the example-tuple inserts recorded on
    commits reachable from [from] but not in [into]'s ancestry into
    [into], recording one [Merge] commit that materializes them.
    Mapping-state ops do not cross branches.  Idempotent (structural
    dedup); returns the number of genuinely new rows; returns 0 and
    records nothing when [from] is already merged. *)
val merge : t -> into:string -> from:string -> int

(** Newest common commit of the two branches' ancestries (they always
    share at least the root). *)
val lca : t -> a:string -> b:string -> int option

(** Stats-shaped branch comparison: [diff.lca_cid], [diff.ahead]/[.behind]
    (commit counts unique to each side), the two database versions and
    workspace entry counts, and per-relation row drift
    ([diff.rows.<rel>], a − b, zero-drift relations omitted). *)
val diff : t -> a:string -> b:string -> (string * float) list

(** The branch's history as a plain op sequence, oldest first, following
    parent edges through the fork into the trunk; merge commits stand for
    their materialized inserts.  Replaying this linearly over a fresh root
    reproduces the branch state — the qcheck linearization oracle. *)
val linear_ops : t -> branch:string -> Op.t list

(** The branch's commits oldest-first (same walk as {!linear_ops}, not
    flattened). *)
val log : t -> branch:string -> commit list

(** Structural fingerprint of one branch's state: rendered database plus
    workspace shape (entries, labels, graphs, active id), hex MD5.
    Version-independent, so it survives a process restart. *)
val state_digest : t -> string -> string

(** Write [dir/snapshot.json] (format, spec, branch heads, per-branch
    state digests) and [dir/changelog.jsonl] (one commit per line, cid
    order), creating [dir] if needed. *)
val save : t -> dir:string -> unit

(** Rebuild a store from {!save}'s output by replaying the changelog over
    a freshly resolved root.  Verifies every branch's recorded state
    digest after replay and raises [Failure] on any divergence, gap or
    malformed input.  Counters: [version.snapshot.loads],
    [version.snapshot.commits_replayed]. *)
val load : resolve:(Scenario.t -> Clio.Workspace.t) -> dir:string -> unit -> t
