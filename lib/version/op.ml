open Relational
module J = Obs.Json

type t =
  | Insert of { relation : string; rows : Value.t array list }
  | Offer of { start : string; goal : string; max_len : int }
  | Rotate
  | Select of { entry : int }
  | Delete of { entry : int }
  | Confirm

let name = function
  | Insert _ -> "insert"
  | Offer _ -> "offer"
  | Rotate -> "rotate"
  | Select _ -> "select"
  | Delete _ -> "delete"
  | Confirm -> "confirm"

(* --- value <-> JSON ---

   Integral numbers decode to [Int]; [Value.equal] treats numerically
   equal [Int]/[Float] as equal, so the coercion is invisible to the
   relational layer.  Non-finite floats would emit as [null] (Json's
   rule) and are rejected on encode instead of silently becoming nulls.
   Shared with [Server.Protocol], so a changelog row and a wire row are
   the same bytes. *)

let json_of_value = function
  | Value.Null -> J.Null
  | Value.Bool b -> J.Bool b
  | Value.Int i -> J.Num (float_of_int i)
  | Value.Float f ->
      if Float.is_nan f || f = infinity || f = neg_infinity then
        invalid_arg "Op: non-finite floats are not representable on the wire"
      else J.Num f
  | Value.String s -> J.Str s

let value_of_json = function
  | J.Null -> Ok Value.Null
  | J.Bool b -> Ok (Value.Bool b)
  | J.Num f ->
      if Float.is_integer f && Float.abs f <= 1e15 then
        Ok (Value.Int (int_of_float f))
      else Ok (Value.Float f)
  | J.Str s -> Ok (Value.String s)
  | J.Arr _ | J.Obj _ -> Error "cell must be null, boolean, number or string"

let json_of_rows rows =
  J.Arr
    (List.map
       (fun row -> J.Arr (Array.to_list (Array.map json_of_value row)))
       rows)

let rows_of_json = function
  | J.Arr rows ->
      let ( let* ) = Result.bind in
      List.fold_left
        (fun acc row ->
          let* acc = acc in
          match row with
          | J.Arr cells ->
              let* cells =
                List.fold_left
                  (fun acc c ->
                    let* acc = acc in
                    let* v = value_of_json c in
                    Ok (v :: acc))
                  (Ok []) cells
              in
              Ok (Array.of_list (List.rev cells) :: acc)
          | _ -> Error "each row must be an array of cells")
        (Ok []) rows
      |> Result.map List.rev
  | _ -> Error "rows must be an array"

let to_json = function
  | Insert { relation; rows } ->
      J.Obj
        [
          ("op", J.Str "insert");
          ("relation", J.Str relation);
          ("rows", json_of_rows rows);
        ]
  | Offer { start; goal; max_len } ->
      J.Obj
        [
          ("op", J.Str "offer");
          ("start", J.Str start);
          ("goal", J.Str goal);
          ("max_len", J.Num (float_of_int max_len));
        ]
  | Rotate -> J.Obj [ ("op", J.Str "rotate") ]
  | Select { entry } ->
      J.Obj [ ("op", J.Str "select"); ("entry", J.Num (float_of_int entry)) ]
  | Delete { entry } ->
      J.Obj [ ("op", J.Str "delete"); ("entry", J.Num (float_of_int entry)) ]
  | Confirm -> J.Obj [ ("op", J.Str "confirm") ]

let of_json j =
  let ( let* ) = Result.bind in
  let str name =
    match J.member name j with
    | Some (J.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "op: field %S must be a string" name)
  in
  let int name =
    match J.member name j with
    | Some (J.Num f) when Float.is_integer f && Float.abs f <= 1e15 ->
        Ok (int_of_float f)
    | _ -> Error (Printf.sprintf "op: field %S must be an integer" name)
  in
  let* op = str "op" in
  match op with
  | "insert" ->
      let* relation = str "relation" in
      let* rows =
        match J.member "rows" j with
        | Some rows -> rows_of_json rows
        | None -> Error "op: missing field \"rows\""
      in
      Ok (Insert { relation; rows })
  | "offer" ->
      let* start = str "start" in
      let* goal = str "goal" in
      let* max_len = int "max_len" in
      Ok (Offer { start; goal; max_len })
  | "rotate" -> Ok Rotate
  | "select" ->
      let* entry = int "entry" in
      Ok (Select { entry })
  | "delete" ->
      let* entry = int "entry" in
      Ok (Delete { entry })
  | "confirm" -> Ok Confirm
  | op -> Error (Printf.sprintf "op: unknown op %S" op)

(* Applying an op is the single definition of what a refinement step does
   to a workspace — the server's session verbs, the offline CLI and the
   changelog replay all route through here, which is what makes the
   replayed state byte-identical to the live one.  Ops are deterministic:
   [data_walk] enumerates alternatives in a canonical order and
   [add_tuples] dedups structurally, so replaying the same op sequence on
   the same root state always converges. *)
let apply ws op =
  match op with
  | Insert { relation; rows } -> Clio.Workspace.add_tuples ws relation rows
  | Offer { start; goal; max_len } ->
      let ctx = Clio.Workspace.ctx ws in
      let mapping = (Clio.Workspace.active ws).Clio.Workspace.mapping in
      let alts = Clio.Op_walk.data_walk ctx mapping ~start ~goal ~max_len () in
      if alts = [] then
        invalid_arg
          (Printf.sprintf "no walks from %s to %s within %d steps" start goal
             max_len)
      else
        Clio.Workspace.offer ws
          ~labels:(List.map (fun a -> a.Clio.Op_walk.description) alts)
          (List.map (fun a -> a.Clio.Op_walk.mapping) alts)
  | Rotate -> Clio.Workspace.rotate ws
  | Select { entry } -> Clio.Workspace.select ws entry
  | Delete { entry } -> Clio.Workspace.delete ws entry
  | Confirm -> Clio.Workspace.confirm ws
