open Relational
module J = Obs.Json
module Int_set = Set.Make (Int)

let main = "main"

type kind =
  | Root
  | Apply of Op.t
  | Branch_from of string
  | Merge of {
      from_branch : string;
      inserts : (string * Value.t array list) list;
    }

type commit = {
  cid : int;
  branch : string;
  parent : int option;
  merge_parent : int option;
  kind : kind;
}

type t = {
  spec : Scenario.t;
  resolve : Scenario.t -> Clio.Workspace.t;
  by_cid : (int, commit) Hashtbl.t;
  heads : (string, int) Hashtbl.t;
  states : (string, Clio.Workspace.t) Hashtbl.t;
  mutable branch_order : string list;  (** creation order, oldest first *)
  mutable next_cid : int;
}

let spec t = t.spec
let branch_names t = t.branch_order
let has_branch t name = Hashtbl.mem t.states name

let checkout t branch =
  match Hashtbl.find_opt t.states branch with
  | Some ws -> ws
  | None -> invalid_arg (Printf.sprintf "unknown branch %S" branch)

let head t branch =
  match Hashtbl.find_opt t.heads branch with
  | Some cid -> cid
  | None -> invalid_arg (Printf.sprintf "unknown branch %S" branch)

let commit_of_cid t cid = Hashtbl.find t.by_cid cid

let version_of ws = Clio.Eval_ctx.version (Clio.Workspace.ctx ws)

let branches t =
  List.map (fun b -> (b, version_of (checkout t b))) t.branch_order

(* Append a commit for [branch] (which must already have a state). *)
let record t ~branch ~merge_parent kind =
  let cid = t.next_cid in
  t.next_cid <- cid + 1;
  let parent = Hashtbl.find_opt t.heads branch in
  let c = { cid; branch; parent; merge_parent; kind } in
  Hashtbl.replace t.by_cid cid c;
  Hashtbl.replace t.heads branch cid;
  c

let create ~resolve spec =
  let t =
    {
      spec;
      resolve;
      by_cid = Hashtbl.create 64;
      heads = Hashtbl.create 8;
      states = Hashtbl.create 8;
      branch_order = [ main ];
      next_cid = 0;
    }
  in
  Hashtbl.replace t.states main (resolve spec);
  ignore (record t ~branch:main ~merge_parent:None Root);
  t

let commit t ~branch op =
  let ws = checkout t branch in
  (* Apply first: an op that raises leaves no trace in the changelog. *)
  let ws' = Op.apply ws op in
  Hashtbl.replace t.states branch ws';
  ignore (record t ~branch ~merge_parent:None (Apply op));
  Obs.count Obs.Names.version_commits;
  ws'

let branch t ~from name =
  if has_branch t name then
    invalid_arg (Printf.sprintf "branch %S already exists" name);
  if name = "" then invalid_arg "branch name must be non-empty";
  let base = checkout t from in
  (* The fork point: every database version at or below this one is trunk
     state shared with the source branch, which is what makes ancestor
     cache entries (and future promotions from them) cross-branch. *)
  let ws = Clio.Workspace.with_branch_root base (version_of base) in
  Hashtbl.replace t.states name ws;
  Hashtbl.replace t.heads name (head t from);
  t.branch_order <- t.branch_order @ [ name ];
  let c = record t ~branch:name ~merge_parent:None (Branch_from from) in
  ignore c;
  Obs.count Obs.Names.version_branches;
  ws

(* Every cid reachable from [cid] through parent and merge-parent edges
   (inclusive) — the commit's ancestry in the DAG. *)
let ancestors t cid =
  let rec go seen = function
    | [] -> seen
    | cid :: rest ->
        if Int_set.mem cid seen then go seen rest
        else
          let c = commit_of_cid t cid in
          let rest =
            match (c.parent, c.merge_parent) with
            | Some p, Some m -> p :: m :: rest
            | Some p, None -> p :: rest
            | None, Some m -> m :: rest
            | None, None -> rest
          in
          go (Int_set.add cid seen) rest
  in
  go Int_set.empty [ cid ]

(* Lowest common ancestor: the newest cid in both ancestries.  Cids are
   issued monotonically, so "max common cid" is the nearest fork point. *)
let lca t ~a ~b =
  let inter = Int_set.inter (ancestors t (head t a)) (ancestors t (head t b)) in
  Int_set.max_elt_opt inter

let total_rows ws =
  List.fold_left
    (fun acc r -> acc + Relation.cardinality r)
    0
    (Database.relations (Clio.Workspace.db ws))

(* Merge [from] into [into]: fold in the example tuples recorded by
   commits reachable from [from]'s head but not already in [into]'s
   ancestry — the paper's "independently confirmed examples" reuse story
   at branch granularity.  Mapping-state ops (offer/rotate/...) stay on
   their branch: what merges is data.  The inserts are materialized into
   the merge commit so changelog replay never needs the source branch's
   state.  [add_tuples] dedups structurally, so merging is idempotent and
   insensitive to overlapping inserts.  Returns the number of genuinely
   new rows; a merge with nothing to do returns 0 and records nothing. *)
let merge t ~into ~from =
  let ws = checkout t into in
  let from_head = head t from in
  let seen = ancestors t (head t into) in
  let pending =
    Int_set.fold
      (fun cid acc ->
        if Int_set.mem cid seen then acc else commit_of_cid t cid :: acc)
      (ancestors t from_head) []
    |> List.sort (fun a b -> compare a.cid b.cid)
  in
  if pending = [] then 0
  else begin
    let inserts =
      List.concat_map
        (fun c ->
          match c.kind with
          | Apply (Op.Insert { relation; rows }) -> [ (relation, rows) ]
          | Merge { inserts; _ } -> inserts
          | Root | Apply _ | Branch_from _ -> [])
        pending
    in
    let before = total_rows ws in
    let ws' =
      List.fold_left
        (fun ws (relation, rows) -> Clio.Workspace.add_tuples ws relation rows)
        ws inserts
    in
    Hashtbl.replace t.states into ws';
    ignore
      (record t ~branch:into ~merge_parent:(Some from_head)
         (Merge { from_branch = from; inserts }));
    Obs.count Obs.Names.version_merges;
    total_rows ws' - before
  end

let relation_rows ws =
  List.map
    (fun r -> (Relation.name r, Relation.cardinality r))
    (Database.relations (Clio.Workspace.db ws))

(* A stats-shaped comparison of two branches, served through the existing
   [Stats_report] reply: where they forked, how far each side has moved,
   and the per-relation row drift. *)
let diff t ~a ~b =
  let wa = checkout t a and wb = checkout t b in
  let anc_a = ancestors t (head t a) and anc_b = ancestors t (head t b) in
  let ahead = Int_set.cardinal (Int_set.diff anc_a anc_b)
  and behind = Int_set.cardinal (Int_set.diff anc_b anc_a) in
  let rows_a = relation_rows wa and rows_b = relation_rows wb in
  let drift =
    List.filter_map
      (fun (rel, na) ->
        let nb = Option.value ~default:0 (List.assoc_opt rel rows_b) in
        if na = nb then None
        else Some ("diff.rows." ^ rel, float_of_int (na - nb)))
      rows_a
  in
  [
    ( "diff.lca_cid",
      match lca t ~a ~b with Some c -> float_of_int c | None -> -1. );
    ("diff.ahead", float_of_int ahead);
    ("diff.behind", float_of_int behind);
    ("diff.version.a", float_of_int (version_of wa));
    ("diff.version.b", float_of_int (version_of wb));
    ("diff.entries.a", float_of_int (List.length (Clio.Workspace.entries wa)));
    ("diff.entries.b", float_of_int (List.length (Clio.Workspace.entries wb)));
  ]
  @ drift

(* The linear history of one branch: parent edges from its head back to
   the root (running through the fork into trunk), oldest first.  Merge
   commits stand for their materialized inserts, so the result is a plain
   op sequence — the oracle the qcheck linearization property replays. *)
let linear_ops t ~branch =
  let rec back acc cid =
    let c = commit_of_cid t cid in
    let acc = c :: acc in
    match c.parent with None -> acc | Some p -> back acc p
  in
  back [] (head t branch)
  |> List.concat_map (fun c ->
         match c.kind with
         | Apply op -> [ op ]
         | Merge { inserts; _ } ->
             List.map
               (fun (relation, rows) -> Op.Insert { relation; rows })
               inserts
         | Root | Branch_from _ -> [])

let log t ~branch =
  let rec back acc cid =
    let c = commit_of_cid t cid in
    match c.parent with None -> c :: acc | Some p -> back (c :: acc) p
  in
  back [] (head t branch)

(* --- integrity digest ---

   A cheap structural fingerprint of one branch's full state: the rendered
   database plus the workspace shape (entries, labels, graphs, active id).
   [save] records it per branch; [load] recomputes after replay and
   refuses to resume from a snapshot whose changelog does not reproduce it
   byte-for-byte. *)
let state_digest t branchname =
  let ws = checkout t branchname in
  let b = Buffer.create 4096 in
  List.iter
    (fun r -> Buffer.add_string b (Render.relation r))
    (Database.relations (Clio.Workspace.db ws));
  let active = (Clio.Workspace.active ws).Clio.Workspace.id in
  Buffer.add_string b (Printf.sprintf "active=%d\n" active);
  List.iter
    (fun (e : Clio.Workspace.entry) ->
      Buffer.add_string b
        (Printf.sprintf "[%d] %s — %s\n" e.id e.label
           (Querygraph.Qgraph.to_string e.mapping.Clio.Mapping.graph)))
    (Clio.Workspace.entries ws);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* --- persistence: snapshot.json + changelog.jsonl --------------------- *)

let format_version = 1

let kind_json = function
  | Root -> J.Obj [ ("kind", J.Str "root") ]
  | Apply op -> J.Obj [ ("kind", J.Str "apply"); ("op", Op.to_json op) ]
  | Branch_from from -> J.Obj [ ("kind", J.Str "branch"); ("from", J.Str from) ]
  | Merge { from_branch; inserts } ->
      J.Obj
        [
          ("kind", J.Str "merge");
          ("from", J.Str from_branch);
          ( "inserts",
            J.Arr
              (List.map
                 (fun (relation, rows) ->
                   J.Obj
                     [
                       ("relation", J.Str relation);
                       ("rows", Op.json_of_rows rows);
                     ])
                 inserts) );
        ]

let kind_of_json j =
  let ( let* ) = Result.bind in
  let str name =
    match J.member name j with
    | Some (J.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "commit: field %S must be a string" name)
  in
  let* kind = str "kind" in
  match kind with
  | "root" -> Ok Root
  | "apply" -> (
      match J.member "op" j with
      | Some op ->
          let* op = Op.of_json op in
          Ok (Apply op)
      | None -> Error "commit: missing field \"op\"")
  | "branch" ->
      let* from = str "from" in
      Ok (Branch_from from)
  | "merge" ->
      let* from_branch = str "from" in
      let* inserts =
        match J.member "inserts" j with
        | Some (J.Arr items) ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match J.member "relation" item with
                | Some (J.Str relation) ->
                    let* rows =
                      match J.member "rows" item with
                      | Some rows -> Op.rows_of_json rows
                      | None -> Error "commit: merge insert without rows"
                    in
                    Ok ((relation, rows) :: acc)
                | _ -> Error "commit: merge insert without relation")
              (Ok []) items
            |> Result.map List.rev
        | _ -> Error "commit: merge without inserts"
      in
      Ok (Merge { from_branch; inserts })
  | k -> Error (Printf.sprintf "commit: unknown kind %S" k)

let commit_json c =
  J.Obj
    [
      ("cid", J.Num (float_of_int c.cid));
      ("branch", J.Str c.branch);
      ( "parent",
        match c.parent with None -> J.Null | Some p -> J.Num (float_of_int p)
      );
      ( "merge_parent",
        match c.merge_parent with
        | None -> J.Null
        | Some p -> J.Num (float_of_int p) );
      ("what", kind_json c.kind);
    ]

let commit_of_json j =
  let ( let* ) = Result.bind in
  let int name =
    match J.member name j with
    | Some (J.Num f) when Float.is_integer f && Float.abs f <= 1e15 ->
        Ok (int_of_float f)
    | _ -> Error (Printf.sprintf "commit: field %S must be an integer" name)
  in
  let opt_int name =
    match J.member name j with
    | Some J.Null | None -> Ok None
    | Some (J.Num f) when Float.is_integer f && Float.abs f <= 1e15 ->
        Ok (Some (int_of_float f))
    | Some _ ->
        Error (Printf.sprintf "commit: field %S must be an integer or null" name)
  in
  let* cid = int "cid" in
  let* branch =
    match J.member "branch" j with
    | Some (J.Str s) -> Ok s
    | _ -> Error "commit: field \"branch\" must be a string"
  in
  let* parent = opt_int "parent" in
  let* merge_parent = opt_int "merge_parent" in
  let* kind =
    match J.member "what" j with
    | Some k -> kind_of_json k
    | None -> Error "commit: missing field \"what\""
  in
  Ok { cid; branch; parent; merge_parent; kind }

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let snapshot_file dir = Filename.concat dir "snapshot.json"
let changelog_file dir = Filename.concat dir "changelog.jsonl"

let save t ~dir =
  mkdir_p dir;
  let commits =
    Hashtbl.fold (fun _ c acc -> c :: acc) t.by_cid []
    |> List.sort (fun a b -> compare a.cid b.cid)
  in
  let changelog = Buffer.create 4096 in
  List.iter
    (fun c ->
      Buffer.add_string changelog (J.to_string (commit_json c));
      Buffer.add_char changelog '\n')
    commits;
  write_file (changelog_file dir) (Buffer.contents changelog);
  let snapshot =
    J.Obj
      [
        ("format", J.Num (float_of_int format_version));
        ("spec", Scenario.to_json t.spec);
        ("next_cid", J.Num (float_of_int t.next_cid));
        ( "branches",
          J.Arr
            (List.map
               (fun b ->
                 J.Obj
                   [
                     ("name", J.Str b);
                     ("head", J.Num (float_of_int (head t b)));
                     ("digest", J.Str (state_digest t b));
                   ])
               t.branch_order) );
      ]
  in
  write_file (snapshot_file dir) (J.to_string snapshot);
  Obs.count Obs.Names.version_snapshot_saves

let fail fmt = Printf.ksprintf failwith fmt

(* Rebuild a store by replaying the changelog in cid order over a freshly
   resolved root.  Database versions are process-global and differ from
   the saved run's, but every content digest is version-independent, so a
   faithful replay reproduces each branch's recorded state digest — which
   is verified before the store is handed back. *)
let load ~resolve ~dir () =
  let snap =
    match J.parse (read_file (snapshot_file dir)) with
    | Ok j -> j
    | Error msg -> fail "Store.load: unreadable snapshot: %s" msg
  in
  (match J.member "format" snap with
  | Some (J.Num f) when int_of_float f = format_version -> ()
  | _ -> fail "Store.load: unsupported snapshot format");
  let spec =
    match J.member "spec" snap with
    | Some j -> (
        match Scenario.of_json j with
        | Ok s -> s
        | Error msg -> fail "Store.load: %s" msg)
    | None -> fail "Store.load: snapshot without spec"
  in
  let t =
    {
      spec;
      resolve;
      by_cid = Hashtbl.create 64;
      heads = Hashtbl.create 8;
      states = Hashtbl.create 8;
      branch_order = [];
      next_cid = 0;
    }
  in
  let lines =
    String.split_on_char '\n' (read_file (changelog_file dir))
    |> List.filter (fun l -> String.trim l <> "")
  in
  List.iter
    (fun line ->
      let c =
        match J.parse line with
        | Error msg -> fail "Store.load: unreadable changelog line: %s" msg
        | Ok j -> (
            match commit_of_json j with
            | Ok c -> c
            | Error msg -> fail "Store.load: %s" msg)
      in
      if c.cid <> t.next_cid then
        fail "Store.load: changelog gap at cid %d" c.cid;
      (match c.kind with
      | Root -> Hashtbl.replace t.states c.branch (resolve spec)
      | Apply op ->
          let ws = checkout t c.branch in
          Hashtbl.replace t.states c.branch (Op.apply ws op)
      | Branch_from from ->
          let base = checkout t from in
          Hashtbl.replace t.states c.branch
            (Clio.Workspace.with_branch_root base (version_of base))
      | Merge { inserts; _ } ->
          let ws = checkout t c.branch in
          Hashtbl.replace t.states c.branch
            (List.fold_left
               (fun ws (relation, rows) ->
                 Clio.Workspace.add_tuples ws relation rows)
               ws inserts));
      if not (List.mem c.branch t.branch_order) then
        t.branch_order <- t.branch_order @ [ c.branch ];
      Hashtbl.replace t.by_cid c.cid c;
      Hashtbl.replace t.heads c.branch c.cid;
      t.next_cid <- c.cid + 1;
      Obs.count Obs.Names.version_snapshot_commits_replayed)
    lines;
  (match J.member "branches" snap with
  | Some (J.Arr bs) ->
      List.iter
        (fun b ->
          match (J.member "name" b, J.member "digest" b) with
          | Some (J.Str name), Some (J.Str digest) ->
              if not (has_branch t name) then
                fail "Store.load: snapshot branch %S missing from changelog"
                  name;
              let got = state_digest t name in
              if got <> digest then
                fail
                  "Store.load: replay of branch %S diverged (digest %s, \
                   snapshot %s)"
                  name got digest
          | _ -> fail "Store.load: malformed branch entry in snapshot")
        bs
  | _ -> fail "Store.load: snapshot without branches");
  Obs.count Obs.Names.version_snapshot_loads;
  t
