open Relational
module J = Obs.Json
module Qgraph = Querygraph.Qgraph

type t =
  | Paper
  | Chain of { n : int; rows : int; seed : int }
  | Star of { leaves : int; rows : int; seed : int }

let to_string = function
  | Paper -> "paper"
  | Chain { n; rows; seed } ->
      Printf.sprintf "chain(n=%d,rows=%d,seed=%d)" n rows seed
  | Star { leaves; rows; seed } ->
      Printf.sprintf "star(leaves=%d,rows=%d,seed=%d)" leaves rows seed

let validate = function
  | Paper -> Ok ()
  | Chain { n; rows; seed = _ } ->
      if n < 2 || n > 8 then Error "chain: n must be in 2..8"
      else if rows < 1 || rows > 200_000 then
        Error "chain: rows must be in 1..200000"
      else Ok ()
  | Star { leaves; rows; seed = _ } ->
      if leaves < 1 || leaves > 8 then Error "star: leaves must be in 1..8"
      else if rows < 1 || rows > 200_000 then
        Error "star: rows must be in 1..200000"
      else Ok ()

let to_json = function
  | Paper -> J.Obj [ ("kind", J.Str "paper") ]
  | Chain { n; rows; seed } ->
      J.Obj
        [
          ("kind", J.Str "chain");
          ("n", J.Num (float_of_int n));
          ("rows", J.Num (float_of_int rows));
          ("seed", J.Num (float_of_int seed));
        ]
  | Star { leaves; rows; seed } ->
      J.Obj
        [
          ("kind", J.Str "star");
          ("leaves", J.Num (float_of_int leaves));
          ("rows", J.Num (float_of_int rows));
          ("seed", J.Num (float_of_int seed));
        ]

let of_json j =
  let str name =
    match J.member name j with
    | Some (J.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "scenario: field %S must be a string" name)
  in
  let int ?default name =
    match (J.member name j, default) with
    | Some (J.Num f), _ when Float.is_integer f && Float.abs f <= 1e15 ->
        Ok (int_of_float f)
    | Some _, _ ->
        Error (Printf.sprintf "scenario: field %S must be an integer" name)
    | None, Some d -> Ok d
    | None, None -> Error (Printf.sprintf "scenario: missing field %S" name)
  in
  let ( let* ) = Result.bind in
  let* kind = str "kind" in
  match kind with
  | "paper" -> Ok Paper
  | "chain" ->
      let* n = int "n" in
      let* rows = int "rows" in
      let* seed = int ~default:0 "seed" in
      Ok (Chain { n; rows; seed })
  | "star" ->
      let* leaves = int "leaves" in
      let* rows = int "rows" in
      let* seed = int ~default:0 "seed" in
      Ok (Star { leaves; rows; seed })
  | k -> Error (Printf.sprintf "scenario: unknown kind %S" k)

(* The initial mapping is deliberately small — one node, one identity
   correspondence — so a session starts where the paper's Section 5
   refinement loop starts: offer walks, inspect, confirm. *)
let rooted_mapping ~root =
  Clio.Mapping.make
    ~graph:(Qgraph.singleton ~alias:root ~base:root)
    ~target:"Out" ~target_cols:[ "c" ]
    ~correspondences:[ Clio.Correspondence.identity "c" (Attr.make root "id") ]
    ()

let resolve_fresh spec =
  (match validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Scenario.resolve: " ^ msg));
  match spec with
  | Paper ->
      ( Paperdata.Figure1.database,
        Paperdata.Figure1.kb,
        Paperdata.Running.mapping_g1 )
  | Chain { n; rows; seed } ->
      let inst =
        Synth.Gen_graph.chain
          (Random.State.make [| seed |])
          ~n ~rows ~null_prob:0.25 ~orphan_prob:0.2 ()
      in
      (inst.Synth.Gen_graph.db, inst.Synth.Gen_graph.kb, rooted_mapping ~root:"R1")
  | Star { leaves; rows; seed } ->
      let inst =
        Synth.Gen_graph.star
          (Random.State.make [| seed |])
          ~leaves ~rows ~null_prob:0.25 ~orphan_prob:0.2 ()
      in
      ( inst.Synth.Gen_graph.db,
        inst.Synth.Gen_graph.kb,
        rooted_mapping ~root:"Fact" )

(* Memo keyed by the spec value itself (immutable variants compare
   structurally).  The paper scenario is already a program-wide constant;
   the memo extends the same sharing to synthetic specs, so a fleet of
   sessions forking one scenario all key their cache entries to a single
   database version. *)
let memo : (t, Database.t * Schemakb.Kb.t * Clio.Mapping.t) Hashtbl.t =
  Hashtbl.create 8

(* Sessions open concurrently on worker domains; the lock covers the whole
   miss path so two domains resolving the same spec agree on one value. *)
let memo_mutex = Mutex.create ()

let resolve spec =
  Mutex.protect memo_mutex (fun () ->
      match Hashtbl.find_opt memo spec with
      | Some r -> r
      | None ->
          let r = resolve_fresh spec in
          Hashtbl.add memo spec r;
          r)
