open Relational

let remove_subsumed_naive tuples =
  (* [counting] is hoisted so the disabled path costs one predictable branch
     per candidate pair, keeping bench B1 honest. *)
  let counting = Obs.enabled () in
  let arr = Array.of_list tuples in
  Array.to_list arr
  |> List.filteri (fun i t ->
         not
           (Array.exists
              (fun other ->
                (not (other == arr.(i)))
                &&
                (if counting then Obs.Counter.bump Obs.Names.subsumption_checks;
                 Tuple.strictly_subsumes other t))
              arr))

(* Per-column index: column position -> value -> tuple indices having that
   value there.  A subsumer of [t] must carry t's exact value at every
   non-null position of [t], so probing one such column yields a complete
   candidate set; [selective] picks the smallest bucket instead of the first
   non-null column. *)
let remove_subsumed_indexed ?pool ~selective tuples =
  match tuples with
  | [] -> []
  | first :: _ ->
      let counting = Obs.enabled () in
      let arity = Tuple.arity first in
      let arr = Array.of_list tuples in
      let index = Array.init arity (fun _ -> Value.Table.create 64) in
      (* Bucket sizes kept separately: probing selectivity must not pay to
         materialize the bucket it is sizing up. *)
      let counts = Array.init arity (fun _ -> Value.Table.create 64) in
      Array.iteri
        (fun id t ->
          for p = 0 to arity - 1 do
            if not (Value.is_null t.(p)) then begin
              Value.Table.add index.(p) t.(p) id;
              Value.Table.replace counts.(p) t.(p)
                (1 + Option.value (Value.Table.find_opt counts.(p) t.(p)) ~default:0)
            end
          done)
        arr;
      let probe_position t =
        if selective then begin
          let best = ref (-1) and best_count = ref max_int in
          for p = 0 to arity - 1 do
            if not (Value.is_null t.(p)) then begin
              let c = Option.value (Value.Table.find_opt counts.(p) t.(p)) ~default:0 in
              if c < !best_count then begin
                best := p;
                best_count := c
              end
            end
          done;
          !best
        end
        else
          let rec first_non_null p =
            if p >= arity then -1
            else if Value.is_null t.(p) then first_non_null (p + 1)
            else p
          in
          first_non_null 0
      in
      let subsumed id t =
        match probe_position t with
        | -1 ->
            (* All-null tuple: strictly subsumed by any other tuple. *)
            Array.length arr > 1
        | p ->
            if counting then Obs.Counter.bump Obs.Names.index_probes;
            Value.Table.find_all index.(p) t.(p)
            |> List.exists (fun oid ->
                   oid <> id
                   &&
                   (if counting then
                      Obs.Counter.bump Obs.Names.subsumption_checks;
                    Tuple.strictly_subsumes arr.(oid) t))
      in
      (* The per-tuple checks only read [arr]/[index], so they chunk across
         the pool; list assembly stays sequential and ordered. *)
      let keep =
        Par.init ?pool (Array.length arr) (fun id -> not (subsumed id arr.(id)))
      in
      Array.to_list arr |> List.filteri (fun id _ -> keep.(id))

(* Merge a small already-deduplicated batch into a mutually-minimal base
   without re-minimizing everything.  Because the base is minimal, a base
   tuple can only be newly subsumed by a *delta* tuple, so base tuples
   probe an index over the delta side alone (|Δ| buckets); delta tuples
   must survive both sides, so they probe the base index and the delta
   index at their most selective non-null column.  Index construction is
   one hashing pass per side; no base-vs-base subsumption check is ever
   re-run. *)
let merge_keep_flags ?pool ~base delta =
  let nb = Array.length base and nd = Array.length delta in
  if nd = 0 then (Array.make nb true, [||])
  else begin
    let counting = Obs.enabled () in
    let arity =
      Tuple.arity (if nb > 0 then base.(0) else delta.(0))
    in
    let build arr =
      let index = Array.init arity (fun _ -> Value.Table.create 64) in
      let counts = Array.init arity (fun _ -> Value.Table.create 64) in
      Array.iteri
        (fun id t ->
          for p = 0 to arity - 1 do
            if not (Value.is_null t.(p)) then begin
              Value.Table.add index.(p) t.(p) id;
              Value.Table.replace counts.(p) t.(p)
                (1 + Option.value (Value.Table.find_opt counts.(p) t.(p)) ~default:0)
            end
          done)
        arr;
      (index, counts)
    in
    let base_index, base_counts = build base in
    let delta_index, delta_counts = build delta in
    let count_at counts p v =
      Option.value (Value.Table.find_opt counts.(p) v) ~default:0
    in
    (* Most selective non-null column of [t] under the given sizing; -1 for
       an all-null tuple (subsumed by any other tuple, as in the indexed
       sweep). *)
    let probe_position sizes t =
      let best = ref (-1) and best_count = ref max_int in
      for p = 0 to arity - 1 do
        if not (Value.is_null t.(p)) then begin
          let c = sizes p t.(p) in
          if c < !best_count then begin
            best := p;
            best_count := c
          end
        end
      done;
      !best
    in
    let subsumer_in index arr ~skip p t =
      if counting then Obs.Counter.bump Obs.Names.index_probes;
      Value.Table.find_all index.(p) t.(p)
      |> List.exists (fun oid ->
             oid <> skip
             &&
             (if counting then Obs.Counter.bump Obs.Names.subsumption_checks;
              Tuple.strictly_subsumes arr.(oid) t))
    in
    let base_kept i =
      let t = base.(i) in
      match probe_position (fun p v -> count_at delta_counts p v) t with
      | -1 -> nd = 0
      | p -> not (subsumer_in delta_index delta ~skip:(-1) p t)
    in
    let delta_kept j =
      let t = delta.(j) in
      match
        probe_position
          (fun p v -> count_at base_counts p v + count_at delta_counts p v)
          t
      with
      | -1 -> nb + nd <= 1
      | p ->
          (not (subsumer_in base_index base ~skip:(-1) p t))
          && not (subsumer_in delta_index delta ~skip:j p t)
    in
    (* One chunked pass over base ++ delta; the checks only read the
       indexes, so they parallelize exactly like the full sweep. *)
    let keep =
      Par.init ?pool (nb + nd) (fun i ->
          if i < nb then base_kept i else delta_kept (i - nb))
    in
    (Array.sub keep 0 nb, Array.sub keep nb nd)
  end

let merge_minimal ?pool rel delta_tuples =
  let schema = Relation.schema rel in
  let arity = Relational.Schema.arity schema in
  List.iter
    (fun t ->
      if Tuple.arity t <> arity then
        invalid_arg "Min_union.merge_minimal: delta tuple arity mismatch")
    delta_tuples;
  let base = Relation.tuples_array rel in
  (* Set semantics first: drop delta tuples already present in the base or
     duplicated within the batch.  Equal tuples carry equal information, so
     this never loses a subsumption witness. *)
  let seen = Relation.Tuple_tbl.create (Array.length base) in
  Array.iter (fun t -> Relation.Tuple_tbl.replace seen t ()) base;
  let fresh =
    List.filter
      (fun t ->
        if Relation.Tuple_tbl.mem seen t then false
        else begin
          Relation.Tuple_tbl.replace seen t ();
          true
        end)
      delta_tuples
  in
  if fresh = [] then rel
  else begin
    let delta = Array.of_list fresh in
    let base_keep, delta_keep = merge_keep_flags ?pool ~base delta in
    let out = ref [] in
    for j = Array.length delta - 1 downto 0 do
      if delta_keep.(j) then out := delta.(j) :: !out
    done;
    for i = Array.length base - 1 downto 0 do
      if base_keep.(i) then out := base.(i) :: !out
    done;
    if Obs.enabled () then begin
      Obs.add Obs.Names.assoc_considered (Array.length base + Array.length delta);
      Obs.add Obs.Names.assoc_kept (List.length !out)
    end;
    Relation.create ~allow_all_null:true (Relation.name rel) schema !out
  end

let remove_subsumed ?pool tuples = remove_subsumed_indexed ?pool ~selective:true tuples
let remove_subsumed_first_probe tuples = remove_subsumed_indexed ~selective:false tuples

(* Columnar subsumption sweep over a relation's rows: per-row non-null
   bitmasks plus per-column class-id buckets, probed at each row's most
   selective non-null column.  A subsumer of row [j] must be non-null
   wherever [j] is ([mask_j] a subset of [mask_i]) and class-equal there;
   strictness is automatic on a deduplicated relation (a class-equal
   subsumer with the same mask would be the same row).  Returns keep
   flags in row order, or [None] when the arity exceeds what an int
   bitmask can carry (the caller falls back to the boxed sweep). *)
let columnar_keep_flags ?pool rel =
  let arity = Relational.Schema.arity (Relation.schema rel) in
  if arity = 0 || arity > Col_ops.mask_arity_limit then None
  else begin
    let counting = Obs.enabled () in
    let cls = Col_ops.class_columns (Relation.columns rel) in
    let n = Relation.cardinality rel in
    let masks = Col_ops.nonnull_masks cls in
    let index = Array.map Col_ops.Buckets.make cls in
    let probe_position j =
      let best = ref (-1) and best_count = ref max_int in
      for p = 0 to arity - 1 do
        let v = cls.(p).(j) in
        if v <> 0 then begin
          let c = Col_ops.Buckets.count index.(p) v in
          if c < !best_count then begin
            best := p;
            best_count := c
          end
        end
      done;
      !best
    in
    let subsumes i j =
      masks.(j) land lnot masks.(i) = 0
      &&
      let rec agree p =
        p = arity
        || ((masks.(j) land (1 lsl p) = 0 || cls.(p).(i) = cls.(p).(j))
           && agree (p + 1))
      in
      agree 0
    in
    (* A row can only be strictly subsumed by a row whose non-null mask is
       a *strict* superset of its own (equal mask + class-equal cells is
       the same row on a deduplicated input).  Masks take few distinct
       patterns — category null-shapes, essentially — so precomputing
       which patterns have a strict superset lets every maximal-pattern
       row (the bulk of the survivors) skip probing entirely. *)
    let patterns = Hashtbl.create 16 in
    Array.iter (fun m -> Hashtbl.replace patterns m ()) masks;
    let distinct = Hashtbl.fold (fun m () acc -> m :: acc) patterns [] in
    let has_strict_superset = Hashtbl.create 16 in
    List.iter
      (fun m ->
        Hashtbl.replace has_strict_superset m
          (List.exists (fun m' -> m' <> m && m land lnot m' = 0) distinct))
      distinct;
    let subsumed j =
      if not (Hashtbl.find has_strict_superset masks.(j)) then false
      else
      match probe_position j with
      | -1 -> n > 1
      | p ->
          if counting then Obs.Counter.bump Obs.Names.index_probes;
          let rows = Col_ops.Buckets.rows index.(p) in
          let start, len = Col_ops.Buckets.span index.(p) cls.(p).(j) in
          let rec scan k =
            k < start + len
            &&
            let i = rows.(k) in
            (i <> j
            &&
            (if counting then Obs.Counter.bump Obs.Names.subsumption_checks;
             subsumes i j))
            || scan (k + 1)
          in
          scan start
    in
    Some (Par.init ?pool n (fun j -> not (subsumed j)))
  end

let sweep ?pool rel =
  let columnar =
    if Columnar.enabled () then columnar_keep_flags ?pool rel else None
  in
  match columnar with
  | Some keep ->
      let rows = Col_ops.Ibuf.create 256 in
      Array.iteri (fun j k -> if k then Col_ops.Ibuf.push rows j) keep;
      let rows = Col_ops.Ibuf.contents rows in
      if Obs.enabled () then begin
        Obs.add Obs.Names.assoc_considered (Relation.cardinality rel);
        Obs.add Obs.Names.assoc_kept (Array.length rows)
      end;
      Relation.of_columns ~dedup:false ~allow_all_null:true (Relation.name rel)
        (Relation.schema rel)
        (Col_ops.gather (Relation.columns rel) rows)
  | None ->
      let kept = remove_subsumed ?pool (Relation.tuples rel) in
      if Obs.enabled () then begin
        Obs.add Obs.Names.assoc_considered (Relation.cardinality rel);
        Obs.add Obs.Names.assoc_kept (List.length kept)
      end;
      Relation.create ~allow_all_null:true (Relation.name rel)
        (Relation.schema rel) kept

let minimize ?pool rel =
  Obs.with_span Obs.Names.sp_min_union (fun () -> sweep ?pool rel)

let min_union r1 r2 = minimize (Algebra.outer_union r1 r2)

let min_union_all = function
  | [] -> None
  | [ r ] -> Some (minimize r)
  | r :: rest -> Some (minimize (List.fold_left Algebra.outer_union r rest))

let is_minimal tuples =
  let arr = Array.of_list tuples in
  not
    (Array.exists
       (fun t ->
         Array.exists
           (fun other -> (not (other == t)) && Tuple.strictly_subsumes other t)
           arr)
       arr)
