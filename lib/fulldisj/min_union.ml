open Relational

let remove_subsumed_naive tuples =
  (* [counting] is hoisted so the disabled path costs one predictable branch
     per candidate pair, keeping bench B1 honest. *)
  let counting = Obs.enabled () in
  let arr = Array.of_list tuples in
  Array.to_list arr
  |> List.filteri (fun i t ->
         not
           (Array.exists
              (fun other ->
                (not (other == arr.(i)))
                &&
                (if counting then Obs.Counter.bump Obs.Names.subsumption_checks;
                 Tuple.strictly_subsumes other t))
              arr))

(* Per-column index: column position -> value -> tuple indices having that
   value there.  A subsumer of [t] must carry t's exact value at every
   non-null position of [t], so probing one such column yields a complete
   candidate set; [selective] picks the smallest bucket instead of the first
   non-null column. *)
let remove_subsumed_indexed ?pool ~selective tuples =
  match tuples with
  | [] -> []
  | first :: _ ->
      let counting = Obs.enabled () in
      let arity = Tuple.arity first in
      let arr = Array.of_list tuples in
      let index = Array.init arity (fun _ -> Value.Table.create 64) in
      (* Bucket sizes kept separately: probing selectivity must not pay to
         materialize the bucket it is sizing up. *)
      let counts = Array.init arity (fun _ -> Value.Table.create 64) in
      Array.iteri
        (fun id t ->
          for p = 0 to arity - 1 do
            if not (Value.is_null t.(p)) then begin
              Value.Table.add index.(p) t.(p) id;
              Value.Table.replace counts.(p) t.(p)
                (1 + Option.value (Value.Table.find_opt counts.(p) t.(p)) ~default:0)
            end
          done)
        arr;
      let probe_position t =
        if selective then begin
          let best = ref (-1) and best_count = ref max_int in
          for p = 0 to arity - 1 do
            if not (Value.is_null t.(p)) then begin
              let c = Option.value (Value.Table.find_opt counts.(p) t.(p)) ~default:0 in
              if c < !best_count then begin
                best := p;
                best_count := c
              end
            end
          done;
          !best
        end
        else
          let rec first_non_null p =
            if p >= arity then -1
            else if Value.is_null t.(p) then first_non_null (p + 1)
            else p
          in
          first_non_null 0
      in
      let subsumed id t =
        match probe_position t with
        | -1 ->
            (* All-null tuple: strictly subsumed by any other tuple. *)
            Array.length arr > 1
        | p ->
            if counting then Obs.Counter.bump Obs.Names.index_probes;
            Value.Table.find_all index.(p) t.(p)
            |> List.exists (fun oid ->
                   oid <> id
                   &&
                   (if counting then
                      Obs.Counter.bump Obs.Names.subsumption_checks;
                    Tuple.strictly_subsumes arr.(oid) t))
      in
      (* The per-tuple checks only read [arr]/[index], so they chunk across
         the pool; list assembly stays sequential and ordered. *)
      let keep =
        Par.init ?pool (Array.length arr) (fun id -> not (subsumed id arr.(id)))
      in
      Array.to_list arr |> List.filteri (fun id _ -> keep.(id))

let remove_subsumed ?pool tuples = remove_subsumed_indexed ?pool ~selective:true tuples
let remove_subsumed_first_probe tuples = remove_subsumed_indexed ~selective:false tuples

let minimize rel =
  Obs.with_span Obs.Names.sp_min_union (fun () ->
      let kept = remove_subsumed (Relation.tuples rel) in
      if Obs.enabled () then begin
        Obs.add Obs.Names.assoc_considered (Relation.cardinality rel);
        Obs.add Obs.Names.assoc_kept (List.length kept)
      end;
      Relation.make ~allow_all_null:true (Relation.name rel)
        (Relation.schema rel) kept)

let min_union r1 r2 = minimize (Algebra.outer_union r1 r2)

let min_union_all = function
  | [] -> None
  | [ r ] -> Some (minimize r)
  | r :: rest -> Some (minimize (List.fold_left Algebra.outer_union r rest))

let is_minimal tuples =
  let arr = Array.of_list tuples in
  not
    (Array.exists
       (fun t ->
         Array.exists
           (fun other -> (not (other == t)) && Tuple.strictly_subsumes other t)
           arr)
       arr)
