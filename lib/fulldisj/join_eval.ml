open Relational
module Qgraph = Querygraph.Qgraph

let reorder r target =
  let src = Relation.schema r in
  if Schema.arity src <> Schema.arity target then
    invalid_arg "Join_eval.reorder: arity mismatch";
  let positions =
    Array.to_list (Schema.attrs target) |> List.map (Schema.index src)
  in
  (* A column permutation: rows are untouched, so the input set stays a
     set and dedup is skipped on the columnar path. *)
  if Columnar.enabled () && Schema.arity target > 0 then
    let cols = Relation.columns r in
    Relation.of_columns ~dedup:false ~allow_all_null:true (Relation.name r)
      target
      (Array.of_list (List.map (fun i -> cols.(i)) positions))
  else
    Relation.create ~allow_all_null:true (Relation.name r) target
      (List.map (fun t -> Tuple.project t positions) (Relation.tuples r))

(* BFS order from the lexicographically first alias; each step joins the next
   node in, with the conjunction of all edges linking it to nodes already
   present. *)
let join_order g =
  match Qgraph.aliases g with
  | [] -> []
  | start :: _ ->
      let rec bfs visited queue acc =
        match queue with
        | [] -> List.rev acc
        | a :: rest ->
            if List.mem a visited then bfs visited rest acc
            else
              let next =
                Qgraph.neighbours g a |> List.filter (fun n -> not (List.mem n visited))
              in
              bfs (a :: visited) (rest @ next) (a :: acc)
      in
      bfs [] [ start ] []

(* Canonical tuple order for F(J) results.  A from-scratch join emits
   tuples in join order; an incrementally repaired F(J) emits the old
   tuples followed by the delta contributions.  Sorting both presentations
   makes equal tuple *sets* structurally identical relations, which the
   incremental/from-scratch parity guarantee is stated in terms of. *)
let canonical r =
  if Columnar.enabled () && Schema.arity (Relation.schema r) > 0 then
    Relation.of_columns ~dedup:false ~allow_all_null:true (Relation.name r)
      (Relation.schema r)
      (Col_ops.sort_rows_canonical (Relation.columns r))
  else begin
    let arr = Array.copy (Relation.tuples_array r) in
    Array.sort Tuple.compare arr;
    Relation.create ~dedup:false ~allow_all_null:true (Relation.name r)
      (Relation.schema r) (Array.to_list arr)
  end

let join_base_with ~rel_of ~scheme g =
  if Qgraph.node_count g = 0 then invalid_arg "Join_eval.full_associations: empty graph";
  if not (Qgraph.is_connected g) then
    invalid_arg "Join_eval.full_associations: graph not connected";
  match join_order g with
  | [] -> assert false
  | first :: rest ->
      let acc = ref (rel_of first) in
      let present = ref [ first ] in
      List.iter
        (fun alias ->
          let next_rel = rel_of alias in
          let preds =
            List.filter_map
              (fun p -> Qgraph.find_edge g alias p |> Option.map (fun e -> e.Qgraph.pred))
              !present
          in
          acc := Algebra.join (Predicate.conj preds) !acc next_rel;
          present := alias :: !present)
        rest;
      canonical (reorder !acc scheme)

let join_base ~lookup g =
  join_base_with
    ~rel_of:(Qgraph.node_relation ~lookup g)
    ~scheme:(Qgraph.scheme ~lookup g) g

(* Delta join: after an insert-only update, every genuinely new F(J) tuple
   must use at least one inserted base tuple at some alias.  So for each
   alias over a touched base, run the join once more with that alias bound
   to just the inserted tuples and every *other* alias bound to the
   post-update relations; the union over touched aliases is exactly the set
   of new F(J) tuples.  A tuple combining inserted rows at several aliases
   shows up in several contributions — the set-semantic union absorbs the
   overlap.  The source's [lookup] must already resolve to the post-update
   relations; the fj_hook is deliberately ignored (this is the computation
   the cache itself calls). *)
let full_associations_delta src g ~changed =
  let lookup = Source.lookup src in
  let scheme = Qgraph.scheme ~lookup g in
  let touched =
    Qgraph.nodes g
    |> List.filter_map (fun n ->
           List.assoc_opt n.Qgraph.base changed
           |> Option.map (fun tuples -> (n.Qgraph.alias, n.Qgraph.base, tuples)))
  in
  let contribution (alias0, base0, tuples) =
    let rel_of alias =
      if String.equal alias alias0 then
        match lookup base0 with
        | None ->
            invalid_arg
              ("Join_eval.full_associations_delta: unknown base relation " ^ base0)
        | Some r ->
            let d = Relation.create base0 (Relation.schema r) tuples in
            let d = Relation.with_name alias d in
            if String.equal base0 alias then d
            else Relation.rename_rel d ~from:base0 ~into:alias
      else Qgraph.node_relation ~lookup g alias
    in
    join_base_with ~rel_of ~scheme g
  in
  match List.map contribution touched with
  | [] ->
      Relation.create ~allow_all_null:true
        (match Qgraph.aliases g with a :: _ -> a | [] -> "delta")
        scheme []
  | first :: rest -> List.fold_left Algebra.union first rest

(* The hook (a memo cache) is consulted before the span: cache hits are
   near-free and would drown the trace, and on a miss the cache re-enters
   through a hook-less source, which emits the span around the real join. *)
let full_associations src g =
  match Source.fj_hook src with
  | Some hook -> hook g
  | None ->
      let lookup = Source.lookup src in
      if not (Obs.enabled ()) then join_base ~lookup g
      else
        Obs.with_span
          ~attrs:[ ("nodes", string_of_int (Qgraph.node_count g)) ]
          Obs.Names.sp_full_associations
          (fun () -> join_base ~lookup g)
