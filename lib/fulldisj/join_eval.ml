open Relational
module Qgraph = Querygraph.Qgraph

let reorder r target =
  let src = Relation.schema r in
  if Schema.arity src <> Schema.arity target then
    invalid_arg "Join_eval.reorder: arity mismatch";
  let positions =
    Array.to_list (Schema.attrs target) |> List.map (Schema.index src)
  in
  Relation.make ~allow_all_null:true (Relation.name r) target
    (List.map (fun t -> Tuple.project t positions) (Relation.tuples r))

(* BFS order from the lexicographically first alias; each step joins the next
   node in, with the conjunction of all edges linking it to nodes already
   present. *)
let join_order g =
  match Qgraph.aliases g with
  | [] -> []
  | start :: _ ->
      let rec bfs visited queue acc =
        match queue with
        | [] -> List.rev acc
        | a :: rest ->
            if List.mem a visited then bfs visited rest acc
            else
              let next =
                Qgraph.neighbours g a |> List.filter (fun n -> not (List.mem n visited))
              in
              bfs (a :: visited) (rest @ next) (a :: acc)
      in
      bfs [] [ start ] []

let join_base ~lookup g =
  if Qgraph.node_count g = 0 then invalid_arg "Join_eval.full_associations: empty graph";
  if not (Qgraph.is_connected g) then
    invalid_arg "Join_eval.full_associations: graph not connected";
  match join_order g with
  | [] -> assert false
  | first :: rest ->
      let acc = ref (Qgraph.node_relation ~lookup g first) in
      let present = ref [ first ] in
      List.iter
        (fun alias ->
          let next_rel = Qgraph.node_relation ~lookup g alias in
          let preds =
            List.filter_map
              (fun p -> Qgraph.find_edge g alias p |> Option.map (fun e -> e.Qgraph.pred))
              !present
          in
          acc := Algebra.join (Predicate.conj preds) !acc next_rel;
          present := alias :: !present)
        rest;
      reorder !acc (Qgraph.scheme ~lookup g)

(* The hook (a memo cache) is consulted before the span: cache hits are
   near-free and would drown the trace, and on a miss the cache re-enters
   through a hook-less source, which emits the span around the real join. *)
let full_associations src g =
  match Source.fj_hook src with
  | Some hook -> hook g
  | None ->
      let lookup = Source.lookup src in
      if not (Obs.enabled ()) then join_base ~lookup g
      else
        Obs.with_span
          ~attrs:[ ("nodes", string_of_int (Qgraph.node_count g)) ]
          Obs.Names.sp_full_associations
          (fun () -> join_base ~lookup g)

let full_associations_fn ~lookup g = full_associations (Source.of_fn lookup) g
