open Relational
module Qgraph = Querygraph.Qgraph

type t = {
  lookup : string -> Relation.t option;
  fj_hook : (Qgraph.t -> Relation.t) option;
  pool : Par.Pool.t option;
}

let of_fn lookup = { lookup; fj_hook = None; pool = None }
let of_db db = of_fn (Database.find db)
let with_fj hook t = { t with fj_hook = Some hook }
let without_fj t = { t with fj_hook = None }
let with_pool pool t = { t with pool }
let lookup t = t.lookup
let fj_hook t = t.fj_hook
let pool t = t.pool
let scheme t g = Qgraph.scheme ~lookup:t.lookup g
