(** The set of data associations D(G) (Definition 3.11) — Galindo-Legaria's
    {e full disjunction} of the query graph.

    D(G) = F(J1) ⊕ ... ⊕ F(Jn) over all induced connected subgraphs Ji of G.
    Three algorithms are provided (bench [B2] compares them):

    - {!naive}: materializes every F(Ji), pads, then removes strictly
      subsumed tuples globally.
    - {!compute}: processes categories largest-first and keeps an
      association only if no already-kept association subsumes it, probing a
      per-column index (sound for arbitrary source nulls).
    - {!Outerjoin_plan} (separate module): a cascade of full outer joins,
      valid for tree-shaped graphs. *)

open Relational
module Qgraph = Querygraph.Qgraph

type result = {
  scheme : Schema.t;  (** combined scheme of G, sorted alias order *)
  node_positions : (string * int list) list;  (** alias → column positions *)
  associations : Assoc.t list;
}

val naive : Source.t -> Qgraph.t -> result
val compute : Source.t -> Qgraph.t -> result

(** [delta src g ~old ~changed] — repair a previously computed D(G) after
    an insert-only database update, without recomputing untouched
    categories.  [old] is the result at the pre-update instance; [changed]
    maps each touched base-relation name to its inserted tuples; [src]
    must resolve to the post-update relations.  Only categories containing
    an alias over a touched base are (delta-)joined; their new tuples are
    merged into [old] with {!Min_union.merge_keep_flags}.  Equivalent to
    running {!compute} from scratch at the new instance — byte-identical,
    thanks to the canonical association order. *)
val delta :
  Source.t ->
  Qgraph.t ->
  old:result ->
  changed:(string * Relational.Tuple.t list) list ->
  result

(** Sort associations by (tuple, coverage) — the canonical presentation
    order every algorithm emits.  Idempotent on algorithm outputs; exposed
    for the outer-join planner and for tests. *)
val canonical_order : Assoc.t list -> Assoc.t list

(** [compute_relation src g] — D(G) directly as a relation, evaluated on
    the columnar batch kernels end to end (concatenated padded
    categories, one-pass set dedup, bitmask subsumption sweep, canonical
    sort).  Renders byte-identically to [to_relation (compute src g)];
    with the columnar switch off it falls back to the boxed kernels and
    still returns the same relation.  Bench B17 measures this path. *)
val compute_relation : ?name:string -> Source.t -> Qgraph.t -> Relation.t

(** D(G) as a relation (coverage dropped). *)
val to_relation : ?name:string -> result -> Relation.t

(** Associations partitioned by coverage — the {e categories} of Section 4.2.
    Only non-empty categories appear. *)
val categories : result -> (Coverage.t * Assoc.t list) list

(** The possible data associations S(G) (Definition 3.6): every F(J) padded,
    {e without} subsumption removal.  Exposed for tests/oracles. *)
val possible_associations : Source.t -> Qgraph.t -> result
