(** Outer-join evaluation of D(G) for tree-shaped query graphs.

    Galindo-Legaria showed that full disjunctions of γ-acyclic join queries
    can be computed by sequences of outer joins; binary-edge tree graphs
    qualify.  We cascade full outer joins in BFS order (each new node
    attaches to an already-present node) and finish with an indexed
    subsumption sweep as a safety net — property tests check equality with
    the naive algorithm on random trees.

    Also provides the {e left}-outer-join plan rooted at a required
    relation, which is how the paper's Section 2 SQL (all kids, optional
    parent/phone/bus data) arises: rooting at [Children] and left-joining
    outward computes exactly the data associations that cover the root. *)

module Qgraph = Querygraph.Qgraph

val is_tree : Qgraph.t -> bool

(** D(G) by full-outer-join cascade. Raises [Invalid_argument] if [g] is
    not a tree. *)
val full_disjunction : Source.t -> Qgraph.t -> Full_disjunction.result

(** Ablation: the raw cascade without the final subsumption sweep — bench
    B2 measures the sweep's cost.  On path graphs this equals
    {!full_disjunction}; on branching trees it may retain subsumed rows. *)
val full_disjunction_no_sweep : Source.t -> Qgraph.t -> Full_disjunction.result

(** Associations covering [root], by left-outer-join cascade from [root].
    Equals the subset of D(G) whose coverage contains [root] (tested).
    Raises [Invalid_argument] if [g] is not a tree. *)
val rooted : Source.t -> root:string -> Qgraph.t -> Full_disjunction.result
