open Relational
module Qgraph = Querygraph.Qgraph
module Subgraphs = Querygraph.Subgraphs

type result = {
  scheme : Schema.t;
  node_positions : (string * int list) list;
  associations : Assoc.t list;
}

let node_positions_of scheme g =
  List.map (fun a -> (a, Schema.positions_of_rel scheme a)) (Qgraph.aliases g)

(* Every F(J) padded to the full scheme and tagged with coverage J. *)
let padded_categories src g =
  Obs.with_span Obs.Names.sp_categories (fun () ->
      let scheme = Source.scheme src g in
      let subsets = Subgraphs.connected_node_sets g in
      Obs.add Obs.Names.categories (List.length subsets);
      (* The dominant fan-out: each connected subset's F(J) is independent
         of the others, so they evaluate across the source's pool; results
         land in subset order, keeping category order (and everything
         downstream) identical to sequential evaluation. *)
      let per_category =
        Par.map ?pool:(Source.pool src)
          (fun aliases ->
            let j = Qgraph.induced g aliases in
            let fj = Join_eval.full_associations src j in
            let padded = Algebra.pad fj scheme in
            (Coverage.of_list aliases, Relation.tuples padded))
          subsets
      in
      (scheme, per_category))

let possible_associations src g =
  let scheme, per_category = padded_categories src g in
  let associations =
    List.concat_map
      (fun (cov, tuples) -> List.map (fun t -> Assoc.make t cov) tuples)
      per_category
  in
  { scheme; node_positions = node_positions_of scheme g; associations }

(* Dedup equal tuples across categories, keeping the larger coverage (an
   equal tuple's smaller-coverage tag is subsumption-redundant). *)
let dedup_assocs assocs =
  let table = Hashtbl.create 256 in
  List.iter
    (fun (a : Assoc.t) ->
      let key = Tuple.hash a.tuple in
      let bucket = Hashtbl.find_all table key in
      match
        List.find_opt (fun (b : Assoc.t) -> Tuple.equal b.tuple a.tuple) bucket
      with
      | Some b ->
          if Coverage.cardinal a.coverage > Coverage.cardinal b.coverage then begin
            let bucket' =
              a :: List.filter (fun (c : Assoc.t) -> not (Tuple.equal c.tuple a.tuple)) bucket
            in
            (* Rebuild the bucket list for this key. *)
            while Hashtbl.mem table key do
              Hashtbl.remove table key
            done;
            List.iter (fun c -> Hashtbl.add table key c) bucket'
          end
      | None -> Hashtbl.add table key a)
    assocs;
  Hashtbl.fold (fun _ a acc -> a :: acc) table []

(* Canonical presentation order: by tuple, then coverage.  Every D(G)
   algorithm — and the incremental repair path — emits this order, so equal
   association *sets* render byte-identically no matter how they were
   computed.  Downstream greedy tie-breaks (illustration selection walks
   associations in order) depend on this for incremental/from-scratch
   parity.  Equal tuples imply equal coverage (a padded tuple's null
   pattern determines its category because source relations have no
   all-null tuples), so the order is total on deduplicated results. *)
let canonical_order assocs =
  List.sort
    (fun (a : Assoc.t) (b : Assoc.t) ->
      let c = Tuple.compare a.Assoc.tuple b.Assoc.tuple in
      if c <> 0 then c else Coverage.compare a.Assoc.coverage b.Assoc.coverage)
    assocs

let naive src g =
  Obs.with_span ~attrs:[ ("algorithm", "naive") ] Obs.Names.sp_fulldisj
    (fun () ->
      let { scheme; node_positions; associations } =
        possible_associations src g
      in
      let deduped =
        Obs.with_span Obs.Names.sp_dedup (fun () -> dedup_assocs associations)
      in
      let associations =
        Obs.with_span Obs.Names.sp_min_union (fun () ->
            let tuples = List.map (fun (a : Assoc.t) -> a.tuple) deduped in
            let kept = Min_union.remove_subsumed_naive tuples in
            let keep_set = Hashtbl.create (List.length kept) in
            List.iter (fun t -> Hashtbl.replace keep_set (Tuple.hash t) t) kept;
            let kept_assocs =
              List.filter
                (fun (a : Assoc.t) ->
                  Hashtbl.find_all keep_set (Tuple.hash a.tuple)
                  |> List.exists (Tuple.equal a.tuple))
                deduped
            in
            if Obs.enabled () then begin
              Obs.add Obs.Names.assoc_considered (List.length deduped);
              Obs.add Obs.Names.assoc_kept (List.length kept_assocs)
            end;
            kept_assocs)
      in
      { scheme; node_positions; associations = canonical_order associations })

(* Indexed subsumption removal: a subsumer of [t] must agree with [t] on
   every non-null column of [t], so probing the per-column value index at
   [t]'s most selective non-null column yields a small, complete candidate
   set.  Strict subsumption is transitive, so checking against all
   associations (not just kept ones) is equivalent to checking against the
   maximal ones. *)
let compute src g =
  Obs.with_span ~attrs:[ ("algorithm", "indexed") ] Obs.Names.sp_fulldisj
    (fun () ->
      let scheme, per_category = padded_categories src g in
      let node_positions = node_positions_of scheme g in
      let assocs =
        List.concat_map
          (fun (cov, tuples) -> List.map (fun t -> Assoc.make t cov) tuples)
          per_category
      in
      let deduped =
        Obs.with_span Obs.Names.sp_dedup (fun () -> dedup_assocs assocs)
      in
      (* Global indexed removal: correctness does not depend on ordering; the
         index makes candidate sets small. *)
      Obs.with_span Obs.Names.sp_min_union (fun () ->
          let counting = Obs.enabled () in
          let arr = Array.of_list deduped in
          let arity = Schema.arity scheme in
          let index = Array.init arity (fun _ -> Value.Table.create 64) in
          Array.iteri
            (fun id (a : Assoc.t) ->
              for p = 0 to arity - 1 do
                if not (Value.is_null a.tuple.(p)) then
                  Value.Table.add index.(p) a.tuple.(p) id
              done)
            arr;
          let subsumed id (a : Assoc.t) =
            let t = a.tuple in
            let best = ref (-1) and best_count = ref max_int in
            for p = 0 to arity - 1 do
              if not (Value.is_null t.(p)) then begin
                let c = List.length (Value.Table.find_all index.(p) t.(p)) in
                if c < !best_count then begin
                  best := p;
                  best_count := c
                end
              end
            done;
            if !best < 0 then Array.length arr > 1
            else begin
              if counting then Obs.Counter.bump Obs.Names.index_probes;
              Value.Table.find_all index.(!best) t.(!best)
              |> List.exists (fun oid ->
                     oid <> id
                     &&
                     (if counting then
                        Obs.Counter.bump Obs.Names.subsumption_checks;
                      Tuple.strictly_subsumes arr.(oid).Assoc.tuple t))
            end
          in
          (* Keep-flag computation is read-only over [arr]/[index], so it
             chunks across the pool; assembly stays sequential and ordered. *)
          let keep =
            Par.init ?pool:(Source.pool src) (Array.length arr) (fun id ->
                not (subsumed id arr.(id)))
          in
          let associations =
            Array.to_list arr |> List.filteri (fun id _ -> keep.(id))
          in
          if counting then begin
            Obs.add Obs.Names.assoc_considered (Array.length arr);
            Obs.add Obs.Names.assoc_kept (List.length associations)
          end;
          { scheme; node_positions; associations = canonical_order associations }))

(* End-to-end batch evaluation of D(G) as a relation, never leaving the
   columnar plane when the switch is on: each connected category's F(J)
   is padded to the full scheme (shared columns + null fills), the
   categories are vertically concatenated and set-deduplicated in one
   pass, the subsumption sweep runs on bitmask/class-id kernels, and the
   survivors come out in canonical [Tuple.compare] order.  Renders
   byte-identically to [to_relation (compute src g)] — coverage tags are
   the only thing [compute] adds, and equal tuples carry equal coverage
   (see [canonical_order]), so dropping them loses nothing at the
   relation level.  This is the path bench B17 measures. *)
let compute_relation ?(name = "D(G)") src g =
  Obs.with_span ~attrs:[ ("algorithm", "columnar") ] Obs.Names.sp_fulldisj
    (fun () ->
      let scheme = Source.scheme src g in
      let subsets = Subgraphs.connected_node_sets g in
      Obs.add Obs.Names.categories (List.length subsets);
      let padded =
        Par.map ?pool:(Source.pool src)
          (fun aliases ->
            let j = Qgraph.induced g aliases in
            Algebra.pad (Join_eval.full_associations src j) scheme)
          subsets
      in
      let union_all =
        if Columnar.enabled () && Schema.arity scheme > 0 && padded <> [] then
          Relation.of_columns ~allow_all_null:true name scheme
            (Col_ops.concat (List.map Relation.columns padded))
        else
          Relation.create ~allow_all_null:true name scheme
            (List.concat_map Relation.tuples padded)
      in
      Join_eval.canonical (Min_union.minimize ?pool:(Source.pool src) union_all))

(* Incremental repair: after an insert-only database update, D(G)'s new
   possible associations all come from categories containing an alias over
   a touched base.  Each such category contributes its delta join (padded,
   coverage-tagged); the batch is deduplicated against itself and against
   the old result (equal tuples carry equal coverage, see
   [canonical_order]), then min-union-merged into the old associations —
   old-vs-old subsumption is never re-checked. *)
let delta src g ~old ~changed =
  Obs.with_span ~attrs:[ ("algorithm", "delta") ] Obs.Names.sp_fulldisj
    (fun () ->
      let scheme = old.scheme in
      let node_positions = old.node_positions in
      let touched_bases = List.map fst changed in
      let touched_alias a =
        List.mem (Qgraph.base_of g a) touched_bases
      in
      let subsets =
        Subgraphs.connected_node_sets g
        |> List.filter (List.exists touched_alias)
      in
      let per_category =
        Par.map ?pool:(Source.pool src)
          (fun aliases ->
            let j = Qgraph.induced g aliases in
            let dfj = Join_eval.full_associations_delta src j ~changed in
            let padded = Algebra.pad dfj scheme in
            (Coverage.of_list aliases, Relation.tuples padded))
          subsets
      in
      let old_arr = Array.of_list old.associations in
      let seen = Relation.Tuple_tbl.create (Array.length old_arr) in
      Array.iter (fun (a : Assoc.t) -> Relation.Tuple_tbl.replace seen a.Assoc.tuple ()) old_arr;
      let fresh =
        List.concat_map
          (fun (cov, tuples) ->
            List.filter_map
              (fun t ->
                if Relation.Tuple_tbl.mem seen t then None
                else begin
                  Relation.Tuple_tbl.replace seen t ();
                  Some (Assoc.make t cov)
                end)
              tuples)
          per_category
      in
      let associations =
        if fresh = [] then old.associations
        else begin
          let delta_arr = Array.of_list fresh in
          let base = Array.map (fun (a : Assoc.t) -> a.Assoc.tuple) old_arr in
          let dtuples = Array.map (fun (a : Assoc.t) -> a.Assoc.tuple) delta_arr in
          let base_keep, delta_keep =
            Min_union.merge_keep_flags ?pool:(Source.pool src) ~base dtuples
          in
          let out = ref [] in
          Array.iteri (fun i a -> if base_keep.(i) then out := a :: !out) old_arr;
          Array.iteri (fun j a -> if delta_keep.(j) then out := a :: !out) delta_arr;
          if Obs.enabled () then begin
            Obs.add Obs.Names.assoc_considered
              (Array.length old_arr + Array.length delta_arr);
            Obs.add Obs.Names.assoc_kept (List.length !out)
          end;
          canonical_order !out
        end
      in
      { scheme; node_positions; associations })

let to_relation ?(name = "D(G)") r =
  Relation.create ~allow_all_null:true name r.scheme
    (List.map (fun (a : Assoc.t) -> a.Assoc.tuple) r.associations)

let categories r =
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (a : Assoc.t) ->
      let key = Coverage.to_list a.coverage in
      if not (Hashtbl.mem groups key) then order := (key, a.coverage) :: !order;
      Hashtbl.add groups key a)
    r.associations;
  List.rev !order
  |> List.map (fun (key, cov) -> (cov, List.rev (Hashtbl.find_all groups key)))
