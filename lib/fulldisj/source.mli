(** Where a full-disjunction evaluation reads its relations from.

    Historically every entry point in this library took a raw
    [~lookup:(string -> Relation.t option)] closure, and [Full_disjunction]
    grew [naive_db]/[compute_db] convenience twins.  A [Source.t] collapses
    both shapes into one value and adds the seam the memoized evaluation
    engine plugs into: an optional F(J) hook consulted by
    {!Join_eval.full_associations} before computing a connected subgraph's
    join from scratch.

    Constructors:
    - {!of_db} — resolve names in a {!Relational.Database};
    - {!of_fn} — wrap a raw lookup closure;
    - [of_ctx] — provided by the engine layer as [Eval_ctx.source] (this
      library sits below [lib/engine], so the context-backed constructor
      lives there); it is {!of_db} on the context's database plus
      {!with_fj} pointing at the context's memo cache. *)

open Relational

type t

(** Resolve relation names with [lookup]; no F(J) hook. *)
val of_fn : (string -> Relation.t option) -> t

(** Resolve relation names in [db]; no F(J) hook. *)
val of_db : Database.t -> t

(** [with_fj hook src] — a source that answers whole-subgraph F(J) requests
    through [hook] (e.g. a memo cache) instead of joining base relations.
    [hook j] must return exactly
    [Join_eval.full_associations (without_fj src) j]. *)
val with_fj : (Querygraph.Qgraph.t -> Relation.t) -> t -> t

(** Drop the F(J) hook — what a cache calls on a miss to compute the real
    value without re-entering itself. *)
val without_fj : t -> t

(** [with_pool pool src] — carry a [Par] pool for the fan-out points of
    this library (per-subgraph F(J) materialization, subsumption sweeps).
    [None] (the default everywhere) means sequential evaluation. *)
val with_pool : Par.Pool.t option -> t -> t

val lookup : t -> string -> Relation.t option
val fj_hook : t -> (Querygraph.Qgraph.t -> Relation.t) option
val pool : t -> Par.Pool.t option

(** The graph's combined scheme under this source's lookup. *)
val scheme : t -> Querygraph.Qgraph.t -> Schema.t
