(** Evaluation of full data associations F(J) (Definition 3.5).

    F(J) = σ_P(R1 × ... × Rn) with P the conjunction of edge predicates —
    computed here as a sequence of (hash) joins along a traversal of the
    graph, applying each edge predicate as soon as both endpoints are
    present.  Works for cyclic graphs too (extra edges become filters). *)

open Relational

(** [full_associations src j] — F(J) for a connected query graph [j].
    When [src] carries an F(J) hook ({!Source.with_fj}) the whole request
    is answered through it — this is how the memo cache intercepts
    per-subgraph joins.  The result's schema is the graph's
    {!Qgraph.scheme} (sorted alias order), independent of join order.
    Raises [Invalid_argument] when [j] is empty or not connected. *)
val full_associations : Source.t -> Querygraph.Qgraph.t -> Relation.t

(** [full_associations_delta src j ~changed] — the {e new} F(J) tuples
    after an insert-only database update.  [changed] maps each touched
    base-relation name to the tuples inserted into it; [src]'s lookup must
    already resolve to the post-update relations.  For each alias over a
    touched base, the graph is joined once with that alias restricted to
    the inserted tuples and all other aliases at their full post-update
    instances; the union over touched aliases is returned (the old F(J)
    plus this result equals the post-update F(J), up to duplicates the
    caller removes).  The F(J) hook is ignored: this is the repair step
    the memo cache itself invokes.  Empty when no alias touches a changed
    base. *)
val full_associations_delta :
  Source.t ->
  Querygraph.Qgraph.t ->
  changed:(string * Tuple.t list) list ->
  Relation.t

(** Reorder a relation's columns to match a target schema containing
    exactly the same attributes. *)
val reorder : Relation.t -> Schema.t -> Relation.t

(** Sort a relation's tuples into the canonical ({!Tuple.compare}) order
    every F(J) result is presented in — what makes an incrementally
    repaired F(J) structurally identical to its from-scratch twin. *)
val canonical : Relation.t -> Relation.t
