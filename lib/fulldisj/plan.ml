open Relational
module Qgraph = Querygraph.Qgraph
module Subgraphs = Querygraph.Subgraphs

type algorithm_choice = Outerjoin_cascade | Indexed_categories

type t = {
  algorithm : algorithm_choice;
  nodes : int;
  edges : int;
  categories : int;
  join_order : string list;
  estimated_base_rows : (string * int) list;
}

let bfs_order g =
  match Qgraph.aliases g with
  | [] -> []
  | start :: _ ->
      let rec bfs visited queue acc =
        match queue with
        | [] -> List.rev acc
        | a :: rest ->
            if List.mem a visited then bfs visited rest acc
            else
              let next =
                Qgraph.neighbours g a |> List.filter (fun n -> not (List.mem n visited))
              in
              bfs (a :: visited) (rest @ next) (a :: acc)
      in
      bfs [] [ start ] []

let analyze ~lookup g =
  {
    algorithm =
      (if Outerjoin_plan.is_tree g then Outerjoin_cascade else Indexed_categories);
    nodes = Qgraph.node_count g;
    edges = Qgraph.edge_count g;
    categories = Subgraphs.count g;
    join_order = bfs_order g;
    estimated_base_rows =
      List.map
        (fun n ->
          ( n.Qgraph.alias,
            match lookup n.Qgraph.base with
            | Some r -> Relation.cardinality r
            | None -> -1 ))
        (Qgraph.nodes g);
  }

let execute ~lookup g =
  let src = Source.of_fn lookup in
  if Outerjoin_plan.is_tree g then Outerjoin_plan.full_disjunction src g
  else Full_disjunction.compute src g

let render p =
  let algo =
    match p.algorithm with
    | Outerjoin_cascade -> "full-outer-join cascade (tree graph) + subsumption sweep"
    | Indexed_categories -> "per-category joins + indexed minimum union"
  in
  String.concat "\n"
    ([
       Printf.sprintf "D(G) plan: %s" algo;
       Printf.sprintf "  graph: %d nodes, %d edges; %d coverage categories" p.nodes
         p.edges p.categories;
       Printf.sprintf "  join order: %s" (String.concat " -> " p.join_order);
       "  base cardinalities:";
     ]
    @ List.map
        (fun (alias, n) ->
          Printf.sprintf "    %-16s %s" alias
            (if n < 0 then "(unknown relation)" else string_of_int n))
        p.estimated_base_rows)
