open Relational
module Qgraph = Querygraph.Qgraph

let is_tree g =
  Qgraph.node_count g > 0
  && Qgraph.is_connected g
  && Qgraph.edge_count g = Qgraph.node_count g - 1

(* BFS order rooted at [root]; each node after the root is joined through
   its unique tree edge to the already-present part. *)
let bfs_order g root =
  let rec bfs visited queue acc =
    match queue with
    | [] -> List.rev acc
    | a :: rest ->
        if List.mem a visited then bfs visited rest acc
        else
          let next =
            Qgraph.neighbours g a |> List.filter (fun n -> not (List.mem n visited))
          in
          bfs (a :: visited) (rest @ next) (a :: acc)
  in
  bfs [] [ root ] []

let cascade ~lookup ~join g root =
  let order = bfs_order g root in
  match order with
  | [] -> invalid_arg "Outerjoin_plan: empty graph"
  | first :: rest ->
      let acc = ref (Qgraph.node_relation ~lookup g first) in
      let present = ref [ first ] in
      List.iter
        (fun alias ->
          let next_rel = Qgraph.node_relation ~lookup g alias in
          let preds =
            List.filter_map
              (fun p -> Qgraph.find_edge g alias p |> Option.map (fun e -> e.Qgraph.pred))
              !present
          in
          (if Obs.enabled () then
             Obs.with_span
               ~attrs:[ ("alias", alias) ]
               Obs.Names.sp_oj_join
               (fun () -> acc := join (Predicate.conj preds) !acc next_rel)
           else acc := join (Predicate.conj preds) !acc next_rel);
          present := alias :: !present)
        rest;
      Join_eval.reorder !acc (Qgraph.scheme ~lookup g)

let tag_result ~lookup g rel =
  let scheme = Qgraph.scheme ~lookup g in
  let node_positions =
    List.map (fun a -> (a, Schema.positions_of_rel scheme a)) (Qgraph.aliases g)
  in
  let associations =
    Relation.tuples rel
    |> List.map (fun t -> Assoc.make t (Assoc.coverage_of_tuple node_positions t))
    |> Full_disjunction.canonical_order
  in
  { Full_disjunction.scheme; node_positions; associations }

(* The cascade joins base relations node by node — there is no per-subgraph
   F(J) request to intercept, so only the source's lookup is used. *)
let full_disjunction src g =
  let lookup = Source.lookup src in
  if not (is_tree g) then invalid_arg "Outerjoin_plan.full_disjunction: not a tree";
  Obs.with_span ~attrs:[ ("algorithm", "outerjoin") ] Obs.Names.sp_oj_plan
    (fun () ->
      let root = List.hd (Qgraph.aliases g) in
      let fused = cascade ~lookup ~join:Algebra.full_outer_join g root in
      (* Safety net: the cascade can only miss subsumption across branches. *)
      let minimal =
        Obs.with_span Obs.Names.sp_oj_sweep (fun () ->
            Min_union.sweep ?pool:(Source.pool src)
              (Relation.with_name "D(G)" fused))
      in
      tag_result ~lookup g minimal)

let full_disjunction_no_sweep src g =
  let lookup = Source.lookup src in
  if not (is_tree g) then
    invalid_arg "Outerjoin_plan.full_disjunction_no_sweep: not a tree";
  let root = List.hd (Qgraph.aliases g) in
  tag_result ~lookup g (cascade ~lookup ~join:Algebra.full_outer_join g root)

let rooted src ~root g =
  let lookup = Source.lookup src in
  if not (is_tree g) then invalid_arg "Outerjoin_plan.rooted: not a tree";
  if not (Qgraph.mem_node g root) then invalid_arg ("Outerjoin_plan.rooted: " ^ root);
  let rel = cascade ~lookup ~join:Algebra.left_outer_join g root in
  tag_result ~lookup g rel
