(** Subsumption and the minimum union operator ⊕ (Definitions 3.8–3.9).

    Two implementations of subsumed-tuple removal are provided: the naive
    quadratic scan and a per-column hash-indexed variant; bench [B1]
    compares them.  Both require input deduplicated to set semantics (every
    caller here goes through {!Relational.Relation.make}, which dedups). *)

open Relational

(** [remove_subsumed_naive tuples] — keep tuples not strictly subsumed by
    any other, via pairwise scan.  O(n² · arity). *)
val remove_subsumed_naive : Tuple.t list -> Tuple.t list

(** Indexed variant: candidates that could subsume [t] are found through a
    per-column value index (a subsumer must agree with [t] on each of [t]'s
    non-null columns), probing [t]'s most selective non-null column.
    [?pool] chunks the (read-only) per-tuple checks across a [Par] pool;
    the result is identical either way. *)
val remove_subsumed : ?pool:Par.Pool.t -> Tuple.t list -> Tuple.t list

(** Ablation of {!remove_subsumed}: probes the {e first} non-null column
    instead of the most selective one.  Same result, used by bench B1 to
    measure the value of selectivity-aware probing. *)
val remove_subsumed_first_probe : Tuple.t list -> Tuple.t list

(** Minimum union of two relations: outer union with strictly subsumed
    tuples removed. *)
val min_union : Relation.t -> Relation.t -> Relation.t

(** N-ary minimum union over a common schema (relations are padded to the
    merged schema first, as in D(G) = F(J1) ⊕ ... ⊕ F(Jn)). *)
val min_union_all : Relation.t list -> Relation.t option

(** [is_minimal tuples] — no tuple strictly subsumes another (test oracle). *)
val is_minimal : Tuple.t list -> bool
