(** Subsumption and the minimum union operator ⊕ (Definitions 3.8–3.9).

    Two implementations of subsumed-tuple removal are provided: the naive
    quadratic scan and a per-column hash-indexed variant; bench [B1]
    compares them.  Both require input deduplicated to set semantics (every
    caller here goes through {!Relational.Relation.create}, which dedups). *)

open Relational

(** [remove_subsumed_naive tuples] — keep tuples not strictly subsumed by
    any other, via pairwise scan.  O(n² · arity). *)
val remove_subsumed_naive : Tuple.t list -> Tuple.t list

(** Indexed variant: candidates that could subsume [t] are found through a
    per-column value index (a subsumer must agree with [t] on each of [t]'s
    non-null columns), probing [t]'s most selective non-null column.
    [?pool] chunks the (read-only) per-tuple checks across a [Par] pool;
    the result is identical either way. *)
val remove_subsumed : ?pool:Par.Pool.t -> Tuple.t list -> Tuple.t list

(** Ablation of {!remove_subsumed}: probes the {e first} non-null column
    instead of the most selective one.  Same result, used by bench B1 to
    measure the value of selectivity-aware probing. *)
val remove_subsumed_first_probe : Tuple.t list -> Tuple.t list

(** [merge_keep_flags ?pool ~base delta] — keep flags for merging a
    deduplicated batch [delta] (disjoint from [base]) into a mutually
    minimal [base]: a base tuple survives unless some delta tuple
    strictly subsumes it; a delta tuple survives unless some base or
    other delta tuple strictly subsumes it.  Base-vs-base checks are
    never re-run, which is what makes incremental D(G) repair cheaper
    than re-minimizing.  [?pool] chunks the checks as in
    {!remove_subsumed}. *)
val merge_keep_flags :
  ?pool:Par.Pool.t ->
  base:Tuple.t array ->
  Tuple.t array ->
  bool array * bool array

(** [merge_minimal ?pool rel batch] — minimum union of an already minimal
    relation with a batch of candidate tuples, via {!merge_keep_flags}.
    Batch tuples equal to existing ones (or to each other) are dropped
    first.  Equivalent to re-minimizing [rel]'s tuples together with the
    batch, assuming [rel] was minimal.  Raises [Invalid_argument] on an
    arity mismatch. *)
val merge_minimal : ?pool:Par.Pool.t -> Relation.t -> Tuple.t list -> Relation.t

(** [sweep ?pool rel] — [rel] minus its strictly subsumed rows, row order
    preserved.  Runs on the columnar bitmask/class-id kernel when the
    {!Relational.Columnar} switch is on (and the arity fits an int
    bitmask), on {!remove_subsumed} otherwise; the result is identical
    either way. *)
val sweep : ?pool:Par.Pool.t -> Relation.t -> Relation.t

(** {!sweep} wrapped in the [min_union] telemetry span, with
    considered/kept counters — the building block of every D(G)
    algorithm's final subsumption pass. *)
val minimize : ?pool:Par.Pool.t -> Relation.t -> Relation.t

(** Minimum union of two relations: outer union with strictly subsumed
    tuples removed. *)
val min_union : Relation.t -> Relation.t -> Relation.t

(** N-ary minimum union over a common schema (relations are padded to the
    merged schema first, as in D(G) = F(J1) ⊕ ... ⊕ F(Jn)). *)
val min_union_all : Relation.t list -> Relation.t option

(** [is_minimal tuples] — no tuple strictly subsumes another (test oracle). *)
val is_minimal : Tuple.t list -> bool
