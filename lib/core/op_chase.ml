open Relational
open Fulldisj
module Qgraph = Querygraph.Qgraph

type occurrence = { rel : string; column : string; count : int }

type alternative = {
  mapping : Mapping.t;
  new_alias : string;
  occurrence : occurrence;
  description : string;
}

let occurrences_anywhere ?index ctx v =
  let db = Engine.Eval_ctx.db ctx in
  match index with
  | Some idx ->
      Value_index.find idx v
      |> List.map (fun (o : Value_index.occurrence) ->
             { rel = o.Value_index.rel; column = o.Value_index.column; count = o.Value_index.count })
  | None ->
      (* Index-less chase = a full scan of every relation; the per-relation
         scans are independent, so they fan out over the context's pool.
         Relation order is preserved, so the result equals
         [Database.find_value db v] exactly. *)
      Par.map
        ?pool:(Engine.Eval_ctx.pool ctx)
        (fun r -> Database.find_value_in r v)
        (Database.relations db)
      |> List.concat
      |> List.map (fun (rel, column, count) -> { rel; column; count })

let occurrences ?index ctx (m : Mapping.t) v =
  let bases =
    Qgraph.nodes m.Mapping.graph |> List.map (fun n -> n.Qgraph.base)
  in
  occurrences_anywhere ?index ctx v
  |> List.filter (fun o -> not (List.mem o.rel bases))

let chase ?illustration ?index ctx (m : Mapping.t) ~attr ~value =
  Obs.with_span Obs.Names.sp_chase @@ fun () ->
  if Obs.enabled () then begin
    Obs.set_attr "attr" (Attr.to_string attr);
    Obs.set_attr "value" (Value.to_string value)
  end;
  let q = attr.Attr.rel in
  if not (Qgraph.mem_node m.Mapping.graph q) then
    invalid_arg ("Op_chase.chase: node " ^ q ^ " not in mapping graph");
  (match illustration with
  | None -> ()
  | Some exs ->
      let fd = Mapping_eval.data_associations ctx m in
      let scheme = fd.Full_disjunction.scheme in
      let pos = Schema.index scheme attr in
      let shown =
        List.exists
          (fun e -> Value.equal e.Example.assoc.Assoc.tuple.(pos) value)
          exs
      in
      if not shown then
        invalid_arg
          (Printf.sprintf "Op_chase.chase: value %s not visible in %s of the illustration"
             (Value.to_string value) (Attr.to_string attr)));
  let occs = occurrences ?index ctx m value in
  if Obs.enabled () then begin
    (* occurrences = tuples carrying the value; alternatives = extension
       sites offered to the user (one per relation.column). *)
    Obs.add Obs.Names.chase_occurrences
      (List.fold_left (fun acc o -> acc + o.count) 0 occs);
    Obs.add Obs.Names.chase_alternatives (List.length occs)
  end;
  occs
  |> List.map (fun o ->
         let alias = Qgraph.fresh_alias m.Mapping.graph o.rel in
         let pred = Predicate.eq_cols attr (Attr.make alias o.column) in
         let g =
           Qgraph.add_edge
             (Qgraph.add_node m.Mapping.graph ~alias ~base:o.rel)
             q alias pred
         in
         {
           mapping = Mapping.with_graph m g;
           new_alias = alias;
           occurrence = o;
           description =
             Printf.sprintf "%s found in %s.%s (%d occurrence%s): extend with %s on %s"
               (Value.to_string value) o.rel o.column o.count
               (if o.count = 1 then "" else "s")
               alias (Predicate.to_sql pred);
         })
