open Relational
open Fulldisj
module Qgraph = Querygraph.Qgraph

type provenance = {
  example : Example.t;
  contributions : (string * Tuple.t option) list;
}

type null_reason =
  | Not_mapped
  | Source_relation_absent of string list
  | Computed_null

let scheme ctx (m : Mapping.t) =
  (Mapping_eval.data_associations ctx m).Full_disjunction.scheme

let provenance_of_example sch (e : Example.t) =
  let aliases = Schema.rels sch in
  let contributions =
    List.map
      (fun alias ->
        if Coverage.mem alias (Example.coverage e) then
          (alias, Some (Assoc.project_alias sch e.Example.assoc alias))
        else (alias, None))
      aliases
  in
  { example = e; contributions }

let of_target_tuple ctx (m : Mapping.t) target_tuple =
  Obs.with_span Obs.Names.sp_explain @@ fun () ->
  let sch = scheme ctx m in
  let derivations =
    Mapping_eval.examples ctx m
    |> List.filter (fun e ->
           Obs.count Obs.Names.explain_tuples_matched;
           e.Example.positive && Tuple.equal e.Example.target_tuple target_tuple)
    |> List.map (provenance_of_example sch)
  in
  if Obs.enabled () then begin
    Obs.Counter.bump_by Obs.Names.explain_derivations (List.length derivations);
    Obs.set_attr "derivations" (string_of_int (List.length derivations))
  end;
  derivations

let why_null ctx (m : Mapping.t) target_tuple col =
  Obs.with_span ~attrs:[ ("column", col) ] Obs.Names.sp_why_null @@ fun () ->
  let provs = of_target_tuple ctx m target_tuple in
  match Mapping.correspondence_for m col with
  | None -> List.map (fun p -> (p, Not_mapped)) provs
  | Some corr ->
      let needed = Correspondence.source_rels corr in
      List.map
        (fun p ->
          let absent =
            List.filter
              (fun alias -> not (Coverage.mem alias (Example.coverage p.example)))
              needed
          in
          if absent <> [] then (p, Source_relation_absent absent)
          else (p, Computed_null))
        provs

let render sch p =
  let lines =
    List.map
      (fun (alias, contribution) ->
        match contribution with
        | Some t -> Printf.sprintf "  %-12s %s" alias (Tuple.to_string t)
        | None -> Printf.sprintf "  %-12s (not involved)" alias)
      p.contributions
  in
  ignore sch;
  String.concat "\n"
    ((Printf.sprintf "target %s  [%s]"
        (Tuple.to_string p.example.Example.target_tuple)
        (Example.tag p.example))
    :: lines)
