(** Data-trimming operators (Section 5): modify the source and target
    filters of a mapping without touching its query graph, and report the
    examples that change polarity so the user can see the filter's effect. *)

open Relational

type change = {
  mapping : Mapping.t;
  became_negative : Example.t list;  (** positive under the old filters only *)
  became_positive : Example.t list;
}

val add_source_filter : Engine.Eval_ctx.t -> Mapping.t -> Predicate.t -> change
val add_target_filter : Engine.Eval_ctx.t -> Mapping.t -> Predicate.t -> change

val remove_source_filter :
  Engine.Eval_ctx.t -> Mapping.t -> Predicate.t -> change

val remove_target_filter :
  Engine.Eval_ctx.t -> Mapping.t -> Predicate.t -> change

(** "Indicate that [col] is really a required field" (Section 2): adds the
    target filter [col is not null].  The outer-join SQL generator renders
    the corresponding join as inner. *)
val require_target_column : Engine.Eval_ctx.t -> Mapping.t -> string -> change
