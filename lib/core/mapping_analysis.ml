open Relational
open Fulldisj
module Qgraph = Querygraph.Qgraph
module Subgraphs = Querygraph.Subgraphs

type verdict = Always_negative of string list | Possibly_positive

let required_aliases (m : Mapping.t) =
  m.Mapping.target_filters
  |> List.concat_map (fun p ->
         match p with
         | Predicate.Is_not_null (Expr.Col a)
           when String.equal a.Attr.rel m.Mapping.target -> (
             match Mapping.correspondence_for m a.Attr.name with
             | Some c -> Correspondence.source_rels c
             | None -> [])
         | _ -> [])
  |> List.sort_uniq String.compare

let category_verdict (m : Mapping.t) cov =
  let missing =
    required_aliases m |> List.filter (fun a -> not (Coverage.mem a cov))
  in
  if missing = [] then Possibly_positive else Always_negative missing

let possibly_positive_categories (m : Mapping.t) =
  let required = required_aliases m in
  Subgraphs.connected_node_sets m.Mapping.graph
  |> List.filter (fun aliases -> List.for_all (fun r -> List.mem r aliases) required)

(* D(G) restricted to the possibly-positive categories: compute F(J) per
   surviving category, then indexed subsumption removal among them.  This
   is exactly the restriction of D(G) (subsumers live in superset
   categories, and required aliases are inherited by supersets). *)
let eval_pruned ctx (m : Mapping.t) =
  let lookup = Engine.Eval_ctx.lookup ctx in
  let g = m.Mapping.graph in
  let scheme = Qgraph.scheme ~lookup g in
  let survivors = possibly_positive_categories m in
  let tuples =
    List.concat_map
      (fun aliases ->
        let j = Qgraph.induced g aliases in
        (* per-category F(J) through the context's memo cache *)
        let fj = Engine.Eval_ctx.full_associations ctx j in
        Relation.tuples (Algebra.pad fj scheme))
      survivors
  in
  let kept = Min_union.remove_subsumed tuples in
  let fd =
    {
      Full_disjunction.scheme;
      node_positions =
        List.map (fun a -> (a, Schema.positions_of_rel scheme a)) (Qgraph.aliases g);
      associations =
        List.map
          (fun t ->
            Assoc.make t
              (Assoc.coverage_of_tuple
                 (List.map
                    (fun a -> (a, Schema.positions_of_rel scheme a))
                    (Qgraph.aliases g))
                 t))
          kept;
    }
  in
  let tr = Mapping_eval.transform fd m in
  let src_ok =
    let fs = List.map (Predicate.compile scheme) m.Mapping.source_filters in
    fun t -> List.for_all (fun f -> f t) fs
  in
  let tgt_ok =
    let schema = Mapping.target_schema m in
    let fs = List.map (Predicate.compile schema) m.Mapping.target_filters in
    fun t -> List.for_all (fun f -> f t) fs
  in
  Relation.create ~allow_all_null:true m.Mapping.target (Mapping.target_schema m)
    (List.filter_map
       (fun (a : Assoc.t) ->
         if src_ok a.Assoc.tuple then
           let t = tr a.Assoc.tuple in
           if tgt_ok t then Some t else None
         else None)
       fd.Full_disjunction.associations)
