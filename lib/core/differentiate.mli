(** Distinguishing examples between alternative mappings.

    The introduction's requirement: chosen examples must "both illuminate a
    specific mapping ... and also illustrate any differences from
    alternative mappings (helping the user to differentiate mappings)".
    Given two alternatives (typically produced by the same walk), this
    module finds the data that tells them apart.

    Two notions are provided:

    - {!target_diff}: target tuples produced by exactly one of the
      mappings — the coarse, result-level difference;
    - {!distinguishing}: per focus tuple of a shared relation (e.g. per
      child), the target tuples each mapping derives from it — the
      fine-grained view the paper's Figure 3/4 scenarios use (Maya's row
      under the mother vs father linkings). *)

open Relational

type side = Only_left | Only_right

type target_diff = { tuple : Tuple.t; side : side }

(** Symmetric difference of the two mappings' (positive) results.  Raises
    [Invalid_argument] when the target schemas differ. *)
val target_diff : Engine.Eval_ctx.t -> Mapping.t -> Mapping.t -> target_diff list

(** Two mappings are indistinguishable on this database when their results
    coincide — the paper notes a join/outer-join change "may have no effect
    due to constraints that hold on the source". *)
val equivalent_on : Engine.Eval_ctx.t -> Mapping.t -> Mapping.t -> bool

type contrast = {
  focus_tuple : Tuple.t;
  left_targets : Tuple.t list;  (** positive target tuples involving it *)
  right_targets : Tuple.t list;
}

(** [distinguishing db ~rel m1 m2] — for each tuple of shared node [rel]
    whose induced target tuples differ between the mappings, the contrast.
    [rel] must be a node of both graphs with the same base. *)
val distinguishing :
  Engine.Eval_ctx.t -> rel:string -> Mapping.t -> Mapping.t -> contrast list

(** Render contrasts side by side. *)
val render : target_schema:Schema.t -> contrast list -> string
