(** Clio's mapping framework (Section 6.1): a set of workspaces, each
    holding one alternative mapping with its illustration; one workspace is
    active; the target view always shows what the active mapping would
    produce (WYSIWYG).

    When an operator yields several alternative mappings, {!offer} replaces
    the current workspaces with the alternatives (illustrations evolved
    continuously from the active one) and activates the first (the
    highest-ranked).  The user can {!rotate}, {!select}, {!delete}
    alternatives, or {!confirm} the active one, discarding the others. *)

open Relational

type entry = {
  id : int;
  mapping : Mapping.t;
  illustration : Illustration.t;
  label : string;
}

type t

(** A workspace owns (a reference to) an evaluation context; every
    evaluation in the session — fresh illustrations, evolved illustrations
    on {!offer}, the target view on each {!rotate}/{!render} — goes through
    its memo cache, which is what makes the interactive loop cheap. *)
val create : Engine.Eval_ctx.t -> ?label:string -> Mapping.t -> t

val ctx : t -> Engine.Eval_ctx.t
val db : t -> Database.t
val kb : t -> Schemakb.Kb.t

(** Tag the workspace's context with the database version its branch
    forked at ({!Engine.Eval_ctx.with_branch_root}) — used by the version
    store so cross-branch cache promotions are counted. *)
val with_branch_root : t -> int -> t
val entries : t -> entry list
val active : t -> entry

(** The WYSIWYG target viewer: the active mapping's positive tuples. *)
val target_view : t -> Relation.t

(** Replace workspaces with alternatives; each gets a continuously evolved
    illustration.  [labels] pair with mappings positionally. *)
val offer : t -> ?labels:string list -> Mapping.t list -> t

val rotate : t -> t

(** Raises [Not_found] for unknown ids. *)
val select : t -> int -> t

(** Deleting the active entry activates the next remaining one; deleting
    the last entry raises [Invalid_argument]. *)
val delete : t -> int -> t

(** Keep only the active workspace. *)
val confirm : t -> t

(** [add_tuples t rel tuples] — the example-edit operation: insert tuples
    into base relation [rel] ({!Relational.Database.insert_tuples}) and
    evolve every workspace's illustration against the updated instance.
    The evaluation context keeps its memo cache across the edit, so the
    re-evaluations run through the engine's incremental promotion path
    when it is enabled.  A no-op (same workspace value) when every tuple
    already exists.  Raises [Invalid_argument] on an unknown relation or
    malformed tuples. *)
val add_tuples : t -> string -> Tuple.t list -> t

(** Replace the active mapping in place (e.g. after a trim operator),
    evolving its illustration. *)
val update_active : t -> ?label:string -> Mapping.t -> t

(** Text dashboard: every workspace with its label and graph (the active
    one marked), the active illustration, and the target view — the
    textual counterpart of the Clio screen described in Section 6.1. *)
val render : ?short:(string -> string option) -> t -> string

(** What tells two workspaces apart, per tuple of a shared node (see
    {!Differentiate.distinguishing}).  Raises [Not_found] on unknown ids;
    [Invalid_argument] when the entries disagree on the target schema. *)
val compare_entries : t -> rel:string -> int -> int -> Differentiate.contrast list
