(** A small scripting language for mapping sessions, so a complete
    refinement — the Section 2 scenario, say — can be driven from a text
    file (CLI: [clio_cli run FILE]) or replayed in tests.

    One command per line; [#] starts a comment.  Commands:

    {v
    target NAME(col, col, ...)     declare the target relation
    source REL                     start the mapping from one relation
    corr COL = EXPR                add a value correspondence (may produce
                                   ranked alternatives; then use pick)
    walk START GOAL [N]            data walk (max length N, default 2)
    chase REL.ATTR VALUE           data chase from a value
    pick N                         choose pending alternative N (1-based)
    sfilter PRED                   add a source filter (SQL-ish predicate)
    tfilter PRED                   add a target filter (columns qualified
                                   by the target name)
    require COL                    make a target column required
    undo                           back out the last mapping change
    show target                    print the WYSIWYG target view
    show illustration              print a sufficient illustration
    show mapping                   print the mapping structure
    show alternatives              print pending alternatives
    show sql ROOT                  print the left-outer-join SQL
    v}

    Alternatives produced by [corr]/[walk]/[chase] stay pending until
    [pick]; commands that need a settled mapping fail while alternatives
    are pending. *)

open Relational

type outcome = {
  log : string list;  (** output of [show] commands, in order *)
  mapping : Mapping.t option;  (** final mapping, if settled *)
}

exception Script_error of { line : int; message : string }

(** Run a script in an evaluation context.  The whole session shares the
    context's memo cache, so repeated [show]s and operator previews reuse
    earlier evaluations.  Raises {!Script_error} with a 1-based line number
    on any failure. *)
val run_ctx : Engine.Eval_ctx.t -> string -> outcome

(** [run ~db ~kb text] = [run_ctx (Eval_ctx.create ~kb db) text]. *)
val run : db:Database.t -> kb:Schemakb.Kb.t -> string -> outcome

(** Like {!run_ctx}/{!run} but capturing the error instead of raising. *)
val run_result_ctx : Engine.Eval_ctx.t -> string -> (outcome, string) result

val run_result : db:Database.t -> kb:Schemakb.Kb.t -> string -> (outcome, string) result

(** Incremental execution — the engine behind [clio_cli repl]. *)
module Interactive : sig
  type t

  val start_ctx : Engine.Eval_ctx.t -> t
  val start : db:Database.t -> kb:Schemakb.Kb.t -> t

  (** Execute one command line.  On success, the new state and the lines it
      printed; on failure, the unchanged state is kept by the caller and
      the error message returned. *)
  val feed : t -> string -> (t * string list, string) result

  (** The settled mapping so far, if any. *)
  val mapping : t -> Mapping.t option
end
