open Relational
open Fulldisj
module Qgraph = Querygraph.Qgraph

type t = Inner_join | Rooted of string | Covering of string list | Full_disjunction

let pp ppf = function
  | Inner_join -> Format.pp_print_string ppf "inner join"
  | Rooted r -> Format.fprintf ppf "left joins rooted at %s" r
  | Covering rs ->
      Format.fprintf ppf "associations covering {%s}" (String.concat ", " rs)
  | Full_disjunction -> Format.pp_print_string ppf "full disjunction"

let associations ctx (m : Mapping.t) = function
  | Full_disjunction -> Mapping_eval.data_associations ctx m
  | Inner_join ->
      (* F(G) through the context so the memoized join is shared. *)
      let g = m.Mapping.graph in
      let f = Engine.Eval_ctx.full_associations ctx g in
      let scheme = Relation.schema f in
      let cov = Coverage.of_list (Qgraph.aliases g) in
      {
        Full_disjunction.scheme;
        node_positions =
          List.map (fun a -> (a, Schema.positions_of_rel scheme a)) (Qgraph.aliases g);
        associations =
          List.map (fun t -> Assoc.make t cov) (Relation.tuples f);
      }
  | Rooted root ->
      let fd = Mapping_eval.data_associations ctx m in
      {
        fd with
        Full_disjunction.associations =
          List.filter
            (fun (a : Assoc.t) -> Coverage.mem root a.Assoc.coverage)
            fd.Full_disjunction.associations;
      }
  | Covering required ->
      let fd = Mapping_eval.data_associations ctx m in
      {
        fd with
        Full_disjunction.associations =
          List.filter
            (fun (a : Assoc.t) ->
              List.for_all (fun r -> Coverage.mem r a.Assoc.coverage) required)
            fd.Full_disjunction.associations;
      }

let eval ctx (m : Mapping.t) interp =
  let fd = associations ctx m interp in
  let tr = Mapping_eval.transform fd m in
  let src_ok =
    let fs =
      List.map (Predicate.compile fd.Full_disjunction.scheme) m.Mapping.source_filters
    in
    fun t -> List.for_all (fun f -> f t) fs
  in
  let tgt_ok =
    let schema = Mapping.target_schema m in
    let fs = List.map (Predicate.compile schema) m.Mapping.target_filters in
    fun t -> List.for_all (fun f -> f t) fs
  in
  Relation.create ~allow_all_null:true m.Mapping.target (Mapping.target_schema m)
    (List.filter_map
       (fun (a : Assoc.t) ->
         if src_ok a.Assoc.tuple then
           let t = tr a.Assoc.tuple in
           if tgt_ok t then Some t else None
         else None)
       fd.Full_disjunction.associations)

type comparison = {
  interpretation_a : t;
  interpretation_b : t;
  only_a : Tuple.t list;
  only_b : Tuple.t list;
}

let compare_under ctx m a b =
  let ra = eval ctx m a and rb = eval ctx m b in
  {
    interpretation_a = a;
    interpretation_b = b;
    only_a = Relation.tuples ra |> List.filter (fun t -> not (Relation.mem rb t));
    only_b = Relation.tuples rb |> List.filter (fun t -> not (Relation.mem ra t));
  }

let no_effect ctx m a b =
  let c = compare_under ctx m a b in
  c.only_a = [] && c.only_b = []

let render_comparison ~target_schema c =
  let rows =
    List.map (fun t -> (Format.asprintf "only under %a" pp c.interpretation_a, t)) c.only_a
    @ List.map
        (fun t -> (Format.asprintf "only under %a" pp c.interpretation_b, t))
        c.only_b
  in
  if rows = [] then "(no difference on this database)"
  else Render.annotated ~qualified:false ~annot_header:"difference" rows target_schema
