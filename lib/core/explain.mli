(** Lineage: from a target tuple back to the source data that produced it.

    The WYSIWYG target viewer (Section 6.1) shows result tuples; when a
    user asks "where did this row come from?", the answer is the set of
    examples whose induced target tuple matches — i.e. the data
    associations behind the row, with the source tuple each relation
    contributed. *)

open Relational

type provenance = {
  example : Example.t;
  (* source tuples per graph node, in alias order; absent nodes are None *)
  contributions : (string * Tuple.t option) list;
}

(** All derivations of a target tuple under a mapping (several data
    associations can induce the same target row). *)
val of_target_tuple :
  Engine.Eval_ctx.t -> Mapping.t -> Tuple.t -> provenance list

(** Why is this column null in this row?  Either no correspondence exists,
    the correspondence computed null from the sources, or the covering
    association misses the relations the correspondence reads. *)
type null_reason =
  | Not_mapped  (** no correspondence for the column *)
  | Source_relation_absent of string list  (** coverage misses these aliases *)
  | Computed_null  (** correspondence evaluated to null on present sources *)

val why_null :
  Engine.Eval_ctx.t ->
  Mapping.t ->
  Tuple.t ->
  string ->
  (provenance * null_reason) list

val render : Schema.t -> provenance -> string

(** D(G)'s scheme for the mapping (needed to render provenances). *)
val scheme : Engine.Eval_ctx.t -> Mapping.t -> Schema.t
