open Relational
open Fulldisj
module Qgraph = Querygraph.Qgraph

module Tuple_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

(* Per base relation: the selected tuples (as a hashed set preserving
   insertion order through a list ref). *)
type selection = { set : unit Tuple_tbl.t; mutable order : Tuple.t list }

let add_tuple sel t =
  if not (Tuple_tbl.mem sel.set t) then begin
    Tuple_tbl.add sel.set t ();
    sel.order <- t :: sel.order
  end

let slice ?(seed = 1) ?(per_relation = 20) db graph =
  let st = Random.State.make [| seed |] in
  let bases =
    Qgraph.nodes graph
    |> List.map (fun n -> n.Qgraph.base)
    |> List.sort_uniq String.compare
  in
  let selections = Hashtbl.create 8 in
  let selection base =
    match Hashtbl.find_opt selections base with
    | Some s -> s
    | None ->
        let s = { set = Tuple_tbl.create 64; order = [] } in
        Hashtbl.add selections base s;
        s
  in
  (* 1. random probe per base relation *)
  List.iter
    (fun base ->
      let r = Database.get db base in
      let n = Relation.cardinality r in
      let tuples = Array.of_list (Relation.tuples r) in
      let sel = selection base in
      if n <= per_relation then Array.iter (fun t -> add_tuple sel t) tuples
      else
        (* Sample distinct indices. *)
        let chosen = Hashtbl.create per_relation in
        while Hashtbl.length chosen < per_relation do
          Hashtbl.replace chosen (Random.State.int st n) ()
        done;
        Hashtbl.iter (fun i () -> add_tuple sel tuples.(i)) chosen)
    bases;
  (* 2. close under join partners along every edge, to fixpoint, so that a
     tuple dangling in the slice is dangling in the full database too
     (soundness of the categories the slice exhibits). *)
  let edge_links =
    Qgraph.edges graph
    |> List.filter_map (fun e ->
           let b1 = Qgraph.base_of graph e.Qgraph.n1 in
           let b2 = Qgraph.base_of graph e.Qgraph.n2 in
           (* Interpret the edge predicate over the two base schemas. *)
           let pred =
             Predicate.rename_rel
               (Predicate.rename_rel e.Qgraph.pred ~from:e.Qgraph.n1 ~into:b1)
               ~from:e.Qgraph.n2 ~into:b2
           in
           match Predicate.as_equi_atoms pred with
           | Some ((_ :: _) as atoms) ->
               (* Orient every atom as (b1 side, b2 side): the undirected
                  edge may store them either way round. *)
               let oriented =
                 List.filter_map
                   (fun (x, y) ->
                     if String.equal x.Attr.rel b1 && String.equal y.Attr.rel b2 then
                       Some (x, y)
                     else if String.equal x.Attr.rel b2 && String.equal y.Attr.rel b1
                     then Some (y, x)
                     else None)
                   atoms
               in
               if List.length oriented = List.length atoms then Some (b1, b2, oriented)
               else None
           | _ -> None)
  in
  let r1_positions b atoms =
    let s = Relation.schema (Database.get db b) in
    List.map (fun (a, _) -> Schema.index s a) atoms
  in
  let r2_positions b atoms =
    let s = Relation.schema (Database.get db b) in
    List.map (fun (_, a) -> Schema.index s a) atoms
  in
  let key positions t =
    let k = List.map (fun i -> t.(i)) positions in
    if List.exists Value.is_null k then None else Some k
  in
  (* Precompute per (edge, direction) a hash from key -> full-db tuples. *)
  let partner_index =
    List.concat_map
      (fun (b1, b2, atoms) ->
        let mk_dir src_base src_pos dst_base dst_pos =
          let table = Hashtbl.create 256 in
          Relation.iter
            (fun t ->
              match key dst_pos t with
              | Some k -> Hashtbl.add table k t
              | None -> ())
            (Database.get db dst_base);
          (src_base, src_pos, dst_base, table)
        in
        let p1 = r1_positions b1 atoms and p2 = r2_positions b2 atoms in
        [ mk_dir b1 p1 b2 p2; mk_dir b2 p2 b1 p1 ])
      edge_links
  in
  let close_under_partners () =
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (src_base, src_pos, dst_base, table) ->
          let src_sel = selection src_base in
          let dst_sel = selection dst_base in
          List.iter
            (fun t ->
              match key src_pos t with
              | None -> ()
              | Some k ->
                  List.iter
                    (fun partner ->
                      if not (Tuple_tbl.mem dst_sel.set partner) then begin
                        Tuple_tbl.add dst_sel.set partner ();
                        dst_sel.order <- partner :: dst_sel.order;
                        changed := true
                      end)
                    (Hashtbl.find_all table k))
            src_sel.order)
        partner_index
    done
  in
  close_under_partners ();
  (* 3. one dangling witness per edge side: a full-db tuple with no partner
     at all (it stays dangling in the slice). *)
  List.iter
    (fun (src_base, src_pos, _dst_base, table) ->
      let sel = selection src_base in
      let witness =
        Relation.tuples (Database.get db src_base)
        |> List.find_opt (fun t ->
               match key src_pos t with
               | None -> true (* null join key: never matches *)
               | Some k -> Hashtbl.find_all table k = [])
      in
      match witness with
      | Some t when not (Tuple_tbl.mem sel.set t) ->
          Tuple_tbl.add sel.set t ();
          sel.order <- t :: sel.order
      | _ -> ())
    partner_index;
  (* A witness may have partners along the *other* edges: close again so
     the slice stays partner-complete (soundness). *)
  close_under_partners ();
  (* Assemble: reduced relations for graph bases, others unchanged. *)
  let rels =
    List.map
      (fun r ->
        let name = Relation.name r in
        if List.mem name bases then
          Relation.create ~allow_all_null:true name (Relation.schema r)
            (List.rev (selection name).order)
        else r)
      (Database.relations db)
  in
  Database.of_relations ~constraints:(Database.constraints db) rels

let illustrate_sampled ?seed ?per_relation ctx (m : Mapping.t) =
  let sliced =
    slice ?seed ?per_relation (Engine.Eval_ctx.db ctx) m.Mapping.graph
  in
  (* The slice is a fresh database version, so reusing the context's cache
     is sound — and repeated illustrations of the same slice hit it. *)
  let universe = Mapping_eval.examples (Engine.Eval_ctx.with_db ctx sliced) m in
  let illustration =
    Sufficiency.select ~universe ~target_cols:m.Mapping.target_cols ()
  in
  (universe, illustration)

let sound ctx (m : Mapping.t) ~slice_universe =
  let full = Mapping_eval.data_associations ctx m in
  slice_universe
  |> List.for_all (fun (e : Example.t) ->
         List.exists
           (fun (a : Assoc.t) -> Tuple.equal a.Assoc.tuple e.Example.assoc.Assoc.tuple)
           full.Full_disjunction.associations)
