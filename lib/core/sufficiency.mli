(** Sufficient illustrations (Definitions 4.2–4.6).

    Requirements are derived from the {e universe} — the set of all examples
    of the mapping (one per data association) — so only satisfiable slots
    are generated:

    - one example per non-empty coverage category (Def 4.2, the query graph);
    - per category, one positive and one negative example when such exist
      (Def 4.4, the filters);
    - per category and target attribute B, a positive example with t[B]
      non-null and one with t[B] null, when such exist (Def 4.5, the value
      correspondences).

    {!select} computes a small sufficient illustration by greedy set cover
    (exact minimality is NP-hard; the greedy solution is within the usual
    logarithmic factor and is what "efficiently select a minimal sufficient
    illustration" calls for in practice). *)

open Fulldisj

type requirement =
  | Cover of Coverage.t
  | Polarity of Coverage.t * bool  (** [true] = a positive example *)
  | Attr_null of Coverage.t * string * bool
      (** positive example whose target attr is null ([true]) / non-null *)

val pp_requirement : Format.formatter -> requirement -> unit

(** Does one example satisfy one requirement? [target_cols] fixes target
    tuple layout. *)
val satisfies : target_cols:string list -> Example.t -> requirement -> bool

(** All satisfiable requirements, per definition cited above. *)
val requirements :
  universe:Example.t list -> target_cols:string list -> requirement list

(** Requirements of Def 4.2 / 4.4 / 4.5 separately. *)
val graph_requirements : universe:Example.t list -> requirement list

val filter_requirements : universe:Example.t list -> requirement list

val correspondence_requirements :
  universe:Example.t list -> target_cols:string list -> requirement list

(** Unsatisfied requirements of an illustration. *)
val missing :
  universe:Example.t list ->
  target_cols:string list ->
  Example.t list ->
  requirement list

val is_sufficient_graph :
  universe:Example.t list -> target_cols:string list -> Example.t list -> bool

val is_sufficient_filters :
  universe:Example.t list -> target_cols:string list -> Example.t list -> bool

val is_sufficient_correspondences :
  universe:Example.t list -> target_cols:string list -> Example.t list -> bool

(** Sufficient for the whole mapping (Def 4.6). *)
val is_sufficient :
  universe:Example.t list -> target_cols:string list -> Example.t list -> bool

(** Greedy minimal sufficient illustration drawn from the universe.
    [seed] examples are always included (used by continuous evolution).
    [?pool] fans the per-round candidate scoring across a [Par] pool; the
    selection is identical either way (the argmax fold is sequential). *)
val select :
  ?pool:Par.Pool.t ->
  ?seed:Example.t list ->
  universe:Example.t list ->
  target_cols:string list ->
  unit ->
  Example.t list

(** Exact minimum-size sufficient illustration by branch-and-bound over
    the candidate examples, with the greedy solution as the initial upper
    bound.  Exponential in the worst case — intended for small universes
    (tests, and measuring how far greedy is from optimal); [max_universe]
    (default 64) guards against misuse by falling back to {!select}. *)
val select_exact :
  ?max_universe:int ->
  universe:Example.t list ->
  target_cols:string list ->
  unit ->
  Example.t list
