(** The data chase operator (Section 5.2).

    The user selects a value [v] of attribute Q[A] appearing in the current
    illustration; Clio locates every occurrence of [v] in relations not yet
    referenced by the mapping, and for each occurrence R[B] offers the
    extension of the query graph with node R and the outer-equijoin edge
    Q.A = R.B. *)

open Relational
module Qgraph = Querygraph.Qgraph

type occurrence = { rel : string; column : string; count : int }

type alternative = {
  mapping : Mapping.t;
  new_alias : string;
  occurrence : occurrence;
  description : string;
}

(** Occurrences of the value in relations not referenced by the mapping
    (Section 5.2 restricts the chase to new relations).  Pass a prebuilt
    [index] ({!Relational.Value_index}) to avoid the full scan — bench B5
    compares both paths. *)
val occurrences :
  ?index:Value_index.t ->
  Engine.Eval_ctx.t ->
  Mapping.t ->
  Value.t ->
  occurrence list

(** All chase occurrences of a value anywhere in the database, including
    mapped relations — the Figure 5 display ("002 appears in one attribute
    of SBPS and in two attributes of XmasBar"). *)
val occurrences_anywhere :
  ?index:Value_index.t -> Engine.Eval_ctx.t -> Value.t -> occurrence list

(** The operator.  [attr] is Q[A] (Q an alias of the mapping's graph);
    raises [Invalid_argument] if Q is not in the graph.  The optional
    [illustration] is validated to actually exhibit [value] in Q[A] —
    chases start from data the user can see. *)
val chase :
  ?illustration:Example.t list ->
  ?index:Value_index.t ->
  Engine.Eval_ctx.t ->
  Mapping.t ->
  attr:Attr.t ->
  value:Value.t ->
  alternative list
