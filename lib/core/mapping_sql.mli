(** SQL generation for mappings.

    Two renderings:

    - {!canonical}: the literal Definition 3.14 query, with D(G) expanded
      as a minimum union of join queries over the induced connected
      subgraphs (the formal semantics, readable but not meant for an
      engine);
    - {!outer_join}: the Section 2 style — a cascade of LEFT JOINs rooted
      at a required relation, with joins promoted to INNER where a target
      not-null filter makes the joined relation required.  Valid when the
      graph is a tree and the mapping's filters restrict it to associations
      covering the root; {!rooted_equivalent} checks that equivalence by
      evaluation. *)

open Relational

val canonical : Mapping.t -> string

(** Raises [Invalid_argument] if the graph is not a tree or [root] is not a
    node. *)
val outer_join : root:string -> Mapping.t -> string

(** Target filters pulled back through the correspondences into predicates
    over source attributes (unmapped target columns become NULL literals). *)
val pullback_target_filters : Mapping.t -> Predicate.t list

(** Evaluate both semantics and compare: the mapping query (Definition
    3.14) against the rooted left-join cascade with the same filters. *)
val rooted_equivalent : Engine.Eval_ctx.t -> root:string -> Mapping.t -> bool
