(** Static analysis of coverage categories against the target filters.

    Section 2: "a target constraint may indicate that every Kid tuple must
    have an ID value.  From this constraint, Clio would know not to include
    SBPS or Parent values in the target if they are not associated with a
    Child tuple."  Formally: if C_T contains [B is not null] and the
    correspondence for B reads node [a], every association whose coverage
    misses [a] is {e always negative} — no data needs to be examined to
    know it.

    Because a subsumer's coverage is a superset of its victim's, and
    required aliases propagate to supersets, restricting D(G)'s computation
    to the possibly-positive categories preserves the mapping query's
    result exactly ({!eval_pruned} is tested equal to the full evaluator,
    and bench B11 measures the savings). *)

open Relational
open Fulldisj

type verdict =
  | Always_negative of string list
      (** the required aliases this category misses *)
  | Possibly_positive

(** Aliases that every positive association must cover: sources of
    correspondences feeding a [col is not null] target filter. *)
val required_aliases : Mapping.t -> string list

val category_verdict : Mapping.t -> Coverage.t -> verdict

(** The categories (induced connected subgraphs, as alias sets) that can
    produce positive tuples. *)
val possibly_positive_categories : Mapping.t -> string list list

(** The mapping query evaluated over possibly-positive categories only.
    Equal to {!Mapping_eval.eval} (tested); faster when filters doom many
    categories. *)
val eval_pruned : Engine.Eval_ctx.t -> Mapping.t -> Relation.t
