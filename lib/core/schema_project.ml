open Relational

type t = { projects : (string * Project.t) list; constraints : Integrity.t list }

let create ?(constraints = []) () = { projects = []; constraints }

let add_target t ~target ~cols =
  if List.mem_assoc target t.projects then
    invalid_arg ("Schema_project.add_target: duplicate target " ^ target);
  { t with projects = t.projects @ [ (target, Project.create ~target ~target_cols:cols) ] }

let targets t = List.map fst t.projects
let project t name = List.assoc name t.projects

let accept t (m : Mapping.t) =
  let name = m.Mapping.target in
  if not (List.mem_assoc name t.projects) then raise Not_found;
  {
    t with
    projects =
      List.map
        (fun (n, p) -> if String.equal n name then (n, Project.accept p m) else (n, p))
        t.projects;
  }

let materialize ?minimal ctx t =
  Database.of_relations ~constraints:t.constraints
    (List.map (fun (_, p) -> Project.materialize ?minimal ctx p) t.projects)

let check ?minimal ctx t = Database.check (materialize ?minimal ctx t)

let report ?minimal ctx t =
  t.projects
  |> List.map (fun (name, p) ->
         Printf.sprintf "%s (%d mapping%s):\n%s" name
           (List.length (Project.mappings p))
           (if List.length (Project.mappings p) = 1 then "" else "s")
           (Project.render_completeness (Project.completeness ?minimal ctx p)))
  |> String.concat "\n\n"
