open Relational
module Qgraph = Querygraph.Qgraph
module Kb = Schemakb.Kb
module Rank = Schemakb.Rank

type alternative = {
  mapping : Mapping.t;
  extension : Qgraph.t;
  new_alias : string;
  description : string;
}

(* A walk state: the accumulated union graph (original G plus the path built
   so far), the path graph G' alone, the alias at the path's end, and the
   aliases already on the path (paths are simple). *)
let walks ~kb ~graph ~start ~goal ?(max_len = 3) () =
  if not (Qgraph.mem_node graph start) then
    invalid_arg ("Op_walk.walks: start node " ^ start ^ " not in graph");
  let results = ref [] in
  let rec extend ~union ~path ~cur ~visited ~len =
    if len < max_len then
      List.iter
        (fun (pair : Kb.join_pair) ->
          let next_base = pair.Kb.r2 in
          (* (a) travel along an existing edge of the union graph whose label
             matches this KB pair. *)
          let travelled = ref false in
          List.iter
            (fun a ->
              if
                (not (List.mem a visited))
                && String.equal (Qgraph.base_of union a) next_base
              then
                match Qgraph.find_edge union cur a with
                | Some e
                  when Kb.matches_edge pair ~alias1:cur ~alias2:a e.Qgraph.pred ->
                    travelled := true;
                    let path' =
                      let p =
                        if Qgraph.mem_node path a then path
                        else Qgraph.add_node path ~alias:a ~base:next_base
                      in
                      Qgraph.add_edge p cur a e.Qgraph.pred
                    in
                    (* An existing node is never the walk's end (R ∉ N). *)
                    extend ~union ~path:path' ~cur:a ~visited:(a :: visited)
                      ~len:(len + 1)
                | Some _ | None -> ())
            (Qgraph.aliases union);
          (* (b) attach a fresh node — a copy when the base already occurs.
             Suppressed when (a) applied: duplicating an edge that is
             already in the graph with the same label only yields a
             semantically redundant copy. *)
          if not !travelled then begin
            let alias = Qgraph.fresh_alias union next_base in
            let pred = Kb.predicate pair ~alias1:cur ~alias2:alias in
            let union' =
              Qgraph.add_edge (Qgraph.add_node union ~alias ~base:next_base) cur alias
                pred
            in
            let path' =
              Qgraph.add_edge (Qgraph.add_node path ~alias ~base:next_base) cur alias
                pred
            in
            if String.equal next_base goal then results := (path', alias) :: !results
            else
              extend ~union:union' ~path:path' ~cur:alias ~visited:(alias :: visited)
                ~len:(len + 1)
          end)
        (Kb.joinable kb (Qgraph.base_of union cur))
  in
  let path0 = Qgraph.singleton ~alias:start ~base:(Qgraph.base_of graph start) in
  extend ~union:graph ~path:path0 ~cur:start ~visited:[ start ] ~len:0;
  (* Deduplicate structurally equal paths (different KB pairs can induce the
     same predicate). *)
  let deduped =
    List.fold_left
      (fun acc (g, _) -> if List.exists (Qgraph.equal g) acc then acc else g :: acc)
      []
      (List.rev !results)
  in
  List.rev deduped

let describe_path path start =
  let rec follow cur visited acc =
    match
      Qgraph.neighbours path cur |> List.filter (fun n -> not (List.mem n visited))
    with
    | [] -> List.rev acc
    | next :: _ ->
        let e = Option.get (Qgraph.find_edge path cur next) in
        follow next (next :: visited)
          ((Printf.sprintf "-(%s)- %s" (Predicate.to_sql e.Qgraph.pred) next) :: acc)
  in
  String.concat " " (start :: follow start [ start ] [])

(* The end alias of a path from [start]: the other endpoint of degree <= 1. *)
let path_end path start =
  match
    Qgraph.aliases path
    |> List.filter (fun a ->
           (not (String.equal a start)) && List.length (Qgraph.neighbours path a) <= 1)
  with
  | [ e ] -> e
  | _ :: _ as ends -> List.hd ends
  | [] -> start

let walk_alternatives ~kb (m : Mapping.t) ~start ~goal ?max_len () =
  Obs.with_span
    ~attrs:[ ("start", start); ("goal", goal) ]
    Obs.Names.sp_walk
    (fun () ->
      let paths = walks ~kb ~graph:m.Mapping.graph ~start ~goal ?max_len () in
      if Obs.enabled () then
        Obs.add Obs.Names.walk_paths (List.length paths);
      let candidates =
        List.map (fun p -> (p, Qgraph.union m.Mapping.graph p)) paths
      in
      let ranked =
        Rank.order ~kb ~old:m.Mapping.graph (List.map snd candidates)
      in
      let alternatives =
        List.map
          (fun g ->
            let path, _ =
              List.find (fun (_, g') -> Qgraph.equal g g') candidates
            in
            {
              mapping = Mapping.with_graph m g;
              extension = path;
              new_alias = path_end path start;
              description = describe_path path start;
            })
          ranked
      in
      if Obs.enabled () then
        Obs.add Obs.Names.walk_alternatives (List.length alternatives);
      alternatives)

let walk_alternatives_any_start ?pool ~kb (m : Mapping.t) ~goal ?max_len () =
  (* Walk enumeration from each start node is independent; starts fan out
     over the pool and results land in alias order, so the concatenation —
     and the dedup/ranking below — match sequential evaluation exactly. *)
  let all =
    Par.map ?pool
      (fun start -> walk_alternatives ~kb m ~start ~goal ?max_len ())
      (Qgraph.aliases m.Mapping.graph)
    |> List.concat
  in
  (* Different starts can induce the same final graph; keep the first. *)
  let deduped =
    List.fold_left
      (fun acc alt ->
        if
          List.exists
            (fun a -> Qgraph.equal a.mapping.Mapping.graph alt.mapping.Mapping.graph)
            acc
        then acc
        else alt :: acc)
      [] all
  in
  let ranked =
    Rank.order ~kb ~old:m.Mapping.graph
      (List.rev_map (fun a -> a.mapping.Mapping.graph) deduped)
  in
  List.map
    (fun g ->
      List.find (fun a -> Qgraph.equal a.mapping.Mapping.graph g) deduped)
    ranked

(* Context-first entry points: the walk reads only the knowledge base, but
   taking the context keeps one calling convention across operators (and
   alternatives are then evaluated through the same context's cache). *)
let data_walk ctx m ~start ~goal ?max_len () =
  walk_alternatives ~kb:(Engine.Eval_ctx.kb ctx) m ~start ~goal ?max_len ()

let data_walk_any_start ctx m ~goal ?max_len () =
  walk_alternatives_any_start
    ?pool:(Engine.Eval_ctx.pool ctx)
    ~kb:(Engine.Eval_ctx.kb ctx) m ~goal ?max_len ()
