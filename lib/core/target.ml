open Relational

let check_compatible = function
  | [] -> invalid_arg "Target.assemble: no mappings"
  | (m : Mapping.t) :: rest ->
      List.iter
        (fun (m' : Mapping.t) ->
          if
            (not (String.equal m'.Mapping.target m.Mapping.target))
            || m'.Mapping.target_cols <> m.Mapping.target_cols
          then invalid_arg "Target.assemble: mappings disagree on the target relation")
        rest;
      m

let assemble ctx mappings =
  let first = check_compatible mappings in
  let results = List.map (Mapping_eval.eval ctx) mappings in
  Relation.create ~allow_all_null:true first.Mapping.target
    (Mapping.target_schema first)
    (List.concat_map Relation.tuples results)

let assemble_min ctx mappings =
  let r = assemble ctx mappings in
  Relation.create ~allow_all_null:true (Relation.name r) (Relation.schema r)
    (Fulldisj.Min_union.remove_subsumed (Relation.tuples r))
