open Relational
open Fulldisj
module Qgraph = Querygraph.Qgraph

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let style =
  {|body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; color: #1a1a1a; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: .5rem 0; font-size: .85rem; }
th, td { border: 1px solid #ccc; padding: .25rem .5rem; text-align: left; }
th { background: #f0f0f0; }
td.null { color: #999; font-style: italic; }
.badge { display: inline-block; padding: 0 .4rem; border-radius: .6rem; font-size: .75rem; }
.pos { background: #d8f2d8; } .neg { background: #f6d8d8; }
pre { background: #f7f7f7; padding: .75rem; overflow-x: auto; font-size: .85rem; }
.meta { color: #555; font-size: .85rem; }|}

let cell v =
  if Value.is_null v then "<td class=\"null\">null</td>"
  else Printf.sprintf "<td>%s</td>" (escape (Value.to_string v))

let table ?badges ~headers rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "<table><tr>";
  (match badges with Some _ -> Buffer.add_string b "<th></th>" | None -> ());
  List.iter (fun h -> Buffer.add_string b (Printf.sprintf "<th>%s</th>" (escape h))) headers;
  Buffer.add_string b "</tr>";
  List.iteri
    (fun i row ->
      Buffer.add_string b "<tr>";
      (match badges with
      | Some bs -> (
          (* A badge list shorter than the rows must not abort rendering:
             rows past its end get an unbadged cell. *)
          match List.nth_opt bs i with
          | Some (tag, positive) ->
              Buffer.add_string b
                (Printf.sprintf "<td><span class=\"badge %s\">%s</span></td>"
                   (if positive then "pos" else "neg")
                   (escape tag))
          | None -> Buffer.add_string b "<td></td>")
      | None -> ());
      Array.iter (fun v -> Buffer.add_string b (cell v)) row;
      Buffer.add_string b "</tr>")
    rows;
  Buffer.add_string b "</table>";
  Buffer.contents b

let relation_table r =
  table
    ~headers:
      (Array.to_list (Schema.attrs (Relation.schema r))
      |> List.map (fun a -> a.Attr.name))
    (Relation.tuples r)

let page ?title ?short ?root ctx (m : Mapping.t) =
  let title = Option.value title ~default:("Mapping into " ^ m.Mapping.target) in
  let fd = Mapping_eval.data_associations ctx m in
  let universe = Mapping_eval.examples ctx m in
  let ill =
    Sufficiency.select
      ?pool:(Engine.Eval_ctx.pool ctx)
      ~universe ~target_cols:m.Mapping.target_cols ()
  in
  let scheme = fd.Full_disjunction.scheme in
  let b = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add
    "<!doctype html><html><head><meta charset=\"utf-8\"><title>%s</title><style>%s</style></head><body>"
    (escape title) style;
  add "<h1>%s</h1>" (escape title);
  add "<p class=\"meta\">query graph: %s</p>"
    (escape (Qgraph.to_string m.Mapping.graph));

  add "<h2>Correspondences and filters</h2><ul>";
  List.iter
    (fun c -> add "<li><code>%s</code></li>" (escape (Correspondence.to_sql c)))
    m.Mapping.correspondences;
  List.iter
    (fun p -> add "<li>source filter: <code>%s</code></li>" (escape (Predicate.to_sql p)))
    m.Mapping.source_filters;
  List.iter
    (fun p -> add "<li>target filter: <code>%s</code></li>" (escape (Predicate.to_sql p)))
    m.Mapping.target_filters;
  add "</ul>";

  add "<h2>Sufficient illustration (%d of %d data associations)</h2>"
    (List.length ill) (List.length universe);
  let headers =
    Array.to_list (Schema.attrs scheme) |> List.map Attr.to_string
  in
  let badges =
    List.map
      (fun e -> (Coverage.label ?short (Example.coverage e), e.Example.positive))
      ill
  in
  add "%s"
    (table ~badges ~headers (List.map (fun e -> e.Example.assoc.Assoc.tuple) ill));

  add "<h2>Induced target tuples</h2>%s"
    (table ~badges ~headers:m.Mapping.target_cols
       (List.map (fun e -> e.Example.target_tuple) ill));

  add "<h2>Target view (WYSIWYG)</h2>%s"
    (relation_table (Mapping_eval.target_view ctx m));

  add "<h2>Generated SQL</h2><pre>%s</pre>"
    (escape
       (if Outerjoin_plan.is_tree m.Mapping.graph then
          let root =
            Option.value root ~default:(List.hd (Qgraph.aliases m.Mapping.graph))
          in
          Mapping_sql.outer_join ~root m
        else Mapping_sql.canonical m));
  add "</body></html>";
  Buffer.contents b
