open Relational
open Fulldisj
module Qgraph = Querygraph.Qgraph
module Subgraphs = Querygraph.Subgraphs

let select_items (m : Mapping.t) =
  List.map
    (fun col ->
      match Mapping.correspondence_for m col with
      | Some c -> Correspondence.to_sql c
      | None -> Printf.sprintf "NULL as %s" col)
    m.Mapping.target_cols

let where_clause preds =
  match preds with
  | [] -> ""
  | ps -> "\nwhere " ^ String.concat "\n  and " (List.map Predicate.to_sql ps)

let canonical (m : Mapping.t) =
  let g = m.Mapping.graph in
  let categories =
    Subgraphs.connected_node_sets g
    |> List.map (fun aliases -> "F({" ^ String.concat ", " aliases ^ "})")
  in
  let node_sql n =
    if String.equal n.Qgraph.alias n.Qgraph.base then n.Qgraph.base
    else Printf.sprintf "%s as %s" n.Qgraph.base n.Qgraph.alias
  in
  let edges_sql =
    Qgraph.edges g
    |> List.map (fun e -> Predicate.to_sql e.Qgraph.pred)
    |> String.concat "; "
  in
  Printf.sprintf
    "select * from (\n\
    \  select %s\n\
    \  from D(G)%s\n\
     ) %s%s\n\
     -- G: nodes {%s}; edges {%s}\n\
     -- D(G) = %s (minimum union of the full data associations of every\n\
     -- induced connected subgraph of G)"
    (String.concat ",\n         " (select_items m))
    (match m.Mapping.source_filters with
    | [] -> ""
    | ps ->
        "\n  where " ^ String.concat "\n    and " (List.map Predicate.to_sql ps))
    m.Mapping.target
    (where_clause m.Mapping.target_filters)
    (String.concat ", " (List.map node_sql (Qgraph.nodes g)))
    edges_sql
    (String.concat " (+) " categories)

(* Substitute target columns by their correspondence expressions. *)
let pullback_expr (m : Mapping.t) =
  let rec sub (e : Expr.t) =
    match e with
    | Expr.Col a when String.equal a.Attr.rel m.Mapping.target -> (
        match Mapping.correspondence_for m a.Attr.name with
        | Some { Correspondence.fn = Correspondence.Of_expr e'; _ } -> e'
        | Some { Correspondence.fn = Correspondence.Custom _; _ } | None ->
            Expr.Const Value.Null)
    | Expr.Col _ | Expr.Const _ -> e
    | Expr.Add (a, b) -> Expr.Add (sub a, sub b)
    | Expr.Sub (a, b) -> Expr.Sub (sub a, sub b)
    | Expr.Mul (a, b) -> Expr.Mul (sub a, sub b)
    | Expr.Concat (a, b) -> Expr.Concat (sub a, sub b)
    | Expr.Coalesce (a, b) -> Expr.Coalesce (sub a, sub b)
  in
  sub

let pullback_target_filters (m : Mapping.t) =
  let sub_expr = pullback_expr m in
  let rec sub (p : Predicate.t) =
    match p with
    | Predicate.True | Predicate.False -> p
    | Predicate.Cmp (op, a, b) -> Predicate.Cmp (op, sub_expr a, sub_expr b)
    | Predicate.And (a, b) -> Predicate.And (sub a, sub b)
    | Predicate.Or (a, b) -> Predicate.Or (sub a, sub b)
    | Predicate.Not a -> Predicate.Not (sub a)
    | Predicate.Is_null e -> Predicate.Is_null (sub_expr e)
    | Predicate.Is_not_null e -> Predicate.Is_not_null (sub_expr e)
  in
  List.map sub m.Mapping.target_filters

(* Aliases made required by a pulled-back [x is not null] filter. *)
let required_aliases (m : Mapping.t) =
  pullback_target_filters m
  |> List.concat_map (function
       | Predicate.Is_not_null (Expr.Col a) -> [ a.Attr.rel ]
       | _ -> [])
  |> List.sort_uniq String.compare

let bfs_order g root =
  let rec bfs visited queue acc =
    match queue with
    | [] -> List.rev acc
    | a :: rest ->
        if List.mem a visited then bfs visited rest acc
        else
          let next =
            Qgraph.neighbours g a |> List.filter (fun n -> not (List.mem n visited))
          in
          bfs (a :: visited) (rest @ next) (a :: acc)
  in
  bfs [] [ root ] []

let outer_join ~root (m : Mapping.t) =
  let g = m.Mapping.graph in
  if not (Outerjoin_plan.is_tree g) then
    invalid_arg "Mapping_sql.outer_join: query graph is not a tree";
  if not (Qgraph.mem_node g root) then
    invalid_arg ("Mapping_sql.outer_join: unknown root " ^ root);
  let required = required_aliases m in
  let order = bfs_order g root in
  let node_sql alias =
    let base = Qgraph.base_of g alias in
    if String.equal alias base then base else Printf.sprintf "%s %s" base alias
  in
  let joins =
    match order with
    | [] -> assert false
    | first :: rest ->
        let earlier = Hashtbl.create 8 in
        Hashtbl.add earlier first ();
        node_sql first
        :: List.map
             (fun alias ->
               (* In a tree, exactly one neighbour precedes [alias] in BFS
                  order: its parent. *)
               let parent = Qgraph.neighbours g alias |> List.find (Hashtbl.mem earlier) in
               let e = Option.get (Qgraph.find_edge g alias parent) in
               Hashtbl.add earlier alias ();
               let jt = if List.mem alias required then "join" else "left join" in
               Printf.sprintf "%s %s on %s" jt (node_sql alias)
                 (Predicate.to_sql e.Qgraph.pred))
             rest
  in
  let filters = m.Mapping.source_filters @ pullback_target_filters m in
  Printf.sprintf "select %s\nfrom %s%s"
    (String.concat ",\n       " (select_items m))
    (String.concat "\n  " joins)
    (where_clause filters)

let rooted_equivalent ctx ~root (m : Mapping.t) =
  let reference = Mapping_eval.eval ctx m in
  let fd =
    Outerjoin_plan.rooted (Engine.Eval_ctx.source ctx) ~root m.Mapping.graph
  in
  let tr = Mapping_eval.transform fd m in
  let src_ok =
    let fs =
      List.map
        (Predicate.compile fd.Full_disjunction.scheme)
        m.Mapping.source_filters
    in
    fun tuple -> List.for_all (fun f -> f tuple) fs
  in
  let tgt_ok =
    let schema = Mapping.target_schema m in
    let fs = List.map (Predicate.compile schema) m.Mapping.target_filters in
    fun tuple -> List.for_all (fun f -> f tuple) fs
  in
  let rooted_result =
    Relation.create ~allow_all_null:true m.Mapping.target (Mapping.target_schema m)
      (List.filter_map
         (fun (a : Assoc.t) ->
           if src_ok a.Assoc.tuple then
             let t = tr a.Assoc.tuple in
             if tgt_ok t then Some t else None
           else None)
         fd.Full_disjunction.associations)
  in
  Relation.equal_contents reference rooted_result
