(** Self-contained HTML report of a mapping — the shareable artifact of a
    refinement session: the query graph, correspondences and filters, the
    sufficient illustration (coverage/polarity tags as row badges), the
    WYSIWYG target view, and the generated SQL. *)

open Relational

(** [table ?badges ~headers rows] — one HTML table.  When [badges] is
    shorter than [rows], trailing rows render with an empty badge cell
    rather than failing. *)
val table :
  ?badges:(string * bool) list ->
  headers:string list ->
  Tuple.t list ->
  string

(** [page ctx m] — a complete HTML document.  [title] defaults to the
    target relation's name; [short] abbreviates coverage tags; [root]
    (default: first alias) selects the outer-join SQL root when the graph
    is a tree — for non-tree graphs the canonical form is shown instead. *)
val page :
  ?title:string ->
  ?short:(string -> string option) ->
  ?root:string ->
  Engine.Eval_ctx.t ->
  Mapping.t ->
  string
