open Relational

module Eval_ctx = Engine.Eval_ctx
module Eval_cache = Engine.Eval_cache
module Graph_key = Engine.Graph_key
module Correspondence = Correspondence
module Mapping = Mapping
module Mapping_eval = Mapping_eval
module Mapping_sql = Mapping_sql
module Example = Example
module Illustration = Illustration
module Sufficiency = Sufficiency
module Focus = Focus
module Op_trim = Op_trim
module Op_example = Op_example
module Op_correspondence = Op_correspondence
module Op_walk = Op_walk
module Op_chase = Op_chase
module Evolution = Evolution
module Workspace = Workspace
module Reuse = Reuse
module Target = Target
module Suggest = Suggest
module Session = Session
module Project = Project
module Explain = Explain
module Differentiate = Differentiate
module Interpretation = Interpretation
module Script = Script
module Target_constraints = Target_constraints
module Sampling = Sampling
module Mapping_io = Mapping_io
module Mapping_analysis = Mapping_analysis
module Schema_project = Schema_project
module Report_html = Report_html

let knowledge_base ?(mine = false) db =
  let kb = Schemakb.Kb.of_database db in
  if mine then Schemakb.Kb.add_mined kb (Schemakb.Mine.inclusion_dependencies db)
  else kb

let initial_mapping ~source ~target ~target_cols =
  Mapping.make
    ~graph:(Querygraph.Qgraph.singleton ~alias:source ~base:source)
    ~target ~target_cols ()

let context ?mine ?algorithm ?no_cache db =
  Engine.Eval_ctx.create ?algorithm ?no_cache ~kb:(knowledge_base ?mine db) db

let illustrate ctx (m : Mapping.t) =
  Obs.with_span Obs.Names.sp_illustrate (fun () ->
      let universe = Mapping_eval.examples ctx m in
      Sufficiency.select
        ?pool:(Engine.Eval_ctx.pool ctx)
        ~universe ~target_cols:m.Mapping.target_cols ())

let corr_identity target_col src_rel src_col =
  Correspondence.identity target_col (Attr.make src_rel src_col)
