(** Target assembly (Section 3 / 6.2): a target relation is populated by
    the union of several mappings' results — "portions of a target relation
    are computed by separate queries.  The results of these queries are
    then combined". *)

open Relational

(** Distinct union of the mappings' results.  All mappings must target the
    same relation with the same columns. *)
val assemble : Engine.Eval_ctx.t -> Mapping.t list -> Relation.t

(** Variant that additionally removes strictly subsumed target tuples —
    useful when complementary mappings (Example 6.1) can produce a padded
    and an extended version of the same kid. *)
val assemble_min : Engine.Eval_ctx.t -> Mapping.t list -> Relation.t
