(** Clio — data-driven understanding and refinement of schema mappings.

    This is the library's front door.  It re-exports the building blocks
    and offers a compact session API for the workflow of the paper:

    + load a source {!Relational.Database.t} and build a {!Schemakb.Kb.t}
      (declared foreign keys, optionally enriched by mining);
    + start a {!Workspace.t} from an initial mapping (often a single-node
      graph and a couple of identity correspondences);
    + iterate: look at the sufficient {!Illustration.t}, then apply
      operators — {!add_correspondence}, {!data_walk}, {!data_chase},
      {!Op_trim} — choosing among alternatives in the workspace;
    + read the generated SQL ({!Mapping_sql}) and the WYSIWYG target view.

    See [examples/quickstart.ml] for a complete tour. *)

open Relational

(** The memoized evaluation engine (re-exported from [lib/engine]): every
    operator evaluates through an {!Eval_ctx.t}, whose versioned cache
    memoizes F(J) and D(G) across the interactive loop. *)
module Eval_ctx = Engine.Eval_ctx

module Eval_cache = Engine.Eval_cache
module Graph_key = Engine.Graph_key
module Correspondence = Correspondence
module Mapping = Mapping
module Mapping_eval = Mapping_eval
module Mapping_sql = Mapping_sql
module Example = Example
module Illustration = Illustration
module Sufficiency = Sufficiency
module Focus = Focus
module Op_trim = Op_trim
module Op_example = Op_example
module Op_correspondence = Op_correspondence
module Op_walk = Op_walk
module Op_chase = Op_chase
module Evolution = Evolution
module Workspace = Workspace
module Reuse = Reuse
module Target = Target
module Suggest = Suggest
module Session = Session
module Project = Project
module Explain = Explain
module Differentiate = Differentiate
module Interpretation = Interpretation
module Script = Script
module Target_constraints = Target_constraints
module Sampling = Sampling
module Mapping_io = Mapping_io
module Mapping_analysis = Mapping_analysis
module Schema_project = Schema_project
module Report_html = Report_html

(** Build a knowledge base from declared FKs, optionally adding mined
    inclusion dependencies ([mine] default [false]). *)
val knowledge_base : ?mine:bool -> Database.t -> Schemakb.Kb.t

(** A one-node mapping: start exploring from one source relation. *)
val initial_mapping :
  source:string -> target:string -> target_cols:string list -> Mapping.t

(** One-call context setup: [context db] = a caching {!Eval_ctx.t} over
    [db] with {!knowledge_base}[ ?mine db] attached. *)
val context :
  ?mine:bool ->
  ?algorithm:Eval_ctx.algorithm ->
  ?no_cache:bool ->
  Database.t ->
  Eval_ctx.t

(** The mapping's universe of examples and a fresh sufficient illustration. *)
val illustrate : Eval_ctx.t -> Mapping.t -> Illustration.t

(** Shorthands for common correspondences. *)
val corr_identity : string -> string -> string -> Correspondence.t
(** [corr_identity target_col src_rel src_col]. *)
