module Qgraph = Querygraph.Qgraph
module Kb = Schemakb.Kb

type alternative = { mapping : Mapping.t; description : string }

type outcome =
  | Updated of Mapping.t
  | Alternatives of alternative list
  | New_mapping of outcome

(* One partial linking state while folding walks over the missing
   relations: the extended mapping, the alias each missing name was bound
   to, and the accumulated human-readable path description. *)
type partial = {
  p_mapping : Mapping.t;
  renames : (string * string) list;
  p_descr : string list;
}

(* A correspondence may reference a relation copy by the paper's naming
   convention ("Parents2"): resolve such a name to the base relation the KB
   knows, so the walk has a real goal. *)
let base_of_name ~kb name =
  let known n =
    Kb.pairs kb
    |> List.exists (fun p -> String.equal p.Kb.r1 n || String.equal p.Kb.r2 n)
  in
  if known name then name
  else
    let stripped =
      let n = String.length name in
      let rec start i = if i > 0 && name.[i - 1] >= '0' && name.[i - 1] <= '9' then start (i - 1) else i in
      String.sub name 0 (start n)
    in
    if String.length stripped > 0 && known stripped then stripped else name

let link_missing ~kb ?max_len ?(beam = 6) (m : Mapping.t) missing =
  List.fold_left
    (fun partials name ->
      let goal = base_of_name ~kb name in
      List.concat_map
        (fun p ->
          Op_walk.walk_alternatives_any_start ~kb p.p_mapping ~goal ?max_len ()
          |> List.filteri (fun i _ -> i < beam)
          |> List.map (fun (w : Op_walk.alternative) ->
                 {
                   p_mapping = w.Op_walk.mapping;
                   renames = (name, w.Op_walk.new_alias) :: p.renames;
                   p_descr = p.p_descr @ [ w.Op_walk.description ];
                 }))
        partials)
    [ { p_mapping = m; renames = []; p_descr = [] } ]
    missing

let rec add ~kb ?max_len (m : Mapping.t) (corr : Correspondence.t) =
  match Mapping.correspondence_for m corr.Correspondence.target with
  | Some existing when existing <> corr ->
      (* A different way of computing an already-mapped column: spawn a new
         mapping by reuse and add there (Example 6.2). *)
      let base = Reuse.derive_for m ~target_col:corr.Correspondence.target in
      New_mapping (add ~kb ?max_len base corr)
  | _ -> (
      let missing =
        Correspondence.source_rels corr
        |> List.filter (fun r -> not (Qgraph.mem_node m.Mapping.graph r))
      in
      match missing with
      | [] -> Updated (Mapping.set_correspondence m corr)
      | missing ->
          let partials = link_missing ~kb ?max_len m missing in
          let alts =
            List.filter_map
              (fun p ->
                let corr' =
                  List.fold_left
                    (fun c (rel, alias) ->
                      if String.equal rel alias then c
                      else Correspondence.rename_rel c ~from:rel ~into:alias)
                    corr p.renames
                in
                match Mapping.set_correspondence p.p_mapping corr' with
                | m' ->
                    Some { mapping = m'; description = String.concat "; " p.p_descr }
                | exception Invalid_argument _ -> None)
              partials
          in
          (* Different walk orders can build the same graph; dedupe. *)
          let deduped =
            List.fold_left
              (fun acc alt ->
                if
                  List.exists
                    (fun a ->
                      Qgraph.equal a.mapping.Mapping.graph alt.mapping.Mapping.graph)
                    acc
                then acc
                else acc @ [ alt ])
              [] alts
          in
          let ranked =
            Schemakb.Rank.order ~kb ~old:m.Mapping.graph
              (List.map (fun a -> a.mapping.Mapping.graph) deduped)
          in
          Alternatives
            (List.map
               (fun g ->
                 List.find
                   (fun a -> Qgraph.equal a.mapping.Mapping.graph g)
                   deduped)
               ranked))
