open Relational
open Fulldisj

let continues ~old_scheme ~new_scheme old_e new_e =
  let positions =
    Array.to_list (Schema.attrs old_scheme) |> List.map (Schema.index new_scheme)
  in
  let proj = Tuple.project new_e.Example.assoc.Assoc.tuple positions in
  Tuple.subsumes proj old_e.Example.assoc.Assoc.tuple

let continuations ~old_scheme ~new_scheme old_e candidates =
  List.filter (continues ~old_scheme ~new_scheme old_e) candidates

let schemes ctx (old_m : Mapping.t) (new_m : Mapping.t) =
  let lookup = Engine.Eval_ctx.lookup ctx in
  ( Querygraph.Qgraph.scheme ~lookup old_m.Mapping.graph,
    Querygraph.Qgraph.scheme ~lookup new_m.Mapping.graph )

let evolve ctx ~old_mapping ~old_illustration (new_m : Mapping.t) =
  let old_scheme, new_scheme = schemes ctx old_mapping new_m in
  let universe = Mapping_eval.examples ctx new_m in
  let seed =
    List.filter_map
      (fun old_e ->
        match continuations ~old_scheme ~new_scheme old_e universe with
        | [] -> None
        | c :: _ -> Some c)
      old_illustration
  in
  (* An old example can be continued by the same new example; dedup seeds. *)
  let seed =
    List.fold_left
      (fun acc e -> if Illustration.mem e acc then acc else acc @ [ e ])
      [] seed
  in
  Sufficiency.select
    ?pool:(Engine.Eval_ctx.pool ctx)
    ~seed ~universe ~target_cols:new_m.Mapping.target_cols ()

let is_continuous ctx ~old_mapping ~old_illustration ~new_mapping illustration =
  let old_scheme, new_scheme = schemes ctx old_mapping new_mapping in
  let universe = Mapping_eval.examples ctx new_mapping in
  List.for_all
    (fun old_e ->
      match continuations ~old_scheme ~new_scheme old_e universe with
      | [] -> true
      | _ ->
          List.exists
            (fun e ->
              Illustration.mem e illustration
              && continues ~old_scheme ~new_scheme old_e e)
            universe)
    old_illustration
