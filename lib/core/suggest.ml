module Qgraph = Querygraph.Qgraph

type suggestion = { graph : Qgraph.t; description : string }

type partial = { graph_ : Qgraph.t; descr : string list }

let connection_graphs ~kb ?max_len ?(beam = 6) rels =
  match List.sort_uniq String.compare rels with
  | [] -> invalid_arg "Suggest.connection_graphs: no relations"
  | first :: rest ->
      let start = Qgraph.singleton ~alias:first ~base:first in
      let partials =
        List.fold_left
          (fun partials rel ->
            List.concat_map
              (fun p ->
                if
                  (* Already reachable under its own name? Then keep as is;
                     otherwise enumerate walks to it. *)
                  Qgraph.nodes p.graph_
                  |> List.exists (fun n -> String.equal n.Qgraph.base rel)
                then [ p ]
                else
                  let m =
                    Mapping.make ~graph:p.graph_ ~target:"_suggest" ~target_cols:[] ()
                  in
                  Op_walk.walk_alternatives_any_start ~kb m ~goal:rel ?max_len ()
                  |> List.filteri (fun i _ -> i < beam)
                  |> List.map (fun (w : Op_walk.alternative) ->
                         {
                           graph_ = w.Op_walk.mapping.Mapping.graph;
                           descr = p.descr @ [ w.Op_walk.description ];
                         }))
              partials)
          [ { graph_ = start; descr = [] } ]
          rest
      in
      let deduped =
        List.fold_left
          (fun acc p ->
            if List.exists (fun q -> Qgraph.equal q.graph_ p.graph_) acc then acc
            else acc @ [ p ])
          [] partials
      in
      let ranked =
        Schemakb.Rank.order ~kb ~old:start (List.map (fun p -> p.graph_) deduped)
      in
      List.map
        (fun g ->
          let p = List.find (fun q -> Qgraph.equal q.graph_ g) deduped in
          {
            graph = g;
            description =
              (if p.descr = [] then first else String.concat "; " p.descr);
          })
        ranked

let mappings_for ~kb ?max_len ~target ~target_cols corrs =
  let rels = List.concat_map Correspondence.source_rels corrs in
  connection_graphs ~kb ?max_len rels
  |> List.filter_map (fun s ->
         (* Correspondences reference base names; suggestions keep the
            first occurrence under its own name, so installation succeeds
            unless a correspondence needs a renamed copy — those
            suggestions are skipped (the walk-based Op_correspondence
            handles renames when adding one correspondence at a time). *)
         match
           List.fold_left Mapping.set_correspondence
             (Mapping.make ~graph:s.graph ~target ~target_cols ())
             corrs
         with
         | m -> Some (m, s.description)
         | exception Invalid_argument _ -> None)
