(** Mapping an entire target schema (Section 6): several target relations,
    each populated by its own set of accepted mappings, with target-schema
    constraints (including foreign keys {e between} target relations)
    validated on the materialized instance.

    This is the top of the tool's object hierarchy:
    {!Workspace}/{!Session} manage one mapping; {!Project} manages the
    mappings of one target relation; a schema project manages all target
    relations and answers "is the target instance I would produce
    consistent and complete?". *)

open Relational

type t

val create : ?constraints:Integrity.t list -> unit -> t

(** Declare a target relation.  Raises on duplicates. *)
val add_target : t -> target:string -> cols:string list -> t

val targets : t -> string list

(** The per-relation project.  Raises [Not_found]. *)
val project : t -> string -> Project.t

(** Accept a mapping into its target's project.  Raises [Not_found] if the
    target was not declared. *)
val accept : t -> Mapping.t -> t

(** Materialize every target relation (distinct union of accepted
    mappings; [minimal] removes subsumed rows) into a target database
    carrying the declared constraints. *)
val materialize : ?minimal:bool -> Engine.Eval_ctx.t -> t -> Database.t

(** Constraint violations of the materialized instance — including
    cross-relation target FKs. *)
val check : ?minimal:bool -> Engine.Eval_ctx.t -> t -> Integrity.violation list

(** Completeness of every target relation (see {!Project.completeness}). *)
val report : ?minimal:bool -> Engine.Eval_ctx.t -> t -> string
