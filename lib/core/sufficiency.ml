open Relational
open Fulldisj

type requirement =
  | Cover of Coverage.t
  | Polarity of Coverage.t * bool
  | Attr_null of Coverage.t * string * bool

let pp_requirement ppf = function
  | Cover c -> Format.fprintf ppf "coverage %a" Coverage.pp c
  | Polarity (c, pos) ->
      Format.fprintf ppf "%s example at %a" (if pos then "positive" else "negative")
        Coverage.pp c
  | Attr_null (c, b, null) ->
      Format.fprintf ppf "positive example at %a with %s %s" Coverage.pp c b
        (if null then "null" else "non-null")

let target_position target_cols b =
  let rec go i = function
    | [] -> raise Not_found
    | c :: rest -> if String.equal c b then i else go (i + 1) rest
  in
  go 0 target_cols

let satisfies ~target_cols e = function
  | Cover c -> Coverage.equal (Example.coverage e) c
  | Polarity (c, pos) ->
      Coverage.equal (Example.coverage e) c && Bool.equal e.Example.positive pos
  | Attr_null (c, b, null) ->
      Coverage.equal (Example.coverage e) c
      && e.Example.positive
      && Bool.equal (Value.is_null e.Example.target_tuple.(target_position target_cols b)) null

let distinct_coverages universe =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun e ->
      let key = Coverage.to_list (Example.coverage e) in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        Some (Example.coverage e)
      end)
    universe

let graph_requirements ~universe =
  List.map (fun c -> Cover c) (distinct_coverages universe)

let satisfiable ~target_cols universe req =
  List.exists (fun e -> satisfies ~target_cols e req) universe

let filter_requirements ~universe =
  distinct_coverages universe
  |> List.concat_map (fun c ->
         List.filter
           (satisfiable ~target_cols:[] universe)
           [ Polarity (c, true); Polarity (c, false) ])

let correspondence_requirements ~universe ~target_cols =
  distinct_coverages universe
  |> List.concat_map (fun c ->
         List.concat_map
           (fun b ->
              List.filter
                (satisfiable ~target_cols universe)
                [ Attr_null (c, b, false); Attr_null (c, b, true) ])
           target_cols)

let requirements ~universe ~target_cols =
  graph_requirements ~universe
  @ filter_requirements ~universe
  @ correspondence_requirements ~universe ~target_cols

let missing ~universe ~target_cols illustration =
  requirements ~universe ~target_cols
  |> List.filter (fun req ->
         not (List.exists (fun e -> satisfies ~target_cols e req) illustration))

let check reqs ~target_cols illustration =
  List.for_all
    (fun req -> List.exists (fun e -> satisfies ~target_cols e req) illustration)
    reqs

let is_sufficient_graph ~universe ~target_cols illustration =
  check (graph_requirements ~universe) ~target_cols illustration

let is_sufficient_filters ~universe ~target_cols illustration =
  check (filter_requirements ~universe) ~target_cols illustration

let is_sufficient_correspondences ~universe ~target_cols illustration =
  check (correspondence_requirements ~universe ~target_cols) ~target_cols illustration

let is_sufficient ~universe ~target_cols illustration =
  check (requirements ~universe ~target_cols) ~target_cols illustration

let select_greedy ?pool ~seed ~universe ~target_cols () =
  Obs.with_span Obs.Names.sp_illustration_select @@ fun () ->
  let reqs = requirements ~universe ~target_cols in
  let unmet =
    List.filter
      (fun req -> not (List.exists (fun e -> satisfies ~target_cols e req) seed))
      reqs
  in
  (* Greedy set cover: repeatedly take the example satisfying the most
     still-unmet requirements. *)
  let rec cover chosen unmet =
    if unmet = [] then List.rev chosen
    else begin
      if Obs.enabled () then
        (* Each greedy round scores every example in the universe. *)
        Obs.add Obs.Names.illustration_candidates (List.length universe);
      let gain e = List.length (List.filter (satisfies ~target_cols e) unmet) in
      (* Candidate scoring fans out; the argmax stays a sequential fold over
         the scored list, so ties break on the same (first) example as the
         sequential path. *)
      let scored = Par.map ?pool (fun e -> (e, gain e)) universe in
      let best =
        List.fold_left
          (fun acc (e, g) ->
            match acc with
            | Some (_, bg) when bg >= g -> acc
            | _ when g = 0 -> acc
            | _ -> Some (e, g))
          None scored
      in
      match best with
      | None ->
          (* Unsatisfiable requirements cannot arise: they were derived from
             the universe itself. *)
          assert false
      | Some (e, _) ->
          cover (e :: chosen)
            (List.filter (fun req -> not (satisfies ~target_cols e req)) unmet)
    end
  in
  let chosen = seed @ cover [] unmet in
  if Obs.enabled () then
    Obs.add Obs.Names.illustration_selected (List.length chosen);
  chosen

let select ?pool ?(seed = []) ~universe ~target_cols () =
  select_greedy ?pool ~seed ~universe ~target_cols ()

(* Branch and bound over examples ordered by decreasing requirement gain.
   At each node: if every requirement is met, record; else pick the first
   unmet requirement and branch on each example satisfying it. *)
let select_exact ?(max_universe = 64) ~universe ~target_cols () =
  let greedy = select_greedy ~seed:[] ~universe ~target_cols () in
  if List.length universe > max_universe then greedy
  else begin
    let reqs = Array.of_list (requirements ~universe ~target_cols) in
    let n_reqs = Array.length reqs in
    let best = ref (Array.of_list greedy) in
    let rec branch chosen met =
      if List.length chosen >= Array.length !best then ()
      else
        match
          (* first unmet requirement *)
          let rec find i = if i >= n_reqs then None else if met.(i) then find (i + 1) else Some i in
          find 0
        with
        | None -> best := Array.of_list (List.rev chosen)
        | Some i ->
            List.iter
              (fun e ->
                if satisfies ~target_cols e reqs.(i) then begin
                  let newly =
                    Array.init n_reqs (fun j ->
                        met.(j) || satisfies ~target_cols e reqs.(j))
                  in
                  branch (e :: chosen) newly
                end)
              universe
    in
    branch [] (Array.make n_reqs false);
    Array.to_list !best
  end
