open Relational

type change = {
  mapping : Mapping.t;
  became_negative : Example.t list;
  became_positive : Example.t list;
}

(* Examples pair up across the two mappings by association (the graph is
   unchanged, so D(G) is identical). *)
let diff ctx old_m new_m =
  let old_exs = Mapping_eval.examples ctx old_m in
  let new_exs = Mapping_eval.examples ctx new_m in
  let old_polarity a =
    List.find_opt (fun e -> Fulldisj.Assoc.equal e.Example.assoc a) old_exs
    |> Option.map Example.is_positive
  in
  let became_negative =
    List.filter
      (fun e ->
        Example.is_negative e && old_polarity e.Example.assoc = Some true)
      new_exs
  in
  let became_positive =
    List.filter
      (fun e ->
        Example.is_positive e && old_polarity e.Example.assoc = Some false)
      new_exs
  in
  { mapping = new_m; became_negative; became_positive }

let add_source_filter ctx m p = diff ctx m (Mapping.add_source_filter m p)
let add_target_filter ctx m p = diff ctx m (Mapping.add_target_filter m p)
let remove_source_filter ctx m p = diff ctx m (Mapping.remove_source_filter m p)
let remove_target_filter ctx m p = diff ctx m (Mapping.remove_target_filter m p)

let require_target_column ctx m col =
  add_target_filter ctx m (Predicate.Is_not_null (Expr.col m.Mapping.target col))

