open Relational
open Fulldisj
module Qgraph = Querygraph.Qgraph

type side = Only_left | Only_right
type target_diff = { tuple : Tuple.t; side : side }

let target_diff ctx (m1 : Mapping.t) (m2 : Mapping.t) =
  let r1 = Mapping_eval.eval ctx m1 and r2 = Mapping_eval.eval ctx m2 in
  if not (Schema.equal (Relation.schema r1) (Relation.schema r2)) then
    invalid_arg "Differentiate.target_diff: target schemas differ";
  let only_left =
    Relation.tuples r1
    |> List.filter (fun t -> not (Relation.mem r2 t))
    |> List.map (fun tuple -> { tuple; side = Only_left })
  in
  let only_right =
    Relation.tuples r2
    |> List.filter (fun t -> not (Relation.mem r1 t))
    |> List.map (fun tuple -> { tuple; side = Only_right })
  in
  only_left @ only_right

let equivalent_on ctx m1 m2 = target_diff ctx m1 m2 = []

type contrast = {
  focus_tuple : Tuple.t;
  left_targets : Tuple.t list;
  right_targets : Tuple.t list;
}

(* Positive target tuples of [m] grouped by the projection of their
   association onto [rel]. *)
let targets_by_focus ctx (m : Mapping.t) rel =
  let fd = Mapping_eval.data_associations ctx m in
  let scheme = fd.Full_disjunction.scheme in
  let positions = Schema.positions_of_rel scheme rel in
  if positions = [] then
    invalid_arg ("Differentiate.distinguishing: " ^ rel ^ " not in mapping");
  let groups = Hashtbl.create 32 in
  List.iter
    (fun (e : Example.t) ->
      if e.Example.positive && Coverage.mem rel (Example.coverage e) then begin
        let key = Tuple.project e.Example.assoc.Assoc.tuple positions in
        let existing = Option.value (Hashtbl.find_opt groups key) ~default:[] in
        if not (List.exists (Tuple.equal e.Example.target_tuple) existing) then
          Hashtbl.replace groups key (existing @ [ e.Example.target_tuple ])
      end)
    (Mapping_eval.examples ctx m);
  groups

let distinguishing ctx ~rel (m1 : Mapping.t) (m2 : Mapping.t) =
  let g1 = targets_by_focus ctx m1 rel and g2 = targets_by_focus ctx m2 rel in
  let keys = Hashtbl.create 32 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) g1;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) g2;
  Hashtbl.fold
    (fun key () acc ->
      let left = Option.value (Hashtbl.find_opt g1 key) ~default:[] in
      let right = Option.value (Hashtbl.find_opt g2 key) ~default:[] in
      let same =
        List.length left = List.length right
        && List.for_all (fun t -> List.exists (Tuple.equal t) right) left
      in
      if same then acc
      else { focus_tuple = key; left_targets = left; right_targets = right } :: acc)
    keys []
  |> List.sort (fun a b -> Tuple.compare a.focus_tuple b.focus_tuple)

let render ~target_schema contrasts =
  let rows =
    List.concat_map
      (fun c ->
        let tag side t = (Printf.sprintf "%s %s" (Tuple.to_string c.focus_tuple) side, t) in
        List.map (tag "A") c.left_targets @ List.map (tag "B") c.right_targets)
      contrasts
  in
  Render.annotated ~qualified:false ~annot_header:"focus/alt" rows target_schema
