(** The data walk operator (Section 5.1).

    [walks(G, Q, R)] enumerates path query graphs G' from node Q of G to a
    {e new} node over base relation R, following Clio's join knowledge base.
    A step may travel along an existing edge of G (same label — the paper's
    second condition) or attach a fresh node; when a path needs a relation
    already in G under an incompatible join, a fresh copy (e.g. [Parents2])
    is introduced.  G is always an induced connected subgraph of each
    result, so existing categories keep their meaning.

    [DataWalk(M, Q, R)] lifts each G' to a mapping G ∪ G' inheriting all of
    M's correspondences and filters (Example 6.1). *)

module Qgraph = Querygraph.Qgraph

type alternative = {
  mapping : Mapping.t;
  extension : Qgraph.t;  (** the path graph G' *)
  new_alias : string;  (** the alias created for the end relation R *)
  description : string;  (** human-readable path, e.g. "Children -(C.mid = Parents2.ID)- Parents2" *)
}

(** Path graphs G' (each includes the start node).  [max_len] bounds the
    number of edges (default 3).  Raises [Invalid_argument] when [start] is
    not a node of [graph]. *)
val walks :
  kb:Schemakb.Kb.t ->
  graph:Qgraph.t ->
  start:string ->
  goal:string ->
  ?max_len:int ->
  unit ->
  Qgraph.t list

(** The operator: alternatives ranked by {!Schemakb.Rank}.  Uses the
    context's knowledge base. *)
val data_walk :
  Engine.Eval_ctx.t ->
  Mapping.t ->
  start:string ->
  goal:string ->
  ?max_len:int ->
  unit ->
  alternative list

(** Walk trying every node of the mapping's graph as the start. *)
val data_walk_any_start :
  Engine.Eval_ctx.t ->
  Mapping.t ->
  goal:string ->
  ?max_len:int ->
  unit ->
  alternative list

(** The kb-level enumeration core behind {!data_walk}: walks need only
    schema metadata, so callers that have no database in hand (suggestion
    and correspondence linking) enumerate directly from a
    {!Schemakb.Kb.t}. *)
val walk_alternatives :
  kb:Schemakb.Kb.t ->
  Mapping.t ->
  start:string ->
  goal:string ->
  ?max_len:int ->
  unit ->
  alternative list

val walk_alternatives_any_start :
  ?pool:Par.Pool.t ->
  kb:Schemakb.Kb.t ->
  Mapping.t ->
  goal:string ->
  ?max_len:int ->
  unit ->
  alternative list
