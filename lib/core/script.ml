open Relational
module Qgraph = Querygraph.Qgraph
module Eval_ctx = Engine.Eval_ctx

type outcome = { log : string list; mapping : Mapping.t option }

exception Script_error of { line : int; message : string }

(* Alternatives live in an array: [pick N] and the numbered listing are
   direct index accesses, not repeated [List.nth] walks. *)
type pending = { alternatives : (Mapping.t * string) array; what : string }

type state = {
  ctx : Eval_ctx.t;  (** one caching context for the whole session *)
  target : (string * string list) option;
  mapping : Mapping.t option;
  draft : Querygraph.Qgraph.t option;
      (** graph under construction via node/edge commands; folded into the
          mapping (with connectivity validation) at the next use *)
  history : Mapping.t list;  (** previous mappings, most recent first *)
  pending : pending option;
  log : string list;
}

let fail line fmt = Printf.ksprintf (fun message -> raise (Script_error { line; message })) fmt

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

(* "NAME(a, b, c)" *)
let parse_target_decl ln s =
  match String.index_opt s '(' with
  | None -> fail ln "target: expected NAME(col, ...)"
  | Some i ->
      let name = String.trim (String.sub s 0 i) in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let rest =
        match String.rindex_opt rest ')' with
        | Some j -> String.sub rest 0 j
        | None -> fail ln "target: missing closing parenthesis"
      in
      let cols = String.split_on_char ',' rest |> List.map String.trim in
      if name = "" || List.exists (fun c -> c = "") cols then
        fail ln "target: empty name or column";
      (name, cols)

(* Fold a node/edge draft into the mapping, validating connectivity. *)
let materialize ln st =
  match st.draft with
  | None -> st
  | Some g -> (
      match st.mapping with
      | Some m -> (
          match Mapping.with_graph m g with
          | m' -> { st with mapping = Some m'; draft = None }
          | exception Invalid_argument e -> fail ln "graph edits: %s" e)
      | None -> (
          match st.target with
          | None -> fail ln "declare the target before node/edge"
          | Some (target, target_cols) -> (
              match Mapping.make ~graph:g ~target ~target_cols () with
              | m -> { st with mapping = Some m; draft = None }
              | exception Invalid_argument e -> fail ln "graph edits: %s" e)))

(* Returns the (possibly materialized) state along with its mapping. *)
let need_mapping ln st =
  let st = materialize ln st in
  match st.mapping with
  | Some m -> (st, m)
  | None -> fail ln "no mapping yet (use target + source first)"

let no_pending ln st =
  match st.pending with
  | None -> ()
  | Some p -> fail ln "alternatives pending from %s: pick one first" p.what

let set_mapping st m =
  let history = match st.mapping with Some old -> old :: st.history | None -> st.history in
  { st with mapping = Some m; history; pending = None; draft = None }

(* Even a single alternative stays pending: scripts always [pick], so the
   reader sees every decision point. *)
let settle ln st what = function
  | [] -> fail ln "%s produced no alternatives" what
  | alternatives ->
      { st with pending = Some { alternatives = Array.of_list alternatives; what } }

let show st text = { st with log = st.log @ [ text ] }

let exec_show ln st args =
  let st, m = need_mapping ln st in
  match args with
  | [ "target" ] -> show st (Render.relation (Mapping_eval.target_view st.ctx m))
  | [ "illustration" ] ->
      let fd = Mapping_eval.data_associations st.ctx m in
      let universe = Mapping_eval.examples st.ctx m in
      let ill =
        Sufficiency.select
          ?pool:(Engine.Eval_ctx.pool st.ctx)
          ~universe ~target_cols:m.Mapping.target_cols ()
      in
      show st
        (Illustration.render ~scheme:fd.Fulldisj.Full_disjunction.scheme ill)
  | [ "mapping" ] -> show st (Format.asprintf "%a" Mapping.pp m)
  | [ "alternatives" ] -> (
      match st.pending with
      | None -> show st "(no pending alternatives)"
      | Some p ->
          show st
            (String.concat "\n"
               (Array.to_list
                  (Array.mapi
                     (fun i (_, d) -> Printf.sprintf "%d. %s" (i + 1) d)
                     p.alternatives))))
  | [ "sql"; root ] -> show st (Mapping_sql.outer_join ~root m)
  | [ "plan" ] ->
      let lookup = Eval_ctx.lookup st.ctx in
      let plan = Fulldisj.Plan.analyze ~lookup m.Mapping.graph in
      let required = Mapping_analysis.required_aliases m in
      let surviving = Mapping_analysis.possibly_positive_categories m in
      show st
        (String.concat "\n"
           [
             Fulldisj.Plan.render plan;
             Printf.sprintf "  required by target filters: %s"
               (if required = [] then "(none)" else String.concat ", " required);
             Printf.sprintf "  possibly-positive categories: %d of %d"
               (List.length surviving) plan.Fulldisj.Plan.categories;
           ])
  | _ ->
      fail ln
        "show: expected target | illustration | mapping | alternatives | plan | sql ROOT"

let exec_line st ln raw =
  let line = String.trim (strip_comment raw) in
  if line = "" then st
  else
    match split_words line with
    | "target" :: rest ->
        let name, cols = parse_target_decl ln (String.concat " " rest) in
        { st with target = Some (name, cols) }
    | [ "source"; rel ] -> (
        if not (Database.mem (Eval_ctx.db st.ctx) rel) then fail ln "unknown relation %s" rel;
        match st.target with
        | None -> fail ln "declare the target before source"
        | Some (target, target_cols) ->
            set_mapping st
              (Mapping.make
                 ~graph:(Qgraph.singleton ~alias:rel ~base:rel)
                 ~target ~target_cols ()))
    (* Power-user graph surgery (also the persistence format emitted by
       Mapping_io): node/edge commands accumulate a draft graph, which is
       validated (connectivity) at the next mapping-using command. *)
    | [ "node"; alias; base ] -> (
        no_pending ln st;
        if not (Database.mem (Eval_ctx.db st.ctx) base) then fail ln "unknown relation %s" base;
        let g =
          match (st.draft, st.mapping) with
          | Some g, _ -> g
          | None, Some m -> m.Mapping.graph
          | None, None -> Qgraph.empty
        in
        match Qgraph.add_node g ~alias ~base with
        | g -> { st with draft = Some g }
        | exception Invalid_argument e -> fail ln "node: %s" e)
    | "edge" :: a :: b :: rest -> (
        no_pending ln st;
        let g =
          match (st.draft, st.mapping) with
          | Some g, _ -> g
          | None, Some m -> m.Mapping.graph
          | None, None -> fail ln "edge: no nodes yet"
        in
        match Parse.predicate_opt (String.concat " " rest) with
        | None -> fail ln "edge: cannot parse join predicate"
        | Some pred -> (
            match Qgraph.add_edge g a b pred with
            | g -> { st with draft = Some g }
            | exception Invalid_argument e -> fail ln "edge: %s" e))
    | "corr" :: rest -> (
        no_pending ln st;
        let st, m = need_mapping ln st in
        let text = String.concat " " rest in
        match String.index_opt text '=' with
        | None -> fail ln "corr: expected COL = EXPR"
        | Some i ->
            let col = String.trim (String.sub text 0 i) in
            let expr_text = String.sub text (i + 1) (String.length text - i - 1) in
            let expr =
              try Parse.expr expr_text
              with Parse.Parse_error e -> fail ln "corr: %s" e
            in
            let corr = Correspondence.of_expr col expr in
            (match Op_correspondence.add ~kb:(Eval_ctx.kb st.ctx) m corr with
            | Op_correspondence.Updated m' -> set_mapping st m'
            | Op_correspondence.Alternatives alts ->
                settle ln st "corr"
                  (List.map
                     (fun (a : Op_correspondence.alternative) ->
                       (a.Op_correspondence.mapping, a.Op_correspondence.description))
                     alts)
            | Op_correspondence.New_mapping _ ->
                fail ln
                  "corr: %s is already mapped differently (a new mapping is needed; \
                   scripts handle one mapping at a time)"
                  col))
    | "walk" :: start :: goal :: rest -> (
        no_pending ln st;
        let st, m = need_mapping ln st in
        let max_len =
          match rest with
          | [] -> 2
          | [ n ] -> (
              match int_of_string_opt n with
              | Some v when v > 0 -> v
              | _ -> fail ln "walk: bad max length %s" n)
          | _ -> fail ln "walk: expected START GOAL [N]"
        in
        match Op_walk.data_walk st.ctx m ~start ~goal ~max_len () with
        | exception Invalid_argument e -> fail ln "walk: %s" e
        | alts ->
            settle ln st "walk"
              (List.map
                 (fun (a : Op_walk.alternative) ->
                   (a.Op_walk.mapping, a.Op_walk.description))
                 alts))
    | [ "chase"; attr_text; value_text ] -> (
        no_pending ln st;
        let st, m = need_mapping ln st in
        let attr =
          try Attr.of_string attr_text
          with Invalid_argument e -> fail ln "chase: %s" e
        in
        (* Try the literal interpretation first ("002" is usually a string
           key despite looking numeric), falling back to the parsed one. *)
        let value =
          let as_string = Value.String value_text in
          if Database.find_value (Eval_ctx.db st.ctx) as_string <> [] then as_string
          else Value.of_csv_cell value_text
        in
        match Op_chase.chase st.ctx m ~attr ~value with
        | exception Invalid_argument e -> fail ln "chase: %s" e
        | alts ->
            settle ln st "chase"
              (List.map
                 (fun (a : Op_chase.alternative) ->
                   (a.Op_chase.mapping, a.Op_chase.description))
                 alts))
    | [ "pick"; n ] -> (
        match st.pending with
        | None -> fail ln "pick: nothing pending"
        | Some p -> (
            match int_of_string_opt n with
            | Some i when i >= 1 && i <= Array.length p.alternatives ->
                set_mapping st (fst p.alternatives.(i - 1))
            | _ ->
                fail ln "pick: expected 1..%d" (Array.length p.alternatives)))
    | "sfilter" :: rest -> (
        no_pending ln st;
        let st, m = need_mapping ln st in
        match Parse.predicate_opt (String.concat " " rest) with
        | Some p -> set_mapping st (Mapping.add_source_filter m p)
        | None -> fail ln "sfilter: cannot parse predicate")
    | "tfilter" :: rest -> (
        no_pending ln st;
        let st, m = need_mapping ln st in
        match Parse.predicate_opt ~rel:m.Mapping.target (String.concat " " rest) with
        | Some p -> set_mapping st (Mapping.add_target_filter m p)
        | None -> fail ln "tfilter: cannot parse predicate")
    | [ "require"; col ] ->
        no_pending ln st;
        let st, m = need_mapping ln st in
        if not (List.mem col m.Mapping.target_cols) then
          fail ln "require: unknown target column %s" col;
        set_mapping st (Op_trim.require_target_column st.ctx m col).Op_trim.mapping
    | [ "undo" ] -> (
        match st.history with
        | [] -> fail ln "undo: nothing to undo"
        | prev :: rest -> { st with mapping = Some prev; history = rest; pending = None })
    | "show" :: args -> exec_show ln st args
    | cmd :: _ -> fail ln "unknown command %s" cmd
    | [] -> st

let run_ctx ctx text =
  let lines = String.split_on_char '\n' text in
  let st =
    List.fold_left
      (fun (st, ln) raw -> (exec_line st ln raw, ln + 1))
      ( { ctx; target = None; mapping = None; draft = None; history = []; pending = None; log = [] },
        1 )
      lines
    |> fst
  in
  let st = materialize 0 st in
  { log = st.log; mapping = st.mapping }

let run ~db ~kb text = run_ctx (Eval_ctx.create ~kb db) text

let run_result_ctx ctx text =
  try Ok (run_ctx ctx text) with
  | Script_error { line; message } -> Error (Printf.sprintf "line %d: %s" line message)
  | Parse.Parse_error e -> Error e

let run_result ~db ~kb text =
  try Ok (run ~db ~kb text) with
  | Script_error { line; message } -> Error (Printf.sprintf "line %d: %s" line message)
  | Parse.Parse_error e -> Error e

module Interactive = struct
  type nonrec t = state

  let start_ctx ctx =
    { ctx; target = None; mapping = None; draft = None; history = []; pending = None; log = [] }

  let start ~db ~kb = start_ctx (Eval_ctx.create ~kb db)

  let feed st line =
    (* Reuse the batch executor with a cleared log so the new output is
       exactly what this command printed. *)
    match exec_line { st with log = [] } 1 line with
    | st' -> Ok ({ st' with log = [] }, st'.log)
    | exception Script_error { message; _ } -> Error message
    | exception Parse.Parse_error e -> Error e

  let mapping st = st.mapping
end
