(** Managing large data volumes (Section 6): illustrations are computed
    over a small {e slice} of the source database instead of all of it.

    A slice is a sub-database built from a random probe of each relation,
    closed under join partners along the query graph's edges, plus one
    {e dangling witness} per edge side (a tuple with no partner in the full
    database), so that non-full coverage categories remain illustratable.
    Because a slice is closed under partners, every data association of the
    slice is a genuine data association of the full database — examples
    never lie; rare categories may be missed, which is the documented
    trade-off of sampling (the user can always re-sample with another
    seed or grow [per_relation]). *)

open Relational
module Qgraph = Querygraph.Qgraph

(** [slice db graph] — sub-database over the same relation names (only
    relations appearing as node bases are reduced; others pass through).
    [per_relation] bounds the initial probe per relation (default 20);
    partner closure may add more tuples.  Deterministic in [seed]. *)
val slice :
  ?seed:int -> ?per_relation:int -> Database.t -> Qgraph.t -> Database.t

(** A sufficient illustration of the mapping's examples {e over the
    slice}.  The returned universe/illustration pair lets callers check
    categories against expectations. *)
val illustrate_sampled :
  ?seed:int ->
  ?per_relation:int ->
  Engine.Eval_ctx.t ->
  Mapping.t ->
  Example.t list * Example.t list
(** (universe over the slice, sufficient illustration of it) *)

(** Every association computed over the slice also holds over the full
    database (soundness oracle used by tests). *)
val sound :
  Engine.Eval_ctx.t -> Mapping.t -> slice_universe:Example.t list -> bool
