(** Continuous evolution of illustrations (Section 5.3): when a mapping
    evolves, the new illustration should retain the data the user already
    knows — each old example is {e continued} by new examples that extend
    it, and only then is the illustration topped up for sufficiency.

    Continuation (our formalization, the paper defers to [17]): a new
    example (d', t') continues an old example (d, t) when d', projected
    onto the old mapping's scheme, subsumes d (agrees with every non-null
    field the user saw).  When the old graph is an induced connected
    subgraph of the new one, every old association has at least one
    continuation (tested as a property). *)

open Relational

(** [continues ~old_scheme ~new_scheme old_e new_e]. *)
val continues :
  old_scheme:Schema.t -> new_scheme:Schema.t -> Example.t -> Example.t -> bool

(** Continuations present in a list of candidate new examples. *)
val continuations :
  old_scheme:Schema.t ->
  new_scheme:Schema.t ->
  Example.t ->
  Example.t list ->
  Example.t list

(** Evolve an illustration onto a new mapping: one continuation per old
    example (when one exists), then greedy top-up to sufficiency. *)
val evolve :
  Engine.Eval_ctx.t ->
  old_mapping:Mapping.t ->
  old_illustration:Example.t list ->
  Mapping.t ->
  Example.t list

(** The continuity requirement: every old example that has a continuation
    among the new mapping's examples has one in the new illustration. *)
val is_continuous :
  Engine.Eval_ctx.t ->
  old_mapping:Mapping.t ->
  old_illustration:Example.t list ->
  new_mapping:Mapping.t ->
  Example.t list ->
  bool
