(** A mapping project: all the accepted mappings populating one target
    relation (Section 6.2 — "many mappings may need to be created to map an
    entire target schema"), with completeness reporting.

    Each mapping produces a subset of the target; the project's value is
    the union (or minimum union) of its mappings, and the coverage report
    tells the user which target columns are still unmapped or frequently
    null — the "how complete is the mapping" question of Section 4.2. *)

open Relational

type t

val create : target:string -> target_cols:string list -> t
val target : t -> string
val target_cols : t -> string list

(** Accept a mapping into the project.  Raises [Invalid_argument] if it
    targets a different relation or column list. *)
val accept : t -> Mapping.t -> t

(** Remove the [i]-th accepted mapping (0-based). *)
val retract : t -> int -> t

val mappings : t -> Mapping.t list

(** The assembled target: distinct union of all accepted mappings'
    results; with [minimal:true], strictly subsumed rows are removed. *)
val materialize : ?minimal:bool -> Engine.Eval_ctx.t -> t -> Relation.t

type column_report = {
  column : string;
  mapped_by : int;  (** how many accepted mappings have a correspondence *)
  non_null_rows : int;
  total_rows : int;
}

(** Per-column completeness of the materialized target. *)
val completeness : ?minimal:bool -> Engine.Eval_ctx.t -> t -> column_report list

val render_completeness : column_report list -> string
