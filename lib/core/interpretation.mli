(** Interpretations of a query graph (Section 3.2): "Clearly, one
    interpretation is as a join query.  However ... we may also want to
    interpret a query graph as an outer join query or as a combination".

    This module evaluates a mapping under the different interpretations and
    reports how the results differ — the machinery behind "subtle changes
    to the mapping, for example, changing a join from an inner join to an
    outer join, may dramatically change the target data ... In other cases,
    the same change may have no effect due to constraints that hold on the
    source schema." *)

open Relational

type t =
  | Inner_join  (** only full data associations F(G) *)
  | Rooted of string  (** associations covering the given node (left joins) *)
  | Covering of string list
      (** associations covering every listed node — the per-join
          inner/outer fine-tuning of Section 2 ("change this left outer
          join to an inner join" = add that node to the required set) *)
  | Full_disjunction  (** all of D(G) — the mapping default *)

val pp : Format.formatter -> t -> unit

(** Evaluate the mapping's query under an interpretation (its own filters
    still apply). *)
val eval : Engine.Eval_ctx.t -> Mapping.t -> t -> Relation.t

type comparison = {
  interpretation_a : t;
  interpretation_b : t;
  only_a : Tuple.t list;
  only_b : Tuple.t list;
}

(** Compare two interpretations of the same mapping. *)
val compare_under : Engine.Eval_ctx.t -> Mapping.t -> t -> t -> comparison

(** No difference on this database — e.g. turning the Children–Parents join
    inner is invisible when every child has a parent. *)
val no_effect : Engine.Eval_ctx.t -> Mapping.t -> t -> t -> bool

val render_comparison : target_schema:Schema.t -> comparison -> string
