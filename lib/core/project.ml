open Relational

type t = { target : string; target_cols : string list; mappings : Mapping.t list }

let create ~target ~target_cols = { target; target_cols; mappings = [] }
let target t = t.target
let target_cols t = t.target_cols

let accept t (m : Mapping.t) =
  if not (String.equal m.Mapping.target t.target) || m.Mapping.target_cols <> t.target_cols
  then invalid_arg "Project.accept: mapping targets a different relation";
  { t with mappings = t.mappings @ [ m ] }

let retract t i =
  if i < 0 || i >= List.length t.mappings then invalid_arg "Project.retract: bad index";
  { t with mappings = List.filteri (fun j _ -> j <> i) t.mappings }

let mappings t = t.mappings

let materialize ?(minimal = false) ctx t =
  match t.mappings with
  | [] ->
      Relation.create ~allow_all_null:true t.target
        (Schema.make t.target t.target_cols)
        []
  | ms -> if minimal then Target.assemble_min ctx ms else Target.assemble ctx ms

type column_report = {
  column : string;
  mapped_by : int;
  non_null_rows : int;
  total_rows : int;
}

let completeness ?minimal ctx t =
  let result = materialize ?minimal ctx t in
  let schema = Relation.schema result in
  let total_rows = Relation.cardinality result in
  List.map
    (fun col ->
      let i = Schema.index schema (Attr.make t.target col) in
      let non_null_rows =
        Relation.fold
          (fun acc tup -> if Value.is_null tup.(i) then acc else acc + 1)
          0 result
      in
      let mapped_by =
        List.length
          (List.filter
             (fun m -> Option.is_some (Mapping.correspondence_for m col))
             t.mappings)
      in
      { column = col; mapped_by; non_null_rows; total_rows })
    t.target_cols

let render_completeness reports =
  let header = [ "column"; "mapped by"; "non-null"; "rows"; "coverage" ] in
  let rows =
    List.map
      (fun r ->
        [
          r.column;
          string_of_int r.mapped_by;
          string_of_int r.non_null_rows;
          string_of_int r.total_rows;
          (if r.total_rows = 0 then "-"
           else
             Printf.sprintf "%.0f%%"
               (100. *. float_of_int r.non_null_rows /. float_of_int r.total_rows));
        ])
      reports
  in
  Render.table ~header rows
