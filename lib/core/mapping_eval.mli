(** Evaluation of the mapping query Q_M (Definition 3.14) and generation of
    the mapping's examples.

    The pipeline is: D(G) → apply C_S per association → transform through V
    → apply C_T.  {!examples} runs the same pipeline without dropping
    anything, recording each association's polarity instead.

    All entry points evaluate through an {!Engine.Eval_ctx}: D(G) and every
    per-subgraph F(J) go through the context's memo cache (when enabled),
    which is what makes the interactive offer/rotate/refine loop cheap.
    For one-shot evaluation over a bare [Database.t], build a context with
    [Engine.Eval_ctx.transient]. *)

open Relational
open Fulldisj

(** Choice of D(G) algorithm — re-exported {!Engine.Eval_ctx.algorithm}.
    [None] at a call site means the context's own algorithm. *)
type algorithm = Engine.Eval_ctx.algorithm = Naive | Indexed | Outerjoin_if_tree

val algorithm_name : algorithm -> string

(** D(G) for the mapping's query graph. *)
val data_associations :
  ?algorithm:algorithm -> Engine.Eval_ctx.t -> Mapping.t -> Full_disjunction.result

(** Compiled transform Q_{φ(M)}: maps an association tuple (over
    [fd.scheme]) to a target tuple.  Target columns without a
    correspondence are null. *)
val transform :
  Full_disjunction.result -> Mapping.t -> Tuple.t -> Tuple.t

(** All examples of the mapping: one per data association, tagged positive
    or negative (Definition 4.1). *)
val examples :
  ?algorithm:algorithm -> Engine.Eval_ctx.t -> Mapping.t -> Example.t list

(** Q_M(d) for a single association: [Some t] if [d] passes C_S and [t]
    passes C_T, else [None]. *)
val apply_one :
  Full_disjunction.result -> Mapping.t -> Assoc.t -> Tuple.t option

(** The mapping query result: a subset of the target relation (distinct). *)
val eval : ?algorithm:algorithm -> Engine.Eval_ctx.t -> Mapping.t -> Relation.t

(** Positive examples only, as a relation over the target schema — the
    "target viewer" contents for this mapping. *)
val target_view :
  ?algorithm:algorithm -> Engine.Eval_ctx.t -> Mapping.t -> Relation.t
