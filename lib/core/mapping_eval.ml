open Relational
open Fulldisj
module Qgraph = Querygraph.Qgraph

type algorithm = Naive | Indexed | Outerjoin_if_tree

let algorithm_name = function
  | Naive -> "naive"
  | Indexed -> "indexed"
  | Outerjoin_if_tree -> "outerjoin-if-tree"

let data_associations ?(algorithm = Indexed) db (m : Mapping.t) =
  let lookup = Database.find db in
  Obs.with_span
    ~attrs:[ ("algorithm", algorithm_name algorithm) ]
    Obs.Names.sp_data_associations
    (fun () ->
      match algorithm with
      | Naive -> Full_disjunction.naive ~lookup m.Mapping.graph
      | Indexed -> Full_disjunction.compute ~lookup m.Mapping.graph
      | Outerjoin_if_tree ->
          if Outerjoin_plan.is_tree m.Mapping.graph then
            Outerjoin_plan.full_disjunction ~lookup m.Mapping.graph
          else Full_disjunction.compute ~lookup m.Mapping.graph)

let transform (fd : Full_disjunction.result) (m : Mapping.t) =
  let compiled =
    List.map
      (fun col ->
        match Mapping.correspondence_for m col with
        | Some c -> Correspondence.compile fd.Full_disjunction.scheme c
        | None -> fun _ -> Value.Null)
      m.Mapping.target_cols
  in
  fun tuple -> Array.of_list (List.map (fun f -> f tuple) compiled)

let compile_source_filters (fd : Full_disjunction.result) (m : Mapping.t) =
  let fs =
    List.map (Predicate.compile fd.Full_disjunction.scheme) m.Mapping.source_filters
  in
  fun tuple -> List.for_all (fun f -> f tuple) fs

let compile_target_filters (m : Mapping.t) =
  let schema = Mapping.target_schema m in
  let fs = List.map (Predicate.compile schema) m.Mapping.target_filters in
  fun tuple -> List.for_all (fun f -> f tuple) fs

let examples ?algorithm db (m : Mapping.t) =
  Obs.with_span Obs.Names.sp_examples (fun () ->
      let fd = data_associations ?algorithm db m in
      let tr = transform fd m in
      let src_ok = compile_source_filters fd m in
      let tgt_ok = compile_target_filters m in
      let exs =
        List.map
          (fun (a : Assoc.t) ->
            let t = tr a.Assoc.tuple in
            {
              Example.assoc = a;
              target_tuple = t;
              positive = src_ok a.Assoc.tuple && tgt_ok t;
            })
          fd.Full_disjunction.associations
      in
      if Obs.enabled () then begin
        Obs.add Obs.Names.eval_examples (List.length exs);
        Obs.add Obs.Names.eval_positive
          (List.length (List.filter Example.is_positive exs))
      end;
      exs)

let apply_one (fd : Full_disjunction.result) (m : Mapping.t) (a : Assoc.t) =
  let tr = transform fd m in
  let src_ok = compile_source_filters fd m in
  let tgt_ok = compile_target_filters m in
  if src_ok a.Assoc.tuple then
    let t = tr a.Assoc.tuple in
    if tgt_ok t then Some t else None
  else None

let eval ?algorithm db (m : Mapping.t) =
  Obs.with_span Obs.Names.sp_eval (fun () ->
      let exs = examples ?algorithm db m in
      Relation.make ~allow_all_null:true m.Mapping.target
        (Mapping.target_schema m)
        (List.filter_map
           (fun e ->
             if e.Example.positive then Some e.Example.target_tuple else None)
           exs))

let target_view = eval
