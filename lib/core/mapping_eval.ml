open Relational
open Fulldisj
module Eval_ctx = Engine.Eval_ctx

type algorithm = Engine.Eval_ctx.algorithm = Naive | Indexed | Outerjoin_if_tree

let algorithm_name = Engine.Eval_ctx.algorithm_name

let data_associations ?algorithm ctx (m : Mapping.t) =
  let alg =
    match algorithm with Some a -> a | None -> Eval_ctx.algorithm ctx
  in
  Obs.with_span
    ~attrs:[ ("algorithm", algorithm_name alg) ]
    Obs.Names.sp_data_associations
    (fun () -> Eval_ctx.data_associations ~algorithm:alg ctx m.Mapping.graph)

let transform (fd : Full_disjunction.result) (m : Mapping.t) =
  let compiled =
    List.map
      (fun col ->
        match Mapping.correspondence_for m col with
        | Some c -> Correspondence.compile fd.Full_disjunction.scheme c
        | None -> fun _ -> Value.Null)
      m.Mapping.target_cols
  in
  fun tuple -> Array.of_list (List.map (fun f -> f tuple) compiled)

let compile_source_filters (fd : Full_disjunction.result) (m : Mapping.t) =
  let fs =
    List.map (Predicate.compile fd.Full_disjunction.scheme) m.Mapping.source_filters
  in
  fun tuple -> List.for_all (fun f -> f tuple) fs

let compile_target_filters (m : Mapping.t) =
  let schema = Mapping.target_schema m in
  let fs = List.map (Predicate.compile schema) m.Mapping.target_filters in
  fun tuple -> List.for_all (fun f -> f tuple) fs

let examples ?algorithm ctx (m : Mapping.t) =
  Obs.with_span Obs.Names.sp_examples (fun () ->
      let fd = data_associations ?algorithm ctx m in
      let tr = transform fd m in
      let src_ok = compile_source_filters fd m in
      let tgt_ok = compile_target_filters m in
      let exs =
        List.map
          (fun (a : Assoc.t) ->
            let t = tr a.Assoc.tuple in
            {
              Example.assoc = a;
              target_tuple = t;
              positive = src_ok a.Assoc.tuple && tgt_ok t;
            })
          fd.Full_disjunction.associations
      in
      if Obs.enabled () then begin
        Obs.add Obs.Names.eval_examples (List.length exs);
        Obs.add Obs.Names.eval_positive
          (List.length (List.filter Example.is_positive exs))
      end;
      exs)

let apply_one (fd : Full_disjunction.result) (m : Mapping.t) (a : Assoc.t) =
  let tr = transform fd m in
  let src_ok = compile_source_filters fd m in
  let tgt_ok = compile_target_filters m in
  if src_ok a.Assoc.tuple then
    let t = tr a.Assoc.tuple in
    if tgt_ok t then Some t else None
  else None

let eval ?algorithm ctx (m : Mapping.t) =
  Obs.with_span Obs.Names.sp_eval (fun () ->
      let exs = examples ?algorithm ctx m in
      Relation.create ~allow_all_null:true m.Mapping.target
        (Mapping.target_schema m)
        (List.filter_map
           (fun e ->
             if e.Example.positive then Some e.Example.target_tuple else None)
           exs))

let target_view = eval
