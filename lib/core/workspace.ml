open Relational
module Eval_ctx = Engine.Eval_ctx

type entry = {
  id : int;
  mapping : Mapping.t;
  illustration : Illustration.t;
  label : string;
}

type t = {
  ctx : Eval_ctx.t;
  entries : entry list;
  active_id : int;
  next_id : int;
}

let fresh_illustration ctx (m : Mapping.t) =
  let universe = Mapping_eval.examples ctx m in
  Sufficiency.select
    ?pool:(Eval_ctx.pool ctx)
    ~universe ~target_cols:m.Mapping.target_cols ()

let create ctx ?(label = "initial") m =
  let entry =
    { id = 0; mapping = m; illustration = fresh_illustration ctx m; label }
  in
  { ctx; entries = [ entry ]; active_id = 0; next_id = 1 }

(* Deprecated shim.  Note it still builds a persistent *caching* context:
   a workspace is exactly the interactive session the memo cache exists
   for (offer/rotate/confirm re-evaluate overlapping graphs constantly). *)
let ctx t = t.ctx
let db t = Eval_ctx.db t.ctx
let kb t = Eval_ctx.kb t.ctx
let with_branch_root t v = { t with ctx = Eval_ctx.with_branch_root t.ctx v }
let entries t = t.entries
let active t = List.find (fun e -> e.id = t.active_id) t.entries
let target_view t = Mapping_eval.target_view t.ctx (active t).mapping

let offer t ?labels mappings =
  if mappings = [] then invalid_arg "Workspace.offer: no alternatives";
  let old = active t in
  (* Labels as an array: [List.nth] per alternative is quadratic on wide
     alternative sets. *)
  let label_arr = match labels with Some ls -> Array.of_list ls | None -> [||] in
  let label i =
    if i < Array.length label_arr then label_arr.(i)
    else Printf.sprintf "alternative %d" (i + 1)
  in
  (* Evolving each alternative's illustration is independent of the others;
     ids and labels key off the input index, so the entries are identical to
     the sequential ones whatever the execution interleaving. *)
  let entries =
    Par.mapi
      ?pool:(Eval_ctx.pool t.ctx)
      (fun i m ->
        let illustration =
          Evolution.evolve t.ctx ~old_mapping:old.mapping
            ~old_illustration:old.illustration m
        in
        { id = t.next_id + i; mapping = m; illustration; label = label i })
      mappings
  in
  {
    t with
    entries;
    active_id = t.next_id;
    next_id = t.next_id + List.length mappings;
  }

let rotate t =
  let ids = List.map (fun e -> e.id) t.entries in
  let rec next = function
    | [] -> List.hd ids
    | [ _ ] -> List.hd ids
    | x :: y :: rest -> if x = t.active_id then y else next (y :: rest)
  in
  { t with active_id = next ids }

let select t id =
  if List.exists (fun e -> e.id = id) t.entries then { t with active_id = id }
  else raise Not_found

let delete t id =
  let remaining = List.filter (fun e -> e.id <> id) t.entries in
  if remaining = [] then invalid_arg "Workspace.delete: cannot delete the last workspace";
  let active_id =
    if t.active_id = id then (List.hd remaining).id else t.active_id
  in
  { t with entries = remaining; active_id }

let confirm t = { t with entries = [ active t ] }

(* A source-tuple edit: insert example tuples into one base relation and
   refresh every workspace's illustration against the new instance.  The
   context keeps its cache across [with_db], so with incremental
   maintenance on, the re-evaluations promote or repair the session's
   cached F(J)/D(G) entries instead of recomputing them — this is the hot
   path the B15 bench replays. *)
let add_tuples t name tuples =
  let db = Database.insert_tuples (Eval_ctx.db t.ctx) name tuples in
  if Database.version db = Eval_ctx.version t.ctx then t
  else begin
    let ctx = Eval_ctx.with_db t.ctx db in
    let entries =
      Par.map
        ?pool:(Eval_ctx.pool ctx)
        (fun e ->
          let illustration =
            Evolution.evolve ctx ~old_mapping:e.mapping
              ~old_illustration:e.illustration e.mapping
          in
          { e with illustration })
        t.entries
    in
    { t with ctx; entries }
  end

let render ?short t =
  let b = Buffer.create 1024 in
  let act = active t in
  Buffer.add_string b "Workspaces:\n";
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "%s [%d] %s — %s\n"
           (if e.id = act.id then "*" else " ")
           e.id e.label
           (Querygraph.Qgraph.to_string e.mapping.Mapping.graph)))
    t.entries;
  Buffer.add_string b "\nActive illustration:\n";
  let fd = Mapping_eval.data_associations t.ctx act.mapping in
  Buffer.add_string b
    (Illustration.render ?short ~scheme:fd.Fulldisj.Full_disjunction.scheme
       act.illustration);
  Buffer.add_string b "\n\nTarget view (WYSIWYG):\n";
  Buffer.add_string b (Render.relation (target_view t));
  Buffer.contents b

let compare_entries t ~rel id1 id2 =
  let entry id = List.find (fun e -> e.id = id) t.entries in
  let e1 = entry id1 and e2 = entry id2 in
  Differentiate.distinguishing t.ctx ~rel e1.mapping e2.mapping

let update_active t ?label m =
  let old = active t in
  let illustration =
    Evolution.evolve t.ctx ~old_mapping:old.mapping ~old_illustration:old.illustration m
  in
  let entry =
    { old with mapping = m; illustration; label = Option.value label ~default:old.label }
  in
  {
    t with
    entries = List.map (fun e -> if e.id = old.id then entry else e) t.entries;
  }
