open Relational
module P = Protocol

type spec = {
  scenario : P.scenario;
  clients : int;
  ops : int;
  limit : int option;
  keep_open : bool;
}

type outcome = {
  sent : int;
  ok : int;
  errors : int;
  overloads : int;
  echo_failures : int;
  elapsed_s : float;
  throughput : float;
  p50_us : float;
  p99_us : float;
  max_us : float;
  latencies_us : (string * float) array;
  digests : string list array;
  mismatches : int option;
}

(* Scenario-specific script parameters: where the data walk goes and what
   an insert looks like (unique per client and step, schema-correct). *)

let walk_params = function
  | P.Paper -> ("Children", "PhoneDir", 2)
  | P.Chain _ -> ("R1", "R2", 3)
  | P.Star _ -> ("Fact", "D1", 3)

let insert_of scenario ~client ~i =
  match scenario with
  | P.Paper ->
      ( "Children",
        [|
          Value.String (Printf.sprintf "9%02d%03d" client i);
          Value.String (Printf.sprintf "Kid-%d-%d" client i);
          Value.Int (i mod 12);
          Value.String "103";
          Value.String "104";
          Value.String "d31";
        |] )
  | P.Chain _ ->
      ( "R1",
        [|
          Value.Int (1_000_000 + (client * 100_000) + i);
          Value.String (Printf.sprintf "edit-%d-%d" client i);
          Value.Int i;
        |] )
  | P.Star { leaves; _ } ->
      ( "Fact",
        Array.append
          [|
            Value.Int (1_000_000 + (client * 100_000) + i);
            Value.String (Printf.sprintf "edit-%d-%d" client i);
          |]
          (Array.make leaves Value.Null) )

let client_requests spec ~client =
  let start, goal, max_len = walk_params spec.scenario in
  List.init spec.ops (fun i ->
      match i mod 6 with
      | 0 -> P.Offer { start; goal; max_len }
      | 1 -> P.Evaluate { what = P.Dg; limit = spec.limit }
      | 2 -> P.Rotate
      | 3 -> P.Evaluate { what = P.Target; limit = spec.limit }
      | 4 ->
          let relation, row = insert_of spec.scenario ~client ~i in
          P.Insert { relation; rows = [ row ] }
      | _ -> P.Confirm)

(* ------------------------------------------------------------------ *)
(* The verification arm: a plain Workspace replay, no server code path. *)

let digest_of rel = Digest.to_hex (Digest.string (Render.relation rel))

let replay_digests spec =
  Array.init spec.clients (fun client ->
      let db, kb, mapping = Scenario.resolve_fresh spec.scenario in
      let ctx = Clio.Eval_ctx.create ~no_cache:true ~jobs:1 ~kb db in
      let ws = ref (Clio.Workspace.create ctx mapping) in
      let digests = ref [] in
      let active_mapping () =
        (Clio.Workspace.active !ws).Clio.Workspace.mapping
      in
      List.iter
        (fun req ->
          match req with
          | P.Evaluate { what; _ } ->
              let rel =
                match what with
                | P.Target -> Clio.Workspace.target_view !ws
                | P.Dg ->
                    Fulldisj.Full_disjunction.to_relation
                      (Clio.Mapping_eval.data_associations
                         (Clio.Workspace.ctx !ws) (active_mapping ()))
                | P.Fj ->
                    Clio.Eval_ctx.full_associations (Clio.Workspace.ctx !ws)
                      (active_mapping ()).Clio.Mapping.graph
              in
              digests := digest_of rel :: !digests
          | P.Offer { start; goal; max_len } -> (
              try
                let alts =
                  Clio.Op_walk.data_walk (Clio.Workspace.ctx !ws)
                    (active_mapping ()) ~start ~goal ~max_len ()
                in
                if alts <> [] then
                  ws :=
                    Clio.Workspace.offer !ws
                      ~labels:
                        (List.map (fun a -> a.Clio.Op_walk.description) alts)
                      (List.map (fun a -> a.Clio.Op_walk.mapping) alts)
              with Invalid_argument _ -> ())
          | P.Rotate -> ws := Clio.Workspace.rotate !ws
          | P.Confirm -> ws := Clio.Workspace.confirm !ws
          | P.Insert { relation; rows } -> (
              try ws := Clio.Workspace.add_tuples !ws relation rows
              with Invalid_argument _ -> ())
          | _ -> ())
        (client_requests spec ~client);
      List.rev !digests)

let count_mismatches ~expected ~got =
  let per_client exp act =
    let rec go n = function
      | [], [] -> n
      | e :: es, a :: as_ -> go (if String.equal e a then n else n + 1) (es, as_)
      | rest, [] | [], rest -> n + List.length rest
    in
    go 0 (exp, act)
  in
  let total = ref 0 in
  Array.iteri
    (fun c exp -> total := !total + per_client exp (Array.get got c))
    expected;
  !total

(* ------------------------------------------------------------------ *)
(* Shared accounting. *)

type accum = {
  mutable sent : int;
  mutable ok : int;
  mutable errors : int;
  mutable overloads : int;
  mutable echo_failures : int;
  mutable latencies : (string * float) list;  (** (op, us), newest first *)
  client_digests : string list array;  (** newest first *)
}

let make_accum clients =
  {
    sent = 0;
    ok = 0;
    errors = 0;
    overloads = 0;
    echo_failures = 0;
    latencies = [];
    client_digests = Array.make clients [];
  }

(* Every loadgen request carries a trace id, and [trace] is what the reply
   must echo — a mismatch (or a missing echo) is a protocol failure. *)
let record acc ~client ~trace ~op ~latency_us (resp : P.response) =
  acc.latencies <- (op, latency_us) :: acc.latencies;
  if resp.P.trace_id <> Some trace then
    acc.echo_failures <- acc.echo_failures + 1;
  match resp.P.result with
  | Ok (P.Evaluated info) ->
      acc.ok <- acc.ok + 1;
      acc.client_digests.(client) <-
        info.P.digest :: acc.client_digests.(client)
  | Ok _ -> acc.ok <- acc.ok + 1
  | Error (P.Overloaded, _) -> acc.overloads <- acc.overloads + 1
  | Error _ -> acc.errors <- acc.errors + 1

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.ceil (q /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let finish spec acc ~verify ~elapsed_s =
  let pairs = Array.of_list acc.latencies in
  Array.sort (fun (_, a) (_, b) -> Float.compare a b) pairs;
  let sorted = Array.map snd pairs in
  let digests = Array.map List.rev acc.client_digests in
  let mismatches =
    if verify then
      Some (count_mismatches ~expected:(replay_digests spec) ~got:digests)
    else None
  in
  {
    sent = acc.sent;
    ok = acc.ok;
    errors = acc.errors;
    overloads = acc.overloads;
    echo_failures = acc.echo_failures;
    elapsed_s;
    throughput = (if elapsed_s > 0. then float_of_int acc.ok /. elapsed_s else 0.);
    p50_us = percentile sorted 50.;
    p99_us = percentile sorted 99.;
    max_us = percentile sorted 100.;
    latencies_us = pairs;
    digests;
    mismatches;
  }

(* ------------------------------------------------------------------ *)
(* In-process mode: straight into Service.handle, no transport. *)

let run_inprocess ?(verify = true) service spec =
  let acc = make_accum spec.clients in
  let next_id = ref 0 in
  let fresh_id () =
    incr next_id;
    !next_id
  in
  let call ~client ?session request =
    let id = fresh_id () in
    let trace = Printf.sprintf "lg%d-%d" client id in
    let env = { P.id; session; request; trace_id = Some trace } in
    acc.sent <- acc.sent + 1;
    let t0 = Unix.gettimeofday () in
    let resp = Service.handle service env in
    record acc ~client ~trace ~op:(Service.verb_name request)
      ~latency_us:((Unix.gettimeofday () -. t0) *. 1e6)
      resp;
    resp
  in
  let t_start = Unix.gettimeofday () in
  let sids =
    Array.init spec.clients (fun client ->
        match call ~client (P.Open_session spec.scenario) with
        | { P.result = Ok (P.Opened { session; _ }); _ } -> Some session
        | _ -> None)
  in
  let scripts =
    Array.init spec.clients (fun client -> client_requests spec ~client)
  in
  for i = 0 to spec.ops - 1 do
    for client = 0 to spec.clients - 1 do
      match sids.(client) with
      | None -> ()
      | Some sid -> ignore (call ~client ~session:sid (List.nth scripts.(client) i))
    done
  done;
  if not spec.keep_open then
    Array.iteri
      (fun client sid ->
        match sid with
        | None -> ()
        | Some sid -> ignore (call ~client ~session:sid P.Close_session))
      sids;
  finish spec acc ~verify ~elapsed_s:(Unix.gettimeofday () -. t_start)

(* ------------------------------------------------------------------ *)
(* Socket mode: one blocking connection per client, one request in
   flight each, [overloaded] replies retried with a short pause. *)

type client_conn = { fd : Unix.file_descr; buf : Buffer.t; mutable carry : string }

let connect address =
  let fd, addr =
    match address with
    | Loop.Unix_path path ->
        (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Loop.Tcp port ->
        ( Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0,
          Unix.ADDR_INET (Unix.inet_addr_loopback, port) )
  in
  Unix.connect fd addr;
  { fd; buf = Buffer.create 4096; carry = "" }

let send_line conn line =
  let bytes = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length bytes in
  let written = ref 0 in
  while !written < len do
    written :=
      !written + Unix.write conn.fd bytes !written (len - !written)
  done

let recv_line conn =
  let rec split () =
    match String.index_opt conn.carry '\n' with
    | Some i ->
        let line = String.sub conn.carry 0 i in
        conn.carry <-
          String.sub conn.carry (i + 1) (String.length conn.carry - i - 1);
        line
    | None ->
        let chunk = Bytes.create 65536 in
        let n = Unix.read conn.fd chunk 0 (Bytes.length chunk) in
        if n = 0 then failwith "server closed the connection";
        conn.carry <- conn.carry ^ Bytes.sub_string chunk 0 n;
        split ()
  in
  split ()

(* Per-client driver state for the concurrent socket mode.  Each client
   keeps at most one request in flight; [lg_pending] is the attempt
   awaiting its reply, [lg_retry] a scheduled resend after an
   [overloaded] reply. *)
type lg_phase = Lg_opening | Lg_ops | Lg_closing | Lg_done

type lg_client = {
  lg_idx : int;
  lg_conn : client_conn;
  mutable lg_sid : string option;
  mutable lg_script : P.request list;  (** remaining scripted ops *)
  mutable lg_phase : lg_phase;
  mutable lg_pending : (P.request * string * float * int) option;
      (** (request, trace, send time, retries left) *)
  mutable lg_retry : (float * P.request * int) option;
      (** (due, request, retries left) *)
}

let run_socket ?(verify = true) ~address spec =
  let acc = make_accum spec.clients in
  let next_id = ref 0 in
  let fresh_id () =
    incr next_id;
    !next_id
  in
  (* All clients run concurrently from this one thread: each keeps one
     request in flight and a single select multiplexes the replies, so a
     multi-worker server can overlap distinct sessions' requests.  Per
     connection the wire behavior matches the old serial driver: one
     request at a time, [overloaded] retried (bounded) after a 2 ms
     pause with a fresh id and trace, every attempt recorded. *)
  let clients =
    Array.init spec.clients (fun idx ->
        {
          lg_idx = idx;
          lg_conn = connect address;
          lg_sid = None;
          lg_script = client_requests spec ~client:idx;
          lg_phase = Lg_opening;
          lg_pending = None;
          lg_retry = None;
        })
  in
  let send c ~fresh request retries =
    if fresh then acc.sent <- acc.sent + 1;
    let id = fresh_id () in
    let trace = Printf.sprintf "lg%d-%d" c.lg_idx id in
    let session =
      match c.lg_phase with Lg_opening -> None | _ -> c.lg_sid
    in
    let line =
      P.encode_request { P.id; session; request; trace_id = Some trace }
    in
    c.lg_pending <- Some (request, trace, Unix.gettimeofday (), retries);
    send_line c.lg_conn line
  in
  let advance c =
    match c.lg_phase with
    | Lg_opening when c.lg_sid = None ->
        (* open failed: this client sits the run out, like the serial
           driver's [None] session *)
        c.lg_phase <- Lg_done
    | Lg_opening | Lg_ops -> (
        c.lg_phase <- Lg_ops;
        match c.lg_script with
        | req :: rest ->
            c.lg_script <- rest;
            send c ~fresh:true req 1000
        | [] ->
            if spec.keep_open then c.lg_phase <- Lg_done
            else begin
              c.lg_phase <- Lg_closing;
              send c ~fresh:true P.Close_session 1000
            end)
    | Lg_closing | Lg_done -> c.lg_phase <- Lg_done
  in
  let handle_reply c line =
    match c.lg_pending with
    | None -> failwith "reply with no request in flight"
    | Some (request, trace, t0, retries) -> (
        let resp =
          match P.parse_response line with
          | Ok r -> r
          | Error msg -> failwith ("unparseable reply: " ^ msg)
        in
        record acc ~client:c.lg_idx ~trace ~op:(Service.verb_name request)
          ~latency_us:((Unix.gettimeofday () -. t0) *. 1e6)
          resp;
        c.lg_pending <- None;
        match resp.P.result with
        | Error (P.Overloaded, _) when retries > 0 ->
            c.lg_retry <-
              Some (Unix.gettimeofday () +. 0.002, request, retries - 1)
        | result ->
            (match (c.lg_phase, result) with
            | Lg_opening, Ok (P.Opened { session; _ }) ->
                c.lg_sid <- Some session
            | _ -> ());
            advance c)
  in
  let read_client c =
    let conn = c.lg_conn in
    let chunk = Bytes.create 65536 in
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> failwith "server closed the connection"
    | n ->
        conn.carry <- conn.carry ^ Bytes.sub_string chunk 0 n;
        let rec drain () =
          if c.lg_pending <> None then
            match String.index_opt conn.carry '\n' with
            | Some i ->
                let line = String.sub conn.carry 0 i in
                conn.carry <-
                  String.sub conn.carry (i + 1)
                    (String.length conn.carry - i - 1);
                handle_reply c line;
                drain ()
            | None -> ()
        in
        drain ()
  in
  let t_start = Unix.gettimeofday () in
  Array.iter
    (fun c -> send c ~fresh:true (P.Open_session spec.scenario) 1000)
    clients;
  while not (Array.for_all (fun c -> c.lg_phase = Lg_done) clients) do
    let now = Unix.gettimeofday () in
    Array.iter
      (fun c ->
        match c.lg_retry with
        | Some (due, request, retries) when due <= now ->
            c.lg_retry <- None;
            send c ~fresh:false request retries
        | _ -> ())
      clients;
    let reads =
      Array.fold_left
        (fun fds c ->
          if c.lg_pending <> None then c.lg_conn.fd :: fds else fds)
        [] clients
    in
    let timeout =
      Array.fold_left
        (fun t c ->
          match c.lg_retry with
          | Some (due, _, _) ->
              let d = Float.max 0.0005 (due -. now) in
              Some (match t with None -> d | Some t -> Float.min t d)
          | None -> t)
        None clients
    in
    if reads = [] && timeout = None then failwith "loadgen stalled"
    else begin
      match
        Unix.select reads [] []
          (match timeout with Some t -> t | None -> -1.0)
      with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, _, _ ->
          Array.iter
            (fun c -> if List.memq c.lg_conn.fd readable then read_client c)
            clients
    end
  done;
  let elapsed_s = Unix.gettimeofday () -. t_start in
  Array.iter
    (fun c -> try Unix.close c.lg_conn.fd with Unix.Unix_error _ -> ())
    clients;
  finish spec acc ~verify ~elapsed_s

(* One-shot client call for the scrape/top utilities: connect, send the
   envelopes in order, await one reply per envelope, close. *)
let rpc_once ~address envelopes =
  let conn = connect address in
  Fun.protect
    ~finally:(fun () -> try Unix.close conn.fd with Unix.Unix_error _ -> ())
    (fun () ->
      List.map
        (fun env ->
          send_line conn (P.encode_request env);
          match P.parse_response (recv_line conn) with
          | Ok r -> r
          | Error msg -> failwith ("unparseable reply: " ^ msg))
        envelopes)

let pp_outcome ppf (o : outcome) =
  Format.fprintf ppf
    "@[<v>requests   %d (ok %d, errors %d, overload retries %d)@,\
     elapsed    %.3f s  (%.0f ops/s)@,\
     latency    p50 %.0f us   p99 %.0f us   max %.0f us@,\
     trace echo %s@,\
     verify     %s@]"
    o.sent o.ok o.errors o.overloads o.elapsed_s o.throughput o.p50_us o.p99_us
    o.max_us
    (if o.echo_failures = 0 then "ok: every reply echoed its request's trace id"
     else Printf.sprintf "FAILED: %d replies with missing/wrong trace id"
       o.echo_failures)
    (match o.mismatches with
    | None -> "off"
    | Some 0 -> "ok: all evaluation digests match the sequential replay"
    | Some n -> Printf.sprintf "FAILED: %d digest mismatches" n)
