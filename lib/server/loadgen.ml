open Relational
module P = Protocol

type spec = {
  scenario : P.scenario;
  clients : int;
  ops : int;
  limit : int option;
  keep_open : bool;
}

type outcome = {
  sent : int;
  ok : int;
  errors : int;
  overloads : int;
  echo_failures : int;
  elapsed_s : float;
  throughput : float;
  p50_us : float;
  p99_us : float;
  max_us : float;
  latencies_us : (string * float) array;
  digests : string list array;
  mismatches : int option;
}

(* Scenario-specific script parameters: where the data walk goes and what
   an insert looks like (unique per client and step, schema-correct). *)

let walk_params = function
  | P.Paper -> ("Children", "PhoneDir", 2)
  | P.Chain _ -> ("R1", "R2", 3)
  | P.Star _ -> ("Fact", "D1", 3)

let insert_of scenario ~client ~i =
  match scenario with
  | P.Paper ->
      ( "Children",
        [|
          Value.String (Printf.sprintf "9%02d%03d" client i);
          Value.String (Printf.sprintf "Kid-%d-%d" client i);
          Value.Int (i mod 12);
          Value.String "103";
          Value.String "104";
          Value.String "d31";
        |] )
  | P.Chain _ ->
      ( "R1",
        [|
          Value.Int (1_000_000 + (client * 100_000) + i);
          Value.String (Printf.sprintf "edit-%d-%d" client i);
          Value.Int i;
        |] )
  | P.Star { leaves; _ } ->
      ( "Fact",
        Array.append
          [|
            Value.Int (1_000_000 + (client * 100_000) + i);
            Value.String (Printf.sprintf "edit-%d-%d" client i);
          |]
          (Array.make leaves Value.Null) )

let client_requests spec ~client =
  let start, goal, max_len = walk_params spec.scenario in
  List.init spec.ops (fun i ->
      match i mod 6 with
      | 0 -> P.Offer { start; goal; max_len }
      | 1 -> P.Evaluate { what = P.Dg; limit = spec.limit }
      | 2 -> P.Rotate
      | 3 -> P.Evaluate { what = P.Target; limit = spec.limit }
      | 4 ->
          let relation, row = insert_of spec.scenario ~client ~i in
          P.Insert { relation; rows = [ row ] }
      | _ -> P.Confirm)

(* ------------------------------------------------------------------ *)
(* The verification arm: a plain Workspace replay, no server code path. *)

let digest_of rel = Digest.to_hex (Digest.string (Render.relation rel))

let replay_digests spec =
  Array.init spec.clients (fun client ->
      let db, kb, mapping = Scenario.resolve_fresh spec.scenario in
      let ctx = Clio.Eval_ctx.create ~no_cache:true ~jobs:1 ~kb db in
      let ws = ref (Clio.Workspace.create ctx mapping) in
      let digests = ref [] in
      let active_mapping () =
        (Clio.Workspace.active !ws).Clio.Workspace.mapping
      in
      List.iter
        (fun req ->
          match req with
          | P.Evaluate { what; _ } ->
              let rel =
                match what with
                | P.Target -> Clio.Workspace.target_view !ws
                | P.Dg ->
                    Fulldisj.Full_disjunction.to_relation
                      (Clio.Mapping_eval.data_associations
                         (Clio.Workspace.ctx !ws) (active_mapping ()))
                | P.Fj ->
                    Clio.Eval_ctx.full_associations (Clio.Workspace.ctx !ws)
                      (active_mapping ()).Clio.Mapping.graph
              in
              digests := digest_of rel :: !digests
          | P.Offer { start; goal; max_len } -> (
              try
                let alts =
                  Clio.Op_walk.data_walk (Clio.Workspace.ctx !ws)
                    (active_mapping ()) ~start ~goal ~max_len ()
                in
                if alts <> [] then
                  ws :=
                    Clio.Workspace.offer !ws
                      ~labels:
                        (List.map (fun a -> a.Clio.Op_walk.description) alts)
                      (List.map (fun a -> a.Clio.Op_walk.mapping) alts)
              with Invalid_argument _ -> ())
          | P.Rotate -> ws := Clio.Workspace.rotate !ws
          | P.Confirm -> ws := Clio.Workspace.confirm !ws
          | P.Insert { relation; rows } -> (
              try ws := Clio.Workspace.add_tuples !ws relation rows
              with Invalid_argument _ -> ())
          | _ -> ())
        (client_requests spec ~client);
      List.rev !digests)

let count_mismatches ~expected ~got =
  let per_client exp act =
    let rec go n = function
      | [], [] -> n
      | e :: es, a :: as_ -> go (if String.equal e a then n else n + 1) (es, as_)
      | rest, [] | [], rest -> n + List.length rest
    in
    go 0 (exp, act)
  in
  let total = ref 0 in
  Array.iteri
    (fun c exp -> total := !total + per_client exp (Array.get got c))
    expected;
  !total

(* ------------------------------------------------------------------ *)
(* Shared accounting. *)

type accum = {
  mutable sent : int;
  mutable ok : int;
  mutable errors : int;
  mutable overloads : int;
  mutable echo_failures : int;
  mutable latencies : (string * float) list;  (** (op, us), newest first *)
  client_digests : string list array;  (** newest first *)
}

let make_accum clients =
  {
    sent = 0;
    ok = 0;
    errors = 0;
    overloads = 0;
    echo_failures = 0;
    latencies = [];
    client_digests = Array.make clients [];
  }

(* Every loadgen request carries a trace id, and [trace] is what the reply
   must echo — a mismatch (or a missing echo) is a protocol failure. *)
let record acc ~client ~trace ~op ~latency_us (resp : P.response) =
  acc.latencies <- (op, latency_us) :: acc.latencies;
  if resp.P.trace_id <> Some trace then
    acc.echo_failures <- acc.echo_failures + 1;
  match resp.P.result with
  | Ok (P.Evaluated info) ->
      acc.ok <- acc.ok + 1;
      acc.client_digests.(client) <-
        info.P.digest :: acc.client_digests.(client)
  | Ok _ -> acc.ok <- acc.ok + 1
  | Error (P.Overloaded, _) -> acc.overloads <- acc.overloads + 1
  | Error _ -> acc.errors <- acc.errors + 1

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.ceil (q /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let finish spec acc ~verify ~elapsed_s =
  let pairs = Array.of_list acc.latencies in
  Array.sort (fun (_, a) (_, b) -> Float.compare a b) pairs;
  let sorted = Array.map snd pairs in
  let digests = Array.map List.rev acc.client_digests in
  let mismatches =
    if verify then
      Some (count_mismatches ~expected:(replay_digests spec) ~got:digests)
    else None
  in
  {
    sent = acc.sent;
    ok = acc.ok;
    errors = acc.errors;
    overloads = acc.overloads;
    echo_failures = acc.echo_failures;
    elapsed_s;
    throughput = (if elapsed_s > 0. then float_of_int acc.ok /. elapsed_s else 0.);
    p50_us = percentile sorted 50.;
    p99_us = percentile sorted 99.;
    max_us = percentile sorted 100.;
    latencies_us = pairs;
    digests;
    mismatches;
  }

(* ------------------------------------------------------------------ *)
(* In-process mode: straight into Service.handle, no transport. *)

let run_inprocess ?(verify = true) service spec =
  let acc = make_accum spec.clients in
  let next_id = ref 0 in
  let fresh_id () =
    incr next_id;
    !next_id
  in
  let call ~client ?session request =
    let id = fresh_id () in
    let trace = Printf.sprintf "lg%d-%d" client id in
    let env = { P.id; session; request; trace_id = Some trace } in
    acc.sent <- acc.sent + 1;
    let t0 = Unix.gettimeofday () in
    let resp = Service.handle service env in
    record acc ~client ~trace ~op:(Service.verb_name request)
      ~latency_us:((Unix.gettimeofday () -. t0) *. 1e6)
      resp;
    resp
  in
  let t_start = Unix.gettimeofday () in
  let sids =
    Array.init spec.clients (fun client ->
        match call ~client (P.Open_session spec.scenario) with
        | { P.result = Ok (P.Opened { session; _ }); _ } -> Some session
        | _ -> None)
  in
  let scripts =
    Array.init spec.clients (fun client -> client_requests spec ~client)
  in
  for i = 0 to spec.ops - 1 do
    for client = 0 to spec.clients - 1 do
      match sids.(client) with
      | None -> ()
      | Some sid -> ignore (call ~client ~session:sid (List.nth scripts.(client) i))
    done
  done;
  if not spec.keep_open then
    Array.iteri
      (fun client sid ->
        match sid with
        | None -> ()
        | Some sid -> ignore (call ~client ~session:sid P.Close_session))
      sids;
  finish spec acc ~verify ~elapsed_s:(Unix.gettimeofday () -. t_start)

(* ------------------------------------------------------------------ *)
(* Socket mode: one blocking connection per client, one request in
   flight each, [overloaded] replies retried with a short pause. *)

type client_conn = { fd : Unix.file_descr; buf : Buffer.t; mutable carry : string }

let connect address =
  let fd, addr =
    match address with
    | Loop.Unix_path path ->
        (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Loop.Tcp port ->
        ( Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0,
          Unix.ADDR_INET (Unix.inet_addr_loopback, port) )
  in
  Unix.connect fd addr;
  { fd; buf = Buffer.create 4096; carry = "" }

let send_line conn line =
  let bytes = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length bytes in
  let written = ref 0 in
  while !written < len do
    written :=
      !written + Unix.write conn.fd bytes !written (len - !written)
  done

let recv_line conn =
  let rec split () =
    match String.index_opt conn.carry '\n' with
    | Some i ->
        let line = String.sub conn.carry 0 i in
        conn.carry <-
          String.sub conn.carry (i + 1) (String.length conn.carry - i - 1);
        line
    | None ->
        let chunk = Bytes.create 65536 in
        let n = Unix.read conn.fd chunk 0 (Bytes.length chunk) in
        if n = 0 then failwith "server closed the connection";
        conn.carry <- conn.carry ^ Bytes.sub_string chunk 0 n;
        split ()
  in
  split ()

let run_socket ?(verify = true) ~address spec =
  let acc = make_accum spec.clients in
  let next_id = ref 0 in
  let fresh_id () =
    incr next_id;
    !next_id
  in
  (* Send, await the matching reply, retry (bounded) while overloaded. *)
  let call conn ~client ?session request =
    acc.sent <- acc.sent + 1;
    let rec attempt retries =
      let id = fresh_id () in
      let trace = Printf.sprintf "lg%d-%d" client id in
      let line = P.encode_request { P.id; session; request; trace_id = Some trace } in
      let t0 = Unix.gettimeofday () in
      send_line conn line;
      let resp =
        match P.parse_response (recv_line conn) with
        | Ok r -> r
        | Error msg -> failwith ("unparseable reply: " ^ msg)
      in
      record acc ~client ~trace ~op:(Service.verb_name request)
        ~latency_us:((Unix.gettimeofday () -. t0) *. 1e6)
        resp;
      match resp.P.result with
      | Error (P.Overloaded, _) when retries > 0 ->
          ignore (Unix.select [] [] [] 0.002);
          attempt (retries - 1)
      | _ -> resp
    in
    attempt 1000
  in
  let conns = Array.init spec.clients (fun _ -> connect address) in
  let t_start = Unix.gettimeofday () in
  let sids =
    Array.init spec.clients (fun client ->
        match call conns.(client) ~client (P.Open_session spec.scenario) with
        | { P.result = Ok (P.Opened { session; _ }); _ } -> Some session
        | _ -> None)
  in
  let scripts =
    Array.init spec.clients (fun client -> client_requests spec ~client)
  in
  for i = 0 to spec.ops - 1 do
    for client = 0 to spec.clients - 1 do
      match sids.(client) with
      | None -> ()
      | Some sid ->
          ignore
            (call conns.(client) ~client ~session:sid
               (List.nth scripts.(client) i))
    done
  done;
  if not spec.keep_open then
    Array.iteri
      (fun client sid ->
        match sid with
        | None -> ()
        | Some sid ->
            ignore (call conns.(client) ~client ~session:sid P.Close_session))
      sids;
  let elapsed_s = Unix.gettimeofday () -. t_start in
  Array.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
  finish spec acc ~verify ~elapsed_s

(* One-shot client call for the scrape/top utilities: connect, send the
   envelopes in order, await one reply per envelope, close. *)
let rpc_once ~address envelopes =
  let conn = connect address in
  Fun.protect
    ~finally:(fun () -> try Unix.close conn.fd with Unix.Unix_error _ -> ())
    (fun () ->
      List.map
        (fun env ->
          send_line conn (P.encode_request env);
          match P.parse_response (recv_line conn) with
          | Ok r -> r
          | Error msg -> failwith ("unparseable reply: " ^ msg))
        envelopes)

let pp_outcome ppf (o : outcome) =
  Format.fprintf ppf
    "@[<v>requests   %d (ok %d, errors %d, overload retries %d)@,\
     elapsed    %.3f s  (%.0f ops/s)@,\
     latency    p50 %.0f us   p99 %.0f us   max %.0f us@,\
     trace echo %s@,\
     verify     %s@]"
    o.sent o.ok o.errors o.overloads o.elapsed_s o.throughput o.p50_us o.p99_us
    o.max_us
    (if o.echo_failures = 0 then "ok: every reply echoed its request's trace id"
     else Printf.sprintf "FAILED: %d replies with missing/wrong trace id"
       o.echo_failures)
    (match o.mismatches with
    | None -> "off"
    | Some 0 -> "ok: all evaluation digests match the sequential replay"
    | Some n -> Printf.sprintf "FAILED: %d digest mismatches" n)
