(** The B16 load generator: N scripted clients driving mixed
    refinement/evaluation traffic against one server, with an optional
    verification arm.

    Each client runs the same deterministic script over its own session —
    open, then [ops] operations cycling offer → evaluate D(G) → rotate →
    evaluate target → insert (a tuple unique to that client and step) →
    confirm, then close — so any two runs over equal specs do identical
    work.  Clients are interleaved round-robin (in-process) or pipelined
    one-in-flight-each (socket), which is what makes the shared-cache and
    isolation claims observable: sessions share D(G)/F(J) entries until
    their first insert forks them onto private database versions.

    Verification replays every client's script {e sequentially} through a
    plain {!Clio.Workspace} over {!Scenario.resolve_fresh} state with a
    fresh cache-less context — a genuinely independent path — and compares
    the MD5 digests of every evaluation result byte-for-byte. *)

type spec = {
  scenario : Protocol.scenario;
  clients : int;
  ops : int;  (** operations per client, between open and close *)
  limit : int option;  (** rows included in evaluate replies *)
  keep_open : bool;
      (** skip the final [close]: sessions stay open after the run — what
          the restart-smoke harness uses so a [--store-dir] shutdown
          persists them for the next boot to resume *)
}

type outcome = {
  sent : int;  (** requests sent (retries of overloaded ones not counted) *)
  ok : int;
  errors : int;  (** error replies other than [overloaded] *)
  overloads : int;  (** [overloaded] replies observed (each retried) *)
  echo_failures : int;
      (** replies whose [trace_id] did not echo the request's — every
          loadgen request sends one ([lg<client>-<id>]), so this must be
          0 against a correct server *)
  elapsed_s : float;
  throughput : float;  (** successful replies per second *)
  p50_us : float;
  p99_us : float;
  max_us : float;
  latencies_us : (string * float) array;
      (** every request as (op, latency in us), sorted by latency — the
          samples behind the percentiles above, exposed so callers can
          pool distributions across runs and slice them per operation (a
          single run's p50 mixes op modes and is too noisy to gate on) *)
  digests : string list array;  (** per client, evaluation results in order *)
  mismatches : int option;  (** digest mismatches vs the sequential replay
                                ([None] when verification was off) *)
}

(** The request script of one client (open/close not included). *)
val client_requests : spec -> client:int -> Protocol.request list

(** Digests the sequential replay produces, per client. *)
val replay_digests : spec -> string list array

(** Drive a {!Service} directly, no transport (cold = fresh registry).
    [verify] (default [true]) runs the replay arm. *)
val run_inprocess : ?verify:bool -> Service.t -> spec -> outcome

(** Drive a running server over its socket: one connection per client,
    requests pipelined round-robin, bounded retry on [overloaded]. *)
val run_socket : ?verify:bool -> address:Loop.address -> spec -> outcome

(** One-shot client call: connect, send the envelopes in order, await one
    reply per envelope, close.  Used by the [clio_serve scrape]/[top]
    utilities.  @raise Failure on an unparseable reply or closed
    connection. *)
val rpc_once :
  address:Loop.address -> Protocol.envelope list -> Protocol.response list

val pp_outcome : Format.formatter -> outcome -> unit
