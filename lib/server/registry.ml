type metrics = {
  per_op : (string, int) Hashtbl.t;
  (* accumulated per-request cache.* counter deltas (hits, misses,
     promote outcomes...) attributed to this session's requests *)
  cache_deltas : (string, int) Hashtbl.t;
  mutable requests : int;
  mutable errors : int;
  mutable latencies_us : float list;  (** newest first *)
  mutable latency_retained : int;  (** length of [latencies_us] *)
  mutable latency_max : float;
  mutable latency_sum : float;
}

(* Latency samples retained per session for the percentile report.  Beyond
   the cap the window slides: percentiles describe the most recent
   [latency_keep] requests (mean/max stay all-time).  Mirrors the
   Obs.Histogram reservoir fix — a long-lived session must not retain one
   float per request forever. *)
let latency_keep = 4096

type session = {
  sid : string;
  scenario : Protocol.scenario;
  opened_at : float;
  mutable ws : Clio.Workspace.t;
  metrics : metrics;
}

type t = {
  cache : Engine.Eval_cache.t option;
  algorithm : Clio.Eval_ctx.algorithm;
  jobs : int;
  sessions : (string, session) Hashtbl.t;
  mutable next_sid : int;
  mutable opened_total : int;
  mutable requests_total : int;
  mutable errors_total : int;
  mutable overloads_total : int;
  started_at : float;
}

let create ?(algorithm = Clio.Eval_ctx.Indexed) ?jobs ?(no_cache = false)
    ?cache_bytes () =
  let jobs = match jobs with Some j -> j | None -> Par.default_jobs () in
  let cache =
    if no_cache then None
    else Some (Engine.Eval_cache.create ?byte_budget:cache_bytes ())
  in
  {
    cache;
    algorithm;
    jobs;
    sessions = Hashtbl.create 16;
    next_sid = 1;
    opened_total = 0;
    requests_total = 0;
    errors_total = 0;
    overloads_total = 0;
    started_at = Unix.gettimeofday ();
  }

let cache t = t.cache
let jobs t = t.jobs

let open_session t spec =
  let db, kb, mapping = Scenario.resolve spec in
  let ctx =
    match t.cache with
    | Some cache ->
        Clio.Eval_ctx.create ~algorithm:t.algorithm ~cache ~jobs:t.jobs ~kb db
    | None ->
        Clio.Eval_ctx.create ~algorithm:t.algorithm ~no_cache:true ~jobs:t.jobs
          ~kb db
  in
  let ws = Clio.Workspace.create ctx mapping in
  let sid = Printf.sprintf "s%d" t.next_sid in
  t.next_sid <- t.next_sid + 1;
  t.opened_total <- t.opened_total + 1;
  let session =
    {
      sid;
      scenario = spec;
      opened_at = Unix.gettimeofday ();
      ws;
      metrics =
        {
          per_op = Hashtbl.create 8;
          cache_deltas = Hashtbl.create 8;
          requests = 0;
          errors = 0;
          latencies_us = [];
          latency_retained = 0;
          latency_max = 0.;
          latency_sum = 0.;
        };
    }
  in
  Hashtbl.replace t.sessions sid session;
  session

let find t sid = Hashtbl.find_opt t.sessions sid

let close_session t sid =
  if Hashtbl.mem t.sessions sid then begin
    Hashtbl.remove t.sessions sid;
    true
  end
  else false

let session_count t = Hashtbl.length t.sessions

let session_ids t =
  Hashtbl.fold (fun sid _ acc -> sid :: acc) t.sessions []
  |> List.sort compare

let count_request t = t.requests_total <- t.requests_total + 1
let count_error t = t.errors_total <- t.errors_total + 1
let count_overload t = t.overloads_total <- t.overloads_total + 1
let overloads t = t.overloads_total

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let record_op ?(cache_deltas = []) s ~op ~latency_us ~ok =
  let m = s.metrics in
  m.requests <- m.requests + 1;
  if not ok then m.errors <- m.errors + 1;
  Hashtbl.replace m.per_op op
    (1 + Option.value ~default:0 (Hashtbl.find_opt m.per_op op));
  List.iter
    (fun (name, d) ->
      Hashtbl.replace m.cache_deltas name
        (d + Option.value ~default:0 (Hashtbl.find_opt m.cache_deltas name)))
    cache_deltas;
  m.latencies_us <- latency_us :: m.latencies_us;
  m.latency_retained <- m.latency_retained + 1;
  (* amortized O(1): truncate back to the cap only at twice the cap *)
  if m.latency_retained > 2 * latency_keep then begin
    m.latencies_us <- take latency_keep m.latencies_us;
    m.latency_retained <- latency_keep
  end;
  m.latency_sum <- m.latency_sum +. latency_us;
  if latency_us > m.latency_max then m.latency_max <- latency_us

(* Nearest-rank percentile over the retained samples (same convention as
   Obs.Histogram). *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.ceil (q /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let session_stats s =
  let m = s.metrics in
  let sorted = Array.of_list m.latencies_us in
  Array.sort compare sorted;
  let ops =
    Hashtbl.fold
      (fun op n acc -> ("session.ops." ^ op, float_of_int n) :: acc)
      m.per_op []
    |> List.sort compare
  in
  let cache =
    Hashtbl.fold
      (fun name d acc -> ("session." ^ name, float_of_int d) :: acc)
      m.cache_deltas []
    |> List.sort compare
  in
  [
    ("session.requests", float_of_int m.requests);
    ("session.errors", float_of_int m.errors);
    ( "session.latency_us.mean",
      if m.requests = 0 then 0. else m.latency_sum /. float_of_int m.requests );
    ("session.latency_us.p50", percentile sorted 50.);
    ("session.latency_us.p99", percentile sorted 99.);
    ("session.latency_us.max", m.latency_max);
    ( "session.db_version",
      float_of_int (Clio.Eval_ctx.version (Clio.Workspace.ctx s.ws)) );
    ( "session.entries",
      float_of_int (List.length (Clio.Workspace.entries s.ws)) );
  ]
  @ ops @ cache

let server_stats t =
  [
    ("server.sessions.open", float_of_int (session_count t));
    ("server.sessions.opened_total", float_of_int t.opened_total);
    ("server.requests_total", float_of_int t.requests_total);
    ("server.errors_total", float_of_int t.errors_total);
    ("server.overloads_total", float_of_int t.overloads_total);
    ("server.uptime_s", Unix.gettimeofday () -. t.started_at);
    ("server.jobs", float_of_int t.jobs);
  ]
  @
  match t.cache with
  | None -> [ ("server.cache.enabled", 0.) ]
  | Some cache ->
      [
        ("server.cache.enabled", 1.);
        ( "server.cache.entries",
          float_of_int (Engine.Eval_cache.entry_count cache) );
        ( "server.cache.bytes_resident",
          float_of_int (Engine.Eval_cache.bytes_resident cache) );
      ]

(* Per-session metrics flattened under [sessions.<sid>.], appended to
   no-session [stats] replies so one request paints the whole server —
   what `clio_serve top` renders. *)
let sessions_rollup t =
  List.concat_map
    (fun sid ->
      match find t sid with
      | None -> []
      | Some s ->
          List.map
            (fun (k, v) ->
              let suffix =
                (* keys from [session_stats] all start with "session." *)
                if String.length k > 8 && String.sub k 0 8 = "session." then
                  String.sub k 8 (String.length k - 8)
                else k
              in
              (Printf.sprintf "sessions.%s.%s" sid suffix, v))
            (session_stats s))
    (session_ids t)

(* The same numbers shaped for Prometheus: server.* as plain gauges,
   per-session metrics as [session_*] gauge families with a [session]
   label instead of the sid baked into the name. *)
let prom_gauges t =
  List.map
    (fun (k, v) -> { Obs.Prom_export.gauge_name = k; labels = []; value = v })
    (server_stats t)
  @ List.concat_map
      (fun sid ->
        match find t sid with
        | None -> []
        | Some s ->
            List.map
              (fun (k, v) ->
                {
                  Obs.Prom_export.gauge_name = k;
                  labels = [ ("session", sid) ];
                  value = v;
                })
              (session_stats s))
      (session_ids t)
