module J = Obs.Json

type metrics = {
  (* One lock per session: [record_op] runs on the worker domain owning
     the session's shard while [session_stats] may run on any other shard
     (a sessionless [stats] scrape). *)
  mutex : Mutex.t;
  per_op : (string, int) Hashtbl.t;
  (* accumulated per-request cache.* counter deltas (hits, misses,
     promote outcomes...) attributed to this session's requests *)
  cache_deltas : (string, int) Hashtbl.t;
  mutable requests : int;
  mutable errors : int;
  mutable latencies_us : float list;  (** newest first *)
  mutable latency_retained : int;  (** length of [latencies_us] *)
  mutable latency_max : float;
  mutable latency_sum : float;
  (* Workspace-shape gauges (database version, entry count, branch count)
     cached here so a stats scrape never touches the session's version
     store from a foreign domain — the owning shard refreshes them after
     every session verb ([record_op]), so they are at most one operation
     stale for sessions sharing a store across shards. *)
  mutable db_version : int;
  mutable entries : int;
  mutable branches : int;
}

(* Latency samples retained per session for the percentile report.  Beyond
   the cap the window slides: percentiles describe the most recent
   [latency_keep] requests (mean/max stay all-time).  Mirrors the
   Obs.Histogram reservoir fix — a long-lived session must not retain one
   float per request forever. *)
let latency_keep = 4096

type session = {
  sid : string;
  scenario : Protocol.scenario;
  opened_at : float;
  store : Version.Store.t;
  mutable branch : string;
  (* Shard pinning key: assigned per version *store*, so sessions sharing
     a store (open_branch) land on one worker shard and their commits —
     which mutate the shared store's tables — serialize without locks. *)
  affinity : int;
  metrics : metrics;
}

type t = {
  cache : Engine.Eval_cache.t option;
  algorithm : Clio.Eval_ctx.algorithm;
  jobs : int;
  (* Guards [sessions]: opened/found/closed from any worker shard. *)
  sessions_mutex : Mutex.t;
  sessions : (string, session) Hashtbl.t;
  next_sid : int Atomic.t;
  next_affinity : int Atomic.t;
  opened_total : int Atomic.t;
  requests_total : int Atomic.t;
  errors_total : int Atomic.t;
  overloads_total : int Atomic.t;
  started_at : float;
}

let create ?(algorithm = Clio.Eval_ctx.Indexed) ?jobs ?(no_cache = false)
    ?cache_bytes () =
  let jobs = match jobs with Some j -> j | None -> Par.default_jobs () in
  let cache =
    if no_cache then None
    else Some (Engine.Eval_cache.create ?byte_budget:cache_bytes ())
  in
  {
    cache;
    algorithm;
    jobs;
    sessions_mutex = Mutex.create ();
    sessions = Hashtbl.create 16;
    next_sid = Atomic.make 1;
    next_affinity = Atomic.make 0;
    opened_total = Atomic.make 0;
    requests_total = Atomic.make 0;
    errors_total = Atomic.make 0;
    overloads_total = Atomic.make 0;
    started_at = Unix.gettimeofday ();
  }

let cache t = t.cache
let jobs t = t.jobs

(* The workspace factory every session's version store resolves scenarios
   through: all contexts share the registry's one cache, jobs setting and
   algorithm, so sessions (and branches, and changelog replays) key their
   memo entries into the same cache.  Deterministic per spec — resolution
   itself is memoized in [Scenario]. *)
let resolver t spec =
  let db, kb, mapping = Scenario.resolve spec in
  let ctx =
    match t.cache with
    | Some cache ->
        Clio.Eval_ctx.create ~algorithm:t.algorithm ~cache ~jobs:t.jobs ~kb db
    | None ->
        Clio.Eval_ctx.create ~algorithm:t.algorithm ~no_cache:true ~jobs:t.jobs
          ~kb db
  in
  Clio.Workspace.create ctx mapping

let ws s = Version.Store.checkout s.store s.branch
let affinity s = s.affinity

let fresh_metrics () =
  {
    mutex = Mutex.create ();
    per_op = Hashtbl.create 8;
    cache_deltas = Hashtbl.create 8;
    requests = 0;
    errors = 0;
    latencies_us = [];
    latency_retained = 0;
    latency_max = 0.;
    latency_sum = 0.;
    db_version = 0;
    entries = 0;
    branches = 0;
  }

let fresh_sid t = Printf.sprintf "s%d" (Atomic.fetch_and_add t.next_sid 1)

(* Refresh the cached workspace-shape gauges from the store.  Called only
   where the caller owns the store: at session creation (the opening
   request is the only one touching a fresh store; open_branch runs on the
   base session's shard) and from [record_op] on the session's shard. *)
let refresh_gauges s =
  let m = s.metrics in
  let ws = ws s in
  let db_version = Clio.Eval_ctx.version (Clio.Workspace.ctx ws) in
  let entries = List.length (Clio.Workspace.entries ws) in
  let branches = List.length (Version.Store.branch_names s.store) in
  Mutex.protect m.mutex (fun () ->
      m.db_version <- db_version;
      m.entries <- entries;
      m.branches <- branches)

let add_session t ~scenario ~store ~branch ~affinity =
  let session =
    {
      sid = fresh_sid t;
      scenario;
      opened_at = Unix.gettimeofday ();
      store;
      branch;
      affinity;
      metrics = fresh_metrics ();
    }
  in
  refresh_gauges session;
  Atomic.incr t.opened_total;
  Mutex.protect t.sessions_mutex (fun () ->
      Hashtbl.replace t.sessions session.sid session);
  session

let open_session t spec =
  let store = Version.Store.create ~resolve:(resolver t) spec in
  add_session t ~scenario:spec ~store ~branch:Version.Store.main
    ~affinity:(Atomic.fetch_and_add t.next_affinity 1)

let find t sid =
  Mutex.protect t.sessions_mutex (fun () -> Hashtbl.find_opt t.sessions sid)

(* A new session over an existing session's store, positioned on one of
   its branches — two clients refining one scenario, isolated per branch.
   The store (and through it the commit DAG) is shared by reference, and
   with it the base session's shard affinity: the new session's commits
   mutate the same store, so they must serialize onto the same shard. *)
let open_branch t ~of_session ~branch =
  match find t of_session with
  | None -> None
  | Some base ->
      if not (Version.Store.has_branch base.store branch) then
        invalid_arg (Printf.sprintf "unknown branch %S" branch)
      else
        Some
          (add_session t ~scenario:base.scenario ~store:base.store ~branch
             ~affinity:base.affinity)

let close_session t sid =
  Mutex.protect t.sessions_mutex (fun () ->
      if Hashtbl.mem t.sessions sid then begin
        Hashtbl.remove t.sessions sid;
        true
      end
      else false)

let session_count t =
  Mutex.protect t.sessions_mutex (fun () -> Hashtbl.length t.sessions)

let session_ids t =
  Mutex.protect t.sessions_mutex (fun () ->
      Hashtbl.fold (fun sid _ acc -> sid :: acc) t.sessions [])
  |> List.sort compare

let count_request t = Atomic.incr t.requests_total
let count_error t = Atomic.incr t.errors_total
let count_overload t = Atomic.incr t.overloads_total
let overloads t = Atomic.get t.overloads_total

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let record_op ?(cache_deltas = []) s ~op ~latency_us ~ok =
  let m = s.metrics in
  Mutex.protect m.mutex (fun () ->
      m.requests <- m.requests + 1;
      if not ok then m.errors <- m.errors + 1;
      Hashtbl.replace m.per_op op
        (1 + Option.value ~default:0 (Hashtbl.find_opt m.per_op op));
      List.iter
        (fun (name, d) ->
          Hashtbl.replace m.cache_deltas name
            (d + Option.value ~default:0 (Hashtbl.find_opt m.cache_deltas name)))
        cache_deltas;
      m.latencies_us <- latency_us :: m.latencies_us;
      m.latency_retained <- m.latency_retained + 1;
      (* amortized O(1): truncate back to the cap only at twice the cap *)
      if m.latency_retained > 2 * latency_keep then begin
        m.latencies_us <- take latency_keep m.latencies_us;
        m.latency_retained <- latency_keep
      end;
      m.latency_sum <- m.latency_sum +. latency_us;
      if latency_us > m.latency_max then m.latency_max <- latency_us);
  (* Off the metrics lock: reads the version store, owned by this shard. *)
  refresh_gauges s

(* Nearest-rank percentile over the retained samples (same convention as
   Obs.Histogram). *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.ceil (q /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

(* Reads only the metrics record (under its lock) — never the version
   store, which belongs to the session's worker shard.  The workspace-shape
   gauges come from the cache [record_op] maintains. *)
let session_stats s =
  let m = s.metrics in
  let sorted, ops, cache, requests, errors, latency_sum, latency_max, dbv, entries, branches
      =
    Mutex.protect m.mutex (fun () ->
        let sorted = Array.of_list m.latencies_us in
        let ops =
          Hashtbl.fold
            (fun op n acc -> ("session.ops." ^ op, float_of_int n) :: acc)
            m.per_op []
          |> List.sort compare
        in
        let cache =
          Hashtbl.fold
            (fun name d acc -> ("session." ^ name, float_of_int d) :: acc)
            m.cache_deltas []
          |> List.sort compare
        in
        ( sorted,
          ops,
          cache,
          m.requests,
          m.errors,
          m.latency_sum,
          m.latency_max,
          m.db_version,
          m.entries,
          m.branches ))
  in
  Array.sort compare sorted;
  [
    ("session.requests", float_of_int requests);
    ("session.errors", float_of_int errors);
    ( "session.latency_us.mean",
      if requests = 0 then 0. else latency_sum /. float_of_int requests );
    ("session.latency_us.p50", percentile sorted 50.);
    ("session.latency_us.p99", percentile sorted 99.);
    ("session.latency_us.max", latency_max);
    ("session.db_version", float_of_int dbv);
    ("session.entries", float_of_int entries);
    ("session.branches", float_of_int branches);
  ]
  @ ops @ cache

let server_stats t =
  (* Refresh the value-pool gauges at scrape time: the pool is
     process-global and never evicts, so these readings are the leak
     detector for long-lived servers (docs/data-plane.md). *)
  Relational.Value_pool.observe ();
  [
    ("server.sessions.open", float_of_int (session_count t));
    ("server.sessions.opened_total", float_of_int (Atomic.get t.opened_total));
    ("server.requests_total", float_of_int (Atomic.get t.requests_total));
    ("server.errors_total", float_of_int (Atomic.get t.errors_total));
    ("server.overloads_total", float_of_int (Atomic.get t.overloads_total));
    ("server.uptime_s", Unix.gettimeofday () -. t.started_at);
    ("server.jobs", float_of_int t.jobs);
    ( "server.value_pool.count",
      float_of_int (Relational.Value_pool.count ()) );
    ( "server.value_pool.bytes",
      float_of_int (Relational.Value_pool.footprint_bytes ()) );
  ]
  @
  match t.cache with
  | None -> [ ("server.cache.enabled", 0.) ]
  | Some cache ->
      [
        ("server.cache.enabled", 1.);
        ( "server.cache.entries",
          float_of_int (Engine.Eval_cache.entry_count cache) );
        ( "server.cache.bytes_resident",
          float_of_int (Engine.Eval_cache.bytes_resident cache) );
      ]

(* Per-session metrics flattened under [sessions.<sid>.], appended to
   no-session [stats] replies so one request paints the whole server —
   what `clio_serve top` renders. *)
let sessions_rollup t =
  List.concat_map
    (fun sid ->
      match find t sid with
      | None -> []
      | Some s ->
          List.map
            (fun (k, v) ->
              let suffix =
                (* keys from [session_stats] all start with "session." *)
                if String.length k > 8 && String.sub k 0 8 = "session." then
                  String.sub k 8 (String.length k - 8)
                else k
              in
              (Printf.sprintf "sessions.%s.%s" sid suffix, v))
            (session_stats s))
    (session_ids t)

(* The same numbers shaped for Prometheus: server.* as plain gauges,
   per-session metrics as [session_*] gauge families with a [session]
   label instead of the sid baked into the name. *)
let prom_gauges t =
  List.map
    (fun (k, v) -> { Obs.Prom_export.gauge_name = k; labels = []; value = v })
    (server_stats t)
  @ List.concat_map
      (fun sid ->
        match find t sid with
        | None -> []
        | Some s ->
            List.map
              (fun (k, v) ->
                {
                  Obs.Prom_export.gauge_name = k;
                  labels = [ ("session", sid) ];
                  value = v;
                })
              (session_stats s))
      (session_ids t)

(* --- persistence: one directory per store, plus a session manifest ---- *)

let registry_file dir = Filename.concat dir "registry.json"
let registry_format = 1

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Persist every open session: each distinct store (sessions opened via
   [open_branch] share one) saves under its own subdirectory, and the
   manifest records which store and branch each sid points at.  Written on
   graceful shutdown; [restore] makes the next boot resume warm. *)
let persist t ~dir =
  mkdir_p dir;
  let stores = ref [] in
  let store_name store =
    match List.find_opt (fun (_, s) -> s == store) !stores with
    | Some (name, _) -> name
    | None ->
        let name = Printf.sprintf "store-%d" (List.length !stores + 1) in
        stores := !stores @ [ (name, store) ];
        name
  in
  let sessions =
    List.filter_map (find t) (session_ids t)
    |> List.map (fun s ->
           J.Obj
             [
               ("sid", J.Str s.sid);
               ("branch", J.Str s.branch);
               ("store", J.Str (store_name s.store));
             ])
  in
  List.iter
    (fun (name, store) ->
      Version.Store.save store ~dir:(Filename.concat dir name))
    !stores;
  write_file (registry_file dir)
    (J.to_string
       (J.Obj
          [
            ("format", J.Num (float_of_int registry_format));
            ("next_sid", J.Num (float_of_int (Atomic.get t.next_sid)));
            ("sessions", J.Arr sessions);
          ]))

let fail fmt = Printf.ksprintf failwith fmt

(* Rebuild the sessions recorded by [persist]: load each store once
   (changelog replay re-warms the shared cache as a side effect) and
   re-point the recorded sids at the recovered branches.  Session metrics
   restart at zero — they describe this process's requests.  Returns the
   number of sessions restored. *)
let restore t ~dir =
  let j =
    match J.parse (read_file (registry_file dir)) with
    | Ok j -> j
    | Error msg -> fail "Registry.restore: unreadable manifest: %s" msg
  in
  (match J.member "format" j with
  | Some (J.Num f) when int_of_float f = registry_format -> ()
  | _ -> fail "Registry.restore: unsupported manifest format");
  let next_sid =
    match J.member "next_sid" j with
    | Some (J.Num f) when Float.is_integer f -> int_of_float f
    | _ -> fail "Registry.restore: missing next_sid"
  in
  let loaded = Hashtbl.create 4 in
  (* One affinity per distinct store, like [open_session]/[open_branch]:
     restored sessions sharing a store must land on one worker shard. *)
  let store_of name =
    match Hashtbl.find_opt loaded name with
    | Some pair -> pair
    | None ->
        let store =
          Version.Store.load ~resolve:(resolver t)
            ~dir:(Filename.concat dir name) ()
        in
        let pair = (store, Atomic.fetch_and_add t.next_affinity 1) in
        Hashtbl.replace loaded name pair;
        pair
  in
  let restored = ref 0 in
  (match J.member "sessions" j with
  | Some (J.Arr sessions) ->
      List.iter
        (fun s ->
          match (J.member "sid" s, J.member "branch" s, J.member "store" s) with
          | Some (J.Str sid), Some (J.Str branch), Some (J.Str store_name) ->
              let store, affinity = store_of store_name in
              if not (Version.Store.has_branch store branch) then
                fail "Registry.restore: session %s names unknown branch %S" sid
                  branch;
              let session =
                {
                  sid;
                  scenario = Version.Store.spec store;
                  opened_at = Unix.gettimeofday ();
                  store;
                  branch;
                  affinity;
                  metrics = fresh_metrics ();
                }
              in
              refresh_gauges session;
              Mutex.protect t.sessions_mutex (fun () ->
                  Hashtbl.replace t.sessions sid session);
              Atomic.incr t.opened_total;
              incr restored
          | _ -> fail "Registry.restore: malformed session entry")
        sessions
  | _ -> fail "Registry.restore: missing sessions");
  (let rec bump () =
     let cur = Atomic.get t.next_sid in
     if next_sid > cur && not (Atomic.compare_and_set t.next_sid cur next_sid)
     then bump ()
   in
   bump ());
  !restored
