(** The request executor: one {!Protocol.envelope} in, one
    {!Protocol.response} out, against the shared {!Registry}.

    This layer is transport-free — the event loop ({!Loop}) and the
    in-process load generator ({!Loadgen}) both drive it — and owns the
    error discipline: session-verb exceptions ([Invalid_argument],
    [Not_found]) become [Bad_request] replies, anything unexpected becomes
    [Internal], and nothing escapes to the caller.  Per-session [session.*]
    metrics (verb counts, latency percentiles) are recorded here, around
    each executed request. *)

type t

val create : Registry.t -> t
val registry : t -> Registry.t

(** Set once by the event loop: extra [server.*] gauges (queue depth,
    connection count) appended to no-session [stats] replies. *)
val set_extra_stats : t -> (unit -> (string * float) list) -> unit

(** Telemetry sinks ({!Telemetry.none} until set).  Every executed request
    runs under an {!Obs.Scope} — the client's [trace_id] when sent, a
    server-assigned id otherwise — whose record feeds the
    [request.complete] log line, the per-session cache attribution, and
    the slow-request exemplar ring. *)
val set_telemetry : t -> Telemetry.t -> unit

val telemetry : t -> Telemetry.t

(** [true] after a [shutdown] request was accepted: the owner should stop
    admitting work, finish what is queued, and exit. *)
val draining : t -> bool

(** The short operation name a request is attributed under in stats,
    logs and the load generator's latency dump ("evaluate", "rotate", …). *)
val verb_name : Protocol.request -> string

val handle : t -> Protocol.envelope -> Protocol.response

(** Parse one frame, execute it, encode the reply (no trailing newline).
    Malformed frames yield an encoded error reply, never an exception. *)
val handle_frame : t -> string -> string
