open Relational
module J = Obs.Json

(* The spec type lives in the version library (snapshots embed it); the
   protocol re-exports it with an equation so both sides keep pattern
   matching on [Protocol.Paper] etc. *)
type scenario = Version.Scenario.t =
  | Paper
  | Chain of { n : int; rows : int; seed : int }
  | Star of { leaves : int; rows : int; seed : int }

let scenario_to_string = Version.Scenario.to_string

type what = Dg | Fj | Target

let what_name = function Dg -> "dg" | Fj -> "fj" | Target -> "target"

type request =
  | Ping
  | Open_session of scenario
  | Close_session
  | Evaluate of { what : what; limit : int option }
  | Offer of { start : string; goal : string; max_len : int }
  | Rotate
  | Select of { entry : int }
  | Delete of { entry : int }
  | Confirm
  | Insert of { relation : string; rows : Value.t array list }
  | Rank
  | Branch of { name : string }
  | Checkout of { name : string }
  | Merge of { from_ : string }
  | Diff of { other : string }
  | Branches
  | Open_branch of { of_session : string; branch : string }
  | Stats
  | Metrics_prom
  | Shutdown

type envelope = {
  id : int;
  session : string option;
  request : request;
  trace_id : string option;
}

type entry_info = {
  entry : int;
  label : string;
  graph : string;
  active : bool;
  score : int option;
}

type eval_info = {
  what : what;
  count : int;
  scheme : string list;
  digest : string;
  rows : string list list option;
}

type result =
  | Pong
  | Opened of { session : string; relations : string list; version : int }
  | Closed
  | Evaluated of eval_info
  | Entries of entry_info list
  | Inserted of { fresh : bool; version : int }
  | Branched of { branch : string; version : int }
  | Checked_out of { branch : string; version : int }
  | Merged of { branch : string; rows : int; version : int }
  | Branch_list of { current : string; branches : (string * int) list }
  | Stats_report of (string * float) list
  | Prom_text of string
  | Bye

type error_code =
  | Parse_error
  | Bad_request
  | Unknown_session
  | Overloaded
  | Unavailable
  | Internal

let error_code_name = function
  | Parse_error -> "parse_error"
  | Bad_request -> "bad_request"
  | Unknown_session -> "unknown_session"
  | Overloaded -> "overloaded"
  | Unavailable -> "unavailable"
  | Internal -> "internal"

let error_code_of_name = function
  | "parse_error" -> Some Parse_error
  | "bad_request" -> Some Bad_request
  | "unknown_session" -> Some Unknown_session
  | "overloaded" -> Some Overloaded
  | "unavailable" -> Some Unavailable
  | "internal" -> Some Internal
  | _ -> None

type response = {
  id : int option;
  result : (result, error_code * string) Stdlib.result;
  trace_id : string option;
}

(* --- value <-> JSON ---

   Integral numbers decode to [Int]; [Value.equal] treats numerically
   equal [Int]/[Float] as equal, so the coercion is invisible to the
   relational layer.  Non-finite floats would emit as [null] (Json's
   rule) and are rejected on encode instead of silently becoming nulls. *)

let json_of_value = Version.Op.json_of_value
let value_of_json = Version.Op.value_of_json

(* --- encoding: requests --- *)

let scenario_json = Version.Scenario.to_json

let request_fields = function
  | Ping -> ("ping", [])
  | Open_session sc -> ("open", [ ("scenario", scenario_json sc) ])
  | Close_session -> ("close", [])
  | Evaluate { what; limit } ->
      ( "evaluate",
        ("what", J.Str (what_name what))
        ::
        (match limit with
        | None -> []
        | Some k -> [ ("limit", J.Num (float_of_int k)) ]) )
  | Offer { start; goal; max_len } ->
      ( "offer",
        [
          ("start", J.Str start);
          ("goal", J.Str goal);
          ("max_len", J.Num (float_of_int max_len));
        ] )
  | Rotate -> ("rotate", [])
  | Select { entry } -> ("select", [ ("entry", J.Num (float_of_int entry)) ])
  | Delete { entry } -> ("delete", [ ("entry", J.Num (float_of_int entry)) ])
  | Confirm -> ("confirm", [])
  | Insert { relation; rows } ->
      ( "insert",
        [
          ("relation", J.Str relation);
          ( "rows",
            J.Arr
              (List.map
                 (fun row ->
                   J.Arr (Array.to_list (Array.map json_of_value row)))
                 rows) );
        ] )
  | Rank -> ("rank", [])
  | Branch { name } -> ("branch", [ ("name", J.Str name) ])
  | Checkout { name } -> ("checkout", [ ("name", J.Str name) ])
  | Merge { from_ } -> ("merge", [ ("from", J.Str from_) ])
  | Diff { other } -> ("diff", [ ("other", J.Str other) ])
  | Branches -> ("branches", [])
  | Open_branch { of_session; branch } ->
      ( "open_branch",
        [ ("of_session", J.Str of_session); ("branch", J.Str branch) ] )
  | Stats -> ("stats", [])
  | Metrics_prom -> ("metrics_prom", [])
  | Shutdown -> ("shutdown", [])

let encode_request { id; session; request; trace_id } =
  let op, fields = request_fields request in
  let session_field =
    match session with None -> [] | Some s -> [ ("session", J.Str s) ]
  in
  (* trace_id is emitted only when present, so a client that never sends
     one produces frames byte-identical to the pre-telemetry protocol. *)
  let trace_field =
    match trace_id with None -> [] | Some t -> [ ("trace_id", J.Str t) ]
  in
  J.to_string
    (J.Obj
       ((("id", J.Num (float_of_int id)) :: ("op", J.Str op) :: session_field)
       @ trace_field @ fields))

(* --- encoding: responses --- *)

let result_json = function
  | Pong -> J.Obj [ ("kind", J.Str "pong") ]
  | Opened { session; relations; version } ->
      J.Obj
        [
          ("kind", J.Str "opened");
          ("session", J.Str session);
          ("relations", J.Arr (List.map (fun r -> J.Str r) relations));
          ("version", J.Num (float_of_int version));
        ]
  | Closed -> J.Obj [ ("kind", J.Str "closed") ]
  | Evaluated { what; count; scheme; digest; rows } ->
      J.Obj
        ([
           ("kind", J.Str "evaluated");
           ("what", J.Str (what_name what));
           ("count", J.Num (float_of_int count));
           ("scheme", J.Arr (List.map (fun c -> J.Str c) scheme));
           ("digest", J.Str digest);
         ]
        @
        match rows with
        | None -> []
        | Some rows ->
            [
              ( "rows",
                J.Arr
                  (List.map
                     (fun row -> J.Arr (List.map (fun c -> J.Str c) row))
                     rows) );
            ])
  | Entries entries ->
      J.Obj
        [
          ("kind", J.Str "entries");
          ( "entries",
            J.Arr
              (List.map
                 (fun e ->
                   J.Obj
                     ([
                        ("entry", J.Num (float_of_int e.entry));
                        ("label", J.Str e.label);
                        ("graph", J.Str e.graph);
                        ("active", J.Bool e.active);
                      ]
                     @
                     match e.score with
                     | None -> []
                     | Some s -> [ ("score", J.Num (float_of_int s)) ]))
                 entries) );
        ]
  | Inserted { fresh; version } ->
      J.Obj
        [
          ("kind", J.Str "inserted");
          ("fresh", J.Bool fresh);
          ("version", J.Num (float_of_int version));
        ]
  | Branched { branch; version } ->
      J.Obj
        [
          ("kind", J.Str "branched");
          ("branch", J.Str branch);
          ("version", J.Num (float_of_int version));
        ]
  | Checked_out { branch; version } ->
      J.Obj
        [
          ("kind", J.Str "checked_out");
          ("branch", J.Str branch);
          ("version", J.Num (float_of_int version));
        ]
  | Merged { branch; rows; version } ->
      J.Obj
        [
          ("kind", J.Str "merged");
          ("branch", J.Str branch);
          ("rows", J.Num (float_of_int rows));
          ("version", J.Num (float_of_int version));
        ]
  | Branch_list { current; branches } ->
      J.Obj
        [
          ("kind", J.Str "branches");
          ("current", J.Str current);
          ( "branches",
            J.Arr
              (List.map
                 (fun (name, version) ->
                   J.Obj
                     [
                       ("name", J.Str name);
                       ("version", J.Num (float_of_int version));
                     ])
                 branches) );
        ]
  | Stats_report counters ->
      J.Obj
        [
          ("kind", J.Str "stats");
          ("counters", J.Obj (List.map (fun (k, v) -> (k, J.Num v)) counters));
        ]
  | Prom_text text ->
      J.Obj [ ("kind", J.Str "prom"); ("text", J.Str text) ]
  | Bye -> J.Obj [ ("kind", J.Str "bye") ]

let encode_response { id; result; trace_id } =
  let id_field =
    match id with
    | Some id -> [ ("id", J.Num (float_of_int id)) ]
    | None -> [ ("id", J.Null) ]
  in
  (* Echoed only when the request carried one: replies to trace-id-less
     clients stay byte-identical to the pre-telemetry protocol. *)
  let trace_field =
    match trace_id with None -> [] | Some t -> [ ("trace_id", J.Str t) ]
  in
  match result with
  | Ok r ->
      J.to_string
        (J.Obj
           (id_field @ trace_field
           @ [ ("ok", J.Bool true); ("result", result_json r) ]))
  | Error (code, message) ->
      J.to_string
        (J.Obj
           (id_field @ trace_field
           @ [
               ("ok", J.Bool false);
               ( "error",
                 J.Obj
                   [
                     ("code", J.Str (error_code_name code));
                     ("message", J.Str message);
                   ] );
             ]))

let ok ?trace_id id r = { id = Some id; result = Ok r; trace_id }
let error ?trace_id id code message = { id; result = Error (code, message); trace_id }

(* --- parsing helpers --- *)

exception Reject of string

let reject fmt = Printf.ksprintf (fun m -> raise (Reject m)) fmt

let str_field name j =
  match J.member name j with
  | Some (J.Str s) -> s
  | Some _ -> reject "field %S must be a string" name
  | None -> reject "missing field %S" name

let int_field ?default name j =
  match (J.member name j, default) with
  | Some (J.Num f), _ when Float.is_integer f && Float.abs f <= 1e15 ->
      int_of_float f
  | Some _, _ -> reject "field %S must be an integer" name
  | None, Some d -> d
  | None, None -> reject "missing field %S" name

let opt_int_field name j =
  match J.member name j with
  | None -> None
  | Some (J.Num f) when Float.is_integer f && Float.abs f <= 1e15 ->
      Some (int_of_float f)
  | Some _ -> reject "field %S must be an integer" name

(* --- parsing: requests --- *)

let scenario_of_json j =
  match Version.Scenario.of_json j with
  | Ok sc -> sc
  | Error msg -> reject "%s" msg

let request_of_json j =
  match str_field "op" j with
  | "ping" -> Ping
  | "open" -> (
      match J.member "scenario" j with
      | Some sc -> Open_session (scenario_of_json sc)
      | None -> reject "missing field \"scenario\"")
  | "close" -> Close_session
  | "evaluate" ->
      let what =
        match str_field "what" j with
        | "dg" -> Dg
        | "fj" -> Fj
        | "target" -> Target
        | w -> reject "unknown evaluate target %S" w
      in
      Evaluate { what; limit = opt_int_field "limit" j }
  | "offer" ->
      Offer
        {
          start = str_field "start" j;
          goal = str_field "goal" j;
          max_len = int_field ~default:2 "max_len" j;
        }
  | "rotate" -> Rotate
  | "select" -> Select { entry = int_field "entry" j }
  | "delete" -> Delete { entry = int_field "entry" j }
  | "confirm" -> Confirm
  | "insert" ->
      let rows =
        match J.member "rows" j with
        | Some (J.Arr rows) ->
            List.map
              (fun row ->
                match row with
                | J.Arr cells ->
                    Array.of_list
                      (List.map
                         (fun c ->
                           match value_of_json c with
                           | Ok v -> v
                           | Error m -> reject "%s" m)
                         cells)
                | _ -> reject "each row must be an array of cells")
              rows
        | Some _ -> reject "field \"rows\" must be an array"
        | None -> reject "missing field \"rows\""
      in
      Insert { relation = str_field "relation" j; rows }
  | "rank" -> Rank
  | "branch" -> Branch { name = str_field "name" j }
  | "checkout" -> Checkout { name = str_field "name" j }
  | "merge" -> Merge { from_ = str_field "from" j }
  | "diff" -> Diff { other = str_field "other" j }
  | "branches" -> Branches
  | "open_branch" ->
      Open_branch
        {
          of_session = str_field "of_session" j;
          branch = str_field "branch" j;
        }
  | "stats" -> Stats
  | "metrics_prom" -> Metrics_prom
  | "shutdown" -> Shutdown
  | op -> reject "unknown op %S" op

let trace_id_of_json j =
  match J.member "trace_id" j with
  | Some (J.Str s) -> Some s
  | Some J.Null | None -> None
  | Some _ -> reject "field \"trace_id\" must be a string"

let parse_request line =
  match J.parse line with
  | Error msg -> Error (None, Parse_error, msg)
  | Ok j -> (
      let id =
        match J.member "id" j with
        | Some (J.Num f) when Float.is_integer f && f >= 0. && f <= 1e15 ->
            Some (int_of_float f)
        | _ -> None
      in
      match id with
      | None ->
          Error (None, Bad_request, "\"id\" must be a non-negative integer")
      | Some id -> (
          try
            let session =
              match J.member "session" j with
              | Some (J.Str s) -> Some s
              | Some J.Null | None -> None
              | Some _ -> reject "field \"session\" must be a string"
            in
            let trace_id = trace_id_of_json j in
            Ok { id; session; request = request_of_json j; trace_id }
          with Reject msg -> Error (Some id, Bad_request, msg)))

(* --- parsing: responses --- *)

let result_of_json j =
  match str_field "kind" j with
  | "pong" -> Pong
  | "opened" ->
      Opened
        {
          session = str_field "session" j;
          relations =
            (match J.member "relations" j with
            | Some (J.Arr rs) ->
                List.map
                  (function
                    | J.Str s -> s | _ -> reject "relation names must be strings")
                  rs
            | _ -> reject "missing field \"relations\"");
          version = int_field "version" j;
        }
  | "closed" -> Closed
  | "evaluated" ->
      Evaluated
        {
          what =
            (match str_field "what" j with
            | "dg" -> Dg
            | "fj" -> Fj
            | "target" -> Target
            | w -> reject "unknown evaluate target %S" w);
          count = int_field "count" j;
          scheme =
            (match J.member "scheme" j with
            | Some (J.Arr cs) ->
                List.map
                  (function J.Str s -> s | _ -> reject "scheme must be strings")
                  cs
            | _ -> reject "missing field \"scheme\"");
          digest = str_field "digest" j;
          rows =
            (match J.member "rows" j with
            | None -> None
            | Some (J.Arr rows) ->
                Some
                  (List.map
                     (function
                       | J.Arr cells ->
                           List.map
                             (function
                               | J.Str s -> s
                               | _ -> reject "row cells must be strings")
                             cells
                       | _ -> reject "rows must be arrays")
                     rows)
            | Some _ -> reject "field \"rows\" must be an array");
        }
  | "entries" ->
      Entries
        (match J.member "entries" j with
        | Some (J.Arr es) ->
            List.map
              (fun e ->
                {
                  entry = int_field "entry" e;
                  label = str_field "label" e;
                  graph = str_field "graph" e;
                  active =
                    (match J.member "active" e with
                    | Some (J.Bool b) -> b
                    | _ -> reject "field \"active\" must be a boolean");
                  score = opt_int_field "score" e;
                })
              es
        | _ -> reject "missing field \"entries\"")
  | "inserted" ->
      Inserted
        {
          fresh =
            (match J.member "fresh" j with
            | Some (J.Bool b) -> b
            | _ -> reject "field \"fresh\" must be a boolean");
          version = int_field "version" j;
        }
  | "branched" ->
      Branched
        { branch = str_field "branch" j; version = int_field "version" j }
  | "checked_out" ->
      Checked_out
        { branch = str_field "branch" j; version = int_field "version" j }
  | "merged" ->
      Merged
        {
          branch = str_field "branch" j;
          rows = int_field "rows" j;
          version = int_field "version" j;
        }
  | "branches" ->
      Branch_list
        {
          current = str_field "current" j;
          branches =
            (match J.member "branches" j with
            | Some (J.Arr bs) ->
                List.map
                  (fun b -> (str_field "name" b, int_field "version" b))
                  bs
            | _ -> reject "missing field \"branches\"");
        }
  | "stats" ->
      Stats_report
        (match J.member "counters" j with
        | Some (J.Obj fields) ->
            List.map
              (fun (k, v) ->
                match v with
                | J.Num f -> (k, f)
                | _ -> reject "counter values must be numbers"
                )
              fields
        | _ -> reject "missing field \"counters\"")
  | "prom" -> Prom_text (str_field "text" j)
  | "bye" -> Bye
  | k -> reject "unknown result kind %S" k

let parse_response line =
  match J.parse line with
  | Error msg -> Error msg
  | Ok j -> (
      try
        let id =
          match J.member "id" j with
          | Some (J.Num f) when Float.is_integer f && f >= 0. && f <= 1e15 ->
              Some (int_of_float f)
          | Some J.Null -> None
          | _ -> reject "\"id\" must be an integer or null"
        in
        let trace_id = trace_id_of_json j in
        match J.member "ok" j with
        | Some (J.Bool true) -> (
            match J.member "result" j with
            | Some r -> Ok { id; result = Ok (result_of_json r); trace_id }
            | None -> reject "missing field \"result\"")
        | Some (J.Bool false) -> (
            match J.member "error" j with
            | Some e ->
                let code_name = str_field "code" e in
                let code =
                  match error_code_of_name code_name with
                  | Some c -> c
                  | None -> reject "unknown error code %S" code_name
                in
                Ok { id; result = Error (code, str_field "message" e); trace_id }
            | None -> reject "missing field \"error\"")
        | _ -> reject "\"ok\" must be a boolean"
      with Reject msg -> Error msg)
