module P = Protocol
module J = Obs.Json

type address = Unix_path of string | Tcp of int

type stop_reason = Drained | Interrupted of int

type config = {
  address : address;
  queue_capacity : int;
  max_frame : int;
  max_connections : int;
}

let default_config address =
  { address; queue_capacity = 64; max_frame = 8 * 1024 * 1024; max_connections = 64 }

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable outbuf : string;
  mutable closing : bool;  (** close once [outbuf] drains *)
}

let listen_socket = function
  | Unix_path path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 16;
      fd
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 16;
      fd

let send conn line = conn.outbuf <- conn.outbuf ^ line ^ "\n"

(* Split complete frames off the connection's input buffer. *)
let take_frames conn =
  let data = Buffer.contents conn.inbuf in
  let frames = ref [] and start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        frames := String.sub data !start (i - !start) :: !frames;
        start := i + 1
      end)
    data;
  Buffer.clear conn.inbuf;
  Buffer.add_substring conn.inbuf data !start (String.length data - !start);
  List.rev !frames

let run ?on_ready config service =
  let registry = Service.registry service in
  let telemetry = Service.telemetry service in
  let tlog level event fields = Telemetry.log telemetry level event fields in
  let lfd = listen_socket config.address in
  (* [Some code] once a signal fired: the conventional exit code (130 for
     SIGINT, 143 for SIGTERM) the caller should exit with after the
     drain. *)
  let stop : int option ref = ref None in
  let prev_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := Some 143))
  and prev_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := Some 130))
  and prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let queue : (conn * P.envelope) Queue.t = Queue.create () in
  Service.set_extra_stats service (fun () ->
      [
        ("server.queue.depth", float_of_int (Queue.length queue));
        ("server.queue.capacity", float_of_int config.queue_capacity);
        ("server.connections", float_of_int (Hashtbl.length conns));
      ]);
  let close_conn conn =
    Hashtbl.remove conns conn.fd;
    tlog Obs.Event_log.Debug "conn.close"
      [ ("connections", J.Num (float_of_int (Hashtbl.length conns))) ];
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  in
  let accept_ready () =
    match Unix.accept lfd with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | fd, _ ->
        Unix.set_nonblock fd;
        let conn =
          { fd; inbuf = Buffer.create 256; outbuf = ""; closing = false }
        in
        if Hashtbl.length conns >= config.max_connections then begin
          (* Reject at the door, but with a frame the client can parse. *)
          conn.closing <- true;
          tlog Obs.Event_log.Warn "conn.reject"
            [ ("reason", J.Str "connection limit reached") ];
          send conn
            (P.encode_response
               (P.error None P.Overloaded "connection limit reached"))
        end
        else
          tlog Obs.Event_log.Debug "conn.accept"
            [ ("connections", J.Num (float_of_int (1 + Hashtbl.length conns))) ];
        Hashtbl.replace conns fd conn
  in
  let admit conn frame =
    match P.parse_request frame with
    | Error (id, code, msg) ->
        Registry.count_request registry;
        Registry.count_error registry;
        tlog Obs.Event_log.Warn "request.parse_error"
          (("message", J.Str msg)
          ::
          (match id with
          | Some id -> [ ("id", J.Num (float_of_int id)) ]
          | None -> []));
        send conn (P.encode_response (P.error id code msg))
    | Ok env ->
        if Queue.length queue >= config.queue_capacity then begin
          Registry.count_request registry;
          Registry.count_error registry;
          Registry.count_overload registry;
          tlog Obs.Event_log.Warn "request.overload"
            (("id", J.Num (float_of_int env.P.id))
            ::
            (match env.P.trace_id with
            | Some tid -> [ ("trace_id", J.Str tid) ]
            | None -> []));
          send conn
            (P.encode_response
               (P.error ?trace_id:env.P.trace_id (Some env.P.id) P.Overloaded
                  "request queue full, retry later"))
        end
        else begin
          tlog Obs.Event_log.Debug "request.admit"
            [
              ("id", J.Num (float_of_int env.P.id));
              ("queued", J.Num (float_of_int (1 + Queue.length queue)));
            ];
          Queue.add (conn, env) queue
        end
  in
  let read_ready conn =
    let chunk = Bytes.create 65536 in
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> close_conn conn
    | 0 ->
        (* Peer closed its write side; anything buffered without a final
           newline is not a frame. *)
        if conn.outbuf = "" then close_conn conn else conn.closing <- true
    | n ->
        Buffer.add_subbytes conn.inbuf chunk 0 n;
        List.iter (admit conn) (take_frames conn);
        if Buffer.length conn.inbuf > config.max_frame then begin
          send conn
            (P.encode_response
               (P.error None P.Parse_error "frame too large"));
          conn.closing <- true
        end
  in
  let write_ready conn =
    let len = String.length conn.outbuf in
    match Unix.single_write_substring conn.fd conn.outbuf 0 len with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> close_conn conn
    | n ->
        conn.outbuf <- String.sub conn.outbuf n (len - n);
        if conn.outbuf = "" && conn.closing then close_conn conn
  in
  let execute_queued () =
    while not (Queue.is_empty queue) do
      let conn, env = Queue.pop queue in
      let reply = Service.handle service env in
      if Hashtbl.mem conns conn.fd then
        send conn (P.encode_response reply)
    done
  in
  Unix.set_nonblock lfd;
  (match on_ready with Some f -> f () | None -> ());
  let draining () = !stop <> None || Service.draining service in
  (* Main phase: accept, read, execute, write. *)
  while not (draining ()) do
    let reads =
      lfd
      :: Hashtbl.fold
           (fun fd conn acc -> if conn.closing then acc else fd :: acc)
           conns []
    and writes =
      Hashtbl.fold
        (fun fd conn acc -> if conn.outbuf <> "" then fd :: acc else acc)
        conns []
    in
    match Unix.select reads writes [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        List.iter
          (fun fd ->
            if fd = lfd then accept_ready ()
            else
              match Hashtbl.find_opt conns fd with
              | Some conn -> read_ready conn
              | None -> ())
          readable;
        execute_queued ();
        List.iter
          (fun fd ->
            match Hashtbl.find_opt conns fd with
            | Some conn -> write_ready conn
            | None -> ())
          writable
  done;
  (* Drain phase: no more reads or accepts; answer what was queued and
     flush every connection, bounded so a stuck peer cannot wedge exit. *)
  tlog Obs.Event_log.Info "server.drain"
    [
      ( "reason",
        J.Str
          (match !stop with
          | Some 130 -> "sigint"
          | Some _ -> "sigterm"
          | None -> "shutdown_request") );
      ("queued", J.Num (float_of_int (Queue.length queue)));
    ];
  execute_queued ();
  let deadline = Unix.gettimeofday () +. 5.0 in
  let pending () =
    Hashtbl.fold (fun _ c acc -> acc || c.outbuf <> "") conns false
  in
  while pending () && Unix.gettimeofday () < deadline do
    let writes =
      Hashtbl.fold
        (fun fd conn acc -> if conn.outbuf <> "" then fd :: acc else acc)
        conns []
    in
    match Unix.select [] writes [] 0.1 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | _, writable, _ ->
        List.iter
          (fun fd ->
            match Hashtbl.find_opt conns fd with
            | Some conn -> write_ready conn
            | None -> ())
          writable
  done;
  Hashtbl.iter (fun _ conn -> try Unix.close conn.fd with _ -> ()) conns;
  Hashtbl.reset conns;
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (match config.address with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  Sys.set_signal Sys.sigterm prev_term;
  Sys.set_signal Sys.sigint prev_int;
  Sys.set_signal Sys.sigpipe prev_pipe;
  let reason =
    match !stop with Some code -> Interrupted code | None -> Drained
  in
  tlog Obs.Event_log.Info "server.shutdown"
    [
      ( "exit",
        J.Num (match reason with Interrupted c -> float_of_int c | Drained -> 0.)
      );
    ];
  Telemetry.flush telemetry;
  reason
