module P = Protocol
module J = Obs.Json

type address = Unix_path of string | Tcp of int

type stop_reason = Drained | Interrupted of int

type config = {
  address : address;
  queue_capacity : int;
  max_frame : int;
  max_connections : int;
  workers : int;
}

let default_config address =
  {
    address;
    queue_capacity = 64;
    max_frame = 8 * 1024 * 1024;
    max_connections = 64;
    workers = 1;
  }

(* Per-connection transport state.  Replies are sequenced: every frame —
   dispatched request, parse error, overload — takes the connection's next
   sequence number when it arrives, and encoded replies are flushed into
   [outbuf] strictly in sequence order, so the wire order always matches
   submission order no matter which worker finishes first. *)
type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable outbuf : string;
  mutable closing : bool;  (** close once everything pending drains *)
  inbox : P.envelope Queue.t;  (** parsed frames awaiting dispatch *)
  mutable in_ring : bool;  (** queued in the admission ring *)
  mutable next_seq : int;  (** sequence number of the next frame *)
  mutable next_flush : int;  (** next sequence to flush into [outbuf] *)
  replies : (int, string) Hashtbl.t;  (** completed out-of-order replies *)
  mutable in_plane : int;  (** dispatched to a worker, reply not flushed *)
}

let listen_socket = function
  | Unix_path path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 16;
      fd
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 16;
      fd

(* Split complete frames off the connection's input buffer. *)
let take_frames conn =
  let data = Buffer.contents conn.inbuf in
  let frames = ref [] and start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        frames := String.sub data !start (i - !start) :: !frames;
        start := i + 1
      end)
    data;
  Buffer.clear conn.inbuf;
  Buffer.add_substring conn.inbuf data !start (String.length data - !start);
  List.rev !frames

let run ?on_ready config service =
  let registry = Service.registry service in
  let telemetry = Service.telemetry service in
  let tlog level event fields = Telemetry.log telemetry level event fields in
  let lfd = listen_socket config.address in
  (* The self-pipe: workers write one byte per completed request, signal
     handlers one byte per signal, so the otherwise-indefinitely-blocked
     select below always wakes when there is something to do.  Non-blocking
     on both ends — a full pipe just means a wakeup is already pending. *)
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let wake_byte = Bytes.make 1 '!' in
  let wake () =
    try ignore (Unix.write wake_w wake_byte 0 1) with Unix.Unix_error _ -> ()
  in
  (* [Some code] once a signal fired: the conventional exit code (130 for
     SIGINT, 143 for SIGTERM) the caller should exit with after the
     drain. *)
  let stop : int option ref = ref None in
  let prev_term =
    Sys.signal Sys.sigterm
      (Sys.Signal_handle
         (fun _ ->
           stop := Some 143;
           wake ()))
  and prev_int =
    Sys.signal Sys.sigint
      (Sys.Signal_handle
         (fun _ ->
           stop := Some 130;
           wake ()))
  and prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  (* The worker plane.  Completions cross back to this thread through
     [completions] (mutexed) and the self-pipe; [plane_total] is the
     loop's own count of dispatched-but-unflushed requests — the admission
     budget [queue_capacity] bounds inboxed + in-plane requests. *)
  let completions : (conn * int * string) Queue.t = Queue.create () in
  let completions_mutex = Mutex.create () in
  let workers = Par.Workers.create ~workers:config.workers ~notify:wake in
  let plane_total = ref 0 in
  let inboxed = ref 0 in
  (* Gauges mirrored into atomics so a [stats] request executing on a
     worker domain never reads this thread's mutable state. *)
  let depth_gauge = Atomic.make 0 in
  let conns_gauge = Atomic.make 0 in
  let refresh_gauges () =
    Atomic.set depth_gauge (!inboxed + !plane_total);
    Atomic.set conns_gauge (Hashtbl.length conns)
  in
  Service.set_extra_stats service (fun () ->
      (* Mirror the worker-plane counters into their Obs gauges on every
         scrape — same last-writer-wins [Counter.set] pattern as
         [Value_pool.observe]. *)
      Obs.Counter.set Obs.Names.server_workers_dispatched
        (Par.Workers.dispatched workers);
      Obs.Counter.set Obs.Names.server_workers_busy (Par.Workers.busy workers);
      Obs.Counter.set Obs.Names.server_workers_wait_ms
        (Par.Workers.wait_ms workers);
      [
        ("server.queue.depth", float_of_int (Atomic.get depth_gauge));
        ("server.queue.capacity", float_of_int config.queue_capacity);
        ("server.connections", float_of_int (Atomic.get conns_gauge));
        ("server.workers", float_of_int (Par.Workers.shards workers));
        ("server.workers.busy", float_of_int (Par.Workers.busy workers));
        ( "server.workers.dispatched",
          float_of_int (Par.Workers.dispatched workers) );
        ("server.workers.wait_ms", float_of_int (Par.Workers.wait_ms workers));
      ]);
  let alive conn =
    match Hashtbl.find_opt conns conn.fd with
    | Some c -> c == conn
    | None -> false
  in
  let close_conn conn =
    Hashtbl.remove conns conn.fd;
    tlog Obs.Event_log.Debug "conn.close"
      [ ("connections", J.Num (float_of_int (Hashtbl.length conns))) ];
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  in
  (* A closing connection survives until every dispatched request has come
     back and every reply byte is out — execution effects (inserts,
     shutdown) must land even when the peer hangs up early. *)
  let try_close conn =
    if
      conn.closing && alive conn && conn.outbuf = "" && conn.in_plane = 0
      && Queue.is_empty conn.inbox
    then close_conn conn
  in
  (* Flush completed replies into [outbuf] in sequence order. *)
  let rec flush_replies conn =
    match Hashtbl.find_opt conn.replies conn.next_flush with
    | Some line ->
        Hashtbl.remove conn.replies conn.next_flush;
        conn.next_flush <- conn.next_flush + 1;
        conn.outbuf <- conn.outbuf ^ line ^ "\n";
        flush_replies conn
    | None -> ()
  in
  (* An immediate (loop-synthesized) reply still takes a sequence slot, so
     it cannot overtake the reply to an earlier dispatched frame. *)
  let send_now conn response =
    let seq = conn.next_seq in
    conn.next_seq <- seq + 1;
    Hashtbl.replace conn.replies seq (P.encode_response response);
    flush_replies conn
  in
  (* The admission ring: connections with non-empty inboxes, round-robin.
     One dispatch per turn means a chatty connection cannot starve others
     out of the in-plane budget — its surplus waits in its own inbox, and
     overload falls on whoever overfills their inbox, not on whoever
     arrives while the global queue happens to be full. *)
  let ring : conn Queue.t = Queue.create () in
  let enqueue_ring conn =
    if not conn.in_ring then begin
      conn.in_ring <- true;
      Queue.add conn ring
    end
  in
  (* Pin every session's requests to its store's shard (per-session serial
     — and per-store serial, so branch-sharing sessions cannot race their
     common commit DAG); spread sessionless verbs round-robin.  Requests
     naming an unknown session take the round-robin path and fail on
     whatever shard they land on. *)
  let rr = ref 0 in
  let shard_of (env : P.envelope) =
    let next_rr () =
      let s = !rr in
      incr rr;
      s
    in
    let by_sid sid =
      match Registry.find registry sid with
      | Some s -> Registry.affinity s
      | None -> next_rr ()
    in
    match env.P.session with
    | Some sid -> by_sid sid
    | None -> (
        match env.P.request with
        | P.Open_branch { of_session; _ } -> by_sid of_session
        | _ -> next_rr ())
  in
  let dispatch conn (env : P.envelope) =
    let seq = conn.next_seq in
    conn.next_seq <- seq + 1;
    conn.in_plane <- conn.in_plane + 1;
    incr plane_total;
    tlog Obs.Event_log.Debug "request.admit"
      [
        ("id", J.Num (float_of_int env.P.id));
        ("queued", J.Num (float_of_int (!inboxed + !plane_total)));
      ];
    let shard = shard_of env in
    Par.Workers.submit workers ~shard (fun () ->
        let reply =
          try Service.handle service env
          with exn ->
            P.error ?trace_id:env.P.trace_id (Some env.P.id) P.Internal
              (Printexc.to_string exn)
        in
        let line = P.encode_response reply in
        Mutex.protect completions_mutex (fun () ->
            Queue.add (conn, seq, line) completions))
  in
  (* Move inboxed requests into the worker plane: round-robin across
     connections, bounded by the global budget (unbounded during drain —
     everything parsed must still execute). *)
  let pump ~ignore_budget =
    let budget_ok () =
      ignore_budget || !plane_total < config.queue_capacity
    in
    while budget_ok () && not (Queue.is_empty ring) do
      let conn = Queue.pop ring in
      conn.in_ring <- false;
      if alive conn then begin
        (match Queue.take_opt conn.inbox with
        | Some env ->
            decr inboxed;
            dispatch conn env
        | None -> ());
        if not (Queue.is_empty conn.inbox) then enqueue_ring conn
      end
    done
  in
  (* Hand every completed reply back to its (still-living) connection. *)
  let drain_completions () =
    let rec next () =
      match
        Mutex.protect completions_mutex (fun () ->
            Queue.take_opt completions)
      with
      | None -> ()
      | Some (conn, seq, line) ->
          decr plane_total;
          if alive conn then begin
            conn.in_plane <- conn.in_plane - 1;
            Hashtbl.replace conn.replies seq line;
            flush_replies conn;
            try_close conn
          end;
          next ()
    in
    next ()
  in
  let drain_wake () =
    let buf = Bytes.create 256 in
    let rec go () =
      match Unix.read wake_r buf 0 (Bytes.length buf) with
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | 0 -> ()
      | _ -> go ()
    in
    go ()
  in
  let accept_ready () =
    match Unix.accept lfd with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | fd, _ ->
        Unix.set_nonblock fd;
        let conn =
          {
            fd;
            inbuf = Buffer.create 256;
            outbuf = "";
            closing = false;
            inbox = Queue.create ();
            in_ring = false;
            next_seq = 0;
            next_flush = 0;
            replies = Hashtbl.create 4;
            in_plane = 0;
          }
        in
        if Hashtbl.length conns >= config.max_connections then begin
          (* Reject at the door, but with a frame the client can parse. *)
          conn.closing <- true;
          tlog Obs.Event_log.Warn "conn.reject"
            [ ("reason", J.Str "connection limit reached") ];
          Hashtbl.replace conns fd conn;
          send_now conn (P.error None P.Overloaded "connection limit reached")
        end
        else begin
          tlog Obs.Event_log.Debug "conn.accept"
            [ ("connections", J.Num (float_of_int (1 + Hashtbl.length conns))) ];
          Hashtbl.replace conns fd conn
        end
  in
  let admit conn frame =
    match P.parse_request frame with
    | Error (id, code, msg) ->
        Registry.count_request registry;
        Registry.count_error registry;
        tlog Obs.Event_log.Warn "request.parse_error"
          (("message", J.Str msg)
          ::
          (match id with
          | Some id -> [ ("id", J.Num (float_of_int id)) ]
          | None -> []));
        send_now conn (P.error id code msg)
    | Ok env ->
        (* Per-connection backpressure: a connection may hold at most
           [queue_capacity] frames inboxed or in flight.  The flooding
           connection overflows its own bound; everyone else's inbox
           stays shallow and drains round-robin. *)
        if Queue.length conn.inbox + conn.in_plane >= config.queue_capacity
        then begin
          Registry.count_request registry;
          Registry.count_error registry;
          Registry.count_overload registry;
          tlog Obs.Event_log.Warn "request.overload"
            (("id", J.Num (float_of_int env.P.id))
            ::
            (match env.P.trace_id with
            | Some tid -> [ ("trace_id", J.Str tid) ]
            | None -> []));
          send_now conn
            (P.error ?trace_id:env.P.trace_id (Some env.P.id) P.Overloaded
               "request queue full, retry later")
        end
        else begin
          Queue.add env conn.inbox;
          incr inboxed;
          enqueue_ring conn
        end
  in
  let read_ready conn =
    let chunk = Bytes.create 65536 in
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> close_conn conn
    | 0 ->
        (* Peer closed its write side; anything buffered without a final
           newline is not a frame.  Parsed frames still execute. *)
        conn.closing <- true;
        try_close conn
    | n ->
        Buffer.add_subbytes conn.inbuf chunk 0 n;
        List.iter (admit conn) (take_frames conn);
        if Buffer.length conn.inbuf > config.max_frame then begin
          send_now conn (P.error None P.Parse_error "frame too large");
          conn.closing <- true
        end
  in
  let write_ready conn =
    let len = String.length conn.outbuf in
    match Unix.single_write_substring conn.fd conn.outbuf 0 len with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> close_conn conn
    | n ->
        conn.outbuf <- String.sub conn.outbuf n (len - n);
        try_close conn
  in
  Unix.set_nonblock lfd;
  (match on_ready with Some f -> f () | None -> ());
  let draining () = !stop <> None || Service.draining service in
  (* Main phase: pure I/O — accept, read, admit, collect completions,
     write.  Execution happens on the worker shards.  The select blocks
     indefinitely: the self-pipe wakes it for completions and signals,
     readable sockets for everything else. *)
  while not (draining ()) do
    let reads =
      lfd :: wake_r
      :: Hashtbl.fold
           (fun fd conn acc -> if conn.closing then acc else fd :: acc)
           conns []
    and writes =
      Hashtbl.fold
        (fun fd conn acc -> if conn.outbuf <> "" then fd :: acc else acc)
        conns []
    in
    match Unix.select reads writes [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        if List.memq wake_r readable then drain_wake ();
        drain_completions ();
        List.iter
          (fun fd ->
            if fd = lfd then accept_ready ()
            else if fd <> wake_r then
              match Hashtbl.find_opt conns fd with
              | Some conn -> read_ready conn
              | None -> ())
          readable;
        pump ~ignore_budget:false;
        List.iter
          (fun fd ->
            match Hashtbl.find_opt conns fd with
            | Some conn -> write_ready conn
            | None -> ())
          writable;
        refresh_gauges ()
  done;
  (* Drain phase: no more reads or accepts.  Dispatch everything already
     parsed (budget no longer matters), wait for the workers to finish,
     flush every connection — bounded so a stuck peer cannot wedge exit. *)
  tlog Obs.Event_log.Info "server.drain"
    [
      ( "reason",
        J.Str
          (match !stop with
          | Some 130 -> "sigint"
          | Some _ -> "sigterm"
          | None -> "shutdown_request") );
      ("queued", J.Num (float_of_int (!inboxed + !plane_total)));
    ];
  pump ~ignore_budget:true;
  Par.Workers.drain workers;
  drain_completions ();
  let deadline = Unix.gettimeofday () +. 5.0 in
  let pending () =
    Hashtbl.fold (fun _ c acc -> acc || c.outbuf <> "") conns false
  in
  while pending () && Unix.gettimeofday () < deadline do
    let writes =
      Hashtbl.fold
        (fun fd conn acc -> if conn.outbuf <> "" then fd :: acc else acc)
        conns []
    in
    match Unix.select [] writes [] 0.1 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | _, writable, _ ->
        List.iter
          (fun fd ->
            match Hashtbl.find_opt conns fd with
            | Some conn -> write_ready conn
            | None -> ())
          writable
  done;
  Par.Workers.shutdown workers;
  Hashtbl.iter (fun _ conn -> try Unix.close conn.fd with _ -> ()) conns;
  Hashtbl.reset conns;
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (try Unix.close wake_r with Unix.Unix_error _ -> ());
  (try Unix.close wake_w with Unix.Unix_error _ -> ());
  (match config.address with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  Sys.set_signal Sys.sigterm prev_term;
  Sys.set_signal Sys.sigint prev_int;
  Sys.set_signal Sys.sigpipe prev_pipe;
  let reason =
    match !stop with Some code -> Interrupted code | None -> Drained
  in
  tlog Obs.Event_log.Info "server.shutdown"
    [
      ( "exit",
        J.Num (match reason with Interrupted c -> float_of_int c | Drained -> 0.)
      );
    ];
  Telemetry.flush telemetry;
  reason
