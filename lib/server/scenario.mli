(** Alias of {!Version.Scenario} — scenario specs and their memoized
    resolution live in the version library so the store's snapshots and
    the offline CLI share them; the server keeps this name for its own
    call sites.  [Protocol.scenario] equals {!Version.Scenario.t} by a
    type equation, so both names interchange freely. *)

include module type of Version.Scenario with type t = Version.Scenario.t
