(** Resolving a {!Protocol.scenario} spec into the state a session starts
    from: a database, its knowledge base, and the initial mapping the
    workspace holds.

    Resolution is memoized per spec: every session opened from an equal
    spec receives the {e same} {!Relational.Database.t} value — same
    {!Relational.Database.version} — so their evaluations share entries in
    the server's one {!Engine.Eval_cache} (cache keys are
    [(version, graph)]; distinct versions never share).  A session that
    then edits its database forks off a fresh version and stops sharing,
    which is exactly the isolation the versioned store provides. *)

open Relational

(** [validate spec] — [Error msg] when the spec's sizes are outside the
    supported envelope (chain [2 <= n <= 8], star [1 <= leaves <= 8],
    [1 <= rows <= 200_000], any seed). *)
val validate : Protocol.scenario -> (unit, string) Stdlib.result

(** [resolve spec] — memoized; raises [Invalid_argument] on an invalid
    spec (callers should {!validate} first). *)
val resolve : Protocol.scenario -> Database.t * Schemakb.Kb.t * Clio.Mapping.t

(** Like {!resolve} but never memoized: a private database value with a
    fresh version, sharing nothing — what a direct single-session replay
    (the load generator's verification arm) uses. *)
val resolve_fresh :
  Protocol.scenario -> Database.t * Schemakb.Kb.t * Clio.Mapping.t
