(** The wire protocol of [clio_serve]: newline-delimited JSON-RPC over the
    strict {!Obs.Json} emitter/parser.

    One request per line, one response per line; a client may pipeline
    requests and match responses by [id] (responses to {e executed}
    requests come back in submission order per connection, but error
    replies produced at admission time — parse errors, backpressure — are
    written immediately and may overtake them).

    This module is the single schema both sides compile against: the
    server parses requests and emits responses, while clients (the load
    generator, the tests) emit requests and parse responses — so a frame
    one side writes always parses on the other and escaping cannot drift.

    Values on the wire: [null], booleans, numbers (integral numbers decode
    to [Value.Int], others to [Value.Float]) and strings.  Non-finite
    floats have no JSON literal and are not supported; integers above
    2{^53} lose precision. *)

open Relational

(** What a session is opened over: the paper's Figure 1 database with the
    Section 5 starting mapping, or a synthetic chain/star instance
    ({!Synth.Gen_graph}) with an identity mapping rooted at its first
    relation.  Specs are value-comparable: two sessions opened from equal
    specs share one resolved database (see {!Scenario}).  Re-exported from
    {!Version.Scenario} (the version store embeds specs in snapshots). *)
type scenario = Version.Scenario.t =
  | Paper
  | Chain of { n : int; rows : int; seed : int }
  | Star of { leaves : int; rows : int; seed : int }

val scenario_to_string : scenario -> string

(** Which result [Evaluate] returns: the mapping's data associations D(G),
    the full associations F(J) of its (connected) query graph, or the
    WYSIWYG target view. *)
type what = Dg | Fj | Target

val what_name : what -> string

type request =
  | Ping
  | Open_session of scenario
  | Close_session
  | Evaluate of { what : what; limit : int option }
      (** [limit]: include up to that many rendered rows in the reply
          ([None] = digest and count only). *)
  | Offer of { start : string; goal : string; max_len : int }
      (** Data-walk alternatives from [start] to [goal], offered into the
          session's workspace ({!Clio.Op_walk}, {!Clio.Workspace.offer}). *)
  | Rotate
  | Select of { entry : int }
  | Delete of { entry : int }
  | Confirm
  | Insert of { relation : string; rows : Value.t array list }
      (** The example-edit: insert tuples into a base relation and evolve
          every workspace illustration ({!Clio.Workspace.add_tuples}). *)
  | Rank
  | Branch of { name : string }
      (** fork a new branch off the session's current branch at its head
          and switch the session to it (like [git checkout -b]) *)
  | Checkout of { name : string }
      (** point the session at an existing branch of its store *)
  | Merge of { from_ : string }
      (** fold branch [from_]'s example-tuple inserts into the session's
          current branch ({!Version.Store.merge}) *)
  | Diff of { other : string }
      (** compare the session's branch against [other]; replied to with a
          [Stats_report] of [diff.*] keys ({!Version.Store.diff}) *)
  | Branches  (** list the store's branches and the session's current one *)
  | Open_branch of { of_session : string; branch : string }
      (** server-level verb: open a {e new} session sharing [of_session]'s
          version store, positioned on [branch] — how two clients
          collaborate on one scenario with per-branch isolation *)
  | Stats
  | Metrics_prom
      (** one-shot Prometheus text-exposition scrape of the server's
          Obs registries ([clio_serve scrape]) *)
  | Shutdown

(** A request with its client-chosen id and (for session verbs) the
    session it addresses.  [trace_id], when sent, is attached to the
    request's server-side telemetry (log line, spans, exemplar trace) and
    echoed verbatim on the response; when absent the server assigns an
    internal id and the reply is byte-identical to the pre-telemetry
    protocol — old clients are unaffected. *)
type envelope = {
  id : int;
  session : string option;
  request : request;
  trace_id : string option;
}

type entry_info = {
  entry : int;
  label : string;
  graph : string;
  active : bool;
  score : int option;  (** filled by [Rank] (lower = more likely) *)
}

type eval_info = {
  what : what;
  count : int;
  scheme : string list;
  digest : string;  (** MD5 hex of the rendered relation — the
                        byte-identity witness vs a direct CLI run *)
  rows : string list list option;
}

type result =
  | Pong
  | Opened of { session : string; relations : string list; version : int }
  | Closed
  | Evaluated of eval_info
  | Entries of entry_info list
  | Inserted of { fresh : bool; version : int }
  | Branched of { branch : string; version : int }
  | Checked_out of { branch : string; version : int }
  | Merged of { branch : string; rows : int; version : int }
      (** [rows]: genuinely new tuples folded in (0 = nothing to merge) *)
  | Branch_list of { current : string; branches : (string * int) list }
      (** [(name, database version)] per branch, creation order *)
  | Stats_report of (string * float) list
  | Prom_text of string
      (** Prometheus text exposition document ({!Obs.Prom_export}) *)
  | Bye  (** shutdown acknowledged; the server drains and exits *)

type error_code =
  | Parse_error  (** frame is not valid JSON *)
  | Bad_request  (** well-formed JSON, but not a valid request — or a
                     valid request whose arguments the session rejected *)
  | Unknown_session
  | Overloaded  (** bounded request queue full — retry later; the
                    connection stays open *)
  | Unavailable  (** server is draining for shutdown *)
  | Internal

val error_code_name : error_code -> string

type response = {
  id : int option;  (** [None] when no id could be recovered from the frame *)
  result : (result, error_code * string) Stdlib.result;
  trace_id : string option;
      (** echo of the request's [trace_id]; never present unless sent *)
}

(** Encoders emit a single line (no trailing newline). *)

val encode_request : envelope -> string
val encode_response : response -> string

(** [parse_request line] — strict: the id must be a non-negative integral
    number and every field well-typed.  On failure the recovered id (when
    the frame was an object with a usable [id]) is returned so the error
    reply can still be correlated. *)
val parse_request :
  string -> (envelope, int option * error_code * string) Stdlib.result

val parse_response : string -> (response, string) Stdlib.result

(** Convenience constructors used by the server. *)

val ok : ?trace_id:string -> int -> result -> response
val error : ?trace_id:string -> int option -> error_code -> string -> response
