module J = Obs.Json

type t = {
  log : Obs.Event_log.t option;
  slow_ms : float option;
  exemplar_dir : string option;
  exemplar_keep : int;
  (* (trace id, file path), oldest first; bounded by [exemplar_keep].
     Written from whichever worker domain completes a slow request. *)
  ring_mutex : Mutex.t;
  ring : (string * string) Queue.t;
}

let none =
  {
    log = None;
    slow_ms = None;
    exemplar_dir = None;
    exemplar_keep = 0;
    ring_mutex = Mutex.create ();
    ring = Queue.create ();
  }

let default_exemplar_keep = 256

let create ?log ?slow_ms ?exemplar_dir ?(exemplar_keep = default_exemplar_keep)
    () =
  {
    log;
    slow_ms;
    exemplar_dir;
    exemplar_keep;
    ring_mutex = Mutex.create ();
    ring = Queue.create ();
  }

let log t level event fields =
  match t.log with
  | None -> ()
  | Some sink -> Obs.Event_log.log sink level event fields

let flush t = Option.iter Obs.Event_log.flush t.log
let close t = Option.iter Obs.Event_log.close t.log

(* Trace ids come from the wire; squash them into something safe to embed
   in a filename (and bounded, so a hostile id cannot blow NAME_MAX). *)
let sanitize_for_filename id =
  let b = Buffer.create (String.length id) in
  String.iter
    (fun c ->
      if Buffer.length b < 64 then
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> Buffer.add_char b c
        | _ -> Buffer.add_char b '_')
    id;
  if Buffer.length b = 0 then "x" else Buffer.contents b

let exemplar_path t trace_id =
  match t.exemplar_dir with
  | None -> None
  | Some dir ->
      Some (Filename.concat dir ("trace-" ^ sanitize_for_filename trace_id ^ ".json"))

(* Capture the request's span subtree as a Chrome-trace file named by its
   trace id, evicting (and unlinking) the oldest beyond the keep bound.
   Best-effort: an unwritable directory must not fail the request. *)
let write_exemplar t ~trace_id root =
  match exemplar_path t trace_id with
  | None -> None
  | Some path -> (
      try
        let oc = open_out path in
        output_string oc (Obs.Trace_export.to_chrome [ root ]);
        close_out oc;
        let evicted =
          Mutex.protect t.ring_mutex (fun () ->
              Queue.add (trace_id, path) t.ring;
              let old = ref [] in
              while Queue.length t.ring > t.exemplar_keep do
                old := snd (Queue.pop t.ring) :: !old
              done;
              !old)
        in
        List.iter
          (fun old -> try Sys.remove old with Sys_error _ -> ())
          evicted;
        Some path
      with Sys_error _ -> None)

let is_slow t duration_ms =
  match t.slow_ms with Some thr -> duration_ms >= thr | None -> false

let request_complete t ~(record : Obs.Scope.record) ~op ~id ~session ~ok
    ~client_traced =
  if t.log <> None || t.exemplar_dir <> None then begin
    let exemplar =
      if is_slow t record.Obs.Scope.duration_ms then
        match record.Obs.Scope.root with
        | Some root ->
            write_exemplar t ~trace_id:record.Obs.Scope.trace_id root
        | None -> None
      else None
    in
    let cache_fields =
      match
        List.filter
          (fun (name, _) ->
            String.length name > 6 && String.sub name 0 6 = "cache.")
          record.Obs.Scope.deltas
      with
      | [] -> []
      | deltas ->
          [
            ( "cache",
              J.Obj
                (List.map (fun (n, d) -> (n, J.Num (float_of_int d))) deltas)
            );
          ]
    in
    log t Obs.Event_log.Info "request.complete"
      ([
         ("trace_id", J.Str record.Obs.Scope.trace_id);
         ("id", J.Num (float_of_int id));
         ("op", J.Str op);
         ("ok", J.Bool ok);
         ("latency_ms", J.Num record.Obs.Scope.duration_ms);
         ("client_traced", J.Bool client_traced);
       ]
      @ (match session with
        | None -> []
        | Some sid -> [ ("session", J.Str sid) ])
      @ cache_fields
      @
      match exemplar with
      | None -> []
      | Some path -> [ ("exemplar", J.Str path) ])
  end
