open Relational
module P = Protocol

type t = {
  registry : Registry.t;
  (* Atomic: a worker domain executing [shutdown] flips it while the I/O
     loop polls it between selects. *)
  draining : bool Atomic.t;
  mutable extra_stats : unit -> (string * float) list;
  mutable telemetry : Telemetry.t;
}

let create registry =
  {
    registry;
    draining = Atomic.make false;
    extra_stats = (fun () -> []);
    telemetry = Telemetry.none;
  }

let registry t = t.registry
let set_extra_stats t f = t.extra_stats <- f
let set_telemetry t tel = t.telemetry <- tel
let telemetry t = t.telemetry
let draining t = Atomic.get t.draining

let digest_of rel = Digest.to_hex (Digest.string (Render.relation rel))

let scheme_of rel =
  Array.to_list (Array.map Attr.to_string (Schema.attrs (Relation.schema rel)))

let rows_of rel limit =
  match limit with
  | None -> None
  | Some k ->
      let rows = ref [] and taken = ref 0 in
      (try
         Relation.iter
           (fun tup ->
             if !taken >= k then raise Exit;
             incr taken;
             rows := Array.to_list (Array.map Value.to_string tup) :: !rows)
           rel
       with Exit -> ());
      Some (List.rev !rows)

let entry_infos ?scores ws =
  let active = (Clio.Workspace.active ws).Clio.Workspace.id in
  List.map
    (fun (e : Clio.Workspace.entry) ->
      {
        P.entry = e.id;
        label = e.label;
        graph = Querygraph.Qgraph.to_string e.mapping.Clio.Mapping.graph;
        active = e.id = active;
        score =
          (match scores with
          | None -> None
          | Some tbl -> Hashtbl.find_opt tbl e.id);
      })
    (Clio.Workspace.entries ws)

let db_version ws = Database.version (Clio.Workspace.db ws)

let evaluate session what limit =
  let ws = Registry.ws session in
  let ctx = Clio.Workspace.ctx ws in
  let mapping = (Clio.Workspace.active ws).Clio.Workspace.mapping in
  let rel =
    match what with
    | P.Target -> Clio.Workspace.target_view ws
    | P.Dg ->
        Fulldisj.Full_disjunction.to_relation
          (Clio.Mapping_eval.data_associations ctx mapping)
    | P.Fj -> Clio.Eval_ctx.full_associations ctx mapping.Clio.Mapping.graph
  in
  P.Evaluated
    {
      what;
      count = Relation.cardinality rel;
      scheme = scheme_of rel;
      digest = digest_of rel;
      rows = rows_of rel limit;
    }

let rank session =
  let ws = Registry.ws session in
  let kb = Clio.Workspace.kb ws in
  let old = (Clio.Workspace.active ws).Clio.Workspace.mapping.Clio.Mapping.graph in
  let scores = Hashtbl.create 8 in
  List.iter
    (fun (e : Clio.Workspace.entry) ->
      Hashtbl.replace scores e.id
        (Schemakb.Rank.total
           (Schemakb.Rank.score ~kb ~old e.mapping.Clio.Mapping.graph)))
    (Clio.Workspace.entries ws);
  P.Entries (entry_infos ~scores ws)

(* Every mutation runs as a commit on the session's current branch: the
   op is applied and recorded in the store's DAG, which is what makes the
   state branchable, mergeable and replayable after a restart.  When the
   op raises (bad arguments), nothing is recorded. *)
let commit session op =
  Version.Store.commit session.Registry.store ~branch:session.Registry.branch
    op

(* Execute a session verb against [session]. *)
let run_session_verb t session request =
  match request with
  | P.Close_session ->
      ignore (Registry.close_session t.registry session.Registry.sid);
      P.Closed
  | P.Evaluate { what; limit } -> evaluate session what limit
  | P.Offer { start; goal; max_len } ->
      P.Entries
        (entry_infos (commit session (Version.Op.Offer { start; goal; max_len })))
  | P.Rotate -> P.Entries (entry_infos (commit session Version.Op.Rotate))
  | P.Select { entry } ->
      P.Entries (entry_infos (commit session (Version.Op.Select { entry })))
  | P.Delete { entry } ->
      P.Entries (entry_infos (commit session (Version.Op.Delete { entry })))
  | P.Confirm -> P.Entries (entry_infos (commit session Version.Op.Confirm))
  | P.Insert { relation; rows } ->
      let before = db_version (Registry.ws session) in
      let ws = commit session (Version.Op.Insert { relation; rows }) in
      let after = db_version ws in
      P.Inserted { fresh = after <> before; version = after }
  | P.Rank -> rank session
  | P.Stats -> P.Stats_report (Registry.session_stats session)
  | P.Branch { name } ->
      let ws =
        Version.Store.branch session.Registry.store
          ~from:session.Registry.branch name
      in
      session.Registry.branch <- name;
      P.Branched { branch = name; version = db_version ws }
  | P.Checkout { name } ->
      let ws = Version.Store.checkout session.Registry.store name in
      session.Registry.branch <- name;
      P.Checked_out { branch = name; version = db_version ws }
  | P.Merge { from_ } ->
      let rows =
        Version.Store.merge session.Registry.store
          ~into:session.Registry.branch ~from:from_
      in
      P.Merged
        {
          branch = session.Registry.branch;
          rows;
          version = db_version (Registry.ws session);
        }
  | P.Diff { other } ->
      P.Stats_report
        (Version.Store.diff session.Registry.store ~a:session.Registry.branch
           ~b:other)
  | P.Branches ->
      P.Branch_list
        {
          current = session.Registry.branch;
          branches = Version.Store.branches session.Registry.store;
        }
  | P.Ping | P.Open_session _ | P.Open_branch _ | P.Metrics_prom | P.Shutdown
    ->
      assert false (* handled before session dispatch *)

let verb_name = function
  | P.Ping -> "ping"
  | P.Open_session _ -> "open"
  | P.Close_session -> "close"
  | P.Evaluate _ -> "evaluate"
  | P.Offer _ -> "offer"
  | P.Rotate -> "rotate"
  | P.Select _ -> "select"
  | P.Delete _ -> "delete"
  | P.Confirm -> "confirm"
  | P.Insert _ -> "insert"
  | P.Rank -> "rank"
  | P.Branch _ -> "branch"
  | P.Checkout _ -> "checkout"
  | P.Merge _ -> "merge"
  | P.Diff _ -> "diff"
  | P.Branches -> "branches"
  | P.Open_branch _ -> "open_branch"
  | P.Stats -> "stats"
  | P.Metrics_prom -> "metrics_prom"
  | P.Shutdown -> "shutdown"

let opened_reply id (session : Registry.session) =
  let db = Clio.Workspace.db (Registry.ws session) in
  P.ok id
    (P.Opened
       {
         session = session.Registry.sid;
         relations = Database.relation_names db;
         version = Database.version db;
       })

(* Execute the request, returning the reply and (for session verbs) the
   session it ran against, so the caller can attribute the request's
   latency and cache deltas to it. *)
let dispatch t (env : P.envelope) =
  let id = env.id in
  if Atomic.get t.draining && env.request <> P.Shutdown then
    (P.error (Some id) P.Unavailable "server is draining", None)
  else
    match env.request with
    | P.Ping -> (P.ok id P.Pong, None)
    | P.Stats when env.session = None ->
        (* Server-wide stats: the registry's totals, every session
           flattened under [sessions.<sid>.*], and the transport's
           gauges. *)
        ( P.ok id
            (P.Stats_report
               (Registry.server_stats t.registry
               @ Registry.sessions_rollup t.registry
               @ t.extra_stats ())),
          None )
    | P.Metrics_prom ->
        let gauges =
          Registry.prom_gauges t.registry
          @ List.map
              (fun (k, v) ->
                { Obs.Prom_export.gauge_name = k; labels = []; value = v })
              (t.extra_stats ())
        in
        (P.ok id (P.Prom_text (Obs.Prom_export.render ~gauges ())), None)
    | P.Shutdown ->
        Atomic.set t.draining true;
        (P.ok id P.Bye, None)
    | P.Open_session spec -> begin
        match Scenario.validate spec with
        | Error msg -> (P.error (Some id) P.Bad_request msg, None)
        | Ok () ->
            let session = Registry.open_session t.registry spec in
            (opened_reply id session, None)
      end
    | P.Open_branch { of_session; branch } -> begin
        (* Server-level like [Open_session]: names its base session
           explicitly rather than through the envelope. *)
        match Registry.open_branch t.registry ~of_session ~branch with
        | None ->
            ( P.error (Some id) P.Unknown_session
                (Printf.sprintf "no session %S" of_session),
              None )
        | Some session -> (opened_reply id session, None)
        | exception Invalid_argument msg ->
            (P.error (Some id) P.Bad_request msg, None)
      end
    | request -> begin
        match env.session with
        | None ->
            ( P.error (Some id) P.Bad_request
                "this request needs a \"session\" field",
              None )
        | Some sid -> begin
            match Registry.find t.registry sid with
            | None ->
                ( P.error (Some id) P.Unknown_session
                    (Printf.sprintf "no session %S" sid),
                  None )
            | Some session ->
                let reply =
                  match run_session_verb t session request with
                  | result -> P.ok id result
                  | exception Invalid_argument msg ->
                      P.error (Some id) P.Bad_request msg
                  | exception Not_found ->
                      P.error (Some id) P.Bad_request "unknown entry"
                  | exception exn ->
                      P.error (Some id) P.Internal (Printexc.to_string exn)
                in
                (reply, Some session)
          end
      end

let cache_prefix = "cache."

let is_cache_delta (name, _) =
  String.length name >= String.length cache_prefix
  && String.sub name 0 (String.length cache_prefix) = cache_prefix

let handle t (env : P.envelope) =
  Registry.count_request t.registry;
  (* Every request runs under a scope: the client's trace id when sent,
     a server-assigned one otherwise.  The scope captures the request's
     span subtree and counter deltas for the log line / exemplar. *)
  let trace_id =
    match env.trace_id with Some tid -> tid | None -> Obs.Scope.fresh_id ()
  in
  let op = verb_name env.request in
  let (reply, session), record =
    Obs.Scope.run
      ~attrs:[ ("op", op); ("request_id", string_of_int env.id) ]
      ~trace_id Obs.Names.sp_request
      (fun () -> dispatch t env)
  in
  let ok = Stdlib.Result.is_ok reply.P.result in
  (match session with
  | Some session ->
      Registry.record_op session
        ~cache_deltas:(List.filter is_cache_delta record.Obs.Scope.deltas)
        ~op
        ~latency_us:(record.Obs.Scope.duration_ms *. 1000.)
        ~ok
  | None -> ());
  if not ok then Registry.count_error t.registry;
  Telemetry.request_complete t.telemetry ~record ~op ~id:env.id
    ~session:
      (match session with
      | Some s -> Some s.Registry.sid
      | None -> env.session)
    ~ok
    ~client_traced:(env.trace_id <> None);
  (* Echo the trace id only when the client sent one: trace-id-less
     clients get replies byte-identical to the pre-telemetry wire. *)
  { reply with P.trace_id = env.trace_id }

let handle_frame t line =
  let reply =
    match P.parse_request line with
    | Error (id, code, msg) ->
        Registry.count_request t.registry;
        Registry.count_error t.registry;
        P.error id code msg
    | Ok env -> handle t env
  in
  P.encode_response reply
