(** The transport: a pure-I/O [Unix.select] event loop speaking the
    newline-delimited protocol over a Unix-domain or loopback TCP socket,
    with execution on a sharded worker plane ({!Par.Workers}).

    The loop thread only accepts, reads, frames, admits and writes — it
    never calls {!Service.handle}.  Admitted requests are dispatched to
    one of [workers] worker domains; a session's requests always land on
    the shard pinned by its store's {!Registry.affinity}, so requests
    within a session (and across sessions sharing a store) execute
    serially in admission order while distinct stores run in parallel.
    Sessionless verbs spread round-robin.  Completions cross back on a
    mutexed queue plus a self-pipe byte, which is also what wakes the
    otherwise indefinitely-blocked select — the loop never polls on a
    timeout.

    Admission control happens before execution: a frame that is not valid
    JSON gets an immediate [parse_error] reply; a valid request that
    arrives while the connection already has [queue_capacity] requests
    inboxed or in flight gets an immediate [overloaded] reply (the
    connection stays open — backpressure, not disconnection).  Admission
    from connection inboxes into the worker plane is round-robin across
    connections under a global [queue_capacity] in-flight budget, so a
    flooding connection overloads itself, not its neighbours.  Every
    reply — executed or admission-time error — is sequenced per
    connection: wire order always equals submission order.

    Shutdown: SIGTERM/SIGINT (or a [shutdown] request) flips the loop into
    draining — it stops reading, dispatches everything already parsed,
    waits for in-flight workers, flushes every connection's output buffer
    (bounded by a 5 s deadline), joins the workers, closes, removes the
    socket file, and returns a {!stop_reason}.  The caller exits 0 after a
    [shutdown] drain, or with the conventional signal code (130/143) after
    SIGINT/SIGTERM — telemetry sinks are flushed either way.

    Transport telemetry (through the service's {!Telemetry.t}):
    [conn.accept]/[conn.close]/[request.admit] at debug,
    [conn.reject]/[request.overload]/[request.parse_error] at warn,
    [server.drain]/[server.shutdown] at info.  The worker plane surfaces
    as [server.workers]/[.busy]/[.dispatched]/[.wait_ms] stats gauges and
    the matching [server.workers.*] Obs counters. *)

type address =
  | Unix_path of string
  | Tcp of int  (** loopback only: binds 127.0.0.1 *)

(** Why the loop returned: a drained [shutdown] request, or a signal with
    its conventional exit code (SIGINT 130, SIGTERM 143). *)
type stop_reason = Drained | Interrupted of int

type config = {
  address : address;
  queue_capacity : int;
      (** per-connection pending bound and global in-flight budget; beyond
          it, [overloaded] *)
  max_frame : int;  (** bytes per frame; beyond it the connection is closed *)
  max_connections : int;
  workers : int;  (** worker domains; 1 = serial execution (the default) *)
}

val default_config : address -> config

(** Blocks until shutdown.  [on_ready] (if given) runs once the socket is
    listening — the bench harness uses it to start its clients. *)
val run : ?on_ready:(unit -> unit) -> config -> Service.t -> stop_reason
