(** The transport: a single-threaded [Unix.select] event loop speaking the
    newline-delimited protocol over a Unix-domain or loopback TCP socket.

    Admission control happens here, before execution: a frame that is not
    valid JSON gets an immediate [parse_error] reply; a valid request that
    arrives while the bounded queue is full gets an immediate [overloaded]
    reply (the connection stays open — backpressure, not disconnection).
    Queued requests execute FIFO through {!Service.handle}; replies to
    executed requests keep per-connection submission order, while
    admission-time error replies may overtake them.

    Shutdown: SIGTERM/SIGINT (or a [shutdown] request) flips the loop into
    draining — it stops reading, finishes every queued request, flushes
    every connection's output buffer, closes, removes the socket file, and
    returns a {!stop_reason}.  The caller exits 0 after a [shutdown]
    drain, or with the conventional signal code (130/143) after
    SIGINT/SIGTERM — telemetry sinks are flushed either way.

    Transport telemetry (through the service's {!Telemetry.t}):
    [conn.accept]/[conn.close]/[request.admit] at debug,
    [conn.reject]/[request.overload]/[request.parse_error] at warn,
    [server.drain]/[server.shutdown] at info. *)

type address =
  | Unix_path of string
  | Tcp of int  (** loopback only: binds 127.0.0.1 *)

(** Why the loop returned: a drained [shutdown] request, or a signal with
    its conventional exit code (SIGINT 130, SIGTERM 143). *)
type stop_reason = Drained | Interrupted of int

type config = {
  address : address;
  queue_capacity : int;  (** pending-request bound; beyond it, [overloaded] *)
  max_frame : int;  (** bytes per frame; beyond it the connection is closed *)
  max_connections : int;
}

val default_config : address -> config

(** Blocks until shutdown.  [on_ready] (if given) runs once the socket is
    listening — the bench harness uses it to start its clients. *)
val run : ?on_ready:(unit -> unit) -> config -> Service.t -> stop_reason
