(** The session registry: many isolated refinement sessions over one
    shared evaluation substrate.

    Each session points at one branch of a {!Version.Store.t} — the
    branching version DAG of database + workspace + mapping state — while
    every workspace the store resolves is built over the registry's single
    {!Engine.Eval_cache} and jobs setting, so sessions opened from the
    same scenario share memoized F(J)/D(G) results (version keys make the
    sharing safe: a session that edits its database forks to fresh
    versions and simply stops hitting the common entries).  Sessions
    opened via {!open_branch} share one store by reference: that is how
    two clients collaborate on one scenario with per-branch isolation.

    Per-session counters and operation latencies are recorded here and
    surfaced by the [stats] verb as [session.*] metrics.  The whole
    registry persists ({!persist}/{!restore}) so a restarted server
    resumes its sessions warm. *)

(** Per-session metric accumulators (opaque; read via {!session_stats}). *)
type metrics

type session = {
  sid : string;
  scenario : Protocol.scenario;
  opened_at : float;
  store : Version.Store.t;
  mutable branch : string;  (** which branch of [store] this session is on *)
  affinity : int;
      (** shard-pinning key, one per distinct store: sessions sharing a
          store share it, so their commits serialize onto one worker *)
  metrics : metrics;
}

type t

val create :
  ?algorithm:Clio.Eval_ctx.algorithm ->
  ?jobs:int ->
  ?no_cache:bool ->
  ?cache_bytes:int ->
  unit ->
  t

val cache : t -> Engine.Eval_cache.t option
val jobs : t -> int

(** The session's current workspace: its store's state at its branch. *)
val ws : session -> Clio.Workspace.t

(** The session's shard-pinning key ([affinity] field). *)
val affinity : session -> int

(** Raises [Invalid_argument] on an invalid scenario spec. *)
val open_session : t -> Protocol.scenario -> session

val find : t -> string -> session option

(** [open_branch t ~of_session ~branch] — a {e new} session sharing
    [of_session]'s version store, positioned on [branch].  [None] when
    [of_session] is unknown; raises [Invalid_argument] when the branch
    does not exist. *)
val open_branch : t -> of_session:string -> branch:string -> session option

(** [true] when the session existed. *)
val close_session : t -> string -> bool

val session_count : t -> int
val session_ids : t -> string list

(** Bookkeeping used by the service/loop layers. *)

val count_request : t -> unit
val count_error : t -> unit
val count_overload : t -> unit
val overloads : t -> int

(** [record_op s ~op ~latency_us ~ok] — bump the session's per-verb
    counter, fold the request's [cache.*] counter deltas (from
    {!Obs.Scope}) into the session's cache attribution, and retain the
    latency sample.  Latency retention is capped (newest 4096): beyond the
    cap, p50/p99 describe the most recent window while mean/max stay
    all-time. *)
val record_op :
  ?cache_deltas:(string * int) list ->
  session ->
  op:string ->
  latency_us:float ->
  ok:bool ->
  unit

(** The [session.*] metrics of one session: request/error totals, per-verb
    counts, latency mean/max and nearest-rank p50/p99 (µs), database
    version, workspace entry count, branch count of its store, and
    accumulated [session.cache.*] deltas. *)
val session_stats : session -> (string * float) list

(** The [server.*] metrics: sessions open/opened, requests, errors,
    overload rejections, uptime, the shared cache's entry count and
    resident bytes, and the value-pool retention gauges
    ([server.value_pool.count]/[.bytes] — refreshed at scrape time). *)
val server_stats : t -> (string * float) list

(** Every open session's {!session_stats} flattened under
    [sessions.<sid>.<metric>], sid-sorted — appended to no-session [stats]
    replies. *)
val sessions_rollup : t -> (string * float) list

(** {!server_stats} as unlabeled gauges plus each session's metrics as
    [session]-labeled gauges, for the Prometheus exposition. *)
val prom_gauges : t -> Obs.Prom_export.gauge list

(** {2 Persistence} — how [clio_serve --store-dir] survives restarts. *)

(** [persist t ~dir] — save every open session: each distinct store under
    its own [dir/store-N] subdirectory ({!Version.Store.save}) plus a
    [dir/registry.json] manifest mapping sids to (store, branch). *)
val persist : t -> dir:string -> unit

(** [restore t ~dir] — rebuild the sessions recorded by {!persist} by
    replaying each store's changelog (re-warming the shared cache as a
    side effect) and re-pointing the recorded sids at the recovered
    branches.  Session metrics restart at zero.  Returns the number of
    sessions restored; raises [Failure] on malformed or divergent state. *)
val restore : t -> dir:string -> int
