(** The session registry: many isolated refinement sessions over one
    shared evaluation substrate.

    Each session owns a {!Clio.Workspace.t} — and through it an
    {!Engine.Eval_ctx} holding a private versioned {!Relational.Database}
    view — while every context is built over the registry's single
    {!Engine.Eval_cache} and jobs setting, so sessions opened from the
    same scenario share memoized F(J)/D(G) results (version keys make the
    sharing safe: a session that edits its database forks to fresh
    versions and simply stops hitting the common entries).

    Per-session counters and operation latencies are recorded here and
    surfaced by the [stats] verb as [session.*] metrics. *)

(** Per-session metric accumulators (opaque; read via {!session_stats}). *)
type metrics

type session = {
  sid : string;
  scenario : Protocol.scenario;
  opened_at : float;
  mutable ws : Clio.Workspace.t;
  metrics : metrics;
}

type t

val create :
  ?algorithm:Clio.Eval_ctx.algorithm ->
  ?jobs:int ->
  ?no_cache:bool ->
  ?cache_bytes:int ->
  unit ->
  t

val cache : t -> Engine.Eval_cache.t option
val jobs : t -> int

(** Raises [Invalid_argument] on an invalid scenario spec. *)
val open_session : t -> Protocol.scenario -> session

val find : t -> string -> session option

(** [true] when the session existed. *)
val close_session : t -> string -> bool

val session_count : t -> int
val session_ids : t -> string list

(** Bookkeeping used by the service/loop layers. *)

val count_request : t -> unit
val count_error : t -> unit
val count_overload : t -> unit
val overloads : t -> int

(** [record_op s ~op ~latency_us ~ok] — bump the session's per-verb
    counter, fold the request's [cache.*] counter deltas (from
    {!Obs.Scope}) into the session's cache attribution, and retain the
    latency sample.  Latency retention is capped (newest 4096): beyond the
    cap, p50/p99 describe the most recent window while mean/max stay
    all-time. *)
val record_op :
  ?cache_deltas:(string * int) list ->
  session ->
  op:string ->
  latency_us:float ->
  ok:bool ->
  unit

(** The [session.*] metrics of one session: request/error totals, per-verb
    counts, latency mean/max and nearest-rank p50/p99 (µs), database
    version, workspace entry count, and accumulated [session.cache.*]
    deltas. *)
val session_stats : session -> (string * float) list

(** The [server.*] metrics: sessions open/opened, requests, errors,
    overload rejections, uptime, and the shared cache's entry count and
    resident bytes. *)
val server_stats : t -> (string * float) list

(** Every open session's {!session_stats} flattened under
    [sessions.<sid>.<metric>], sid-sorted — appended to no-session [stats]
    replies. *)
val sessions_rollup : t -> (string * float) list

(** {!server_stats} as unlabeled gauges plus each session's metrics as
    [session]-labeled gauges, for the Prometheus exposition. *)
val prom_gauges : t -> Obs.Prom_export.gauge list
