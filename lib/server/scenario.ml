(* Moved to [Version.Scenario] (the version store embeds specs in its
   snapshots; the offline CLI resolves them without linking the server).
   This shim keeps the server-side name — and the process-wide resolve
   memo is the version library's, so server sessions and store replays
   share one resolved database per spec. *)
include Version.Scenario
