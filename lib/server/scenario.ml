open Relational
module Qgraph = Querygraph.Qgraph

let validate = function
  | Protocol.Paper -> Ok ()
  | Protocol.Chain { n; rows; seed = _ } ->
      if n < 2 || n > 8 then Error "chain: n must be in 2..8"
      else if rows < 1 || rows > 200_000 then
        Error "chain: rows must be in 1..200000"
      else Ok ()
  | Protocol.Star { leaves; rows; seed = _ } ->
      if leaves < 1 || leaves > 8 then Error "star: leaves must be in 1..8"
      else if rows < 1 || rows > 200_000 then
        Error "star: rows must be in 1..200000"
      else Ok ()

(* The initial mapping is deliberately small — one node, one identity
   correspondence — so a session starts where the paper's Section 5
   refinement loop starts: offer walks, inspect, confirm. *)
let rooted_mapping ~root =
  Clio.Mapping.make
    ~graph:(Qgraph.singleton ~alias:root ~base:root)
    ~target:"Out" ~target_cols:[ "c" ]
    ~correspondences:[ Clio.Correspondence.identity "c" (Attr.make root "id") ]
    ()

let resolve_fresh spec =
  (match validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Scenario.resolve: " ^ msg));
  match spec with
  | Protocol.Paper ->
      ( Paperdata.Figure1.database,
        Paperdata.Figure1.kb,
        Paperdata.Running.mapping_g1 )
  | Protocol.Chain { n; rows; seed } ->
      let inst =
        Synth.Gen_graph.chain
          (Random.State.make [| seed |])
          ~n ~rows ~null_prob:0.25 ~orphan_prob:0.2 ()
      in
      (inst.Synth.Gen_graph.db, inst.Synth.Gen_graph.kb, rooted_mapping ~root:"R1")
  | Protocol.Star { leaves; rows; seed } ->
      let inst =
        Synth.Gen_graph.star
          (Random.State.make [| seed |])
          ~leaves ~rows ~null_prob:0.25 ~orphan_prob:0.2 ()
      in
      ( inst.Synth.Gen_graph.db,
        inst.Synth.Gen_graph.kb,
        rooted_mapping ~root:"Fact" )

(* Memo keyed by the spec value itself (immutable variants compare
   structurally).  The paper scenario is already a program-wide constant;
   the memo extends the same sharing to synthetic specs, so a fleet of
   sessions forking one scenario all key their cache entries to a single
   database version. *)
let memo : (Protocol.scenario, Database.t * Schemakb.Kb.t * Clio.Mapping.t) Hashtbl.t
    =
  Hashtbl.create 8

let resolve spec =
  match Hashtbl.find_opt memo spec with
  | Some r -> r
  | None ->
      let r = resolve_fresh spec in
      Hashtbl.add memo spec r;
      r
