(** The server's telemetry sinks: the structured event log and the
    slow-request exemplar ring.

    Owned by {!Service} (which emits [request.complete] with per-request
    latency and cache attribution) and shared with {!Loop} (connection
    accept/close, admission events, drain/shutdown).  Everything is
    optional and off by default: {!none} swallows every event. *)

type t

(** Swallows everything; the default. *)
val none : t

(** Exemplar files retained by default (256). *)
val default_exemplar_keep : int

(** [create ?log ?slow_ms ?exemplar_dir ?exemplar_keep ()] — [log] is the
    JSONL sink; requests whose duration reaches [slow_ms] (when set) get
    their captured span subtree written to
    [exemplar_dir/trace-<sanitized id>.json] in Chrome trace_event format,
    with the oldest files beyond [exemplar_keep] unlinked. *)
val create :
  ?log:Obs.Event_log.t ->
  ?slow_ms:float ->
  ?exemplar_dir:string ->
  ?exemplar_keep:int ->
  unit ->
  t

(** Emit one event line (no-op without a log sink). *)
val log : t -> Obs.Event_log.level -> string -> (string * Obs.Json.t) list -> unit

(** Called by {!Service.handle} after every executed request: writes the
    exemplar when the request qualifies, then logs [request.complete]
    (trace id, op, request id, session, ok, latency, [cache.*] deltas,
    exemplar path).  [client_traced] records whether the trace id came
    from the wire. *)
val request_complete :
  t ->
  record:Obs.Scope.record ->
  op:string ->
  id:int ->
  session:string option ->
  ok:bool ->
  client_traced:bool ->
  unit

(** The filename a given trace id would be captured under (regardless of
    whether it has been). *)
val exemplar_path : t -> string -> string option

val flush : t -> unit
val close : t -> unit
