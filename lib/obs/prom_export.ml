(* Prometheus text exposition (format version 0.0.4) of the Obs registries.
   Counters become [clio_<name>_total], histograms [clio_<name>_ms] with
   cumulative [_bucket{le=...}] lines built from the exact per-bucket
   counts maintained by {!Histogram} (independent of the percentile
   reservoir), and caller-supplied gauges carry label sets (the server's
   per-session stats).  Everything is emitted in registry registration
   order so two scrapes of the same process differ only in values. *)

type gauge = {
  gauge_name : string;
  labels : (string * string) list;
  value : float;
}

let prefix = "clio_"

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

(* Map an Obs registry name ("cache.fj.hits") onto the Prometheus metric
   charset: invalid characters become '_', a leading digit gets guarded,
   and the [clio_] namespace prefix is prepended (which also guards the
   leading digit). *)
let sanitize_name name =
  let b = Buffer.create (String.length name + String.length prefix) in
  Buffer.add_string b prefix;
  String.iter (fun c -> Buffer.add_char b (if is_name_char c then c else '_')) name;
  Buffer.contents b

(* Label values escape backslash, double quote and newline. *)
let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
      let body =
        String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\""
                 (let s = sanitize_name k in
                  (* labels are not namespaced *)
                  String.sub s (String.length prefix)
                    (String.length s - String.length prefix))
                 (escape_label_value v))
             labels)
      in
      "{" ^ body ^ "}"

let num v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let render_counter b c =
  let name = sanitize_name (Counter.name c) ^ "_total" in
  Printf.bprintf b "# TYPE %s counter\n" name;
  Printf.bprintf b "%s %d\n" name (Counter.value c)

let render_histogram b h =
  let name = sanitize_name (Histogram.name h) ^ "_ms" in
  Printf.bprintf b "# TYPE %s histogram\n" name;
  let counts = Histogram.bucket_counts h in
  let st = Histogram.stats h in
  let cum = ref 0 in
  Array.iteri
    (fun i le ->
      cum := !cum + counts.(i);
      Printf.bprintf b "%s_bucket{le=\"%s\"} %d\n" name (num le) !cum)
    Histogram.bucket_bounds;
  Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" name st.Histogram.n;
  Printf.bprintf b "%s_sum %s\n" name (num st.Histogram.sum);
  Printf.bprintf b "%s_count %d\n" name st.Histogram.n

let render_gauge_family b name gauges =
  let pname = sanitize_name name in
  Printf.bprintf b "# TYPE %s gauge\n" pname;
  List.iter
    (fun g ->
      Printf.bprintf b "%s%s %s\n" pname (render_labels g.labels) (num g.value))
    gauges

let render ?(gauges = []) () =
  let b = Buffer.create 4096 in
  List.iter (render_counter b) (Counter.all ());
  List.iter (render_histogram b) (Histogram.all ());
  (* Group gauges by name, preserving first-appearance order, so each
     family gets exactly one TYPE line. *)
  let order : string list ref = ref [] in
  let by_name : (string, gauge list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun g ->
      (match Hashtbl.find_opt by_name g.gauge_name with
      | None ->
          order := g.gauge_name :: !order;
          Hashtbl.replace by_name g.gauge_name [ g ]
      | Some gs -> Hashtbl.replace by_name g.gauge_name (g :: gs)))
    gauges;
  List.iter
    (fun name ->
      render_gauge_family b name (List.rev (Hashtbl.find by_name name)))
    (List.rev !order);
  Buffer.contents b

(* --- validator ------------------------------------------------------- *)

let valid_metric_name name =
  name <> ""
  && (let c = name.[0] in
      not (c >= '0' && c <= '9'))
  && String.for_all is_name_char name

(* Split a sample line into (metric name, le label if any, value).  Only
   the [le] label matters to the checks; other labels are skipped over
   respecting escapes. *)
let parse_sample line =
  let fail msg = Error (Printf.sprintf "%s: %s" msg line) in
  match String.index_opt line '{' with
  | None -> (
      match String.index_opt line ' ' with
      | None -> fail "sample line without value"
      | Some sp -> (
          let name = String.sub line 0 sp in
          let v = String.sub line (sp + 1) (String.length line - sp - 1) in
          match float_of_string_opt (String.trim v) with
          | None -> fail "unparseable sample value"
          | Some f -> Ok (name, None, f)))
  | Some ob -> (
      let name = String.sub line 0 ob in
      (* scan to the matching close brace, respecting quoted strings *)
      let n = String.length line in
      let rec find_close i in_str =
        if i >= n then None
        else
          match line.[i] with
          | '\\' when in_str -> find_close (i + 2) in_str
          | '"' -> find_close (i + 1) (not in_str)
          | '}' when not in_str -> Some i
          | _ -> find_close (i + 1) in_str
      in
      match find_close (ob + 1) false with
      | None -> fail "unterminated label set"
      | Some cb -> (
          let labels = String.sub line (ob + 1) (cb - ob - 1) in
          let le =
            (* find le="..." among the labels *)
            let rec scan i =
              if i + 4 > String.length labels then None
              else if
                (i = 0 || labels.[i - 1] = ',')
                && i + 4 <= String.length labels
                && String.sub labels i 4 = "le=\""
              then
                let j = ref (i + 4) in
                let bnd = String.length labels in
                let buf = Buffer.create 8 in
                let rec copy () =
                  if !j >= bnd then None
                  else
                    match labels.[!j] with
                    | '\\' when !j + 1 < bnd ->
                        Buffer.add_char buf labels.[!j + 1];
                        j := !j + 2;
                        copy ()
                    | '"' -> Some (Buffer.contents buf)
                    | c ->
                        Buffer.add_char buf c;
                        incr j;
                        copy ()
                in
                copy ()
              else scan (i + 1)
            in
            scan 0
          in
          let rest = String.sub line (cb + 1) (n - cb - 1) in
          match float_of_string_opt (String.trim rest) with
          | None -> fail "unparseable sample value"
          | Some f -> Ok (name, le, f)))

let le_value = function
  | "+Inf" -> infinity
  | s -> ( match float_of_string_opt s with Some f -> f | None -> nan)

let validate text =
  (* Per histogram family: buckets in exposition order, _count value. *)
  let buckets : (string, (float * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let counts : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let err = ref None in
  let set_err e = if !err = None then err := Some e in
  let strip_suffix s suf =
    if String.length s > String.length suf
       && String.sub s (String.length s - String.length suf) (String.length suf)
          = suf
    then Some (String.sub s 0 (String.length s - String.length suf))
    else None
  in
  List.iter
    (fun line ->
      if !err = None && line <> "" && line.[0] <> '#' then
        match parse_sample line with
        | Error e -> set_err e
        | Ok (name, le, v) -> (
            if not (valid_metric_name name) then
              set_err (Printf.sprintf "invalid metric name %S" name)
            else
              match (strip_suffix name "_bucket", le) with
              | Some base, Some le_s ->
                  let l =
                    match Hashtbl.find_opt buckets base with
                    | Some l -> l
                    | None ->
                        let l = ref [] in
                        Hashtbl.replace buckets base l;
                        l
                  in
                  l := (le_value le_s, v) :: !l
              | Some _, None ->
                  set_err
                    (Printf.sprintf "bucket line without le label: %s" line)
              | None, _ -> (
                  match strip_suffix name "_count" with
                  | Some base -> Hashtbl.replace counts base v
                  | None -> ())))
    (String.split_on_char '\n' text);
  (match !err with
  | Some _ -> ()
  | None ->
      Hashtbl.iter
        (fun base l ->
          if !err = None then begin
            let bs = List.rev !l in
            (* cumulative counts must be nondecreasing in exposition order,
               and the le bounds strictly increasing *)
            let rec mono = function
              | (le1, v1) :: ((le2, v2) :: _ as rest) ->
                  if not (le1 < le2) then
                    set_err
                      (Printf.sprintf "%s: le bounds not increasing" base)
                  else if v1 > v2 then
                    set_err
                      (Printf.sprintf "%s: bucket counts not cumulative" base)
                  else mono rest
              | _ -> ()
            in
            mono bs;
            (match List.rev bs with
            | (le_last, v_last) :: _ ->
                if le_last <> infinity then
                  set_err (Printf.sprintf "%s: missing +Inf bucket" base)
                else (
                  match Hashtbl.find_opt counts base with
                  | Some c when c <> v_last ->
                      set_err
                        (Printf.sprintf "%s: +Inf bucket %g <> count %g" base
                           v_last c)
                  | Some _ -> ()
                  | None -> set_err (Printf.sprintf "%s: missing _count" base))
            | [] -> ())
          end)
        buckets);
  match !err with Some e -> Error e | None -> Ok ()
