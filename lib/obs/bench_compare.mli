(** Diff two bench JSON documents (as written by [bench/main.exe]) and
    decide whether any tracked metric regressed beyond tolerance.

    Tracked metrics, per benchmark/workload present in both files: wall
    time per run ([time]), exact operator counters ([ctr:<name>]) and
    minor-heap allocation ([alloc]).  Names present in only one file are
    reported but never flagged.  This module is pure (JSON in, outcome
    out); [bench/compare.exe] is a thin CLI over it, which keeps the
    regression/no-regression decision unit-testable. *)

type tolerance = {
  time : float;  (** max current/baseline wall-time ratio (default 1.50) *)
  counter : float;
      (** max counter ratio — counters are deterministic, so tight
          (default 1.02) *)
  alloc : float;  (** max minor-words ratio (default 1.25) *)
}

val default_tolerance : tolerance

type regression = {
  name : string;
  metric : string;  (** ["time"], ["ctr:<counter>"] or ["alloc"] *)
  baseline : float;
  current : float;
  ratio : float;
  allowed : float;
}

type outcome = {
  report : string;  (** the printable diff tables plus an OK/FAIL line *)
  regressions : regression list;
  compared : int;
  only_baseline : string list;
  only_current : string list;
}

(** [Error _] means one of the inputs is not a bench document. *)
val diff :
  ?tolerance:tolerance ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  (outcome, string) result

(** The exit-code contract of [bench/compare.exe]: 0 when clean or
    [report_only], 1 when a regression was flagged.  (Unusable input is
    exit 2, decided by the executable.) *)
val exit_code : report_only:bool -> outcome -> int
