(* The process-global observability switch.  Internal to the library: users
   flip it through {!Obs.enable} / {!Obs.disable}.  Every recording path
   loads this single ref and branches, so instrumented code costs one
   predictable branch when observability is off. *)

let on = ref false
