(** Minimal JSON: one value type, a compact and a pretty emitter, and a
    strict parser.  The single authoritative JSON implementation of the
    observability layer — {!Trace_export}, {!Metrics_export},
    {!Bench_compare}, the bench harness and the tests all share it, so
    escaping rules cannot drift between producers and consumers.

    The parser accepts exactly what the emitters produce plus standard
    JSON (including [\uXXXX] escapes and surrogate pairs, decoded to
    UTF-8).  Numbers are floats; NaN and infinities are emitted as
    [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Backslash-escape a string for embedding between double quotes. *)
val escape : string -> string

(** [escape] wrapped in double quotes. *)
val quote : string -> string

val to_string : t -> string

(** Two-space-indented rendering, for committed/diffed files. *)
val to_string_pretty : t -> string

exception Bad of string

(** Container nesting the parser accepts before rejecting the input —
    hostile wire frames (e.g. 100k ['[']s) get an error, not a stack
    overflow. *)
val max_depth : int

(** @raise Bad on malformed input (including nesting beyond
    {!max_depth}); never raises anything else and never loops, whatever
    the input bytes. *)
val parse_exn : string -> t

val parse : string -> (t, string) result

(** Field of an object ([None] on missing field or non-object). *)
val member : string -> t -> t option

val to_float : t -> float option
val to_str : t -> string option

(** Fields of an object, [[]] for non-objects. *)
val obj_fields : t -> (string * t) list

(** Items of an array, [[]] for non-arrays. *)
val arr_items : t -> t list
