(** Export a finished trace (a forest of {!Span.t} roots).

    Formats: indented text for terminals, JSON lines for ad-hoc tooling,
    and Chrome [trace_event] JSON (an array of ["X"] complete events with
    microsecond timestamps) loadable in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}. *)

(** Indented tree, one line per span: name, duration in ms, attributes. *)
val to_text : Span.t list -> string

(** One JSON object per span in preorder, with [name], [start_s],
    [dur_ms], [depth] and optional [attrs]. *)
val to_json_lines : Span.t list -> string

(** Chrome trace_event format: a JSON array of complete ("X") events. *)
val to_chrome : Span.t list -> string

(** JSON string quoting used by the exporters (exposed for tests). *)
val json_string : string -> string
