(** Named monotonic counters with a process-global registry.

    Counters are created once (typically at module-initialisation time, see
    {!Obs.Names}) and incremented through a handle, so the hot path is a
    single switch load, branch and unboxed integer bump — no string hashing
    per increment.  When observability is disabled ({!Obs.disable}, the
    default), {!incr} and {!add} are no-ops.

    Counters are domain-safe without hot-path locking: increments from the
    main domain go straight to the counter; increments from other domains
    accumulate in domain-local cells and are folded in when the worker
    calls {!flush_worker_cells} (the [Par] pool does this as each task
    completes, before the batch is reported finished). *)

type t

(** [make name] returns the registered counter called [name], creating it
    (at zero) on first use.  The same name always yields the same handle. *)
val make : string -> t

val name : t -> string
val value : t -> int

(** Increment by one iff observability is enabled. *)
val incr : t -> unit

(** Increment by [n] iff observability is enabled. *)
val add : t -> int -> unit

(** Unconditional increment, for call sites that hoisted the enabled check
    out of a hot loop themselves ([let counting = Obs.enabled () in ...]). *)
val bump : t -> unit

(** Unconditional [add]. *)
val bump_by : t -> int -> unit

(** Unconditional overwrite — turns a counter into a gauge (e.g. the memo
    cache's bytes-resident reading).  Like [bump], callers gate on
    {!Obs.enabled} themselves when the value is expensive to compute. *)
val set : t -> int -> unit

(** Look up a counter by name, if registered. *)
val find : string -> t option

(** All registered counters in registration order. *)
val all : unit -> t list

(** A point-in-time reading of every registered counter, indexed by
    registration id — cheap to take and diff (one int-array allocation,
    no string hashing), sized for once-per-request use on a server's hot
    path. *)
type snapshot

val snapshot : unit -> snapshot

(** [deltas_since before] lists the counters whose value changed since
    [before] was taken, as [(name, delta)] in registration order.
    Counters registered after the snapshot diff against an implicit 0
    baseline; gauge-style {!set} users can go negative, which is reported
    as seen. *)
val deltas_since : snapshot -> (string * int) list

(** Zero every registered counter (registrations are kept). *)
val reset_all : unit -> unit

(** Fold this domain's accumulated worker-side increments into the shared
    counters and zero the domain-local cells.  Called by the [Par] worker
    loop after each task; a no-op on a domain with no pending increments. *)
val flush_worker_cells : unit -> unit
