(** Nestable timed, allocation-aware spans.

    A span records a named region of execution: wall-clock start/stop, GC
    allocation deltas ({!Gc.quick_stat} words, measured enter-to-exit),
    free attributes, and the spans opened (and closed) while it was the
    innermost open span — its children.  Spans form a thread-of-execution
    stack; finished top-level spans accumulate as trace {e roots} until
    {!reset}.

    Use {!with_span} (or the {!Obs.with_span} front-end).  When
    observability is disabled it runs the thunk directly, recording
    nothing.  Closing a span also records its duration (milliseconds) into
    the histogram ["span.<name>"].

    The GC counters are process-global and monotonic, so a child span's
    allocation delta never exceeds its parent's. *)

type t

(** GC-word deltas over a span (floats, as reported by [Gc.quick_stat]). *)
type alloc = {
  minor_words : float;
  major_words : float;  (** words allocated directly in the major heap *)
  promoted_words : float;
}

val name : t -> string

(** Attributes in the order they were attached. *)
val attrs : t -> (string * string) list

(** Start / stop, in seconds since the epoch ([Unix.gettimeofday]). *)
val start_s : t -> float

val stop_s : t -> float
val duration_s : t -> float
val duration_ms : t -> float

(** Allocation during the span (zero until the span closes). *)
val alloc : t -> alloc

val minor_words : t -> float
val major_words : t -> float
val promoted_words : t -> float

(** Total words newly allocated during the span:
    [minor + major - promoted] (promoted words appear in both generation
    counters). *)
val allocated_words : t -> float

(** Child spans in execution order. *)
val children : t -> t list

(** [with_span ?attrs name f] times [f ()] under a new span nested in the
    current one.  Exception-safe: the span closes even if [f] raises. *)
val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** [with_captured ?attrs name f] times [f ()] under a new span like
    {!with_span} (caller must have checked observability is enabled), then
    {e detaches} the closed span from the trace — it does not join the
    finished roots or the enclosing span's children — and returns it
    alongside [f]'s result.  The duration still lands in the
    ["span.<name>"] histogram.  This is how request-scoped capture
    ({!Obs.Scope}) keeps per-request span subtrees without a long-lived
    server accumulating one root per request forever. *)
val with_captured :
  ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a * t

(** Attach an attribute to the innermost open span (no-op if none). *)
val set_attr : string -> string -> unit

(** The innermost open span, if any. *)
val current : unit -> t option

(** Finished root spans in completion order. *)
val finished : unit -> t list

(** Drop all finished roots and abandon any open spans. *)
val reset : unit -> unit

(** The span stack and finished roots are domain-local.  [flush_worker]
    parks this worker domain's finished roots for adoption (pool calls it
    per completed task); [adopt_pending] — main domain, after the batch has
    joined — grafts everything parked as children of the innermost open
    span, or as top-level roots when none is open. *)
val flush_worker : unit -> unit

val adopt_pending : unit -> unit

(** Preorder flattening of a span forest as [(depth, span)] rows. *)
val flatten : t list -> (int * t) list

(** Per-span-name rollup over a whole forest (all depths): span count,
    total duration and summed allocation deltas, in first-appearance
    order. *)
type agg = {
  spans : int;
  total_ms : float;
  agg_minor_words : float;
  agg_major_words : float;
  agg_promoted_words : float;
}

val aggregate : t list -> (string * agg) list
