(** Nestable timed spans.

    A span records a named region of execution: wall-clock start/stop, free
    attributes, and the spans opened (and closed) while it was the innermost
    open span — its children.  Spans form a thread-of-execution stack;
    finished top-level spans accumulate as trace {e roots} until {!reset}.

    Use {!with_span} (or the {!Obs.with_span} front-end).  When
    observability is disabled it runs the thunk directly, recording
    nothing.  Closing a span also records its duration (milliseconds) into
    the histogram ["span.<name>"]. *)

type t

val name : t -> string

(** Attributes in the order they were attached. *)
val attrs : t -> (string * string) list

(** Start / stop, in seconds since the epoch ([Unix.gettimeofday]). *)
val start_s : t -> float

val stop_s : t -> float
val duration_s : t -> float
val duration_ms : t -> float

(** Child spans in execution order. *)
val children : t -> t list

(** [with_span ?attrs name f] times [f ()] under a new span nested in the
    current one.  Exception-safe: the span closes even if [f] raises. *)
val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Attach an attribute to the innermost open span (no-op if none). *)
val set_attr : string -> string -> unit

(** The innermost open span, if any. *)
val current : unit -> t option

(** Finished root spans in completion order. *)
val finished : unit -> t list

(** Drop all finished roots and abandon any open spans. *)
val reset : unit -> unit

(** Preorder flattening of a span forest as [(depth, span)] rows. *)
val flatten : t list -> (int * t) list
