(** Prometheus text exposition (format 0.0.4) of the Obs registries.

    {!render} emits every registered counter as [clio_<name>_total], every
    registered histogram as a [clio_<name>_ms] histogram family —
    cumulative [_bucket{le=...}] lines from {!Histogram.bucket_counts}
    (exact at any volume), plus [_sum] and [_count] — and any
    caller-supplied labeled gauges, all in registration order so two
    scrapes of one process differ only in values.

    Names are mapped onto the Prometheus charset by {!sanitize_name};
    label values are escaped per the exposition rules
    ({!escape_label_value}). *)

type gauge = {
  gauge_name : string;  (** Obs-style name; sanitized on render *)
  labels : (string * string) list;
  value : float;
}

(** ["clio_"], prepended to every exported metric name. *)
val prefix : string

(** Map an Obs registry name onto [clio_[a-zA-Z0-9_:]+]: invalid characters
    become ['_'] and the {!prefix} is prepended (guarding a leading
    digit). *)
val sanitize_name : string -> string

(** Escape a label value: backslash, double quote and newline. *)
val escape_label_value : string -> string

(** The full exposition document, newline-terminated. *)
val render : ?gauges:gauge list -> unit -> string

(** Check an exposition document: metric names restricted to the legal
    charset, every sample line carries a parseable value, and each
    histogram family has strictly increasing [le] bounds, nondecreasing
    cumulative bucket counts, a [+Inf] bucket, and [+Inf] bucket equal to
    its [_count].  Returns the first violation found. *)
val validate : string -> (unit, string) result
