(* Diff two bench JSON files (the BENCH_<label>.json documents written by
   bench/main.exe) and decide whether any tracked metric regressed.

   Tracked metrics, per benchmark/workload name present in BOTH files:
   - "time"   — Bechamel time/run (ns) from the "benchmarks" section;
   - "ctr:<counter>" — exact operator counts from "workloads.counters";
   - "alloc"  — minor words allocated from "workloads.alloc".

   A metric regresses when current/baseline exceeds its tolerance.
   Counters are deterministic operation counts, so their tolerance is
   tight by default; wall-clock and allocation get more slack.  Names
   present in only one file are reported but never flagged — adding or
   removing a benchmark is not a regression. *)

type tolerance = { time : float; counter : float; alloc : float }

let default_tolerance = { time = 1.50; counter = 1.02; alloc = 1.25 }

type regression = {
  name : string;  (** benchmark/workload name *)
  metric : string;  (** ["time"], ["ctr:<counter>"] or ["alloc"] *)
  baseline : float;
  current : float;
  ratio : float;
  allowed : float;
}

type outcome = {
  report : string;
  regressions : regression list;
  compared : int;  (** metrics compared (present in both files) *)
  only_baseline : string list;  (** names missing from the current file *)
  only_current : string list;  (** names new in the current file *)
}

let ( let* ) = Result.bind

(* --- pulling sections out of a bench document --- *)

let section doc k =
  match Json.member k doc with Some o -> Json.obj_fields o | None -> []

let times doc =
  section doc "benchmarks"
  |> List.filter_map (fun (name, o) ->
         match Json.member "time_ns" o with
         | Some (Json.Num f) -> Some (name, f)
         | _ -> None)

let workload_counters wl =
  (match Json.member "counters" wl with Some o -> Json.obj_fields o | None -> [])
  |> List.filter_map (fun (k, v) ->
         match v with Json.Num f -> Some (k, f) | _ -> None)

let workload_minor_words wl =
  match Json.member "alloc" wl with
  | Some a -> (
      match Json.member "minor_words" a with
      | Some (Json.Num f) -> Some f
      | _ -> None)
  | None -> None

let check_kind doc file =
  match Json.member "kind" doc with
  | Some (Json.Str "bench") -> Ok ()
  | Some (Json.Str k) ->
      Error (Printf.sprintf "%s: expected a bench file, got kind %S" file k)
  | _ -> Error (Printf.sprintf "%s: missing \"kind\": \"bench\"" file)

let ratio ~baseline ~current =
  if baseline > 0. then current /. baseline
  else if current = 0. then 1.
  else infinity

(* --- the diff --- *)

let pretty_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let diff ?(tolerance = default_tolerance) ~baseline ~current () =
  let* () = check_kind baseline "baseline" in
  let* () = check_kind current "current" in
  let buf = Buffer.create 4096 in
  let regressions = ref [] and compared = ref 0 in
  let track ~name ~metric ~allowed ~base ~cur =
    incr compared;
    let r = ratio ~baseline:base ~current:cur in
    if r > allowed then
      regressions :=
        { name; metric; baseline = base; current = cur; ratio = r; allowed }
        :: !regressions;
    r
  in
  let flag r allowed = if r > allowed then "  REGRESSED" else "" in

  (* Time table. *)
  let base_times = times baseline and cur_times = times current in
  let shared_times =
    List.filter_map
      (fun (name, b) ->
        Option.map (fun c -> (name, b, c)) (List.assoc_opt name cur_times))
      base_times
  in
  if shared_times <> [] then begin
    let width =
      List.fold_left
        (fun w (n, _, _) -> max w (String.length n))
        9 shared_times
    in
    Buffer.add_string buf
      (Printf.sprintf "%-*s %12s %12s %7s\n" width "benchmark" "baseline"
         "current" "ratio");
    Buffer.add_string buf (String.make (width + 34) '-');
    Buffer.add_char buf '\n';
    List.iter
      (fun (name, b, c) ->
        let r = track ~name ~metric:"time" ~allowed:tolerance.time ~base:b ~cur:c in
        Buffer.add_string buf
          (Printf.sprintf "%-*s %12s %12s %7.2f%s\n" width name (pretty_ns b)
             (pretty_ns c) r
             (flag r tolerance.time)))
      shared_times;
    Buffer.add_char buf '\n'
  end;

  (* Counter and allocation tables, per workload. *)
  let base_wl = section baseline "workloads"
  and cur_wl = section current "workloads" in
  let shared_wl =
    List.filter_map
      (fun (name, b) ->
        Option.map (fun c -> (name, b, c)) (List.assoc_opt name cur_wl))
      base_wl
  in
  if shared_wl <> [] then begin
    let width =
      List.fold_left (fun w (n, _, _) -> max w (String.length n)) 8 shared_wl
    in
    Buffer.add_string buf
      (Printf.sprintf "%-*s %-28s %14s %14s %7s\n" width "workload" "metric"
         "baseline" "current" "ratio");
    Buffer.add_string buf (String.make (width + 67) '-');
    Buffer.add_char buf '\n';
    List.iter
      (fun (name, b, c) ->
        let row metric allowed base cur =
          let r = track ~name ~metric ~allowed ~base ~cur in
          Buffer.add_string buf
            (Printf.sprintf "%-*s %-28s %14.0f %14.0f %7.2f%s\n" width name
               metric base cur r (flag r allowed))
        in
        let cur_counters = workload_counters c in
        List.iter
          (fun (cname, base) ->
            match List.assoc_opt cname cur_counters with
            | Some cur -> row ("ctr:" ^ cname) tolerance.counter base cur
            | None -> ())
          (workload_counters b);
        match (workload_minor_words b, workload_minor_words c) with
        | Some base, Some cur -> row "alloc" tolerance.alloc base cur
        | _ -> ())
      shared_wl;
    Buffer.add_char buf '\n'
  end;

  let names assoc = List.map fst assoc in
  let missing_in other = List.filter (fun n -> not (List.mem_assoc n other)) in
  let only_baseline =
    missing_in cur_times (names base_times)
    @ missing_in cur_wl (names base_wl)
  and only_current =
    missing_in base_times (names cur_times)
    @ missing_in base_wl (names cur_wl)
  in
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "only in baseline (skipped): %s\n" n))
    only_baseline;
  List.iter
    (fun n ->
      Buffer.add_string buf (Printf.sprintf "only in current (skipped): %s\n" n))
    only_current;

  let regressions = List.rev !regressions in
  Buffer.add_string buf
    (match regressions with
    | [] -> Printf.sprintf "OK: %d metrics compared, no regression\n" !compared
    | rs ->
        Printf.sprintf "FAIL: %d of %d metrics regressed beyond tolerance\n"
          (List.length rs) !compared);
  Ok
    {
      report = Buffer.contents buf;
      regressions;
      compared = !compared;
      only_baseline;
      only_current;
    }

(* Exit-code contract of bench/compare.exe: 0 = clean (or report-only),
   1 = regression, 2 = unusable input (decided by the caller). *)
let exit_code ~report_only outcome =
  if report_only || outcome.regressions = [] then 0 else 1
