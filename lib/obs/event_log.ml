type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

(* Line-schema version: bump when a field is renamed or its meaning
   changes; adding fields is backwards-compatible and does not bump it.
   v2: "ts" is integer epoch milliseconds (v1 was fractional seconds,
   which the JSON printer's %.9g rendered at ~100 s resolution). *)
let schema_version = 2

type t = {
  path : string;
  level : level;
  max_bytes : int;
  keep : int;
  mutable oc : out_channel;
  mutable bytes : int;
  (* The server loop and its worker domains log to one sink; the lock
     keeps lines whole and rotation atomic with respect to writes. *)
  mutex : Mutex.t;
}

let open_append path =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  let bytes = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
  (oc, bytes)

let create ?(level = Info) ?(max_bytes = 8 * 1024 * 1024) ?(keep = 3) path =
  if path = "" then invalid_arg "Event_log.create: empty path";
  let oc, bytes = open_append path in
  { path; level; max_bytes; keep; oc; bytes; mutex = Mutex.create () }

let rotated_name path i = Printf.sprintf "%s.%d" path i

(* Shift path.(keep-1) off the end, path.i -> path.(i+1), path -> path.1,
   then reopen path fresh.  Rename failures (e.g. a gap in the chain) are
   ignored: rotation is best-effort, logging must not take the server
   down. *)
let rotate t =
  close_out_noerr t.oc;
  for i = t.keep - 1 downto 1 do
    let src = if i = 1 then t.path else rotated_name t.path (i - 1) in
    let dst = rotated_name t.path i in
    if Sys.file_exists src then try Sys.rename src dst with Sys_error _ -> ()
  done;
  if t.keep <= 1 && Sys.file_exists t.path then
    (try Sys.remove t.path with Sys_error _ -> ());
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 t.path in
  t.oc <- oc;
  t.bytes <- 0

let would_log t level = level_rank level >= level_rank t.level

let log t level event fields =
  if would_log t level then begin
    let line =
      Json.to_string
        (Json.Obj
           (("v", Json.Num (float_of_int schema_version))
           :: ("ts", Json.Num (Float.round (Unix.gettimeofday () *. 1000.)))
           :: ("level", Json.Str (level_to_string level))
           :: ("event", Json.Str event)
           :: fields))
    in
    let len = String.length line + 1 in
    Mutex.protect t.mutex (fun () ->
        if t.bytes > 0 && t.bytes + len > t.max_bytes then rotate t;
        output_string t.oc line;
        output_char t.oc '\n';
        t.bytes <- t.bytes + len)
  end

let flush t = Mutex.protect t.mutex (fun () -> flush t.oc)
let close t = Mutex.protect t.mutex (fun () -> close_out_noerr t.oc)
let path t = t.path
