type alloc = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
}

type t = {
  name : string;
  mutable attrs : (string * string) list;
  start : float;
  mutable stop : float;
  start_alloc : alloc;
  mutable alloc : alloc;
  mutable rev_children : t list;
}

let now = Unix.gettimeofday

let zero_alloc = { minor_words = 0.; major_words = 0.; promoted_words = 0. }

(* GC counter reading.  [Gc.minor_words ()] reads the live minor
   allocation pointer — [Gc.quick_stat]'s [minor_words] only advances at
   minor collections (OCaml 5), which would report 0 for any span that
   does not happen to cross one.  [Gc.counters] supplies the
   major/promoted counters, which by nature only move at collections; it
   reads the same fields as [quick_stat] but ~40x cheaper (no full stat
   record), which matters because every span takes two readings on the
   server's request path.  All three are monotonic, which is what makes
   per-span deltas nest consistently: a child's delta can never exceed
   its parent's. *)
let gc_now () =
  let _minor, promoted, major = Gc.counters () in
  {
    minor_words = Gc.minor_words ();
    major_words = major;
    promoted_words = promoted;
  }

let alloc_delta ~at ~since =
  {
    minor_words = at.minor_words -. since.minor_words;
    major_words = at.major_words -. since.major_words;
    promoted_words = at.promoted_words -. since.promoted_words;
  }

(* The thread-of-execution stack of open spans (innermost first) and the
   finished roots, both newest-first.  Both are domain-local: a pool worker
   builds its own span trees, which are parked in [pending_rev_roots] when
   its task completes ([flush_worker]) and grafted into the main domain's
   trace after the batch joins ([adopt_pending]). *)
let stack_key : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let rev_roots_key : t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key
let rev_roots () = Domain.DLS.get rev_roots_key
let pending_mutex = Mutex.create ()
let pending_rev_roots : t list ref = ref []

let name s = s.name
let attrs s = List.rev s.attrs
let start_s s = s.start
let stop_s s = s.stop
let duration_s s = s.stop -. s.start
let duration_ms s = 1000. *. duration_s s
let children s = List.rev s.rev_children
let alloc s = s.alloc
let minor_words s = s.alloc.minor_words
let major_words s = s.alloc.major_words
let promoted_words s = s.alloc.promoted_words

(* Words newly allocated during the span: minor + directly-major, minus the
   promoted words that would otherwise be counted in both generations. *)
let allocated_words s =
  s.alloc.minor_words +. s.alloc.major_words -. s.alloc.promoted_words

let enter ?(attrs = []) name =
  let s =
    {
      name;
      attrs = List.rev attrs;
      start = now ();
      stop = 0.;
      start_alloc = gc_now ();
      alloc = zero_alloc;
      rev_children = [];
    }
  in
  let stack = stack () in
  stack := s :: !stack;
  s

let exit_ s =
  s.stop <- now ();
  s.alloc <- alloc_delta ~at:(gc_now ()) ~since:s.start_alloc;
  let stack = stack () in
  (match !stack with
  | top :: rest when top == s -> stack := rest
  | _ ->
      (* Unbalanced exit (an exception unwound past intermediate spans, or a
         caller misuse): drop [s] from wherever it sits. *)
      stack := List.filter (fun x -> not (x == s)) !stack);
  (match !stack with
  | parent :: _ -> parent.rev_children <- s :: parent.rev_children
  | [] ->
      let roots = rev_roots () in
      roots := s :: !roots);
  Histogram.observe (Histogram.make ("span." ^ s.name)) (duration_ms s)

let with_span ?attrs name f =
  if not !Switch.on then f ()
  else begin
    let s = enter ?attrs name in
    Fun.protect ~finally:(fun () -> exit_ s) f
  end

(* Remove a just-closed span from wherever [exit_] attached it: the
   innermost open span's children, or the finished roots.  Used by
   captured spans so a long-lived server does not accumulate one root per
   request forever. *)
let detach s =
  (match !(stack ()) with
  | parent :: _ -> parent.rev_children <- List.filter (fun x -> not (x == s)) parent.rev_children
  | [] -> ());
  let roots = rev_roots () in
  roots := List.filter (fun x -> not (x == s)) !roots

let with_captured ?attrs name f =
  let s = enter ?attrs name in
  let r =
    Fun.protect
      ~finally:(fun () ->
        exit_ s;
        detach s)
      f
  in
  (r, s)

let set_attr k v =
  match !(stack ()) with [] -> () | s :: _ -> s.attrs <- (k, v) :: s.attrs

let current () = match !(stack ()) with [] -> None | s :: _ -> Some s
let finished () = List.rev !(rev_roots ())

let flush_worker () =
  let roots = rev_roots () in
  match !roots with
  | [] -> ()
  | rs ->
      roots := [];
      Mutex.protect pending_mutex (fun () ->
          pending_rev_roots := rs @ !pending_rev_roots)

let adopt_pending () =
  let rs =
    Mutex.protect pending_mutex (fun () ->
        let r = !pending_rev_roots in
        pending_rev_roots := [];
        r)
  in
  match rs with
  | [] -> ()
  | _ -> (
      (* Worker span trees become children of the caller's innermost open
         span (typically the fan-out operator's own span), or top-level
         roots when nothing is open. *)
      match !(stack ()) with
      | parent :: _ -> parent.rev_children <- rs @ parent.rev_children
      | [] ->
          let roots = rev_roots () in
          roots := rs @ !roots)

let reset () =
  Mutex.protect pending_mutex (fun () -> pending_rev_roots := []);
  stack () := [];
  rev_roots () := []

(* Depth-first preorder flattening, with depth. *)
let flatten spans =
  let rec go depth acc s =
    List.fold_left (go (depth + 1)) ((depth, s) :: acc) (children s)
  in
  List.rev (List.fold_left (go 0) [] spans)

(* --- per-name aggregation (the "per algorithm" rollup) --- *)

type agg = {
  spans : int;
  total_ms : float;
  agg_minor_words : float;
  agg_major_words : float;
  agg_promoted_words : float;
}

let aggregate forest =
  let order : string list ref = ref [] in
  let table : (string, agg) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (_, s) ->
      let prev =
        match Hashtbl.find_opt table s.name with
        | Some a -> a
        | None ->
            order := s.name :: !order;
            {
              spans = 0;
              total_ms = 0.;
              agg_minor_words = 0.;
              agg_major_words = 0.;
              agg_promoted_words = 0.;
            }
      in
      Hashtbl.replace table s.name
        {
          spans = prev.spans + 1;
          total_ms = prev.total_ms +. duration_ms s;
          agg_minor_words = prev.agg_minor_words +. s.alloc.minor_words;
          agg_major_words = prev.agg_major_words +. s.alloc.major_words;
          agg_promoted_words = prev.agg_promoted_words +. s.alloc.promoted_words;
        })
    (flatten forest);
  List.rev_map (fun n -> (n, Hashtbl.find table n)) !order
