type t = {
  name : string;
  mutable attrs : (string * string) list;
  start : float;
  mutable stop : float;
  mutable rev_children : t list;
}

let now = Unix.gettimeofday

(* The thread-of-execution stack of open spans (innermost first) and the
   finished roots, both newest-first. *)
let stack : t list ref = ref []
let rev_roots : t list ref = ref []

let name s = s.name
let attrs s = List.rev s.attrs
let start_s s = s.start
let stop_s s = s.stop
let duration_s s = s.stop -. s.start
let duration_ms s = 1000. *. duration_s s
let children s = List.rev s.rev_children

let enter ?(attrs = []) name =
  let s =
    { name; attrs = List.rev attrs; start = now (); stop = 0.; rev_children = [] }
  in
  stack := s :: !stack;
  s

let exit_ s =
  s.stop <- now ();
  (match !stack with
  | top :: rest when top == s -> stack := rest
  | _ ->
      (* Unbalanced exit (an exception unwound past intermediate spans, or a
         caller misuse): drop [s] from wherever it sits. *)
      stack := List.filter (fun x -> not (x == s)) !stack);
  (match !stack with
  | parent :: _ -> parent.rev_children <- s :: parent.rev_children
  | [] -> rev_roots := s :: !rev_roots);
  Histogram.observe (Histogram.make ("span." ^ s.name)) (duration_ms s)

let with_span ?attrs name f =
  if not !Switch.on then f ()
  else begin
    let s = enter ?attrs name in
    Fun.protect ~finally:(fun () -> exit_ s) f
  end

let set_attr k v =
  match !stack with [] -> () | s :: _ -> s.attrs <- (k, v) :: s.attrs

let current () = match !stack with [] -> None | s :: _ -> Some s
let finished () = List.rev !rev_roots

let reset () =
  stack := [];
  rev_roots := []

(* Depth-first preorder flattening, with depth. *)
let flatten spans =
  let rec go depth acc s =
    List.fold_left (go (depth + 1)) ((depth, s) :: acc) (children s)
  in
  List.rev (List.fold_left (go 0) [] spans)
